// Package sparqlrw is the public API of this repository: a Go
// implementation of "SPARQL Query Rewriting for Implementing Data
// Integration over Linked Data" (Correndo, Salvadores, Millard, Glaser,
// Shadbolt — EDBT 2010).
//
// The library rewrites SPARQL queries written against a source ontology /
// data set so they run against a target ontology / data set, using entity
// alignments EA = ⟨LHS, RHS, FD⟩ whose functional dependencies execute at
// rewrite time (co-reference resolution via owl:sameAs among them), and it
// ships every substrate that system needs: an RDF data model, Turtle and
// N-Triples parsers, an indexed triple store, a SPARQL 1.0 parser /
// algebra / evaluator, a sameas.org-style co-reference service, SPARQL
// protocol endpoints, a three-tier mediator with federated execution, and
// a forward-chaining materialisation baseline.
//
// # Form-polymorphic streaming query API
//
// The mediator's one federated entry point accepts every query form and
// returns a tagged union: a lazy solution stream for SELECT, a boolean
// for ASK, a lazy triple stream for CONSTRUCT and DESCRIBE. Results are
// streaming-first: the evaluator yields lazy solution sequences
// (SolutionSeq), the wire format encodes and decodes incrementally,
// endpoints serve chunked responses, and the first solution arrives
// before the slowest endpoint answers:
//
//	m := sparqlrw.NewMediator(datasets, alignments, corefSrc,
//	    sparqlrw.WithMediatorRewriteFilters(true))
//	res, err := m.Query(ctx, sparqlrw.MediatorQueryRequest{
//	    Query: `SELECT ?a WHERE { ... }`, // or ASK / CONSTRUCT / DESCRIBE
//	    // SourceOnt "" guesses from the query; Targets nil auto-plans.
//	})
//	if err != nil { ... }
//	defer res.Close()
//	switch res.Form() {
//	case sparqlrw.QueryFormSelect:
//	    for sol, err := range res.Bindings().Solutions() { ... }
//	case sparqlrw.QueryFormAsk:
//	    fmt.Println(res.Bool())
//	default: // CONSTRUCT / DESCRIBE
//	    for t, err := range res.Graph().Triples() { ... }
//	}
//	summary, err := res.Summary() // per-dataset outcomes
//
// Over HTTP the same surface is a W3C SPARQL 1.1 Protocol endpoint
// (GET|POST /sparql) with content negotiation: results JSON, NDJSON and
// Server-Sent Events for bindings and booleans, streamed N-Triples and
// Turtle for graphs.
//
// Quick start:
//
//	cs := sparqlrw.NewCorefStore()
//	cs.Add("http://southampton.rkbexplorer.com/id/person-02686",
//	       "http://kisti.rkbexplorer.com/id/PER_00000000105047")
//	rw := sparqlrw.NewRewriter(
//	    []*sparqlrw.EntityAlignment{ /* ... */ },
//	    sparqlrw.NewFunctionRegistry(cs))
//	q, _ := sparqlrw.ParseQuery(`SELECT ?a WHERE { ... }`)
//	out, report, _ := rw.RewriteQuery(q)
//	fmt.Println(sparqlrw.FormatQuery(out))
//
// See examples/ for runnable programs and DESIGN.md for the module map.
package sparqlrw

import (
	"io"

	"sparqlrw/internal/align"
	"sparqlrw/internal/core"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/mediate"
	"sparqlrw/internal/ntriples"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/reason"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
	"sparqlrw/internal/voidkb"
)

// RDF data model.
type (
	// Term is an RDF term or SPARQL variable.
	Term = rdf.Term
	// Triple is an RDF triple or triple pattern.
	Triple = rdf.Triple
	// Graph is an ordered collection of triples.
	Graph = rdf.Graph
	// PrefixMap maps prefixes to namespaces.
	PrefixMap = rdf.PrefixMap
)

// Term constructors, re-exported from the data model.
var (
	NewIRI          = rdf.NewIRI
	NewLiteral      = rdf.NewLiteral
	NewTypedLiteral = rdf.NewTypedLiteral
	NewLangLiteral  = rdf.NewLangLiteral
	NewBlank        = rdf.NewBlank
	NewVar          = rdf.NewVar
	NewTriple       = rdf.NewTriple
)

// Query machinery.
type (
	// Query is a parsed SPARQL query.
	Query = sparql.Query
	// QueryResult is a SELECT evaluation outcome.
	QueryResult = eval.Result
	// Solution is one solution mapping.
	Solution = eval.Solution
	// SolutionSeq is a lazy solution sequence (iter.Seq2[Solution,
	// error]): the streaming shape results take from the evaluator all
	// the way to HTTP responses.
	SolutionSeq = eval.SolutionSeq
	// SolutionStream is a pull-based solution stream handle (endpoint
	// responses, federated merges).
	SolutionStream = eval.SolutionStream
	// StreamResult is a SELECT evaluation outcome whose solutions are
	// produced lazily (Engine.SelectSeq).
	StreamResult = eval.StreamResult
	// Engine evaluates queries over a Store.
	Engine = eval.Engine
	// Store is the indexed in-memory triple store.
	Store = store.Store
)

// CollectSolutions drains a lazy solution sequence into a slice.
func CollectSolutions(seq SolutionSeq) ([]Solution, error) { return eval.Collect(seq) }

// ParseQuery parses a SPARQL 1.0 query (SELECT, ASK, CONSTRUCT or
// DESCRIBE).
func ParseQuery(src string) (*Query, error) { return sparql.Parse(src) }

// FormatQuery serialises a query back to SPARQL text.
func FormatQuery(q *Query) string { return sparql.Format(q) }

// NewStore returns an empty indexed triple store.
func NewStore() *Store { return store.New() }

// NewEngine returns a query engine over a store.
func NewEngine(st *Store) *Engine { return eval.New(st) }

// ParseTurtle parses a Turtle document.
func ParseTurtle(src string) (Graph, *PrefixMap, error) { return turtle.Parse(src) }

// FormatTurtle serialises a graph as Turtle.
func FormatTurtle(g Graph, prefixes *PrefixMap) string { return turtle.Format(g, prefixes) }

// ParseNTriples parses an N-Triples document.
func ParseNTriples(r io.Reader) (Graph, error) { return ntriples.Parse(r) }

// FormatNTriples serialises a graph as N-Triples.
func FormatNTriples(g Graph) string { return ntriples.Format(g) }

// Alignment model (§3.2 of the paper).
type (
	// EntityAlignment is EA = ⟨LHS, RHS, FD⟩.
	EntityAlignment = align.EntityAlignment
	// OntologyAlignment is OA = ⟨SO, TO, TD, EA⟩.
	OntologyAlignment = align.OntologyAlignment
	// FD is a functional dependency var = f(args...).
	FD = align.FD
	// AlignmentKB stores ontology alignments with context selection.
	AlignmentKB = align.KB
	// AlignmentSelector describes an integration request.
	AlignmentSelector = align.Selector
)

// Alignment constructors and codecs.
var (
	// NewClassAlignment builds a level-0 class correspondence.
	NewClassAlignment = align.ClassAlignment
	// NewPropertyAlignment builds a level-0 property correspondence.
	NewPropertyAlignment = align.PropertyAlignment
	// ParseAlignments loads alignments from the paper's reified Turtle.
	ParseAlignments = align.ParseTurtle
	// FormatAlignments serialises ontology alignments to Turtle.
	FormatAlignments = align.FormatTurtle
)

// NewAlignmentKB returns an empty alignment knowledge base.
func NewAlignmentKB() *AlignmentKB { return align.NewKB() }

// Co-reference and functions (§3.3).
type (
	// CorefStore is the owl:sameAs equivalence store.
	CorefStore = coref.Store
	// CorefClient queries a remote co-reference REST service.
	CorefClient = coref.Client
	// FunctionRegistry holds data-manipulation functions keyed by IRI.
	FunctionRegistry = funcs.Registry
)

// NewCorefStore returns an empty owl:sameAs equivalence store.
func NewCorefStore() *CorefStore { return coref.NewStore() }

// NewCorefClient returns a client for a co-reference REST service.
func NewCorefClient(baseURL string) *CorefClient { return coref.NewClient(baseURL) }

// CorefHandler serves the co-reference REST API over a store.
var CorefHandler = coref.Handler

// NewFunctionRegistry returns the standard function registry (sameas,
// prefixSwap, unit conversions, string helpers) over a co-reference
// source.
func NewFunctionRegistry(src funcs.CorefSource) *FunctionRegistry {
	return funcs.StandardRegistry(src)
}

// The rewriter (§3.3, the paper's contribution).
type (
	// Rewriter applies entity alignments to queries.
	Rewriter = core.Rewriter
	// RewriteReport carries rewrite diagnostics.
	RewriteReport = core.Report
	// RewriteOptions configure matching, FD failure and FILTER handling.
	RewriteOptions = core.Options
)

// FD failure policies and match modes.
const (
	KeepOriginal  = core.KeepOriginal
	SkipAlignment = core.SkipAlignment
	FailRewrite   = core.Fail
	FirstMatch    = core.FirstMatch
	AllMatches    = core.AllMatches
	// UnionMatches expands multiply-matched triples into SPARQL UNION
	// branches (closing the paper's §3.2.2 owl:unionOf gap).
	UnionMatches = core.UnionMatches
)

// NewRewriter returns a rewriter over the given alignments and functions.
func NewRewriter(alignments []*EntityAlignment, registry *FunctionRegistry) *Rewriter {
	return core.New(alignments, registry)
}

// ChainStage is one hop of a peer-to-peer rewriting chain (§3 of the
// paper: queries "can be rewritten multiple times, depending on where the
// query will be executed").
type ChainStage = core.Stage

// ChainReport collects per-hop rewrite reports.
type ChainReport = core.ChainReport

// RewriteChain composes rewriters A→B→…→Z over a query.
func RewriteChain(q *Query, stages []ChainStage) (*Query, *ChainReport, error) {
	return core.RewriteChain(q, stages)
}

// ConstructQuery compiles an entity alignment into a data-translating
// CONSTRUCT query (the §2 Euzenat-style path); see core.ConstructQuery
// for the functional-dependency caveat.
func ConstructQuery(ea *EntityAlignment, allowFDLoss bool) (*Query, error) {
	return core.ConstructQuery(ea, allowFDLoss)
}

// TranslateData materialises target-vocabulary data into the source
// vocabulary by running compiled CONSTRUCT queries.
func TranslateData(data *Store, eas []*EntityAlignment, allowFDLoss bool) (Graph, []string, error) {
	return core.TranslateData(data, eas, allowFDLoss)
}

// Federation (Figure 5).
type (
	// Dataset is a voiD data set description.
	Dataset = voidkb.Dataset
	// DatasetKB is the voiD knowledge base.
	DatasetKB = voidkb.KB
	// Mediator is the three-tier integration service.
	Mediator = mediate.Mediator
	// EndpointServer serves a store over the SPARQL protocol.
	EndpointServer = endpoint.Server
	// EndpointClient queries remote SPARQL endpoints.
	EndpointClient = endpoint.Client
	// FederationOptions tune the concurrent federation executor
	// (worker-pool bound, per-endpoint deadline, retries, circuit
	// breaker, rewrite-plan cache, partial-result policy).
	FederationOptions = federate.Options
	// FederationExecutor dispatches federated queries concurrently.
	FederationExecutor = federate.Executor
	// FederationStats snapshots per-endpoint latency, retries, breaker
	// state and the rewrite-cache hit rate.
	FederationStats = federate.Stats
	// FederatedResult is a merged federated answer.
	FederatedResult = mediate.FederatedResult
	// MediatorQueryRequest is the options struct for Mediator.Query:
	// query text (any form), source ontology (empty = guessed), explicit
	// targets (nil = planner-selected) and an optional stream limit.
	MediatorQueryRequest = mediate.QueryRequest
	// MediatorResult is Mediator.Query's form-polymorphic outcome: a
	// tagged union of a lazy solution stream (SELECT), a boolean (ASK)
	// and a lazy triple stream (CONSTRUCT/DESCRIBE).
	MediatorResult = mediate.Result
	// MediatorQueryStream is an in-flight federated SELECT: merged
	// solutions stream as endpoints deliver them, with the plan and the
	// per-dataset summary available on the stream.
	MediatorQueryStream = mediate.QueryStream
	// MediatorGraphStream is an in-flight federated CONSTRUCT/DESCRIBE:
	// a lazy, owl:sameAs-deduplicated triple stream.
	MediatorGraphStream = mediate.GraphStream
	// MediatorConfig is the mediator's consolidated configuration,
	// built with the MediatorOption functional options.
	MediatorConfig = mediate.Config
	// MediatorOption mutates a MediatorConfig (NewMediator, Configure).
	MediatorOption = mediate.Option
	// MediatorStats is the mediator's unified observability snapshot:
	// federation, planner and decompose counters plus per-form query
	// counts.
	MediatorStats = mediate.Stats
	// FederationStream is the executor-level merged solution stream
	// underneath MediatorQueryStream.
	FederationStream = federate.Stream
)

// Query forms, for dispatching on MediatorResult.Form (and on parsed
// Query.Form).
const (
	QueryFormSelect    = sparql.Select
	QueryFormAsk       = sparql.Ask
	QueryFormConstruct = sparql.Construct
	QueryFormDescribe  = sparql.Describe
)

// Mediator configuration options, re-exported from mediate.
var (
	// WithMediatorFederation replaces the federation executor options.
	WithMediatorFederation = mediate.WithFederation
	// WithMediatorPlanner replaces the planner options.
	WithMediatorPlanner = mediate.WithPlanner
	// WithoutMediatorPlanner disables target auto-selection.
	WithoutMediatorPlanner = mediate.WithoutPlanner
	// WithMediatorDecomposer replaces the decompose options.
	WithMediatorDecomposer = mediate.WithDecomposer
	// WithoutMediatorDecomposer disables the multi-source path.
	WithoutMediatorDecomposer = mediate.WithoutDecomposer
	// WithMediatorRewriteFilters toggles the §4 FILTER extension.
	WithMediatorRewriteFilters = mediate.WithRewriteFilters
	// WithMediatorObservability replaces the observability options
	// (metrics registry, logger, slow-query threshold, trace-ring size).
	WithMediatorObservability = mediate.WithObservability
	// WithMediatorServing enables the production serving tier:
	// multi-tenant admission, the federated result cache and
	// policy-by-rewriting.
	WithMediatorServing = mediate.WithServing
)

// Serving tier: multi-tenant admission control, the sameAs-canonicalised
// federated result cache and per-tenant policy-by-rewriting in front of
// Mediator.Query (see internal/serve).
type (
	// ServingOptions tune the serving tier (tenant registry, result-cache
	// capacity/TTL/row cap).
	ServingOptions = serve.Options
	// ServingTier is the live tier, exposed on Mediator.Serve when
	// enabled; nil otherwise.
	ServingTier = serve.Tier
	// Tenant is one admitted principal: identification keys, rate and
	// concurrency limits, and an optional query policy.
	Tenant = serve.Tenant
	// TenantsConfig is the parsed -tenants JSON document.
	TenantsConfig = serve.TenantsConfig
	// TenantPolicy restricts a tenant's queries by rewriting: a dataset
	// allowlist, subject URI spaces and denied predicates.
	TenantPolicy = serve.Policy
	// AdmissionRejection is a load-shed decision: HTTP status (429/503),
	// retry-after hint, tenant and reason.
	AdmissionRejection = serve.Rejection
)

// ErrPolicyDenied is reported when a tenant's policy statically refuses a
// query (ground term outside the tenant's URI spaces, denied predicate, or
// an explicit target outside the dataset allowlist). The protocol endpoint
// maps it to 403.
var ErrPolicyDenied = serve.ErrDenied

// ParseTenants parses a tenant configuration JSON document; LoadTenants
// reads one from disk (the -tenants flag's format).
var (
	ParseTenants = serve.ParseTenants
	LoadTenants  = serve.LoadTenants
)

// RestrictQuery applies a tenant policy to a parsed query, returning the
// (possibly rewritten) query, whether anything changed, and ErrPolicyDenied
// if the policy statically refuses it.
func RestrictQuery(q *Query, p *TenantPolicy) (*Query, bool, error) {
	return serve.Restrict(q, p)
}

// Observability: every mediator layer registers its counters, gauges and
// latency histograms in one shared registry (Prometheus text exposition
// at GET /metrics), and each query grows a span tree annotated by the
// rewrite, plan, decompose and federate stages (explain=trace on /sparql,
// GET /api/trace, MediatorResult.Trace).
type (
	// MetricsRegistry is the process-wide metric family registry. Pass
	// one via ObservabilityOptions to merge several components into a
	// single exposition; read it back on Mediator.Obs.
	MetricsRegistry = obs.Registry
	// ObservabilityOptions tune the registry, structured logger,
	// slow-query threshold and trace-ring size.
	ObservabilityOptions = obs.Options
	// Observer bundles a mediator's observability surfaces: registry,
	// finished-trace ring, logger.
	Observer = obs.Observer
	// QueryTrace is one query's finished span tree.
	QueryTrace = obs.Trace
	// QuerySpan is one timed, annotated operation within a QueryTrace.
	QuerySpan = obs.Span
)

// NewMetricsRegistry returns an empty metric family registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// ParsePrometheusText parses a Prometheus text-format exposition (such as
// the mediator's /metrics output) into metric families — the test-side
// complement of the registry's exposition writer.
var ParsePrometheusText = obs.ParsePrometheusText

// ErrCircuitOpen is reported (wrapped) in a DatasetAnswer when an
// endpoint's circuit breaker rejects a request without dispatching it.
var ErrCircuitOpen = federate.ErrCircuitOpen

// Federation planning (voiD-driven source selection, VALUES sharding and
// adaptive ordering; see internal/plan).
type (
	// FederationPlanner selects, shards and orders federation targets.
	FederationPlanner = plan.Planner
	// FederationPlan is an ordered, sharded set of sub-requests plus the
	// per-data-set relevance decisions behind it.
	FederationPlan = plan.Plan
	// PlannerOptions tune source selection, sharding and deadlines.
	PlannerOptions = plan.Options
	// PlanDecision explains why one data set was kept or pruned.
	PlanDecision = plan.Decision
	// PlanSubRequest is one ordered, sharded sub-query of a plan.
	PlanSubRequest = plan.SubRequest
	// PlannerStats counts plans, pruned data sets and VALUES shards.
	PlannerStats = plan.Stats
)

// NewFederationPlanner builds a standalone planner over the given KBs;
// most callers use the Mediator's built-in planner instead (PlanQuery,
// Configure with WithMediatorPlanner, and Query with nil Targets).
func NewFederationPlanner(datasets *DatasetKB, alignments *AlignmentKB, health plan.HealthFunc, opts PlannerOptions) *FederationPlanner {
	return plan.New(datasets, alignments, health, opts)
}

// NewDatasetKB returns an empty voiD knowledge base.
func NewDatasetKB() *DatasetKB { return voidkb.NewKB() }

// NewMediator wires data set KB, alignment KB and co-reference source,
// configured by the given functional options (see MediatorOption).
func NewMediator(datasets *DatasetKB, alignments *AlignmentKB, corefSrc funcs.CorefSource, opts ...MediatorOption) *Mediator {
	return mediate.New(datasets, alignments, corefSrc, opts...)
}

// MediatorHandler serves the mediator REST API and web UI.
var MediatorHandler = mediate.Handler

// MediatorDebugHandler serves the operator debug surface (net/http/pprof
// plus the /debug/dashboard trace-waterfall and endpoint-health page),
// intended for a separate listener.
var MediatorDebugHandler = mediate.DebugHandler

// Distributed tracing and endpoint health: the mediator speaks W3C Trace
// Context (inbound traceparent adoption, outbound propagation on every
// sub-query), exports finished traces to OTLP/HTTP collectors, scores
// endpoint health from live traffic and optional probes, and persists
// slow/failed queries in an on-disk flight recorder (see internal/obs).
type (
	// TraceContext is a parsed W3C traceparent/tracestate pair.
	TraceContext = obs.TraceContext
	// EndpointHealth is one endpoint's health snapshot: smoothed latency
	// quantiles, error rate, breaker state and composite score
	// (Mediator.Stats().Health, GET /api/health).
	EndpointHealth = obs.EndpointHealth
	// AuditRecord is one flight-recorded query: text, explain payload,
	// outcome and full span tree (GET /api/audit).
	AuditRecord = obs.AuditRecord
)

// ParseTraceparent parses a W3C traceparent header value.
var ParseTraceparent = obs.ParseTraceparent

// WithRemoteParent attaches a remote trace parent to a context, so the
// next query's trace continues the caller's distributed trace.
var WithRemoteParent = obs.WithRemoteParent

// NewEndpointServer wraps a store as a SPARQL protocol endpoint.
func NewEndpointServer(name string, st *Store) *EndpointServer {
	return endpoint.NewServer(name, st)
}

// NewEndpointClient returns a SPARQL protocol client.
func NewEndpointClient() *EndpointClient { return endpoint.NewClient() }

// EndpointSelectStream is an in-flight SELECT response decoding
// incrementally off the wire (EndpointClient.SelectStreamContext).
type EndpointSelectStream = endpoint.SelectStream

// Streaming SPARQL-results-JSON codec, the SPARQL protocol wire format.
type (
	// ResultsStreamEncoder writes a SELECT results document one binding
	// at a time.
	ResultsStreamEncoder = srjson.StreamEncoder
	// ResultsStreamDecoder parses a results document incrementally in
	// constant memory.
	ResultsStreamDecoder = srjson.StreamDecoder
)

// NewResultsStreamEncoder starts a streaming SELECT results document.
func NewResultsStreamEncoder(w io.Writer, vars []string) (*ResultsStreamEncoder, error) {
	return srjson.NewStreamEncoder(w, vars)
}

// NewResultsStreamDecoder opens an incremental results-document decoder.
func NewResultsStreamDecoder(r io.Reader) (*ResultsStreamDecoder, error) {
	return srjson.NewStreamDecoder(r)
}

// Materialisation baseline (the reasoning-based integration the paper
// argues does not scale).
type (
	// Materialiser forward-chains alignments over data.
	Materialiser = reason.Materialiser
	// MaterialiseOptions configure the materialiser.
	MaterialiseOptions = reason.Options
	// MaterialiseResult reports a materialisation run.
	MaterialiseResult = reason.Result
)

// NewMaterialiser returns a forward-chaining materialiser.
func NewMaterialiser(alignments []*EntityAlignment, corefStore *CorefStore, opts MaterialiseOptions) *Materialiser {
	return reason.New(alignments, corefStore, opts)
}
