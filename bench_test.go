package sparqlrw

// One benchmark per experiment of the paper's reproduction (see DESIGN.md
// §4 and EXPERIMENTS.md). `go test -bench=. -benchmem` regenerates the
// timing side of every table; cmd/benchrunner prints the full tables with
// the paper-vs-measured columns.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/core"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/decompose"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/mediate"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/reason"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/view"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

const figure1Text = `PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686 ))
}`

func paperRewriter() *core.Rewriter {
	cs := coref.NewStore()
	cs.Add("http://southampton.rkbexplorer.com/id/person-02686",
		"http://kisti.rkbexplorer.com/id/PER_00000000105047")
	return core.New(workload.AKT2KISTI().Alignments, funcs.StandardRegistry(cs))
}

// BenchmarkE1_ParseFigure1 — E1: the Figure 1 query parses.
func BenchmarkE1_ParseFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(figure1Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_RewriteFigure1 — E2/E3: the §3.3.2 worked example rewrite.
func BenchmarkE2_RewriteFigure1(b *testing.B) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1Text)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rw.RewriteQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_AlignmentKBLoad — E4: the 24+42 alignment KB round-trips
// through its reified RDF representation.
func BenchmarkE4_AlignmentKBLoad(b *testing.B) {
	ttl := align.FormatTurtle([]*align.OntologyAlignment{workload.AKT2KISTI(), workload.ECS2DBpedia()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oas, _, err := align.ParseTurtle(ttl)
		if err != nil {
			b.Fatal(err)
		}
		if len(oas) != 2 {
			b.Fatal("alignment count")
		}
	}
}

// benchSelect drains one federated SELECT into the buffered shape the
// benchmarks assert on.
func benchSelect(m *mediate.Mediator, query, sourceOnt string, targets []string) (*mediate.FederatedResult, error) {
	res, err := m.Query(context.Background(), mediate.QueryRequest{
		Query: query, SourceOnt: sourceOnt, Targets: targets,
	})
	if err != nil {
		return nil, err
	}
	return res.Bindings().Collect()
}

func benchStack(b *testing.B) (*workload.Universe, *mediate.Mediator) {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	soton := httptest.NewServer(endpoint.NewServer("southampton", u.Southampton))
	b.Cleanup(soton.Close)
	kisti := httptest.NewServer(endpoint.NewServer("kisti", u.KISTI))
	b.Cleanup(kisti.Close)
	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.KistiVoidURI, SPARQLEndpoint: kisti.URL,
		URISpace: workload.KistiURIPattern, Vocabularies: []string{rdf.KISTINS}})
	alignKB := align.NewKB()
	_ = alignKB.Add(workload.AKT2KISTI())
	m := mediate.New(dsKB, alignKB, u.Coref, mediate.WithRewriteFilters(true))
	return u, m
}

// BenchmarkE5_MediatorEndToEnd — E5: rewrite + federated execution over
// HTTP against both endpoints.
func BenchmarkE5_MediatorEndToEnd(b *testing.B) {
	_, m := benchStack(b)
	targets := []string{workload.SotonVoidURI, workload.KistiVoidURI}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := workload.Figure1Query(i % 50)
		if _, err := benchSelect(m, q, rdf.AKTNS, targets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_FederatedRecall — E6: the recall experiment loop (source
// alone vs both repositories).
func BenchmarkE6_FederatedRecall(b *testing.B) {
	_, m := benchStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := workload.Figure1Query(i % 50)
		so, err := benchSelect(m, q, rdf.AKTNS, []string{workload.SotonVoidURI})
		if err != nil {
			b.Fatal(err)
		}
		fed, err := benchSelect(m, q, rdf.AKTNS,
			[]string{workload.SotonVoidURI, workload.KistiVoidURI})
		if err != nil {
			b.Fatal(err)
		}
		if len(fed.Solutions) < len(so.Solutions) {
			b.Fatal("federation lost answers")
		}
	}
}

// BenchmarkFederation_SequentialVsConcurrent — the federation executor's
// concurrent fan-out against a sequential baseline (worker pool of 1)
// over four simulated endpoints, each with injected network latency: the
// regime the paper's deployed architecture runs in, where querying all
// repositories sequentially pays every endpoint's round trip in series.
func BenchmarkFederation_SequentialVsConcurrent(b *testing.B) {
	const injectedLatency = 2 * time.Millisecond
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	slow := func(name string, st *store.Store) *httptest.Server {
		h := endpoint.NewServer(name, st)
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(injectedLatency)
			h.ServeHTTP(w, r)
		}))
	}
	soton := slow("southampton", u.Southampton)
	b.Cleanup(soton.Close)
	kisti := slow("kisti", u.KISTI)
	b.Cleanup(kisti.Close)
	mirror1 := slow("mirror1", u.Southampton)
	b.Cleanup(mirror1.Close)
	mirror2 := slow("mirror2", u.Southampton)
	b.Cleanup(mirror2.Close)

	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.KistiVoidURI, SPARQLEndpoint: kisti.URL,
		URISpace: workload.KistiURIPattern, Vocabularies: []string{rdf.KISTINS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: "http://mirror1.example/void", SPARQLEndpoint: mirror1.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: "http://mirror2.example/void", SPARQLEndpoint: mirror2.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
	alignKB := align.NewKB()
	_ = alignKB.Add(workload.AKT2KISTI())
	targets := []string{workload.SotonVoidURI, workload.KistiVoidURI,
		"http://mirror1.example/void", "http://mirror2.example/void"}

	for _, mode := range []struct {
		name        string
		concurrency int
	}{{"Sequential", 1}, {"Concurrent", 8}} {
		b.Run(mode.name, func(b *testing.B) {
			m := mediate.New(dsKB, alignKB, u.Coref,
				mediate.WithRewriteFilters(true),
				mediate.WithFederation(federate.Options{Concurrency: mode.concurrency}))
			b.Cleanup(m.Close)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := workload.Figure1Query(i % 50)
				fr, err := benchSelect(m, q, rdf.AKTNS, targets)
				if err != nil {
					b.Fatal(err)
				}
				for _, da := range fr.PerDataset {
					if da.Err != nil {
						b.Fatal(da.Err)
					}
				}
			}
		})
	}
}

// BenchmarkStreamingVsBuffered — time to first solution over four
// endpoints of which one is slow: the buffered Collect path must
// wait for the slowest repository before the caller sees anything, while
// the streaming Query path hands over the first merged solution as soon
// as a fast endpoint yields it (and tears the slow request down on
// Close). ns/op is the time-to-first-solution.
func BenchmarkStreamingVsBuffered(b *testing.B) {
	const fastLatency = 1 * time.Millisecond
	const slowLatency = 25 * time.Millisecond
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	delayed := func(name string, st *store.Store, d time.Duration) *httptest.Server {
		h := endpoint.NewServer(name, st)
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(d)
			h.ServeHTTP(w, r)
		}))
	}
	var targets []string
	dsKB := voidkb.NewKB()
	for i, d := range []time.Duration{fastLatency, fastLatency, fastLatency, slowLatency} {
		srv := delayed(fmt.Sprintf("replica%d", i), u.Southampton, d)
		b.Cleanup(srv.Close)
		uri := fmt.Sprintf("http://replica%d.example/void", i)
		_ = dsKB.Add(&voidkb.Dataset{URI: uri, SPARQLEndpoint: srv.URL,
			URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
		targets = append(targets, uri)
	}
	alignKB := align.NewKB()
	_ = alignKB.Add(workload.AKT2KISTI())

	b.Run("Buffered", func(b *testing.B) {
		m := mediate.New(dsKB, alignKB, u.Coref, mediate.WithRewriteFilters(true))
		b.Cleanup(m.Close)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr, err := benchSelect(m, workload.Figure1Query(i%50), rdf.AKTNS, targets)
			if err != nil {
				b.Fatal(err)
			}
			if len(fr.Solutions) == 0 {
				b.Fatal("no solutions")
			}
			_ = fr.Solutions[0] // first solution available only now
		}
	})
	b.Run("Streaming", func(b *testing.B) {
		m := mediate.New(dsKB, alignKB, u.Coref, mediate.WithRewriteFilters(true))
		b.Cleanup(m.Close)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := m.Query(context.Background(), mediate.QueryRequest{
				Query: workload.Figure1Query(i % 50), SourceOnt: rdf.AKTNS, Targets: targets,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Bindings().Next(); err != nil {
				b.Fatal(err)
			}
			// First solution in hand; abandon the slow remainder.
			res.Close()
		}
	})
}

// BenchmarkPlanner_PlannedVsUnplanned — the voiD-driven planner against
// blind fan-out on the Figure-1 workload: four repositories of which only
// two are voiD-relevant (DBpedia and ECS stand-ins speak vocabularies no
// alignment connects to AKT). Unplanned federation pays all four round
// trips; the planner dispatches exactly the two relevant sub-queries.
// The rt/op metric counts endpoint round trips per federated query.
func BenchmarkPlanner_PlannedVsUnplanned(b *testing.B) {
	const injectedLatency = 2 * time.Millisecond
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	var roundTrips atomic.Int64
	slow := func(name string, st *store.Store) *httptest.Server {
		h := endpoint.NewServer(name, st)
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			roundTrips.Add(1)
			time.Sleep(injectedLatency)
			h.ServeHTTP(w, r)
		}))
	}
	soton := slow("southampton", u.Southampton)
	b.Cleanup(soton.Close)
	kisti := slow("kisti", u.KISTI)
	b.Cleanup(kisti.Close)
	dbp := slow("dbpedia", store.New())
	b.Cleanup(dbp.Close)
	ecs := slow("ecs", store.New())
	b.Cleanup(ecs.Close)

	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.KistiVoidURI, SPARQLEndpoint: kisti.URL,
		URISpace: workload.KistiURIPattern, Vocabularies: []string{rdf.KISTINS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.DBPVoidURI, SPARQLEndpoint: dbp.URL,
		URISpace: workload.DBPURIPattern, Vocabularies: []string{rdf.DBONS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.ECSVoidURI, SPARQLEndpoint: ecs.URL,
		URISpace: workload.ECSURIPattern, Vocabularies: []string{rdf.ECSNS}})
	alignKB := align.NewKB()
	_ = alignKB.Add(workload.AKT2KISTI())
	_ = alignKB.Add(workload.ECS2DBpedia())
	allTargets := []string{workload.SotonVoidURI, workload.KistiVoidURI,
		workload.DBPVoidURI, workload.ECSVoidURI}

	for _, mode := range []struct {
		name    string
		targets []string // nil = planner-selected
	}{{"Unplanned", allTargets}, {"Planned", nil}} {
		b.Run(mode.name, func(b *testing.B) {
			m := mediate.New(dsKB, alignKB, u.Coref, mediate.WithRewriteFilters(true))
			b.Cleanup(m.Close) // detach KB hooks; the KBs are shared across sub-benchmarks
			roundTrips.Store(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := workload.Figure1Query(i % 50)
				fr, err := benchSelect(m, q, rdf.AKTNS, mode.targets)
				if err != nil {
					b.Fatal(err)
				}
				for _, da := range fr.PerDataset {
					if da.Err != nil {
						b.Fatal(da.Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(roundTrips.Load())/float64(b.N), "rt/op")
		})
	}
}

// BenchmarkDecomposedVsBroadcast — the per-BGP decomposition layer on a
// cross-vocabulary workload: the AKT data and the citation metrics live
// in different repositories with no alignment between them, over four
// registered endpoints. Three strategies:
//
//   - BroadcastWhole ships the full pattern to every repository — the
//     pre-decomposition behaviour. It pays a round trip per registered
//     endpoint and returns NOTHING (no repository can satisfy a BGP
//     spanning both vocabularies), which is exactly why the layer exists.
//   - BroadcastFragments decomposes but disables bound joins (MaxBindRows
//     -1): each fragment's full extent crosses the wire and the mediator
//     hash-joins.
//   - BoundJoin is the default decomposed path: the seed fragment's
//     bindings are VALUES-injected into the next fragment's sub-query, so
//     endpoints only return solutions that join.
//
// rt/op counts endpoint round trips, sol/op the solutions transferred
// from endpoints, row/op the correct joined rows produced. BoundJoin
// transfers strictly fewer solutions than either broadcast mode and
// fewer round trips than BroadcastWhole, while being the only strategy
// (besides BroadcastFragments) that answers the query at all.
func BenchmarkDecomposedVsBroadcast(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	var roundTrips atomic.Int64
	counted := func(name string, st *store.Store) *httptest.Server {
		h := endpoint.NewServer(name, st)
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			roundTrips.Add(1)
			h.ServeHTTP(w, r)
		}))
	}
	soton := counted("southampton", u.Southampton)
	b.Cleanup(soton.Close)
	metrics := counted("metrics", workload.MetricsStore(u))
	b.Cleanup(metrics.Close)
	dbp := counted("dbpedia", store.New())
	b.Cleanup(dbp.Close)
	ecs := counted("ecs", store.New())
	b.Cleanup(ecs.Close)

	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS},
		Triples:            int64(u.Southampton.Size()),
		PropertyPartitions: map[string]int64{rdf.AKTHasAuthor: 450}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.MetricsVoidURI, SPARQLEndpoint: metrics.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{workload.MetricsNS},
		Triples:            300,
		PropertyPartitions: map[string]int64{workload.MetricsCitationCount: 150}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.DBPVoidURI, SPARQLEndpoint: dbp.URL,
		URISpace: workload.DBPURIPattern, Vocabularies: []string{rdf.DBONS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.ECSVoidURI, SPARQLEndpoint: ecs.URL,
		URISpace: workload.ECSURIPattern, Vocabularies: []string{rdf.ECSNS}})
	alignKB := align.NewKB()
	allTargets := []string{workload.SotonVoidURI, workload.MetricsVoidURI,
		workload.DBPVoidURI, workload.ECSVoidURI}

	run := func(b *testing.B, m *mediate.Mediator, targets []string) (sols, rows int) {
		fr, err := benchSelect(m, workload.CrossVocabularyQuery(b.N%50), rdf.AKTNS, targets)
		if err != nil {
			b.Fatal(err)
		}
		for _, da := range fr.PerDataset {
			sols += da.Solutions
		}
		return sols, len(fr.Solutions)
	}

	for _, mode := range []struct {
		name    string
		targets []string // nil = planner + decomposer
		opts    decompose.Options
	}{
		{"BroadcastWhole", allTargets, decompose.Options{}},
		{"BroadcastFragments", nil, decompose.Options{MaxBindRows: -1}},
		{"BoundJoin", nil, decompose.Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			m := mediate.New(dsKB, alignKB, u.Coref, mediate.WithDecomposer(mode.opts))
			b.Cleanup(m.Close)
			roundTrips.Store(0)
			var transferred, produced int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sols, rows := run(b, m, mode.targets)
				transferred += int64(sols)
				produced += int64(rows)
			}
			b.StopTimer()
			b.ReportMetric(float64(roundTrips.Load())/float64(b.N), "rt/op")
			b.ReportMetric(float64(transferred)/float64(b.N), "sol/op")
			b.ReportMetric(float64(produced)/float64(b.N), "row/op")
			if mode.targets == nil && produced == 0 {
				b.Fatal("decomposed mode produced no rows")
			}
		})
	}
}

// BenchmarkE7_RewriteVsMaterialise — E7: the scalability comparison. The
// Rewrite and Materialise sub-benchmarks share the same universe size so
// their ns/op are directly comparable.
func BenchmarkE7_RewriteVsMaterialise(b *testing.B) {
	cfg := workload.Config{Persons: 500, Papers: 2000, MaxAuthors: 4, Overlap: 1.0, Seed: 42}
	u := workload.Generate(cfg)
	oa := workload.AKT2KISTI()
	b.Run("Rewrite", func(b *testing.B) {
		rw := core.New(oa.Alignments, funcs.StandardRegistry(u.Coref))
		q := sparql.MustParse(workload.Figure1Query(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := rw.RewriteQuery(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Materialise", func(b *testing.B) {
		m := reason.New(oa.Alignments, u.Coref, reason.Options{SourceURISpace: workload.SotonURIPattern})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := store.New()
			if _, err := m.Materialise(u.KISTI, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8_FilterExtension — E8: Figure 6 rewriting with the algebra
// extension enabled (FILTER constants translated).
func BenchmarkE8_FilterExtension(b *testing.B) {
	rw := paperRewriter()
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = workload.KistiURIPattern
	q := sparql.MustParse(`PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author ?n.
  ?paper akt:has-author ?a.
  FILTER (!(?a = id:person-02686 ) && (?n = id:person-02686))
}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rw.RewriteQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_CorefLookup — E9: equivalence-class lookup with the 200+
// member class the paper reports for one person. MapSameAs measures the
// rewrite-side function call; the MergeRep sub-benchmarks compare three
// generations of the federated merge's per-binding representative lookup
// — re-derive from the coref store each time, memoise the representative
// string and rebuild the term per binding, and the current dictionary-
// interned cache that returns the ready-made term (zero allocations on
// the hot path).
func BenchmarkE9_CorefLookup(b *testing.B) {
	cs := coref.NewStore()
	hub := "http://southampton.rkbexplorer.com/id/person-02686"
	members := []rdf.Term{rdf.NewIRI(hub)}
	for i := 0; i < 200; i++ {
		m := fmt.Sprintf("http://mirror%03d.example/id/person-02686", i)
		cs.Add(hub, m)
		members = append(members, rdf.NewIRI(m))
	}
	kisti := "http://kisti.rkbexplorer.com/id/PER_00000000105047"
	cs.Add(hub, kisti)
	members = append(members, rdf.NewIRI(kisti))

	b.Run("MapSameAs", func(b *testing.B) {
		reg := funcs.StandardRegistry(cs)
		args := []rdf.Term{rdf.NewIRI(hub), rdf.NewLiteral(workload.KistiURIPattern)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := reg.Call(rdf.MapSameAs, args); err != nil {
				b.Fatal(err)
			}
		}
	})
	var sink rdf.Term
	b.Run("MergeRep/Recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := members[i%len(members)]
			r := t.Value
			for _, eq := range cs.Equivalents(t.Value) {
				if eq < r {
					r = eq
				}
			}
			sink = t
			if r != t.Value {
				sink = rdf.NewIRI(r)
			}
		}
	})
	b.Run("MergeRep/StringMemo", func(b *testing.B) {
		reps := make(map[string]string)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := members[i%len(members)]
			r, ok := reps[t.Value]
			if !ok {
				r = t.Value
				for _, eq := range cs.Equivalents(t.Value) {
					if eq < r {
						r = eq
					}
				}
				reps[t.Value] = r
			}
			sink = t
			if r != t.Value {
				sink = rdf.NewIRI(r)
			}
		}
	})
	b.Run("MergeRep/DictInterned", func(b *testing.B) {
		rc := federate.NewRepCache(cs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = rc.Term(members[i%len(members)])
		}
	})
	_ = sink
}

// BenchmarkE10_RewriteScaling — E10: the BGP-size × alignment-KB grid.
func BenchmarkE10_RewriteScaling(b *testing.B) {
	for _, bgp := range []int{1, 4, 16} {
		for _, kb := range []int{8, 64, 512} {
			b.Run(fmt.Sprintf("bgp%d_kb%d", bgp, kb), func(b *testing.B) {
				rw := core.New(workload.SyntheticAlignments(kb), nil)
				q := sparql.MustParse(workload.SyntheticBGPQuery(bgp, kb))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := rw.RewriteQuery(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationMatchMode — first-match (paper) vs all-matches union.
func BenchmarkAblationMatchMode(b *testing.B) {
	eas := workload.SyntheticAlignments(64)
	eas = append(eas, workload.SyntheticAlignments(64)...) // duplicates
	q := sparql.MustParse(workload.SyntheticBGPQuery(8, 64))
	for _, mode := range []struct {
		name string
		mm   core.MatchMode
	}{{"FirstMatch", core.FirstMatch}, {"AllMatches", core.AllMatches}} {
		b.Run(mode.name, func(b *testing.B) {
			rw := core.New(eas, nil)
			rw.Opts.MatchMode = mode.mm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := rw.RewriteQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinReorder — evaluator selectivity heuristic on/off.
func BenchmarkAblationJoinReorder(b *testing.B) {
	cfg := workload.DefaultConfig()
	u := workload.Generate(cfg)
	q := sparql.MustParse(workload.Figure1Query(1))
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"Heuristic", false}, {"SyntacticOrder", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := &eval.Engine{Store: u.Southampton, DisableJoinReorder: mode.disable}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Select(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFDPolicy — FD failure policies under an empty coref
// store (every ground sameas fails).
func BenchmarkAblationFDPolicy(b *testing.B) {
	q := sparql.MustParse(workload.Figure1Query(3))
	for _, mode := range []struct {
		name   string
		policy core.FDPolicy
	}{{"KeepOriginal", core.KeepOriginal}, {"SkipAlignment", core.SkipAlignment}} {
		b.Run(mode.name, func(b *testing.B) {
			rw := core.New(workload.AKT2KISTI().Alignments, funcs.StandardRegistry(coref.NewStore()))
			rw.Opts.Policy = mode.policy
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := rw.RewriteQuery(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracingOverhead measures the span machinery's cost on the
// federated hot path: the same fan-out through the executor with a live
// trace in the context — every sub-query attempt opens spans, records
// attributes and stamps an outbound traceparent — versus without one,
// where every obs call no-ops. The delta is the per-query price of
// distributed tracing.
func BenchmarkTracingOverhead(b *testing.B) {
	_, m := benchStack(b)
	soton, _ := m.Datasets.Get(workload.SotonVoidURI)
	kisti, _ := m.Datasets.Get(workload.KistiVoidURI)
	run := func(b *testing.B, traced bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var tr *obs.Trace
			if traced {
				ctx, tr = obs.NewTrace(ctx, "query")
			}
			freq := federate.Request{
				Query: workload.Figure1Query(i % 50), SourceOnt: rdf.AKTNS, Vars: []string{"a"},
				Targets: []federate.Target{
					{Dataset: workload.SotonVoidURI, Endpoint: soton.SPARQLEndpoint},
					{Dataset: workload.KistiVoidURI, Endpoint: kisti.SPARQLEndpoint, NeedsRewrite: true},
				},
			}
			st := m.Exec.SelectStream(ctx, freq)
			for {
				if _, err := st.Next(); err != nil {
					break
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			if tr != nil {
				tr.Finish()
			}
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, false) })
	b.Run("traced", func(b *testing.B) { run(b, true) })
}

// BenchmarkAnalyzeOverhead measures the per-operator profiling
// machinery's cost on the decomposed-query hot path: the same
// cross-vocabulary bound join through the decompose engine with a live
// trace in the context — every pipeline stage opens an operator span,
// counts rows and feeds the observed-cardinality store — versus without
// one, where the span calls no-op. The delta is the per-query price of
// EXPLAIN ANALYZE's runtime profiles.
func BenchmarkAnalyzeOverhead(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	soton := httptest.NewServer(endpoint.NewServer("southampton", u.Southampton))
	b.Cleanup(soton.Close)
	metricsStore := workload.MetricsStore(u)
	metricsEP := httptest.NewServer(endpoint.NewServer("metrics", metricsStore))
	b.Cleanup(metricsEP.Close)
	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS},
		Triples: int64(u.Southampton.Size()),
		PropertyPartitions: map[string]int64{
			rdf.AKTHasAuthor: int64(u.Southampton.PredicateCount(rdf.NewIRI(rdf.AKTHasAuthor))),
		}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.MetricsVoidURI, SPARQLEndpoint: metricsEP.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{workload.MetricsNS},
		Triples: int64(metricsStore.Size()),
		PropertyPartitions: map[string]int64{
			workload.MetricsCitationCount: int64(metricsStore.PredicateCount(rdf.NewIRI(workload.MetricsCitationCount))),
		}})
	m := mediate.New(dsKB, align.NewKB(), u.Coref)
	b.Cleanup(m.Close)

	dcm, err := m.Decomposer.Decompose(workload.CrossVocabularyQuery(1), rdf.AKTNS)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, profiled bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := context.Background()
			var tr *obs.Trace
			if profiled {
				ctx, tr = obs.NewTrace(ctx, "query")
			}
			r := m.JoinEngine.Run(ctx, dcm)
			for _, err := range r.Solutions() {
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
			if tr != nil {
				tr.Finish()
			}
		}
	}
	b.Run("unprofiled", func(b *testing.B) { run(b, false) })
	b.Run("profiled", func(b *testing.B) { run(b, true) })
}

// BenchmarkResultCacheHitVsMiss — the serving tier's federated result
// cache: the miss path pays the full rewrite + fan-out + merge over
// HTTP; the hit path replays the materialised answer with zero endpoint
// round trips (asserted).
func BenchmarkResultCacheHitVsMiss(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	var roundTrips atomic.Int64
	count := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			roundTrips.Add(1)
			h.ServeHTTP(w, r)
		})
	}
	soton := httptest.NewServer(count(endpoint.NewServer("southampton", u.Southampton)))
	b.Cleanup(soton.Close)
	kisti := httptest.NewServer(count(endpoint.NewServer("kisti", u.KISTI)))
	b.Cleanup(kisti.Close)
	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.KistiVoidURI, SPARQLEndpoint: kisti.URL,
		URISpace: workload.KistiURIPattern, Vocabularies: []string{rdf.KISTINS}})
	alignKB := align.NewKB()
	_ = alignKB.Add(workload.AKT2KISTI())
	m := mediate.New(dsKB, alignKB, u.Coref,
		mediate.WithRewriteFilters(true), mediate.WithServing(serve.Options{}))

	targets := []string{workload.SotonVoidURI, workload.KistiVoidURI}
	q := workload.Figure1Query(0)

	b.Run("miss", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Serve.Flush() // every iteration re-executes the fan-out
			if _, err := benchSelect(m, q, rdf.AKTNS, targets); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		m.Serve.Flush()
		if _, err := benchSelect(m, q, rdf.AKTNS, targets); err != nil {
			b.Fatal(err) // prime the entry
		}
		primed := roundTrips.Load()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := benchSelect(m, q, rdf.AKTNS, targets); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := roundTrips.Load(); got != primed {
			b.Fatalf("hit path made %d endpoint round trips", got-primed)
		}
	})
}

// BenchmarkHedgedVsUnhedged — hedged sub-queries against a degraded
// primary: the primary endpoint stalls every request while a replica
// stays fast. Unhedged, every query pays the stall; hedged (with the
// primary's observed p95 primed from its healthy past), the backup
// fires after the small hedge delay and the p99 stays well under the
// slow endpoint's latency. Reported as p99-ms per variant.
func BenchmarkHedgedVsUnhedged(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	const stall = 50 * time.Millisecond
	sotonEP := endpoint.NewServer("southampton", u.Southampton)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(stall)
		sotonEP.ServeHTTP(w, r)
	}))
	b.Cleanup(slow.Close)
	fast := httptest.NewServer(endpoint.NewServer("southampton-replica", u.Southampton))
	b.Cleanup(fast.Close)

	run := func(b *testing.B, hedge bool) {
		dsKB := voidkb.NewKB()
		_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: slow.URL,
			Replicas: []string{fast.URL},
			URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}})
		alignKB := align.NewKB()
		_ = alignKB.Add(workload.AKT2KISTI())
		m := mediate.New(dsKB, alignKB, u.Coref,
			mediate.WithRewriteFilters(true),
			mediate.WithFederation(federate.Options{
				Hedge: hedge, HedgeMinDelay: 5 * time.Millisecond,
			}))
		// The primary's healthy history: its observed p95 is a few
		// milliseconds, so the stall overshoots it and triggers the hedge.
		for i := 0; i < 50; i++ {
			m.Obs.Health.Record(slow.URL, 2*time.Millisecond, nil)
		}
		targets := []string{workload.SotonVoidURI}
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := benchSelect(m, workload.Figure1Query(i%50), rdf.AKTNS, targets); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		sortDurations(lat)
		p99 := lat[len(lat)*99/100]
		b.ReportMetric(float64(p99.Microseconds())/1000, "p99-ms")
	}
	b.Run("unhedged", func(b *testing.B) { run(b, false) })
	b.Run("hedged", func(b *testing.B) { run(b, true) })
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// BenchmarkViewVsFederated — the materialized-view tier against the
// decomposed federated path it shortcuts. Both sub-benchmarks run the
// same cross-vocabulary join; Federated decomposes it and joins over
// HTTP every iteration, View warms the view once and then answers every
// iteration from the embedded store. The rt/op metric counts endpoint
// round trips — the View sub-benchmark fails unless it is exactly zero.
func BenchmarkViewVsFederated(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	var roundTrips atomic.Int64
	counted := func(name string, st *store.Store) *httptest.Server {
		h := endpoint.NewServer(name, st)
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			roundTrips.Add(1)
			h.ServeHTTP(w, r)
		}))
	}
	soton := counted("southampton", u.Southampton)
	b.Cleanup(soton.Close)
	metrics := counted("metrics", workload.MetricsStore(u))
	b.Cleanup(metrics.Close)
	dsKB := voidkb.NewKB()
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: soton.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS},
		Triples:            int64(u.Southampton.Size()),
		PropertyPartitions: map[string]int64{rdf.AKTHasAuthor: 450}})
	_ = dsKB.Add(&voidkb.Dataset{URI: workload.MetricsVoidURI, SPARQLEndpoint: metrics.URL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{workload.MetricsNS},
		Triples:            300,
		PropertyPartitions: map[string]int64{workload.MetricsCitationCount: 150}})
	query := workload.CrossVocabularyQuery(7)

	var fedRows int
	b.Run("Federated", func(b *testing.B) {
		m := mediate.New(dsKB, align.NewKB(), u.Coref)
		b.Cleanup(m.Close)
		roundTrips.Store(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fr, err := benchSelect(m, query, rdf.AKTNS, nil)
			if err != nil {
				b.Fatal(err)
			}
			fedRows = len(fr.Solutions)
		}
		b.StopTimer()
		b.ReportMetric(float64(roundTrips.Load())/float64(b.N), "rt/op")
	})
	b.Run("View", func(b *testing.B) {
		m := mediate.New(dsKB, align.NewKB(), u.Coref,
			mediate.WithViews(view.Options{MinFrequency: 1}))
		b.Cleanup(m.Close)
		// Warm: the first query is observed, answered federated, and
		// materialized in the background; wait for the view to be ready.
		if _, err := benchSelect(m, query, rdf.AKTNS, nil); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			vs := m.Stats().Views
			if vs != nil && len(vs.Views) == 1 && vs.Views[0].State == "ready" {
				break
			}
			if time.Now().After(deadline) {
				b.Fatal("view never materialized")
			}
			time.Sleep(5 * time.Millisecond)
		}
		roundTrips.Store(0)
		b.ReportAllocs()
		b.ResetTimer()
		var rows int
		for i := 0; i < b.N; i++ {
			fr, err := benchSelect(m, query, rdf.AKTNS, nil)
			if err != nil {
				b.Fatal(err)
			}
			rows = len(fr.Solutions)
		}
		b.StopTimer()
		if rt := roundTrips.Load(); rt != 0 {
			b.Fatalf("view-answered queries made %d endpoint round trips, want 0", rt)
		}
		if fedRows != 0 && rows != fedRows {
			b.Fatalf("view answered %d rows, federated answered %d", rows, fedRows)
		}
		b.ReportMetric(0, "rt/op")
	})
}

// BenchmarkDictStoreVsMapStore — the dictionary-encoded store against the
// nested-map store it generalises, on the workload's Southampton graph:
// bulk load and the hot one-predicate scan. Run with -benchmem; README
// records the footprint delta next to the other baselines.
func BenchmarkDictStoreVsMapStore(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)
	triples := u.Southampton.MatchAll(rdf.Triple{})
	authorScan := rdf.Triple{P: rdf.NewIRI(rdf.AKTHasAuthor)}

	b.Run("Load/MapStore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := store.New()
			for _, tr := range triples {
				st.Add(tr)
			}
		}
		b.ReportMetric(float64(len(triples)), "triples")
	})
	b.Run("Load/DictStore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st := store.NewDictStore()
			for _, tr := range triples {
				st.Add(tr)
			}
		}
		b.ReportMetric(float64(len(triples)), "triples")
	})

	plain := store.New()
	enc := store.NewDictStore()
	for _, tr := range triples {
		plain.Add(tr)
		enc.Add(tr)
	}
	want := len(plain.MatchAll(authorScan))
	b.Run("Scan/MapStore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := len(plain.MatchAll(authorScan)); got != want {
				b.Fatalf("scan returned %d, want %d", got, want)
			}
		}
	})
	b.Run("Scan/DictStore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for range enc.Scan(authorScan) {
				n++
			}
			if n != want {
				b.Fatalf("scan returned %d, want %d", n, want)
			}
		}
	})
}
