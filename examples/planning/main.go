// Planning: the voiD-driven federation planner (internal/plan) in front
// of the concurrent executor.
//
// Four SPARQL endpoints join the federation — Southampton (AKT),
// KISTI (its own vocabulary, reachable through the 24-alignment KB), and
// DBpedia/ECS stand-ins whose vocabularies no alignment connects to AKT.
// A federated query that names no targets is planned:
//
//  1. source selection prunes DBpedia and ECS (their voiD profiles say
//     they cannot answer an AKT query), so only two endpoints see
//     traffic;
//  2. a VALUES-seeded query shards into batches that recombine under the
//     owl:sameAs merge;
//  3. after a warm-up, dispatch order follows observed endpoint latency
//     (fastest first) and slow endpoints get proportional deadlines.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)

	// Tier 3: four repositories, each counting the requests it receives.
	counted := func(name string, st *sparqlrw.Store, delay time.Duration) (*httptest.Server, *atomic.Int64) {
		var hits atomic.Int64
		h := sparqlrw.NewEndpointServer(name, st)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			time.Sleep(delay)
			h.ServeHTTP(w, r)
		}))
		return srv, &hits
	}
	soton, sotonHits := counted("southampton", u.Southampton, 0)
	defer soton.Close()
	kisti, kistiHits := counted("kisti", u.KISTI, 10*time.Millisecond) // the slow repository
	defer kisti.Close()
	dbp, dbpHits := counted("dbpedia", sparqlrw.NewStore(), 0)
	defer dbp.Close()
	ecs, ecsHits := counted("ecs", sparqlrw.NewStore(), 0)
	defer ecs.Close()

	// Tier 2: voiD profiles for all four, alignments reaching only KISTI.
	dsKB := sparqlrw.NewDatasetKB()
	for _, d := range []*sparqlrw.Dataset{
		{URI: workload.SotonVoidURI, Title: "Southampton RKB", SPARQLEndpoint: soton.URL,
			URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}},
		{URI: workload.KistiVoidURI, Title: "KISTI", SPARQLEndpoint: kisti.URL,
			URISpace: workload.KistiURIPattern, Vocabularies: []string{rdf.KISTINS}},
		{URI: workload.DBPVoidURI, Title: "DBpedia", SPARQLEndpoint: dbp.URL,
			URISpace: workload.DBPURIPattern, Vocabularies: []string{rdf.DBONS}},
		{URI: workload.ECSVoidURI, Title: "ECS", SPARQLEndpoint: ecs.URL,
			URISpace: workload.ECSURIPattern, Vocabularies: []string{rdf.ECSNS}},
	} {
		must(dsKB.Add(d))
	}
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))
	must(alignKB.Add(workload.ECS2DBpedia()))

	// Tier 1: the mediator; the planner is on by default.
	mediator := sparqlrw.NewMediator(dsKB, alignKB, u.Coref,
		sparqlrw.WithMediatorRewriteFilters(true))
	api := httptest.NewServer(sparqlrw.MediatorHandler(mediator))
	defer api.Close()

	// 1. Explain the plan for the Figure-1 query: 2 of 4 repositories kept.
	queryText := workload.Figure1Query(1)
	var pl struct {
		Decisions []struct {
			Dataset  string   `json:"dataset"`
			Relevant bool     `json:"relevant"`
			Reasons  []string `json:"reasons"`
		} `json:"decisions"`
		SubRequests []struct {
			Dataset string `json:"dataset"`
			Shard   int    `json:"shard"`
			Shards  int    `json:"shards"`
		} `json:"subRequests"`
	}
	postJSON(api.URL+"/api/plan", map[string]any{"query": queryText}, &pl)
	fmt.Println("=== /api/plan: source selection over 4 repositories ===")
	for _, d := range pl.Decisions {
		verdict := "PRUNED "
		if d.Relevant {
			verdict = "KEPT   "
		}
		fmt.Printf("  %s %-45s %s\n", verdict, d.Dataset, strings.Join(d.Reasons, "; "))
	}
	fmt.Printf("  -> %d sub-queries dispatched instead of 4\n\n", len(pl.SubRequests))

	// 2. Run it with no targets over the protocol endpoint: the planner
	// selects them; the summary comes from the Go API's Summary.
	res, err := mediator.Query(context.Background(), sparqlrw.MediatorQueryRequest{Query: queryText})
	must(err)
	fr, err := res.Bindings().Collect()
	must(err)
	fmt.Println("=== planner-selected federated SELECT ===")
	for _, pd := range fr.PerDataset {
		fmt.Printf("  %-45s %d raw answers in %s\n", pd.Dataset, pd.Solutions, pd.Latency.Round(time.Millisecond))
	}
	fmt.Printf("  merged: %d co-authors (%d duplicates collapsed)\n", len(fr.Solutions), fr.Duplicates)
	fmt.Printf("  endpoint hits: soton=%d kisti=%d dbpedia=%d ecs=%d\n\n",
		sotonHits.Load(), kistiHits.Load(), dbpHits.Load(), ecsHits.Load())

	// 3. VALUES sharding: seed the query with 9 papers, batch size 3.
	mediator.Configure(sparqlrw.WithMediatorPlanner(sparqlrw.PlannerOptions{ValuesBatch: 3}))
	var sb strings.Builder
	sb.WriteString("PREFIX akt:<" + rdf.AKTNS + ">\nSELECT DISTINCT ?a WHERE {\n  VALUES ?paper {")
	for i := 0; i < 9; i++ {
		sb.WriteString(" <" + workload.SotonPaper(i).Value + ">")
	}
	sb.WriteString(" }\n  ?paper akt:has-author ?a .\n}")
	res2, err := mediator.Query(context.Background(), sparqlrw.MediatorQueryRequest{Query: sb.String()})
	must(err)
	fr2, err := res2.Bindings().Collect()
	must(err)
	fmt.Println("=== VALUES sharding (9 rows, batch 3) ===")
	for _, pd := range fr2.PerDataset {
		fmt.Printf("  %-45s shard %d/%d -> %d answers\n", pd.Dataset, pd.Shard, pd.Shards, pd.Solutions)
	}
	fmt.Printf("  merged: %d distinct authors across all shards\n\n", len(fr2.Solutions))

	// 4. Adaptive ordering: with latency history accumulated, the next
	// plan dispatches the fast repository first and bounds the slow one.
	var pl2 struct {
		SubRequests []struct {
			Dataset   string  `json:"dataset"`
			TimeoutMS float64 `json:"timeoutMs"`
		} `json:"subRequests"`
	}
	postJSON(api.URL+"/api/plan", map[string]any{"query": queryText}, &pl2)
	fmt.Println("=== adaptive ordering from observed latency ===")
	for i, sr := range pl2.SubRequests {
		deadline := "default"
		if sr.TimeoutMS > 0 {
			deadline = fmt.Sprintf("%.0fms", sr.TimeoutMS)
		}
		fmt.Printf("  dispatch %d: %-45s deadline %s\n", i+1, sr.Dataset, deadline)
	}

	var stats sparqlrw.MediatorStats
	getJSON(api.URL+"/api/stats", &stats)
	fmt.Printf("\nplanner stats: %+v\n", *stats.Planner)
	fmt.Printf("queries by form: %d SELECT\n", stats.Queries.Select)
}

func postJSON(url string, req any, out any) {
	body, err := json.Marshal(req)
	must(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	must(err)
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s\n%s", url, resp.Status, buf.String())
	}
	must(json.Unmarshal(buf.Bytes(), out))
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	must(err)
	defer resp.Body.Close()
	must(json.NewDecoder(resp.Body).Decode(out))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
