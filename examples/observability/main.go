// Observability: end-to-end query tracing and metrics over the federated
// mediator. Starts three SPARQL repositories (Southampton/AKT, KISTI, a
// citation-metrics store speaking a second vocabulary over the same paper
// URIs), runs a cross-vocabulary query with the explain=trace protocol
// extension, and pretty-prints the span tree the mediator grew for it —
// source selection, BGP decomposition, every per-endpoint sub-query with
// its retries, rows, bytes and time-to-first-solution. It then scrapes
// GET /metrics and shows the Prometheus series the same query moved.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)

	// Tier 3: three repositories. The metrics store answers a vocabulary
	// no alignment reaches, so the cross-vocabulary query below only runs
	// by decomposing — which makes for an interesting trace.
	soton := httptest.NewServer(sparqlrw.NewEndpointServer("southampton", u.Southampton))
	defer soton.Close()
	kisti := httptest.NewServer(sparqlrw.NewEndpointServer("kisti", u.KISTI))
	defer kisti.Close()
	metrics := httptest.NewServer(sparqlrw.NewEndpointServer("metrics", workload.MetricsStore(u)))
	defer metrics.Close()

	dsKB := sparqlrw.NewDatasetKB()
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: soton.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{rdf.AKTNS}, Triples: int64(u.Southampton.Size()),
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kisti.URL, URISpace: workload.KistiURIPattern,
		Vocabularies: []string{rdf.KISTINS}, Triples: int64(u.KISTI.Size()),
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.MetricsVoidURI, Title: "Citation metrics",
		SPARQLEndpoint: metrics.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{workload.MetricsNS},
	}))
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))

	m := sparqlrw.NewMediator(dsKB, alignKB, u.Coref,
		sparqlrw.WithMediatorRewriteFilters(true),
		sparqlrw.WithMediatorObservability(sparqlrw.ObservabilityOptions{
			SlowQuery: -1, // demo queries are fast; keep the log quiet
		}))
	srv := httptest.NewServer(sparqlrw.MediatorHandler(m))
	defer srv.Close()

	// One cross-vocabulary query with the explain=trace extension: the
	// SRJ response document gains a trailing "trace" member.
	query := workload.CrossVocabularyQuery(2)
	fmt.Println("== query (spans two vocabularies; no single repository covers it) ==")
	fmt.Println(query)

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{
		"query": {query}, "explain": {"trace"},
	})
	must(err)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	must(err)
	fmt.Printf("\nX-Trace-Id: %s\n", resp.Header.Get("X-Trace-Id"))

	var doc struct {
		Results struct {
			Bindings []json.RawMessage `json:"bindings"`
		} `json:"results"`
		Trace struct {
			ID         string  `json:"id"`
			DurationMS float64 `json:"durationMs"`
			Root       span    `json:"root"`
		} `json:"trace"`
	}
	must(json.Unmarshal(body, &doc))
	fmt.Printf("solutions: %d\n\n== span tree (%s, %.2fms) ==\n",
		len(doc.Results.Bindings), doc.Trace.ID, doc.Trace.DurationMS)
	printSpan(doc.Trace.Root, 0)

	// The same trace stays retrievable from the ring for a while:
	// GET /api/trace lists recent traces, /api/trace/{id} serves one.
	list, err := http.Get(srv.URL + "/api/trace")
	must(err)
	var recent []struct {
		ID string `json:"id"`
	}
	must(json.NewDecoder(list.Body).Decode(&recent))
	list.Body.Close()
	fmt.Printf("\n/api/trace retains %d trace(s); newest %s\n", len(recent), recent[0].ID)

	// Scrape /metrics and show what the query moved. Every layer —
	// mediator, planner, decomposer, federation executor, HTTP mux —
	// registers into the one registry behind this endpoint.
	mresp, err := http.Get(srv.URL + "/metrics")
	must(err)
	exposition, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	must(err)

	fams, err := sparqlrw.ParsePrometheusText(strings.NewReader(string(exposition)))
	must(err)
	fmt.Printf("\n== /metrics excerpt (%d families total) ==\n", len(fams))
	show := map[string]bool{
		"sparqlrw_queries_total":            true,
		"sparqlrw_query_seconds":            true,
		"sparqlrw_query_ttfs_seconds":       true,
		"sparqlrw_solutions_streamed_total": true,
		"sparqlrw_plan_plans_total":         true,
		"sparqlrw_decompose_runs_total":     true,
		"sparqlrw_federate_attempts_total":  true,
		"sparqlrw_federate_solutions_total": true,
		"sparqlrw_http_requests_total":      true,
	}
	names := make([]string, 0, len(fams))
	for _, f := range fams {
		if show[f.Name] {
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	for _, line := range strings.Split(string(exposition), "\n") {
		if strings.HasPrefix(line, "# ") || strings.Contains(line, "_bucket{") {
			continue // keep the excerpt short: skip HELP/TYPE and histogram buckets
		}
		for _, name := range names {
			if strings.HasPrefix(line, name) {
				fmt.Println(line)
				break
			}
		}
	}
}

// span mirrors the wire shape of one trace span.
type span struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"startMs"`
	DurationMS float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs"`
	Children   []span         `json:"children"`
}

// printSpan renders the span tree with indentation, durations and the
// most useful attributes inline.
func printSpan(s span, depth int) {
	var attrs []string
	for _, k := range sortedKeys(s.Attrs) {
		attrs = append(attrs, fmt.Sprintf("%s=%v", k, s.Attrs[k]))
	}
	line := fmt.Sprintf("%s%s  %.2fms", strings.Repeat("  ", depth), s.Name, s.DurationMS)
	if len(attrs) > 0 {
		line += "  [" + strings.Join(attrs, " ") + "]"
	}
	fmt.Println(line)
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}

func sortedKeys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
