// Quickstart: define the paper's §3.2.2 entity alignment in Go, rewrite
// the Figure 1 query, and print the Figure 3 result — the worked example
// of §3.3.2 in ~60 lines against the public API.
package main

import (
	"fmt"
	"log"

	"sparqlrw"
)

const (
	akt    = "http://www.aktors.org/ontology/portal#"
	kisti  = "http://www.kisti.re.kr/isrl/ResearchRefOntology#"
	sameas = "http://ecs.soton.ac.uk/om.owl#sameas"
	// The KISTI URI-space pattern, verbatim from the paper.
	kistiSpace = `http://kisti\.rkbexplorer\.com/id/\S*`
)

func main() {
	// The co-reference knowledge the paper gets from sameas.org: Nigel
	// Shadbolt's Southampton URI is owl:sameAs his KISTI URI.
	cs := sparqlrw.NewCorefStore()
	cs.Add("http://southampton.rkbexplorer.com/id/person-02686",
		"http://kisti.rkbexplorer.com/id/PER_00000000105047")

	// The akt2kisti:creator_info alignment (§3.2.2):
	//   LHS: ⟨?p1, akt:has-author, ?a1⟩
	//   RHS: ⟨?p2, kisti:hasCreatorInfo, ?c⟩ ∧ ⟨?c, kisti:hasCreator, ?a2⟩
	//   FD:  ?a2 = sameas(?a1, kisti-space), ?p2 = sameas(?p1, kisti-space)
	ea := &sparqlrw.EntityAlignment{
		ID: "http://ecs.soton.ac.uk/alignments/akt2kisti#creator_info",
		LHS: sparqlrw.NewTriple(
			sparqlrw.NewVar("p1"), sparqlrw.NewIRI(akt+"has-author"), sparqlrw.NewVar("a1")),
		RHS: []sparqlrw.Triple{
			sparqlrw.NewTriple(sparqlrw.NewVar("p2"), sparqlrw.NewIRI(kisti+"hasCreatorInfo"), sparqlrw.NewVar("c")),
			sparqlrw.NewTriple(sparqlrw.NewVar("c"), sparqlrw.NewIRI(kisti+"hasCreator"), sparqlrw.NewVar("a2")),
		},
		FDs: []sparqlrw.FD{
			{Var: "a2", Func: sameas, Args: []sparqlrw.Term{sparqlrw.NewVar("a1"), sparqlrw.NewLiteral(kistiSpace)}},
			{Var: "p2", Func: sameas, Args: []sparqlrw.Term{sparqlrw.NewVar("p1"), sparqlrw.NewLiteral(kistiSpace)}},
		},
	}
	if err := ea.Validate(); err != nil {
		log.Fatal(err)
	}

	// Figure 1: the co-author query against the Southampton data set.
	query, err := sparqlrw.ParseQuery(`PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686 ))
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Source query (Figure 1) ===")
	fmt.Println(sparqlrw.FormatQuery(query))

	rw := sparqlrw.NewRewriter([]*sparqlrw.EntityAlignment{ea}, sparqlrw.NewFunctionRegistry(cs))
	rewritten, report, err := rw.RewriteQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Rewritten query (Figure 3) ===")
	fmt.Println(sparqlrw.FormatQuery(rewritten))

	fmt.Println("=== Rewriting trace (§3.3.2) ===")
	for _, tr := range report.Traces {
		fmt.Printf("  %s\n    matched %s\n    binding %s\n", tr.Input, tr.Alignment, tr.Binding)
	}
	for _, w := range report.Warnings {
		fmt.Println("  warning:", w)
	}
}
