// Tenancy: the production serving tier in front of the mediator.
// Starts the three demo repositories (Southampton, KISTI, citation
// metrics) and a mediator configured with two named tenants that carry
// different graph restrictions and different quotas:
//
//   - soton-research may only read subjects inside the Southampton URI
//     space and only query the Southampton/metrics data sets, with a
//     generous quota;
//   - kisti-mirror may only read subjects inside the KISTI URI space,
//     on a four-request budget.
//
// Access control is policy-by-rewriting: each tenant's restriction is
// injected into the query algebra before planning, riding the same
// rewriting pipeline the paper uses for ontology integration. The demo
// prints the same query as each tenant sees it after restriction, runs
// it over the W3C protocol endpoint under each identity (per-dataset
// answer counts prove the restriction held end to end), shows the 403
// for a ground out-of-space subject, exhausts kisti-mirror's quota to a
// deterministic 429 with Retry-After, and finishes with the serving
// tier's own stats: the federated result cache and the admission table.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

// tenantsJSON is the exact document the mediator binary accepts via its
// -tenants flag.
const tenantsJSON = `{
  "tenants": [
    {
      "id": "soton-research",
      "keys": ["soton-key"],
      "ratePerSec": 100,
      "policy": {
        "datasets": [
          "http://southampton.rkbexplorer.com/id/void",
          "http://metrics.example/void"
        ],
        "uriSpaces": ["http://southampton.rkbexplorer.com/id/"]
      }
    },
    {
      "id": "kisti-mirror",
      "keys": ["kisti-key"],
      "ratePerSec": 0.001,
      "burst": 4,
      "policy": {
        "uriSpaces": ["http://kisti.rkbexplorer.com/id/"]
      }
    }
  ]
}`

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)

	// The three demo repositories, served over the SPARQL protocol.
	soton := httptest.NewServer(sparqlrw.NewEndpointServer("southampton", u.Southampton))
	defer soton.Close()
	kisti := httptest.NewServer(sparqlrw.NewEndpointServer("kisti", u.KISTI))
	defer kisti.Close()
	metrics := httptest.NewServer(sparqlrw.NewEndpointServer("metrics", workload.MetricsStore(u)))
	defer metrics.Close()

	dsKB := sparqlrw.NewDatasetKB()
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: soton.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{rdf.AKTNS},
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kisti.URL, URISpace: workload.KistiURIPattern,
		Vocabularies: []string{rdf.KISTINS},
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.MetricsVoidURI, Title: "Citation metrics",
		SPARQLEndpoint: metrics.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{workload.MetricsNS},
	}))
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))

	tenants, err := sparqlrw.ParseTenants([]byte(tenantsJSON))
	must(err)
	mediator := sparqlrw.NewMediator(dsKB, alignKB, u.Coref,
		sparqlrw.WithMediatorRewriteFilters(true),
		sparqlrw.WithMediatorServing(sparqlrw.ServingOptions{Tenants: tenants}))
	api := httptest.NewServer(sparqlrw.MediatorHandler(mediator))
	defer api.Close()
	fmt.Printf("mediator: %s  (tenants: soton-research, kisti-mirror + anonymous)\n\n", api.URL)

	// One query text, three views of it. The restriction is not a
	// post-filter: it is rewritten into the algebra, so the query a
	// restricted tenant executes cannot match out-of-grant triples on
	// any endpoint it reaches.
	queryText := fmt.Sprintf(
		"PREFIX akt:<%s>\nSELECT ?paper ?a WHERE {\n  ?paper akt:has-author ?a .\n}", rdf.AKTNS)
	parsed, err := sparqlrw.ParseQuery(queryText)
	must(err)
	fmt.Println("=== policy-by-rewriting: one query, per-tenant algebra ===")
	fmt.Printf("--- as written (anonymous runs it verbatim) ---\n%s\n", queryText)
	for _, t := range tenants.Tenants {
		restricted, changed, err := sparqlrw.RestrictQuery(parsed, t.Policy)
		must(err)
		fmt.Printf("--- as %s executes it (rewritten=%v) ---\n%s\n",
			t.ID, changed, sparqlrw.FormatQuery(restricted))
	}

	// Run it under each identity. Per-dataset raw answer counts show the
	// restriction holding end to end: the out-of-space repository
	// contributes exactly zero rows to a restricted tenant.
	fmt.Println("=== POST /sparql, per identity ===")
	allTargets := []string{workload.SotonVoidURI, workload.KistiVoidURI}
	for _, id := range []struct{ label, key string }{
		{"anonymous (no credential)", ""},
		{"kisti-mirror (X-API-Key: kisti-key)", "kisti-key"},
	} {
		sum := sparqlSSE(api.URL, id.key, queryText, allTargets...)
		fmt.Printf("--- %s, explicit targets: both repositories ---\n", id.label)
		for _, pd := range sum.PerDataset {
			fmt.Printf("  %-45s %d raw answers\n", pd.Dataset, pd.Solutions)
		}
		fmt.Printf("  merged: %d bindings\n", sum.Bindings)
	}
	// soton-research's dataset allowlist prunes the planner's candidate
	// set, so with no explicit targets only allowlisted repositories are
	// consulted at all.
	sum := sparqlSSE(api.URL, "soton-key", queryText)
	fmt.Println("--- soton-research, planner-selected targets (allowlist-pruned) ---")
	for _, pd := range sum.PerDataset {
		fmt.Printf("  %-45s %d raw answers\n", pd.Dataset, pd.Solutions)
	}
	fmt.Printf("  merged: %d bindings\n\n", sum.Bindings)

	// A ground subject outside the tenant's URI space is refused before
	// any endpoint is contacted: 403 with the JSON error document. An
	// explicit target outside the dataset allowlist is refused the same
	// way.
	fmt.Println("=== static denials (no endpoint round trips) ===")
	groundQuery := fmt.Sprintf("PREFIX akt:<%s>\nSELECT ?name WHERE { <%s> akt:full-name ?name . }",
		rdf.AKTNS, workload.SotonPerson(2).Value)
	status, _, body := sparqlRaw(api.URL, "kisti-key", groundQuery)
	fmt.Printf("kisti-mirror, ground Southampton subject: HTTP %d %s\n", status, strings.TrimSpace(body))
	status, _, body = sparqlRaw(api.URL, "soton-key", queryText, workload.KistiVoidURI)
	fmt.Printf("soton-research, explicit KISTI target:    HTTP %d %s\n\n", status, strings.TrimSpace(body))

	// kisti-mirror's bucket holds four tokens and effectively never
	// refills — and the sections above already spent two (admission runs
	// before policy, so even the denied query cost a token). The tier
	// sheds the first request past the budget with a deterministic 429
	// carrying Retry-After.
	fmt.Println("=== quota: kisti-mirror's four-request budget (two spent above) ===")
	for i := 1; i <= 5; i++ {
		status, hdr, _ := sparqlRaw(api.URL, "kisti-key", queryText, workload.KistiVoidURI)
		if status == http.StatusTooManyRequests {
			fmt.Printf("request %d: HTTP 429, Retry-After: %ss\n\n", i, hdr.Get("Retry-After"))
			break
		}
		fmt.Printf("request %d: HTTP %d\n", i, status)
	}

	// The anonymous query from above, repeated verbatim: served from the
	// federated result cache without touching an endpoint.
	_ = sparqlSSE(api.URL, "", queryText, allTargets...)
	st := mediator.Serve.Stats()
	fmt.Println("=== serving-tier stats ===")
	if c := st.Cache; c != nil {
		fmt.Printf("result cache: %d hits, %d misses, %d entries (hit rate %.0f%%)\n",
			c.Hits, c.Misses, c.Entries, 100*c.HitRate)
	}
	for _, ts := range st.Tenants {
		fmt.Printf("  %-15s admitted=%-3d rejected=%-2d restricted=%v\n",
			ts.Tenant, ts.Admitted, ts.Rejected, ts.Restricted)
	}
}

// sseSummary is the /sparql SSE serialisation's terminal summary event
// plus the binding count.
type sseSummary struct {
	Bindings   int
	PerDataset []struct {
		Dataset   string `json:"dataset"`
		Solutions int    `json:"solutions"`
	} `json:"perDataset"`
}

// sparqlSSE runs one protocol query as the tenant identified by key
// (empty = anonymous) with Accept: text/event-stream, returning the
// parsed terminal summary.
func sparqlSSE(base, key, query string, targets ...string) sseSummary {
	resp := post(base, key, query, "text/event-stream", targets)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("/sparql: HTTP %d: %s", resp.StatusCode, body)
	}
	var sum sseSummary
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "binding":
				sum.Bindings++
			case "summary":
				if err := json.Unmarshal([]byte(data), &sum); err != nil {
					log.Fatal(err)
				}
			case "error":
				log.Fatalf("stream error: %s", data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return sum
}

// sparqlRaw runs one protocol query and returns the status, headers and
// body — for the denial and load-shed responses.
func sparqlRaw(base, key, query string, targets ...string) (int, http.Header, string) {
	resp := post(base, key, query, "", targets)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, string(body)
}

func post(base, key, query, accept string, targets []string) *http.Response {
	form := url.Values{"query": {query}, "target": targets}
	req, err := http.NewRequest(http.MethodPost, base+"/sparql", strings.NewReader(form.Encode()))
	must(err)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	must(err)
	return resp
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
