// Co-authors: the paper's motivating scenario end to end, in memory.
// Generates the Southampton-like and KISTI-like data sets with partial
// overlap, rewrites the Figure 1 co-author query for KISTI, runs both
// queries, and shows the recall gain from integrating the redundant
// repositories (§1: "it is important to query all the available
// repositories in order to increase the recall").
package main

import (
	"fmt"
	"log"

	"sparqlrw"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 60, 200
	u := workload.Generate(cfg)
	fmt.Printf("Southampton: %d triples (AKT ontology)\n", u.Southampton.Size())
	fmt.Printf("KISTI:       %d triples (KISTI ontology, %d mirrored + %d extra papers)\n\n",
		u.KISTI.Size(), len(u.MirroredPapers), u.ExtraPapers)

	// Pick a person with papers in both repositories.
	person := -1
	for i := 0; i < cfg.Persons; i++ {
		if len(u.CoAuthors(i)) > len(u.CoAuthorsIn(i, "southampton")) {
			person = i
			break
		}
	}
	if person < 0 {
		log.Fatal("universe has no person with KISTI-only co-authors; try another seed")
	}
	queryText := workload.Figure1Query(person)
	fmt.Printf("Querying co-authors of person %d:\n%s\n\n", person, queryText)

	query, err := sparqlrw.ParseQuery(queryText)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Source only.
	sotonEngine := sparqlrw.NewEngine(u.Southampton)
	sres, err := sotonEngine.Select(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Southampton alone: %d co-authors\n", len(sres.Solutions))

	// 2. Rewrite for KISTI (with the FILTER extension so the
	// self-exclusion constraint survives the URI-space change).
	rw := sparqlrw.NewRewriter(workload.AKT2KISTI().Alignments, sparqlrw.NewFunctionRegistry(u.Coref))
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = workload.KistiURIPattern
	rewritten, _, err := rw.RewriteQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nRewritten for KISTI:")
	fmt.Println(sparqlrw.FormatQuery(rewritten))

	kistiEngine := sparqlrw.NewEngine(u.KISTI)
	kres, err := kistiEngine.Select(rewritten)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KISTI (rewritten query): %d co-authors\n", len(kres.Solutions))

	// 3. Merge with co-reference canonicalisation.
	merged := map[string]bool{}
	for _, sol := range sres.Solutions {
		merged[u.Coref.Canonical(sol["a"].Value)] = true
	}
	for _, sol := range kres.Solutions {
		merged[u.Coref.Canonical(sol["a"].Value)] = true
	}
	truth := u.CoAuthors(person)
	fmt.Printf("\nIntegrated (owl:sameAs merge): %d distinct co-authors\n", len(merged))
	fmt.Printf("Ground truth:                  %d\n", len(truth))
	fmt.Printf("Recall: %.0f%% -> %.0f%%\n",
		100*float64(len(sres.Solutions))/float64(len(truth)),
		100*float64(len(merged))/float64(len(truth)))
}
