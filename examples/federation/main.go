// Federation: the paper's deployed architecture (Figure 5) over HTTP.
// Starts two SPARQL protocol endpoints (Southampton, KISTI), a
// sameas.org-style co-reference REST service, and the mediator; then
// drives the mediator's REST API exactly as the paper's GWT UI does:
// translate a query for a chosen data set, run it everywhere, merge.
//
// It then registers a third, broken repository and queries again: the
// executor's retries fail, its circuit breaker opens, and subsequent
// federated queries skip the dead endpoint without dispatching to it —
// while the healthy repositories keep answering (best-effort partial
// results). /api/stats shows the breaker state and the rewrite-plan
// cache hits accumulated along the way. Query execution over HTTP goes
// through the W3C SPARQL-Protocol endpoint (POST /sparql, with the
// repeatable `target` extension parameter naming explicit data sets).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)

	// Tier 3: remote services.
	soton := httptest.NewServer(sparqlrw.NewEndpointServer("southampton", u.Southampton))
	defer soton.Close()
	kisti := httptest.NewServer(sparqlrw.NewEndpointServer("kisti", u.KISTI))
	defer kisti.Close()
	sameas := httptest.NewServer(sparqlrw.CorefHandler(u.Coref))
	defer sameas.Close()
	fmt.Printf("endpoints: southampton=%s kisti=%s sameas=%s\n\n", soton.URL, kisti.URL, sameas.URL)

	// Tier 2: knowledge bases.
	dsKB := sparqlrw.NewDatasetKB()
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: soton.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{rdf.AKTNS},
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kisti.URL, URISpace: workload.KistiURIPattern,
		Vocabularies: []string{rdf.KISTINS},
	}))
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))

	// Tier 1: the mediator, using the co-reference service over HTTP like
	// the paper wraps sameas.org.
	mediator := sparqlrw.NewMediator(dsKB, alignKB, sparqlrw.NewCorefClient(sameas.URL),
		sparqlrw.WithMediatorRewriteFilters(true),
		sparqlrw.WithMediatorFederation(sparqlrw.FederationOptions{
			EndpointTimeout: 2 * time.Second,
			RetryBackoff:    5 * time.Millisecond,
			BreakerFailures: 3,
			BreakerCooldown: time.Minute,
		}))
	api := httptest.NewServer(sparqlrw.MediatorHandler(mediator))
	defer api.Close()
	fmt.Printf("mediator UI/API: %s\n\n", api.URL)

	// Drive the REST API: translate Figure 1 for KISTI.
	queryText := workload.Figure1Query(1)
	rewriteReq, _ := json.Marshal(map[string]any{
		"query":  queryText,
		"target": workload.KistiVoidURI,
	})
	var rewriteResp struct {
		Query          string   `json:"query"`
		AlignmentsUsed int      `json:"alignmentsUsed"`
		Warnings       []string `json:"warnings"`
	}
	postJSON(api.URL+"/api/rewrite", rewriteReq, &rewriteResp)
	fmt.Printf("=== /api/rewrite (%d alignments) ===\n%s\n", rewriteResp.AlignmentsUsed, rewriteResp.Query)

	// Run federated over the protocol endpoint: both repositories, merged
	// by owl:sameAs; the SSE serialisation carries the per-dataset summary
	// as its terminal event.
	sum := postSparqlSSE(api.URL, queryText,
		workload.SotonVoidURI, workload.KistiVoidURI)
	fmt.Println("=== POST /sparql (federated, SSE) ===")
	for _, pd := range sum.PerDataset {
		fmt.Printf("  %-45s %d raw answers\n", pd.Dataset, pd.Solutions)
	}
	fmt.Printf("  merged: %d distinct co-authors (%d duplicates collapsed by owl:sameAs)\n\n",
		sum.Bindings, sum.Duplicates)

	// Register a broken repository and watch the circuit breaker shield
	// the fan-out: after three consecutive failures (each retried once)
	// the breaker opens and later queries skip the endpoint entirely.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "simulated outage", http.StatusInternalServerError)
	}))
	defer broken.Close()
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: "http://broken.example/void", Title: "Broken mirror",
		SPARQLEndpoint: broken.URL, URISpace: `http://broken\.example/\S*`,
		Vocabularies: []string{rdf.AKTNS},
	}))
	allTargets := []string{workload.SotonVoidURI, workload.KistiVoidURI, "http://broken.example/void"}
	fmt.Println("=== broken repository joins the federation ===")
	for round := 1; round <= 4; round++ {
		sum := postSparqlSSE(api.URL, queryText, allTargets...)
		for _, pd := range sum.PerDataset {
			if pd.Dataset != "http://broken.example/void" {
				continue
			}
			fmt.Printf("  round %d: partial=%v broken attempts=%d error=%q\n",
				round, sum.Partial, pd.Attempts, pd.Error)
		}
		if sum.Bindings == 0 {
			log.Fatal("healthy repositories stopped answering")
		}
	}

	// The mediator's one health snapshot: breaker states, retries, cache,
	// per-form query counts.
	var stats sparqlrw.MediatorStats
	getJSON(api.URL+"/api/stats", &stats)
	fmt.Println("\n=== /api/stats ===")
	for _, es := range stats.Federation.Endpoints {
		fmt.Printf("  %-25s breaker=%-9s requests=%d failures=%d retries=%d rejected=%d\n",
			es.Endpoint, es.Breaker, es.Requests, es.Failures, es.Retries, es.Rejected)
	}
	fmt.Printf("  rewrite-plan cache: %d hits, %d misses (hit rate %.0f%%)\n",
		stats.Federation.CacheHits, stats.Federation.CacheMisses, 100*stats.Federation.CacheHitRate)
	fmt.Printf("  queries by form: %d SELECT\n", stats.Queries.Select)
}

// sseSummary is what the /sparql SSE serialisation reports after the
// bindings: the terminal summary event plus the binding count.
type sseSummary struct {
	Bindings   int
	Duplicates int  `json:"duplicates"`
	Partial    bool `json:"partial"`
	PerDataset []struct {
		Dataset   string `json:"dataset"`
		Solutions int    `json:"solutions"`
		Attempts  int    `json:"attempts"`
		Error     string `json:"error"`
	} `json:"perDataset"`
}

// postSparqlSSE runs one protocol query with Accept: text/event-stream
// and explicit targets, returning the parsed terminal summary.
func postSparqlSSE(base, query string, targets ...string) sseSummary {
	form := url.Values{"query": {query}, "target": targets}
	req, err := http.NewRequest(http.MethodPost, base+"/sparql", strings.NewReader(form.Encode()))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sum sseSummary
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "binding":
				sum.Bindings++
			case "summary":
				if err := json.Unmarshal([]byte(data), &sum); err != nil {
					log.Fatal(err)
				}
			case "error":
				log.Fatalf("stream error: %s", data)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return sum
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func postJSON(url string, body []byte, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
