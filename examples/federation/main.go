// Federation: the paper's deployed architecture (Figure 5) over HTTP.
// Starts two SPARQL protocol endpoints (Southampton, KISTI), a
// sameas.org-style co-reference REST service, and the mediator; then
// drives the mediator's REST API exactly as the paper's GWT UI does:
// translate a query for a chosen data set, run it everywhere, merge.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)

	// Tier 3: remote services.
	soton := httptest.NewServer(sparqlrw.NewEndpointServer("southampton", u.Southampton))
	defer soton.Close()
	kisti := httptest.NewServer(sparqlrw.NewEndpointServer("kisti", u.KISTI))
	defer kisti.Close()
	sameas := httptest.NewServer(sparqlrw.CorefHandler(u.Coref))
	defer sameas.Close()
	fmt.Printf("endpoints: southampton=%s kisti=%s sameas=%s\n\n", soton.URL, kisti.URL, sameas.URL)

	// Tier 2: knowledge bases.
	dsKB := sparqlrw.NewDatasetKB()
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: soton.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{rdf.AKTNS},
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kisti.URL, URISpace: workload.KistiURIPattern,
		Vocabularies: []string{rdf.KISTINS},
	}))
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))

	// Tier 1: the mediator, using the co-reference service over HTTP like
	// the paper wraps sameas.org.
	mediator := sparqlrw.NewMediator(dsKB, alignKB, sparqlrw.NewCorefClient(sameas.URL))
	mediator.RewriteFilters = true
	api := httptest.NewServer(sparqlrw.MediatorHandler(mediator))
	defer api.Close()
	fmt.Printf("mediator UI/API: %s\n\n", api.URL)

	// Drive the REST API: translate Figure 1 for KISTI.
	queryText := workload.Figure1Query(1)
	rewriteReq, _ := json.Marshal(map[string]any{
		"query":  queryText,
		"target": workload.KistiVoidURI,
	})
	var rewriteResp struct {
		Query          string   `json:"query"`
		AlignmentsUsed int      `json:"alignmentsUsed"`
		Warnings       []string `json:"warnings"`
	}
	postJSON(api.URL+"/api/rewrite", rewriteReq, &rewriteResp)
	fmt.Printf("=== /api/rewrite (%d alignments) ===\n%s\n", rewriteResp.AlignmentsUsed, rewriteResp.Query)

	// Run federated: both repositories, merged by owl:sameAs.
	queryReq, _ := json.Marshal(map[string]any{
		"query":   queryText,
		"targets": []string{workload.SotonVoidURI, workload.KistiVoidURI},
	})
	var queryResp struct {
		Rows       []map[string]string `json:"rows"`
		Duplicates int                 `json:"duplicates"`
		PerDataset []struct {
			Dataset   string `json:"dataset"`
			Solutions int    `json:"solutions"`
		} `json:"perDataset"`
	}
	postJSON(api.URL+"/api/query", queryReq, &queryResp)
	fmt.Println("=== /api/query (federated) ===")
	for _, pd := range queryResp.PerDataset {
		fmt.Printf("  %-45s %d raw answers\n", pd.Dataset, pd.Solutions)
	}
	fmt.Printf("  merged: %d distinct co-authors (%d duplicates collapsed by owl:sameAs)\n",
		len(queryResp.Rows), queryResp.Duplicates)
}

func postJSON(url string, body []byte, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		buf := new(bytes.Buffer)
		_, _ = buf.ReadFrom(resp.Body)
		log.Fatalf("%s: %d: %s", url, resp.StatusCode, buf.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
