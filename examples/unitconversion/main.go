// Unit conversion: functional dependencies beyond co-reference. The paper
// notes (§3.3) that "data manipulation functions can come handy in many
// occasions when integrating heterogeneous data sets ... different unit
// measures can be adopted". This example aligns a metric sensor schema to
// an imperial one: the distance value is converted *at rewrite time* —
// the target endpoint never needs to know the conversion function (the
// paper's "safe assumption").
package main

import (
	"fmt"
	"log"

	"sparqlrw"
)

const (
	metricNS   = "http://sensors.example/metric#"
	imperialNS = "http://sensors.example/imperial#"
	mapNS      = "http://ecs.soton.ac.uk/om.owl#"
)

func main() {
	// Alignment: ⟨?s, metric:distanceKm, ?d⟩ →
	//            ⟨?s, imperial:distanceMiles, ?d2⟩ with ?d2 = kmToMiles(?d).
	distance := &sparqlrw.EntityAlignment{
		ID: "http://sensors.example/alignments#distance",
		LHS: sparqlrw.NewTriple(
			sparqlrw.NewVar("s"), sparqlrw.NewIRI(metricNS+"distanceKm"), sparqlrw.NewVar("d")),
		RHS: []sparqlrw.Triple{sparqlrw.NewTriple(
			sparqlrw.NewVar("s"), sparqlrw.NewIRI(imperialNS+"distanceMiles"), sparqlrw.NewVar("d2"))},
		FDs: []sparqlrw.FD{{Var: "d2", Func: mapNS + "kmToMiles",
			Args: []sparqlrw.Term{sparqlrw.NewVar("d")}}},
	}
	// Temperature: Celsius threshold becomes Fahrenheit.
	temperature := &sparqlrw.EntityAlignment{
		ID: "http://sensors.example/alignments#temperature",
		LHS: sparqlrw.NewTriple(
			sparqlrw.NewVar("s"), sparqlrw.NewIRI(metricNS+"tempC"), sparqlrw.NewVar("t")),
		RHS: []sparqlrw.Triple{sparqlrw.NewTriple(
			sparqlrw.NewVar("s"), sparqlrw.NewIRI(imperialNS+"tempF"), sparqlrw.NewVar("t2"))},
		FDs: []sparqlrw.FD{{Var: "t2", Func: mapNS + "celsiusToFahrenheit",
			Args: []sparqlrw.Term{sparqlrw.NewVar("t")}}},
	}

	registry := sparqlrw.NewFunctionRegistry(sparqlrw.NewCorefStore())
	rw := sparqlrw.NewRewriter([]*sparqlrw.EntityAlignment{distance, temperature}, registry)

	// A metric query with GROUND values: exactly the case where the FD
	// must execute during rewriting (a bound value, not a variable).
	query, err := sparqlrw.ParseQuery(`PREFIX m:<` + metricNS + `>
SELECT ?sensor WHERE {
  ?sensor m:distanceKm 100 .
  ?sensor m:tempC 37.5 .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Metric query ===")
	fmt.Println(sparqlrw.FormatQuery(query))

	rewritten, report, err := rw.RewriteQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Rewritten for the imperial endpoint ===")
	fmt.Println(sparqlrw.FormatQuery(rewritten))
	for _, tr := range report.Traces {
		for _, note := range tr.FDNotes {
			fmt.Println("  fd:", note)
		}
	}

	// Prove it answers on an imperial-only store.
	g, _, err := sparqlrw.ParseTurtle(`
@prefix imp: <` + imperialNS + `> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
<http://sensors.example/s1> imp:distanceMiles 62.1371 ; imp:tempF 99.5 .
<http://sensors.example/s2> imp:distanceMiles 10.0 ; imp:tempF 32.0 .
`)
	if err != nil {
		log.Fatal(err)
	}
	st := sparqlrw.NewStore()
	st.AddGraph(g)
	res, err := sparqlrw.NewEngine(st).Select(rewritten)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Answers from the imperial endpoint ===")
	for _, sol := range res.Solutions {
		fmt.Println("  sensor:", sol["sensor"])
	}
	if len(res.Solutions) == 0 {
		fmt.Println("  (none — conversion mismatch?)")
	}
}
