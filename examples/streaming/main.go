// Streaming: the mediator's streaming-first query path against a slow
// repository. Four replicas of the Southampton data set are registered;
// one of them delays every response by 250 ms. The buffered Collect
// convenience cannot return before that slow endpoint does, while
// Mediator.Query hands over its first merged solution as soon as a
// fast replica yields one — the demo prints the arrival time of each
// solution relative to dispatch, then the per-dataset summary.
//
// It then re-runs the query with Limit: 1, showing the stream cancelling
// the leftover upstream work (the slow endpoint's answer is abandoned).
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 50, 150
	u := workload.Generate(cfg)

	const slowDelay = 250 * time.Millisecond
	endpointSrv := func(delay time.Duration) *httptest.Server {
		h := sparqlrw.NewEndpointServer("replica", u.Southampton)
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(delay)
			h.ServeHTTP(w, r)
		}))
	}

	dsKB := sparqlrw.NewDatasetKB()
	var targets []string
	for i, delay := range []time.Duration{0, 0, 0, slowDelay} {
		srv := endpointSrv(delay)
		defer srv.Close()
		uri := fmt.Sprintf("http://replica%d.example/void", i)
		label := "fast"
		if delay > 0 {
			label = "slow"
		}
		must(dsKB.Add(&sparqlrw.Dataset{
			URI: uri, Title: fmt.Sprintf("Replica %d (%s)", i, label),
			SPARQLEndpoint: srv.URL, URISpace: workload.SotonURIPattern,
			Vocabularies: []string{rdf.AKTNS},
		}))
		targets = append(targets, uri)
	}
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))
	mediator := sparqlrw.NewMediator(dsKB, alignKB, u.Coref,
		sparqlrw.WithMediatorRewriteFilters(true))

	query := workload.Figure1Query(1)
	fmt.Printf("federating over %d replicas (one delayed %s)\n\n", len(targets), slowDelay)

	// Streaming: solutions arrive as endpoints answer.
	start := time.Now()
	res, err := mediator.Query(context.Background(), sparqlrw.MediatorQueryRequest{
		Query: query, SourceOnt: rdf.AKTNS, Targets: targets,
	})
	if err != nil {
		log.Fatal(err)
	}
	qs := res.Bindings()
	n := 0
	for sol, err := range qs.Solutions() {
		if err != nil {
			log.Fatal(err)
		}
		n++
		fmt.Printf("  solution %d after %7s  %v\n", n, time.Since(start).Round(time.Millisecond), sol["a"])
	}
	summary, err := qs.Summary()
	if err != nil {
		log.Fatal(err)
	}
	res.Close()
	fmt.Printf("\nstream done after %s: %d solutions, %d duplicates dropped\n",
		time.Since(start).Round(time.Millisecond), n, summary.Duplicates)
	for _, da := range summary.PerDataset {
		fmt.Printf("  %-32s %3d solutions in %7s\n", da.Dataset, da.Solutions, da.Latency.Round(time.Millisecond))
	}

	// Buffered comparison: Collect waits for everyone.
	start = time.Now()
	resBuf, err := mediator.Query(context.Background(), sparqlrw.MediatorQueryRequest{
		Query: query, SourceOnt: rdf.AKTNS, Targets: targets,
	})
	if err != nil {
		log.Fatal(err)
	}
	fr, err := resBuf.Bindings().Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuffered Collect returned all %d solutions after %s (slow endpoint bound)\n",
		len(fr.Solutions), time.Since(start).Round(time.Millisecond))

	// Limit: take one solution, cancel the rest of the fan-out.
	start = time.Now()
	res2, err := mediator.Query(context.Background(), sparqlrw.MediatorQueryRequest{
		Query: query, SourceOnt: rdf.AKTNS, Targets: targets, Limit: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for sol, err := range res2.Bindings().Solutions() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nLimit 1: first solution %v after %s; remaining work cancelled\n",
			sol["a"], time.Since(start).Round(time.Millisecond))
	}
	res2.Close()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
