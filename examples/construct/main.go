// Construct: a cross-vocabulary CONSTRUCT federated over the three demo
// repositories (Southampton/AKT, KISTI, citation metrics). The template
// mixes the AKT and metrics vocabularies, so no single endpoint serves
// it; the WHERE clause spans both vocabularies too, so the mediator's
// planner finds no covering data set and the per-BGP decomposer splits
// the pattern into exclusive groups joined with VALUES bound joins. The
// constructed triples stream out of Mediator.Query as a lazy,
// owl:sameAs-deduplicated graph — the "rewriting as CONSTRUCT-driven
// integration" path — and the same query round-trips over the W3C
// SPARQL-Protocol endpoint as streamed Turtle.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"sparqlrw"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

func main() {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)

	// Tier 3: the three demo repositories.
	soton := httptest.NewServer(sparqlrw.NewEndpointServer("southampton", u.Southampton))
	defer soton.Close()
	kisti := httptest.NewServer(sparqlrw.NewEndpointServer("kisti", u.KISTI))
	defer kisti.Close()
	metricsStore := workload.MetricsStore(u)
	metrics := httptest.NewServer(sparqlrw.NewEndpointServer("metrics", metricsStore))
	defer metrics.Close()

	// Tier 2: voiD profiles (with statistics for the decomposer's
	// cardinality estimator) and the AKT→KISTI alignments.
	dsKB := sparqlrw.NewDatasetKB()
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: soton.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{rdf.AKTNS},
		Triples:      int64(u.Southampton.Size()),
		PropertyPartitions: map[string]int64{
			rdf.AKTHasAuthor: int64(u.Southampton.PredicateCount(rdf.NewIRI(rdf.AKTHasAuthor))),
		},
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kisti.URL, URISpace: workload.KistiURIPattern,
		Vocabularies: []string{rdf.KISTINS},
		Triples:      int64(u.KISTI.Size()),
	}))
	must(dsKB.Add(&sparqlrw.Dataset{
		URI: workload.MetricsVoidURI, Title: "Citation metrics",
		SPARQLEndpoint: metrics.URL, URISpace: workload.SotonURIPattern,
		Vocabularies: []string{workload.MetricsNS},
		Triples:      int64(metricsStore.Size()),
		PropertyPartitions: map[string]int64{
			workload.MetricsCitationCount: int64(metricsStore.PredicateCount(rdf.NewIRI(workload.MetricsCitationCount))),
		},
	}))
	alignKB := sparqlrw.NewAlignmentKB()
	must(alignKB.Add(workload.AKT2KISTI()))

	mediator := sparqlrw.NewMediator(dsKB, alignKB, u.Coref,
		sparqlrw.WithMediatorRewriteFilters(true))

	// The cross-vocabulary CONSTRUCT: template and WHERE both span AKT and
	// metrics, which no single repository serves.
	person := workload.SotonPerson(2)
	query := `PREFIX akt:<` + rdf.AKTNS + `>
PREFIX m:<` + workload.MetricsNS + `>
CONSTRUCT {
  ?paper akt:has-author ?a .
  ?paper m:citationCount ?c .
}
WHERE {
  ?paper akt:has-author <` + person.Value + `> .
  ?paper akt:has-author ?a .
  ?paper m:citationCount ?c .
}`
	fmt.Println("=== cross-vocabulary CONSTRUCT ===")
	fmt.Println(query)

	res, err := mediator.Query(context.Background(), sparqlrw.MediatorQueryRequest{Query: query})
	must(err)
	defer res.Close()
	if res.Form() != sparqlrw.QueryFormConstruct {
		log.Fatalf("unexpected form %s", res.Form())
	}
	if dcm := res.Decomposition(); dcm != nil {
		fmt.Printf("\ndecomposed into %d fragments over %v\n", len(dcm.Fragments), dcm.Datasets())
	}
	n := 0
	for t, err := range res.Graph().Triples() {
		must(err)
		if n < 6 {
			fmt.Println("  ", t.String(), ".")
		}
		n++
	}
	sum, err := res.Summary()
	must(err)
	fmt.Printf("  ... %d triples total, %d duplicates collapsed\n", n, sum.Duplicates)

	// The same query over the W3C protocol endpoint, as streamed Turtle.
	api := httptest.NewServer(sparqlrw.MediatorHandler(mediator))
	defer api.Close()
	form := url.Values{"query": {query}}
	req, err := http.NewRequest(http.MethodPost, api.URL+"/sparql", strings.NewReader(form.Encode()))
	must(err)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "text/turtle")
	resp, err := http.DefaultClient.Do(req)
	must(err)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	must(err)
	fmt.Printf("\n=== POST /sparql (Accept: text/turtle, %s) ===\n", resp.Header.Get("Content-Type"))
	lines := strings.SplitN(string(body), "\n", 7)
	for i, line := range lines {
		if i == 6 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
