package sparqlrw

import (
	"strings"
	"testing"
)

// TestFacadeQuickstart exercises the public API exactly as README's
// quickstart describes it: define an alignment, rewrite Figure 1, run the
// result against a KISTI-shaped store.
func TestFacadeQuickstart(t *testing.T) {
	cs := NewCorefStore()
	cs.Add("http://southampton.rkbexplorer.com/id/person-02686",
		"http://kisti.rkbexplorer.com/id/PER_00000000105047")

	kisti := "http://www.kisti.re.kr/isrl/ResearchRefOntology#"
	akt := "http://www.aktors.org/ontology/portal#"
	ea := &EntityAlignment{
		ID:  "http://ecs.soton.ac.uk/alignments/akt2kisti#creator_info",
		LHS: NewTriple(NewVar("p1"), NewIRI(akt+"has-author"), NewVar("a1")),
		RHS: []Triple{
			NewTriple(NewVar("p2"), NewIRI(kisti+"hasCreatorInfo"), NewVar("c")),
			NewTriple(NewVar("c"), NewIRI(kisti+"hasCreator"), NewVar("a2")),
		},
		FDs: []FD{
			{Var: "a2", Func: "http://ecs.soton.ac.uk/om.owl#sameas",
				Args: []Term{NewVar("a1"), NewLiteral(`http://kisti\.rkbexplorer\.com/id/\S*`)}},
			{Var: "p2", Func: "http://ecs.soton.ac.uk/om.owl#sameas",
				Args: []Term{NewVar("p1"), NewLiteral(`http://kisti\.rkbexplorer\.com/id/\S*`)}},
		},
	}
	if err := ea.Validate(); err != nil {
		t.Fatal(err)
	}

	rw := NewRewriter([]*EntityAlignment{ea}, NewFunctionRegistry(cs))
	q, err := ParseQuery(`PREFIX akt:<` + akt + `>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author <http://southampton.rkbexplorer.com/id/person-02686> .
  ?paper akt:has-author ?a .
}`)
	if err != nil {
		t.Fatal(err)
	}
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatQuery(out)
	if !strings.Contains(text, "kisti:hasCreatorInfo") {
		t.Fatalf("rewritten:\n%s", text)
	}
	if report.MatchedTriples != 2 {
		t.Fatalf("report = %+v", report)
	}

	// Run against a KISTI-shaped store.
	g, _, err := ParseTurtle(`
@prefix kisti: <` + kisti + `> .
@prefix kid: <http://kisti.rkbexplorer.com/id/> .
kid:ART_1 kisti:hasCreatorInfo kid:ART_1_c0 , kid:ART_1_c1 .
kid:ART_1_c0 kisti:hasCreator kid:PER_00000000105047 .
kid:ART_1_c1 kisti:hasCreator kid:PER_00000000200000 .
`)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	st.AddGraph(g)
	res, err := NewEngine(st).Select(out)
	if err != nil {
		t.Fatal(err)
	}
	// co-authors of the person: themselves + one other (no FILTER here)
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %v", res.Solutions)
	}
}

func TestFacadeRoundTripHelpers(t *testing.T) {
	g, pm, err := ParseTurtle(`@prefix ex: <http://example.org/> . ex:s ex:p "v" .`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatTurtle(g, pm), "ex:s") {
		t.Fatal("turtle format")
	}
	nt := FormatNTriples(g)
	g2, err := ParseNTriples(strings.NewReader(nt))
	if err != nil || len(g2) != 1 {
		t.Fatalf("ntriples round trip: %v %v", g2, err)
	}
	ca := NewClassAlignment("http://a/x", "http://a/C", "http://b/D")
	pa := NewPropertyAlignment("http://a/y", "http://a/p", "http://b/q")
	ttl := FormatAlignments([]*OntologyAlignment{{
		URI:              "http://a/oa",
		SourceOntologies: []string{"http://a/"},
		TargetOntologies: []string{"http://b/"},
		Alignments:       []*EntityAlignment{ca, pa},
	}})
	oas, _, err := ParseAlignments(ttl)
	if err != nil || len(oas) != 1 || len(oas[0].Alignments) != 2 {
		t.Fatalf("alignment round trip: %v %v", oas, err)
	}
}

func TestFacadeChainAndConstruct(t *testing.T) {
	pa := NewPropertyAlignment("http://a/p", "http://src/p", "http://mid/p")
	pb := NewPropertyAlignment("http://a/q", "http://mid/p", "http://tgt/p")
	reg := NewFunctionRegistry(NewCorefStore())
	q, _ := ParseQuery(`SELECT ?o WHERE { ?s <http://src/p> ?o }`)
	out, report, err := RewriteChain(q, []ChainStage{
		{Name: "src→mid", Rewriter: NewRewriter([]*EntityAlignment{pa}, reg)},
		{Name: "mid→tgt", Rewriter: NewRewriter([]*EntityAlignment{pb}, reg)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stages) != 2 {
		t.Fatalf("stages = %v", report.Stages)
	}
	if !strings.Contains(FormatQuery(out), "http://tgt/p") {
		t.Fatalf("chain output:\n%s", FormatQuery(out))
	}

	cq, err := ConstructQuery(pa, false)
	if err != nil {
		t.Fatal(err)
	}
	if cq.Form.String() != "CONSTRUCT" {
		t.Fatal("not a construct query")
	}
	st := NewStore()
	g, _, _ := ParseTurtle(`<http://x/1> <http://mid/p> "v" .`)
	st.AddGraph(g)
	translated, skipped, err := TranslateData(st, []*EntityAlignment{pa}, false)
	if err != nil || len(skipped) != 0 {
		t.Fatalf("translate: %v %v", err, skipped)
	}
	if len(translated) != 1 || translated[0].P.Value != "http://src/p" {
		t.Fatalf("translated = %v", translated)
	}
}

func TestFacadeKBs(t *testing.T) {
	akb := NewAlignmentKB()
	if err := akb.Add(&OntologyAlignment{
		URI:              "http://a/oa",
		SourceOntologies: []string{"http://a/"},
		TargetOntologies: []string{"http://b/"},
		Alignments:       []*EntityAlignment{NewPropertyAlignment("http://a/p", "http://a/p", "http://b/q")},
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(akb.Select(AlignmentSelector{SourceOntology: "http://a/", TargetOntology: "http://b/"})); got != 1 {
		t.Fatalf("select = %d", got)
	}
	dkb := NewDatasetKB()
	if err := dkb.Add(&Dataset{URI: "http://d/void", SPARQLEndpoint: "http://d/sparql"}); err != nil {
		t.Fatal(err)
	}
	m := NewMediator(dkb, akb, NewCorefStore())
	if len(m.DatasetInfos()) != 1 {
		t.Fatal("mediator datasets")
	}
}

// TestFacadeStreaming exercises the public streaming surface: lazy
// evaluation through Engine.SelectSeq, the streaming results-JSON codec,
// and CollectSolutions.
func TestFacadeStreaming(t *testing.T) {
	st := NewStore()
	st.Add(NewTriple(NewIRI("http://x/p1"), NewIRI("http://x/author"), NewIRI("http://x/alice")))
	st.Add(NewTriple(NewIRI("http://x/p1"), NewIRI("http://x/author"), NewIRI("http://x/bob")))
	q, err := ParseQuery(`SELECT ?a WHERE { <http://x/p1> <http://x/author> ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewEngine(st).SelectSeq(q)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	enc, err := NewResultsStreamEncoder(&sb, sr.Vars)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := CollectSolutions(sr.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, sol := range sols {
		if err := enc.Encode(sol); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewResultsStreamDecoder(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sol, err := range dec.All() {
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Bound("a") {
			t.Fatalf("solution = %v", sol)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("round-tripped %d solutions", n)
	}
}
