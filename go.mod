module sparqlrw

go 1.24
