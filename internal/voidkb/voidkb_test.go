package voidkb

import (
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

func kistiDS() *Dataset {
	return &Dataset{
		URI:            "http://kisti.rkbexplorer.com/id/void",
		Title:          "KISTI",
		SPARQLEndpoint: "http://kisti.rkbexplorer.com/sparql",
		URISpace:       URISpaceFromPrefix("http://kisti.rkbexplorer.com/id/"),
		Vocabularies:   []string{rdf.KISTINS},
	}
}

func sotonDS() *Dataset {
	return &Dataset{
		URI:            "http://southampton.rkbexplorer.com/id/void",
		Title:          "Southampton RKB",
		SPARQLEndpoint: "http://southampton.rkbexplorer.com/sparql",
		URISpace:       URISpaceFromPrefix("http://southampton.rkbexplorer.com/id/"),
		Vocabularies:   []string{rdf.AKTNS},
	}
}

func TestURISpaceMatching(t *testing.T) {
	d := kistiDS()
	if !d.Matches("http://kisti.rkbexplorer.com/id/PER_105047") {
		t.Fatal("must match own URI space")
	}
	if d.Matches("http://southampton.rkbexplorer.com/id/person-02686") {
		t.Fatal("must not match foreign URI space")
	}
	empty := &Dataset{}
	if empty.Matches("http://x") {
		t.Fatal("empty URI space matches nothing")
	}
}

func TestKBAddGetAll(t *testing.T) {
	kb := NewKB()
	if err := kb.Add(kistiDS()); err != nil {
		t.Fatal(err)
	}
	if err := kb.Add(sotonDS()); err != nil {
		t.Fatal(err)
	}
	if kb.Len() != 2 {
		t.Fatalf("len = %d", kb.Len())
	}
	if _, ok := kb.Get("http://kisti.rkbexplorer.com/id/void"); !ok {
		t.Fatal("Get failed")
	}
	all := kb.All()
	if len(all) != 2 || all[0].URI > all[1].URI {
		t.Fatalf("All not sorted: %v", all)
	}
	if err := kb.Add(&Dataset{}); err == nil {
		t.Fatal("dataset without URI must be rejected")
	}
	if err := kb.Add(&Dataset{URI: "http://x"}); err == nil {
		t.Fatal("dataset without endpoint must be rejected")
	}
}

func TestByVocabularyAndDatasetFor(t *testing.T) {
	kb := NewKB()
	kb.Add(kistiDS())
	kb.Add(sotonDS())
	ds := kb.ByVocabulary(rdf.AKTNS)
	if len(ds) != 1 || ds[0].Title != "Southampton RKB" {
		t.Fatalf("ByVocabulary = %v", ds)
	}
	d, ok := kb.DatasetFor("http://kisti.rkbexplorer.com/id/PER_1")
	if !ok || d.Title != "KISTI" {
		t.Fatalf("DatasetFor = %v %v", d, ok)
	}
	if _, ok := kb.DatasetFor("http://elsewhere.example/x"); ok {
		t.Fatal("foreign URI matched")
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	kb := NewKB()
	kb.Add(kistiDS())
	kb.Add(sotonDS())
	ttl := kb.FormatTurtle()
	for _, want := range []string{"void:Dataset", "void:sparqlEndpoint", "void:vocabulary", "dcterms:title"} {
		if !strings.Contains(ttl, want) {
			t.Fatalf("turtle missing %q:\n%s", want, ttl)
		}
	}
	kb2, err := ParseTurtle(ttl)
	if err != nil {
		t.Fatal(err)
	}
	if kb2.Len() != 2 {
		t.Fatalf("round trip lost datasets")
	}
	d, _ := kb2.Get("http://kisti.rkbexplorer.com/id/void")
	orig := kistiDS()
	if d.Title != orig.Title || d.SPARQLEndpoint != orig.SPARQLEndpoint ||
		d.URISpace != orig.URISpace || len(d.Vocabularies) != 1 {
		t.Fatalf("round trip damaged dataset: %+v", d)
	}
}

func TestParsePlainVoidURISpace(t *testing.T) {
	// Standard voiD uses a plain prefix for uriSpace; it must be converted
	// into the regex form.
	src := `
@prefix void: <http://rdfs.org/ns/void#> .
<http://ds/void> a void:Dataset ;
  void:sparqlEndpoint <http://ds/sparql> ;
  void:uriSpace "http://ds/id/" .
`
	kb, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := kb.Get("http://ds/void")
	if !ok {
		t.Fatal("dataset missing")
	}
	if !d.Matches("http://ds/id/thing-1") {
		t.Fatalf("converted URI space does not match: %q", d.URISpace)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseTurtle("not turtle at all {"); err == nil {
		t.Fatal("bad turtle must fail")
	}
	// dataset missing endpoint
	src := `
@prefix void: <http://rdfs.org/ns/void#> .
<http://ds/void> a void:Dataset .
`
	if _, err := ParseTurtle(src); err == nil {
		t.Fatal("dataset without endpoint must fail")
	}
}
