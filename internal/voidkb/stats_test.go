package voidkb

import (
	"os"
	"testing"

	"sparqlrw/internal/rdf"
)

// TestParseStatistics pins the voiD statistics surface: void:triples,
// void:propertyPartition (void:property + void:triples) and
// void:classPartition (void:class + void:entities, falling back to
// void:triples) parse out of the Turtle fixture.
func TestParseStatistics(t *testing.T) {
	src, err := os.ReadFile("testdata/stats.ttl")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := ParseTurtle(string(src))
	if err != nil {
		t.Fatal(err)
	}
	soton, ok := kb.Get("http://southampton.rkbexplorer.com/id/void")
	if !ok {
		t.Fatal("southampton data set missing")
	}
	if soton.Triples != 1200000 {
		t.Fatalf("soton triples = %d", soton.Triples)
	}
	if n, ok := soton.PropertyTriples(rdf.AKTHasAuthor); !ok || n != 350000 {
		t.Fatalf("has-author partition = %d, %v", n, ok)
	}
	if n, ok := soton.PropertyTriples(rdf.AKTHasTitle); !ok || n != 150000 {
		t.Fatalf("has-title partition = %d, %v", n, ok)
	}
	if n, ok := soton.ClassEntities(rdf.AKTPerson); !ok || n != 45000 {
		t.Fatalf("Person partition = %d, %v", n, ok)
	}
	if !soton.HasStatistics() {
		t.Fatal("HasStatistics = false with full stats")
	}

	kisti, ok := kb.Get("http://kisti.rkbexplorer.com/id/void")
	if !ok {
		t.Fatal("kisti data set missing")
	}
	// Typed-literal count and the void:triples fallback for classes.
	if kisti.Triples != 800000 {
		t.Fatalf("kisti triples = %d", kisti.Triples)
	}
	if n, ok := kisti.PropertyTriples(rdf.KISTIHasCreator); !ok || n != 280000 {
		t.Fatalf("hasCreator partition = %d, %v", n, ok)
	}
	if n, ok := kisti.ClassEntities(rdf.KISTIArticle); !ok || n != 90000 {
		t.Fatalf("Article partition = %d, %v", n, ok)
	}

	// Unknown keys report !ok, not zero-with-ok.
	if _, ok := soton.PropertyTriples("http://nope.example/p"); ok {
		t.Fatal("unknown property partition reported ok")
	}
	// A malformed count ("3.5e6") is unknown, not a known tiny extent.
	if _, ok := soton.PropertyTriples(rdf.AKTHasDate); ok {
		t.Fatal("malformed partition count reported as known")
	}
}

// TestStatisticsRoundTrip: statistics survive Encode → Turtle → Parse,
// including two data sets sharing one graph (blank-node labels must not
// collide).
func TestStatisticsRoundTrip(t *testing.T) {
	kb := NewKB()
	a := sotonDS()
	a.Triples = 42
	a.PropertyPartitions = map[string]int64{rdf.AKTHasAuthor: 10, rdf.AKTHasTitle: 7}
	a.ClassPartitions = map[string]int64{rdf.AKTPerson: 5}
	b := kistiDS()
	b.Triples = 99
	b.PropertyPartitions = map[string]int64{rdf.KISTIHasCreator: 33}
	if err := kb.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := kb.Add(b); err != nil {
		t.Fatal(err)
	}
	out, err := ParseTurtle(kb.FormatTurtle())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, kb.FormatTurtle())
	}
	a2, _ := out.Get(a.URI)
	if a2.Triples != 42 || a2.PropertyPartitions[rdf.AKTHasAuthor] != 10 ||
		a2.PropertyPartitions[rdf.AKTHasTitle] != 7 || a2.ClassPartitions[rdf.AKTPerson] != 5 {
		t.Fatalf("soton stats lost: %+v", a2)
	}
	b2, _ := out.Get(b.URI)
	if b2.Triples != 99 || b2.PropertyPartitions[rdf.KISTIHasCreator] != 33 {
		t.Fatalf("kisti stats lost: %+v", b2)
	}
	if b2.HasStatistics() != true || (&Dataset{}).HasStatistics() {
		t.Fatal("HasStatistics")
	}
}
