package voidkb

import (
	"testing"
)

func TestMatchesCachesCompiledPattern(t *testing.T) {
	d := &Dataset{URISpace: `http://a\.example/\S*`}
	if !d.Matches("http://a.example/x") || d.Matches("http://b.example/x") {
		t.Fatal("match semantics wrong")
	}
	first := d.re
	if first == nil {
		t.Fatal("compiled regexp not cached")
	}
	d.Matches("http://a.example/y")
	if d.re != first {
		t.Fatal("regexp recompiled on second call")
	}
	// Mutating the URI space invalidates the cache.
	d.URISpace = `http://b\.example/\S*`
	if !d.Matches("http://b.example/x") || d.re == first {
		t.Fatal("cache not refreshed after URISpace change")
	}
	// A bad pattern matches nothing and does not recompile per call.
	d.URISpace = `http://(`
	if d.Matches("http://(") {
		t.Fatal("bad pattern must match nothing")
	}
}

func TestMatchesEmptySpace(t *testing.T) {
	d := &Dataset{}
	if d.Matches("http://a.example/x") {
		t.Fatal("empty URI space must match nothing")
	}
}

func BenchmarkMatches(b *testing.B) {
	d := &Dataset{URISpace: `http://southampton\.rkbexplorer\.com/id/\S*`}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !d.Matches("http://southampton.rkbexplorer.com/id/person-00042") {
			b.Fatal("no match")
		}
	}
}

func TestKBSubscribe(t *testing.T) {
	kb := NewKB()
	var notified []string
	cancel := kb.Subscribe(func(uri string) { notified = append(notified, uri) })
	if err := kb.Add(&Dataset{URI: "http://a/void", SPARQLEndpoint: "http://a/sparql"}); err != nil {
		t.Fatal(err)
	}
	// Replacing an entry notifies again.
	if err := kb.Add(&Dataset{URI: "http://a/void", SPARQLEndpoint: "http://a2/sparql"}); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 2 || notified[0] != "http://a/void" {
		t.Fatalf("notifications = %v", notified)
	}
	// Invalid adds do not notify.
	_ = kb.Add(&Dataset{URI: "http://b/void"})
	if len(notified) != 2 {
		t.Fatalf("invalid add notified: %v", notified)
	}
	// A cancelled subscription stops receiving.
	cancel()
	if err := kb.Add(&Dataset{URI: "http://c/void", SPARQLEndpoint: "http://c/sparql"}); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 2 {
		t.Fatalf("cancelled subscription notified: %v", notified)
	}
}
