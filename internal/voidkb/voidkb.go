// Package voidkb implements the voiD knowledge base of the paper's
// architecture (Figure 5): descriptions of the data sets the mediator can
// target — their SPARQL endpoints, URI spaces and vocabularies — loaded
// from and serialised to Turtle using the voiD vocabulary.
package voidkb

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

// Dataset describes one data set, per its voiD profile.
type Dataset struct {
	// URI uniquely identifies the data set within the system (§3.4).
	URI string
	// Title is a human-readable label (dcterms:title).
	Title string
	// SPARQLEndpoint is the query endpoint URL (void:sparqlEndpoint).
	SPARQLEndpoint string
	// Replicas are alternate endpoint URLs serving the same data set
	// (map:replicaEndpoint, an extension like uriSpaceRegex). The
	// executor's hedged dispatch races the healthiest replica against
	// the primary when the primary runs past its observed p95.
	Replicas []string
	// URISpace is a regular expression matching the data set's instance
	// URIs. voiD's void:uriSpace is a plain prefix; we store the derived
	// pattern (prefix regex-escaped + `\S*`), which is exactly the form
	// the paper's sameas functional dependencies consume.
	URISpace string
	// Vocabularies are the ontology namespaces the data set uses
	// (void:vocabulary).
	Vocabularies []string

	// Triples is the data set's total triple count (void:triples;
	// 0 = unknown). Together with the partitions below it feeds the
	// decomposer's cardinality estimator.
	Triples int64
	// PropertyPartitions maps predicate IRIs to their triple counts
	// (void:propertyPartition / void:property / void:triples).
	PropertyPartitions map[string]int64
	// ClassPartitions maps class IRIs to their instance counts
	// (void:classPartition / void:class / void:entities).
	ClassPartitions map[string]int64

	// reMu guards the compiled URI-space regexp, cached because Matches
	// sits on the planner's per-pattern hot path.
	reMu  sync.Mutex
	reSrc string
	re    *regexp.Regexp
}

// URISpaceFromPrefix derives the regex pattern for a plain URI prefix.
func URISpaceFromPrefix(prefix string) string {
	return regexp.QuoteMeta(prefix) + `\S*`
}

// Matches reports whether uri belongs to the data set's URI space. The
// compiled regexp is cached per URISpace value; mutating URISpace
// invalidates the cache on the next call.
func (d *Dataset) Matches(uri string) bool {
	if d.URISpace == "" {
		return false
	}
	d.reMu.Lock()
	if d.reSrc != d.URISpace {
		d.reSrc = d.URISpace
		d.re, _ = regexp.Compile("^(?:" + d.URISpace + ")$") // nil on bad pattern
	}
	re := d.re
	d.reMu.Unlock()
	if re == nil {
		return false
	}
	return re.MatchString(uri)
}

// UsesVocabulary reports whether the data set declares the namespace.
func (d *Dataset) UsesVocabulary(ns string) bool {
	for _, v := range d.Vocabularies {
		if v == ns {
			return true
		}
	}
	return false
}

// PropertyTriples returns the void:propertyPartition triple count for a
// predicate IRI (ok=false when the data set publishes no figure for it).
func (d *Dataset) PropertyTriples(pred string) (int64, bool) {
	n, ok := d.PropertyPartitions[pred]
	return n, ok
}

// ClassEntities returns the void:classPartition entity count for a class
// IRI (ok=false when the data set publishes no figure for it).
func (d *Dataset) ClassEntities(class string) (int64, bool) {
	n, ok := d.ClassPartitions[class]
	return n, ok
}

// HasStatistics reports whether the data set carries any voiD statistics
// the cardinality estimator can use.
func (d *Dataset) HasStatistics() bool {
	return d.Triples > 0 || len(d.PropertyPartitions) > 0 || len(d.ClassPartitions) > 0
}

// KB is a registry of data set descriptions.
type KB struct {
	mu        sync.RWMutex
	datasets  map[string]*Dataset
	listeners map[int]func(datasetURI string)
	nextSub   int
}

// NewKB returns an empty voiD KB.
func NewKB() *KB { return &KB{datasets: map[string]*Dataset{}} }

// Subscribe registers fn to be called with the data set URI whenever a
// description is added or replaced. The federation layer uses this to
// invalidate cached rewrite plans when a voiD entry changes. The
// returned cancel function removes the subscription; callers that
// outlive the KB must call it or they stay reachable through it.
func (kb *KB) Subscribe(fn func(datasetURI string)) (cancel func()) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if kb.listeners == nil {
		kb.listeners = map[int]func(string){}
	}
	id := kb.nextSub
	kb.nextSub++
	kb.listeners[id] = fn
	return func() {
		kb.mu.Lock()
		defer kb.mu.Unlock()
		delete(kb.listeners, id)
	}
}

// Add validates and registers a data set description, notifying
// subscribers of the change.
func (kb *KB) Add(d *Dataset) error {
	if d.URI == "" {
		return fmt.Errorf("voidkb: data set without URI")
	}
	if d.SPARQLEndpoint == "" {
		return fmt.Errorf("voidkb: data set %s without SPARQL endpoint", d.URI)
	}
	kb.mu.Lock()
	kb.datasets[d.URI] = d
	listeners := make([]func(string), 0, len(kb.listeners))
	for _, fn := range kb.listeners {
		listeners = append(listeners, fn)
	}
	kb.mu.Unlock()
	// Callbacks run outside the lock so they may read the KB.
	for _, fn := range listeners {
		fn(d.URI)
	}
	return nil
}

// Get returns the data set registered under uri.
func (kb *KB) Get(uri string) (*Dataset, bool) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	d, ok := kb.datasets[uri]
	return d, ok
}

// All returns every data set, sorted by URI.
func (kb *KB) All() []*Dataset {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	out := make([]*Dataset, 0, len(kb.datasets))
	for _, d := range kb.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Len returns the number of registered data sets.
func (kb *KB) Len() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.datasets)
}

// ByVocabulary returns the data sets declaring the given namespace.
func (kb *KB) ByVocabulary(ns string) []*Dataset {
	var out []*Dataset
	for _, d := range kb.All() {
		if d.UsesVocabulary(ns) {
			out = append(out, d)
		}
	}
	return out
}

// DatasetFor returns the data set whose URI space contains uri.
func (kb *KB) DatasetFor(uri string) (*Dataset, bool) {
	for _, d := range kb.All() {
		if d.Matches(uri) {
			return d, true
		}
	}
	return nil, false
}

const dctermsTitle = rdf.DCTermsNS + "title"

// uriSpaceProp extends voiD with the regex-form URI space the alignment
// machinery consumes; plain void:uriSpace prefixes are also accepted on
// load.
const uriSpaceRegexProp = rdf.MapNS + "uriSpaceRegex"

// replicaEndpointProp extends voiD with replica endpoints for hedged
// dispatch; void:sparqlEndpoint stays the unambiguous primary.
const replicaEndpointProp = rdf.MapNS + "replicaEndpoint"

// Encode appends the voiD description of d to g.
func Encode(g *rdf.Graph, d *Dataset) {
	id := rdf.NewIRI(d.URI)
	g.AddTriple(id, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.VoidDataset))
	if d.Title != "" {
		g.AddTriple(id, rdf.NewIRI(dctermsTitle), rdf.NewLiteral(d.Title))
	}
	g.AddTriple(id, rdf.NewIRI(rdf.VoidSPARQLEndpoint), rdf.NewIRI(d.SPARQLEndpoint))
	for _, r := range d.Replicas {
		g.AddTriple(id, rdf.NewIRI(replicaEndpointProp), rdf.NewIRI(r))
	}
	if d.URISpace != "" {
		g.AddTriple(id, rdf.NewIRI(uriSpaceRegexProp), rdf.NewLiteral(d.URISpace))
	}
	for _, v := range d.Vocabularies {
		g.AddTriple(id, rdf.NewIRI(rdf.VoidVocabulary), rdf.NewIRI(v))
	}
	if d.Triples > 0 {
		g.AddTriple(id, rdf.NewIRI(rdf.VoidTriples), intLiteral(d.Triples))
	}
	// Partition blank-node labels are seeded from the graph length so
	// encoding many data sets into one graph cannot collide.
	seed := len(*g)
	for i, pred := range sortedKeys(d.PropertyPartitions) {
		part := rdf.NewBlank(fmt.Sprintf("s%dpp%d", seed, i))
		g.AddTriple(id, rdf.NewIRI(rdf.VoidPropertyPartition), part)
		g.AddTriple(part, rdf.NewIRI(rdf.VoidProperty), rdf.NewIRI(pred))
		g.AddTriple(part, rdf.NewIRI(rdf.VoidTriples), intLiteral(d.PropertyPartitions[pred]))
	}
	for i, class := range sortedKeys(d.ClassPartitions) {
		part := rdf.NewBlank(fmt.Sprintf("s%dcp%d", seed, i))
		g.AddTriple(id, rdf.NewIRI(rdf.VoidClassPartition), part)
		g.AddTriple(part, rdf.NewIRI(rdf.VoidClass), rdf.NewIRI(class))
		g.AddTriple(part, rdf.NewIRI(rdf.VoidEntities), intLiteral(d.ClassPartitions[class]))
	}
}

func intLiteral(n int64) rdf.Term {
	return rdf.NewTypedLiteral(strconv.FormatInt(n, 10), rdf.XSDInteger)
}

// parseCount reads a non-negative count out of a (typed or plain) literal;
// malformed or negative values read as 0 ("unknown").
func parseCount(t rdf.Term) int64 {
	n, err := strconv.ParseInt(t.Value, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FormatTurtle serialises the whole KB as Turtle.
func (kb *KB) FormatTurtle() string {
	var g rdf.Graph
	for _, d := range kb.All() {
		Encode(&g, d)
	}
	pm := rdf.StandardPrefixes()
	return turtle.Format(g, pm)
}

// ParseTurtle loads data set descriptions from a Turtle document.
func ParseTurtle(src string) (*KB, error) {
	g, _, err := turtle.Parse(src)
	if err != nil {
		return nil, err
	}
	st := store.New()
	st.AddGraph(g)
	kb := NewKB()
	ids := st.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.VoidDataset))
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	for _, id := range ids {
		d := &Dataset{URI: id.Value}
		if t, ok := st.FirstObject(id, rdf.NewIRI(dctermsTitle)); ok {
			d.Title = t.Value
		}
		if t, ok := st.FirstObject(id, rdf.NewIRI(rdf.VoidSPARQLEndpoint)); ok {
			d.SPARQLEndpoint = t.Value
		}
		for _, r := range st.Objects(id, rdf.NewIRI(replicaEndpointProp)) {
			d.Replicas = append(d.Replicas, r.Value)
		}
		sort.Strings(d.Replicas)
		if t, ok := st.FirstObject(id, rdf.NewIRI(uriSpaceRegexProp)); ok {
			d.URISpace = t.Value
		} else if t, ok := st.FirstObject(id, rdf.NewIRI(rdf.VoidURISpace)); ok {
			d.URISpace = URISpaceFromPrefix(t.Value)
		}
		for _, v := range st.Objects(id, rdf.NewIRI(rdf.VoidVocabulary)) {
			d.Vocabularies = append(d.Vocabularies, v.Value)
		}
		sort.Strings(d.Vocabularies)
		if t, ok := st.FirstObject(id, rdf.NewIRI(rdf.VoidTriples)); ok {
			d.Triples = parseCount(t)
		}
		for _, part := range st.Objects(id, rdf.NewIRI(rdf.VoidPropertyPartition)) {
			pred, ok := st.FirstObject(part, rdf.NewIRI(rdf.VoidProperty))
			if !ok {
				continue
			}
			n, ok := st.FirstObject(part, rdf.NewIRI(rdf.VoidTriples))
			if !ok {
				continue
			}
			// A malformed count parses to 0 = "unknown" and is dropped:
			// recording it would make the estimator read the partition as
			// a known (near-empty) extent and seed joins with it.
			if c := parseCount(n); c > 0 {
				if d.PropertyPartitions == nil {
					d.PropertyPartitions = map[string]int64{}
				}
				d.PropertyPartitions[pred.Value] = c
			}
		}
		for _, part := range st.Objects(id, rdf.NewIRI(rdf.VoidClassPartition)) {
			class, ok := st.FirstObject(part, rdf.NewIRI(rdf.VoidClass))
			if !ok {
				continue
			}
			// void:entities is the canonical instance count; fall back to
			// void:triples, which some published descriptions use instead.
			n, ok := st.FirstObject(part, rdf.NewIRI(rdf.VoidEntities))
			if !ok {
				if n, ok = st.FirstObject(part, rdf.NewIRI(rdf.VoidTriples)); !ok {
					continue
				}
			}
			if c := parseCount(n); c > 0 {
				if d.ClassPartitions == nil {
					d.ClassPartitions = map[string]int64{}
				}
				d.ClassPartitions[class.Value] = c
			}
		}
		if err := kb.Add(d); err != nil {
			return nil, err
		}
	}
	return kb, nil
}
