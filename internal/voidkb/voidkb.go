// Package voidkb implements the voiD knowledge base of the paper's
// architecture (Figure 5): descriptions of the data sets the mediator can
// target — their SPARQL endpoints, URI spaces and vocabularies — loaded
// from and serialised to Turtle using the voiD vocabulary.
package voidkb

import (
	"fmt"
	"regexp"
	"sort"
	"sync"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

// Dataset describes one data set, per its voiD profile.
type Dataset struct {
	// URI uniquely identifies the data set within the system (§3.4).
	URI string
	// Title is a human-readable label (dcterms:title).
	Title string
	// SPARQLEndpoint is the query endpoint URL (void:sparqlEndpoint).
	SPARQLEndpoint string
	// URISpace is a regular expression matching the data set's instance
	// URIs. voiD's void:uriSpace is a plain prefix; we store the derived
	// pattern (prefix regex-escaped + `\S*`), which is exactly the form
	// the paper's sameas functional dependencies consume.
	URISpace string
	// Vocabularies are the ontology namespaces the data set uses
	// (void:vocabulary).
	Vocabularies []string

	// reMu guards the compiled URI-space regexp, cached because Matches
	// sits on the planner's per-pattern hot path.
	reMu  sync.Mutex
	reSrc string
	re    *regexp.Regexp
}

// URISpaceFromPrefix derives the regex pattern for a plain URI prefix.
func URISpaceFromPrefix(prefix string) string {
	return regexp.QuoteMeta(prefix) + `\S*`
}

// Matches reports whether uri belongs to the data set's URI space. The
// compiled regexp is cached per URISpace value; mutating URISpace
// invalidates the cache on the next call.
func (d *Dataset) Matches(uri string) bool {
	if d.URISpace == "" {
		return false
	}
	d.reMu.Lock()
	if d.reSrc != d.URISpace {
		d.reSrc = d.URISpace
		d.re, _ = regexp.Compile("^(?:" + d.URISpace + ")$") // nil on bad pattern
	}
	re := d.re
	d.reMu.Unlock()
	if re == nil {
		return false
	}
	return re.MatchString(uri)
}

// UsesVocabulary reports whether the data set declares the namespace.
func (d *Dataset) UsesVocabulary(ns string) bool {
	for _, v := range d.Vocabularies {
		if v == ns {
			return true
		}
	}
	return false
}

// KB is a registry of data set descriptions.
type KB struct {
	mu        sync.RWMutex
	datasets  map[string]*Dataset
	listeners map[int]func(datasetURI string)
	nextSub   int
}

// NewKB returns an empty voiD KB.
func NewKB() *KB { return &KB{datasets: map[string]*Dataset{}} }

// Subscribe registers fn to be called with the data set URI whenever a
// description is added or replaced. The federation layer uses this to
// invalidate cached rewrite plans when a voiD entry changes. The
// returned cancel function removes the subscription; callers that
// outlive the KB must call it or they stay reachable through it.
func (kb *KB) Subscribe(fn func(datasetURI string)) (cancel func()) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if kb.listeners == nil {
		kb.listeners = map[int]func(string){}
	}
	id := kb.nextSub
	kb.nextSub++
	kb.listeners[id] = fn
	return func() {
		kb.mu.Lock()
		defer kb.mu.Unlock()
		delete(kb.listeners, id)
	}
}

// Add validates and registers a data set description, notifying
// subscribers of the change.
func (kb *KB) Add(d *Dataset) error {
	if d.URI == "" {
		return fmt.Errorf("voidkb: data set without URI")
	}
	if d.SPARQLEndpoint == "" {
		return fmt.Errorf("voidkb: data set %s without SPARQL endpoint", d.URI)
	}
	kb.mu.Lock()
	kb.datasets[d.URI] = d
	listeners := make([]func(string), 0, len(kb.listeners))
	for _, fn := range kb.listeners {
		listeners = append(listeners, fn)
	}
	kb.mu.Unlock()
	// Callbacks run outside the lock so they may read the KB.
	for _, fn := range listeners {
		fn(d.URI)
	}
	return nil
}

// Get returns the data set registered under uri.
func (kb *KB) Get(uri string) (*Dataset, bool) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	d, ok := kb.datasets[uri]
	return d, ok
}

// All returns every data set, sorted by URI.
func (kb *KB) All() []*Dataset {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	out := make([]*Dataset, 0, len(kb.datasets))
	for _, d := range kb.datasets {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Len returns the number of registered data sets.
func (kb *KB) Len() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.datasets)
}

// ByVocabulary returns the data sets declaring the given namespace.
func (kb *KB) ByVocabulary(ns string) []*Dataset {
	var out []*Dataset
	for _, d := range kb.All() {
		if d.UsesVocabulary(ns) {
			out = append(out, d)
		}
	}
	return out
}

// DatasetFor returns the data set whose URI space contains uri.
func (kb *KB) DatasetFor(uri string) (*Dataset, bool) {
	for _, d := range kb.All() {
		if d.Matches(uri) {
			return d, true
		}
	}
	return nil, false
}

const dctermsTitle = rdf.DCTermsNS + "title"

// uriSpaceProp extends voiD with the regex-form URI space the alignment
// machinery consumes; plain void:uriSpace prefixes are also accepted on
// load.
const uriSpaceRegexProp = rdf.MapNS + "uriSpaceRegex"

// Encode appends the voiD description of d to g.
func Encode(g *rdf.Graph, d *Dataset) {
	id := rdf.NewIRI(d.URI)
	g.AddTriple(id, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.VoidDataset))
	if d.Title != "" {
		g.AddTriple(id, rdf.NewIRI(dctermsTitle), rdf.NewLiteral(d.Title))
	}
	g.AddTriple(id, rdf.NewIRI(rdf.VoidSPARQLEndpoint), rdf.NewIRI(d.SPARQLEndpoint))
	if d.URISpace != "" {
		g.AddTriple(id, rdf.NewIRI(uriSpaceRegexProp), rdf.NewLiteral(d.URISpace))
	}
	for _, v := range d.Vocabularies {
		g.AddTriple(id, rdf.NewIRI(rdf.VoidVocabulary), rdf.NewIRI(v))
	}
}

// FormatTurtle serialises the whole KB as Turtle.
func (kb *KB) FormatTurtle() string {
	var g rdf.Graph
	for _, d := range kb.All() {
		Encode(&g, d)
	}
	pm := rdf.StandardPrefixes()
	return turtle.Format(g, pm)
}

// ParseTurtle loads data set descriptions from a Turtle document.
func ParseTurtle(src string) (*KB, error) {
	g, _, err := turtle.Parse(src)
	if err != nil {
		return nil, err
	}
	st := store.New()
	st.AddGraph(g)
	kb := NewKB()
	ids := st.Subjects(rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.VoidDataset))
	sort.Slice(ids, func(i, j int) bool { return ids[i].Compare(ids[j]) < 0 })
	for _, id := range ids {
		d := &Dataset{URI: id.Value}
		if t, ok := st.FirstObject(id, rdf.NewIRI(dctermsTitle)); ok {
			d.Title = t.Value
		}
		if t, ok := st.FirstObject(id, rdf.NewIRI(rdf.VoidSPARQLEndpoint)); ok {
			d.SPARQLEndpoint = t.Value
		}
		if t, ok := st.FirstObject(id, rdf.NewIRI(uriSpaceRegexProp)); ok {
			d.URISpace = t.Value
		} else if t, ok := st.FirstObject(id, rdf.NewIRI(rdf.VoidURISpace)); ok {
			d.URISpace = URISpaceFromPrefix(t.Value)
		}
		for _, v := range st.Objects(id, rdf.NewIRI(rdf.VoidVocabulary)) {
			d.Vocabularies = append(d.Vocabularies, v.Value)
		}
		sort.Strings(d.Vocabularies)
		if err := kb.Add(d); err != nil {
			return nil, err
		}
	}
	return kb, nil
}
