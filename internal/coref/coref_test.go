package coref

import (
	"fmt"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"testing/quick"

	"sparqlrw/internal/rdf"
)

func TestAddSameEquivalents(t *testing.T) {
	s := NewStore()
	s.Add("http://a/1", "http://b/1")
	s.Add("http://b/1", "http://c/1")
	if !s.Same("http://a/1", "http://c/1") {
		t.Fatal("transitivity broken")
	}
	if !s.Same("http://c/1", "http://a/1") {
		t.Fatal("symmetry broken")
	}
	if s.Same("http://a/1", "http://d/1") {
		t.Fatal("unrelated URIs reported same")
	}
	if !s.Same("http://x/self", "http://x/self") {
		t.Fatal("reflexivity broken")
	}
	eq := s.Equivalents("http://a/1")
	if len(eq) != 3 {
		t.Fatalf("class = %v", eq)
	}
}

func TestUnknownURISingleton(t *testing.T) {
	s := NewStore()
	eq := s.Equivalents("http://unknown/x")
	if len(eq) != 1 || eq[0] != "http://unknown/x" {
		t.Fatalf("singleton = %v", eq)
	}
	if s.Canonical("http://unknown/x") != "http://unknown/x" {
		t.Fatal("canonical of unknown must be itself")
	}
}

func TestFirstMatching(t *testing.T) {
	s := NewStore()
	s.Add("http://southampton.rkbexplorer.com/id/person-02686", "http://kisti.rkbexplorer.com/id/PER_00000000105047")
	s.Add("http://southampton.rkbexplorer.com/id/person-02686", "http://dbpedia.org/resource/Nigel_Shadbolt")
	re := regexp.MustCompile(`http://kisti\.rkbexplorer\.com/id/\S*`)
	got, ok := s.FirstMatching("http://southampton.rkbexplorer.com/id/person-02686", re)
	if !ok || got != "http://kisti.rkbexplorer.com/id/PER_00000000105047" {
		t.Fatalf("FirstMatching = %q %v", got, ok)
	}
	re2 := regexp.MustCompile(`http://nowhere\.example/\S*`)
	if _, ok := s.FirstMatching("http://southampton.rkbexplorer.com/id/person-02686", re2); ok {
		t.Fatal("unexpected match")
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	s := NewStore()
	s.Add("http://b/x", "http://a/x")
	s.Add("http://c/x", "http://b/x")
	for i := 0; i < 5; i++ {
		if got := s.Canonical("http://c/x"); got != "http://a/x" {
			t.Fatalf("canonical = %q", got)
		}
	}
}

func TestLoadGraphAndDump(t *testing.T) {
	s := NewStore()
	g := rdf.Graph{
		rdf.NewTriple(rdf.NewIRI("http://a/1"), rdf.NewIRI(rdf.OWLSameAs), rdf.NewIRI("http://b/1")),
		rdf.NewTriple(rdf.NewIRI("http://a/2"), rdf.NewIRI(rdf.OWLSameAs), rdf.NewIRI("http://b/2")),
		rdf.NewTriple(rdf.NewIRI("http://a/1"), rdf.NewIRI("http://other/prop"), rdf.NewIRI("http://b/9")),
	}
	if n := s.LoadGraph(g); n != 2 {
		t.Fatalf("loaded %d", n)
	}
	dump := s.Dump()
	if len(dump) != 2 {
		t.Fatalf("dump = %v", dump)
	}
	s2 := NewStore()
	s2.LoadGraph(dump)
	if !s2.Same("http://a/1", "http://b/1") || !s2.Same("http://a/2", "http://b/2") {
		t.Fatal("dump/reload lost classes")
	}
}

func TestLoadNTriples(t *testing.T) {
	s := NewStore()
	n, err := s.LoadNTriples(`<http://a/1> <` + rdf.OWLSameAs + `> <http://b/1> .`)
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := s.LoadNTriples("garbage"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestClassesAndMembers(t *testing.T) {
	s := NewStore()
	s.Add("a", "b")
	s.Add("c", "d")
	s.Add("b", "a") // duplicate union
	if s.Classes() != 2 || s.Members() != 4 || s.Pairs() != 3 {
		t.Fatalf("classes=%d members=%d pairs=%d", s.Classes(), s.Members(), s.Pairs())
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Add(fmt.Sprintf("http://w%d/u%d", w, i), fmt.Sprintf("http://hub/u%d", i))
				s.Equivalents(fmt.Sprintf("http://hub/u%d", i))
			}
		}(w)
	}
	wg.Wait()
	// every class has 8 spokes + hub
	if got := len(s.Equivalents("http://hub/u5")); got != 9 {
		t.Fatalf("class size = %d, want 9", got)
	}
}

// Property: union-find maintains an equivalence relation (reflexive,
// symmetric, transitive) over arbitrary pair sequences.
func TestEquivalenceRelationProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		s := NewStore()
		names := func(n uint8) string { return fmt.Sprintf("http://u/%d", n%16) }
		for i := 0; i+1 < len(pairs); i += 2 {
			s.Add(names(pairs[i]), names(pairs[i+1]))
		}
		// For every pair of members, Same must agree with class membership.
		for n := 0; n < 16; n++ {
			cls := s.Equivalents(names(uint8(n)))
			inClass := map[string]bool{}
			for _, x := range cls {
				inClass[x] = true
			}
			for m := 0; m < 16; m++ {
				if s.Same(names(uint8(n)), names(uint8(m))) != inClass[names(uint8(m))] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPServiceAndClient(t *testing.T) {
	s := NewStore()
	s.Add("http://a/1", "http://b/1")
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	c := NewClient(srv.URL)
	eq := c.Equivalents("http://a/1")
	if len(eq) != 2 {
		t.Fatalf("client equivalents = %v", eq)
	}
	members, classes, pairs, err := c.Stats()
	if err != nil || members != 2 || classes != 1 || pairs != 1 {
		t.Fatalf("stats = %d %d %d %v", members, classes, pairs, err)
	}
	// unknown URI -> singleton
	if eq := c.Equivalents("http://nope/x"); len(eq) != 1 {
		t.Fatalf("unknown = %v", eq)
	}
}

func TestClientDegradesGracefully(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listening
	eq := c.Equivalents("http://a/1")
	if len(eq) != 1 || eq[0] != "http://a/1" {
		t.Fatalf("degraded = %v", eq)
	}
}

func TestHTTPBadRequest(t *testing.T) {
	srv := httptest.NewServer(Handler(NewStore()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/equivalents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func BenchmarkEquivalentsLargeClass(b *testing.B) {
	s := NewStore()
	for i := 0; i < 200; i++ {
		s.Add("http://hub/x", fmt.Sprintf("http://m%d/x", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Equivalents("http://hub/x")
	}
}
