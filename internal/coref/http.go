package coref

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// equivalentsResponse is the JSON wire format of the REST service,
// mirroring the sameas.org API shape the paper wraps ("returns all the
// URIs that are equivalent to the one given in input").
type equivalentsResponse struct {
	URI         string   `json:"uri"`
	Equivalents []string `json:"equivalents"`
}

// Handler serves the co-reference REST API over a Store:
//
//	GET /equivalents?uri=<uri>  ->  {"uri": ..., "equivalents": [...]}
//	GET /stats                  ->  {"members": n, "classes": n, "pairs": n}
func Handler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/equivalents", func(w http.ResponseWriter, r *http.Request) {
		uri := r.URL.Query().Get("uri")
		if uri == "" {
			http.Error(w, "missing uri parameter", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(equivalentsResponse{URI: uri, Equivalents: s.Equivalents(uri)})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{
			"members": s.Members(),
			"classes": s.Classes(),
			"pairs":   s.Pairs(),
		})
	})
	return mux
}

// Client queries a remote co-reference service; it implements the same
// Equivalents contract as a local Store so the sameas function can be
// backed by either.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 10 * time.Second}}
}

// Equivalents fetches the equivalence class of uri. On transport errors it
// degrades to the singleton class, matching the paper's default behaviour
// (an unresolvable URI simply stays untranslated).
func (c *Client) Equivalents(uri string) []string {
	resp, err := c.HTTP.Get(c.BaseURL + "/equivalents?uri=" + url.QueryEscape(uri))
	if err != nil {
		return []string{uri}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return []string{uri}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return []string{uri}
	}
	var parsed equivalentsResponse
	if err := json.Unmarshal(body, &parsed); err != nil || len(parsed.Equivalents) == 0 {
		return []string{uri}
	}
	return parsed.Equivalents
}

// Stats fetches service statistics.
func (c *Client) Stats() (members, classes, pairs int, err error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/stats")
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	var m map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, 0, 0, fmt.Errorf("coref: decoding stats: %w", err)
	}
	return m["members"], m["classes"], m["pairs"], nil
}
