// Package coref implements the co-reference (owl:sameAs) service the
// paper's sameas function depends on (§3.3): an equivalence store over
// URIs with regex-filtered selection, plus an HTTP REST service and client
// that stand in for the sameas.org API the paper wraps.
package coref

import (
	"fmt"
	"regexp"
	"sort"
	"sync"

	"sparqlrw/internal/ntriples"
	"sparqlrw/internal/rdf"
)

// Store maintains owl:sameAs equivalence classes over URIs using a
// union–find structure with path compression and union by size; each root
// also carries its member list so equivalence-class retrieval costs
// O(class size), not O(store size). All methods are safe for concurrent
// use.
type Store struct {
	mu      sync.RWMutex
	parent  map[string]string
	members map[string][]string // root -> class members (unsorted)
	pairs   int
}

// NewStore returns an empty equivalence store.
func NewStore() *Store {
	return &Store{parent: map[string]string{}, members: map[string][]string{}}
}

func (s *Store) find(x string) string {
	root := x
	for {
		p, ok := s.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	// Path compression.
	for x != root {
		next := s.parent[x]
		s.parent[x] = root
		x = next
	}
	return root
}

func (s *Store) ensure(x string) {
	if _, ok := s.parent[x]; !ok {
		s.parent[x] = x
		s.members[x] = []string{x}
	}
}

// Add records that a and b identify the same resource (owl:sameAs).
func (s *Store) Add(a, b string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pairs++
	s.ensure(a)
	s.ensure(b)
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return
	}
	// Union by size: merge the smaller member list into the larger.
	if len(s.members[ra]) < len(s.members[rb]) {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.members[ra] = append(s.members[ra], s.members[rb]...)
	delete(s.members, rb)
}

// Same reports whether a and b are in the same equivalence class. Every
// URI is trivially the same as itself.
func (s *Store) Same(a, b string) bool {
	if a == b {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parent[a]; !ok {
		return false
	}
	if _, ok := s.parent[b]; !ok {
		return false
	}
	return s.find(a) == s.find(b)
}

// Equivalents returns the full equivalence class of uri (including uri
// itself), sorted. Unknown URIs yield a singleton class.
func (s *Store) Equivalents(uri string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parent[uri]; !ok {
		return []string{uri}
	}
	cls := s.members[s.find(uri)]
	out := append([]string(nil), cls...)
	sort.Strings(out)
	return out
}

// Canonical returns a deterministic representative of uri's class (the
// lexicographically smallest member). Used to smush URIs when merging
// federated results.
func (s *Store) Canonical(uri string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parent[uri]; !ok {
		return uri
	}
	cls := s.members[s.find(uri)]
	best := uri
	for _, x := range cls {
		if x < best {
			best = x
		}
	}
	return best
}

// FirstMatching returns the first member of uri's equivalence class that
// matches the compiled pattern, in sorted order, and whether one exists.
// This is the lookup behind the paper's sameas(x, regex) function.
func (s *Store) FirstMatching(uri string, re *regexp.Regexp) (string, bool) {
	for _, cand := range s.Equivalents(uri) {
		if re.MatchString(cand) {
			return cand, true
		}
	}
	return "", false
}

// Classes returns the number of equivalence classes (including
// singletons created by Add).
func (s *Store) Classes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.members)
}

// Members returns the number of URIs known to the store.
func (s *Store) Members() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.parent)
}

// Pairs returns the number of Add calls (sameAs assertions ingested).
func (s *Store) Pairs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pairs
}

// LoadGraph ingests every owl:sameAs triple of g, returning the number of
// assertions added.
func (s *Store) LoadGraph(g rdf.Graph) int {
	n := 0
	for _, t := range g {
		if t.P.Value == rdf.OWLSameAs && t.S.IsIRI() && t.O.IsIRI() {
			s.Add(t.S.Value, t.O.Value)
			n++
		}
	}
	return n
}

// LoadNTriples ingests owl:sameAs triples from N-Triples text.
func (s *Store) LoadNTriples(src string) (int, error) {
	g, err := ntriples.ParseString(src)
	if err != nil {
		return 0, fmt.Errorf("coref: %w", err)
	}
	return s.LoadGraph(g), nil
}

// Dump exports the store as owl:sameAs triples linking every member to its
// canonical representative (a minimal spanning representation).
func (s *Store) Dump() rdf.Graph {
	s.mu.Lock()
	uris := make([]string, 0, len(s.parent))
	for x := range s.parent {
		uris = append(uris, x)
	}
	s.mu.Unlock()
	sort.Strings(uris)
	var g rdf.Graph
	for _, x := range uris {
		c := s.Canonical(x)
		if c != x {
			g.AddTriple(rdf.NewIRI(x), rdf.NewIRI(rdf.OWLSameAs), rdf.NewIRI(c))
		}
	}
	return g
}
