package view

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// fakeRunner materializes a fixed solution set and records its calls.
type fakeRunner struct {
	mu        sync.Mutex
	calls     int
	solutions []eval.Solution
	complete  bool
	err       error
}

func (r *fakeRunner) Materialize(ctx context.Context, queryText, sourceOnt string) (*MaterializeResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if r.err != nil {
		return nil, r.err
	}
	return &MaterializeResult{Vars: []string{"p", "a"}, Solutions: r.solutions, Complete: r.complete}, nil
}

func (r *fakeRunner) Canonicalise(patterns []rdf.Triple) []rdf.Triple {
	return append([]rdf.Triple(nil), patterns...)
}

func (r *fakeRunner) callCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func mustParse(t *testing.T, text string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

const crossQuery = `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?p ?c WHERE { ?p akt:has-author ?a . ?p m:citationCount ?c }`

func crossSolutions(n int) []eval.Solution {
	out := make([]eval.Solution, n)
	for i := range out {
		out[i] = eval.Solution{
			"p": rdf.NewIRI(fmt.Sprintf("http://e/paper-%d", i)),
			"a": rdf.NewIRI(fmt.Sprintf("http://e/author-%d", i)),
			"c": rdf.NewInteger(int64(i)),
		}
	}
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSignatureModuloVariableRenaming(t *testing.T) {
	q1 := mustParse(t, crossQuery)
	q2 := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?x ?y WHERE { ?x m:citationCount ?y . ?x akt:has-author ?z }`)
	p1, ok1 := flatten(q1)
	p2, ok2 := flatten(q2)
	if !ok1 || !ok2 {
		t.Fatal("flatten failed")
	}
	s1, s2 := signature(p1), signature(p2)
	if s1 != s2 {
		t.Fatalf("renamed+reordered BGP changed signature:\n%s\n%s", s1, s2)
	}
	q3 := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?x WHERE { ?x akt:has-author ?z }`)
	p3, _ := flatten(q3)
	if signature(p3) == s1 {
		t.Fatal("different BGPs share a signature")
	}
	// A repeated variable is not the same shape as two distinct ones.
	q4 := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?x WHERE { ?x m:citationCount ?y . ?x akt:has-author ?x }`)
	p4, _ := flatten(q4)
	if signature(p4) == s1 {
		t.Fatal("repeated-variable BGP shares the distinct-variable signature")
	}
}

func TestFlattenRejectsNonCoverableShapes(t *testing.T) {
	for _, text := range []string{
		`SELECT ?s WHERE { { ?s ?p ?o } UNION { ?o ?p ?s } }`,
		`SELECT ?s WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?v } }`,
		`ASK { ?s ?p ?o }`,
	} {
		q := mustParse(t, text)
		if _, ok := flatten(q); ok {
			t.Fatalf("flatten accepted %s", text)
		}
	}
	withFilter := mustParse(t, `SELECT ?s WHERE { ?s ?p ?o . FILTER (?o > 3) }`)
	if _, ok := flatten(withFilter); !ok {
		t.Fatal("flatten rejected a filtered BGP")
	}
}

func TestObserveMaterializesAtMinFrequency(t *testing.T) {
	r := &fakeRunner{solutions: crossSolutions(3), complete: true}
	m := NewManager(r, nil, Options{MinFrequency: 2})
	defer m.Close()
	q := mustParse(t, crossQuery)
	datasets := []string{"http://e/ds1", "http://e/ds2"}

	m.Observe(q, "http://src/", datasets, 10, nil)
	if r.callCount() != 0 {
		t.Fatal("materialized before MinFrequency")
	}
	if _, hit := m.Answer(q, nil); hit {
		t.Fatal("Answer hit before any view exists")
	}
	m.Observe(q, "http://src/", datasets, 10, nil)
	waitFor(t, "view to materialize", func() bool {
		st := m.Stats()
		return len(st.Views) == 1 && st.Views[0].State == "ready"
	})
	st := m.Stats()
	v := st.Views[0]
	// Two patterns instantiated per solution: 3 solutions -> 6 triples.
	if v.Triples != 6 {
		t.Fatalf("view holds %d triples, want 6", v.Triples)
	}
	if len(v.Datasets) != 2 {
		t.Fatalf("view datasets = %v", v.Datasets)
	}
	if v.Void.Triples != 6 || len(v.Void.PropertyPartitions) != 2 {
		t.Fatalf("synthetic voiD stats = %+v", v.Void)
	}
	if !strings.HasPrefix(v.Endpoint, "local://") {
		t.Fatalf("view endpoint = %q", v.Endpoint)
	}

	// A renamed spelling of the same shape hits.
	q2 := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?x ?y WHERE { ?x m:citationCount ?y . ?x akt:has-author ?w }`)
	hv, hit := m.Answer(q2, nil)
	if !hit {
		t.Fatal("renamed query missed the view")
	}
	if hv.ID() != v.ID {
		t.Fatalf("hit view %s, want %s", hv.ID(), v.ID)
	}
	// A match is not yet a hit: the serving layer confirms it only once
	// the view stream opens (CountHit) or records the fallback (CountMiss).
	if got := m.Stats(); got.Hits != 0 || got.Misses != 1 {
		t.Fatalf("hits/misses before CountHit = %d/%d, want 0/1", got.Hits, got.Misses)
	}
	m.CountHit(hv)
	if got := m.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", got.Hits, got.Misses)
	}
	m.CountMiss()
	if got := m.Stats(); got.Misses != 2 {
		t.Fatalf("misses after CountMiss = %d, want 2", got.Misses)
	}
}

func TestPartialAnswerNeverMaterializes(t *testing.T) {
	r := &fakeRunner{solutions: crossSolutions(2), complete: false}
	m := NewManager(r, nil, Options{MinFrequency: 1})
	defer m.Close()
	q := mustParse(t, crossQuery)
	m.Observe(q, "http://src/", []string{"http://e/ds1"}, 10, nil)
	waitFor(t, "materialize attempt", func() bool { return r.callCount() >= 1 })
	time.Sleep(20 * time.Millisecond)
	if st := m.Stats(); len(st.Views) != 0 {
		t.Fatal("partial federated answer produced a view")
	}
}

func TestMaxTriplesDisablesShape(t *testing.T) {
	r := &fakeRunner{solutions: crossSolutions(50), complete: true}
	m := NewManager(r, nil, Options{MinFrequency: 1, MaxTriples: 10})
	defer m.Close()
	q := mustParse(t, crossQuery)
	m.Observe(q, "http://src/", []string{"http://e/ds1"}, 1, nil)
	waitFor(t, "materialize attempt", func() bool { return r.callCount() >= 1 })
	time.Sleep(20 * time.Millisecond)
	if st := m.Stats(); len(st.Views) != 0 {
		t.Fatal("oversized result was materialized")
	}
	// The shape is disabled: more observations never retry.
	m.Observe(q, "http://src/", []string{"http://e/ds1"}, 1, nil)
	m.Observe(q, "http://src/", []string{"http://e/ds1"}, 1, nil)
	time.Sleep(20 * time.Millisecond)
	if r.callCount() != 1 {
		t.Fatalf("disabled shape re-materialized: %d calls", r.callCount())
	}
}

func TestInvalidateDatasetRefreshesView(t *testing.T) {
	r := &fakeRunner{solutions: crossSolutions(2), complete: true}
	m := NewManager(r, nil, Options{MinFrequency: 1})
	defer m.Close()
	q := mustParse(t, crossQuery)
	m.Observe(q, "http://src/", []string{"http://e/ds1", "http://e/ds2"}, 5, nil)
	waitFor(t, "view to materialize", func() bool { return len(m.Stats().Views) == 1 })

	// Invalidating an unrelated data set leaves the view ready.
	m.InvalidateDataset("http://e/other")
	if st := m.Stats(); st.Views[0].State != "ready" {
		t.Fatal("unrelated invalidation marked the view stale")
	}

	// Invalidating a source data set: the view must refuse to answer
	// (synchronously) and then refresh in the background.
	before := r.callCount()
	m.InvalidateDataset("http://e/ds1")
	// Note: the refresh loop races this check, so assert via the counter
	// epoch: a hit on a stale view is the bug being guarded against. The
	// stale marking itself is synchronous, so Answer between Invalidate
	// and refresh-completion either misses (stale) or hits a fresh view.
	waitFor(t, "view to refresh", func() bool {
		st := m.Stats()
		return st.Refreshes >= 1 && st.Views[0].State == "ready" && r.callCount() > before
	})
	if _, hit := m.Answer(q, nil); !hit {
		t.Fatal("refreshed view does not answer")
	}
}

func TestInvalidateAllDropsMinedShapes(t *testing.T) {
	r := &fakeRunner{solutions: crossSolutions(1), complete: true}
	m := NewManager(r, nil, Options{MinFrequency: 3})
	defer m.Close()
	q := mustParse(t, crossQuery)
	m.Observe(q, "http://src/", []string{"http://e/ds1"}, 5, nil)
	if st := m.Stats(); st.MinedShapes != 1 {
		t.Fatalf("mined shapes = %d, want 1", st.MinedShapes)
	}
	m.InvalidateAll()
	if st := m.Stats(); st.MinedShapes != 0 {
		t.Fatalf("InvalidateAll kept %d mined shapes", st.MinedShapes)
	}
}

func TestNilManagerIsSafe(t *testing.T) {
	var m *Manager
	m.Close()
	m.InvalidateAll()
	m.InvalidateDataset("x")
	m.Observe(nil, "", nil, 0, nil)
	if _, hit := m.Answer(nil, nil); hit {
		t.Fatal("nil manager answered")
	}
	if st := m.Stats(); len(st.Views) != 0 {
		t.Fatal("nil manager has views")
	}
}

// swapCanonRunner is a fakeRunner whose canonicalisation rule can move
// mid-test, like a live alignment KB update moving a representative.
type swapCanonRunner struct {
	fakeRunner
	canonMu sync.Mutex
	canon   func(rdf.Term) rdf.Term
}

func (r *swapCanonRunner) term(x rdf.Term) rdf.Term {
	r.canonMu.Lock()
	defer r.canonMu.Unlock()
	return r.canon(x)
}

func (r *swapCanonRunner) Canonicalise(patterns []rdf.Triple) []rdf.Triple {
	return canonPatterns(patterns, r.term)
}

// TestRefreshRekeysTemplatesWithSignature guards the soundness hole the
// review caught: when an alignment update moves a ground IRI's
// representative, the refreshed view must instantiate its stored triples
// from the NEW canonical templates — the ones its new signature is built
// from — or a signature match would probe a store full of old
// representatives and silently answer empty.
func TestRefreshRekeysTemplatesWithSignature(t *testing.T) {
	const alice = "http://a.example/id/alice"
	const bob = "http://b.example/id/bob"
	r := &swapCanonRunner{fakeRunner: fakeRunner{solutions: crossSolutions(1), complete: true}}
	rep := alice
	r.canon = func(x rdf.Term) rdf.Term {
		if x.Kind == rdf.KindIRI && (x.Value == alice || x.Value == bob) {
			return rdf.NewIRI(rep)
		}
		return x
	}
	m := NewManager(r, nil, Options{MinFrequency: 1})
	defer m.Close()
	qa := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?p ?c WHERE { ?p akt:has-author <http://a.example/id/alice> . ?p m:citationCount ?c }`)
	m.Observe(qa, "http://src/", []string{"http://e/ds1"}, 1, r.term)
	waitFor(t, "view to materialize", func() bool { return len(m.Stats().Views) == 1 })

	hasAuthor := rdf.NewIRI("http://www.aktors.org/ontology/portal#has-author")
	objCount := func(v *View, obj string) int {
		return v.store.Count(rdf.Triple{S: rdf.NewVar("x"), P: hasAuthor, O: rdf.NewIRI(obj)})
	}
	v1, hit := m.Answer(qa, r.term)
	if !hit {
		t.Fatal("fresh view missed")
	}
	if objCount(v1, alice) == 0 {
		t.Fatal("fresh view store lacks the current representative")
	}

	// The alignment KB moves the representative; views are invalidated.
	r.canonMu.Lock()
	rep = bob
	r.canonMu.Unlock()
	m.InvalidateAll()
	waitFor(t, "view to refresh", func() bool {
		st := m.Stats()
		return st.Refreshes >= 1 && len(st.Views) == 1 && st.Views[0].State == "ready"
	})
	v2, hit := m.Answer(qa, r.term)
	if !hit {
		t.Fatal("refreshed view missed under the new canonicalisation")
	}
	if objCount(v2, bob) == 0 {
		t.Fatal("refreshed store carries old representatives: signature matches but triples cannot")
	}
	if objCount(v2, alice) != 0 {
		t.Fatal("refreshed store still holds the retired representative")
	}
}

// TestObserveAfterCloseIsNoop guards the Close/Observe race: once Close
// has begun, Observe must not wg.Add (WaitGroup misuse) nor spawn a
// build that could re-register an endpoint after UnregisterLocal.
func TestObserveAfterCloseIsNoop(t *testing.T) {
	r := &fakeRunner{solutions: crossSolutions(1), complete: true}
	m := NewManager(r, nil, Options{MinFrequency: 1})
	m.Close()
	q := mustParse(t, crossQuery)
	m.Observe(q, "http://src/", []string{"http://e/ds1"}, 1, nil)
	time.Sleep(20 * time.Millisecond)
	if n := r.callCount(); n != 0 {
		t.Fatalf("Observe after Close materialized %d times", n)
	}
}

func TestCanonicalisationAlignsSpellings(t *testing.T) {
	// Two spellings of one ground entity must share a view once the
	// canonicaliser maps them to the same representative.
	canon := func(t rdf.Term) rdf.Term {
		if t.Value == "http://mirror.example/id/alice" {
			return rdf.NewIRI("http://a.example/id/alice")
		}
		return t
	}
	r := &fakeRunner{solutions: crossSolutions(1), complete: true}
	m := NewManager(r, nil, Options{MinFrequency: 1})
	defer m.Close()
	qa := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?p ?c WHERE { ?p akt:has-author <http://a.example/id/alice> . ?p m:citationCount ?c }`)
	m.Observe(qa, "http://src/", []string{"http://e/ds1"}, 1, canon)
	waitFor(t, "view to materialize", func() bool { return len(m.Stats().Views) == 1 })
	qb := mustParse(t, `PREFIX akt:<http://www.aktors.org/ontology/portal#>
PREFIX m:<http://metrics.example/ontology#>
SELECT ?p ?c WHERE { ?p akt:has-author <http://mirror.example/id/alice> . ?p m:citationCount ?c }`)
	if _, hit := m.Answer(qb, canon); !hit {
		t.Fatal("sameAs-equivalent spelling missed the view")
	}
	if _, hit := m.Answer(qb, nil); hit {
		t.Fatal("uncanonicalised spelling hit the view (unsound match)")
	}
}
