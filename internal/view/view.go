// Package view implements the mediator's materialized-view tier: it
// mines frequent cross-vocabulary join shapes from the decomposed query
// stream, materializes their sameAs-canonicalised federated answer into
// an embedded dictionary-encoded store, serves that store behind the
// in-process local:// endpoint scheme, and answers later queries with a
// matching basic graph pattern straight from the view — zero endpoint
// round trips. This is the complement the paper's rewrite-vs-materialise
// experiment measures: rewriting trades freshness work at query time,
// the view trades it at refresh time.
//
// Soundness: a query is answered from a view only when its flattened BGP
// is identical to the view's covered shape modulo variable renaming,
// with ground IRIs compared after owl:sameAs canonicalisation. Filters,
// projection, DISTINCT, ORDER BY and LIMIT are evaluated over the view
// store by the embedded SPARQL engine, so they need no containment
// argument. A view is never silently stale: voiD and alignment KB
// updates mark affected views stale synchronously (before the KB update
// returns), stale views refuse to answer, and the refresh loop
// re-materializes them — discarding any result whose build raced a
// further invalidation (the epoch check).
package view

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/voidkb"
)

// Options configures a Manager. The struct is comparable so callers can
// diff configurations across rebuilds.
type Options struct {
	// RefreshTTL re-materializes ready views this long after their last
	// refresh (0 = refresh only on invalidation).
	RefreshTTL time.Duration
	// MaxTriples caps a view's materialized size; a shape whose answer
	// exceeds it is disabled rather than half-stored.
	MaxTriples int
	// MinFrequency is how often a join shape must be observed before it
	// is materialized.
	MinFrequency int
	// MaxViews caps how many views are kept.
	MaxViews int
	// Registry receives the sparqlrw_view_* metrics (nil = private).
	Registry *obs.Registry
	// Cards is the observed-cardinality store; its calibrated figures
	// refine a shape's size estimate before materialization.
	Cards *obs.CardStore
}

func (o Options) withDefaults() Options {
	if o.MaxTriples == 0 {
		o.MaxTriples = 50000
	}
	if o.MinFrequency == 0 {
		o.MinFrequency = 2
	}
	if o.MaxViews == 0 {
		o.MaxViews = 8
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Runner is the view manager's window onto the federated pipeline,
// implemented by the mediator. Materialize must bypass the view tier
// itself (no recursion, no re-mining) and report Complete=false whenever
// any data set failed — a view must never be built from a partial
// answer. Canonicalise maps ground IRIs to their owl:sameAs
// representatives with the same rule the federated merge uses.
type Runner interface {
	Materialize(ctx context.Context, queryText, sourceOnt string) (*MaterializeResult, error)
	Canonicalise(patterns []rdf.Triple) []rdf.Triple
}

// MaterializeResult is a drained federated SELECT.
type MaterializeResult struct {
	Vars      []string
	Solutions []eval.Solution
	// Complete is true only when every data set answered successfully.
	Complete bool
}

// materializeTimeout bounds one view build.
const materializeTimeout = 30 * time.Second

// viewSeq makes local endpoint names unique across managers in one
// process (tests boot several mediators).
var viewSeq atomic.Uint64

// shape is a mined-but-not-yet-materialized join shape.
type shape struct {
	sig string
	// patternsOrig is the first-seen spelling of the BGP, used verbatim
	// for the materialization query (the rewrite/coref machinery expects
	// the user's IRIs, not their canonical representatives).
	patternsOrig []rdf.Triple
	// patternsCanon is the same BGP with ground IRIs canonicalised; its
	// patterns are the instantiation templates, so stored triples carry
	// canonical representatives like the merged solutions they come from.
	patternsCanon []rdf.Triple
	sourceOnt     string
	datasets      []string
	estRows       int64
	count         int
	building      bool
	disabled      bool
	fails         int
}

// View is one materialized view: the covered shape plus the embedded
// store currently answering it. All mutable fields are guarded by the
// owning Manager's mutex.
type View struct {
	id           string
	def          *shape
	store        *store.DictStore
	endpointName string
	stale        bool
	epoch        uint64
	created      time.Time
	refreshed    time.Time
	hits         uint64
}

// ID returns the view's identifier (v1, v2, ...).
func (v *View) ID() string { return v.id }

// Endpoint returns the view's in-process endpoint URL.
func (v *View) Endpoint() string { return endpoint.LocalURL(v.endpointName) }

// Datasets returns the source data sets the view joins over.
func (v *View) Datasets() []string { return v.def.datasets }

// Manager mines shapes, owns the views and runs the refresh loop.
type Manager struct {
	runner Runner
	funcs  eval.FuncResolver
	opts   Options

	// epoch advances on every invalidation; a build whose start epoch is
	// no longer current is discarded, so a view can never be published
	// over a KB state newer than its data.
	epoch atomic.Uint64

	mu     sync.Mutex
	closed bool // set by Close before wg.Wait; Observe must not wg.Add after it
	shapes map[string]*shape
	views  map[string]*View
	order  []string // signatures in creation order
	nextID int

	kick      chan struct{}
	baseCtx   context.Context
	cancel    context.CancelFunc
	closeOnce sync.Once
	wg        sync.WaitGroup

	metrics managerMetrics
}

type managerMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	refreshes *obs.Counter
}

// NewManager returns a running manager. funcs resolves extension
// functions in FILTERs evaluated over view stores (pass the mediator's
// resolver); nil disables extension functions on the view path.
func NewManager(runner Runner, funcs eval.FuncResolver, opts Options) *Manager {
	opts = opts.withDefaults()
	m := &Manager{
		runner: runner,
		funcs:  funcs,
		opts:   opts,
		shapes: map[string]*shape{},
		views:  map[string]*View{},
		kick:   make(chan struct{}, 1),
	}
	m.baseCtx, m.cancel = context.WithCancel(context.Background())
	reg := opts.Registry
	m.metrics = managerMetrics{
		hits: reg.Counter("sparqlrw_view_hits_total",
			"Queries answered from a materialized view."),
		misses: reg.Counter("sparqlrw_view_misses_total",
			"Queries checked against the view tier and not answered by it."),
		refreshes: reg.Counter("sparqlrw_view_refreshes_total",
			"View re-materializations (TTL and invalidation driven)."),
	}
	reg.GaugeFunc("sparqlrw_view_triples",
		"Triples currently materialized across all views.",
		func() float64 { return float64(m.totalTriples()) })
	m.wg.Add(1)
	go m.loop()
	return m
}

// Close stops the refresh loop, cancels in-flight builds and
// unregisters every view's local endpoint.
func (m *Manager) Close() {
	if m == nil {
		return
	}
	m.closeOnce.Do(func() {
		// Flip closed under the same mutex Observe holds for its wg.Add:
		// once set, no new materialize goroutine can be added, so the
		// Wait below never races an Add at counter zero (WaitGroup misuse)
		// and no late build can re-register an endpoint we unregister.
		m.mu.Lock()
		m.closed = true
		m.mu.Unlock()
		m.cancel()
		m.wg.Wait()
		m.mu.Lock()
		defer m.mu.Unlock()
		for _, v := range m.views {
			endpoint.UnregisterLocal(v.endpointName)
		}
		m.views = map[string]*View{}
		m.shapes = map[string]*shape{}
		m.order = nil
	})
}

func (m *Manager) totalTriples() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, v := range m.views {
		n += v.store.Size()
	}
	return n
}

// flatten extracts a SELECT query's basic graph pattern. ok is false
// for shapes the view tier does not cover: non-SELECT forms, OPTIONAL,
// UNION, sub-groups and VALUES. FILTER, projection, DISTINCT, ORDER BY
// and LIMIT are fine — they are evaluated over the view store.
func flatten(q *sparql.Query) ([]rdf.Triple, bool) {
	if q == nil || q.Form != sparql.Select || q.Where == nil {
		return nil, false
	}
	var patterns []rdf.Triple
	for _, el := range q.Where.Elements {
		switch e := el.(type) {
		case *sparql.BGP:
			patterns = append(patterns, e.Patterns...)
		case *sparql.Filter:
			// evaluated over the view store at answer time
		default:
			return nil, false
		}
	}
	if len(patterns) == 0 {
		return nil, false
	}
	return patterns, true
}

// signature canonicalises a BGP modulo variable renaming: patterns are
// sorted by a variable-independent key, variables renamed in first
// occurrence order, and the result serialised. Two BGPs get the same
// signature only if they are identical up to variable names (ground
// terms already canonicalised by the caller), so a signature match is a
// containment proof, not a heuristic.
//
// Patterns that share a var-blind key are tie-broken by each variable's
// occurrence profile — the rename-invariant multiset of (var-blind key,
// position) sites where the variable appears across the whole BGP — so
// e.g. {?a p ?b . ?b p ?c} keys its patterns by join structure, not by
// input order. The tie-break is not a full graph canonicalisation:
// automorphic BGPs whose tied patterns also share occurrence profiles
// can still hash order-sensitively, costing only a missed hit
// (incompleteness), never an unsound answer.
func signature(patterns []rdf.Triple) string {
	profiles := varProfiles(patterns)
	sortKey := func(t rdf.Triple) string {
		f := func(x rdf.Term, pos string) string {
			if x.Kind == rdf.KindVar {
				return "?" + pos + "{" + profiles[x.Value] + "}"
			}
			return x.String()
		}
		return f(t.S, "s") + " " + f(t.P, "p") + " " + f(t.O, "o")
	}
	sorted := append([]rdf.Triple(nil), patterns...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sortKey(sorted[i]) < sortKey(sorted[j])
	})
	rename := map[string]string{}
	nameOf := func(t rdf.Term) string {
		if t.Kind != rdf.KindVar {
			return t.String()
		}
		n, ok := rename[t.Value]
		if !ok {
			n = "?v" + strconv.Itoa(len(rename))
			rename[t.Value] = n
		}
		return n
	}
	parts := make([]string, len(sorted))
	for i, t := range sorted {
		parts[i] = nameOf(t.S) + " " + nameOf(t.P) + " " + nameOf(t.O)
	}
	return strings.Join(parts, " . ")
}

func varBlindKey(t rdf.Triple) string {
	f := func(x rdf.Term) string {
		if x.Kind == rdf.KindVar {
			return "?"
		}
		return x.String()
	}
	return f(t.S) + " " + f(t.P) + " " + f(t.O)
}

// varProfiles maps each variable name to its occurrence profile: the
// sorted multiset of (pattern var-blind key, position) sites where the
// variable occurs. Profiles depend only on BGP structure — never on
// variable names or pattern order — which makes them safe sort-key
// material for signature.
func varProfiles(patterns []rdf.Triple) map[string]string {
	occ := map[string][]string{}
	for _, t := range patterns {
		k := varBlindKey(t)
		for pos, x := range [3]rdf.Term{t.S, t.P, t.O} {
			if x.Kind == rdf.KindVar {
				occ[x.Value] = append(occ[x.Value], k+"#"+strconv.Itoa(pos))
			}
		}
	}
	out := make(map[string]string, len(occ))
	for v, sites := range occ {
		sort.Strings(sites)
		out[v] = strings.Join(sites, ",")
	}
	return out
}

func canonPatterns(patterns []rdf.Triple, canon func(rdf.Term) rdf.Term) []rdf.Triple {
	out := make([]rdf.Triple, len(patterns))
	for i, t := range patterns {
		out[i] = rdf.Triple{S: canonGround(t.S, canon), P: canonGround(t.P, canon), O: canonGround(t.O, canon)}
	}
	return out
}

func canonGround(t rdf.Term, canon func(rdf.Term) rdf.Term) rdf.Term {
	if t.Kind != rdf.KindIRI || canon == nil {
		return t
	}
	return canon(t)
}

// Answer reports whether a ready, fresh view covers the query's BGP.
// canon maps ground IRIs to their sameAs representatives (query-side
// spelling differences must not defeat the signature match). The caller
// evaluates the (canonicalised) query against the returned view's
// endpoint. A match is not yet a hit: the caller confirms it with
// CountHit once the view stream actually opens (or CountMiss if opening
// fails and the query falls back to federation), so
// sparqlrw_view_hits_total counts served answers, not mere matches.
// Misses are counted here — nothing can still go right after one.
// Nil-manager safe.
func (m *Manager) Answer(q *sparql.Query, canon func(rdf.Term) rdf.Term) (*View, bool) {
	if m == nil {
		return nil, false
	}
	patterns, ok := flatten(q)
	if !ok {
		return nil, false
	}
	sig := signature(canonPatterns(patterns, canon))
	m.mu.Lock()
	v := m.views[sig]
	hit := v != nil && !v.stale
	m.mu.Unlock()
	if !hit {
		m.metrics.misses.Inc()
		return nil, false
	}
	return v, true
}

// CountHit records a query actually served from v. Nil-manager safe.
func (m *Manager) CountHit(v *View) {
	if m == nil || v == nil {
		return
	}
	m.mu.Lock()
	v.hits++
	m.mu.Unlock()
	m.metrics.hits.Inc()
}

// CountMiss records a query that matched a view but could not be served
// from it (the local stream failed to open) and fell back to
// federation. Nil-manager safe.
func (m *Manager) CountMiss() {
	if m == nil {
		return
	}
	m.metrics.misses.Inc()
}

// Observe mines one decomposed (multi-source) query: its BGP shape is
// counted and, at MinFrequency, materialized asynchronously. estRows is
// the decomposer's calibrated cardinality estimate for the query; the
// observed-cardinality store may sharpen it further. Nil-manager safe.
func (m *Manager) Observe(q *sparql.Query, sourceOnt string, datasets []string, estRows int64, canon func(rdf.Term) rdf.Term) {
	if m == nil {
		return
	}
	patterns, ok := flatten(q)
	if !ok {
		return
	}
	pc := canonPatterns(patterns, canon)
	sig := signature(pc)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if _, exists := m.views[sig]; exists {
		m.mu.Unlock()
		return
	}
	sh := m.shapes[sig]
	if sh == nil {
		sh = &shape{
			sig:           sig,
			patternsOrig:  append([]rdf.Triple(nil), patterns...),
			patternsCanon: pc,
			sourceOnt:     sourceOnt,
			datasets:      append([]string(nil), datasets...),
			estRows:       estRows,
		}
		m.refineEstimate(sh)
		m.shapes[sig] = sh
	}
	sh.count++
	trigger := !sh.disabled && !sh.building &&
		sh.count >= m.opts.MinFrequency && len(m.views) < m.opts.MaxViews
	if trigger && sh.estRows > int64(m.opts.MaxTriples) {
		sh.disabled = true
		trigger = false
	}
	if trigger {
		sh.building = true
		m.wg.Add(1)
	}
	m.mu.Unlock()
	if trigger {
		go func() {
			defer m.wg.Done()
			m.materialize(sh)
		}()
	}
}

// refineEstimate raises a shape's row estimate to the largest observed
// cardinality the PR-9 card store has recorded for any of its patterns
// at any of its source data sets — real actuals beat voiD guesses.
func (m *Manager) refineEstimate(sh *shape) {
	if m.opts.Cards == nil {
		return
	}
	for _, tp := range sh.patternsCanon {
		term, shp := patternStatKey(tp)
		if term == "" {
			continue
		}
		for _, ds := range sh.datasets {
			if card, _, ok := m.opts.Cards.Lookup(ds, term, shp); ok && int64(card) > sh.estRows {
				sh.estRows = int64(card)
			}
		}
	}
}

// patternStatKey mirrors the decomposer's observed-cardinality cell key:
// the predicate IRI (or the class IRI for rdf:type patterns) and the
// ground-position shape.
func patternStatKey(tp rdf.Triple) (term, shp string) {
	if !tp.P.IsIRI() {
		return "", ""
	}
	term = tp.P.Value
	if tp.P.Value == rdf.RDFType && tp.O.IsIRI() {
		term = tp.O.Value
	}
	return term, obs.PatternShape(tp.S.IsGround(), tp.O.IsGround())
}

var errTooLarge = errors.New("view: materialized result exceeds MaxTriples")

// materializeQuery formats the shape's covering query: SELECT * over the
// original (uncanonicalised) BGP, filters dropped so the view covers
// every filtering of the shape.
func materializeQuery(sh *shape) string {
	q := &sparql.Query{
		Form:       sparql.Select,
		SelectStar: true,
		Where: &sparql.GroupGraphPattern{Elements: []sparql.GroupElement{
			&sparql.BGP{Patterns: append([]rdf.Triple(nil), sh.patternsOrig...)},
		}},
		Limit:  -1,
		Offset: -1,
	}
	return sparql.Format(q)
}

// build runs the shape's covering query through the federated pipeline
// and loads the answer into a fresh dictionary store, instantiating the
// given canonicalised templates. templates is an explicit parameter —
// not read from sh — because a refresh recomputes the canonical shape
// and must instantiate with the same templates the view will be keyed
// under, not whatever sh held when the build started.
func (m *Manager) build(sh *shape, templates []rdf.Triple) (*store.DictStore, error) {
	ctx, cancel := context.WithTimeout(m.baseCtx, materializeTimeout)
	defer cancel()
	res, err := m.runner.Materialize(ctx, materializeQuery(sh), sh.sourceOnt)
	if err != nil {
		return nil, err
	}
	if !res.Complete {
		return nil, errors.New("view: partial federated answer (some data set failed)")
	}
	st := store.NewDictStore()
	for i, sol := range res.Solutions {
		suffix := "_v" + strconv.Itoa(i)
		for _, tpl := range templates {
			if t, ok := eval.InstantiateTemplate(tpl, sol, suffix); ok {
				st.Add(t)
			}
		}
		if st.Size() > m.opts.MaxTriples {
			return nil, errTooLarge
		}
	}
	return st, nil
}

// materialize builds a mined shape into a view and publishes it behind a
// local:// endpoint. A build that raced an invalidation is discarded:
// the data may predate the KB change.
func (m *Manager) materialize(sh *shape) {
	e0 := m.epoch.Load()
	st, err := m.build(sh, sh.patternsCanon)
	m.mu.Lock()
	defer m.mu.Unlock()
	sh.building = false
	if err != nil {
		sh.fails++
		if errors.Is(err, errTooLarge) || sh.fails >= 3 {
			sh.disabled = true
		}
		return
	}
	if m.epoch.Load() != e0 {
		sh.count = 0 // re-mine against the new KB state
		return
	}
	if len(m.views) >= m.opts.MaxViews {
		return
	}
	m.nextID++
	v := &View{
		id:           "v" + strconv.Itoa(m.nextID),
		def:          sh,
		store:        st,
		endpointName: fmt.Sprintf("view-%d-v%d", viewSeq.Add(1), m.nextID),
		epoch:        e0,
		created:      time.Now(),
		refreshed:    time.Now(),
	}
	m.register(v)
	delete(m.shapes, sh.sig)
	m.views[sh.sig] = v
	m.order = append(m.order, sh.sig)
}

// register (re-)publishes the view's store behind its local endpoint;
// callers hold the manager lock. In-flight streams against a replaced
// server keep reading their old store snapshot, which is immutable from
// their perspective.
func (m *Manager) register(v *View) {
	srv := endpoint.NewServer(v.endpointName, v.store)
	srv.Engine.Funcs = m.funcs
	endpoint.RegisterLocal(v.endpointName, srv)
}

// InvalidateDataset marks every view sourcing the data set stale and
// schedules its refresh. It runs synchronously inside the KB's Subscribe
// hook, so no query admitted after the KB update can be answered from
// the outdated view. Nil-manager safe.
func (m *Manager) InvalidateDataset(uri string) {
	if m == nil {
		return
	}
	m.epoch.Add(1)
	m.mu.Lock()
	any := false
	for _, v := range m.views {
		for _, ds := range v.def.datasets {
			if ds == uri {
				v.stale = true
				any = true
				break
			}
		}
	}
	m.mu.Unlock()
	if any {
		m.kickRefresh()
	}
}

// InvalidateAll marks every view stale (an alignment KB change can move
// any rewriting) and drops mined-but-unbuilt shapes. Nil-manager safe.
func (m *Manager) InvalidateAll() {
	if m == nil {
		return
	}
	m.epoch.Add(1)
	m.mu.Lock()
	n := len(m.views)
	for _, v := range m.views {
		v.stale = true
	}
	m.shapes = map[string]*shape{}
	m.mu.Unlock()
	if n > 0 {
		m.kickRefresh()
	}
}

func (m *Manager) kickRefresh() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// loop is the background refresher: invalidation kicks refresh stale
// views immediately, the TTL ticker re-materializes ready views whose
// data has aged past RefreshTTL.
func (m *Manager) loop() {
	defer m.wg.Done()
	var tickC <-chan time.Time
	if m.opts.RefreshTTL > 0 {
		t := time.NewTicker(m.opts.RefreshTTL)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-m.kick:
			m.refresh(false)
		case <-tickC:
			m.refresh(true)
		}
	}
}

func (m *Manager) refresh(ttl bool) {
	m.mu.Lock()
	now := time.Now()
	var todo []*View
	for _, sig := range m.order {
		v := m.views[sig]
		if v == nil {
			continue
		}
		if v.stale || (ttl && now.Sub(v.refreshed) >= m.opts.RefreshTTL) {
			todo = append(todo, v)
		}
	}
	m.mu.Unlock()
	for _, v := range todo {
		if m.baseCtx.Err() != nil {
			return
		}
		m.refreshView(v)
	}
}

// refreshView re-materializes one view. The canonical shape (and with it
// the signature) is recomputed each refresh, since the sameAs closure
// backing canonicalisation may have moved. A build that raced a further
// invalidation is retried up to three times; a view that cannot be
// rebuilt stays stale — it refuses queries, it never lies.
func (m *Manager) refreshView(v *View) {
	for attempt := 0; attempt < 3; attempt++ {
		e0 := m.epoch.Load()
		// Recompute the canonical templates first and instantiate with
		// them: the rebuilt store must carry the representatives of the
		// signature the refreshed view is published under, or a signature
		// match would find a store full of stale representatives.
		pc := m.runner.Canonicalise(v.def.patternsOrig)
		st, err := m.build(v.def, pc)
		if err != nil {
			return
		}
		m.mu.Lock()
		if m.epoch.Load() != e0 {
			m.mu.Unlock()
			continue
		}
		newSig := signature(pc)
		if newSig != v.def.sig {
			delete(m.views, v.def.sig)
			for i, sig := range m.order {
				if sig == v.def.sig {
					m.order[i] = newSig
				}
			}
			v.def.sig = newSig
			m.views[newSig] = v
		}
		v.def.patternsCanon = pc
		v.store = st
		v.stale = false
		v.epoch = e0
		v.refreshed = time.Now()
		m.register(v)
		m.mu.Unlock()
		m.metrics.refreshes.Inc()
		return
	}
}

// Info is one view's descriptor for /api/views and the dashboard.
type Info struct {
	ID        string    `json:"id"`
	Patterns  []string  `json:"patterns"`
	Signature string    `json:"signature"`
	SourceOnt string    `json:"source"`
	Datasets  []string  `json:"datasets"`
	Endpoint  string    `json:"endpoint"`
	State     string    `json:"state"` // ready | stale
	Triples   int       `json:"triples"`
	Hits      uint64    `json:"hits"`
	Epoch     uint64    `json:"epoch"`
	Created   time.Time `json:"created"`
	Refreshed time.Time `json:"refreshed"`
	// Void is the view store's synthetic voiD description: triple count
	// and property/class partitions, like a real endpoint publishes.
	Void VoidStats `json:"void"`
}

// VoidStats is the synthetic voiD statistics block of one view store.
type VoidStats struct {
	Triples            int              `json:"triples"`
	PropertyPartitions map[string]int64 `json:"propertyPartitions,omitempty"`
	ClassPartitions    map[string]int64 `json:"classPartitions,omitempty"`
}

// Stats is the view tier's observability snapshot.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Refreshes uint64 `json:"refreshes"`
	Triples   int    `json:"triples"`
	// MinedShapes counts shapes observed but not (yet) materialized.
	MinedShapes int    `json:"minedShapes"`
	Views       []Info `json:"views"`
}

// Stats returns a snapshot of the manager's counters and views.
// Nil-manager safe (returns the zero snapshot).
func (m *Manager) Stats() Stats {
	if m == nil {
		return Stats{Views: []Info{}}
	}
	st := Stats{
		Hits:      uint64(m.metrics.hits.Value()),
		Misses:    uint64(m.metrics.misses.Value()),
		Refreshes: uint64(m.metrics.refreshes.Value()),
		Views:     []Info{},
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sig := range m.order {
		v := m.views[sig]
		if v == nil {
			continue
		}
		state := "ready"
		if v.stale {
			state = "stale"
		}
		patterns := make([]string, len(v.def.patternsCanon))
		for i, t := range v.def.patternsCanon {
			patterns[i] = sparql.FormatTriplePattern(t, nil)
		}
		st.Triples += v.store.Size()
		st.Views = append(st.Views, Info{
			ID:        v.id,
			Patterns:  patterns,
			Signature: v.def.sig,
			SourceOnt: v.def.sourceOnt,
			Datasets:  append([]string(nil), v.def.datasets...),
			Endpoint:  v.Endpoint(),
			State:     state,
			Triples:   v.store.Size(),
			Hits:      v.hits,
			Epoch:     v.epoch,
			Created:   v.created,
			Refreshed: v.refreshed,
			Void:      voidStatsOf(v.store),
		})
	}
	st.MinedShapes = len(m.shapes)
	return st
}

// SyntheticDataset describes a view's embedded store as a voiD data set
// — triple count, void:propertyPartition and void:classPartition derived
// from the dictionary store's live statistics — so the view endpoint
// presents the same statistical surface a real federated endpoint
// publishes in its voiD description.
func SyntheticDataset(uri, title string, st *store.DictStore, endpointURL string) *voidkb.Dataset {
	ds := &voidkb.Dataset{
		URI:            uri,
		Title:          title,
		SPARQLEndpoint: endpointURL,
		Triples:        int64(st.Size()),
	}
	vs := voidStatsOf(st)
	ds.PropertyPartitions = vs.PropertyPartitions
	ds.ClassPartitions = vs.ClassPartitions
	return ds
}

// Void returns the view's synthetic voiD description.
func (v *View) Void() *voidkb.Dataset {
	return SyntheticDataset("view:"+v.id, "materialized view "+v.id, v.store, v.Endpoint())
}

func voidStatsOf(st *store.DictStore) VoidStats {
	vs := VoidStats{Triples: st.Size()}
	if pc := st.PredicateCounts(); len(pc) > 0 {
		vs.PropertyPartitions = make(map[string]int64, len(pc))
		for p, n := range pc {
			vs.PropertyPartitions[p.Value] = int64(n)
		}
	}
	if cc := st.ClassCounts(); len(cc) > 0 {
		vs.ClassPartitions = make(map[string]int64, len(cc))
		for c, n := range cc {
			vs.ClassPartitions[c.Value] = int64(n)
		}
	}
	return vs
}
