package sparql

import (
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

// Figure 1 of the paper: the co-author query over the Southampton RKB set.
const figure1 = `PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686 ))
}`

// Figure 6 of the paper: the same constraint moved into the FILTER section.
const figure6 = `PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author ?n.
  ?paper akt:has-author ?a.
  FILTER (!(?a = id:person-02686 ) &&
          (?n = id:person-02686))
}`

func TestParseFigure1(t *testing.T) {
	q, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != Select || !q.Distinct {
		t.Fatalf("form/distinct wrong: %v %v", q.Form, q.Distinct)
	}
	if len(q.SelectVars) != 1 || q.SelectVars[0] != "a" {
		t.Fatalf("select vars = %v", q.SelectVars)
	}
	bgps := q.BGPs()
	if len(bgps) != 1 || len(bgps[0].Patterns) != 2 {
		t.Fatalf("BGP shape wrong: %d BGPs", len(bgps))
	}
	p0 := bgps[0].Patterns[0]
	if p0.S != rdf.NewVar("paper") || p0.P != rdf.NewIRI(rdf.AKTHasAuthor) ||
		p0.O != rdf.NewIRI("http://southampton.rkbexplorer.com/id/person-02686") {
		t.Fatalf("pattern 0 = %v", p0)
	}
	if len(q.Filters()) != 1 {
		t.Fatal("expected one FILTER")
	}
	// FILTER is !(?a = id:person-02686)
	f := q.Filters()[0]
	u, ok := f.Expr.(*Unary)
	if !ok || u.Op != "!" {
		t.Fatalf("filter expr = %#v", f.Expr)
	}
	eq, ok := u.X.(*Binary)
	if !ok || eq.Op != "=" {
		t.Fatalf("inner expr = %#v", u.X)
	}
}

func TestParseFigure6(t *testing.T) {
	q, err := Parse(figure6)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.BGPs()) != 1 || len(q.BGPs()[0].Patterns) != 2 {
		t.Fatal("figure 6 BGP shape wrong")
	}
	f := q.Filters()
	if len(f) != 1 {
		t.Fatalf("filters = %d", len(f))
	}
	and, ok := f[0].Expr.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("top expr = %#v", f[0].Expr)
	}
}

func TestParseAsk(t *testing.T) {
	q := MustParse(`ASK { ?s ?p ?o }`)
	if q.Form != Ask {
		t.Fatal("form")
	}
	if len(q.BGPs()[0].Patterns) != 1 {
		t.Fatal("pattern count")
	}
}

func TestParseConstruct(t *testing.T) {
	q := MustParse(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX akt: <http://www.aktors.org/ontology/portal#>
CONSTRUCT { ?p foaf:name ?n } WHERE { ?p akt:full-name ?n }`)
	if q.Form != Construct {
		t.Fatal("form")
	}
	if len(q.Template) != 1 {
		t.Fatalf("template = %v", q.Template)
	}
	if q.Template[0].P.Value != rdf.FOAFNS+"name" {
		t.Fatalf("template predicate = %v", q.Template[0].P)
	}
}

func TestParsePropertyAndObjectLists(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?s ex:p1 ?a , ?b ; ex:p2 ?c ; a ex:Thing . }`)
	pats := q.BGPs()[0].Patterns
	if len(pats) != 4 {
		t.Fatalf("patterns = %d: %v", len(pats), pats)
	}
	if pats[3].P.Value != rdf.RDFType {
		t.Fatalf("a keyword not expanded: %v", pats[3])
	}
	if !q.SelectStar {
		t.Fatal("select star")
	}
}

func TestParseOptionalUnionNested(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT ?s WHERE {
  ?s ex:p ?o .
  OPTIONAL { ?s ex:q ?q . FILTER (?q > 5) }
  { ?s ex:r ?r } UNION { ?s ex:t ?t } UNION { ?s ex:u ?u }
  { ?s ex:nested ?n }
}`)
	var opt *Optional
	var uni *Union
	var sub *SubGroup
	for _, el := range q.Where.Elements {
		switch e := el.(type) {
		case *Optional:
			opt = e
		case *Union:
			uni = e
		case *SubGroup:
			sub = e
		}
	}
	if opt == nil || len(opt.Group.Elements) != 2 {
		t.Fatalf("optional wrong: %#v", opt)
	}
	if uni == nil || len(uni.Alternatives) != 3 {
		t.Fatalf("union wrong: %#v", uni)
	}
	if sub == nil {
		t.Fatal("nested group missing")
	}
	// 1 top-level + 1 in OPTIONAL + 3 UNION branches + 1 nested group.
	if len(q.BGPs()) != 6 {
		t.Fatalf("total BGPs = %d, want 6", len(q.BGPs()))
	}
}

func TestParseBlankNodesInQuery(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?x ex:knows [ ex:name ?name ] . _:y ex:age ?a . }`)
	pats := q.BGPs()[0].Patterns
	if len(pats) != 3 {
		t.Fatalf("patterns = %v", pats)
	}
	var sawGenerated, sawLabelled bool
	for _, p := range pats {
		if p.S.IsBlank() && strings.HasPrefix(p.S.Value, "anon") {
			sawGenerated = true
		}
		if p.S == rdf.NewBlank("y") {
			sawLabelled = true
		}
	}
	if !sawGenerated || !sawLabelled {
		t.Fatalf("blank node handling: gen=%v lab=%v", sawGenerated, sawLabelled)
	}
}

func TestParseCollectionInQuery(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:list ( 1 2 ) . }`)
	pats := q.BGPs()[0].Patterns
	// 1 main + first/rest pairs for 2 items = 5
	if len(pats) != 5 {
		t.Fatalf("patterns = %d: %v", len(pats), pats)
	}
}

func TestParseExpressions(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?x WHERE {
  ?x ex:v ?v . ?x ex:w ?w .
  FILTER (?v + 2 * ?w >= 10 || !BOUND(?w) && REGEX(STR(?x), "^http://ex", "i"))
}`)
	f := q.Filters()[0]
	or, ok := f.Expr.(*Binary)
	if !ok || or.Op != "||" {
		t.Fatalf("top = %#v", f.Expr)
	}
	ge, ok := or.L.(*Binary)
	if !ok || ge.Op != ">=" {
		t.Fatalf("left = %#v", or.L)
	}
	// precedence: ?v + (2 * ?w)
	plus, ok := ge.L.(*Binary)
	if !ok || plus.Op != "+" {
		t.Fatalf("ge.L = %#v", ge.L)
	}
	if mul, ok := plus.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("plus.R = %#v", plus.R)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("or.R = %#v", or.R)
	}
	if not, ok := and.L.(*Unary); !ok || not.Op != "!" {
		t.Fatalf("and.L = %#v", and.L)
	}
	if re, ok := and.R.(*Call); !ok || re.Name != "REGEX" || len(re.Args) != 3 {
		t.Fatalf("and.R = %#v", and.R)
	}
}

func TestParseExtensionFunctionCall(t *testing.T) {
	q := MustParse(`
PREFIX map: <http://ecs.soton.ac.uk/om.owl#>
SELECT ?x WHERE { ?x ?p ?o . FILTER (map:sameas(?x, "pat") = ?o) }`)
	f := q.Filters()[0]
	eq := f.Expr.(*Binary)
	call, ok := eq.L.(*Call)
	if !ok || !call.IRIFunc || call.Name != rdf.MapSameAs {
		t.Fatalf("call = %#v", eq.L)
	}
}

func TestParseSolutionModifiers(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE { ?s ex:v ?v } ORDER BY DESC(?v) ?s LIMIT 10 OFFSET 5`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("order by = %v", q.OrderBy)
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatal("desc flags wrong")
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Fatalf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseNumericAndBooleanNodes(t *testing.T) {
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:i 42 ; ex:d 3.14 ; ex:e 1e3 ; ex:b true ; ex:t "x"^^ex:dt ; ex:l "y"@en . }`)
	pats := q.BGPs()[0].Patterns
	want := []rdf.Term{
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewTypedLiteral("3.14", rdf.XSDDecimal),
		rdf.NewTypedLiteral("1e3", rdf.XSDDouble),
		rdf.NewTypedLiteral("true", rdf.XSDBoolean),
		rdf.NewTypedLiteral("x", "http://example.org/dt"),
		rdf.NewLangLiteral("y", "en"),
	}
	for i, w := range want {
		if pats[i].O != w {
			t.Errorf("object %d = %v, want %v", i, pats[i].O, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE`,
		`SELECT ?x WHERE {`,
		`SELECT ?x WHERE { ?s ?p }`,
		`SELECT ?x WHERE { ?s ?p ?o } LIMIT x`,
		`SELECT ?x WHERE { ?s ?p ?o } ORDER`,
		`PREFIX x <http://x> SELECT ?x WHERE { ?s ?p ?o }`,
		`SELECT ?x WHERE { ?s undefined:p ?o }`,
		`SELECT ?x WHERE { FILTER }`,
		`SELECT ?x WHERE { ?s ?p ?o . FILTER (BOUND()) }`,
		`SELECT ?x WHERE { ?s ?p ?o . FILTER (NOSUCHFN(?x)) }`,
		`DESCRIBE`,
		`DESCRIBE WHERE { ?s ?p ?o }`,
		`SELECT * WHERE { ?s ?p ?o } extra`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDotHandlingBetweenElements(t *testing.T) {
	// Triples on either side of a FILTER merge into separate syntactic
	// BGPs; with no intervening element they merge into one.
	q := MustParse(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c . FILTER(?c > 1) ?c ex:r ?d . }`)
	bgps := q.BGPs()
	if len(bgps) != 2 {
		t.Fatalf("BGPs = %d, want 2", len(bgps))
	}
	if len(bgps[0].Patterns) != 2 || len(bgps[1].Patterns) != 1 {
		t.Fatalf("split = %d/%d", len(bgps[0].Patterns), len(bgps[1].Patterns))
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse(figure1)
	c := q.Clone()
	c.BGPs()[0].Patterns[0].S = rdf.NewVar("other")
	c.SelectVars[0] = "z"
	if q.BGPs()[0].Patterns[0].S != rdf.NewVar("paper") {
		t.Fatal("clone shares BGP storage")
	}
	if q.SelectVars[0] != "a" {
		t.Fatal("clone shares select vars")
	}
}

func TestQueryVars(t *testing.T) {
	q := MustParse(figure1)
	vars := q.Vars()
	if len(vars) != 2 || vars[0] != "paper" || vars[1] != "a" {
		t.Fatalf("Vars = %v", vars)
	}
}
