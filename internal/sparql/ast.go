// Package sparql provides the SPARQL 1.0 abstract syntax tree, parser and
// serialiser used by the query rewriter and evaluator. The supported
// fragment covers what the paper's scenario needs and then some: SELECT /
// ASK / CONSTRUCT / DESCRIBE forms, basic graph patterns, FILTER with the full
// SPARQL 1.0 expression grammar, OPTIONAL, UNION, nested groups, and the
// DISTINCT / REDUCED / ORDER BY / LIMIT / OFFSET solution modifiers.
package sparql

import (
	"sparqlrw/internal/rdf"
)

// Form discriminates the query forms.
type Form uint8

// Query forms.
const (
	Select Form = iota + 1
	Ask
	Construct
	Describe
)

// String returns the SPARQL keyword for the form.
func (f Form) String() string {
	switch f {
	case Select:
		return "SELECT"
	case Ask:
		return "ASK"
	case Construct:
		return "CONSTRUCT"
	case Describe:
		return "DESCRIBE"
	default:
		return "UNKNOWN"
	}
}

// Query is a parsed SPARQL query.
type Query struct {
	// Prefixes holds the prologue's PREFIX/BASE declarations; the parser
	// has already expanded every prefixed name, so this map only matters
	// for re-serialisation.
	Prefixes *rdf.PrefixMap
	Form     Form

	// SELECT specifics.
	Distinct   bool
	Reduced    bool
	SelectStar bool
	SelectVars []string

	// CONSTRUCT template (patterns may contain variables and blank nodes).
	Template []rdf.Triple

	// DESCRIBE resources: variables (resolved against the WHERE clause)
	// and/or ground IRIs.
	DescribeTerms []rdf.Term

	// Where is the WHERE clause; nil only for DESCRIBE queries of the
	// `DESCRIBE <iri>` shape, which need no pattern.
	Where *GroupGraphPattern

	OrderBy []OrderCondition
	Limit   int // -1 when absent
	Offset  int // -1 when absent
}

// NewQuery returns a query with modifier fields initialised to "absent".
func NewQuery(form Form) *Query {
	return &Query{Form: form, Prefixes: rdf.NewPrefixMap(), Limit: -1, Offset: -1}
}

// OrderCondition is one ORDER BY criterion.
type OrderCondition struct {
	Expr Expression
	Desc bool
}

// GroupGraphPattern is a `{ ... }` group: an ordered list of elements
// (basic graph patterns, filters, OPTIONALs, UNIONs, nested groups).
type GroupGraphPattern struct {
	Elements []GroupElement
}

// GroupElement is one syntactic element inside a group graph pattern.
type GroupElement interface{ isGroupElement() }

// BGP is a basic graph pattern: a block of triple patterns that must all
// match. This is the unit the paper's rewriting algorithm operates on.
type BGP struct {
	Patterns []rdf.Triple
}

// SubGroup is a nested `{ ... }` group.
type SubGroup struct {
	Group *GroupGraphPattern
}

// Optional is an OPTIONAL { ... } element.
type Optional struct {
	Group *GroupGraphPattern
}

// Union is a `{...} UNION {...} [UNION {...}]*` element.
type Union struct {
	Alternatives []*GroupGraphPattern
}

// Filter is a FILTER constraint.
type Filter struct {
	Expr Expression
}

// InlineData is a VALUES block (SPARQL 1.1 inline data): a sequence of
// bindings for a fixed variable list, joined with the rest of the group.
// A zero Term (rdf.KindAny) in a row stands for UNDEF. This is the
// construct the federation planner shards on: a large VALUES block splits
// into batches that federate as independent sub-queries.
type InlineData struct {
	Vars []string
	Rows [][]rdf.Term
}

func (*BGP) isGroupElement()        {}
func (*SubGroup) isGroupElement()   {}
func (*Optional) isGroupElement()   {}
func (*Union) isGroupElement()      {}
func (*Filter) isGroupElement()     {}
func (*InlineData) isGroupElement() {}

// Expression is a SPARQL FILTER/ORDER BY expression tree node.
type Expression interface{ isExpr() }

// Binary is a binary operation; Op is one of "||", "&&", "=", "!=", "<",
// ">", "<=", ">=", "+", "-", "*", "/".
type Binary struct {
	Op   string
	L, R Expression
}

// Unary is a unary operation; Op is one of "!", "-", "+".
type Unary struct {
	Op string
	X  Expression
}

// TermExpr wraps an RDF term (variable, IRI or literal) as an expression.
type TermExpr struct {
	Term rdf.Term
}

// Call is a built-in call (upper-case Name, e.g. "REGEX", "BOUND") or an
// extension function call (Name holds the function IRI).
type Call struct {
	Name string
	Args []Expression
	// IRIFunc marks Name as a function IRI rather than a builtin keyword.
	IRIFunc bool
}

func (*Binary) isExpr()   {}
func (*Unary) isExpr()    {}
func (*TermExpr) isExpr() {}
func (*Call) isExpr()     {}

// Walk applies fn to every group element in the pattern tree, depth-first,
// including elements of nested groups, OPTIONALs and UNION branches.
func Walk(g *GroupGraphPattern, fn func(GroupElement)) {
	if g == nil {
		return
	}
	for _, el := range g.Elements {
		fn(el)
		switch e := el.(type) {
		case *SubGroup:
			Walk(e.Group, fn)
		case *Optional:
			Walk(e.Group, fn)
		case *Union:
			for _, alt := range e.Alternatives {
				Walk(alt, fn)
			}
		}
	}
}

// BGPs returns every basic graph pattern in the query's WHERE clause, in
// syntactic order, including those nested under OPTIONAL/UNION/groups.
func (q *Query) BGPs() []*BGP {
	var out []*BGP
	Walk(q.Where, func(el GroupElement) {
		if b, ok := el.(*BGP); ok {
			out = append(out, b)
		}
	})
	return out
}

// DescribeResources splits a DESCRIBE query's resource terms into its
// ground IRIs (deduplicated, first-appearance order) and its variable
// names — the one definition of "which resources does this DESCRIBE
// denote" shared by the local evaluator and the mediator.
func (q *Query) DescribeResources() (iris []rdf.Term, vars []string) {
	seen := map[string]bool{}
	for _, t := range q.DescribeTerms {
		switch {
		case t.IsVar():
			vars = append(vars, t.Value)
		case t.IsIRI():
			if !seen[t.Value] {
				seen[t.Value] = true
				iris = append(iris, t)
			}
		}
	}
	return iris, vars
}

// Filters returns every FILTER in the query's WHERE clause.
func (q *Query) Filters() []*Filter {
	var out []*Filter
	Walk(q.Where, func(el GroupElement) {
		if f, ok := el.(*Filter); ok {
			out = append(out, f)
		}
	})
	return out
}

// Vars returns the distinct variables mentioned in triple patterns and
// VALUES blocks of the WHERE clause, in first-appearance order.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	Walk(q.Where, func(el GroupElement) {
		switch e := el.(type) {
		case *BGP:
			for _, tp := range e.Patterns {
				for _, v := range tp.Vars() {
					add(v)
				}
			}
		case *InlineData:
			for _, v := range e.Vars {
				add(v)
			}
		}
	})
	return out
}

// WalkExpr applies fn to every node of an expression tree, depth-first.
func WalkExpr(e Expression, fn func(Expression)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Unary:
		WalkExpr(x.X, fn)
	case *Call:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// ExprTerms returns the RDF terms mentioned in an expression.
func ExprTerms(e Expression) []rdf.Term {
	var out []rdf.Term
	WalkExpr(e, func(n Expression) {
		if t, ok := n.(*TermExpr); ok {
			out = append(out, t.Term)
		}
	})
	return out
}

// MapExprTerms returns a copy of the expression with every term replaced by
// fn(term). Structure is preserved; fn is applied to leaves only.
func MapExprTerms(e Expression, fn func(rdf.Term) rdf.Term) Expression {
	switch x := e.(type) {
	case nil:
		return nil
	case *Binary:
		return &Binary{Op: x.Op, L: MapExprTerms(x.L, fn), R: MapExprTerms(x.R, fn)}
	case *Unary:
		return &Unary{Op: x.Op, X: MapExprTerms(x.X, fn)}
	case *TermExpr:
		return &TermExpr{Term: fn(x.Term)}
	case *Call:
		args := make([]Expression, len(x.Args))
		for i, a := range x.Args {
			args[i] = MapExprTerms(a, fn)
		}
		return &Call{Name: x.Name, Args: args, IRIFunc: x.IRIFunc}
	default:
		return e
	}
}

// CloneGroup deep-copies a group graph pattern tree.
func CloneGroup(g *GroupGraphPattern) *GroupGraphPattern {
	if g == nil {
		return nil
	}
	out := &GroupGraphPattern{}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *BGP:
			pats := make([]rdf.Triple, len(e.Patterns))
			copy(pats, e.Patterns)
			out.Elements = append(out.Elements, &BGP{Patterns: pats})
		case *SubGroup:
			out.Elements = append(out.Elements, &SubGroup{Group: CloneGroup(e.Group)})
		case *Optional:
			out.Elements = append(out.Elements, &Optional{Group: CloneGroup(e.Group)})
		case *Union:
			alts := make([]*GroupGraphPattern, len(e.Alternatives))
			for i, a := range e.Alternatives {
				alts[i] = CloneGroup(a)
			}
			out.Elements = append(out.Elements, &Union{Alternatives: alts})
		case *Filter:
			out.Elements = append(out.Elements, &Filter{Expr: MapExprTerms(e.Expr, func(t rdf.Term) rdf.Term { return t })})
		case *InlineData:
			c := &InlineData{Vars: append([]string(nil), e.Vars...)}
			c.Rows = make([][]rdf.Term, len(e.Rows))
			for i, row := range e.Rows {
				c.Rows[i] = append([]rdf.Term(nil), row...)
			}
			out.Elements = append(out.Elements, c)
		}
	}
	return out
}

// Clone deep-copies a query.
func (q *Query) Clone() *Query {
	c := *q
	c.Prefixes = q.Prefixes.Clone()
	c.SelectVars = append([]string(nil), q.SelectVars...)
	c.Template = append([]rdf.Triple(nil), q.Template...)
	c.DescribeTerms = append([]rdf.Term(nil), q.DescribeTerms...)
	c.Where = CloneGroup(q.Where)
	c.OrderBy = make([]OrderCondition, len(q.OrderBy))
	for i, oc := range q.OrderBy {
		c.OrderBy[i] = OrderCondition{Expr: MapExprTerms(oc.Expr, func(t rdf.Term) rdf.Term { return t }), Desc: oc.Desc}
	}
	return &c
}
