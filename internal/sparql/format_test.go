package sparql

import (
	"reflect"
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

// roundTrip formats then reparses, asserting the ASTs agree.
func roundTrip(t *testing.T, src string) *Query {
	t.Helper()
	q1, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out := Format(q1)
	q2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	// Compare shape: same form, modifiers, BGP patterns, filter count.
	if q1.Form != q2.Form || q1.Distinct != q2.Distinct || q1.Limit != q2.Limit || q1.Offset != q2.Offset {
		t.Fatalf("modifiers differ after round trip:\n%s", out)
	}
	b1, b2 := q1.BGPs(), q2.BGPs()
	if len(b1) != len(b2) {
		t.Fatalf("BGP count %d vs %d\n%s", len(b1), len(b2), out)
	}
	for i := range b1 {
		if !reflect.DeepEqual(b1[i].Patterns, b2[i].Patterns) {
			t.Fatalf("BGP %d differs:\n%v\nvs\n%v\noutput:\n%s", i, b1[i].Patterns, b2[i].Patterns, out)
		}
	}
	if len(q1.Filters()) != len(q2.Filters()) {
		t.Fatalf("filter count differs\n%s", out)
	}
	return q2
}

func TestFormatRoundTripFigure1(t *testing.T) {
	q := roundTrip(t, figure1)
	out := Format(q)
	if !strings.Contains(out, "SELECT DISTINCT ?a") {
		t.Fatalf("missing select header:\n%s", out)
	}
	if !strings.Contains(out, "akt:has-author") {
		t.Fatalf("prefixed name not shrunk:\n%s", out)
	}
	if !strings.Contains(out, "PREFIX akt:") {
		t.Fatalf("prefix declaration missing:\n%s", out)
	}
}

func TestFormatRoundTripFigure6(t *testing.T) {
	roundTrip(t, figure6)
}

func TestFormatRoundTripComplex(t *testing.T) {
	roundTrip(t, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE {
  ?s ex:p ?v .
  OPTIONAL { ?s ex:q ?q }
  { ?s ex:r ?r } UNION { ?s ex:t ?t }
  FILTER (REGEX(STR(?s), "^http", "i") && ?v != 3)
}
ORDER BY DESC(?v) ?s
LIMIT 7 OFFSET 2`)
}

func TestFormatRoundTripAskConstruct(t *testing.T) {
	roundTrip(t, `ASK { ?s ?p ?o }`)
	q := roundTrip(t, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
CONSTRUCT { ?p foaf:name ?n . } WHERE { ?p foaf:nick ?n }`)
	if len(q.Template) != 1 {
		t.Fatal("template lost in round trip")
	}
}

func TestFormatExprParenthesisation(t *testing.T) {
	// (a + b) * c must not re-parse as a + (b * c).
	e := &Binary{Op: "*",
		L: &Binary{Op: "+", L: &TermExpr{rdf.NewVar("a")}, R: &TermExpr{rdf.NewVar("b")}},
		R: &TermExpr{rdf.NewVar("c")},
	}
	q := NewQuery(Select)
	q.SelectStar = true
	q.Where = &GroupGraphPattern{Elements: []GroupElement{
		&BGP{Patterns: []rdf.Triple{{S: rdf.NewVar("a"), P: rdf.NewVar("p"), O: rdf.NewVar("b")}}},
		&Filter{Expr: &Binary{Op: ">", L: e, R: &TermExpr{rdf.NewInteger(0)}}},
	}}
	out := Format(q)
	q2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	f := q2.Filters()[0].Expr.(*Binary)
	mul, ok := f.L.(*Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("structure lost: %#v\n%s", f.L, out)
	}
	if add, ok := mul.L.(*Binary); !ok || add.Op != "+" {
		t.Fatalf("parens lost: %#v\n%s", mul.L, out)
	}
}

func TestFormatBlankNodesAndLiterals(t *testing.T) {
	q := roundTrip(t, `
PREFIX ex: <http://example.org/>
SELECT ?n WHERE { _:b ex:name ?n ; ex:age 33 ; ex:note "hi"@en . }`)
	out := Format(q)
	if !strings.Contains(out, "_:b") {
		t.Fatalf("blank node lost:\n%s", out)
	}
}

func TestFormatOmitsUnusedPrefixes(t *testing.T) {
	q := MustParse(`
PREFIX used: <http://used.org/>
PREFIX unused: <http://unused.org/>
SELECT ?s WHERE { ?s used:p ?o }`)
	out := Format(q)
	if strings.Contains(out, "unused:") {
		t.Fatalf("unused prefix emitted:\n%s", out)
	}
}

func TestFormatIsDeterministic(t *testing.T) {
	q := MustParse(figure1)
	first := Format(q)
	for i := 0; i < 5; i++ {
		if Format(q) != first {
			t.Fatal("Format not deterministic")
		}
	}
}

func TestFormatUsesAKeyword(t *testing.T) {
	q := MustParse(`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s a ex:C }`)
	out := Format(q)
	if !strings.Contains(out, "?s a ex:C") {
		t.Fatalf("rdf:type not rendered as 'a':\n%s", out)
	}
}

func BenchmarkParseFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(figure1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatFigure1(b *testing.B) {
	q := MustParse(figure1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Format(q)
	}
}
