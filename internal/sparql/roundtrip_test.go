package sparql

import (
	"math/rand"
	"reflect"
	"testing"

	"sparqlrw/internal/rdf"
)

// Random-AST round-trip properties: any expression tree the generator can
// build must serialise through FormatExpr and re-parse to a structurally
// identical tree (this is the guarantee the rewriter relies on when it
// rewrites FILTER expressions), and whole queries assembled from random
// parts must survive Format → Parse unchanged.

func randTerm(rng *rand.Rand) rdf.Term {
	switch rng.Intn(6) {
	case 0:
		return rdf.NewVar([]string{"a", "b", "c", "x"}[rng.Intn(4)])
	case 1:
		return rdf.NewIRI("http://example.org/e" + string(rune('a'+rng.Intn(16))))
	case 2:
		return rdf.NewLiteral([]string{"v", "hello world", "with \"quote\"", ""}[rng.Intn(4)])
	case 3:
		return rdf.NewInteger(int64(rng.Intn(100) - 50))
	case 4:
		return rdf.NewTypedLiteral("2.5", rdf.XSDDecimal)
	default:
		return rdf.NewLangLiteral("chat", "fr")
	}
}

func randExpr(rng *rand.Rand, depth int) Expression {
	if depth <= 0 || rng.Intn(4) == 0 {
		return &TermExpr{Term: randTerm(rng)}
	}
	switch rng.Intn(8) {
	case 0, 1:
		ops := []string{"||", "&&"}
		return &Binary{Op: ops[rng.Intn(2)], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 2, 3:
		ops := []string{"=", "!=", "<", ">", "<=", ">="}
		return &Binary{Op: ops[rng.Intn(6)], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 4:
		ops := []string{"+", "-", "*", "/"}
		return &Binary{Op: ops[rng.Intn(4)], L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 5:
		ops := []string{"!", "-", "+"}
		return &Unary{Op: ops[rng.Intn(3)], X: randExpr(rng, depth-1)}
	case 6:
		// builtins with correct arity
		switch rng.Intn(4) {
		case 0:
			return &Call{Name: "BOUND", Args: []Expression{&TermExpr{Term: rdf.NewVar("x")}}}
		case 1:
			return &Call{Name: "STR", Args: []Expression{randExpr(rng, depth-1)}}
		case 2:
			return &Call{Name: "REGEX", Args: []Expression{
				randExpr(rng, depth-1), &TermExpr{Term: rdf.NewLiteral("^pat")}}}
		default:
			return &Call{Name: "SAMETERM", Args: []Expression{
				randExpr(rng, depth-1), randExpr(rng, depth-1)}}
		}
	default:
		return &Call{Name: "http://example.org/fn", IRIFunc: true,
			Args: []Expression{randExpr(rng, depth-1)}}
	}
}

func TestRandomExpressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		expr := randExpr(rng, 4)
		q := NewQuery(Select)
		q.SelectStar = true
		q.Where = &GroupGraphPattern{Elements: []GroupElement{
			&BGP{Patterns: []rdf.Triple{{S: rdf.NewVar("s"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}}},
			&Filter{Expr: expr},
		}}
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		got := q2.Filters()[0].Expr
		if !reflect.DeepEqual(expr, got) {
			t.Fatalf("trial %d: expression changed:\nbefore: %#v\nafter:  %#v\ntext: %s",
				trial, expr, got, text)
		}
	}
}

func TestRandomQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	preds := []rdf.Term{
		rdf.NewIRI("http://example.org/p1"),
		rdf.NewIRI("http://example.org/p2"),
		rdf.NewIRI(rdf.RDFType),
	}
	for trial := 0; trial < 200; trial++ {
		q := NewQuery(Select)
		q.Distinct = rng.Intn(2) == 0
		nvars := 1 + rng.Intn(3)
		for i := 0; i < nvars; i++ {
			q.SelectVars = append(q.SelectVars, string(rune('a'+i)))
		}
		group := &GroupGraphPattern{}
		npat := 1 + rng.Intn(4)
		var pats []rdf.Triple
		for i := 0; i < npat; i++ {
			pats = append(pats, rdf.Triple{
				S: rdf.NewVar(string(rune('a' + rng.Intn(3)))),
				P: preds[rng.Intn(len(preds))],
				O: randTerm(rng),
			})
		}
		group.Elements = append(group.Elements, &BGP{Patterns: pats})
		if rng.Intn(2) == 0 {
			group.Elements = append(group.Elements, &Optional{Group: &GroupGraphPattern{
				Elements: []GroupElement{&BGP{Patterns: []rdf.Triple{{
					S: rdf.NewVar("a"), P: preds[0], O: rdf.NewVar("opt"),
				}}}},
			}})
		}
		if rng.Intn(2) == 0 {
			group.Elements = append(group.Elements, &Filter{Expr: randExpr(rng, 2)})
		}
		if rng.Intn(3) == 0 {
			group.Elements = append(group.Elements, &Union{Alternatives: []*GroupGraphPattern{
				{Elements: []GroupElement{&BGP{Patterns: []rdf.Triple{{
					S: rdf.NewVar("a"), P: preds[1], O: rdf.NewVar("u1"),
				}}}}},
				{Elements: []GroupElement{&BGP{Patterns: []rdf.Triple{{
					S: rdf.NewVar("a"), P: preds[2], O: rdf.NewIRI("http://example.org/C"),
				}}}}},
			}})
		}
		q.Where = group
		if rng.Intn(2) == 0 {
			q.OrderBy = []OrderCondition{{Expr: &TermExpr{Term: rdf.NewVar("a")}, Desc: rng.Intn(2) == 0}}
		}
		if rng.Intn(2) == 0 {
			q.Limit = rng.Intn(50)
		}
		if rng.Intn(3) == 0 {
			q.Offset = rng.Intn(10)
		}

		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		// Structural comparison of the pieces that matter.
		if q2.Distinct != q.Distinct || q2.Limit != q.Limit || q2.Offset != q.Offset ||
			!reflect.DeepEqual(q2.SelectVars, q.SelectVars) {
			t.Fatalf("trial %d: header changed\n%s", trial, text)
		}
		b1, b2 := q.BGPs(), q2.BGPs()
		if len(b1) != len(b2) {
			t.Fatalf("trial %d: BGP count %d vs %d\n%s", trial, len(b1), len(b2), text)
		}
		for i := range b1 {
			if !reflect.DeepEqual(b1[i].Patterns, b2[i].Patterns) {
				t.Fatalf("trial %d: BGP %d changed\n%s", trial, i, text)
			}
		}
		if len(q.Filters()) != len(q2.Filters()) {
			t.Fatalf("trial %d: filter count changed\n%s", trial, text)
		}
		for i := range q.Filters() {
			if !reflect.DeepEqual(q.Filters()[i].Expr, q2.Filters()[i].Expr) {
				t.Fatalf("trial %d: filter %d changed\n%s", trial, i, text)
			}
		}
	}
}
