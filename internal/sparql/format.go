package sparql

import (
	"fmt"
	"strings"

	"sparqlrw/internal/rdf"
)

// Format serialises a query back to SPARQL concrete syntax. The output is
// deterministic and re-parseable; IRIs are shrunk to prefixed names using
// the query's own prefix map. This is the function that produces the
// Figure-3-style rewritten query text users see.
func Format(q *Query) string {
	var b strings.Builder
	pm := q.Prefixes
	if pm != nil {
		used := usedNamespaces(q, pm)
		for _, p := range pm.Prefixes() {
			ns, _ := pm.Namespace(p)
			if used[ns] {
				fmt.Fprintf(&b, "PREFIX %s: <%s>\n", p, ns)
			}
		}
	}
	switch q.Form {
	case Select:
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		if q.Reduced {
			b.WriteString("REDUCED ")
		}
		if q.SelectStar {
			b.WriteString("*")
		} else {
			for i, v := range q.SelectVars {
				if i > 0 {
					b.WriteString(" ")
				}
				b.WriteString("?" + v)
			}
		}
		b.WriteString("\n")
	case Ask:
		b.WriteString("ASK\n")
	case Construct:
		b.WriteString("CONSTRUCT {\n")
		for _, t := range q.Template {
			b.WriteString("  " + formatTriple(t, pm) + " .\n")
		}
		b.WriteString("}\n")
	case Describe:
		b.WriteString("DESCRIBE")
		for _, t := range q.DescribeTerms {
			b.WriteString(" " + formatTerm(t, pm))
		}
		b.WriteString("\n")
	}
	if q.Form != Describe || q.Where != nil {
		b.WriteString("WHERE ")
		formatGroup(&b, q.Where, pm, 0)
		b.WriteString("\n")
	}
	if len(q.OrderBy) > 0 {
		b.WriteString("ORDER BY")
		for _, oc := range q.OrderBy {
			if oc.Desc {
				b.WriteString(" DESC(" + FormatExpr(oc.Expr, pm) + ")")
			} else if te, ok := oc.Expr.(*TermExpr); ok && te.Term.IsVar() {
				b.WriteString(" ?" + te.Term.Value)
			} else {
				b.WriteString(" ASC(" + FormatExpr(oc.Expr, pm) + ")")
			}
		}
		b.WriteString("\n")
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "LIMIT %d\n", q.Limit)
	}
	if q.Offset >= 0 {
		fmt.Fprintf(&b, "OFFSET %d\n", q.Offset)
	}
	return strings.TrimRight(b.String(), "\n") + "\n"
}

func usedNamespaces(q *Query, pm *rdf.PrefixMap) map[string]bool {
	used := map[string]bool{}
	note := func(t rdf.Term) {
		switch t.Kind {
		case rdf.KindIRI:
			noteIRI(t.Value, pm, used)
		case rdf.KindLiteral:
			if t.Datatype != "" && t.Datatype != rdf.XSDString {
				noteIRI(t.Datatype, pm, used)
			}
		}
	}
	for _, t := range q.Template {
		note(t.S)
		note(t.P)
		note(t.O)
	}
	for _, t := range q.DescribeTerms {
		note(t)
	}
	Walk(q.Where, func(el GroupElement) {
		switch e := el.(type) {
		case *BGP:
			for _, t := range e.Patterns {
				note(t.S)
				note(t.P)
				note(t.O)
			}
		case *Filter:
			for _, t := range ExprTerms(e.Expr) {
				note(t)
			}
		case *InlineData:
			for _, row := range e.Rows {
				for _, t := range row {
					note(t)
				}
			}
		}
	})
	for _, oc := range q.OrderBy {
		for _, t := range ExprTerms(oc.Expr) {
			note(t)
		}
	}
	return used
}

func noteIRI(iri string, pm *rdf.PrefixMap, used map[string]bool) {
	if q, ok := pm.Shrink(iri); ok {
		ns, _ := pm.Namespace(q[:strings.Index(q, ":")])
		used[ns] = true
	}
}

func indent(n int) string { return strings.Repeat("  ", n) }

func formatGroup(b *strings.Builder, g *GroupGraphPattern, pm *rdf.PrefixMap, depth int) {
	b.WriteString("{\n")
	inner := depth + 1
	if g != nil {
		for _, el := range g.Elements {
			switch e := el.(type) {
			case *BGP:
				for _, t := range e.Patterns {
					b.WriteString(indent(inner) + formatTriple(t, pm) + " .\n")
				}
			case *Filter:
				b.WriteString(indent(inner) + "FILTER (" + FormatExpr(e.Expr, pm) + ")\n")
			case *Optional:
				b.WriteString(indent(inner) + "OPTIONAL ")
				formatGroup(b, e.Group, pm, inner)
				b.WriteString("\n")
			case *SubGroup:
				b.WriteString(indent(inner))
				formatGroup(b, e.Group, pm, inner)
				b.WriteString("\n")
			case *Union:
				b.WriteString(indent(inner))
				for i, alt := range e.Alternatives {
					if i > 0 {
						b.WriteString(" UNION ")
					}
					formatGroup(b, alt, pm, inner)
				}
				b.WriteString("\n")
			case *InlineData:
				formatInlineData(b, e, pm, inner)
			}
		}
	}
	b.WriteString(indent(depth) + "}")
}

// formatInlineData writes a VALUES block in the full (parenthesised) row
// form, which is valid for any arity and re-parses to an identical tree.
func formatInlineData(b *strings.Builder, d *InlineData, pm *rdf.PrefixMap, depth int) {
	b.WriteString(indent(depth) + "VALUES (")
	for i, v := range d.Vars {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString("?" + v)
	}
	b.WriteString(") {\n")
	for _, row := range d.Rows {
		b.WriteString(indent(depth+1) + "(")
		for i, t := range row {
			if i > 0 {
				b.WriteString(" ")
			}
			if t.Kind == rdf.KindAny {
				b.WriteString("UNDEF")
			} else {
				b.WriteString(formatTerm(t, pm))
			}
		}
		b.WriteString(")\n")
	}
	b.WriteString(indent(depth) + "}\n")
}

func formatTriple(t rdf.Triple, pm *rdf.PrefixMap) string {
	return formatTerm(t.S, pm) + " " + formatVerbTerm(t.P, pm) + " " + formatTerm(t.O, pm)
}

// FormatTriplePattern serialises one triple pattern in query syntax
// (QName-shrunk through pm when possible), for diagnostics and explain
// output.
func FormatTriplePattern(t rdf.Triple, pm *rdf.PrefixMap) string {
	return formatTriple(t, pm)
}

func formatVerbTerm(t rdf.Term, pm *rdf.PrefixMap) string {
	if t.Kind == rdf.KindIRI && t.Value == rdf.RDFType {
		return "a"
	}
	return formatTerm(t, pm)
}

func formatTerm(t rdf.Term, pm *rdf.PrefixMap) string {
	if pm == nil {
		return t.String()
	}
	switch t.Kind {
	case rdf.KindIRI:
		if q, ok := pm.Shrink(t.Value); ok {
			return q
		}
	case rdf.KindLiteral:
		if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
			if q, ok := pm.Shrink(t.Datatype); ok {
				return rdf.NewLiteral(t.Value).String() + "^^" + q
			}
		}
	}
	return t.String()
}

// FormatExpr serialises an expression with explicit grouping parentheses so
// the output re-parses to an identical tree regardless of precedence.
func FormatExpr(e Expression, pm *rdf.PrefixMap) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *TermExpr:
		return formatTerm(x.Term, pm)
	case *Unary:
		return x.Op + "(" + FormatExpr(x.X, pm) + ")"
	case *Binary:
		return "(" + FormatExpr(x.L, pm) + " " + x.Op + " " + FormatExpr(x.R, pm) + ")"
	case *Call:
		var args []string
		for _, a := range x.Args {
			args = append(args, FormatExpr(a, pm))
		}
		name := x.Name
		if x.IRIFunc {
			if pm != nil {
				if q, ok := pm.Shrink(name); ok {
					return q + "(" + strings.Join(args, ", ") + ")"
				}
			}
			return "<" + name + ">(" + strings.Join(args, ", ") + ")"
		}
		return name + "(" + strings.Join(args, ", ") + ")"
	default:
		return fmt.Sprintf("!unknown-expr(%T)", e)
	}
}
