package sparql

import (
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

func findInlineData(t *testing.T, q *Query) *InlineData {
	t.Helper()
	var out *InlineData
	Walk(q.Where, func(el GroupElement) {
		if d, ok := el.(*InlineData); ok && out == nil {
			out = d
		}
	})
	if out == nil {
		t.Fatal("no VALUES block parsed")
	}
	return out
}

func TestParseValuesSingleVar(t *testing.T) {
	q := MustParse(`PREFIX id:<http://example.org/id/>
SELECT ?a WHERE {
  VALUES ?p { id:p1 id:p2 id:p3 }
  ?p <http://example.org/author> ?a .
}`)
	d := findInlineData(t, q)
	if len(d.Vars) != 1 || d.Vars[0] != "p" {
		t.Fatalf("vars = %v", d.Vars)
	}
	if len(d.Rows) != 3 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	if d.Rows[1][0] != rdf.NewIRI("http://example.org/id/p2") {
		t.Fatalf("row[1] = %v", d.Rows[1])
	}
}

func TestParseValuesMultiVarWithUndef(t *testing.T) {
	q := MustParse(`SELECT ?x ?y WHERE {
  ?x ?p ?y .
  VALUES (?x ?y) {
    (<http://a> "one")
    (UNDEF 2)
    (<http://c> true)
  }
}`)
	d := findInlineData(t, q)
	if len(d.Vars) != 2 || len(d.Rows) != 3 {
		t.Fatalf("vars=%v rows=%d", d.Vars, len(d.Rows))
	}
	if d.Rows[1][0].Kind != rdf.KindAny {
		t.Fatalf("UNDEF not parsed: %v", d.Rows[1][0])
	}
	if d.Rows[1][1] != rdf.NewTypedLiteral("2", rdf.XSDInteger) {
		t.Fatalf("typed row term = %v", d.Rows[1][1])
	}
}

func TestParseValuesTrailingClause(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s ?p ?o } VALUES ?s { <http://a> <http://b> }`)
	d := findInlineData(t, q)
	if len(d.Rows) != 2 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	// Trailing VALUES joins with the group, so it lands in WHERE.
	if n := len(q.Where.Elements); n != 2 {
		t.Fatalf("where elements = %d", n)
	}
}

func TestParseValuesErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT ?x WHERE { VALUES { <http://a> } }`,               // missing var list
		`SELECT ?x WHERE { VALUES (?x ?y) { (<http://a>) } }`,     // arity mismatch
		`SELECT ?x WHERE { VALUES ?x { ?y } }`,                    // variable as data term
		`SELECT ?x WHERE { VALUES ?x { <http://a> }`,              // unterminated group
		`SELECT ?x WHERE { ?x ?p ?o } VALUES ?x { <http://a> } .`, // trailing junk
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestValuesRoundTrip(t *testing.T) {
	src := `PREFIX id:<http://example.org/id/>
SELECT ?a WHERE {
  ?p <http://example.org/author> ?a .
  VALUES (?p) {
    (id:p1)
    (UNDEF)
  }
}`
	q := MustParse(src)
	text := Format(q)
	if !strings.Contains(text, "VALUES (?p)") || !strings.Contains(text, "UNDEF") {
		t.Fatalf("formatted:\n%s", text)
	}
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	d1, d2 := findInlineData(t, q), findInlineData(t, q2)
	if len(d1.Rows) != len(d2.Rows) || d1.Rows[0][0] != d2.Rows[0][0] {
		t.Fatalf("round trip lost rows: %v vs %v", d1.Rows, d2.Rows)
	}
	if Format(q2) != text {
		t.Fatalf("format not stable:\n%s\nvs\n%s", text, Format(q2))
	}
}

func TestValuesClone(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { VALUES ?x { <http://a> <http://b> } ?x ?p ?o }`)
	c := q.Clone()
	dc := findInlineData(t, c)
	dc.Rows[0][0] = rdf.NewIRI("http://mutated")
	dq := findInlineData(t, q)
	if dq.Rows[0][0].Value != "http://a" {
		t.Fatal("clone shares row storage with original")
	}
	if got := q.Vars(); len(got) != 3 || got[0] != "x" {
		t.Fatalf("Vars() = %v", got)
	}
}
