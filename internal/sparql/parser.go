package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"sparqlrw/internal/lex"
	"sparqlrw/internal/rdf"
)

// Parse parses a SPARQL 1.0 query (SELECT, ASK, CONSTRUCT or DESCRIBE).
func Parse(src string) (*Query, error) {
	p := &parser{lx: lex.New(src), used: map[string]bool{}}
	p.next()
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses src and panics on error; for tests and fixtures.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lx      *lex.Lexer
	tok     lex.Token
	peeked  *lex.Token
	pm      *rdf.PrefixMap
	anonSeq int
	used    map[string]bool
}

func (p *parser) next() {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return
	}
	p.tok = p.lx.Next()
}

func (p *parser) peek() lex.Token {
	if p.peeked == nil {
		t := p.lx.Next()
		p.peeked = &t
	}
	return *p.peeked
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: %d:%d: %s", p.tok.Line, p.tok.Col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k lex.Kind) error {
	if p.tok.Kind != k {
		return p.errf("expected %s, found %s", k, p.tok)
	}
	p.next()
	return nil
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive bare identifier).
func (p *parser) isKeyword(kw string) bool {
	return p.tok.Kind == lex.Ident && strings.EqualFold(p.tok.Val, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) query() (*Query, error) {
	p.pm = rdf.NewPrefixMap()
	if err := p.prologue(); err != nil {
		return nil, err
	}
	var q *Query
	var err error
	switch {
	case p.isKeyword("SELECT"):
		q, err = p.selectQuery()
	case p.isKeyword("ASK"):
		q, err = p.askQuery()
	case p.isKeyword("CONSTRUCT"):
		q, err = p.constructQuery()
	case p.isKeyword("DESCRIBE"):
		q, err = p.describeQuery()
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, found %s", p.tok)
	}
	if err != nil {
		return nil, err
	}
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	// Trailing VALUES clause (SPARQL 1.1 ValuesClause): joined with the
	// WHERE group, so it is represented as a group element.
	if p.isKeyword("VALUES") {
		data, err := p.inlineData()
		if err != nil {
			return nil, err
		}
		if q.Where == nil {
			q.Where = &GroupGraphPattern{}
		}
		q.Where.Elements = append(q.Where.Elements, data)
	}
	if p.tok.Kind != lex.EOF {
		return nil, p.errf("unexpected trailing input: %s", p.tok)
	}
	q.Prefixes = p.pm
	return q, nil
}

func (p *parser) prologue() error {
	for {
		switch {
		case p.isKeyword("BASE"):
			p.next()
			if p.tok.Kind != lex.IRIRef {
				return p.errf("expected IRI after BASE, found %s", p.tok)
			}
			p.pm.SetBase(p.tok.Val)
			p.next()
		case p.isKeyword("PREFIX"):
			p.next()
			if p.tok.Kind != lex.PNameNS {
				return p.errf("expected prefix name after PREFIX, found %s", p.tok)
			}
			name := p.tok.Val
			p.next()
			if p.tok.Kind != lex.IRIRef {
				return p.errf("expected IRI after PREFIX %s:, found %s", name, p.tok)
			}
			p.pm.Bind(name, p.pm.ResolveIRI(p.tok.Val))
			p.next()
		default:
			return nil
		}
	}
}

func (p *parser) selectQuery() (*Query, error) {
	q := NewQuery(Select)
	p.next() // SELECT
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	} else if p.acceptKeyword("REDUCED") {
		q.Reduced = true
	}
	switch {
	case p.tok.Kind == lex.Star:
		q.SelectStar = true
		p.next()
	case p.tok.Kind == lex.Var:
		for p.tok.Kind == lex.Var {
			q.SelectVars = append(q.SelectVars, p.tok.Val)
			p.next()
		}
	default:
		return nil, p.errf("expected variable list or * after SELECT, found %s", p.tok)
	}
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	q.Where = where
	return q, nil
}

func (p *parser) askQuery() (*Query, error) {
	q := NewQuery(Ask)
	p.next() // ASK
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	q.Where = where
	return q, nil
}

func (p *parser) constructQuery() (*Query, error) {
	q := NewQuery(Construct)
	p.next() // CONSTRUCT
	if p.tok.Kind != lex.LBrace {
		return nil, p.errf("expected '{' after CONSTRUCT, found %s", p.tok)
	}
	p.next()
	tmpl, err := p.triplesBlock()
	if err != nil {
		return nil, err
	}
	q.Template = tmpl
	if err := p.expect(lex.RBrace); err != nil {
		return nil, err
	}
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	q.Where = where
	return q, nil
}

// describeQuery parses `DESCRIBE VarOrIRIref+ [WHERE GroupGraphPattern]`:
// the resources are variables (resolved against the WHERE clause) and/or
// ground IRIs, and the WHERE clause is optional.
func (p *parser) describeQuery() (*Query, error) {
	q := NewQuery(Describe)
	p.next() // DESCRIBE
	for {
		switch p.tok.Kind {
		case lex.Var:
			q.DescribeTerms = append(q.DescribeTerms, rdf.NewVar(p.tok.Val))
			p.next()
			continue
		case lex.IRIRef:
			q.DescribeTerms = append(q.DescribeTerms, rdf.NewIRI(p.pm.ResolveIRI(p.tok.Val)))
			p.next()
			continue
		case lex.PNameLN, lex.PNameNS:
			// A bare prefix token may also be the WHERE keyword lexed as an
			// identifier elsewhere; PName kinds are unambiguous resources.
			t, err := p.pname()
			if err != nil {
				return nil, err
			}
			q.DescribeTerms = append(q.DescribeTerms, t)
			continue
		}
		break
	}
	if len(q.DescribeTerms) == 0 {
		return nil, p.errf("DESCRIBE requires at least one variable or IRI, found %s", p.tok)
	}
	if p.isKeyword("WHERE") || p.tok.Kind == lex.LBrace {
		where, err := p.whereClause()
		if err != nil {
			return nil, err
		}
		q.Where = where
	}
	return q, nil
}

func (p *parser) whereClause() (*GroupGraphPattern, error) {
	p.acceptKeyword("WHERE")
	return p.groupGraphPattern()
}

func (p *parser) groupGraphPattern() (*GroupGraphPattern, error) {
	if err := p.expect(lex.LBrace); err != nil {
		return nil, err
	}
	g := &GroupGraphPattern{}
	for {
		switch {
		case p.tok.Kind == lex.RBrace:
			p.next()
			return g, nil
		case p.tok.Kind == lex.EOF:
			return nil, p.errf("unterminated group graph pattern")
		case p.isKeyword("FILTER"):
			p.next()
			expr, err := p.constraint()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, &Filter{Expr: expr})
			// optional '.' after a filter
			if p.tok.Kind == lex.Dot {
				p.next()
			}
		case p.isKeyword("OPTIONAL"):
			p.next()
			sub, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, &Optional{Group: sub})
			if p.tok.Kind == lex.Dot {
				p.next()
			}
		case p.isKeyword("VALUES"):
			data, err := p.inlineData()
			if err != nil {
				return nil, err
			}
			g.Elements = append(g.Elements, data)
			if p.tok.Kind == lex.Dot {
				p.next()
			}
		case p.tok.Kind == lex.LBrace:
			// Nested group, possibly a UNION chain.
			first, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			if p.isKeyword("UNION") {
				alts := []*GroupGraphPattern{first}
				for p.acceptKeyword("UNION") {
					alt, err := p.groupGraphPattern()
					if err != nil {
						return nil, err
					}
					alts = append(alts, alt)
				}
				g.Elements = append(g.Elements, &Union{Alternatives: alts})
			} else {
				g.Elements = append(g.Elements, &SubGroup{Group: first})
			}
			if p.tok.Kind == lex.Dot {
				p.next()
			}
		default:
			pats, err := p.triplesBlock()
			if err != nil {
				return nil, err
			}
			if len(pats) == 0 {
				return nil, p.errf("expected graph pattern, found %s", p.tok)
			}
			// Merge with a preceding BGP so "t1 . FILTER(...) t2" still
			// yields distinct syntactic blocks but "t1 . t2" stays one.
			if n := len(g.Elements); n > 0 {
				if prev, ok := g.Elements[n-1].(*BGP); ok {
					prev.Patterns = append(prev.Patterns, pats...)
					continue
				}
			}
			g.Elements = append(g.Elements, &BGP{Patterns: pats})
		}
	}
}

// triplesBlock parses a run of TriplesSameSubject productions separated by
// dots, stopping at tokens that cannot start a triple.
func (p *parser) triplesBlock() ([]rdf.Triple, error) {
	var out []rdf.Triple
	for {
		if !p.startsTriples() {
			return out, nil
		}
		pats, err := p.triplesSameSubject()
		if err != nil {
			return nil, err
		}
		out = append(out, pats...)
		if p.tok.Kind == lex.Dot {
			p.next()
			continue
		}
		return out, nil
	}
}

func (p *parser) startsTriples() bool {
	switch p.tok.Kind {
	case lex.Var, lex.IRIRef, lex.PNameLN, lex.PNameNS, lex.BlankNode,
		lex.LBracket, lex.LParen, lex.String, lex.Integer, lex.Decimal, lex.Double:
		return true
	case lex.Ident:
		return strings.EqualFold(p.tok.Val, "true") || strings.EqualFold(p.tok.Val, "false")
	}
	return false
}

func (p *parser) triplesSameSubject() ([]rdf.Triple, error) {
	var acc []rdf.Triple
	var subj rdf.Term
	var err error
	if p.tok.Kind == lex.LBracket {
		subj, err = p.blankNodePropertyList(&acc)
		if err != nil {
			return nil, err
		}
		// property list is optional after [ ... ] as subject
		if !p.startsVerb() {
			return acc, nil
		}
	} else {
		subj, err = p.graphNode(&acc)
		if err != nil {
			return nil, err
		}
	}
	if err := p.propertyListNotEmpty(subj, &acc); err != nil {
		return nil, err
	}
	return acc, nil
}

func (p *parser) startsVerb() bool {
	switch p.tok.Kind {
	case lex.Var, lex.IRIRef, lex.PNameLN, lex.PNameNS:
		return true
	case lex.Ident:
		return p.tok.Val == "a"
	}
	return false
}

func (p *parser) propertyListNotEmpty(subj rdf.Term, acc *[]rdf.Triple) error {
	for {
		verb, err := p.verb()
		if err != nil {
			return err
		}
		for {
			obj, err := p.graphNode(acc)
			if err != nil {
				return err
			}
			*acc = append(*acc, rdf.Triple{S: subj, P: verb, O: obj})
			if p.tok.Kind != lex.Comma {
				break
			}
			p.next()
		}
		if p.tok.Kind != lex.Semicolon {
			return nil
		}
		for p.tok.Kind == lex.Semicolon {
			p.next()
		}
		if !p.startsVerb() {
			return nil
		}
	}
}

func (p *parser) verb() (rdf.Term, error) {
	switch {
	case p.tok.Kind == lex.Var:
		t := rdf.NewVar(p.tok.Val)
		p.next()
		return t, nil
	case p.tok.Kind == lex.Ident && p.tok.Val == "a":
		p.next()
		return rdf.NewIRI(rdf.RDFType), nil
	case p.tok.Kind == lex.IRIRef:
		t := rdf.NewIRI(p.pm.ResolveIRI(p.tok.Val))
		p.next()
		return t, nil
	case p.tok.Kind == lex.PNameLN || p.tok.Kind == lex.PNameNS:
		return p.pname()
	}
	return rdf.Term{}, p.errf("expected predicate, found %s", p.tok)
}

func (p *parser) pname() (rdf.Term, error) {
	var q string
	if p.tok.Kind == lex.PNameLN {
		q = p.tok.Val
	} else {
		q = p.tok.Val + ":"
	}
	iri, err := p.pm.Expand(q)
	if err != nil {
		return rdf.Term{}, p.errf("%v", err)
	}
	p.next()
	return rdf.NewIRI(iri), nil
}

// graphNode parses a node that may appear in subject or object position,
// appending auxiliary triples (from [..] and (..) nodes) to acc.
func (p *parser) graphNode(acc *[]rdf.Triple) (rdf.Term, error) {
	switch p.tok.Kind {
	case lex.Var:
		t := rdf.NewVar(p.tok.Val)
		p.next()
		return t, nil
	case lex.IRIRef:
		t := rdf.NewIRI(p.pm.ResolveIRI(p.tok.Val))
		p.next()
		return t, nil
	case lex.PNameLN, lex.PNameNS:
		return p.pname()
	case lex.BlankNode:
		p.used[p.tok.Val] = true
		t := rdf.NewBlank(p.tok.Val)
		p.next()
		return t, nil
	case lex.LBracket:
		return p.blankNodePropertyList(acc)
	case lex.LParen:
		return p.collection(acc)
	case lex.String:
		return p.literal()
	case lex.Integer:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDInteger)
		p.next()
		return t, nil
	case lex.Decimal:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDecimal)
		p.next()
		return t, nil
	case lex.Double:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDouble)
		p.next()
		return t, nil
	case lex.Ident:
		if strings.EqualFold(p.tok.Val, "true") || strings.EqualFold(p.tok.Val, "false") {
			t := rdf.NewTypedLiteral(strings.ToLower(p.tok.Val), rdf.XSDBoolean)
			p.next()
			return t, nil
		}
	}
	return rdf.Term{}, p.errf("expected graph node, found %s", p.tok)
}

func (p *parser) literal() (rdf.Term, error) {
	lexval := p.tok.Val
	p.next()
	switch p.tok.Kind {
	case lex.LangTag:
		t := rdf.NewLangLiteral(lexval, p.tok.Val)
		p.next()
		return t, nil
	case lex.HatHat:
		p.next()
		switch p.tok.Kind {
		case lex.IRIRef:
			t := rdf.NewTypedLiteral(lexval, p.pm.ResolveIRI(p.tok.Val))
			p.next()
			return t, nil
		case lex.PNameLN:
			dt, err := p.pname()
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.NewTypedLiteral(lexval, dt.Value), nil
		}
		return rdf.Term{}, p.errf("expected datatype IRI after ^^, found %s", p.tok)
	}
	return rdf.NewLiteral(lexval), nil
}

func (p *parser) freshBlank() rdf.Term {
	for {
		p.anonSeq++
		label := "anon" + strconv.Itoa(p.anonSeq)
		if !p.used[label] {
			p.used[label] = true
			return rdf.NewBlank(label)
		}
	}
}

func (p *parser) blankNodePropertyList(acc *[]rdf.Triple) (rdf.Term, error) {
	if err := p.expect(lex.LBracket); err != nil {
		return rdf.Term{}, err
	}
	node := p.freshBlank()
	if p.tok.Kind == lex.RBracket {
		p.next()
		return node, nil
	}
	if err := p.propertyListNotEmpty(node, acc); err != nil {
		return rdf.Term{}, err
	}
	if err := p.expect(lex.RBracket); err != nil {
		return rdf.Term{}, err
	}
	return node, nil
}

func (p *parser) collection(acc *[]rdf.Triple) (rdf.Term, error) {
	if err := p.expect(lex.LParen); err != nil {
		return rdf.Term{}, err
	}
	if p.tok.Kind == lex.RParen {
		p.next()
		return rdf.NewIRI(rdf.RDFNil), nil
	}
	head := p.freshBlank()
	cur := head
	first := true
	for p.tok.Kind != lex.RParen {
		if p.tok.Kind == lex.EOF {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		if !first {
			next := p.freshBlank()
			*acc = append(*acc, rdf.Triple{S: cur, P: rdf.NewIRI(rdf.RDFRest), O: next})
			cur = next
		}
		first = false
		obj, err := p.graphNode(acc)
		if err != nil {
			return rdf.Term{}, err
		}
		*acc = append(*acc, rdf.Triple{S: cur, P: rdf.NewIRI(rdf.RDFFirst), O: obj})
	}
	*acc = append(*acc, rdf.Triple{S: cur, P: rdf.NewIRI(rdf.RDFRest), O: rdf.NewIRI(rdf.RDFNil)})
	p.next()
	return head, nil
}

// inlineData parses a VALUES data block, in either form:
//
//	VALUES ?x { <v1> <v2> ... }
//	VALUES (?x ?y) { (<v1> "a") (UNDEF <v2>) ... }
//
// Row terms are ground (IRIs or literals) or UNDEF; UNDEF is represented
// as the zero Term.
func (p *parser) inlineData() (*InlineData, error) {
	p.next() // VALUES
	data := &InlineData{}
	single := false
	switch p.tok.Kind {
	case lex.Var:
		single = true
		data.Vars = []string{p.tok.Val}
		p.next()
	case lex.LParen:
		p.next()
		for p.tok.Kind == lex.Var {
			data.Vars = append(data.Vars, p.tok.Val)
			p.next()
		}
		if err := p.expect(lex.RParen); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected variable or variable list after VALUES, found %s", p.tok)
	}
	if err := p.expect(lex.LBrace); err != nil {
		return nil, err
	}
	for p.tok.Kind != lex.RBrace {
		if p.tok.Kind == lex.EOF {
			return nil, p.errf("unterminated VALUES block")
		}
		var row []rdf.Term
		if single {
			t, err := p.dataTerm()
			if err != nil {
				return nil, err
			}
			row = []rdf.Term{t}
		} else {
			if err := p.expect(lex.LParen); err != nil {
				return nil, err
			}
			for p.tok.Kind != lex.RParen {
				if p.tok.Kind == lex.EOF {
					return nil, p.errf("unterminated VALUES row")
				}
				t, err := p.dataTerm()
				if err != nil {
					return nil, err
				}
				row = append(row, t)
			}
			p.next() // RParen
			if len(row) != len(data.Vars) {
				return nil, p.errf("VALUES row has %d terms for %d variables", len(row), len(data.Vars))
			}
		}
		data.Rows = append(data.Rows, row)
	}
	p.next() // RBrace
	return data, nil
}

// dataTerm parses one VALUES row entry: a ground term or UNDEF (returned
// as the zero Term). Variables and blank nodes are not data terms.
func (p *parser) dataTerm() (rdf.Term, error) {
	switch p.tok.Kind {
	case lex.IRIRef:
		t := rdf.NewIRI(p.pm.ResolveIRI(p.tok.Val))
		p.next()
		return t, nil
	case lex.PNameLN, lex.PNameNS:
		return p.pname()
	case lex.String:
		return p.literal()
	case lex.Integer:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDInteger)
		p.next()
		return t, nil
	case lex.Decimal:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDecimal)
		p.next()
		return t, nil
	case lex.Double:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDouble)
		p.next()
		return t, nil
	case lex.Ident:
		switch {
		case strings.EqualFold(p.tok.Val, "UNDEF"):
			p.next()
			return rdf.Term{}, nil
		case strings.EqualFold(p.tok.Val, "true"), strings.EqualFold(p.tok.Val, "false"):
			t := rdf.NewTypedLiteral(strings.ToLower(p.tok.Val), rdf.XSDBoolean)
			p.next()
			return t, nil
		}
	}
	return rdf.Term{}, p.errf("expected VALUES data term, found %s", p.tok)
}

// ---- Expressions --------------------------------------------------------

// constraint parses the FILTER constraint production: a bracketted
// expression, builtin call, or extension function call.
func (p *parser) constraint() (Expression, error) {
	switch {
	case p.tok.Kind == lex.LParen:
		return p.brackettedExpression()
	case p.tok.Kind == lex.Ident:
		return p.builtinCall()
	case p.tok.Kind == lex.IRIRef || p.tok.Kind == lex.PNameLN:
		return p.iriOrFunction()
	}
	return nil, p.errf("expected FILTER constraint, found %s", p.tok)
}

func (p *parser) brackettedExpression() (Expression, error) {
	if err := p.expect(lex.LParen); err != nil {
		return nil, err
	}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expect(lex.RParen); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) expression() (Expression, error) { return p.orExpression() }

func (p *parser) orExpression() (Expression, error) {
	l, err := p.andExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == lex.OrOr {
		p.next()
		r, err := p.andExpression()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpression() (Expression, error) {
	l, err := p.relationalExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == lex.AndAnd {
		p.next()
		r, err := p.relationalExpression()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "&&", L: l, R: r}
	}
	return l, nil
}

var relOps = map[lex.Kind]string{
	lex.Eq: "=", lex.Neq: "!=", lex.Lt: "<", lex.Gt: ">", lex.Le: "<=", lex.Ge: ">=",
}

func (p *parser) relationalExpression() (Expression, error) {
	l, err := p.additiveExpression()
	if err != nil {
		return nil, err
	}
	if op, ok := relOps[p.tok.Kind]; ok {
		p.next()
		r, err := p.additiveExpression()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) additiveExpression() (Expression, error) {
	l, err := p.multiplicativeExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == lex.Plus || p.tok.Kind == lex.Minus {
		op := "+"
		if p.tok.Kind == lex.Minus {
			op = "-"
		}
		p.next()
		r, err := p.multiplicativeExpression()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicativeExpression() (Expression, error) {
	l, err := p.unaryExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == lex.Star || p.tok.Kind == lex.Slash {
		op := "*"
		if p.tok.Kind == lex.Slash {
			op = "/"
		}
		p.next()
		r, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpression() (Expression, error) {
	switch p.tok.Kind {
	case lex.Not:
		p.next()
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	case lex.Minus:
		p.next()
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case lex.Plus:
		p.next()
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "+", X: x}, nil
	}
	return p.primaryExpression()
}

// builtins recognised by the parser (SPARQL 1.0 built-in calls).
var builtins = map[string]struct{ min, max int }{
	"STR": {1, 1}, "LANG": {1, 1}, "LANGMATCHES": {2, 2}, "DATATYPE": {1, 1},
	"BOUND": {1, 1}, "SAMETERM": {2, 2}, "ISIRI": {1, 1}, "ISURI": {1, 1},
	"ISBLANK": {1, 1}, "ISLITERAL": {1, 1}, "REGEX": {2, 3},
}

func (p *parser) builtinCall() (Expression, error) {
	name := strings.ToUpper(p.tok.Val)
	sig, ok := builtins[name]
	if !ok {
		return nil, p.errf("unknown function %q", p.tok.Val)
	}
	p.next()
	if err := p.expect(lex.LParen); err != nil {
		return nil, err
	}
	var args []Expression
	if p.tok.Kind != lex.RParen {
		for {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.Kind != lex.Comma {
				break
			}
			p.next()
		}
	}
	if err := p.expect(lex.RParen); err != nil {
		return nil, err
	}
	if len(args) < sig.min || len(args) > sig.max {
		return nil, p.errf("%s takes %d..%d arguments, got %d", name, sig.min, sig.max, len(args))
	}
	return &Call{Name: name, Args: args}, nil
}

// iriOrFunction parses an IRI primary which may be an extension function
// call when followed by an argument list.
func (p *parser) iriOrFunction() (Expression, error) {
	var iri rdf.Term
	var err error
	if p.tok.Kind == lex.IRIRef {
		iri = rdf.NewIRI(p.pm.ResolveIRI(p.tok.Val))
		p.next()
	} else {
		iri, err = p.pname()
		if err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != lex.LParen {
		return &TermExpr{Term: iri}, nil
	}
	p.next()
	var args []Expression
	if p.tok.Kind != lex.RParen {
		for {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.Kind != lex.Comma {
				break
			}
			p.next()
		}
	}
	if err := p.expect(lex.RParen); err != nil {
		return nil, err
	}
	return &Call{Name: iri.Value, Args: args, IRIFunc: true}, nil
}

func (p *parser) primaryExpression() (Expression, error) {
	switch p.tok.Kind {
	case lex.LParen:
		return p.brackettedExpression()
	case lex.Var:
		t := rdf.NewVar(p.tok.Val)
		p.next()
		return &TermExpr{Term: t}, nil
	case lex.IRIRef, lex.PNameLN:
		return p.iriOrFunction()
	case lex.PNameNS:
		t, err := p.pname()
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: t}, nil
	case lex.String:
		t, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: t}, nil
	case lex.Integer:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDInteger)
		p.next()
		return &TermExpr{Term: t}, nil
	case lex.Decimal:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDecimal)
		p.next()
		return &TermExpr{Term: t}, nil
	case lex.Double:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDouble)
		p.next()
		return &TermExpr{Term: t}, nil
	case lex.Ident:
		switch {
		case strings.EqualFold(p.tok.Val, "true"):
			p.next()
			return &TermExpr{Term: rdf.NewTypedLiteral("true", rdf.XSDBoolean)}, nil
		case strings.EqualFold(p.tok.Val, "false"):
			p.next()
			return &TermExpr{Term: rdf.NewTypedLiteral("false", rdf.XSDBoolean)}, nil
		default:
			return p.builtinCall()
		}
	}
	return nil, p.errf("expected expression, found %s", p.tok)
}

// ---- Solution modifiers --------------------------------------------------

func (p *parser) solutionModifiers(q *Query) error {
	if p.acceptKeyword("ORDER") {
		if !p.acceptKeyword("BY") {
			return p.errf("expected BY after ORDER")
		}
		for {
			oc, ok, err := p.orderCondition()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			q.OrderBy = append(q.OrderBy, oc)
		}
		if len(q.OrderBy) == 0 {
			return p.errf("ORDER BY requires at least one condition")
		}
	}
	// LIMIT and OFFSET may appear in either order.
	for {
		switch {
		case p.isKeyword("LIMIT"):
			p.next()
			n, err := p.integer()
			if err != nil {
				return err
			}
			q.Limit = n
		case p.isKeyword("OFFSET"):
			p.next()
			n, err := p.integer()
			if err != nil {
				return err
			}
			q.Offset = n
		default:
			return nil
		}
	}
}

func (p *parser) orderCondition() (OrderCondition, bool, error) {
	switch {
	case p.isKeyword("ASC"):
		p.next()
		e, err := p.brackettedExpression()
		if err != nil {
			return OrderCondition{}, false, err
		}
		return OrderCondition{Expr: e}, true, nil
	case p.isKeyword("DESC"):
		p.next()
		e, err := p.brackettedExpression()
		if err != nil {
			return OrderCondition{}, false, err
		}
		return OrderCondition{Expr: e, Desc: true}, true, nil
	case p.tok.Kind == lex.Var:
		e := &TermExpr{Term: rdf.NewVar(p.tok.Val)}
		p.next()
		return OrderCondition{Expr: e}, true, nil
	case p.tok.Kind == lex.LParen:
		e, err := p.brackettedExpression()
		if err != nil {
			return OrderCondition{}, false, err
		}
		return OrderCondition{Expr: e}, true, nil
	}
	return OrderCondition{}, false, nil
}

func (p *parser) integer() (int, error) {
	if p.tok.Kind != lex.Integer {
		return 0, p.errf("expected integer, found %s", p.tok)
	}
	n, err := strconv.Atoi(p.tok.Val)
	if err != nil {
		return 0, p.errf("bad integer %q", p.tok.Val)
	}
	p.next()
	return n, nil
}
