package sparql

import (
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

func TestParseDescribe(t *testing.T) {
	q := MustParse(`PREFIX ex:<http://example.org/>
DESCRIBE ?x ex:thing <http://example.org/other>
WHERE { ?x ex:p ?y }`)
	if q.Form != Describe {
		t.Fatalf("form = %s", q.Form)
	}
	if len(q.DescribeTerms) != 3 {
		t.Fatalf("describe terms = %v", q.DescribeTerms)
	}
	if !q.DescribeTerms[0].IsVar() || q.DescribeTerms[0].Value != "x" {
		t.Fatalf("first term = %v", q.DescribeTerms[0])
	}
	if q.DescribeTerms[1].Value != "http://example.org/thing" {
		t.Fatalf("prefixed term not expanded: %v", q.DescribeTerms[1])
	}
	if q.Where == nil || len(q.BGPs()) != 1 {
		t.Fatalf("WHERE clause lost: %+v", q.Where)
	}
}

func TestParseDescribeWithoutWhere(t *testing.T) {
	q := MustParse(`DESCRIBE <http://example.org/r>`)
	if q.Form != Describe || q.Where != nil {
		t.Fatalf("form=%s where=%v", q.Form, q.Where)
	}
	if len(q.DescribeTerms) != 1 || q.DescribeTerms[0].Value != "http://example.org/r" {
		t.Fatalf("terms = %v", q.DescribeTerms)
	}
}

func TestDescribeRoundTrip(t *testing.T) {
	for _, src := range []string{
		`DESCRIBE <http://example.org/r>`,
		`PREFIX ex:<http://example.org/>
DESCRIBE ?x WHERE { ?x ex:p ?y } LIMIT 3`,
		`PREFIX ex:<http://example.org/>
DESCRIBE ?x ex:r WHERE { ?x ex:p "v" }`,
	} {
		q := MustParse(src)
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v\nformatted:\n%s", src, err, text)
		}
		if Format(q2) != text {
			t.Fatalf("unstable round trip for %q:\n%s\nvs\n%s", src, text, Format(q2))
		}
		if len(q2.DescribeTerms) != len(q.DescribeTerms) {
			t.Fatalf("describe terms lost: %v vs %v", q2.DescribeTerms, q.DescribeTerms)
		}
	}
}

func TestDescribeClonePreservesTerms(t *testing.T) {
	q := MustParse(`DESCRIBE ?x <http://example.org/r> WHERE { ?x ?p ?o }`)
	c := q.Clone()
	c.DescribeTerms[0] = rdf.NewVar("mutated")
	if q.DescribeTerms[0].Value != "x" {
		t.Fatal("Clone shares DescribeTerms backing array")
	}
}

func TestFormatDescribeOmitsEmptyWhere(t *testing.T) {
	text := Format(MustParse(`DESCRIBE <http://example.org/r>`))
	if strings.Contains(text, "WHERE") {
		t.Fatalf("WHERE emitted for pattern-less DESCRIBE:\n%s", text)
	}
}
