package algebra

import (
	"strings"
	"testing"

	"sparqlrw/internal/sparql"
)

func TestTranslateSelectModifiers(t *testing.T) {
	q := sparql.MustParse(`
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?s WHERE { ?s ex:p ?o } ORDER BY ?s LIMIT 5 OFFSET 1`)
	op := Translate(q)
	sl, ok := op.(*Slice)
	if !ok || sl.Limit != 5 || sl.Offset != 1 {
		t.Fatalf("top = %T", op)
	}
	d, ok := sl.Input.(*Distinct)
	if !ok {
		t.Fatalf("slice input = %T", sl.Input)
	}
	p, ok := d.Input.(*Project)
	if !ok || p.Vars[0] != "s" {
		t.Fatalf("distinct input = %T", d.Input)
	}
	if _, ok := p.Input.(*OrderBy); !ok {
		t.Fatalf("project input = %T", p.Input)
	}
}

func TestFilterAppliesToWholeGroup(t *testing.T) {
	// Triples on both sides of a FILTER form ONE basic graph pattern per
	// the SPARQL algebra (the Figure-6 subtlety the paper discusses).
	q := sparql.MustParse(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?a ex:p ?b . FILTER(?b > 1) ?b ex:q ?c . }`)
	op := Translate(q)
	proj := op.(*Project)
	f, ok := proj.Input.(*Filter)
	if !ok {
		t.Fatalf("expected Filter at group top, got %T", proj.Input)
	}
	bgp, ok := f.Input.(*BGP)
	if !ok {
		t.Fatalf("filter input = %T", f.Input)
	}
	if len(bgp.Patterns) != 2 {
		t.Fatalf("BGP must merge across FILTER: %d patterns", len(bgp.Patterns))
	}
}

func TestOptionalBecomesLeftJoinWithExpr(t *testing.T) {
	q := sparql.MustParse(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?s ex:p ?o OPTIONAL { ?s ex:q ?q FILTER(?q > 3) } }`)
	proj := Translate(q).(*Project)
	lj, ok := proj.Input.(*LeftJoin)
	if !ok {
		t.Fatalf("expected LeftJoin, got %T", proj.Input)
	}
	if lj.Expr == nil {
		t.Fatal("optional's filter must become the left-join expression")
	}
	if _, ok := lj.R.(*BGP); !ok {
		t.Fatalf("leftjoin right = %T", lj.R)
	}
}

func TestUnionFoldsLeft(t *testing.T) {
	q := sparql.MustParse(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { { ?s ex:a ?o } UNION { ?s ex:b ?o } UNION { ?s ex:c ?o } }`)
	proj := Translate(q).(*Project)
	u1, ok := proj.Input.(*Union)
	if !ok {
		t.Fatalf("top = %T", proj.Input)
	}
	if _, ok := u1.L.(*Union); !ok {
		t.Fatalf("left fold expected, got %T", u1.L)
	}
}

func TestEmptyGroupIsUnit(t *testing.T) {
	q := sparql.MustParse(`ASK {}`)
	op := Translate(q)
	if _, ok := op.(*Unit); !ok {
		t.Fatalf("empty group = %T", op)
	}
}

func TestBGPsAndWalk(t *testing.T) {
	q := sparql.MustParse(`
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?s ex:p ?o { ?s ex:q ?r } UNION { ?s ex:t ?u } }`)
	op := Translate(q)
	if got := len(BGPs(op)); got != 3 {
		t.Fatalf("BGPs = %d, want 3", got)
	}
	count := 0
	Walk(op, func(Op) { count++ })
	if count < 5 {
		t.Fatalf("walk visited %d nodes", count)
	}
}

func TestStringRendersLispTree(t *testing.T) {
	q := sparql.MustParse(`
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?s WHERE { ?s ex:p ?o FILTER(?o > 1) OPTIONAL { ?s ex:q ?q } } ORDER BY ?s LIMIT 2`)
	s := String(Translate(q))
	for _, want := range []string{"(slice", "(distinct", "(project (s)", "(order", "(leftjoin", "(filter", "(bgp", "(triple"} {
		if !strings.Contains(s, want) {
			t.Errorf("algebra string missing %q:\n%s", want, s)
		}
	}
}

func TestReducedTranslates(t *testing.T) {
	q := sparql.MustParse(`PREFIX ex: <http://x/> SELECT REDUCED ?s WHERE { ?s ex:p ?o }`)
	if _, ok := Translate(q).(*Reduced); !ok {
		t.Fatal("REDUCED lost in translation")
	}
}
