// Package algebra translates parsed SPARQL queries into the SPARQL algebra
// (the "relational algebra for SPARQL" of Cyganiak that the paper's §4
// proposes as the future substrate for rewriting: a homogeneous tree
// representation of the whole query, BGPs and FILTERs alike). The
// evaluator in internal/eval interprets this algebra over a triple store,
// and the rewriter's FILTER extension walks it.
package algebra

import (
	"fmt"
	"strings"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// Op is a node of the algebra tree.
type Op interface{ isOp() }

// Unit is the empty pattern (joins as identity).
type Unit struct{}

// BGP is a basic graph pattern.
type BGP struct {
	Patterns []rdf.Triple
}

// Table is inline data (a VALUES block): a fixed relation of bindings for
// Vars. A zero Term in a row leaves that variable unbound (UNDEF).
type Table struct {
	Vars []string
	Rows [][]rdf.Term
}

// Join is the natural join of two operands.
type Join struct {
	L, R Op
}

// LeftJoin implements OPTIONAL; Expr may be nil (no embedded filter).
type LeftJoin struct {
	L, R Op
	Expr sparql.Expression
}

// Union is the set union of two operands.
type Union struct {
	L, R Op
}

// Filter restricts solutions by an expression.
type Filter struct {
	Expr  sparql.Expression
	Input Op
}

// Project restricts solutions to the given variables.
type Project struct {
	Vars  []string
	Star  bool
	Input Op
}

// Distinct removes duplicate solutions.
type Distinct struct {
	Input Op
}

// Reduced permits (but does not require) duplicate elimination; the
// evaluator treats it as Distinct, which is a legal implementation.
type Reduced struct {
	Input Op
}

// OrderBy sorts solutions.
type OrderBy struct {
	Conds []sparql.OrderCondition
	Input Op
}

// Slice applies LIMIT/OFFSET (-1 meaning absent).
type Slice struct {
	Limit, Offset int
	Input         Op
}

func (*Unit) isOp()     {}
func (*BGP) isOp()      {}
func (*Table) isOp()    {}
func (*Join) isOp()     {}
func (*LeftJoin) isOp() {}
func (*Union) isOp()    {}
func (*Filter) isOp()   {}
func (*Project) isOp()  {}
func (*Distinct) isOp() {}
func (*Reduced) isOp()  {}
func (*OrderBy) isOp()  {}
func (*Slice) isOp()    {}

// Translate maps a parsed query to its algebra tree, including solution
// modifiers. The WHERE clause is translated per the SPARQL 1.0 semantics:
// within one group, triple patterns merge into basic graph patterns,
// FILTERs apply to the whole group, OPTIONAL becomes LeftJoin (absorbing a
// top-level filter of its operand as the left-join expression), and UNION
// folds left.
func Translate(q *sparql.Query) Op {
	var op Op = TranslateGroup(q.Where)
	switch q.Form {
	case sparql.Select:
		if len(q.OrderBy) > 0 {
			op = &OrderBy{Conds: q.OrderBy, Input: op}
		}
		op = &Project{Vars: q.SelectVars, Star: q.SelectStar, Input: op}
		if q.Distinct {
			op = &Distinct{Input: op}
		} else if q.Reduced {
			op = &Reduced{Input: op}
		}
		if q.Limit >= 0 || q.Offset >= 0 {
			op = &Slice{Limit: q.Limit, Offset: q.Offset, Input: op}
		}
	case sparql.Ask, sparql.Construct, sparql.Describe:
		// no modifiers in our fragment
	}
	return op
}

// TranslateGroup translates one group graph pattern.
func TranslateGroup(g *sparql.GroupGraphPattern) Op {
	if g == nil {
		return &Unit{}
	}
	var acc Op = &Unit{}
	var filters []sparql.Expression
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *sparql.BGP:
			pats := append([]rdf.Triple(nil), e.Patterns...)
			acc = join(acc, &BGP{Patterns: pats})
		case *sparql.Filter:
			filters = append(filters, e.Expr)
		case *sparql.SubGroup:
			acc = join(acc, TranslateGroup(e.Group))
		case *sparql.Optional:
			inner := TranslateGroup(e.Group)
			var expr sparql.Expression
			if f, ok := inner.(*Filter); ok {
				expr, inner = f.Expr, f.Input
			}
			acc = &LeftJoin{L: acc, R: inner, Expr: expr}
		case *sparql.Union:
			var u Op
			for _, alt := range e.Alternatives {
				t := TranslateGroup(alt)
				if u == nil {
					u = t
				} else {
					u = &Union{L: u, R: t}
				}
			}
			if u != nil {
				acc = join(acc, u)
			}
		case *sparql.InlineData:
			acc = join(acc, &Table{Vars: e.Vars, Rows: e.Rows})
		}
	}
	for _, f := range filters {
		acc = &Filter{Expr: f, Input: acc}
	}
	return acc
}

// join simplifies Unit identities and merges adjacent BGPs, matching the
// spec's rule that triple patterns within a group form one basic graph
// pattern unless separated by a non-triple pattern.
func join(l, r Op) Op {
	if _, ok := l.(*Unit); ok {
		return r
	}
	if _, ok := r.(*Unit); ok {
		return l
	}
	if lb, ok := l.(*BGP); ok {
		if rb, ok := r.(*BGP); ok {
			return &BGP{Patterns: append(append([]rdf.Triple(nil), lb.Patterns...), rb.Patterns...)}
		}
	}
	return &Join{L: l, R: r}
}

// Walk visits every node of the tree depth-first.
func Walk(op Op, fn func(Op)) {
	if op == nil {
		return
	}
	fn(op)
	switch o := op.(type) {
	case *Join:
		Walk(o.L, fn)
		Walk(o.R, fn)
	case *LeftJoin:
		Walk(o.L, fn)
		Walk(o.R, fn)
	case *Union:
		Walk(o.L, fn)
		Walk(o.R, fn)
	case *Filter:
		Walk(o.Input, fn)
	case *Project:
		Walk(o.Input, fn)
	case *Distinct:
		Walk(o.Input, fn)
	case *Reduced:
		Walk(o.Input, fn)
	case *OrderBy:
		Walk(o.Input, fn)
	case *Slice:
		Walk(o.Input, fn)
	}
}

// BGPs returns the basic graph patterns of the tree in visit order.
func BGPs(op Op) []*BGP {
	var out []*BGP
	Walk(op, func(o Op) {
		if b, ok := o.(*BGP); ok {
			out = append(out, b)
		}
	})
	return out
}

// String renders the tree LISP-style, mirroring the paper's remark that the
// algebra gives "LISP like structures" as a homogeneous representation.
func String(op Op) string {
	var b strings.Builder
	render(&b, op, 0)
	return b.String()
}

func render(b *strings.Builder, op Op, depth int) {
	pad := strings.Repeat("  ", depth)
	switch o := op.(type) {
	case *Unit:
		b.WriteString(pad + "(unit)")
	case *BGP:
		b.WriteString(pad + "(bgp")
		for _, t := range o.Patterns {
			b.WriteString("\n" + pad + "  (triple " + t.String() + ")")
		}
		b.WriteString(")")
	case *Table:
		b.WriteString(pad + "(table (?" + strings.Join(o.Vars, " ?") + ")")
		for _, row := range o.Rows {
			b.WriteString("\n" + pad + "  (row")
			for _, t := range row {
				if t.Kind == rdf.KindAny {
					b.WriteString(" UNDEF")
				} else {
					b.WriteString(" " + t.String())
				}
			}
			b.WriteString(")")
		}
		b.WriteString(")")
	case *Join:
		b.WriteString(pad + "(join\n")
		render(b, o.L, depth+1)
		b.WriteString("\n")
		render(b, o.R, depth+1)
		b.WriteString(")")
	case *LeftJoin:
		b.WriteString(pad + "(leftjoin")
		if o.Expr != nil {
			b.WriteString(" " + sparql.FormatExpr(o.Expr, nil))
		}
		b.WriteString("\n")
		render(b, o.L, depth+1)
		b.WriteString("\n")
		render(b, o.R, depth+1)
		b.WriteString(")")
	case *Union:
		b.WriteString(pad + "(union\n")
		render(b, o.L, depth+1)
		b.WriteString("\n")
		render(b, o.R, depth+1)
		b.WriteString(")")
	case *Filter:
		b.WriteString(pad + "(filter " + sparql.FormatExpr(o.Expr, nil) + "\n")
		render(b, o.Input, depth+1)
		b.WriteString(")")
	case *Project:
		if o.Star {
			b.WriteString(pad + "(project *\n")
		} else {
			b.WriteString(pad + "(project (" + strings.Join(o.Vars, " ") + ")\n")
		}
		render(b, o.Input, depth+1)
		b.WriteString(")")
	case *Distinct:
		b.WriteString(pad + "(distinct\n")
		render(b, o.Input, depth+1)
		b.WriteString(")")
	case *Reduced:
		b.WriteString(pad + "(reduced\n")
		render(b, o.Input, depth+1)
		b.WriteString(")")
	case *OrderBy:
		b.WriteString(pad + "(order")
		for _, c := range o.Conds {
			dir := "asc"
			if c.Desc {
				dir = "desc"
			}
			b.WriteString(fmt.Sprintf(" (%s %s)", dir, sparql.FormatExpr(c.Expr, nil)))
		}
		b.WriteString("\n")
		render(b, o.Input, depth+1)
		b.WriteString(")")
	case *Slice:
		b.WriteString(fmt.Sprintf("%s(slice limit=%d offset=%d\n", pad, o.Limit, o.Offset))
		render(b, o.Input, depth+1)
		b.WriteString(")")
	default:
		b.WriteString(pad + fmt.Sprintf("(unknown %T)", op))
	}
}
