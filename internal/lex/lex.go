// Package lex provides a shared tokeniser for the two concrete syntaxes the
// repository parses: Turtle (data and alignment KBs) and SPARQL (queries).
// The token inventories of the two languages overlap almost entirely, so a
// single lexer serves both; language-specific keywords are lexed as Ident
// tokens and interpreted case-insensitively by the parsers.
package lex

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind enumerates token kinds.
type Kind uint8

// Token kinds. Punctuation kinds carry no value; literal-ish kinds carry
// their decoded value in Token.Val.
const (
	EOF Kind = iota
	Illegal
	IRIRef    // <...>; Val = IRI content, unescaped
	PNameNS   // "prefix:"; Val = prefix (may be empty)
	PNameLN   // prefix:local; Val = "prefix:local" verbatim
	BlankNode // _:label; Val = label
	Var       // ?name or $name; Val = name
	String    // quoted string; Val = unescaped content
	LangTag   // @tag; Val = tag
	AtKeyword // @prefix or @base; Val = "prefix"/"base"
	Integer   // Val = digits
	Decimal   // Val = digits.digits
	Double    // Val = mantissa+exponent
	Ident     // bare word (keywords, "a", "true", "false")

	LBrace    // {
	RBrace    // }
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	Dot       // .
	Semicolon // ;
	Comma     // ,
	HatHat    // ^^
	Eq        // =
	Neq       // !=
	Lt        // <
	Gt        // >
	Le        // <=
	Ge        // >=
	Not       // !
	AndAnd    // &&
	OrOr      // ||
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
)

var kindNames = map[Kind]string{
	EOF: "EOF", Illegal: "illegal", IRIRef: "IRI", PNameNS: "prefix",
	PNameLN: "prefixed-name", BlankNode: "blank-node", Var: "variable",
	String: "string", LangTag: "lang-tag", AtKeyword: "@keyword",
	Integer: "integer", Decimal: "decimal", Double: "double", Ident: "identifier",
	LBrace: "{", RBrace: "}", LParen: "(", RParen: ")", LBracket: "[",
	RBracket: "]", Dot: ".", Semicolon: ";", Comma: ",", HatHat: "^^",
	Eq: "=", Neq: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Not: "!",
	AndAnd: "&&", OrOr: "||", Plus: "+", Minus: "-", Star: "*", Slash: "/",
}

// String returns a readable kind name for error messages.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Token is a lexed token with source position (1-based line and column).
type Token struct {
	Kind Kind
	Val  string
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IRIRef:
		return "<" + t.Val + ">"
	case Var:
		return "?" + t.Val
	case BlankNode:
		return "_:" + t.Val
	case String:
		return fmt.Sprintf("%q", t.Val)
	case Ident, PNameLN, PNameNS, Integer, Decimal, Double, LangTag, AtKeyword, Illegal:
		return t.Val
	default:
		return t.Kind.String()
	}
}

// Lexer tokenises an input string. It is a simple single-pass scanner; the
// parsers drive it through Next (with one-token lookahead implemented on
// their side).
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *Lexer) peekAt(off int) rune {
	p := l.pos + off
	if p >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[p:])
	return r
}

func (l *Lexer) advance() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		if r == '#' {
			for r != '\n' && r != -1 {
				l.advance()
				r = l.peek()
			}
			continue
		}
		if r == ' ' || r == '\t' || r == '\r' || r == '\n' {
			l.advance()
			continue
		}
		return
	}
}

func (l *Lexer) tok(k Kind, val string, line, col int) Token {
	return Token{Kind: k, Val: val, Line: line, Col: col}
}

func (l *Lexer) illegal(line, col int, format string, args ...any) Token {
	return Token{Kind: Illegal, Val: fmt.Sprintf(format, args...), Line: line, Col: col}
}

// Next returns the next token, or an EOF/Illegal token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	r := l.peek()
	if r == -1 {
		return l.tok(EOF, "", line, col)
	}
	switch r {
	case '{':
		l.advance()
		return l.tok(LBrace, "", line, col)
	case '}':
		l.advance()
		return l.tok(RBrace, "", line, col)
	case '(':
		l.advance()
		return l.tok(LParen, "", line, col)
	case ')':
		l.advance()
		return l.tok(RParen, "", line, col)
	case '[':
		l.advance()
		return l.tok(LBracket, "", line, col)
	case ']':
		l.advance()
		return l.tok(RBracket, "", line, col)
	case ';':
		l.advance()
		return l.tok(Semicolon, "", line, col)
	case ',':
		l.advance()
		return l.tok(Comma, "", line, col)
	case '=':
		l.advance()
		return l.tok(Eq, "", line, col)
	case '*':
		l.advance()
		return l.tok(Star, "", line, col)
	case '/':
		l.advance()
		return l.tok(Slash, "", line, col)
	case '+':
		l.advance()
		return l.tok(Plus, "", line, col)
	case '-':
		l.advance()
		return l.tok(Minus, "", line, col)
	case '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return l.tok(Neq, "", line, col)
		}
		return l.tok(Not, "", line, col)
	case '&':
		l.advance()
		if l.peek() == '&' {
			l.advance()
			return l.tok(AndAnd, "", line, col)
		}
		return l.illegal(line, col, "unexpected '&'")
	case '|':
		l.advance()
		if l.peek() == '|' {
			l.advance()
			return l.tok(OrOr, "", line, col)
		}
		return l.illegal(line, col, "unexpected '|'")
	case '^':
		l.advance()
		if l.peek() == '^' {
			l.advance()
			return l.tok(HatHat, "", line, col)
		}
		return l.illegal(line, col, "unexpected '^' (expected '^^')")
	case '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return l.tok(Ge, "", line, col)
		}
		return l.tok(Gt, "", line, col)
	case '<':
		return l.lexLessOrIRI(line, col)
	case '"', '\'':
		return l.lexString(line, col)
	case '?', '$':
		return l.lexVar(line, col)
	case '@':
		return l.lexAt(line, col)
	case '_':
		if l.peekAt(1) == ':' {
			return l.lexBlank(line, col)
		}
		return l.lexIdentOrPName(line, col)
	case '.':
		// "." begins a decimal only when followed by a digit (".5"); in
		// Turtle a bare dot is the statement terminator.
		if isDigit(l.peekAt(1)) {
			return l.lexNumber(line, col)
		}
		l.advance()
		return l.tok(Dot, "", line, col)
	}
	if isDigit(r) {
		return l.lexNumber(line, col)
	}
	if isPNCharsBase(r) || r == ':' {
		return l.lexIdentOrPName(line, col)
	}
	l.advance()
	return l.illegal(line, col, "unexpected character %q", r)
}

// lexLessOrIRI disambiguates '<' between an IRI reference and the less-than
// operator: if a '>' is reachable without hitting a character that is
// illegal inside an IRIREF, the token is an IRI reference.
func (l *Lexer) lexLessOrIRI(line, col int) Token {
	// Scan ahead in the raw string without consuming.
	i := l.pos + 1
	for i < len(l.src) {
		c := l.src[i]
		if c == '>' {
			return l.consumeIRIRef(line, col)
		}
		if c <= ' ' || c == '<' || c == '"' || c == '{' || c == '}' || c == '|' || c == '^' || c == '`' {
			break
		}
		i++
	}
	l.advance() // consume '<'
	if l.peek() == '=' {
		l.advance()
		return l.tok(Le, "", line, col)
	}
	return l.tok(Lt, "", line, col)
}

func (l *Lexer) consumeIRIRef(line, col int) Token {
	l.advance() // '<'
	var b strings.Builder
	for {
		r := l.peek()
		switch {
		case r == -1:
			return l.illegal(line, col, "unterminated IRI reference")
		case r == '>':
			l.advance()
			return l.tok(IRIRef, b.String(), line, col)
		case r == '\\':
			l.advance()
			esc := l.peek()
			if esc == 'u' || esc == 'U' {
				l.advance()
				rr, ok := l.readUnicodeEscape(esc == 'U')
				if !ok {
					return l.illegal(line, col, "bad unicode escape in IRI")
				}
				b.WriteRune(rr)
				continue
			}
			return l.illegal(line, col, "bad escape %q in IRI", esc)
		default:
			l.advance()
			b.WriteRune(r)
		}
	}
}

func (l *Lexer) readUnicodeEscape(long bool) (rune, bool) {
	n := 4
	if long {
		n = 8
	}
	var v rune
	for i := 0; i < n; i++ {
		r := l.peek()
		var d rune
		switch {
		case r >= '0' && r <= '9':
			d = r - '0'
		case r >= 'a' && r <= 'f':
			d = r - 'a' + 10
		case r >= 'A' && r <= 'F':
			d = r - 'A' + 10
		default:
			return 0, false
		}
		l.advance()
		v = v*16 + d
	}
	return v, true
}

func (l *Lexer) lexString(line, col int) Token {
	quote := l.advance() // " or '
	long := false
	if l.peek() == quote && l.peekAt(1) == quote {
		// Either a long string delimiter or an empty string followed by
		// something else. Check the third char.
		l.advance()
		if l.peek() == quote {
			l.advance()
			long = true
		} else {
			return l.tok(String, "", line, col) // empty short string
		}
	}
	var b strings.Builder
	for {
		r := l.peek()
		if r == -1 {
			return l.illegal(line, col, "unterminated string literal")
		}
		if !long && (r == '\n' || r == '\r') {
			return l.illegal(line, col, "newline in string literal")
		}
		if r == quote {
			if !long {
				l.advance()
				return l.tok(String, b.String(), line, col)
			}
			if l.peekAt(1) == quote && l.peekAt(2) == quote {
				l.advance()
				l.advance()
				l.advance()
				return l.tok(String, b.String(), line, col)
			}
			l.advance()
			b.WriteRune(r)
			continue
		}
		if r == '\\' {
			l.advance()
			esc := l.advance()
			switch esc {
			case 't':
				b.WriteByte('\t')
			case 'b':
				b.WriteByte('\b')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'f':
				b.WriteByte('\f')
			case '"', '\'', '\\':
				b.WriteRune(esc)
			case 'u', 'U':
				rr, ok := l.readUnicodeEscape(esc == 'U')
				if !ok {
					return l.illegal(line, col, "bad unicode escape in string")
				}
				b.WriteRune(rr)
			default:
				return l.illegal(line, col, "bad string escape %q", esc)
			}
			continue
		}
		l.advance()
		b.WriteRune(r)
	}
}

func (l *Lexer) lexVar(line, col int) Token {
	l.advance() // ? or $
	var b strings.Builder
	for {
		r := l.peek()
		if isPNChars(r) && r != '-' && r != '.' || isDigit(r) {
			l.advance()
			b.WriteRune(r)
			continue
		}
		break
	}
	if b.Len() == 0 {
		return l.illegal(line, col, "empty variable name")
	}
	return l.tok(Var, b.String(), line, col)
}

func (l *Lexer) lexAt(line, col int) Token {
	l.advance() // @
	var b strings.Builder
	for {
		r := l.peek()
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			l.advance()
			b.WriteRune(r)
			continue
		}
		if r == '-' && b.Len() > 0 {
			l.advance()
			b.WriteRune(r)
			continue
		}
		break
	}
	// continue over digits for subtags like @en-us2
	for isDigit(l.peek()) {
		b.WriteRune(l.advance())
	}
	v := b.String()
	if v == "" {
		return l.illegal(line, col, "empty @ token")
	}
	if v == "prefix" || v == "base" {
		return l.tok(AtKeyword, v, line, col)
	}
	return l.tok(LangTag, v, line, col)
}

func (l *Lexer) lexBlank(line, col int) Token {
	l.advance() // _
	l.advance() // :
	label := l.lexLocalName()
	if label == "" {
		return l.illegal(line, col, "empty blank node label")
	}
	return l.tok(BlankNode, label, line, col)
}

// lexLocalName consumes a PN_LOCAL-style run: letters, digits, '_', '-',
// and interior dots (a trailing dot run is put back for the Dot token).
func (l *Lexer) lexLocalName() string {
	start := l.pos
	for {
		r := l.peek()
		if isPNChars(r) || isDigit(r) || r == '.' || r == '%' {
			l.advance()
			continue
		}
		break
	}
	s := l.src[start:l.pos]
	// Back off trailing dots: they terminate statements in Turtle.
	for strings.HasSuffix(s, ".") {
		s = s[:len(s)-1]
		l.pos--
		l.col--
	}
	return s
}

func (l *Lexer) lexIdentOrPName(line, col int) Token {
	var b strings.Builder
	for {
		r := l.peek()
		if isPNChars(r) || (b.Len() > 0 && isDigit(r)) || (b.Len() == 0 && isDigit(r)) {
			l.advance()
			b.WriteRune(r)
			continue
		}
		break
	}
	prefix := b.String()
	if l.peek() == ':' {
		l.advance()
		// PNameNS or PNameLN depending on what follows.
		r := l.peek()
		if isPNChars(r) || isDigit(r) || r == '%' {
			local := l.lexLocalName()
			return l.tok(PNameLN, prefix+":"+local, line, col)
		}
		return l.tok(PNameNS, prefix, line, col)
	}
	if prefix == "" {
		l.advance()
		return l.illegal(line, col, "unexpected character %q", l.peek())
	}
	// Bare identifier: keyword, boolean, or Turtle "a".
	return l.tok(Ident, prefix, line, col)
}

func (l *Lexer) lexNumber(line, col int) Token {
	start := l.pos
	kind := Integer
	for isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		kind = Decimal
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if r := l.peek(); r == 'e' || r == 'E' {
		// exponent requires digits (optionally signed)
		save := l.pos
		l.advance()
		if r2 := l.peek(); r2 == '+' || r2 == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			kind = Double
			for isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	return l.tok(kind, l.src[start:l.pos], line, col)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isPNCharsBase(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// isPNChars accepts name characters: letters, '_', '-' (digits are handled
// separately by callers that allow them).
func isPNChars(r rune) bool {
	return isPNCharsBase(r) || r == '-'
}

// All tokenises the whole input, primarily for tests.
func All(src string) []Token {
	l := New(src)
	var out []Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == EOF || t.Kind == Illegal {
			return out
		}
	}
}
