package lex

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func expectSeq(t *testing.T, src string, want ...Kind) []Token {
	t.Helper()
	toks := All(src)
	got := kinds(toks)
	want = append(want, EOF)
	if len(got) != len(want) {
		t.Fatalf("lex(%q): got %d tokens %v, want %d %v", src, len(got), toks, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lex(%q)[%d] = %v, want %v (all: %v)", src, i, got[i], want[i], toks)
		}
	}
	return toks
}

func TestPunctuationAndOperators(t *testing.T) {
	expectSeq(t, "{ } ( ) [ ] . ; , = != < > <= >= ! && || + - * / ^^",
		LBrace, RBrace, LParen, RParen, LBracket, RBracket, Dot, Semicolon,
		Comma, Eq, Neq, Lt, Gt, Le, Ge, Not, AndAnd, OrOr, Plus, Minus,
		Star, Slash, HatHat)
}

func TestIRIRefVsLessThan(t *testing.T) {
	toks := expectSeq(t, "<http://example.org/x>", IRIRef)
	if toks[0].Val != "http://example.org/x" {
		t.Fatalf("IRI value = %q", toks[0].Val)
	}
	// '<' followed by a space is the operator.
	expectSeq(t, "?a < ?b", Var, Lt, Var)
	expectSeq(t, "?a <= 4", Var, Le, Integer)
	// A FILTER-style mix: IRI on the right of <.
	toks = expectSeq(t, "?a = <http://x/y>", Var, Eq, IRIRef)
	if toks[2].Val != "http://x/y" {
		t.Fatalf("IRI value = %q", toks[2].Val)
	}
}

func TestIRIUnicodeEscape(t *testing.T) {
	toks := expectSeq(t, `<http://ex/é>`, IRIRef)
	if toks[0].Val != "http://ex/é" {
		t.Fatalf("unicode escape: %q", toks[0].Val)
	}
}

func TestStrings(t *testing.T) {
	toks := expectSeq(t, `"hello" 'world' "a\"b" "tab\tend" "" '''long
multi''' """double "quote" inside"""`,
		String, String, String, String, String, String, String)
	vals := []string{"hello", "world", `a"b`, "tab\tend", "", "long\nmulti", `double "quote" inside`}
	for i, v := range vals {
		if toks[i].Val != v {
			t.Errorf("string %d = %q, want %q", i, toks[i].Val, v)
		}
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"new\nline\"", `"bad\qesc"`} {
		toks := All(src)
		last := toks[len(toks)-1]
		if last.Kind != Illegal {
			t.Errorf("lex(%q) should end Illegal, got %v", src, toks)
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := expectSeq(t, "42 3.14 1e6 2.5E-3 0", Integer, Decimal, Double, Double, Integer)
	if toks[0].Val != "42" || toks[1].Val != "3.14" || toks[2].Val != "1e6" {
		t.Fatalf("number vals: %v", toks)
	}
	// Turtle statement-final dot must not be swallowed by a number.
	expectSeq(t, "5 .", Integer, Dot)
	expectSeq(t, "5.", Integer, Dot)
	expectSeq(t, ".5", Decimal)
}

func TestVarsAndBlanks(t *testing.T) {
	toks := expectSeq(t, "?paper $a _:p1 _:node-2", Var, Var, BlankNode, BlankNode)
	if toks[0].Val != "paper" || toks[1].Val != "a" || toks[2].Val != "p1" || toks[3].Val != "node-2" {
		t.Fatalf("vals: %v", toks)
	}
}

func TestPNames(t *testing.T) {
	toks := expectSeq(t, "akt:has-author rdf:type kisti: :local a",
		PNameLN, PNameLN, PNameNS, PNameLN, Ident)
	if toks[0].Val != "akt:has-author" {
		t.Fatalf("pname = %q", toks[0].Val)
	}
	if toks[2].Val != "kisti" {
		t.Fatalf("pnameNS = %q", toks[2].Val)
	}
	if toks[3].Val != ":local" {
		t.Fatalf("default-ns pname = %q", toks[3].Val)
	}
}

func TestPNameTrailingDot(t *testing.T) {
	// "ex:foo." is PNameLN "ex:foo" followed by Dot (Turtle terminator).
	expectSeq(t, "ex:foo.", PNameLN, Dot)
	toks := All("ex:foo.bar.")
	if toks[0].Kind != PNameLN || toks[0].Val != "ex:foo.bar" {
		t.Fatalf("interior dot should stay in local name: %v", toks[0])
	}
	if toks[1].Kind != Dot {
		t.Fatalf("missing final Dot: %v", toks)
	}
}

func TestAtKeywordsAndLangTags(t *testing.T) {
	toks := expectSeq(t, `@prefix @base "x"@en "y"@en-GB`,
		AtKeyword, AtKeyword, String, LangTag, String, LangTag)
	if toks[0].Val != "prefix" || toks[1].Val != "base" {
		t.Fatalf("at-keywords: %v", toks)
	}
	if toks[3].Val != "en" || toks[5].Val != "en-GB" {
		t.Fatalf("lang tags: %v", toks)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	expectSeq(t, "# a comment\n?x # trailing\n\t?y", Var, Var)
}

func TestKeywordsAsIdents(t *testing.T) {
	toks := expectSeq(t, "SELECT DISTINCT WHERE FILTER true false",
		Ident, Ident, Ident, Ident, Ident, Ident)
	if toks[0].Val != "SELECT" || toks[4].Val != "true" {
		t.Fatalf("idents: %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks := All("?a\n  ?b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("tok0 pos = %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("tok1 pos = %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestIllegalInputs(t *testing.T) {
	for _, src := range []string{"&", "|", "^", "@", "?"} {
		toks := All(src)
		last := toks[len(toks)-1]
		if last.Kind != Illegal {
			t.Errorf("lex(%q) should produce Illegal, got %v", src, toks)
		}
	}
}

func TestUnterminatedIRIFallsBackToLessThan(t *testing.T) {
	// With no closing '>' in sight, '<' is the comparison operator; the
	// parser, not the lexer, rejects the resulting token stream.
	toks := All("<http://unterminated")
	if toks[0].Kind != Lt {
		t.Fatalf("expected Lt fallback, got %v", toks[0])
	}
}

func TestFigure1QueryLexes(t *testing.T) {
	src := `PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
	?paper akt:has-author id:person-02686 .
	?paper akt:has-author ?a .
	FILTER (!(?a = id:person-02686 ))
}`
	toks := All(src)
	last := toks[len(toks)-1]
	if last.Kind != EOF {
		t.Fatalf("Figure 1 query failed to lex: %v", last)
	}
	// Spot-check a few interesting tokens.
	var sawHasAuthor, sawPersonPName bool
	for _, tok := range toks {
		if tok.Kind == PNameLN && tok.Val == "akt:has-author" {
			sawHasAuthor = true
		}
		if tok.Kind == PNameLN && tok.Val == "id:person-02686" {
			sawPersonPName = true
		}
	}
	if !sawHasAuthor || !sawPersonPName {
		t.Fatal("expected prefixed names not found in Figure 1 tokens")
	}
}

func TestTokenString(t *testing.T) {
	for _, c := range []struct {
		tok  Token
		want string
	}{
		{Token{Kind: IRIRef, Val: "http://x"}, "<http://x>"},
		{Token{Kind: Var, Val: "a"}, "?a"},
		{Token{Kind: BlankNode, Val: "b"}, "_:b"},
		{Token{Kind: String, Val: "s"}, `"s"`},
		{Token{Kind: LBrace}, "{"},
		{Token{Kind: Ident, Val: "SELECT"}, "SELECT"},
	} {
		if got := c.tok.String(); got != c.want {
			t.Errorf("Token.String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(Kind(200).String(), "Kind(200)") {
		t.Error("unknown kind should render numerically")
	}
}
