// Package core implements the paper's primary contribution: the SPARQL
// query rewriting algorithm of §3.3 (Algorithm 1, `rewrite`, and
// Algorithm 2, `instFunction`), lifted from single basic graph patterns to
// whole queries (OPTIONAL/UNION/nested groups), with the fresh-variable
// discipline of §3.3 step 4, configurable behaviour when a functional
// dependency cannot be instantiated, and — as the §4 extension the paper
// leaves to future work — FILTER-aware rewriting that translates
// constraint constants through the same co-reference machinery.
package core

import (
	"fmt"
	"strconv"

	"sparqlrw/internal/align"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// FDPolicy selects what happens when a functional dependency fails to
// produce a value (typically: sameas finds no equivalent URI in the target
// URI space).
type FDPolicy uint8

const (
	// KeepOriginal binds the dependent variable to the untranslated source
	// term. The rewritten query is still well-formed; it simply returns no
	// results for that URI on the target — the observable behaviour of the
	// paper's deployed system when sameas.org knows no equivalent.
	KeepOriginal FDPolicy = iota
	// SkipAlignment abandons the matched alignment for that triple and
	// copies the source triple verbatim (leaving a source-vocabulary
	// pattern in the output).
	SkipAlignment
	// Fail aborts the whole rewrite with an error.
	Fail
)

// MatchMode selects how many alignments may fire per triple.
type MatchMode uint8

const (
	// FirstMatch applies the first matching alignment only — the paper's
	// Algorithm 1 semantics (align.match returns one match).
	FirstMatch MatchMode = iota
	// AllMatches applies every matching alignment, conjoining their RHS
	// instantiations into the output BGP; an ablation documented in
	// DESIGN.md.
	AllMatches
	// UnionMatches applies every matching alignment as an *alternative*:
	// a triple matched by k alignments becomes a k-branch UNION. This
	// closes the level-1 gap the paper notes in §3.2.2 — alignments onto
	// owl:unionOf targets "requir[e] surrogates from SPARQL language
	// (i.e. UNION)" that single-BGP rewriting cannot express.
	UnionMatches
)

// Options configure a Rewriter.
type Options struct {
	Policy    FDPolicy
	MatchMode MatchMode
	// RewriteFilters enables the §4 extension: FILTER constants are
	// translated into the target URI space via sameas.
	RewriteFilters bool
	// RewriteTemplate applies Algorithm 1 to a CONSTRUCT query's template
	// as well, so the constructed triples come out in the target
	// vocabulary. Off by default: the mediator's integration story keeps
	// the template in the source vocabulary (the user's requested output
	// shape) while only the WHERE clause is translated for each endpoint.
	RewriteTemplate bool
	// TargetURISpace is the regex of the target data set's URI space
	// (voiD uriSpace); required by RewriteFilters and used by the
	// Figure-6 warning detector.
	TargetURISpace string
	// FreshPrefix names generated variables (default "new", yielding
	// ?new1, ?new2, ... like the paper's ?_33/?_38 fresh variables).
	FreshPrefix string
}

// Rewriter rewrites queries using a fixed set of entity alignments.
type Rewriter struct {
	Alignments []*align.EntityAlignment
	Funcs      *funcs.Registry
	Opts       Options
}

// New returns a rewriter with default options (first-match, keep-original,
// paper-mode FILTER handling).
func New(alignments []*align.EntityAlignment, registry *funcs.Registry) *Rewriter {
	return &Rewriter{Alignments: alignments, Funcs: registry}
}

// TripleTrace records how one input triple pattern was rewritten; the
// concatenated traces reproduce the paper's §3.3.2 worked-example
// narration.
type TripleTrace struct {
	Input     rdf.Triple
	Alignment string // matched EA ID; empty when the triple was copied
	Binding   align.Binding
	Output    []rdf.Triple
	FDNotes   []string
}

// Report accumulates diagnostics across one rewrite.
type Report struct {
	Traces         []TripleTrace
	FreshVars      []string
	Warnings       []string
	MatchedTriples int
	CopiedTriples  int
	FilterRewrites int
	ValuesRewrites int
}

// warnf appends a formatted warning.
func (r *Report) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// rewriteState carries per-call mutable state (fresh variable generation).
type rewriteState struct {
	used    map[string]bool
	counter int
	prefix  string
	report  *Report
}

func (s *rewriteState) fresh() rdf.Term {
	for {
		s.counter++
		name := s.prefix + strconv.Itoa(s.counter)
		if !s.used[name] {
			s.used[name] = true
			s.report.FreshVars = append(s.report.FreshVars, name)
			return rdf.NewVar(name)
		}
	}
}

// RewriteQuery rewrites a whole query: every basic graph pattern in the
// WHERE clause is rewritten per Algorithm 1; FILTER sections are left
// untouched in paper mode (with a Figure-6 warning when they constrain
// source-URI-space constants) or translated in extended mode. CONSTRUCT
// templates are preserved by default (see Options.RewriteTemplate) and
// DESCRIBE resource IRIs are translated through sameas when a target URI
// space is configured. The input query is not modified.
func (rw *Rewriter) RewriteQuery(q *sparql.Query) (*sparql.Query, *Report, error) {
	report := &Report{}
	out := q.Clone()
	st := &rewriteState{used: map[string]bool{}, prefix: rw.Opts.FreshPrefix, report: report}
	if st.prefix == "" {
		st.prefix = "new"
	}
	// Seed the fresh-variable generator with every name in use — including
	// template variables, which the WHERE rewriting must never capture.
	for _, b := range out.BGPs() {
		for _, t := range b.Patterns {
			for _, v := range t.Vars() {
				st.used[v] = true
			}
		}
	}
	for _, t := range out.Template {
		for _, v := range t.Vars() {
			st.used[v] = true
		}
	}
	for _, t := range out.DescribeTerms {
		if t.IsVar() {
			st.used[t.Value] = true
		}
	}
	for _, f := range out.Filters() {
		for _, t := range sparql.ExprTerms(f.Expr) {
			if t.IsVar() {
				st.used[t.Value] = true
			}
		}
	}
	if err := rw.rewriteGroup(out.Where, st); err != nil {
		return nil, report, err
	}
	if rw.Opts.RewriteTemplate && len(out.Template) > 0 {
		tmpl, err := rw.rewriteBGP(out.Template, st)
		if err != nil {
			return nil, report, err
		}
		out.Template = tmpl
	}
	// DESCRIBE resources are instance URIs: translate them into the target
	// URI space like FILTER constants, so a description request formulated
	// with source URIs reaches the target's equivalents.
	if len(out.DescribeTerms) > 0 && rw.Opts.TargetURISpace != "" {
		pattern := rdf.NewLiteral(rw.Opts.TargetURISpace)
		for i, t := range out.DescribeTerms {
			if !t.IsIRI() {
				continue
			}
			if v, translated := rw.translateIRITerm(t, pattern); translated {
				out.DescribeTerms[i] = v
			}
		}
	}
	// Extend the prefix map (without clobbering user bindings) so the
	// rewritten query formats compactly, like the paper's Figure 3 which
	// introduces kid:/kisti: prefixes during rewriting.
	for p, ns := range map[string]string{
		"kid": "http://kisti.rkbexplorer.com/id/", "kisti": rdf.KISTINS,
		"akt": rdf.AKTNS, "dbo": rdf.DBONS, "foaf": rdf.FOAFNS,
	} {
		if _, ok := out.Prefixes.Namespace(p); !ok {
			out.Prefixes.Bind(p, ns)
		}
	}
	return out, report, nil
}

// rewriteGroup rewrites a group graph pattern tree in place (the tree is
// already a private clone). Under UnionMatches a BGP element may expand
// into a sequence of BGP and UNION elements, so the element list is
// rebuilt.
func (rw *Rewriter) rewriteGroup(g *sparql.GroupGraphPattern, st *rewriteState) error {
	if g == nil {
		return nil
	}
	var rebuilt []sparql.GroupElement
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *sparql.BGP:
			if rw.Opts.MatchMode == UnionMatches {
				els, err := rw.rewriteBGPUnion(e.Patterns, st)
				if err != nil {
					return err
				}
				rebuilt = append(rebuilt, els...)
				continue
			}
			pats, err := rw.rewriteBGP(e.Patterns, st)
			if err != nil {
				return err
			}
			e.Patterns = pats
		case *sparql.SubGroup:
			if err := rw.rewriteGroup(e.Group, st); err != nil {
				return err
			}
		case *sparql.Optional:
			if err := rw.rewriteGroup(e.Group, st); err != nil {
				return err
			}
		case *sparql.Union:
			for _, alt := range e.Alternatives {
				if err := rw.rewriteGroup(alt, st); err != nil {
					return err
				}
			}
		case *sparql.Filter:
			if rw.Opts.RewriteFilters {
				expr, n, err := rw.rewriteFilterExpr(e.Expr)
				if err != nil {
					return err
				}
				e.Expr = expr
				st.report.FilterRewrites += n
			} else {
				rw.detectFilterConflict(e.Expr, st.report)
			}
		case *sparql.InlineData:
			if rw.Opts.RewriteFilters {
				n, err := rw.rewriteInlineData(e)
				if err != nil {
					return err
				}
				st.report.ValuesRewrites += n
			} else {
				rw.detectInlineDataConflict(e, st.report)
			}
		}
		rebuilt = append(rebuilt, el)
	}
	g.Elements = rebuilt
	return nil
}

// rewriteBGPUnion is the UnionMatches variant of Algorithm 1: triples
// matched by several alignments become UNION elements whose branches are
// the alternative RHS instantiations; single-match and unmatched triples
// accumulate into ordinary BGP elements as usual.
func (rw *Rewriter) rewriteBGPUnion(patterns []rdf.Triple, st *rewriteState) ([]sparql.GroupElement, error) {
	var elements []sparql.GroupElement
	var cur []rdf.Triple
	flush := func() {
		if len(cur) > 0 {
			elements = append(elements, &sparql.BGP{Patterns: cur})
			cur = nil
		}
	}
	for _, t := range patterns {
		matches := align.AllMatches(rw.Alignments, t)
		switch len(matches) {
		case 0:
			cur = append(cur, t)
			st.report.CopiedTriples++
			st.report.Traces = append(st.report.Traces, TripleTrace{Input: t, Output: []rdf.Triple{t}})
		case 1:
			out, trace, err := rw.applyAlignment(t, matches[0], st)
			if err != nil {
				return nil, err
			}
			st.report.MatchedTriples++
			st.report.Traces = append(st.report.Traces, trace)
			cur = append(cur, out...)
		default:
			flush()
			st.report.MatchedTriples++
			union := &sparql.Union{}
			for _, m := range matches {
				out, trace, err := rw.applyAlignment(t, m, st)
				if err != nil {
					return nil, err
				}
				st.report.Traces = append(st.report.Traces, trace)
				union.Alternatives = append(union.Alternatives, &sparql.GroupGraphPattern{
					Elements: []sparql.GroupElement{&sparql.BGP{Patterns: out}},
				})
			}
			elements = append(elements, union)
		}
	}
	flush()
	return elements, nil
}

// RewriteBGP applies Algorithm 1 to one basic graph pattern and returns
// the rewritten patterns with a report (conveniently wrapping the
// query-level machinery for callers that hold bare pattern lists).
// UnionMatches cannot be expressed as a flat pattern list; use
// RewriteQuery for that mode.
func (rw *Rewriter) RewriteBGP(patterns []rdf.Triple) ([]rdf.Triple, *Report, error) {
	if rw.Opts.MatchMode == UnionMatches {
		return nil, nil, fmt.Errorf("core: UnionMatches produces UNION elements; use RewriteQuery")
	}
	report := &Report{}
	st := &rewriteState{used: map[string]bool{}, prefix: rw.Opts.FreshPrefix, report: report}
	if st.prefix == "" {
		st.prefix = "new"
	}
	for _, t := range patterns {
		for _, v := range t.Vars() {
			st.used[v] = true
		}
	}
	out, err := rw.rewriteBGP(patterns, st)
	return out, report, err
}

// rewriteBGP is Algorithm 1 (`rewrite(align, bgp)`): each triple is
// matched against the alignment set; matched triples are replaced by their
// instantiated RHS (after FD execution), unmatched triples are copied.
func (rw *Rewriter) rewriteBGP(patterns []rdf.Triple, st *rewriteState) ([]rdf.Triple, error) {
	var result []rdf.Triple
	for _, t := range patterns {
		var matches []align.MatchResult
		if rw.Opts.MatchMode == AllMatches {
			matches = align.AllMatches(rw.Alignments, t)
		} else if ea, b, ok := align.FirstMatch(rw.Alignments, t); ok {
			matches = []align.MatchResult{{Alignment: ea, Binding: b}}
		}
		if len(matches) == 0 {
			// Algorithm 1 line 12: result := result ∪ t
			result = append(result, t)
			st.report.CopiedTriples++
			st.report.Traces = append(st.report.Traces, TripleTrace{Input: t, Output: []rdf.Triple{t}})
			continue
		}
		st.report.MatchedTriples++
		for _, m := range matches {
			out, trace, err := rw.applyAlignment(t, m, st)
			if err != nil {
				return nil, err
			}
			result = append(result, out...)
			st.report.Traces = append(st.report.Traces, trace)
		}
	}
	return result, nil
}

// applyAlignment instantiates one matched alignment: Algorithm 2 over the
// functional dependencies, then RHS instantiation with fresh variables for
// the remaining free variables (§3.3 step 4).
func (rw *Rewriter) applyAlignment(t rdf.Triple, m align.MatchResult, st *rewriteState) ([]rdf.Triple, TripleTrace, error) {
	ea := m.Alignment
	binding := m.Binding.Clone()
	trace := TripleTrace{Input: t, Alignment: ea.ID}

	// Algorithm 2 (instFunction): instantiate every functional dependency
	// whose parameters are resolvable, extending the binding.
	for _, fd := range ea.FDs {
		params := make([]rdf.Term, len(fd.Args))
		for i, arg := range fd.Args {
			if arg.IsVar() || arg.IsBlank() {
				if v, ok := binding[arg.Value]; ok {
					params[i] = v // bound: use the binding (line 10)
				} else {
					params[i] = arg // unbound: pass the variable (line 12)
				}
			} else {
				params[i] = arg // ground parameter (line 12)
			}
		}
		if rw.Funcs == nil {
			return nil, trace, fmt.Errorf("core: alignment %s requires function <%s> but no registry is configured", ea.ID, fd.Func)
		}
		value, err := rw.Funcs.Call(fd.Func, params)
		if err != nil {
			switch rw.Opts.Policy {
			case Fail:
				return nil, trace, fmt.Errorf("core: rewriting %s with %s: %w", t, ea.ID, err)
			case SkipAlignment:
				trace.FDNotes = append(trace.FDNotes, err.Error()+" (alignment skipped)")
				trace.Alignment = ""
				trace.Output = []rdf.Triple{t}
				st.report.warnf("alignment %s skipped for %s: %v", ea.ID, t, err)
				return []rdf.Triple{t}, trace, nil
			default: // KeepOriginal
				if orig, ok := firstVarParam(fd, binding); ok {
					binding[fd.Var] = orig
					trace.FDNotes = append(trace.FDNotes, fmt.Sprintf("%v (kept original term %s)", err, orig))
					st.report.warnf("FD %s on %s kept original term: %v", fd, t, err)
					continue
				}
				trace.FDNotes = append(trace.FDNotes, err.Error()+" (left unbound)")
				st.report.warnf("FD %s on %s left unbound: %v", fd, t, err)
				continue
			}
		}
		// Line 16: binding[var] := result. When the function returned an
		// unbound variable (the sameas default mechanism), the dependent
		// variable aliases it, exactly as in the paper's worked example
		// ([?p2/?paper]).
		binding[fd.Var] = value
		trace.FDNotes = append(trace.FDNotes, fd.String()+" -> "+value.String())
	}

	// Instantiate the RHS under the final binding, binding all remaining
	// free variables to fresh ones so the same alignment can fire again in
	// this rewrite "without introducing unneeded constraints" (§3.3).
	freshLocal := map[string]rdf.Term{}
	instantiate := func(x rdf.Term) rdf.Term {
		if !x.IsVar() && !x.IsBlank() {
			return x
		}
		if v, ok := binding[x.Value]; ok {
			return v
		}
		if v, ok := freshLocal[x.Value]; ok {
			return v
		}
		f := st.fresh()
		freshLocal[x.Value] = f
		return f
	}
	var out []rdf.Triple
	for _, r := range ea.RHS {
		out = append(out, rdf.Triple{S: instantiate(r.S), P: instantiate(r.P), O: instantiate(r.O)})
	}
	trace.Binding = binding
	trace.Output = out
	return out, trace, nil
}

// firstVarParam returns the bound value of the first variable argument of
// fd, the "original term" the KeepOriginal policy falls back to.
func firstVarParam(fd align.FD, binding align.Binding) (rdf.Term, bool) {
	for _, arg := range fd.Args {
		if arg.IsVar() || arg.IsBlank() {
			if v, ok := binding[arg.Value]; ok {
				return v, true
			}
		}
	}
	return rdf.Term{}, false
}

// detectFilterConflict implements the paper-mode Figure 6 diagnostic: the
// BGP rewriting cannot see constraints hidden in FILTER expressions, so
// any ground IRI mentioned there — and, when a target URI space is known,
// specifically any IRI outside it — is flagged.
func (rw *Rewriter) detectFilterConflict(expr sparql.Expression, report *Report) {
	for _, t := range sparql.ExprTerms(expr) {
		if !t.IsIRI() {
			continue
		}
		report.warnf("FILTER constrains IRI <%s>; graph-pattern rewriting does not reach FILTER constants (paper §4, Figure 6) — enable RewriteFilters to translate them", t.Value)
	}
}

// rewriteFilterExpr is the §4 extension: IRI constants inside FILTER
// expressions are translated into the target URI space with the same
// sameas machinery the BGP rewriting uses. Vocabulary IRIs matched by a
// level-0 property/class alignment are substituted directly.
func (rw *Rewriter) rewriteFilterExpr(expr sparql.Expression) (sparql.Expression, int, error) {
	if rw.Opts.TargetURISpace == "" {
		return expr, 0, fmt.Errorf("core: RewriteFilters requires Options.TargetURISpace")
	}
	n := 0
	pattern := rdf.NewLiteral(rw.Opts.TargetURISpace)
	out := sparql.MapExprTerms(expr, func(t rdf.Term) rdf.Term {
		if !t.IsIRI() {
			return t
		}
		v, translated := rw.translateIRITerm(t, pattern)
		if translated {
			n++
		}
		return v
	})
	return out, n, nil
}

// translateIRITerm maps one ground IRI into the target vocabulary / URI
// space: level-0 property/class alignments substitute vocabulary terms,
// sameas translates instance URIs. The second return says whether the
// term changed.
func (rw *Rewriter) translateIRITerm(t rdf.Term, pattern rdf.Term) (rdf.Term, bool) {
	// Vocabulary substitution via simple (level-0) alignments.
	for _, ea := range rw.Alignments {
		if len(ea.RHS) == 1 && len(ea.FDs) == 0 &&
			ea.LHS.P.IsIRI() && ea.LHS.P.Value == t.Value && ea.RHS[0].P.IsIRI() {
			return ea.RHS[0].P, true
		}
		if ea.LHS.P.IsIRI() && ea.LHS.P.Value == rdf.RDFType &&
			ea.LHS.O.IsIRI() && ea.LHS.O.Value == t.Value &&
			len(ea.RHS) == 1 && ea.RHS[0].O.IsIRI() {
			return ea.RHS[0].O, true
		}
	}
	// Instance translation through sameas.
	if rw.Funcs != nil {
		if v, err := rw.Funcs.Call(rdf.MapSameAs, []rdf.Term{t, pattern}); err == nil {
			return v, v != t
		}
	}
	return t, false
}

// rewriteInlineData applies the same extension to VALUES rows: inline
// data constants are as unreachable by graph-pattern rewriting as FILTER
// constants, so sharded sub-queries would silently miss on rewritten
// targets without this.
func (rw *Rewriter) rewriteInlineData(d *sparql.InlineData) (int, error) {
	if rw.Opts.TargetURISpace == "" {
		return 0, fmt.Errorf("core: RewriteFilters requires Options.TargetURISpace")
	}
	pattern := rdf.NewLiteral(rw.Opts.TargetURISpace)
	n := 0
	for _, row := range d.Rows {
		for i, t := range row {
			if !t.IsIRI() {
				continue
			}
			if v, translated := rw.translateIRITerm(t, pattern); translated {
				row[i] = v
				n++
			}
		}
	}
	return n, nil
}

// detectInlineDataConflict mirrors the Figure-6 warning for VALUES rows:
// one warning per block (with the affected-IRI count), not per row —
// sharded blocks can carry hundreds of rows.
func (rw *Rewriter) detectInlineDataConflict(d *sparql.InlineData, report *Report) {
	iris := 0
	var first string
	for _, row := range d.Rows {
		for _, t := range row {
			if t.IsIRI() {
				if iris == 0 {
					first = t.Value
				}
				iris++
			}
		}
	}
	if iris > 0 {
		report.warnf("VALUES binds %d IRI(s) (first <%s>); graph-pattern rewriting does not reach inline data (cf. paper §4, Figure 6) — enable RewriteFilters to translate them", iris, first)
	}
}
