package core

import (
	"strings"
	"testing"

	"sparqlrw/internal/coref"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/workload"
)

const valuesQuery = `PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?paper WHERE {
  VALUES ?a { <http://southampton.rkbexplorer.com/id/person-02686> }
  ?paper akt:has-author ?a .
}`

func valuesRewriter() *Rewriter {
	cs := coref.NewStore()
	cs.Add("http://southampton.rkbexplorer.com/id/person-02686",
		"http://kisti.rkbexplorer.com/id/PER_00000000105047")
	return New(workload.AKT2KISTI().Alignments, funcs.StandardRegistry(cs))
}

func TestRewriteTranslatesValuesRows(t *testing.T) {
	rw := valuesRewriter()
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = workload.KistiURIPattern
	out, report, err := rw.RewriteQuery(sparql.MustParse(valuesQuery))
	if err != nil {
		t.Fatal(err)
	}
	text := sparql.Format(out)
	if strings.Contains(text, "person-02686") {
		t.Fatalf("VALUES row not translated:\n%s", text)
	}
	if !strings.Contains(text, "PER_00000000105047") {
		t.Fatalf("KISTI URI missing:\n%s", text)
	}
	if report.ValuesRewrites != 1 {
		t.Fatalf("ValuesRewrites = %d, want 1", report.ValuesRewrites)
	}
}

func TestPaperModeWarnsOnValuesRows(t *testing.T) {
	rw := valuesRewriter()
	out, report, err := rw.RewriteQuery(sparql.MustParse(valuesQuery))
	if err != nil {
		t.Fatal(err)
	}
	// Paper mode leaves inline data untouched but warns, like Figure 6.
	if !strings.Contains(sparql.Format(out), "person-02686") {
		t.Fatal("paper mode must not translate VALUES rows")
	}
	var warned bool
	for _, w := range report.Warnings {
		if strings.Contains(w, "VALUES") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no VALUES warning in %v", report.Warnings)
	}
}
