package core

import (
	"strings"
	"testing"

	"sparqlrw/internal/algebra"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

func TestRewriteAlgebraMatchesQueryRewriting(t *testing.T) {
	// Rewriting on the algebra tree gives the same results as rewriting
	// the syntax tree, on the paper's Figure 1 query over KISTI data.
	rw := paperRewriter()
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = kistiSpace
	q := sparql.MustParse(figure1)

	g, _, err := turtle.Parse(`
@prefix kisti: <http://www.kisti.re.kr/isrl/ResearchRefOntology#> .
@prefix kid: <http://kisti.rkbexplorer.com/id/> .
kid:ART_1 kisti:hasCreatorInfo kid:c0 , kid:c1 .
kid:c0 kisti:hasCreator kid:PER_00000000105047 .
kid:c1 kisti:hasCreator kid:PER_00000000200001 .
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AddGraph(g)
	engine := eval.New(st)

	// Path A: syntax-level rewriting, then translate and evaluate.
	qOut, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	resA, err := engine.Select(qOut)
	if err != nil {
		t.Fatal(err)
	}

	// Path B: translate first, then algebra-level rewriting.
	opOut, report, err := rw.RewriteAlgebra(algebra.Translate(q))
	if err != nil {
		t.Fatal(err)
	}
	solsB, err := engine.EvalAlgebra(opOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Solutions) != len(solsB) {
		t.Fatalf("syntax path %d vs algebra path %d solutions",
			len(resA.Solutions), len(solsB))
	}
	eval.SortSolutions(resA.Solutions)
	eval.SortSolutions(solsB)
	for i := range solsB {
		if resA.Solutions[i].Key() != solsB[i].Key() {
			t.Fatalf("solution %d differs: %v vs %v", i, resA.Solutions[i], solsB[i])
		}
	}
	if report.MatchedTriples != 2 {
		t.Fatalf("algebra report = %+v", report)
	}
	if report.FilterRewrites == 0 {
		t.Fatal("algebra path must rewrite the FILTER constant")
	}
	// The co-author answer is the other KISTI person.
	if len(solsB) != 1 || solsB[0]["a"].Value != "http://kisti.rkbexplorer.com/id/PER_00000000200001" {
		t.Fatalf("answers = %v", solsB)
	}
}

func TestRewriteAlgebraPreservesModifiers(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE { ?p akt:has-author ?a } ORDER BY ?a LIMIT 3 OFFSET 1`)
	out, _, err := rw.RewriteAlgebra(algebra.Translate(q))
	if err != nil {
		t.Fatal(err)
	}
	s := algebra.String(out)
	for _, want := range []string{"(slice limit=3 offset=1", "(distinct", "(order", "(project (a)"} {
		if !strings.Contains(s, want) {
			t.Errorf("algebra output missing %q:\n%s", want, s)
		}
	}
	// The BGP inside was rewritten to the KISTI chain.
	bgps := algebra.BGPs(out)
	if len(bgps) != 1 || len(bgps[0].Patterns) != 2 {
		t.Fatalf("BGPs = %v", bgps)
	}
}

func TestRewriteAlgebraOptionalAndUnion(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT * WHERE {
  ?p akt:has-author ?a
  OPTIONAL { ?p akt:has-title ?t FILTER (?t != "x") }
  { ?p akt:has-date ?d } UNION { ?p akt:has-author ?b }
}`)
	out, report, err := rw.RewriteAlgebra(algebra.Translate(q))
	if err != nil {
		t.Fatal(err)
	}
	var lj, un int
	algebra.Walk(out, func(op algebra.Op) {
		switch op.(type) {
		case *algebra.LeftJoin:
			lj++
		case *algebra.Union:
			un++
		}
	})
	if lj != 1 || un != 1 {
		t.Fatalf("structure lost: leftjoins=%d unions=%d", lj, un)
	}
	// has-author fired in the top BGP and in the union branch.
	if report.MatchedTriples != 2 {
		t.Fatalf("matched = %d", report.MatchedTriples)
	}
}

func TestRewriteAlgebraUnionMatches(t *testing.T) {
	rw := New(unionEAs(), nil)
	rw.Opts.MatchMode = UnionMatches
	q := sparql.MustParse(`SELECT ?x WHERE { ?x a <http://w1/Wine> }`)
	out, _, err := rw.RewriteAlgebra(algebra.Translate(q))
	if err != nil {
		t.Fatal(err)
	}
	unions := 0
	algebra.Walk(out, func(op algebra.Op) {
		if _, ok := op.(*algebra.Union); ok {
			unions++
		}
	})
	if unions != 1 {
		t.Fatalf("unions = %d:\n%s", unions, algebra.String(out))
	}
}

func TestRewriteAlgebraInputUntouched(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1)
	op := algebra.Translate(q)
	before := algebra.String(op)
	if _, _, err := rw.RewriteAlgebra(op); err != nil {
		t.Fatal(err)
	}
	if algebra.String(op) != before {
		t.Fatal("RewriteAlgebra mutated its input tree")
	}
}
