package core

import (
	"fmt"
	"math/rand"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/workload"
)

// The semantic soundness property behind the whole approach: for a
// vocabulary bijection (level-0 alignments), evaluating the original
// query over source data gives the same solutions as evaluating the
// REWRITTEN query over the target-vocabulary rendering of the same data.
// Randomised over data, query shape and seed.
func TestRewritePreservesSemanticsLevel0(t *testing.T) {
	const preds = 5
	var eas []*align.EntityAlignment
	rename := map[string]string{}
	for i := 0; i < preds; i++ {
		src := fmt.Sprintf("http://source.example/ontology#p%d", i)
		tgt := fmt.Sprintf("http://target.example/ontology#q%d", i)
		rename[src] = tgt
		eas = append(eas, align.PropertyAlignment(fmt.Sprintf("http://al/%d", i), src, tgt))
	}
	rw := New(eas, nil)

	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Random source data.
		srcStore, tgtStore := store.New(), store.New()
		for i := 0; i < 200; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://d/e%d", rng.Intn(20)))
			p := fmt.Sprintf("http://source.example/ontology#p%d", rng.Intn(preds))
			o := rdf.NewIRI(fmt.Sprintf("http://d/e%d", rng.Intn(20)))
			srcStore.Add(rdf.NewTriple(s, rdf.NewIRI(p), o))
			tgtStore.Add(rdf.NewTriple(s, rdf.NewIRI(rename[p]), o))
		}
		// Random star/chain query over 1..4 patterns.
		n := 1 + rng.Intn(4)
		body := ""
		for i := 0; i < n; i++ {
			p := rng.Intn(preds)
			if rng.Intn(2) == 0 {
				body += fmt.Sprintf("?x <http://source.example/ontology#p%d> ?y%d . ", p, i)
			} else {
				body += fmt.Sprintf("?y%d <http://source.example/ontology#p%d> ?x . ", i, p)
			}
		}
		q := sparql.MustParse("SELECT * WHERE { " + body + "}")

		rewritten, _, err := rw.RewriteQuery(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		srcRes, err := eval.New(srcStore).Select(q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tgtRes, err := eval.New(tgtStore).Select(rewritten)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eval.SortSolutions(srcRes.Solutions)
		eval.SortSolutions(tgtRes.Solutions)
		if len(srcRes.Solutions) != len(tgtRes.Solutions) {
			t.Fatalf("seed %d: %d vs %d solutions\nquery: %s\nrewritten: %s",
				seed, len(srcRes.Solutions), len(tgtRes.Solutions),
				sparql.Format(q), sparql.Format(rewritten))
		}
		for i := range srcRes.Solutions {
			if srcRes.Solutions[i].Key() != tgtRes.Solutions[i].Key() {
				t.Fatalf("seed %d: solution %d differs: %v vs %v",
					seed, i, srcRes.Solutions[i], tgtRes.Solutions[i])
			}
		}
	}
}

// The level-2 version of the same property on the full paper scenario:
// the Figure-1 query over Southampton equals the rewritten query over
// KISTI, for the mirrored portion of the data, after owl:sameAs
// canonicalisation of the answers.
func TestRewritePreservesSemanticsKISTI(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 30, 100
	cfg.Overlap = 1.0 // all papers mirrored: answer sets must coincide
	cfg.KistiExtra = 0
	u := workload.Generate(cfg)
	oa := workload.AKT2KISTI()
	rw := New(oa.Alignments, funcs.StandardRegistry(u.Coref))
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = workload.KistiURIPattern

	for person := 0; person < 10; person++ {
		q := sparql.MustParse(workload.Figure1Query(person))
		rewritten, _, err := rw.RewriteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		srcRes, err := eval.New(u.Southampton).Select(q)
		if err != nil {
			t.Fatal(err)
		}
		tgtRes, err := eval.New(u.KISTI).Select(rewritten)
		if err != nil {
			t.Fatal(err)
		}
		canon := func(sols []eval.Solution) map[string]bool {
			out := map[string]bool{}
			for _, s := range sols {
				out[u.Coref.Canonical(s["a"].Value)] = true
			}
			return out
		}
		src, tgt := canon(srcRes.Solutions), canon(tgtRes.Solutions)
		if len(src) != len(tgt) {
			t.Fatalf("person %d: %d vs %d canonical answers", person, len(src), len(tgt))
		}
		for k := range src {
			if !tgt[k] {
				t.Fatalf("person %d: answer %s missing from KISTI side", person, k)
			}
		}
	}
}

// Fuzz-ish robustness: RewriteQuery must never panic or corrupt structure
// for arbitrary well-formed queries, with and without matching alignments.
func TestRewriteRobustnessOnRandomQueries(t *testing.T) {
	rw := paperRewriter()
	rng := rand.New(rand.NewSource(11))
	preds := []string{
		"akt:has-author", "akt:has-title", "akt:has-date", "?p", "a",
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		body := ""
		for i := 0; i < n; i++ {
			pred := preds[rng.Intn(len(preds))]
			obj := fmt.Sprintf("?o%d", i)
			if rng.Intn(3) == 0 {
				obj = `"literal"`
			}
			if pred == "a" {
				obj = "akt:Person"
			}
			body += fmt.Sprintf("?s%d %s %s . ", rng.Intn(3), pred, obj)
		}
		if rng.Intn(2) == 0 {
			body += "OPTIONAL { ?s0 akt:has-author ?extra } "
		}
		if rng.Intn(2) == 0 {
			body += "FILTER (?o0 != ?s0) "
		}
		src := "PREFIX akt:<http://www.aktors.org/ontology/portal#> SELECT * WHERE { " + body + "}"
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: query generator produced invalid SPARQL: %v\n%s", trial, err, src)
		}
		out, _, err := rw.RewriteQuery(q)
		if err != nil {
			t.Fatalf("trial %d: rewrite error: %v\n%s", trial, err, src)
		}
		// Output always re-parses.
		if _, err := sparql.Parse(sparql.Format(out)); err != nil {
			t.Fatalf("trial %d: output does not re-parse: %v\n%s", trial, err, sparql.Format(out))
		}
	}
}

// Rewriting is deterministic: same inputs, same output text.
func TestRewriteDeterministic(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1)
	first, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	want := sparql.Format(first)
	for i := 0; i < 10; i++ {
		out, _, err := rw.RewriteQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if sparql.Format(out) != want {
			t.Fatal("rewrite output not deterministic")
		}
	}
}

// An empty coref store with variables-only queries never consults sameas
// (the default mechanism handles everything); no warnings, no failures.
func TestVariableOnlyQueriesNeedNoCoref(t *testing.T) {
	rw := New(workload.AKT2KISTI().Alignments, funcs.StandardRegistry(coref.NewStore()))
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p ?a WHERE { ?p akt:has-author ?a . ?p akt:has-title ?t }`)
	_, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", report.Warnings)
	}
}
