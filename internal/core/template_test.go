package core

import (
	"strings"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

const (
	srcNS = "http://source.example/ns#"
	tgtNS = "http://target.example/ns#"
)

func templateRewriter() *Rewriter {
	ea := align.PropertyAlignment("http://align.example/p", srcNS+"author", tgtNS+"creator")
	return New([]*align.EntityAlignment{ea}, funcs.StandardRegistry(nil))
}

// TestConstructTemplatePreservedByDefault: rewriting a CONSTRUCT
// translates the WHERE clause but leaves the template — the user's
// requested output shape — in the source vocabulary.
func TestConstructTemplatePreservedByDefault(t *testing.T) {
	rw := templateRewriter()
	q := sparql.MustParse(`PREFIX s:<` + srcNS + `>
CONSTRUCT { ?p s:author ?a } WHERE { ?p s:author ?a }`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Template[0].P.Value != srcNS+"author" {
		t.Fatalf("template rewritten without opt-in: %v", out.Template)
	}
	text := sparql.Format(out)
	if !strings.Contains(text, "WHERE") || !strings.Contains(text, tgtNS+"creator") &&
		!strings.Contains(text, "creator") {
		t.Fatalf("WHERE not rewritten:\n%s", text)
	}
}

// TestConstructTemplateRewriteOptIn: with RewriteTemplate the template
// triples go through Algorithm 1 too.
func TestConstructTemplateRewriteOptIn(t *testing.T) {
	rw := templateRewriter()
	rw.Opts.RewriteTemplate = true
	q := sparql.MustParse(`PREFIX s:<` + srcNS + `>
CONSTRUCT { ?p s:author ?a } WHERE { ?p s:author ?a }`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Template[0].P.Value != tgtNS+"creator" {
		t.Fatalf("template not rewritten: %v", out.Template)
	}
}

// TestTemplateVariablesSeedFreshGenerator: fresh variables introduced by
// the WHERE rewriting must never collide with names already used in the
// CONSTRUCT template.
func TestTemplateVariablesSeedFreshGenerator(t *testing.T) {
	// An alignment whose RHS introduces an extra free variable forces a
	// fresh variable during rewriting.
	ea := &align.EntityAlignment{
		ID:  "http://align.example/split",
		LHS: rdf.NewTriple(rdf.NewVar("p"), rdf.NewIRI(srcNS+"author"), rdf.NewVar("a")),
		RHS: []rdf.Triple{
			rdf.NewTriple(rdf.NewVar("p"), rdf.NewIRI(tgtNS+"creatorInfo"), rdf.NewVar("extra")),
			rdf.NewTriple(rdf.NewVar("extra"), rdf.NewIRI(tgtNS+"creator"), rdf.NewVar("a")),
		},
	}
	rw := New([]*align.EntityAlignment{ea}, funcs.StandardRegistry(nil))
	rw.Opts.FreshPrefix = "new"
	// The template already uses ?new1: the generator must skip it.
	q := sparql.MustParse(`PREFIX s:<` + srcNS + `>
CONSTRUCT { ?p s:related ?new1 . ?p s:author ?a } WHERE { ?p s:author ?a }`)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range report.FreshVars {
		if v == "new1" {
			t.Fatalf("fresh variable collided with template variable ?new1 (fresh: %v)", report.FreshVars)
		}
	}
	_ = out
}

// TestDescribeTermsTranslated: DESCRIBE resource IRIs translate into the
// target URI space like FILTER constants.
func TestDescribeTermsTranslated(t *testing.T) {
	cs := coref.NewStore()
	cs.Add("http://source.example/id/r1", "http://target.example/id/R1")
	rw := New(nil, funcs.StandardRegistry(cs))
	rw.Opts.TargetURISpace = `http://target\.example/id/\S*`
	q := sparql.MustParse(`DESCRIBE <http://source.example/id/r1>`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.DescribeTerms[0].Value != "http://target.example/id/R1" {
		t.Fatalf("DESCRIBE term not translated: %v", out.DescribeTerms)
	}
	// The input query is untouched.
	if q.DescribeTerms[0].Value != "http://source.example/id/r1" {
		t.Fatal("input query mutated")
	}
}
