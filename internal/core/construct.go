package core

import (
	"fmt"

	"sparqlrw/internal/align"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
)

// This file implements the CONSTRUCT-based data translation the paper
// discusses in §2: "Euzenat et al. proposed to use SPARQL query language
// in order to solve data translation problems relying on its features for
// extracting data and creating new triples using the CONSTRUCT statement.
// However, the problem of how to create dynamically such queries,
// exploiting the alignments that has been declared between ontologies, is
// still an open issue." — here the open issue is closed for our alignment
// formalism: every entity alignment compiles into a CONSTRUCT query whose
// WHERE clause is the alignment body (RHS, the pattern found in the
// target data) and whose template is the alignment head (LHS, the
// source-vocabulary triple it denotes).

// ConstructQuery compiles one entity alignment into a CONSTRUCT query
// that, run against target-vocabulary data, emits the corresponding
// source-vocabulary triples. Functional dependencies cannot run inside a
// plain SPARQL 1.0 endpoint, so alignments with FDs are compiled only
// when allowFDLoss is true (the URIs then stay in the target URI space;
// use internal/reason for FD-aware materialisation).
func ConstructQuery(ea *align.EntityAlignment, allowFDLoss bool) (*sparql.Query, error) {
	if len(ea.FDs) > 0 && !allowFDLoss {
		return nil, fmt.Errorf("core: alignment %s has functional dependencies; "+
			"plain CONSTRUCT translation would drop them", ea.ID)
	}
	q := sparql.NewQuery(sparql.Construct)
	q.Prefixes = rdf.StandardPrefixes()

	// FD-linked variable pairs (lhsVar -> rhsVar) collapse onto the RHS
	// variable so the template is connected to the WHERE clause.
	alias := map[string]string{}
	for _, fd := range ea.FDs {
		for _, a := range fd.Args {
			if a.IsVar() || a.IsBlank() {
				alias[a.Value] = fd.Var
				break
			}
		}
	}
	mapTerm := func(t rdf.Term) rdf.Term {
		if t.IsBlank() {
			t = rdf.NewVar(t.Value)
		}
		if t.IsVar() {
			if to, ok := alias[t.Value]; ok {
				return rdf.NewVar(to)
			}
		}
		return t
	}
	tmpl := rdf.Triple{S: mapTerm(ea.LHS.S), P: mapTerm(ea.LHS.P), O: mapTerm(ea.LHS.O)}
	q.Template = []rdf.Triple{tmpl}

	var body []rdf.Triple
	for _, t := range ea.RHS {
		body = append(body, rdf.Triple{S: mapTerm(t.S), P: mapTerm(t.P), O: mapTerm(t.O)})
	}
	q.Where = &sparql.GroupGraphPattern{Elements: []sparql.GroupElement{&sparql.BGP{Patterns: body}}}
	return q, nil
}

// ConstructQueries compiles a whole alignment set, skipping alignments
// that cannot be compiled (returned in skipped).
func ConstructQueries(eas []*align.EntityAlignment, allowFDLoss bool) (queries []*sparql.Query, skipped []string) {
	for _, ea := range eas {
		q, err := ConstructQuery(ea, allowFDLoss)
		if err != nil {
			skipped = append(skipped, ea.ID)
			continue
		}
		queries = append(queries, q)
	}
	return queries, skipped
}

// TranslateData runs the compiled CONSTRUCT queries over target data and
// returns the translated source-vocabulary graph — the pure-SPARQL
// materialisation path (compare internal/reason, which additionally
// executes functional dependencies).
func TranslateData(data *store.Store, eas []*align.EntityAlignment, allowFDLoss bool) (rdf.Graph, []string, error) {
	queries, skipped := ConstructQueries(eas, allowFDLoss)
	engine := eval.New(data)
	var out rdf.Graph
	for _, q := range queries {
		g, err := engine.Construct(q)
		if err != nil {
			return nil, skipped, err
		}
		out = append(out, g...)
	}
	return out.Dedup(), skipped, nil
}
