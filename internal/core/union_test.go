package core

import (
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

// unionEAs models the paper's §3.2.2 level-1 gap: a source concept that
// maps to a *union* of target concepts (owl:unionOf). Two alignments
// share the LHS; UnionMatches turns them into UNION branches.
func unionEAs() []*align.EntityAlignment {
	return []*align.EntityAlignment{
		align.ClassAlignment("http://al/wine1", "http://w1/Wine", "http://w2/RedWine"),
		align.ClassAlignment("http://al/wine2", "http://w1/Wine", "http://w2/WhiteWine"),
	}
}

func TestUnionMatchesProducesUnion(t *testing.T) {
	rw := New(unionEAs(), nil)
	rw.Opts.MatchMode = UnionMatches
	q := sparql.MustParse(`SELECT ?x WHERE { ?x a <http://w1/Wine> . ?x <http://w1/name> ?n }`)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	var union *sparql.Union
	var bgp *sparql.BGP
	for _, el := range out.Where.Elements {
		switch e := el.(type) {
		case *sparql.Union:
			union = e
		case *sparql.BGP:
			bgp = e
		}
	}
	if union == nil || len(union.Alternatives) != 2 {
		t.Fatalf("union missing or wrong arity: %#v", out.Where.Elements)
	}
	if bgp == nil || len(bgp.Patterns) != 1 || bgp.Patterns[0].P.Value != "http://w1/name" {
		t.Fatalf("unmatched triple lost: %#v", bgp)
	}
	if report.MatchedTriples != 1 || report.CopiedTriples != 1 {
		t.Fatalf("report = %+v", report)
	}
	// Output re-parses.
	if _, err := sparql.Parse(sparql.Format(out)); err != nil {
		t.Fatalf("reparse: %v\n%s", err, sparql.Format(out))
	}
}

// TestUnionMatchesSemantics: data rendered under either target concept is
// found by the union-rewritten query — the completeness that first-match
// rewriting loses.
func TestUnionMatchesSemantics(t *testing.T) {
	g, _, err := turtle.Parse(`
@prefix w2: <http://w2/> .
<http://d/a> a w2:RedWine .
<http://d/b> a w2:WhiteWine .
<http://d/c> a w2:Beer .
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AddGraph(g)
	q := sparql.MustParse(`SELECT ?x WHERE { ?x a <http://w1/Wine> }`)

	// First-match: only RedWine found.
	first := New(unionEAs(), nil)
	fOut, _, err := first.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	fRes, err := eval.New(st).Select(fOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(fRes.Solutions) != 1 {
		t.Fatalf("first-match found %d, want 1", len(fRes.Solutions))
	}

	// UnionMatches: both wines found, beer excluded.
	u := New(unionEAs(), nil)
	u.Opts.MatchMode = UnionMatches
	uOut, _, err := u.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	uRes, err := eval.New(st).Select(uOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(uRes.Solutions) != 2 {
		t.Fatalf("union-matches found %d, want 2: %v\n%s",
			len(uRes.Solutions), uRes.Solutions, sparql.Format(uOut))
	}
	found := map[string]bool{}
	for _, s := range uRes.Solutions {
		found[s["x"].Value] = true
	}
	if !found["http://d/a"] || !found["http://d/b"] || found["http://d/c"] {
		t.Fatalf("wrong entities: %v", found)
	}
}

func TestUnionMatchesSingleMatchStaysBGP(t *testing.T) {
	// With exactly one matching alignment, no UNION is introduced.
	rw := New([]*align.EntityAlignment{
		align.PropertyAlignment("http://al/p", "http://src/p", "http://tgt/p"),
	}, nil)
	rw.Opts.MatchMode = UnionMatches
	q := sparql.MustParse(`SELECT ?o WHERE { ?s <http://src/p> ?o }`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Where.Elements) != 1 {
		t.Fatalf("elements = %#v", out.Where.Elements)
	}
	if _, ok := out.Where.Elements[0].(*sparql.BGP); !ok {
		t.Fatalf("expected plain BGP, got %T", out.Where.Elements[0])
	}
}

func TestUnionMatchesWithFDs(t *testing.T) {
	// The union branches run FDs independently (sameas translation per
	// branch).
	rw := New([]*align.EntityAlignment{
		creatorInfoEA(),
		align.PropertyAlignment("http://al/direct", rdf.AKTHasAuthor, "http://alt/author"),
	}, paperRewriter().Funcs)
	rw.Opts.MatchMode = UnionMatches
	q := sparql.MustParse(figure1)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	unions := 0
	sparql.Walk(out.Where, func(el sparql.GroupElement) {
		if _, ok := el.(*sparql.Union); ok {
			unions++
		}
	})
	if unions != 2 {
		t.Fatalf("unions = %d, want 2 (one per authored triple)", unions)
	}
}

func TestRewriteBGPRejectsUnionMatches(t *testing.T) {
	rw := New(unionEAs(), nil)
	rw.Opts.MatchMode = UnionMatches
	if _, _, err := rw.RewriteBGP([]rdf.Triple{
		{S: rdf.NewVar("x"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("http://w1/Wine")},
	}); err == nil {
		t.Fatal("RewriteBGP must reject UnionMatches")
	}
}
