package core

import (
	"strings"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// TestRewriteChainTwoHops models the peer scenario of §3: a query in
// ontology A reaches a C-vocabulary peer through B, with URI translation
// at each hop.
func TestRewriteChainTwoHops(t *testing.T) {
	aNS, bNS, cNS := "http://peers.example/a#", "http://peers.example/b#", "http://peers.example/c#"
	cs := coref.NewStore()
	cs.Add("http://a.example/id/1", "http://b.example/id/1")
	cs.Add("http://b.example/id/1", "http://c.example/id/1")
	reg := funcs.StandardRegistry(cs)

	mkEA := func(id, p1, p2, space string) *align.EntityAlignment {
		return &align.EntityAlignment{
			ID:  id,
			LHS: rdf.Triple{S: rdf.NewVar("s1"), P: rdf.NewIRI(p1), O: rdf.NewVar("o")},
			RHS: []rdf.Triple{{S: rdf.NewVar("s2"), P: rdf.NewIRI(p2), O: rdf.NewVar("o")}},
			FDs: []align.FD{{Var: "s2", Func: rdf.MapSameAs,
				Args: []rdf.Term{rdf.NewVar("s1"), rdf.NewLiteral(space)}}},
		}
	}
	a2b := New([]*align.EntityAlignment{mkEA("http://al/a2b", aNS+"p", bNS+"p", `http://b\.example/id/\S*`)}, reg)
	b2c := New([]*align.EntityAlignment{mkEA("http://al/b2c", bNS+"p", cNS+"p", `http://c\.example/id/\S*`)}, reg)

	q := sparql.MustParse(`SELECT ?o WHERE { <http://a.example/id/1> <` + aNS + `p> ?o }`)
	out, report, err := RewriteChain(q, []Stage{
		{Name: "a→b", Rewriter: a2b},
		{Name: "b→c", Rewriter: b2c},
	})
	if err != nil {
		t.Fatal(err)
	}
	pat := out.BGPs()[0].Patterns[0]
	if pat.P.Value != cNS+"p" {
		t.Fatalf("predicate after chain = %v", pat.P)
	}
	if pat.S != rdf.NewIRI("http://c.example/id/1") {
		t.Fatalf("subject after chain = %v (URI must hop a→b→c)", pat.S)
	}
	if len(report.Stages) != 2 || report.Stages[0] != "a→b" {
		t.Fatalf("report stages = %v", report.Stages)
	}
}

func TestRewriteChainErrors(t *testing.T) {
	q := sparql.MustParse(`SELECT ?o WHERE { ?s ?p ?o }`)
	if _, _, err := RewriteChain(q, nil); err == nil {
		t.Fatal("empty chain must error")
	}
	if _, _, err := RewriteChain(q, []Stage{{Name: "broken"}}); err == nil {
		t.Fatal("nil rewriter must error")
	}
	// A failing stage propagates with its stage name.
	rw := New([]*align.EntityAlignment{creatorInfoEA()}, funcs.StandardRegistry(coref.NewStore()))
	rw.Opts.Policy = Fail
	qq := sparql.MustParse(figure1)
	_, _, err := RewriteChain(qq, []Stage{{Name: "akt→kisti", Rewriter: rw}})
	if err == nil || !strings.Contains(err.Error(), "akt→kisti") {
		t.Fatalf("stage error = %v", err)
	}
}

func TestChainReportWarnings(t *testing.T) {
	rw := paperRewriter() // KeepOriginal: warnings on unknown URIs
	q := sparql.MustParse(`
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p WHERE { ?p akt:has-author id:person-99999 }`)
	_, report, err := RewriteChain(q, []Stage{{Name: "hop1", Rewriter: rw}})
	if err != nil {
		t.Fatal(err)
	}
	ws := report.Warnings()
	if len(ws) == 0 || !strings.HasPrefix(ws[0], "hop1: ") {
		t.Fatalf("warnings = %v", ws)
	}
}
