package core

import (
	"fmt"

	"sparqlrw/internal/sparql"
)

// This file implements peer-to-peer rewriting chains. §3 of the paper:
// "The approach to data integration is similar to the one adopted in peer
// data management systems where queries can be rewritten multiple times,
// depending on where the query will be executed." A Chain composes
// rewriters so a query formulated for ontology A reaches a data set in
// ontology C through an intermediate B when no direct A→C alignment
// exists.

// Stage is one hop of a rewriting chain.
type Stage struct {
	// Name labels the hop in reports (e.g. "akt→kisti").
	Name string
	// Rewriter performs this hop.
	Rewriter *Rewriter
}

// ChainReport collects per-stage reports.
type ChainReport struct {
	Stages  []string
	Reports []*Report
}

// Warnings flattens all stage warnings, prefixed by stage name.
func (cr *ChainReport) Warnings() []string {
	var out []string
	for i, r := range cr.Reports {
		for _, w := range r.Warnings {
			out = append(out, cr.Stages[i]+": "+w)
		}
	}
	return out
}

// RewriteChain applies the stages left to right. Each stage sees the
// previous stage's output, exactly as a query travelling across peers
// would be rewritten at every hop.
func RewriteChain(q *sparql.Query, stages []Stage) (*sparql.Query, *ChainReport, error) {
	if len(stages) == 0 {
		return nil, nil, fmt.Errorf("core: empty rewriting chain")
	}
	report := &ChainReport{}
	cur := q
	for i, st := range stages {
		if st.Rewriter == nil {
			return nil, report, fmt.Errorf("core: chain stage %d (%s) has no rewriter", i, st.Name)
		}
		out, r, err := st.Rewriter.RewriteQuery(cur)
		if err != nil {
			return nil, report, fmt.Errorf("core: chain stage %d (%s): %w", i, st.Name, err)
		}
		report.Stages = append(report.Stages, st.Name)
		report.Reports = append(report.Reports, r)
		cur = out
	}
	return cur, report, nil
}
