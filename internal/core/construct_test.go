package core

import (
	"strings"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

func TestConstructQueryLevel0(t *testing.T) {
	ea := align.PropertyAlignment("http://a/title", rdf.AKTHasTitle, rdf.KISTITitle)
	q, err := ConstructQuery(ea, false)
	if err != nil {
		t.Fatal(err)
	}
	text := sparql.Format(q)
	if !strings.Contains(text, "CONSTRUCT") {
		t.Fatalf("not a construct:\n%s", text)
	}
	// Template uses the source (AKT) vocabulary, body the target (KISTI).
	if q.Template[0].P.Value != rdf.AKTHasTitle {
		t.Fatalf("template predicate = %v", q.Template[0].P)
	}
	if q.BGPs()[0].Patterns[0].P.Value != rdf.KISTITitle {
		t.Fatalf("body predicate = %v", q.BGPs()[0].Patterns[0].P)
	}
	// And it re-parses.
	if _, err := sparql.Parse(text); err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
}

func TestConstructQueryChainAlignment(t *testing.T) {
	// The creator_info alignment compiles with FD loss allowed: the
	// CreatorInfo chain in the body, a flat has-author in the template.
	ea := creatorInfoEA()
	if _, err := ConstructQuery(ea, false); err == nil {
		t.Fatal("FD alignment must be rejected without allowFDLoss")
	}
	q, err := ConstructQuery(ea, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.BGPs()[0].Patterns) != 2 {
		t.Fatalf("body = %v", q.BGPs()[0].Patterns)
	}
	// FD aliasing connects template vars to body vars: template must use
	// ?p2/?a2 (the body-side variables).
	tmpl := q.Template[0]
	if tmpl.S != rdf.NewVar("p2") || tmpl.O != rdf.NewVar("a2") {
		t.Fatalf("template = %v", tmpl)
	}
}

func TestTranslateDataEndToEnd(t *testing.T) {
	// KISTI-shaped data translated into AKT vocabulary via CONSTRUCT.
	g, _, err := turtle.Parse(`
@prefix kisti: <http://www.kisti.re.kr/isrl/ResearchRefOntology#> .
@prefix kid: <http://kisti.rkbexplorer.com/id/> .
kid:ART_1 kisti:hasCreatorInfo kid:ci0 ; kisti:title "T1" .
kid:ci0 kisti:hasCreator kid:PER_1 .
kid:ART_2 kisti:hasCreatorInfo kid:ci1 ; kisti:title "T2" .
kid:ci1 kisti:hasCreator kid:PER_1 .
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AddGraph(g)
	eas := []*align.EntityAlignment{
		creatorInfoEA(),
		align.PropertyAlignment("http://a/title", rdf.AKTHasTitle, rdf.KISTITitle),
	}
	out, skipped, err := TranslateData(st, eas, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	// 2 has-author + 2 has-title triples
	authors, titles := 0, 0
	for _, tr := range out {
		switch tr.P.Value {
		case rdf.AKTHasAuthor:
			authors++
		case rdf.AKTHasTitle:
			titles++
		}
	}
	if authors != 2 || titles != 2 {
		t.Fatalf("translated graph wrong: %v", out)
	}
	// The translated view answers AKT queries.
	view := store.New()
	view.AddGraph(out)
	res, err := eval.New(view).Select(sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p WHERE { ?p akt:has-author <http://kisti.rkbexplorer.com/id/PER_1> }`))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("view answers = %v", res.Solutions)
	}
}

func TestConstructQueriesSkipsWithoutFDLoss(t *testing.T) {
	eas := []*align.EntityAlignment{
		creatorInfoEA(),
		align.PropertyAlignment("http://a/title", rdf.AKTHasTitle, rdf.KISTITitle),
	}
	qs, skipped := ConstructQueries(eas, false)
	if len(qs) != 1 || len(skipped) != 1 {
		t.Fatalf("qs=%d skipped=%v", len(qs), skipped)
	}
}
