package core

import (
	"fmt"

	"sparqlrw/internal/algebra"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// RewriteAlgebra carries out the paper's §4 proposal in full: rewriting
// over the SPARQL algebra, "that offers the advantage of an homogeneous
// representation of the whole query (LISP like structures)". Basic graph
// patterns are rewritten exactly as in Algorithm 1; FILTER expressions —
// the Figure 6 problem — are ordinary tree nodes here and are translated
// uniformly when Options.RewriteFilters is set. The input tree is not
// modified.
func (rw *Rewriter) RewriteAlgebra(op algebra.Op) (algebra.Op, *Report, error) {
	report := &Report{}
	st := &rewriteState{used: map[string]bool{}, prefix: rw.Opts.FreshPrefix, report: report}
	if st.prefix == "" {
		st.prefix = "new"
	}
	// Seed the fresh-variable generator with names used anywhere in the
	// tree.
	algebra.Walk(op, func(o algebra.Op) {
		switch n := o.(type) {
		case *algebra.BGP:
			for _, t := range n.Patterns {
				for _, v := range t.Vars() {
					st.used[v] = true
				}
			}
		case *algebra.Filter:
			for _, t := range sparql.ExprTerms(n.Expr) {
				if t.IsVar() {
					st.used[t.Value] = true
				}
			}
		}
	})
	out, err := rw.rewriteOp(op, st)
	return out, report, err
}

func (rw *Rewriter) rewriteOp(op algebra.Op, st *rewriteState) (algebra.Op, error) {
	switch o := op.(type) {
	case nil:
		return nil, nil
	case *algebra.Unit:
		return &algebra.Unit{}, nil
	case *algebra.BGP:
		if rw.Opts.MatchMode == UnionMatches {
			return rw.rewriteBGPAlgebraUnion(o.Patterns, st)
		}
		pats, err := rw.rewriteBGP(o.Patterns, st)
		if err != nil {
			return nil, err
		}
		return &algebra.BGP{Patterns: pats}, nil
	case *algebra.Join:
		l, err := rw.rewriteOp(o.L, st)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteOp(o.R, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Join{L: l, R: r}, nil
	case *algebra.LeftJoin:
		l, err := rw.rewriteOp(o.L, st)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteOp(o.R, st)
		if err != nil {
			return nil, err
		}
		expr, err := rw.rewriteExprMaybe(o.Expr, st)
		if err != nil {
			return nil, err
		}
		return &algebra.LeftJoin{L: l, R: r, Expr: expr}, nil
	case *algebra.Union:
		l, err := rw.rewriteOp(o.L, st)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewriteOp(o.R, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Union{L: l, R: r}, nil
	case *algebra.Filter:
		in, err := rw.rewriteOp(o.Input, st)
		if err != nil {
			return nil, err
		}
		expr, err := rw.rewriteExprMaybe(o.Expr, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Filter{Expr: expr, Input: in}, nil
	case *algebra.Project:
		in, err := rw.rewriteOp(o.Input, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Project{Vars: append([]string(nil), o.Vars...), Star: o.Star, Input: in}, nil
	case *algebra.Distinct:
		in, err := rw.rewriteOp(o.Input, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Distinct{Input: in}, nil
	case *algebra.Reduced:
		in, err := rw.rewriteOp(o.Input, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Reduced{Input: in}, nil
	case *algebra.OrderBy:
		in, err := rw.rewriteOp(o.Input, st)
		if err != nil {
			return nil, err
		}
		conds := make([]sparql.OrderCondition, len(o.Conds))
		for i, c := range o.Conds {
			expr, err := rw.rewriteExprMaybe(c.Expr, st)
			if err != nil {
				return nil, err
			}
			conds[i] = sparql.OrderCondition{Expr: expr, Desc: c.Desc}
		}
		return &algebra.OrderBy{Conds: conds, Input: in}, nil
	case *algebra.Slice:
		in, err := rw.rewriteOp(o.Input, st)
		if err != nil {
			return nil, err
		}
		return &algebra.Slice{Limit: o.Limit, Offset: o.Offset, Input: in}, nil
	default:
		return nil, fmt.Errorf("core: unsupported algebra node %T", op)
	}
}

// rewriteExprMaybe translates expression constants when the FILTER
// extension is on, or records Figure-6 warnings when it is off.
func (rw *Rewriter) rewriteExprMaybe(expr sparql.Expression, st *rewriteState) (sparql.Expression, error) {
	if expr == nil {
		return nil, nil
	}
	if !rw.Opts.RewriteFilters {
		rw.detectFilterConflict(expr, st.report)
		return expr, nil
	}
	out, n, err := rw.rewriteFilterExpr(expr)
	if err != nil {
		return nil, err
	}
	st.report.FilterRewrites += n
	return out, nil
}

// rewriteBGPAlgebraUnion is the algebra counterpart of rewriteBGPUnion:
// alternatives become algebra.Union joins.
func (rw *Rewriter) rewriteBGPAlgebraUnion(patterns []rdf.Triple, st *rewriteState) (algebra.Op, error) {
	q := &sparql.GroupGraphPattern{Elements: []sparql.GroupElement{
		&sparql.BGP{Patterns: append([]rdf.Triple(nil), patterns...)},
	}}
	if err := rw.rewriteGroup(q, st); err != nil {
		return nil, err
	}
	return algebra.TranslateGroup(q), nil
}
