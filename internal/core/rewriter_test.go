package core

import (
	"strings"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// Paper fixtures: the Figure 1 query, the §3.2.2 creator_info alignment
// and the co-reference links used in the worked example (§3.3.2).

const figure1 = `PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author id:person-02686 .
  ?paper akt:has-author ?a .
  FILTER (!(?a = id:person-02686 ))
}`

const figure6 = `PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author ?n.
  ?paper akt:has-author ?a.
  FILTER (!(?a = id:person-02686 ) &&
          (?n = id:person-02686))
}`

const (
	sotonPerson = "http://southampton.rkbexplorer.com/id/person-02686"
	kistiPerson = "http://kisti.rkbexplorer.com/id/PER_00000000105047"
	kistiSpace  = `http://kisti\.rkbexplorer\.com/id/\S*`
)

func paperCoref() *coref.Store {
	s := coref.NewStore()
	s.Add(sotonPerson, kistiPerson)
	s.Add(sotonPerson, "http://dbpedia.org/resource/Nigel_Shadbolt")
	return s
}

func creatorInfoEA() *align.EntityAlignment {
	pat := rdf.NewLiteral(kistiSpace)
	return &align.EntityAlignment{
		ID:  "http://ecs.soton.ac.uk/alignments/akt2kisti#creator_info",
		LHS: rdf.Triple{S: rdf.NewVar("p1"), P: rdf.NewIRI(rdf.AKTHasAuthor), O: rdf.NewVar("a1")},
		RHS: []rdf.Triple{
			{S: rdf.NewVar("p2"), P: rdf.NewIRI(rdf.KISTIHasCreatorInfo), O: rdf.NewVar("c")},
			{S: rdf.NewVar("c"), P: rdf.NewIRI(rdf.KISTIHasCreator), O: rdf.NewVar("a2")},
		},
		FDs: []align.FD{
			{Var: "a2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("a1"), pat}},
			{Var: "p2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("p1"), pat}},
		},
	}
}

func paperRewriter() *Rewriter {
	return New([]*align.EntityAlignment{creatorInfoEA()}, funcs.StandardRegistry(paperCoref()))
}

// TestE3_RewrittenQueryShape reproduces the paper's worked example end to
// end: Figure 1 in, Figure 3's structure out.
func TestE3_RewrittenQueryShape(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	bgps := out.BGPs()
	if len(bgps) != 1 {
		t.Fatalf("BGPs = %d", len(bgps))
	}
	pats := bgps[0].Patterns
	if len(pats) != 4 {
		t.Fatalf("rewritten patterns = %d, want 4 (Figure 3):\n%v", len(pats), pats)
	}
	// Pattern 1: ?paper kisti:hasCreatorInfo ?new1
	if pats[0].S != rdf.NewVar("paper") || pats[0].P.Value != rdf.KISTIHasCreatorInfo || !pats[0].O.IsVar() {
		t.Fatalf("pattern 0 = %v", pats[0])
	}
	// Pattern 2: ?new1 kisti:hasCreator <kisti person URI>
	if pats[1].S != pats[0].O || pats[1].P.Value != rdf.KISTIHasCreator {
		t.Fatalf("pattern 1 = %v", pats[1])
	}
	if pats[1].O != rdf.NewIRI(kistiPerson) {
		t.Fatalf("person URI not translated: %v", pats[1].O)
	}
	// Pattern 3: ?paper kisti:hasCreatorInfo ?new2 with ?new2 != ?new1
	if pats[2].S != rdf.NewVar("paper") || pats[2].P.Value != rdf.KISTIHasCreatorInfo {
		t.Fatalf("pattern 2 = %v", pats[2])
	}
	if pats[2].O == pats[0].O {
		t.Fatal("fresh variables must differ between alignment applications")
	}
	// Pattern 4: ?new2 kisti:hasCreator ?a (the projected variable kept)
	if pats[3].S != pats[2].O || pats[3].O != rdf.NewVar("a") {
		t.Fatalf("pattern 3 = %v", pats[3])
	}
	// Projection and modifiers survive.
	if !out.Distinct || len(out.SelectVars) != 1 || out.SelectVars[0] != "a" {
		t.Fatal("SELECT header lost")
	}
	// Report bookkeeping.
	if report.MatchedTriples != 2 || report.CopiedTriples != 0 {
		t.Fatalf("report = %+v", report)
	}
	if len(report.FreshVars) != 2 {
		t.Fatalf("fresh vars = %v", report.FreshVars)
	}
	// Paper mode: the FILTER still mentions the southampton URI, which
	// must be flagged as a Figure-6-style conflict.
	found := false
	for _, w := range report.Warnings {
		if strings.Contains(w, "person-02686") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected FILTER warning, got %v", report.Warnings)
	}
	// The output serialises and re-parses.
	text := sparql.Format(out)
	if _, err := sparql.Parse(text); err != nil {
		t.Fatalf("rewritten query does not re-parse: %v\n%s", err, text)
	}
	if !strings.Contains(text, "kisti:hasCreatorInfo") {
		t.Fatalf("expected kisti vocabulary in output:\n%s", text)
	}
}

// TestWorkedExampleTrace checks the §3.3.2 substitution narration: the
// bindings the paper spells out appear in the trace.
func TestWorkedExampleTrace(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1)
	_, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Traces) != 2 {
		t.Fatalf("traces = %d", len(report.Traces))
	}
	// First triple: ?a1 bound to the ground person URI, ?a2 to its KISTI
	// equivalent, ?p1/?p2 to the query variable ?paper.
	tr := report.Traces[0]
	if tr.Binding["a1"] != rdf.NewIRI(sotonPerson) {
		t.Fatalf("a1 = %v", tr.Binding["a1"])
	}
	if tr.Binding["a2"] != rdf.NewIRI(kistiPerson) {
		t.Fatalf("a2 = %v", tr.Binding["a2"])
	}
	if tr.Binding["p1"] != rdf.NewVar("paper") || tr.Binding["p2"] != rdf.NewVar("paper") {
		t.Fatalf("p1/p2 = %v/%v", tr.Binding["p1"], tr.Binding["p2"])
	}
	// Second triple: ?a1 bound to the query variable ?a; sameas defaults.
	tr2 := report.Traces[1]
	if tr2.Binding["a1"] != rdf.NewVar("a") || tr2.Binding["a2"] != rdf.NewVar("a") {
		t.Fatalf("second triple bindings = %v", tr2.Binding)
	}
}

func TestUnmatchedTriplesCopied(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?t WHERE { ?p akt:has-title ?t }`)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	pats := out.BGPs()[0].Patterns
	if len(pats) != 1 || pats[0].P.Value != rdf.AKTHasTitle {
		t.Fatalf("copied triple changed: %v", pats)
	}
	if report.CopiedTriples != 1 || report.MatchedTriples != 0 {
		t.Fatalf("report = %+v", report)
	}
}

func TestLevel0Alignments(t *testing.T) {
	eas := []*align.EntityAlignment{
		align.ClassAlignment("c", rdf.AKTPerson, rdf.KISTIPerson),
		align.PropertyAlignment("p", rdf.AKTHasTitle, rdf.KISTITitle),
	}
	rw := New(eas, funcs.StandardRegistry(paperCoref()))
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?x ?t WHERE { ?x a akt:Person ; akt:has-title ?t }`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	pats := out.BGPs()[0].Patterns
	if pats[0].O.Value != rdf.KISTIPerson {
		t.Fatalf("class not translated: %v", pats[0])
	}
	if pats[1].P.Value != rdf.KISTITitle {
		t.Fatalf("property not translated: %v", pats[1])
	}
	// Variables are preserved untouched by level-0 alignments.
	if pats[0].S != rdf.NewVar("x") || pats[1].O != rdf.NewVar("t") {
		t.Fatalf("variables damaged: %v", pats)
	}
}

func TestFDPolicyKeepOriginal(t *testing.T) {
	// A person with no KISTI equivalent: keep the original URI.
	rw := paperRewriter() // default KeepOriginal
	q := sparql.MustParse(`
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p WHERE { ?p akt:has-author id:person-99999 }`)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	pats := out.BGPs()[0].Patterns
	if len(pats) != 2 {
		t.Fatalf("patterns = %v", pats)
	}
	if pats[1].O != rdf.NewIRI("http://southampton.rkbexplorer.com/id/person-99999") {
		t.Fatalf("original URI not kept: %v", pats[1])
	}
	if len(report.Warnings) == 0 {
		t.Fatal("expected warning about failed FD")
	}
}

func TestFDPolicySkipAlignment(t *testing.T) {
	rw := paperRewriter()
	rw.Opts.Policy = SkipAlignment
	q := sparql.MustParse(`
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p WHERE { ?p akt:has-author id:person-99999 }`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	pats := out.BGPs()[0].Patterns
	if len(pats) != 1 || pats[0].P.Value != rdf.AKTHasAuthor {
		t.Fatalf("skip should copy verbatim: %v", pats)
	}
}

func TestFDPolicyFail(t *testing.T) {
	rw := paperRewriter()
	rw.Opts.Policy = Fail
	q := sparql.MustParse(`
PREFIX id:<http://southampton.rkbexplorer.com/id/>
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p WHERE { ?p akt:has-author id:person-99999 }`)
	if _, _, err := rw.RewriteQuery(q); err == nil {
		t.Fatal("Fail policy must abort")
	}
}

func TestAllMatchesMode(t *testing.T) {
	eas := []*align.EntityAlignment{
		align.PropertyAlignment("a1", rdf.AKTHasTitle, rdf.KISTITitle),
		align.PropertyAlignment("a2", rdf.AKTHasTitle, "http://purl.org/dc/terms/title"),
	}
	rw := New(eas, nil)
	rw.Opts.MatchMode = AllMatches
	out, _, err := rw.RewriteBGP([]rdf.Triple{
		{S: rdf.NewVar("p"), P: rdf.NewIRI(rdf.AKTHasTitle), O: rdf.NewVar("t")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("all-matches output = %v", out)
	}
}

func TestRewritePreservesOptionalUnionStructure(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?p ?a WHERE {
  ?p akt:has-author ?a .
  OPTIONAL { ?p akt:has-author ?b }
  { ?p akt:has-title ?t } UNION { ?p akt:has-date ?d }
}`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	var haveOpt, haveUnion bool
	sparql.Walk(out.Where, func(el sparql.GroupElement) {
		switch e := el.(type) {
		case *sparql.Optional:
			haveOpt = true
			if len(e.Group.Elements) == 0 {
				t.Error("optional emptied")
			}
			if b, ok := e.Group.Elements[0].(*sparql.BGP); ok && len(b.Patterns) != 2 {
				t.Errorf("optional BGP not rewritten: %v", b.Patterns)
			}
		case *sparql.Union:
			haveUnion = true
		}
	})
	if !haveOpt || !haveUnion {
		t.Fatal("structure lost")
	}
}

// TestE8_Figure6 reproduces the paper's §4 limitation and our extension:
// in paper mode the FILTER constant stays in the source URI space (query
// silently loses results); with RewriteFilters the constant is translated.
func TestE8_Figure6(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(figure6)

	// Paper mode: BGP rewritten, FILTER untouched, warning raised.
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	text := sparql.Format(out)
	if !strings.Contains(text, "person-02686") {
		t.Fatalf("paper mode must leave the FILTER constant:\n%s", text)
	}
	if len(report.Warnings) == 0 {
		t.Fatal("paper mode must warn about the FILTER constraint")
	}

	// Extended mode: the constant is translated into the KISTI URI space.
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = kistiSpace
	out2, report2, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	text2 := sparql.Format(out2)
	if strings.Contains(text2, "southampton.rkbexplorer.com/id/person-02686") {
		t.Fatalf("extended mode must translate the FILTER constant:\n%s", text2)
	}
	if !strings.Contains(text2, "PER_00000000105047") {
		t.Fatalf("expected KISTI URI in FILTER:\n%s", text2)
	}
	if report2.FilterRewrites != 2 {
		t.Fatalf("filter rewrites = %d", report2.FilterRewrites)
	}
}

func TestFilterVocabularyTranslation(t *testing.T) {
	eas := []*align.EntityAlignment{
		align.PropertyAlignment("p", rdf.AKTHasTitle, rdf.KISTITitle),
		align.ClassAlignment("c", rdf.AKTPerson, rdf.KISTIPerson),
		creatorInfoEA(),
	}
	rw := New(eas, funcs.StandardRegistry(paperCoref()))
	rw.Opts.RewriteFilters = true
	rw.Opts.TargetURISpace = kistiSpace
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?x WHERE { ?x ?p ?o . FILTER (?p = akt:has-title || ?o = akt:Person) }`)
	out, _, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	text := sparql.Format(out)
	if !strings.Contains(text, "kisti:title") || !strings.Contains(text, "kisti:Person") {
		t.Fatalf("vocabulary IRIs not translated in FILTER:\n%s", text)
	}
}

func TestRewriteFiltersRequiresURISpace(t *testing.T) {
	rw := paperRewriter()
	rw.Opts.RewriteFilters = true // no TargetURISpace
	if _, _, err := rw.RewriteQuery(sparql.MustParse(figure6)); err == nil {
		t.Fatal("missing TargetURISpace must error")
	}
}

func TestFreshVarsAvoidQueryVars(t *testing.T) {
	rw := paperRewriter()
	// Query already uses ?new1: generator must skip it.
	q := sparql.MustParse(`
PREFIX akt:<http://www.aktors.org/ontology/portal#>
SELECT ?new1 WHERE { ?new1 akt:has-author ?a }`)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range report.FreshVars {
		if f == "new1" {
			t.Fatal("fresh var collided with query var")
		}
	}
	// ?new1 still appears as the paper subject
	pats := out.BGPs()[0].Patterns
	if pats[0].S != rdf.NewVar("new1") {
		t.Fatalf("query var renamed: %v", pats)
	}
}

func TestIdempotentOnTargetVocabulary(t *testing.T) {
	// Rewriting a query that is already in the target vocabulary is the
	// identity (no alignment LHS matches kisti patterns).
	rw := paperRewriter()
	src := `PREFIX kisti:<http://www.kisti.re.kr/isrl/ResearchRefOntology#>
SELECT ?a WHERE { ?p kisti:hasCreatorInfo ?c . ?c kisti:hasCreator ?a }`
	q := sparql.MustParse(src)
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if report.MatchedTriples != 0 || report.CopiedTriples != 2 {
		t.Fatalf("report = %+v", report)
	}
	if len(out.BGPs()[0].Patterns) != 2 {
		t.Fatal("identity rewrite changed the BGP")
	}
}

func TestMissingRegistryErrors(t *testing.T) {
	rw := New([]*align.EntityAlignment{creatorInfoEA()}, nil)
	q := sparql.MustParse(figure1)
	if _, _, err := rw.RewriteQuery(q); err == nil {
		t.Fatal("FD without registry must error")
	}
}

func TestInputQueryUnmodified(t *testing.T) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1)
	before := sparql.Format(q)
	if _, _, err := rw.RewriteQuery(q); err != nil {
		t.Fatal(err)
	}
	if sparql.Format(q) != before {
		t.Fatal("RewriteQuery mutated its input")
	}
}

func BenchmarkRewriteFigure1(b *testing.B) {
	rw := paperRewriter()
	q := sparql.MustParse(figure1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rw.RewriteQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}
