package decompose

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// storeClient routes executor dispatches to in-memory stores, recording
// every query text per endpoint, so tests see exactly what each
// repository was asked without HTTP in the way.
type storeClient struct {
	mu      sync.Mutex
	stores  map[string]*store.Store
	queries map[string][]string
	// gate, when set for an endpoint, blocks its dispatches until the
	// request context dies (cancellation tests).
	gate map[string]bool
}

func newStoreClient() *storeClient {
	return &storeClient{
		stores:  map[string]*store.Store{},
		queries: map[string][]string{},
		gate:    map[string]bool{},
	}
}

func (c *storeClient) SelectContext(ctx context.Context, url, query string) (*eval.Result, error) {
	c.mu.Lock()
	c.queries[url] = append(c.queries[url], query)
	st := c.stores[url]
	gated := c.gate[url]
	c.mu.Unlock()
	if gated {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if st == nil {
		return nil, fmt.Errorf("no store for %s", url)
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("endpoint %s: %v in:\n%s", url, err, query)
	}
	return eval.New(st).Select(q)
}

func (c *storeClient) queriesFor(url string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.queries[url]...)
}

const (
	sotonURL   = "http://soton.test/sparql"
	metricsURL = "http://metrics.test/sparql"
	dbpURL     = "http://dbp.test/sparql"
	ecsURL     = "http://ecs.test/sparql"
)

// fixture wires the 4-endpoint cross-vocabulary stack: Southampton (AKT)
// and metrics hold joinable data in different vocabularies; the DBpedia
// and ECS stand-ins speak unrelated vocabularies. No alignments, so each
// pattern is answerable by exactly one repository.
type fixture struct {
	u      *workload.Universe
	client *storeClient
	plnr   *plan.Planner
	dec    *Decomposer
	engine *Engine
	exec   *federate.Executor
}

func newFixture(t testing.TB, opts Options) *fixture {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 30, 90
	u := workload.Generate(cfg)

	client := newStoreClient()
	client.stores[sotonURL] = u.Southampton
	client.stores[metricsURL] = workload.MetricsStore(u)
	client.stores[dbpURL] = store.New()
	client.stores[ecsURL] = store.New()

	kb := voidkb.NewKB()
	add := func(d *voidkb.Dataset) {
		if err := kb.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	add(&voidkb.Dataset{URI: workload.SotonVoidURI, SPARQLEndpoint: sotonURL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS},
		Triples:            1000,
		PropertyPartitions: map[string]int64{rdf.AKTHasAuthor: 400, rdf.AKTHasTitle: 90}})
	add(&voidkb.Dataset{URI: workload.MetricsVoidURI, SPARQLEndpoint: metricsURL,
		URISpace: workload.SotonURIPattern, Vocabularies: []string{workload.MetricsNS},
		Triples:            180,
		PropertyPartitions: map[string]int64{workload.MetricsCitationCount: 90, workload.MetricsVenue: 90}})
	add(&voidkb.Dataset{URI: workload.DBPVoidURI, SPARQLEndpoint: dbpURL,
		URISpace: workload.DBPURIPattern, Vocabularies: []string{rdf.DBONS}})
	add(&voidkb.Dataset{URI: workload.ECSVoidURI, SPARQLEndpoint: ecsURL,
		URISpace: workload.ECSURIPattern, Vocabularies: []string{rdf.ECSNS}})

	// No co-reference source: these tests compare against a local join
	// over the raw URIs, so the merge must not canonicalise them
	// (owl:sameAs handling has its own test below).
	plnr := plan.New(kb, align.NewKB(), nil, plan.Options{})
	exec := federate.NewExecutor(client, nil, nil, federate.Options{MaxRetries: -1})
	return &fixture{
		u:      u,
		client: client,
		plnr:   plnr,
		dec:    New(plnr, opts),
		engine: NewEngine(exec, nil, nil, opts),
		exec:   exec,
	}
}

// groundTruth evaluates the query over the union of all stores locally.
func (f *fixture) groundTruth(t testing.TB, query string) []eval.Solution {
	t.Helper()
	merged := f.u.Southampton.Clone()
	merged.AddGraph(workload.MetricsStore(f.u).Triples())
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.New(merged).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	eval.SortSolutions(res.Solutions)
	return res.Solutions
}

func (f *fixture) run(t testing.TB, query string) ([]eval.Solution, *Run) {
	t.Helper()
	dec, err := f.dec.Decompose(query, rdf.AKTNS)
	if err != nil {
		t.Fatal(err)
	}
	r := f.engine.Run(context.Background(), dec)
	defer r.Close()
	var sols []eval.Solution
	for sol, err := range r.Solutions() {
		if err != nil {
			t.Fatal(err)
		}
		sols = append(sols, sol)
	}
	eval.SortSolutions(sols)
	return sols, r
}

// TestExclusiveGroupExtraction pins the decomposition shape on the
// 4-endpoint fixture: the two AKT patterns form one exclusive group for
// Southampton, the metrics pattern one for the metrics repository; the
// bound-author group (cheaper by voiD statistics) seeds the join and the
// metrics fragment joins on ?paper.
func TestExclusiveGroupExtraction(t *testing.T) {
	f := newFixture(t, Options{})
	dec, err := f.dec.Decompose(workload.CrossVocabularyQuery(1), rdf.AKTNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Fragments) != 2 {
		t.Fatalf("fragments = %d, want 2: %+v", len(dec.Fragments), dec.Fragments)
	}
	if !dec.MultiSource {
		t.Fatal("decomposition not marked multi-source")
	}
	first, second := dec.Fragments[0], dec.Fragments[1]
	if !first.Exclusive || !second.Exclusive {
		t.Fatalf("fragments not exclusive: %+v", dec.Fragments)
	}
	if len(first.Targets) != 1 || first.Targets[0].Dataset != workload.SotonVoidURI {
		t.Fatalf("first fragment targets = %+v, want southampton", first.Targets)
	}
	if len(first.patterns) != 2 {
		t.Fatalf("southampton group has %d patterns, want 2: %v", len(first.patterns), first.Patterns)
	}
	if len(second.Targets) != 1 || second.Targets[0].Dataset != workload.MetricsVoidURI {
		t.Fatalf("second fragment targets = %+v, want metrics", second.Targets)
	}
	if len(second.JoinVars) != 1 || second.JoinVars[0] != "paper" {
		t.Fatalf("join vars = %v, want [paper]", second.JoinVars)
	}
	if first.EstCard <= 0 || second.EstCard <= 0 {
		t.Fatalf("cardinalities not estimated: %d %d", first.EstCard, second.EstCard)
	}
	// The bound-author group estimates below the metrics extent, so it
	// runs first.
	if first.EstCard >= second.EstCard {
		t.Fatalf("join order not cheapest-first: %d then %d", first.EstCard, second.EstCard)
	}
	if len(dec.Warnings) != 0 {
		t.Fatalf("unexpected warnings: %v", dec.Warnings)
	}
	st := f.dec.Stats()
	if st.Decompositions != 1 || st.ExclusiveGroups != 2 || st.SharedFragments != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBoundJoinValuesRoundTrip is the engine's correctness pin: the
// decomposed execution returns exactly the local join of both stores, the
// metrics endpoint receives a VALUES-bound sub-query (never the AKT
// patterns), and Southampton never sees the metrics vocabulary.
func TestBoundJoinValuesRoundTrip(t *testing.T) {
	f := newFixture(t, Options{})
	query := workload.CrossVocabularyQuery(1)
	got, r := f.run(t, query)
	want := f.groundTruth(t, query)
	if len(got) == 0 {
		t.Fatal("decomposed query returned nothing")
	}
	if len(got) != len(want) {
		t.Fatalf("decomposed = %d solutions, local join = %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("solution %d: got %v, want %v", i, got[i], want[i])
		}
	}

	sotonQs := f.client.queriesFor(sotonURL)
	metricsQs := f.client.queriesFor(metricsURL)
	if len(sotonQs) == 0 || len(metricsQs) == 0 {
		t.Fatalf("round trips: soton=%d metrics=%d", len(sotonQs), len(metricsQs))
	}
	for _, q := range sotonQs {
		if strings.Contains(q, workload.MetricsCitationCount) {
			t.Fatalf("southampton received the metrics pattern:\n%s", q)
		}
	}
	for _, q := range metricsQs {
		if strings.Contains(q, rdf.AKTHasAuthor) {
			t.Fatalf("metrics received the AKT pattern:\n%s", q)
		}
		if !strings.Contains(q, "VALUES") {
			t.Fatalf("metrics sub-query not VALUES-bound:\n%s", q)
		}
	}
	if len(f.client.queriesFor(dbpURL)) != 0 || len(f.client.queriesFor(ecsURL)) != 0 {
		t.Fatal("irrelevant endpoints were queried")
	}

	res, err := r.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("clean run marked partial: %+v", res.PerDataset)
	}
	if len(res.PerDataset) < 2 {
		t.Fatalf("per-dataset answers = %+v", res.PerDataset)
	}
	if r.Transferred() == 0 {
		t.Fatal("transferred-solutions counter not recorded")
	}
	st := f.engine.Stats()
	if st.Runs != 1 || st.BoundJoinStages != 1 || st.ValuesRows == 0 || st.SolutionsTransferred == 0 {
		t.Fatalf("engine stats = %+v", st)
	}
}

// TestValuesSharding: a bind batch smaller than the binding set splits
// the bound stage into several VALUES shards whose union is still the
// exact join.
func TestValuesSharding(t *testing.T) {
	f := newFixture(t, Options{BindBatch: 2})
	// Unselective seed: all papers of the universe bind ?paper.
	query := fmt.Sprintf(`PREFIX akt:<%s>
PREFIX m:<%s>
SELECT ?paper ?c WHERE {
  ?paper akt:has-title ?ti .
  ?paper m:citationCount ?c .
}`, rdf.AKTNS, workload.MetricsNS)
	got, _ := f.run(t, query)
	want := f.groundTruth(t, query)
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("sharded bound join: got %d, want %d", len(got), len(want))
	}
	metricsQs := f.client.queriesFor(metricsURL)
	if len(metricsQs) < 2 {
		t.Fatalf("metrics round trips = %d, want several VALUES shards", len(metricsQs))
	}
	for _, q := range metricsQs {
		if !strings.Contains(q, "VALUES") {
			t.Fatalf("shard without VALUES:\n%s", q)
		}
	}
}

// TestHashFallback: bindings beyond MaxBindRows switch the stage to an
// unbound fetch hash-joined at the mediator — same answers, one
// VALUES-free round trip.
func TestHashFallback(t *testing.T) {
	f := newFixture(t, Options{MaxBindRows: -1})
	query := workload.CrossVocabularyQuery(1)
	got, _ := f.run(t, query)
	want := f.groundTruth(t, query)
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("hash fallback: got %d, want %d", len(got), len(want))
	}
	metricsQs := f.client.queriesFor(metricsURL)
	if len(metricsQs) != 1 {
		t.Fatalf("metrics round trips = %d, want 1 unbound fetch", len(metricsQs))
	}
	if strings.Contains(metricsQs[0], "VALUES") {
		t.Fatalf("fallback fetch still VALUES-bound:\n%s", metricsQs[0])
	}
	if st := f.engine.Stats(); st.HashJoinStages != 1 || st.BoundJoinStages != 0 {
		t.Fatalf("engine stats = %+v", st)
	}
}

// TestEmptyFragmentEarlyExit: when the seed fragment produces no
// bindings the join is empty and the remaining fragments are never
// dispatched.
func TestEmptyFragmentEarlyExit(t *testing.T) {
	f := newFixture(t, Options{})
	// A bound author URI in Southampton's URI space that no paper has.
	query := fmt.Sprintf(`PREFIX akt:<%s>
PREFIX m:<%s>
SELECT ?paper ?c WHERE {
  ?paper akt:has-author <%sperson-99999> .
  ?paper m:citationCount ?c .
}`, rdf.AKTNS, workload.MetricsNS, workload.SotonIDSpace)
	got, r := f.run(t, query)
	if len(got) != 0 {
		t.Fatalf("expected empty result, got %d", len(got))
	}
	if n := len(f.client.queriesFor(metricsURL)); n != 0 {
		t.Fatalf("metrics dispatched %d times after an empty seed fragment", n)
	}
	res, err := r.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("empty join marked partial")
	}
}

// TestCancellationMidJoin: cancelling the run's context while the second
// fragment is in flight unblocks the consumer promptly and tears the
// sub-query down.
func TestCancellationMidJoin(t *testing.T) {
	f := newFixture(t, Options{})
	f.client.mu.Lock()
	f.client.gate[metricsURL] = true
	f.client.mu.Unlock()

	dec, err := f.dec.Decompose(workload.CrossVocabularyQuery(1), rdf.AKTNS)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := f.engine.Run(ctx, dec)
	defer r.Close()

	type outcome struct {
		sols int
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		n := 0
		var last error
		for sol, err := range r.Solutions() {
			if err != nil {
				last = err
				break
			}
			_ = sol
			n++
		}
		done <- outcome{sols: n, err: last}
	}()
	// Wait until the gated endpoint has the sub-query in flight, then
	// cancel mid-join.
	waitFor(t, func() bool { return len(f.client.queriesFor(metricsURL)) > 0 })
	cancel()
	out := <-done
	if out.sols != 0 {
		t.Fatalf("gated join yielded %d solutions", out.sols)
	}
	res, _ := r.Summary()
	if !res.Partial {
		t.Fatalf("cancelled join not reported partial: %+v", res.PerDataset)
	}
}

// TestLimitStopsUpstream: a LIMIT on the decomposed path ends the stream
// after the requested rows.
func TestLimitStopsUpstream(t *testing.T) {
	f := newFixture(t, Options{})
	query := fmt.Sprintf(`PREFIX akt:<%s>
PREFIX m:<%s>
SELECT ?paper ?c WHERE {
  ?paper akt:has-title ?ti .
  ?paper m:citationCount ?c .
} LIMIT 3`, rdf.AKTNS, workload.MetricsNS)
	got, _ := f.run(t, query)
	if len(got) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(got))
	}
}

// TestRejectsUnsupportedShapes: shapes the join engine cannot decompose
// soundly are refused (the caller stays on the whole-query path).
func TestRejectsUnsupportedShapes(t *testing.T) {
	f := newFixture(t, Options{})
	for _, q := range []string{
		"SELECT ?s WHERE { OPTIONAL { ?s <http://p.example/x> ?o } }",
		"ASK { ?s ?p ?o }",
		"SELECT ?s WHERE { ?s <" + rdf.AKTHasTitle + "> ?o } ORDER BY ?s",
		// A pattern no registered data set can answer.
		"SELECT ?s WHERE { ?s <http://nowhere.example/ont#p> ?o }",
	} {
		if _, err := f.dec.Decompose(q, rdf.AKTNS); err == nil {
			t.Fatalf("decomposed unsupported query:\n%s", q)
		}
	}
	if st := f.dec.Stats(); st.Rejected != 4 {
		t.Fatalf("rejected = %d, want 4", st.Rejected)
	}
}

// TestResidualFilterAcrossFragments: a FILTER whose variables span
// fragments is evaluated at the mediator; one local to a fragment is
// pushed into its sub-query.
func TestResidualFilterAcrossFragments(t *testing.T) {
	f := newFixture(t, Options{})
	query := fmt.Sprintf(`PREFIX akt:<%s>
PREFIX m:<%s>
SELECT ?paper ?a ?c WHERE {
  ?paper akt:has-author <%s> .
  ?paper akt:has-author ?a .
  ?paper m:citationCount ?c .
  FILTER (?c > 50)
  FILTER (!(?a = <%s>))
}`, rdf.AKTNS, workload.MetricsNS, workload.SotonPerson(1).Value, workload.SotonPerson(1).Value)
	dec, err := f.dec.Decompose(query, rdf.AKTNS)
	if err != nil {
		t.Fatal(err)
	}
	// Both filters are single-fragment, so both push down.
	pushed := 0
	for _, fr := range dec.Fragments {
		pushed += len(fr.Filters)
	}
	if pushed != 2 || len(dec.ResidualFilters) != 0 {
		t.Fatalf("pushed=%d residual=%v", pushed, dec.ResidualFilters)
	}
	got, _ := f.run(t, query)
	want := f.groundTruth(t, query)
	if len(got) != len(want) {
		t.Fatalf("filtered join: got %d, want %d", len(got), len(want))
	}
	for _, sol := range got {
		if c, ok := sol["c"].Int(); !ok || c <= 50 {
			t.Fatalf("filter not applied: %v", sol)
		}
	}
}

// capturingDispatcher records every federate request it forwards.
type capturingDispatcher struct {
	exec *federate.Executor
	mu   sync.Mutex
	reqs []federate.Request
}

func (c *capturingDispatcher) SelectStream(ctx context.Context, req federate.Request) *federate.Stream {
	c.mu.Lock()
	c.reqs = append(c.reqs, req)
	c.mu.Unlock()
	return c.exec.SelectStream(ctx, req)
}

// TestRewriteFragmentUsesPatternVocabulary: a fragment whose patterns
// are written in a vocabulary other than the query-level source ontology
// must be rewritten *from its own vocabulary* — the alignment that made
// its data set a candidate is keyed on the pattern's namespace, not the
// query's. The single-use bound shard also bypasses the rewrite-plan
// cache.
func TestRewriteFragmentUsesPatternVocabulary(t *testing.T) {
	const (
		v1   = "http://v1.example/ont#"
		v2   = "http://v2.example/ont#"
		v3   = "http://v3.example/ont#"
		aURL = "http://va.test/sparql"
		cURL = "http://vc.test/sparql"
		cURI = "http://vc.example/void"
	)
	x := rdf.NewIRI("http://va.example/id/x")
	y := rdf.NewIRI("http://va.example/id/y")
	client := newStoreClient()
	sa, sc := store.New(), store.New()
	sa.Add(rdf.Triple{S: x, P: rdf.NewIRI(v1 + "p"), O: y})
	// Endpoint C speaks v3: the v2 pattern only matches after rewriting.
	sc.Add(rdf.Triple{S: y, P: rdf.NewIRI(v3 + "q"), O: rdf.NewLiteral("z")})
	client.stores[aURL] = sa
	client.stores[cURL] = sc

	kb := voidkb.NewKB()
	if err := kb.Add(&voidkb.Dataset{URI: "http://va.example/void", SPARQLEndpoint: aURL,
		URISpace: `http://va\.example/id/\S*`, Vocabularies: []string{v1}, Triples: 1}); err != nil {
		t.Fatal(err)
	}
	if err := kb.Add(&voidkb.Dataset{URI: cURI, SPARQLEndpoint: cURL,
		URISpace: `http://vc\.example/id/\S*`, Vocabularies: []string{v3}, Triples: 10}); err != nil {
		t.Fatal(err)
	}
	alignKB := align.NewKB()
	if err := alignKB.Add(&align.OntologyAlignment{
		URI:              "http://align.example/v2to3",
		SourceOntologies: []string{v2},
		TargetOntologies: []string{v3},
		TargetDatasets:   []string{cURI},
		Alignments:       []*align.EntityAlignment{align.PropertyAlignment("http://align.example/v2to3#q", v2+"q", v3+"q")},
	}); err != nil {
		t.Fatal(err)
	}

	var rwMu sync.Mutex
	var rewriteSources []string
	rewrite := func(queryText, sourceOnt, dataset string) (string, error) {
		rwMu.Lock()
		rewriteSources = append(rewriteSources, sourceOnt)
		rwMu.Unlock()
		return strings.ReplaceAll(queryText, v2, v3), nil
	}
	exec := federate.NewExecutor(client, rewrite, nil, federate.Options{MaxRetries: -1})
	disp := &capturingDispatcher{exec: exec}
	plnr := plan.New(kb, alignKB, nil, plan.Options{})
	dcm := New(plnr, Options{})
	engine := NewEngine(disp, nil, nil, Options{})

	query := fmt.Sprintf("SELECT ?x ?y ?z WHERE { ?x <%sp> ?y . ?y <%sq> ?z . }", v1, v2)
	dec, err := dcm.Decompose(query, v1)
	if err != nil {
		t.Fatal(err)
	}
	var frag2 *Fragment
	for _, f := range dec.Fragments {
		if len(f.Targets) == 1 && f.Targets[0].Dataset == cURI {
			frag2 = f
		}
	}
	if frag2 == nil || !frag2.Targets[0].NeedsRewrite || frag2.RewriteOnt != v2 {
		t.Fatalf("v2 fragment not marked for rewriting from v2: %+v", frag2)
	}
	r := engine.Run(context.Background(), dec)
	defer r.Close()
	sols, err := eval.Collect(r.Solutions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["z"].Value != "z" {
		t.Fatalf("cross-ontology rewrite join = %v, want one row binding ?z", sols)
	}
	rwMu.Lock()
	defer rwMu.Unlock()
	if len(rewriteSources) == 0 {
		t.Fatal("rewriter never invoked")
	}
	for _, src := range rewriteSources {
		if src != v2 {
			t.Fatalf("fragment rewritten from %s, want %s", src, v2)
		}
	}
	// The bound shard's single-use text stayed out of the plan cache.
	if st := exec.Stats(); st.CacheEntries != 0 || st.CacheMisses != 0 {
		t.Fatalf("bound shard occupied the rewrite-plan cache: %+v", st)
	}
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestBoundJoinAcrossURISpaces pins the owl:sameAs alias expansion: the
// seed fragment binds ?p to an entity whose canonical representative
// lives in endpoint A's URI space, while endpoint B stores the same
// entity under another URI. The bound join must ship both aliases so B
// can answer, and the canonicalising merge must line the join keys up.
func TestBoundJoinAcrossURISpaces(t *testing.T) {
	const (
		aURL  = "http://a.test/sparql"
		bURL  = "http://b.test/sparql"
		aNS   = "http://a.example/ont#"
		bNS   = "http://b.example/ont#"
		aURI  = "http://a.example/id/p1" // lexicographically smallest: the representative
		bURI  = "http://b.example/id/p1"
		title = aNS + "title"
		count = bNS + "count"
	)
	client := newStoreClient()
	sa, sb := store.New(), store.New()
	sa.Add(rdf.Triple{S: rdf.NewIRI(aURI), P: rdf.NewIRI(title), O: rdf.NewLiteral("t")})
	sb.Add(rdf.Triple{S: rdf.NewIRI(bURI), P: rdf.NewIRI(count), O: rdf.NewTypedLiteral("5", rdf.XSDInteger)})
	client.stores[aURL] = sa
	client.stores[bURL] = sb

	kb := voidkb.NewKB()
	if err := kb.Add(&voidkb.Dataset{URI: "http://a.example/void", SPARQLEndpoint: aURL,
		URISpace: `http://a\.example/id/\S*`, Vocabularies: []string{aNS}, Triples: 1}); err != nil {
		t.Fatal(err)
	}
	if err := kb.Add(&voidkb.Dataset{URI: "http://b.example/void", SPARQLEndpoint: bURL,
		URISpace: `http://b\.example/id/\S*`, Vocabularies: []string{bNS}, Triples: 10}); err != nil {
		t.Fatal(err)
	}
	cs := coref.NewStore()
	cs.Add(aURI, bURI)

	plnr := plan.New(kb, align.NewKB(), nil, plan.Options{})
	exec := federate.NewExecutor(client, nil, cs, federate.Options{MaxRetries: -1})
	dcm := New(plnr, Options{})
	engine := NewEngine(exec, nil, cs, Options{})

	query := fmt.Sprintf("SELECT ?p ?t ?c WHERE { ?p <%s> ?t . ?p <%s> ?c . }", title, count)
	dec, err := dcm.Decompose(query, aNS)
	if err != nil {
		t.Fatal(err)
	}
	r := engine.Run(context.Background(), dec)
	defer r.Close()
	sols, err := eval.Collect(r.Solutions())
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("cross-URI-space bound join returned %d solutions, want 1", len(sols))
	}
	if got := sols[0]["p"].Value; got != aURI {
		t.Fatalf("join key not canonicalised: ?p = %s", got)
	}
	bQs := client.queriesFor(bURL)
	if len(bQs) != 1 || !strings.Contains(bQs[0], bURI) {
		t.Fatalf("alias not shipped to endpoint B: %v", bQs)
	}
}
