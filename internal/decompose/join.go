package decompose

import (
	"context"
	"errors"
	"io"
	"iter"
	"sync"
	"time"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// Dispatcher starts federated sub-query streams; *federate.Executor
// satisfies it. The engine goes through the executor so fragment
// dispatches get the usual pipeline: cached rewrites, bounded concurrency,
// retries, circuit breakers and the owl:sameAs merge.
type Dispatcher interface {
	SelectStream(ctx context.Context, req federate.Request) *federate.Stream
}

// EngineStats counts join-engine activity for /api/stats.
type EngineStats struct {
	// Runs is how many decomposed queries were executed.
	Runs uint64 `json:"runs"`
	// BoundJoinStages and HashJoinStages count join stages by strategy.
	BoundJoinStages uint64 `json:"boundJoinStages"`
	HashJoinStages  uint64 `json:"hashJoinStages"`
	// ValuesRows is how many bindings were shipped in VALUES blocks.
	ValuesRows uint64 `json:"valuesRows"`
	// SolutionsTransferred sums the solutions endpoints returned across
	// all fragment dispatches (the figure bound joins minimise).
	SolutionsTransferred uint64 `json:"solutionsTransferred"`
}

// Engine executes decompositions: fragments run left to right as bound
// joins over the federation executor, producing one merged, lazily
// consumed solution stream.
type Engine struct {
	mu       sync.Mutex
	exec     Dispatcher
	resolver eval.FuncResolver
	coref    funcs.CorefSource
	opts     Options
	metrics  engineMetrics
}

// engineMetrics are the join engine's registry-backed counters; Stats()
// reads them back, and the shared registry renders them at /metrics.
type engineMetrics struct {
	runs            *obs.Counter
	boundJoinStages *obs.Counter
	hashJoinStages  *obs.Counter
	valuesRows      *obs.Counter
	transferred     *obs.Counter
}

// NewEngine builds a join engine over the given dispatcher. funcs
// resolves extension functions in mediator-evaluated filters; coref is
// the co-reference service used to expand bound-join bindings with their
// owl:sameAs equivalents (the executor's merge canonicalises solutions,
// so a binding's representative URI may lie outside the next endpoint's
// URI space — the expansion ships every known alias). Both may be nil.
func NewEngine(exec Dispatcher, fr eval.FuncResolver, coref funcs.CorefSource, opts Options) *Engine {
	opts = opts.withDefaults()
	reg := opts.Registry
	return &Engine{
		exec: exec, resolver: fr, coref: coref, opts: opts,
		metrics: engineMetrics{
			runs: reg.Counter("sparqlrw_decompose_runs_total",
				"Decomposed queries executed by the join engine."),
			boundJoinStages: reg.Counter("sparqlrw_decompose_bound_join_stages_total",
				"Join stages executed as bound joins (VALUES-shipped bindings)."),
			hashJoinStages: reg.Counter("sparqlrw_decompose_hash_join_stages_total",
				"Join stages executed as mediator-side hash joins."),
			valuesRows: reg.Counter("sparqlrw_decompose_values_rows_total",
				"Bindings shipped to endpoints in VALUES blocks."),
			transferred: reg.Counter("sparqlrw_decompose_solutions_transferred_total",
				"Solutions endpoints returned across all fragment dispatches."),
		},
	}
}

// SetDispatcher swaps the executor the engine dispatches through (the
// mediator rebuilds its executor on reconfiguration; the engine and its
// counters survive).
func (e *Engine) SetDispatcher(exec Dispatcher) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.exec = exec
}

func (e *Engine) dispatcher() Dispatcher {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.exec
}

// Stats returns a snapshot of the engine's counters, read back from the
// metrics registry so the JSON view and /metrics cannot disagree.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Runs:                 uint64(e.metrics.runs.Value()),
		BoundJoinStages:      uint64(e.metrics.boundJoinStages.Value()),
		HashJoinStages:       uint64(e.metrics.hashJoinStages.Value()),
		ValuesRows:           uint64(e.metrics.valuesRows.Value()),
		SolutionsTransferred: uint64(e.metrics.transferred.Value()),
	}
}

// Run is an in-flight decomposed query: the streaming counterpart of
// federate.Stream for the multi-source path. Consume Next (io.EOF ends
// the stream) or Solutions, then Summary; always Close.
type Run struct {
	vars   []string
	cancel context.CancelFunc

	// pullMu serialises the iter.Pull2 handles: Next/Summary and a
	// concurrent Close must not drive the coroutine simultaneously.
	pullMu sync.Mutex
	next   func() (eval.Solution, error, bool)
	stop   func()

	closeOnce sync.Once
	err       error

	mu          sync.Mutex
	answers     []federate.DatasetAnswer
	partial     bool
	duplicates  int
	transferred int
}

// Run starts executing a decomposition. Fragments dispatch lazily: the
// first fragment's stream opens on the first Next call, and each later
// fragment dispatches only once the accumulated bindings reach it (an
// empty fragment short-circuits the whole join without touching the
// remaining endpoints). Cancelling ctx or calling Close aborts all
// in-flight sub-queries.
func (e *Engine) Run(ctx context.Context, d *Decomposition) *Run {
	ctx, cancel := context.WithCancel(ctx)
	r := &Run{vars: d.Vars, cancel: cancel}
	e.metrics.runs.Inc()
	r.next, r.stop = iter.Pull2(e.pipeline(ctx, d, r))
	return r
}

// Vars returns the final projection variable names.
func (r *Run) Vars() []string { return r.vars }

// Next returns the next joined solution, io.EOF at the end of the
// stream, or the error that aborted it.
func (r *Run) Next() (eval.Solution, error) {
	r.pullMu.Lock()
	sol, err, ok := r.next()
	r.pullMu.Unlock()
	if !ok {
		if r.err != nil {
			return nil, r.err
		}
		return nil, io.EOF
	}
	if err != nil {
		r.err = err
		return nil, err
	}
	return sol, nil
}

// Solutions adapts the run into a lazy solution sequence terminated by
// the first error; breaking out stops the upstream work.
func (r *Run) Solutions() eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		for {
			sol, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(sol, nil) {
				r.Close()
				return
			}
		}
	}
}

// Close cancels the remaining upstream work. Safe to call at any point,
// more than once, and concurrently with a blocked Next (the cancellation
// unblocks it).
func (r *Run) Close() error {
	r.closeOnce.Do(func() {
		// Cancel before taking pullMu: a Next blocked inside the
		// coroutine holds the mutex until cancellation releases it.
		r.cancel()
		r.pullMu.Lock()
		r.stop()
		r.pullMu.Unlock()
	})
	return nil
}

// Summary reports the run's outcome in the executor's result shape:
// per-dataset answers for every fragment dispatch (in dispatch order),
// the duplicate count, and Partial when any sub-query failed (a failed
// fragment dispatch means join results may be incomplete). It consumes
// whatever remains of the stream first.
func (r *Run) Summary() (*federate.Result, error) {
	for {
		r.pullMu.Lock()
		_, err, ok := r.next()
		r.pullMu.Unlock()
		if !ok {
			break
		}
		if err != nil {
			r.err = err
			break
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &federate.Result{
		Vars:       r.vars,
		PerDataset: r.answers,
		Duplicates: r.duplicates,
		Partial:    r.partial,
	}, r.err
}

// Transferred returns how many solutions endpoints returned across all
// fragment dispatches so far (the benchmarks' sol/op numerator).
func (r *Run) Transferred() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.transferred
}

// addResult folds one fragment dispatch's summary into the run.
func (r *Run) addResult(res *federate.Result, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.answers = append(r.answers, res.PerDataset...)
	r.duplicates += res.Duplicates
	for _, da := range res.PerDataset {
		r.transferred += da.Solutions
		if da.Err != nil && !errors.Is(da.Err, federate.ErrStreamClosed) {
			r.partial = true
		}
	}
	if err != nil && r.err == nil && !errors.Is(err, context.Canceled) {
		r.err = err
	}
}

// pipeline composes the fragment stages into one lazy sequence:
// fragment 0 seeds the bindings, each later fragment joins in (bound or
// hash), residual filters apply at their stage, and the final stage
// projects, deduplicates and slices.
func (e *Engine) pipeline(ctx context.Context, d *Decomposition, r *Run) eval.SolutionSeq {
	var seq eval.SolutionSeq
	for k, f := range d.Fragments {
		if k == 0 {
			seq = e.fragmentSeq(ctx, d, f, k, nil, r)
		} else {
			seq = e.joinStage(ctx, d, f, k, seq, r)
		}
		for _, rf := range d.ResidualFilters {
			if rf.Stage == k {
				seq = e.filterSeq(ctx, k, seq, rf.expr)
			}
		}
	}
	return e.finalSeq(ctx, d, seq, r)
}

// fragmentSeq dispatches one fragment (with the given VALUES shard
// texts, nil for an unbound fetch) and yields its merged solutions. The
// dispatch summary is folded into the run when the stage winds down,
// whether it was drained or abandoned. An unbound fetch opens a
// "fragment" operator span (estimate vs actual cardinality, q-error,
// first-row latency) and feeds each dataset's actual into the
// observed-cardinality store — bound shards skip both, since a
// semi-join's result says nothing about the fragment's true extent.
func (e *Engine) fragmentSeq(ctx context.Context, d *Decomposition, f *Fragment, stage int, shardTexts []string, r *Run) eval.SolutionSeq {
	// Caller-provided texts are bound-join VALUES shards: their binding
	// rows make each text single-use, so they must not occupy slots in
	// the executor's rewrite-plan LRU.
	boundShards := shardTexts != nil
	if shardTexts == nil {
		shardTexts = []string{sparql.Format(fragmentQuery(d, f, nil))}
	}
	// Rewriting translates from the fragment's own vocabulary, which on
	// a multi-vocabulary query may differ from the query-level source.
	srcOnt := d.SourceOnt
	if f.RewriteOnt != "" {
		srcOnt = f.RewriteOnt
	}
	req := federate.Request{
		Query:     shardTexts[0],
		SourceOnt: srcOnt,
		Vars:      f.Vars,
	}
	for i, text := range shardTexts {
		for _, t := range f.Targets {
			req.Targets = append(req.Targets, federate.Target{
				Dataset:          t.Dataset,
				Endpoint:         t.Endpoint,
				NeedsRewrite:     t.NeedsRewrite,
				Query:            text,
				Shard:            i + 1,
				Shards:           len(shardTexts),
				SkipRewriteCache: boundShards,
			})
		}
	}
	return func(yield func(eval.Solution, error) bool) {
		dispatchCtx := ctx
		var span *obs.Span
		var spanStart time.Time
		var yielded int64
		firstRowMS := -1.0
		if !boundShards {
			dispatchCtx, span = obs.StartSpan(ctx, "fragment")
			spanStart = time.Now()
		}
		s := e.dispatcher().SelectStream(dispatchCtx, req)
		defer func() {
			s.Close()
			res, err := s.Summary()
			r.addResult(res, err)
			var n uint64
			for _, da := range res.PerDataset {
				n += uint64(da.Solutions)
			}
			e.metrics.transferred.Add(float64(n))
			if boundShards {
				return
			}
			actual := int64(n)
			for _, da := range res.PerDataset {
				if da.Err == nil && da.Shards <= 1 {
					e.opts.Cards.Observe(da.Dataset, f.statTerm, f.statShape,
						f.estByDataset[da.Dataset], int64(da.Solutions))
				}
			}
			if span != nil {
				st := obs.Operator("fragment")
				st.Stage = int64(stage)
				st.RowsOut = yielded
				st.Solutions = actual
				st.EstRows = f.EstCard
				st.ActualRows = actual
				st.QError = obs.QError(float64(f.EstCard), float64(actual))
				st.FirstRowMS = firstRowMS
				span.SetOperator(st)
				span.End()
			}
		}()
		for sol, err := range s.Solutions() {
			if err == nil && yielded == 0 && !boundShards {
				firstRowMS = float64(time.Since(spanStart).Microseconds()) / 1000
			}
			if err == nil {
				yielded++
			}
			if !yield(sol, err) || err != nil {
				return
			}
		}
	}
}

// joinStage joins the accumulated left bindings with one fragment. The
// left side is materialised (it is about to be shipped or hashed either
// way); the right side streams, so joined solutions flow out as the
// endpoints deliver them.
//
// Strategy: while the distinct join-variable bindings fit MaxBindRows,
// they are batched into a VALUES block — sharded through the planner's
// VALUES machinery into BindBatch-sized sub-queries that dispatch
// concurrently — so the endpoint only returns solutions that join
// (a bound join). Past the cap, or when the stage has no join variables
// (cartesian), the fragment is fetched unbound and joined by hash at the
// mediator. Mediator-side hashing probes owl:sameAs-canonicalised keys on
// both sides, so it also covers fragments whose entities live in a
// different URI space than the bindings.
func (e *Engine) joinStage(ctx context.Context, d *Decomposition, f *Fragment, stage int, left eval.SolutionSeq, r *Run) eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		jctx, span := obs.StartSpan(ctx, "join")
		st := obs.Operator("bound-join")
		st.Stage = int64(stage)
		st.EstRows = f.EstCard
		defer func() {
			if st.QError < 0 && st.ActualRows >= 0 {
				st.QError = obs.QError(float64(st.EstRows), float64(st.ActualRows))
			}
			span.SetOperator(st)
			span.End()
		}()
		// Materialise the left side, bucketed by join key (it is about to
		// be shipped as VALUES or probed by hash either way). keyOrder
		// keeps VALUES rows deterministic: first-seen order.
		table := map[string][]eval.Solution{}
		var keyOrder []string
		rows := 0
		for sol, err := range left {
			if err != nil {
				yield(nil, err)
				return
			}
			key := sol.Project(f.JoinVars).Key()
			if _, ok := table[key]; !ok {
				keyOrder = append(keyOrder, key)
			}
			table[key] = append(table[key], sol)
			rows++
		}
		st.RowsIn = int64(rows)
		if rows == 0 {
			st.RowsOut, st.ActualRows = 0, 0
			return // empty join operand: the join is empty, dispatch nothing
		}

		var shardTexts []string
		bind := len(f.JoinVars) > 0 && e.opts.MaxBindRows >= 0 && len(keyOrder) <= e.opts.MaxBindRows
		if bind {
			values := &sparql.InlineData{Vars: append([]string(nil), f.JoinVars...)}
			rowSeen := map[string]bool{}
			for _, key := range keyOrder {
				sol := table[key][0]
				row := make([]rdf.Term, len(f.JoinVars))
				for i, v := range f.JoinVars {
					row[i] = sol[v] // zero Term reads back as UNDEF
				}
				// Ship every owl:sameAs alias of the bound IRIs: the merge
				// canonicalised the bindings, and the representative URI
				// may not be the one this fragment's endpoints store.
				for _, variant := range e.expandRow(row) {
					k := rowKey(variant)
					if !rowSeen[k] {
						rowSeen[k] = true
						values.Rows = append(values.Rows, variant)
					}
				}
			}
			// The cap applies to the rows actually shipped: alias
			// expansion can multiply the bindings, and past the cap the
			// hash fallback is cheaper than a flood of VALUES shards.
			if len(values.Rows) > e.opts.MaxBindRows {
				bind = false
			} else {
				q := fragmentQuery(d, f, values)
				shardTexts, _ = plan.ShardQuery(q, e.opts.BindBatch, e.opts.MaxShards)
				if shardTexts == nil {
					shardTexts = []string{sparql.Format(q)}
				}
				e.metrics.boundJoinStages.Inc()
				e.metrics.valuesRows.Add(float64(len(values.Rows)))
			}
		}
		if !bind {
			e.metrics.hashJoinStages.Inc()
			st.Op = "hash-join"
		}

		var fetched, merged int64
		spanStart := time.Now()
		for sol, err := range e.fragmentSeq(jctx, d, f, stage, shardTexts, r) {
			if err != nil {
				yield(nil, err)
				return
			}
			fetched++
			key := sol.Project(f.JoinVars).Key()
			for _, l := range table[key] {
				if l.Compatible(sol) {
					if merged == 0 {
						st.FirstRowMS = float64(time.Since(spanStart).Microseconds()) / 1000
					}
					merged++
					st.ActualRows, st.RowsOut = fetched, merged
					if !yield(l.Merge(sol), nil) {
						return
					}
				}
			}
		}
		st.ActualRows, st.RowsOut = fetched, merged
	}
}

// maxAliasVariants caps how many owl:sameAs aliases one binding expands
// into (hub entities can carry hundreds; past the cap the remaining
// aliases are dropped — the hash fallback, which joins on canonicalised
// keys, covers them).
const maxAliasVariants = 4

// expandRow returns the VALUES rows for one binding: the row itself plus
// every combination of its IRIs' owl:sameAs aliases, so a bound join
// reaches endpoints that store a different member of the equivalence
// class than the merge's representative.
func (e *Engine) expandRow(row []rdf.Term) [][]rdf.Term {
	if e.coref == nil {
		return [][]rdf.Term{row}
	}
	variants := make([][]rdf.Term, len(row))
	expanded := false
	for i, t := range row {
		variants[i] = []rdf.Term{t}
		if !t.IsIRI() {
			continue
		}
		for _, eq := range e.coref.Equivalents(t.Value) {
			if len(variants[i]) >= maxAliasVariants {
				break
			}
			if eq != t.Value {
				variants[i] = append(variants[i], rdf.NewIRI(eq))
				expanded = true
			}
		}
	}
	if !expanded {
		return [][]rdf.Term{row}
	}
	out := [][]rdf.Term{{}}
	for _, vs := range variants {
		var next [][]rdf.Term
		for _, prefix := range out {
			for _, v := range vs {
				next = append(next, append(append([]rdf.Term(nil), prefix...), v))
			}
		}
		out = next
	}
	return out
}

func rowKey(row []rdf.Term) string {
	var b []byte
	for _, t := range row {
		b = append(b, t.String()...)
		b = append(b, 0)
	}
	return string(b)
}

// filterSeq applies one mediator-side FILTER: per SPARQL semantics an
// erroring expression excludes the row rather than failing the query.
func (e *Engine) filterSeq(ctx context.Context, stage int, in eval.SolutionSeq, expr sparql.Expression) eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		_, span := obs.StartSpan(ctx, "filter")
		st := obs.Operator("filter")
		st.Stage = int64(stage)
		st.RowsIn, st.RowsOut = 0, 0
		defer func() {
			span.SetOperator(st)
			span.End()
		}()
		for sol, err := range in {
			if err != nil {
				yield(nil, err)
				return
			}
			st.RowsIn++
			if ok, err := eval.EvalBool(expr, sol, e.resolver); err == nil && ok {
				st.RowsOut++
				if !yield(sol, nil) {
					return
				}
			}
		}
	}
}

// finalSeq projects the joined solutions onto the query's variables,
// deduplicates under DISTINCT/REDUCED (counting drops as duplicates, like
// the executor's merge does), and applies OFFSET/LIMIT — stopping the
// upstream fragments as soon as LIMIT is satisfied.
func (e *Engine) finalSeq(ctx context.Context, d *Decomposition, in eval.SolutionSeq, r *Run) eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		_, span := obs.StartSpan(ctx, "final")
		st := obs.Operator("distinct-limit")
		st.Stage = int64(len(d.Fragments))
		st.RowsIn, st.RowsOut = 0, 0
		defer func() {
			span.SetOperator(st)
			span.End()
		}()
		var seen map[string]bool
		if d.distinct {
			seen = map[string]bool{}
		}
		skipped, emitted := 0, 0
		for sol, err := range in {
			if err != nil {
				yield(nil, err)
				return
			}
			st.RowsIn++
			out := sol.Project(d.Vars)
			if seen != nil {
				key := out.Key()
				if seen[key] {
					r.mu.Lock()
					r.duplicates++
					r.mu.Unlock()
					continue
				}
				seen[key] = true
			}
			if d.offset > 0 && skipped < d.offset {
				skipped++
				continue
			}
			if d.limit >= 0 && emitted >= d.limit {
				return
			}
			if !yield(out, nil) {
				return
			}
			emitted++
			st.RowsOut = int64(emitted)
			if d.limit >= 0 && emitted >= d.limit {
				return
			}
		}
	}
}
