// Package decompose implements per-BGP exclusive-group decomposition and
// a mediator-side streaming join engine, the layer between the federation
// planner (internal/plan) and the federation executor (internal/federate)
// that handles queries spanning vocabularies served by different
// repositories — the case the paper's whole-query rewriting cannot cover,
// and the standard answer in federated SPARQL processing (FedQPL, FedX;
// see PAPERS.md).
//
// # Exclusive groups
//
// Source selection runs per triple pattern (plan.Planner.PatternSources):
// a pattern answerable by exactly one registered data set is *exclusive*
// to it, and all of a data set's exclusive patterns are grouped into one
// fragment — a single sub-query shipped to that endpoint, so the endpoint
// joins them locally and only the fragment's (far smaller) result crosses
// the wire. Patterns answerable by several data sets become *shared*
// fragments, dispatched to every candidate and unioned by the executor's
// merge. The decomposition fails — and the caller falls back to the
// whole-query path or reports the query unanswerable — when a pattern has
// no source at all, or the query's shape is not a plain filtered BGP
// (OPTIONAL/UNION/ORDER BY stay on the single-source path).
//
// # Cardinality-ordered bound joins
//
// Fragments are ordered cheapest-first by voiD statistics (void:triples,
// void:propertyPartition, void:classPartition — internal/voidkb), joined
// left to right: the accumulated bindings of fragments 1..k are projected
// onto the join variables, batched into a VALUES block (re-using the
// planner's VALUES sharding), and injected into fragment k+1's sub-query,
// so each endpoint only returns solutions that can actually join. When
// the bindings exceed the bound-join cap the engine falls back to
// fetching the fragment unbound and hash-joining at the mediator — which
// is also the robust path when fragments identify entities in different
// URI spaces, since both sides are owl:sameAs-canonicalised before the
// join. The engine produces the same lazy solution stream as the rest of
// the system, so the streaming HTTP path (incremental rows, disconnect
// cancellation) works unchanged.
package decompose

import (
	"fmt"
	"sort"

	"sparqlrw/internal/obs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// Options tune decomposition and the join engine. The zero value selects
// sane defaults.
type Options struct {
	// BindBatch is the maximum VALUES rows per bound sub-query (default
	// 30, FedX's bound-join block size ballpark).
	BindBatch int
	// MaxBindRows caps how many distinct bindings a bound join ships in
	// VALUES blocks; beyond it the stage falls back to fetching the
	// fragment unbound and hash-joining at the mediator (default 1024).
	// Set to -1 to always hash-join (never bind).
	MaxBindRows int
	// MaxShards caps the VALUES shards of one bound stage (default 32).
	MaxShards int
	// Registry receives the decomposer's and join engine's metrics. Nil
	// creates a private registry; the mediator passes its shared one so
	// /metrics and Stats() read the same counters.
	Registry *obs.Registry
	// Cards is the observed-cardinality feedback store: the join engine
	// feeds it fragment actuals, and the decomposer consults it to
	// correct voiD estimates (when the store has corrections enabled).
	// Nil disables both directions.
	Cards *obs.CardStore
}

func (o Options) withDefaults() Options {
	if o.BindBatch <= 0 {
		o.BindBatch = 30
	}
	if o.MaxBindRows == 0 {
		o.MaxBindRows = 1024
	} else if o.MaxBindRows < 0 {
		o.MaxBindRows = -1
	}
	if o.MaxShards <= 0 {
		o.MaxShards = 32
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// unknownCard is the cardinality assumed for patterns whose data set
// publishes no usable voiD statistics: pessimistic, so fragments with
// real (smaller) figures are preferred as join seeds.
const unknownCard = int64(1) << 20

// Target is one endpoint a fragment dispatches to.
type Target struct {
	Dataset  string `json:"dataset"`
	Endpoint string `json:"endpoint"`
	// NeedsRewrite says the fragment must be translated for this data
	// set before dispatch.
	NeedsRewrite bool `json:"needsRewrite,omitempty"`
}

// Fragment is one ordered unit of a decomposition: a group of triple
// patterns evaluated together at its target endpoint(s).
type Fragment struct {
	// Exclusive marks an exclusive group: every pattern is answerable by
	// exactly one data set, so the endpoint joins the group locally.
	Exclusive bool `json:"exclusive"`
	// Targets are the endpoints the fragment dispatches to (one for an
	// exclusive group; every candidate for a shared pattern).
	Targets []Target `json:"targets"`
	// Patterns are the fragment's triple patterns, serialised for the
	// explain output.
	Patterns []string `json:"patterns"`
	// Filters are FILTER constraints pushed into the fragment (all their
	// variables are bound inside it).
	Filters []string `json:"filters,omitempty"`
	// EstCard is the voiD-statistics cardinality estimate that ordered
	// the fragment.
	EstCard int64 `json:"estimatedCardinality"`
	// Vars are the variables the fragment binds (its sub-query's
	// projection), in first-appearance order.
	Vars []string `json:"vars"`
	// JoinVars are the variables shared with earlier fragments — the
	// bound-join VALUES variables (empty for the first fragment, and for
	// cartesian stages).
	JoinVars []string `json:"joinVars,omitempty"`
	// RewriteOnt is the vocabulary namespace rewriting translates from
	// for this fragment's NeedsRewrite targets. It is the namespace of
	// the fragment's own patterns, which on a multi-vocabulary query may
	// differ from the query-level source ontology ("" = use the query's).
	RewriteOnt string `json:"rewriteSource,omitempty"`

	patterns []rdf.Triple
	filters  []sparql.Expression

	// statTerm/statShape key the fragment's estimate in the
	// observed-cardinality store: the predicate (or rdf:type class) and
	// ground-position shape of the cheapest pattern — the pattern whose
	// voiD figure became EstCard, so observed actuals calibrate exactly
	// the cell the next estimate reads.
	statTerm  string
	statShape string
	// estByDataset is the fragment's per-target-dataset estimate, the
	// figure an unbound dispatch's per-dataset actuals compare against.
	estByDataset map[string]int64
}

// ResidualFilter is a FILTER evaluated at the mediator because its
// variables span fragments.
type ResidualFilter struct {
	// Stage is the fragment index after which the filter's variables are
	// all bound.
	Stage  int    `json:"stage"`
	Filter string `json:"filter"`

	expr sparql.Expression
}

// Decomposition is an ordered per-BGP decomposition: the join-engine
// execution plan, and the shape /api/plan explains.
type Decomposition struct {
	Query     string `json:"query"`
	SourceOnt string `json:"source"`
	// Vars is the final projection.
	Vars []string `json:"vars"`
	// MultiSource reports that the fragments span more than one data set
	// (the case the whole-query path cannot answer).
	MultiSource bool `json:"multiSource"`
	// Fragments in join order, cheapest first, connected where possible.
	Fragments []*Fragment `json:"fragments"`
	// ResidualFilters are evaluated at the mediator, at the stage where
	// their variables are bound.
	ResidualFilters []ResidualFilter `json:"residualFilters,omitempty"`
	// Warnings flag plan hazards (cartesian join stages).
	Warnings []string `json:"warnings,omitempty"`

	distinct      bool
	limit, offset int
	prefixes      *rdf.PrefixMap
}

// Datasets returns the distinct data set URIs the decomposition touches,
// in fragment order.
func (d *Decomposition) Datasets() []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range d.Fragments {
		for _, t := range f.Targets {
			if !seen[t.Dataset] {
				seen[t.Dataset] = true
				out = append(out, t.Dataset)
			}
		}
	}
	return out
}

// Stats counts decomposer activity for /api/stats.
type Stats struct {
	// Decompositions is how many decompositions were built.
	Decompositions uint64 `json:"decompositions"`
	// Rejected counts queries that could not be decomposed (unsupported
	// shape, or a pattern with no source).
	Rejected uint64 `json:"rejected"`
	// ExclusiveGroups and SharedFragments count emitted fragments.
	ExclusiveGroups uint64 `json:"exclusiveGroups"`
	SharedFragments uint64 `json:"sharedFragments"`
}

// Decomposer partitions a query's BGP into per-endpoint fragments using
// the planner's per-pattern source selection and the voiD KB statistics.
type Decomposer struct {
	planner *plan.Planner
	opts    Options
	metrics decomposerMetrics
}

// decomposerMetrics are the decomposer's registry-backed counters;
// Stats() reads them back, and the shared registry renders them at
// /metrics.
type decomposerMetrics struct {
	decompositions  *obs.Counter
	rejected        *obs.Counter
	exclusiveGroups *obs.Counter
	sharedFragments *obs.Counter
}

// New returns a decomposer over the planner's knowledge bases.
func New(planner *plan.Planner, opts Options) *Decomposer {
	opts = opts.withDefaults()
	reg := opts.Registry
	return &Decomposer{
		planner: planner, opts: opts,
		metrics: decomposerMetrics{
			decompositions: reg.Counter("sparqlrw_decompose_decompositions_total",
				"Per-BGP decompositions built."),
			rejected: reg.Counter("sparqlrw_decompose_rejected_total",
				"Queries that could not be decomposed (unsupported shape or unanswerable pattern)."),
			exclusiveGroups: reg.Counter("sparqlrw_decompose_exclusive_groups_total",
				"Exclusive-group fragments emitted."),
			sharedFragments: reg.Counter("sparqlrw_decompose_shared_fragments_total",
				"Shared (multi-source) fragments emitted."),
		},
	}
}

// Options returns the decomposer's effective (defaulted) options.
func (d *Decomposer) Options() Options { return d.opts }

// Stats returns a snapshot of the decomposer's counters, read back from
// the metrics registry so the JSON view and /metrics cannot disagree.
func (d *Decomposer) Stats() Stats {
	return Stats{
		Decompositions:  uint64(d.metrics.decompositions.Value()),
		Rejected:        uint64(d.metrics.rejected.Value()),
		ExclusiveGroups: uint64(d.metrics.exclusiveGroups.Value()),
		SharedFragments: uint64(d.metrics.sharedFragments.Value()),
	}
}

func (d *Decomposer) reject(format string, args ...any) error {
	d.metrics.rejected.Inc()
	return fmt.Errorf("decompose: "+format, args...)
}

// Decompose builds the fragment plan for a SELECT query written against
// sourceOnt. It fails when the query's shape is unsupported (anything
// beyond a filtered BGP) or when some pattern no registered data set can
// answer.
func (d *Decomposer) Decompose(queryText, sourceOnt string) (*Decomposition, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, d.reject("parsing query: %v", err)
	}
	if q.Form != sparql.Select {
		return nil, d.reject("only SELECT queries decompose, got %s", q.Form)
	}
	if len(q.OrderBy) > 0 {
		return nil, d.reject("ORDER BY is not supported on the decomposed path")
	}
	patterns, filters, err := flatBGP(q)
	if err != nil {
		d.metrics.rejected.Inc()
		return nil, err
	}
	if len(patterns) == 0 {
		return nil, d.reject("query has no triple patterns")
	}

	// Per-pattern source selection: exclusive patterns group per data
	// set; shared patterns become their own multi-target fragments.
	groups := map[string]*Fragment{} // dataset URI -> exclusive group
	var groupOrder []string
	var fragments []*Fragment
	for _, tp := range patterns {
		sources := d.planner.PatternSources(tp)
		if len(sources) == 0 {
			return nil, d.reject("no registered data set can answer pattern { %s }", formatPattern(tp, q.Prefixes))
		}
		if len(sources) == 1 {
			src := sources[0]
			g, ok := groups[src.Dataset.URI]
			if !ok {
				g = &Fragment{Exclusive: true, Targets: []Target{{
					Dataset:  src.Dataset.URI,
					Endpoint: src.Dataset.SPARQLEndpoint,
				}}}
				groups[src.Dataset.URI] = g
				groupOrder = append(groupOrder, src.Dataset.URI)
			}
			g.patterns = append(g.patterns, tp)
			if src.NeedsRewrite {
				g.Targets[0].NeedsRewrite = true
				// Rewriting translates from the pattern's own vocabulary;
				// with sourceOnt as the default, only record a divergence.
				if ns := plan.PatternVocabulary(tp); ns != "" && ns != sourceOnt && g.RewriteOnt == "" {
					g.RewriteOnt = ns
				}
			}
			continue
		}
		f := &Fragment{patterns: []rdf.Triple{tp}}
		needsRewrite := false
		for _, src := range sources {
			f.Targets = append(f.Targets, Target{
				Dataset:      src.Dataset.URI,
				Endpoint:     src.Dataset.SPARQLEndpoint,
				NeedsRewrite: src.NeedsRewrite,
			})
			needsRewrite = needsRewrite || src.NeedsRewrite
		}
		if needsRewrite {
			if ns := plan.PatternVocabulary(tp); ns != "" && ns != sourceOnt {
				f.RewriteOnt = ns
			}
		}
		fragments = append(fragments, f)
	}
	for _, uri := range groupOrder {
		fragments = append(fragments, groups[uri])
	}

	// Estimate, order patterns within groups, finalise per-fragment vars.
	for _, f := range fragments {
		d.estimateFragment(f)
	}
	dec := &Decomposition{
		Query:     queryText,
		SourceOnt: sourceOnt,
		distinct:  q.Distinct || q.Reduced,
		limit:     q.Limit,
		offset:    q.Offset,
		prefixes:  q.Prefixes,
	}
	dec.Vars = q.SelectVars
	if q.SelectStar {
		dec.Vars = q.Vars()
	}
	orderFragments(dec, fragments)
	attachFilters(dec, filters, q.Prefixes)
	for _, f := range dec.Fragments {
		for _, tp := range f.patterns {
			f.Patterns = append(f.Patterns, formatPattern(tp, q.Prefixes))
		}
	}
	seen := map[string]bool{}
	for _, f := range dec.Fragments {
		for _, t := range f.Targets {
			seen[t.Dataset] = true
		}
	}
	dec.MultiSource = len(seen) > 1

	d.metrics.decompositions.Inc()
	for _, f := range dec.Fragments {
		if f.Exclusive {
			d.metrics.exclusiveGroups.Inc()
		} else {
			d.metrics.sharedFragments.Inc()
		}
	}
	return dec, nil
}

// flatBGP extracts the triple patterns and filters of a query whose WHERE
// clause is a plain filtered BGP, rejecting shapes the join engine cannot
// decompose soundly (OPTIONAL, UNION, nested groups, VALUES, blank-node
// patterns).
func flatBGP(q *sparql.Query) ([]rdf.Triple, []sparql.Expression, error) {
	var patterns []rdf.Triple
	var filters []sparql.Expression
	if q.Where == nil {
		return nil, nil, fmt.Errorf("decompose: query has no WHERE clause")
	}
	for _, el := range q.Where.Elements {
		switch e := el.(type) {
		case *sparql.BGP:
			for _, tp := range e.Patterns {
				for _, t := range tp.Terms() {
					if t.IsBlank() {
						return nil, nil, fmt.Errorf("decompose: blank-node patterns are not supported")
					}
				}
				patterns = append(patterns, tp)
			}
		case *sparql.Filter:
			filters = append(filters, e.Expr)
		default:
			return nil, nil, fmt.Errorf("decompose: unsupported pattern element %T (only a filtered BGP decomposes)", el)
		}
	}
	return patterns, filters, nil
}

// estimateFragment orders the fragment's patterns most-selective-first
// and sets its cardinality estimate: the cheapest pattern of an exclusive
// group (the join can produce no more than its smallest operand under the
// usual independence heuristic), the across-targets sum for shared
// fragments.
func (d *Decomposer) estimateFragment(f *Fragment) {
	type ranked struct {
		tp   rdf.Triple
		card int64
	}
	rs := make([]ranked, len(f.patterns))
	for i, tp := range f.patterns {
		var card int64
		for _, t := range f.Targets {
			card += d.patternCard(tp, t.Dataset)
		}
		rs[i] = ranked{tp: tp, card: card}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].card < rs[j].card })
	f.EstCard = rs[0].card
	if !f.Exclusive {
		// A shared fragment is a union across its targets: its extent is
		// the sum, not the min.
		f.EstCard = 0
		for _, r := range rs {
			f.EstCard += r.card
		}
	}
	// Key the estimate for observed-cardinality feedback: actuals from
	// unbound dispatches of this fragment calibrate the cheapest
	// pattern's cell — the figure that became EstCard.
	f.statTerm, f.statShape = patternStatKey(rs[0].tp)
	f.estByDataset = make(map[string]int64, len(f.Targets))
	for _, t := range f.Targets {
		est := int64(-1)
		for _, r := range rs {
			if c := d.patternCard(r.tp, t.Dataset); est < 0 || c < est {
				est = c
			}
		}
		f.estByDataset[t.Dataset] = est
	}
	f.patterns = f.patterns[:0]
	seen := map[string]bool{}
	for _, r := range rs {
		f.patterns = append(f.patterns, r.tp)
		for _, v := range r.tp.Vars() {
			if !seen[v] {
				seen[v] = true
				f.Vars = append(f.Vars, v)
			}
		}
	}
}

// patternCard estimates one pattern's cardinality at one data set from
// its voiD statistics: the property partition for bound predicates, the
// class partition for rdf:type patterns, the data set's total triple
// count otherwise, damped for each bound instance term (voiD publishes no
// per-term figures, so a fixed selectivity stands in). When the
// observed-cardinality store holds a correction for the pattern's cell
// (same dataset, predicate/class and shape) the observed figure replaces
// the static one, within the store's correction cap.
func (d *Decomposer) patternCard(tp rdf.Triple, datasetURI string) int64 {
	ds, ok := d.planner.Dataset(datasetURI)
	if !ok {
		return unknownCard
	}
	base := int64(-1)
	isType := tp.P.IsIRI() && tp.P.Value == rdf.RDFType
	if isType && tp.O.IsIRI() {
		if n, ok := ds.ClassEntities(tp.O.Value); ok {
			base = n
		}
	} else if tp.P.IsIRI() {
		if n, ok := ds.PropertyTriples(tp.P.Value); ok {
			base = n
		}
	}
	if base < 0 {
		if ds.Triples > 0 {
			base = ds.Triples
		} else {
			base = unknownCard
		}
	}
	const boundSelectivity = 100
	if tp.S.IsGround() {
		base /= boundSelectivity
	}
	if tp.O.IsGround() && !isType {
		base /= boundSelectivity
	}
	if base < 1 {
		base = 1
	}
	term, shape := patternStatKey(tp)
	return d.opts.Cards.Correct(datasetURI, term, shape, base)
}

// patternStatKey maps a pattern onto its observed-cardinality store
// cell: the class IRI for rdf:type patterns, the predicate IRI
// otherwise ("" for variable predicates), plus the ground-position
// shape. rdf:type objects count as part of the term, not as a ground
// object, mirroring patternCard's damping.
func patternStatKey(tp rdf.Triple) (term, shape string) {
	isType := tp.P.IsIRI() && tp.P.Value == rdf.RDFType
	if isType && tp.O.IsIRI() {
		term = tp.O.Value
	} else if tp.P.IsIRI() {
		term = tp.P.Value
	}
	return term, obs.PatternShape(tp.S.IsGround(), tp.O.IsGround() && !isType)
}

// orderFragments arranges fragments for left-to-right execution: the
// cheapest fragment seeds the join, then the cheapest fragment connected
// to the bound variables follows, avoiding cartesian stages whenever the
// join graph allows. Each fragment's JoinVars are the variables it shares
// with everything before it.
func orderFragments(dec *Decomposition, fragments []*Fragment) {
	remaining := append([]*Fragment(nil), fragments...)
	bound := map[string]bool{}
	for len(remaining) > 0 {
		best, bestConnected := -1, false
		for i, f := range remaining {
			connected := sharesVar(f, bound)
			switch {
			case best < 0,
				connected && !bestConnected,
				connected == bestConnected && f.EstCard < remaining[best].EstCard:
				best, bestConnected = i, connected
			}
		}
		f := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, v := range f.Vars {
			if bound[v] {
				f.JoinVars = append(f.JoinVars, v)
			}
		}
		sort.Strings(f.JoinVars)
		if len(dec.Fragments) > 0 && !bestConnected {
			dec.Warnings = append(dec.Warnings, fmt.Sprintf(
				"stage %d joins without shared variables (cartesian product)", len(dec.Fragments)))
		}
		for _, v := range f.Vars {
			bound[v] = true
		}
		dec.Fragments = append(dec.Fragments, f)
	}
}

func sharesVar(f *Fragment, bound map[string]bool) bool {
	for _, v := range f.Vars {
		if bound[v] {
			return true
		}
	}
	return false
}

// attachFilters pushes each FILTER into the first fragment that binds
// all its variables; the rest are evaluated at the mediator once their
// variables are bound (at the last stage if some variable never binds —
// SPARQL's unbound-in-FILTER semantics then exclude every row).
func attachFilters(dec *Decomposition, filters []sparql.Expression, pm *rdf.PrefixMap) {
	for _, expr := range filters {
		vars := exprVars(expr)
		pushed := false
		for _, f := range dec.Fragments {
			if varsSubset(vars, f.Vars) {
				f.filters = append(f.filters, expr)
				f.Filters = append(f.Filters, sparql.FormatExpr(expr, pm))
				pushed = true
				break
			}
		}
		if pushed {
			continue
		}
		stage := len(dec.Fragments) - 1
		bound := map[string]bool{}
		for i, f := range dec.Fragments {
			for _, v := range f.Vars {
				bound[v] = true
			}
			if varsSubset(vars, keys(bound)) {
				stage = i
				break
			}
		}
		dec.ResidualFilters = append(dec.ResidualFilters, ResidualFilter{
			Stage:  stage,
			Filter: sparql.FormatExpr(expr, pm),
			expr:   expr,
		})
	}
}

func exprVars(e sparql.Expression) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range sparql.ExprTerms(e) {
		if t.IsVar() && !seen[t.Value] {
			seen[t.Value] = true
			out = append(out, t.Value)
		}
	}
	return out
}

func varsSubset(sub, super []string) bool {
	set := map[string]bool{}
	for _, v := range super {
		set[v] = true
	}
	for _, v := range sub {
		if !set[v] {
			return false
		}
	}
	return true
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func formatPattern(tp rdf.Triple, pm *rdf.PrefixMap) string {
	q := sparql.NewQuery(sparql.Select)
	if pm != nil {
		q.Prefixes = pm
	}
	return sparql.FormatTriplePattern(tp, q.Prefixes)
}

// fragmentQuery builds the fragment's sub-query: an optional VALUES block
// of bound-join bindings, the fragment's patterns (most selective first)
// and its pushed filters, projected onto the fragment's variables.
// DISTINCT matches the executor's merge semantics (every federated result
// is deduplicated) and keeps bound-join result sets minimal.
func fragmentQuery(dec *Decomposition, f *Fragment, values *sparql.InlineData) *sparql.Query {
	q := sparql.NewQuery(sparql.Select)
	if dec.prefixes != nil {
		q.Prefixes = dec.prefixes.Clone()
	}
	q.Distinct = true
	q.SelectVars = append([]string(nil), f.Vars...)
	group := &sparql.GroupGraphPattern{}
	if values != nil {
		group.Elements = append(group.Elements, values)
	}
	group.Elements = append(group.Elements, &sparql.BGP{Patterns: append([]rdf.Triple(nil), f.patterns...)})
	for _, expr := range f.filters {
		group.Elements = append(group.Elements, &sparql.Filter{Expr: expr})
	}
	q.Where = group
	return q
}
