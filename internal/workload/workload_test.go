package workload

import (
	"testing"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if a.Southampton.Size() != b.Southampton.Size() || a.KISTI.Size() != b.KISTI.Size() {
		t.Fatal("generation not deterministic in sizes")
	}
	if a.Southampton.Size() == 0 || a.KISTI.Size() == 0 {
		t.Fatal("empty stores")
	}
	// Different seed changes the data.
	cfg := DefaultConfig()
	cfg.Seed = 7
	c := Generate(cfg)
	if c.KISTI.Size() == a.KISTI.Size() && c.Southampton.Size() == a.Southampton.Size() {
		// sizes can coincide; compare author sets
		same := true
		for k, v := range a.Authors {
			w, ok := c.Authors[k]
			if !ok || len(v) != len(w) {
				same = false
				break
			}
			for i := range v {
				if v[i] != w[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seed produced identical universe")
		}
	}
}

func TestSouthamptonShape(t *testing.T) {
	u := Generate(DefaultConfig())
	e := eval.New(u.Southampton)
	res, err := e.Select(sparql.MustParse(Figure1Query(0)))
	if err != nil {
		t.Fatal(err)
	}
	want := u.CoAuthorsIn(0, "southampton")
	if len(res.Solutions) != len(want) {
		t.Fatalf("figure-1 query found %d co-authors, ground truth %d", len(res.Solutions), len(want))
	}
	for _, s := range res.Solutions {
		if !s["a"].IsIRI() {
			t.Fatalf("non-IRI co-author: %v", s)
		}
	}
}

func TestKISTIUsesIndirectionAndOwnURIs(t *testing.T) {
	u := Generate(DefaultConfig())
	// No akt vocabulary in KISTI.
	if got := u.KISTI.PredicateCount(rdf.NewIRI(rdf.AKTHasAuthor)); got != 0 {
		t.Fatalf("KISTI contains akt:has-author: %d", got)
	}
	// Every hasCreator subject is a CreatorInfo instance.
	for _, tr := range u.KISTI.MatchAll(rdf.Triple{P: rdf.NewIRI(rdf.KISTIHasCreator)}) {
		if !u.KISTI.Has(rdf.NewTriple(tr.S, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(rdf.KISTICreatorInfo))) {
			t.Fatalf("creator info missing type: %v", tr.S)
		}
	}
	// URI spaces are disjoint.
	for _, tr := range u.KISTI.MatchAll(rdf.Triple{}) {
		if tr.S.IsIRI() && len(tr.S.Value) >= len(SotonIDSpace) && tr.S.Value[:len(SotonIDSpace)] == SotonIDSpace {
			t.Fatalf("southampton URI leaked into KISTI: %v", tr.S)
		}
	}
}

func TestCorefLinksMirroredEntities(t *testing.T) {
	u := Generate(DefaultConfig())
	if len(u.MirroredPapers) == 0 {
		t.Fatal("no mirrored papers")
	}
	j := u.MirroredPapers[0]
	if !u.Coref.Same(SotonPaper(j).Value, KistiPaper(j).Value) {
		t.Fatal("mirrored paper not co-referenced")
	}
	// Authors of mirrored papers are co-referenced.
	a := u.Authors["s"+itoa(j)][0]
	if !u.Coref.Same(SotonPerson(a).Value, KistiPerson(a).Value) {
		t.Fatal("author of mirrored paper not co-referenced")
	}
}

func itoa(i int) string { return fmt_Sprint(i) }

func fmt_Sprint(i int) string {
	// tiny helper to avoid importing fmt twice in tests
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}

func TestCoAuthorsGroundTruth(t *testing.T) {
	u := Generate(DefaultConfig())
	full := u.CoAuthors(0)
	soton := u.CoAuthorsIn(0, "southampton")
	kisti := u.CoAuthorsIn(0, "kisti")
	// The union of per-dataset views equals the global ground truth.
	union := map[int]bool{}
	for a := range soton {
		union[a] = true
	}
	for a := range kisti {
		union[a] = true
	}
	if len(union) != len(full) {
		t.Fatalf("union %d != full %d", len(union), len(full))
	}
	// KISTI view must be a subset of full.
	for a := range kisti {
		if !full[a] {
			t.Fatalf("kisti co-author %d not in ground truth", a)
		}
	}
}

func TestAKT2KISTICardinality(t *testing.T) {
	oa := AKT2KISTI()
	if err := oa.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(oa.Alignments) != 24 {
		t.Fatalf("AKT↔KISTI alignments = %d, paper reports 24", len(oa.Alignments))
	}
	// the complex alignment is present and level 2
	found := false
	for _, ea := range oa.Alignments {
		if ea.ID == akt2kistiNS+"creator_info" {
			found = true
			if ea.Level() != 2 || len(ea.RHS) != 2 || len(ea.FDs) != 2 {
				t.Fatalf("creator_info shape wrong: %v", ea)
			}
		}
	}
	if !found {
		t.Fatal("creator_info alignment missing")
	}
	if len(oa.TargetDatasets) != 1 || oa.TargetDatasets[0] != KistiVoidURI {
		t.Fatalf("TD = %v", oa.TargetDatasets)
	}
}

func TestECS2DBpediaCardinality(t *testing.T) {
	oa := ECS2DBpedia()
	if err := oa.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(oa.Alignments) != 42 {
		t.Fatalf("ECS↔DBpedia alignments = %d, paper reports 42", len(oa.Alignments))
	}
	// Mixed levels are present, as the paper describes "mixed concept and
	// properties alignments".
	levels := map[int]int{}
	for _, ea := range oa.Alignments {
		levels[ea.Level()]++
	}
	if levels[0] == 0 || levels[1] == 0 || levels[2] == 0 {
		t.Fatalf("level mix = %v", levels)
	}
	if len(oa.TargetDatasets) != 0 {
		t.Fatal("ECS↔DBpedia should be data-set-independent")
	}
}

func TestSyntheticAlignmentsAndQueries(t *testing.T) {
	eas := SyntheticAlignments(16)
	if len(eas) != 16 {
		t.Fatalf("synthetic = %d", len(eas))
	}
	for _, ea := range eas {
		if err := ea.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	q := SyntheticBGPQuery(8, 16)
	parsed := sparql.MustParse(q)
	if len(parsed.BGPs()[0].Patterns) != 8 {
		t.Fatalf("synthetic query size wrong")
	}
	if _, err := sparql.Parse(ChainQuery(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := sparql.Parse(TitleQuery(3)); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapFractionRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Overlap = 0.25
	u := Generate(cfg)
	got := float64(len(u.MirroredPapers)) / float64(cfg.Papers)
	if got < 0.2 || got > 0.3 {
		t.Fatalf("overlap = %f, want ~0.25", got)
	}
	cfg.Overlap = 0
	u0 := Generate(cfg)
	if len(u0.MirroredPapers) != 0 {
		t.Fatal("zero overlap produced mirrors")
	}
}
