package workload

import (
	"fmt"
	"strconv"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
)

// The citation-metrics data set: a second vocabulary served by its own
// repository but describing the *same* Southampton paper URIs — the
// cross-vocabulary regime per-BGP decomposition exists for. No alignment
// connects it to AKT, so no single repository can answer a query spanning
// both vocabularies; the mediator must split the BGP and join.

const (
	// MetricsNS is the citation-metrics vocabulary namespace.
	MetricsNS = "http://metrics.example/ontology#"
	// MetricsVoidURI identifies the metrics data set in the voiD KB.
	MetricsVoidURI = "http://metrics.example/void"
	// MetricsCitationCount is the papers' citation-count predicate.
	MetricsCitationCount = MetricsNS + "citationCount"
	// MetricsVenue is the papers' publication-venue predicate.
	MetricsVenue = MetricsNS + "venue"
)

// CitationCount returns the deterministic citation count of Southampton
// paper j in the metrics data set (tests compute ground truth from it).
func CitationCount(j int) int { return (j*7 + 3) % 100 }

// MetricsStore derives the citation-metrics data set for a universe:
// every Southampton paper carries a citation count and a venue, keyed by
// the Southampton URI itself (shared URI space, different vocabulary).
func MetricsStore(u *Universe) *store.Store {
	st := store.New()
	count := rdf.NewIRI(MetricsCitationCount)
	venue := rdf.NewIRI(MetricsVenue)
	for j := 0; j < u.Cfg.Papers; j++ {
		paper := SotonPaper(j)
		st.Add(rdf.Triple{S: paper, P: count,
			O: rdf.NewTypedLiteral(strconv.Itoa(CitationCount(j)), rdf.XSDInteger)})
		st.Add(rdf.Triple{S: paper, P: venue,
			O: rdf.NewLiteral(fmt.Sprintf("venue-%d", j%7))})
	}
	return st
}

// CrossVocabularyQuery returns a SELECT whose BGP spans the AKT and
// metrics vocabularies: co-authors of person i's papers together with
// each paper's citation count. Only the AKT repository can answer the
// first two patterns and only the metrics repository the third, so the
// query exercises exclusive-group decomposition end to end.
func CrossVocabularyQuery(i int) string {
	return fmt.Sprintf(`PREFIX akt:<%s>
PREFIX m:<%s>
SELECT ?paper ?a ?c WHERE {
  ?paper akt:has-author <%s> .
  ?paper akt:has-author ?a .
  ?paper m:citationCount ?c .
}`, rdf.AKTNS, MetricsNS, SotonPerson(i).Value)
}
