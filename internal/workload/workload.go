// Package workload generates the synthetic stand-ins for the paper's data
// sets (the published RKB explorer repositories are long gone): a
// Southampton-like publication set in the AKT ontology, a partially
// overlapping KISTI-like set with the CreatorInfo indirection and its own
// URI space, DBpedia/ECS-like sets for the 42-alignment KB, the owl:sameAs
// links between them, the alignment knowledge bases with the paper's
// reported cardinalities (24 AKT↔KISTI, 42 ECS↔DBpedia, §3.4), and the
// query workloads the experiments run. All generation is deterministic in
// the seed.
package workload

import (
	"fmt"
	"math/rand"

	"sparqlrw/internal/coref"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
)

// URI spaces of the generated data sets, mirroring the paper's.
const (
	SotonIDSpace = "http://southampton.rkbexplorer.com/id/"
	KistiIDSpace = "http://kisti.rkbexplorer.com/id/"
	ECSIDSpace   = "http://rdf.ecs.soton.ac.uk/id/"
	DBPIDSpace   = "http://dbpedia.org/resource/"

	// KistiURIPattern is the regex form used in functional dependencies,
	// exactly as written in the paper's example.
	KistiURIPattern = `http://kisti\.rkbexplorer\.com/id/\S*`
	SotonURIPattern = `http://southampton\.rkbexplorer\.com/id/\S*`
	DBPURIPattern   = `http://dbpedia\.org/resource/\S*`
	ECSURIPattern   = `http://rdf\.ecs\.soton\.ac\.uk/id/\S*`
)

// voiD URIs of the generated data sets.
const (
	SotonVoidURI = "http://southampton.rkbexplorer.com/id/void"
	KistiVoidURI = "http://kisti.rkbexplorer.com/id/void"
	ECSVoidURI   = "http://rdf.ecs.soton.ac.uk/id/void"
	DBPVoidURI   = "http://dbpedia.org/void"
)

// Config sizes a universe.
type Config struct {
	// Persons is the number of researchers.
	Persons int
	// Papers is the number of Southampton papers.
	Papers int
	// MaxAuthors bounds authors per paper (uniform 1..MaxAuthors).
	MaxAuthors int
	// Overlap is the fraction of Southampton papers mirrored in KISTI.
	Overlap float64
	// KistiExtra is the fraction (of Papers) of additional KISTI-only
	// papers; these are what federated querying recovers (recall, E6).
	KistiExtra float64
	// Seed drives all pseudo-random choices.
	Seed int64
}

// DefaultConfig returns a small but representative universe.
func DefaultConfig() Config {
	return Config{Persons: 100, Papers: 300, MaxAuthors: 4, Overlap: 0.5, KistiExtra: 0.3, Seed: 42}
}

// Universe holds the generated data sets and their co-reference links.
type Universe struct {
	Cfg         Config
	Southampton *store.Store
	KISTI       *store.Store
	Coref       *coref.Store
	// Authorship of every paper, by paper key ("s<j>" for Southampton
	// papers, "k<j>" for KISTI-only ones) to person indices; used by
	// tests and the recall experiment to compute ground truth.
	Authors map[string][]int
	// MirroredPapers lists Southampton paper indices mirrored in KISTI.
	MirroredPapers []int
	// ExtraPapers is the number of KISTI-only papers.
	ExtraPapers int
}

// SotonPerson returns the Southampton URI of person i.
func SotonPerson(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sperson-%05d", SotonIDSpace, i))
}

// SotonPaper returns the Southampton URI of paper j.
func SotonPaper(j int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%spaper-%05d", SotonIDSpace, j))
}

// KistiPerson returns the KISTI URI of person i (the PER_ shape of the
// paper's worked example).
func KistiPerson(i int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sPER_%011d", KistiIDSpace, i))
}

// KistiPaper returns the KISTI URI of Southampton paper j.
func KistiPaper(j int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sART_%011d", KistiIDSpace, j))
}

// KistiExtraPaper returns the URI of KISTI-only paper j.
func KistiExtraPaper(j int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%sART_X%010d", KistiIDSpace, j))
}

// Generate builds a universe from the configuration.
func Generate(cfg Config) *Universe {
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := &Universe{
		Cfg:         cfg,
		Southampton: store.New(),
		KISTI:       store.New(),
		Coref:       coref.NewStore(),
		Authors:     map[string][]int{},
	}
	typ := rdf.NewIRI(rdf.RDFType)

	// Southampton persons (AKT vocabulary).
	for i := 0; i < cfg.Persons; i++ {
		p := SotonPerson(i)
		u.Southampton.Add(rdf.NewTriple(p, typ, rdf.NewIRI(rdf.AKTPerson)))
		u.Southampton.Add(rdf.NewTriple(p, rdf.NewIRI(rdf.AKTFullName), rdf.NewLiteral(fmt.Sprintf("Person %d", i))))
	}

	pickAuthors := func() []int {
		n := 1 + rng.Intn(cfg.MaxAuthors)
		seen := map[int]bool{}
		var out []int
		for len(out) < n {
			a := rng.Intn(cfg.Persons)
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		return out
	}

	// Southampton papers.
	for j := 0; j < cfg.Papers; j++ {
		paper := SotonPaper(j)
		u.Southampton.Add(rdf.NewTriple(paper, typ, rdf.NewIRI(rdf.AKTArticleRef)))
		u.Southampton.Add(rdf.NewTriple(paper, rdf.NewIRI(rdf.AKTHasTitle), rdf.NewLiteral(fmt.Sprintf("Paper Title %d", j))))
		u.Southampton.Add(rdf.NewTriple(paper, rdf.NewIRI(rdf.AKTHasDate),
			rdf.NewTypedLiteral(fmt.Sprint(2000+j%10), rdf.XSDGYear)))
		authors := pickAuthors()
		u.Authors[fmt.Sprint("s", j)] = authors
		for _, a := range authors {
			u.Southampton.Add(rdf.NewTriple(paper, rdf.NewIRI(rdf.AKTHasAuthor), SotonPerson(a)))
		}
	}

	// KISTI mirrors: a deterministic subset of Southampton papers, with
	// the CreatorInfo indirection and the KISTI URI space.
	kistiPersons := map[int]bool{}
	addKistiPaper := func(paper rdf.Term, title string, year int, authors []int) {
		u.KISTI.Add(rdf.NewTriple(paper, typ, rdf.NewIRI(rdf.KISTIArticle)))
		u.KISTI.Add(rdf.NewTriple(paper, rdf.NewIRI(rdf.KISTITitle), rdf.NewLiteral(title)))
		u.KISTI.Add(rdf.NewTriple(paper, rdf.NewIRI(rdf.KISTIYear),
			rdf.NewTypedLiteral(fmt.Sprint(year), rdf.XSDGYear)))
		for k, a := range authors {
			ci := rdf.NewIRI(fmt.Sprintf("%s/creator-%d", paper.Value, k))
			u.KISTI.Add(rdf.NewTriple(paper, rdf.NewIRI(rdf.KISTIHasCreatorInfo), ci))
			u.KISTI.Add(rdf.NewTriple(ci, typ, rdf.NewIRI(rdf.KISTICreatorInfo)))
			u.KISTI.Add(rdf.NewTriple(ci, rdf.NewIRI(rdf.KISTIHasCreator), KistiPerson(a)))
			kistiPersons[a] = true
		}
	}
	for j := 0; j < cfg.Papers; j++ {
		if float64(j%100) >= cfg.Overlap*100 {
			continue
		}
		u.MirroredPapers = append(u.MirroredPapers, j)
		paper := KistiPaper(j)
		addKistiPaper(paper, fmt.Sprintf("Paper Title %d", j), 2000+j%10, u.Authors[fmt.Sprint("s", j)])
		u.Coref.Add(SotonPaper(j).Value, paper.Value)
	}

	// KISTI-only papers: new publications by known authors — the recall
	// federated querying gains.
	u.ExtraPapers = int(float64(cfg.Papers) * cfg.KistiExtra)
	for j := 0; j < u.ExtraPapers; j++ {
		paper := KistiExtraPaper(j)
		authors := pickAuthors()
		u.Authors[fmt.Sprint("k", j)] = authors
		addKistiPaper(paper, fmt.Sprintf("KISTI Paper %d", j), 2005+j%5, authors)
	}

	// KISTI person descriptions + co-reference links for every person
	// KISTI mentions.
	for i := 0; i < cfg.Persons; i++ {
		if !kistiPersons[i] {
			continue
		}
		p := KistiPerson(i)
		u.KISTI.Add(rdf.NewTriple(p, typ, rdf.NewIRI(rdf.KISTIPerson)))
		u.KISTI.Add(rdf.NewTriple(p, rdf.NewIRI(rdf.KISTIName), rdf.NewLiteral(fmt.Sprintf("Person %d", i))))
		u.Coref.Add(SotonPerson(i).Value, p.Value)
	}
	return u
}

// CoAuthors returns the ground-truth distinct co-author indices of person
// i across both data sets (excluding i itself): the federated answer the
// recall experiment checks against.
func (u *Universe) CoAuthors(i int) map[int]bool {
	out := map[int]bool{}
	for _, authors := range u.Authors {
		mine := false
		for _, a := range authors {
			if a == i {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		for _, a := range authors {
			if a != i {
				out[a] = true
			}
		}
	}
	return out
}

// CoAuthorsIn returns the co-authors of person i visible in only the
// Southampton set (key prefix "s") or only KISTI's holdings (mirrored
// papers + extras).
func (u *Universe) CoAuthorsIn(i int, dataset string) map[int]bool {
	mirrored := map[int]bool{}
	for _, j := range u.MirroredPapers {
		mirrored[j] = true
	}
	out := map[int]bool{}
	for key, authors := range u.Authors {
		var in bool
		switch dataset {
		case "southampton":
			in = key[0] == 's'
		case "kisti":
			if key[0] == 'k' {
				in = true
			} else {
				var j int
				fmt.Sscanf(key, "s%d", &j)
				in = mirrored[j]
			}
		}
		if !in {
			continue
		}
		mine := false
		for _, a := range authors {
			if a == i {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		for _, a := range authors {
			if a != i {
				out[a] = true
			}
		}
	}
	return out
}

// Figure1Query returns the paper's Figure 1 co-author query for person i.
func Figure1Query(i int) string {
	return fmt.Sprintf(`PREFIX akt:<%s>
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author <%s> .
  ?paper akt:has-author ?a .
  FILTER (!(?a = <%s>))
}`, rdf.AKTNS, SotonPerson(i).Value, SotonPerson(i).Value)
}

// ChainQuery returns a BGP of k patterns walking authorship links, used by
// the rewriting-scaling experiment (E10): alternating has-author /
// has-author⁻¹ hops.
func ChainQuery(k int) string {
	body := ""
	for n := 0; n < k; n++ {
		if n%2 == 0 {
			body += fmt.Sprintf("  ?p%d akt:has-author ?a%d .\n", n/2, (n+1)/2)
		} else {
			body += fmt.Sprintf("  ?p%d akt:has-author ?a%d .\n", n/2+1, (n+1)/2)
		}
	}
	return fmt.Sprintf("PREFIX akt:<%s>\nSELECT * WHERE {\n%s}", rdf.AKTNS, body)
}

// TitleQuery returns a title lookup for Southampton paper j.
func TitleQuery(j int) string {
	return fmt.Sprintf(`PREFIX akt:<%s>
SELECT ?t WHERE { <%s> akt:has-title ?t }`, rdf.AKTNS, SotonPaper(j).Value)
}
