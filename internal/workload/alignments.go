package workload

import (
	"fmt"

	"sparqlrw/internal/align"
	"sparqlrw/internal/rdf"
)

// Alignment knowledge bases with the cardinalities the paper reports for
// its deployed system (§3.4): 24 entity alignments between the AKT data
// and the KISTI data set, 42 between the ECS data set and DBpedia.

const (
	akt2kistiNS = "http://ecs.soton.ac.uk/alignments/akt2kisti#"
	ecs2dbpNS   = "http://ecs.soton.ac.uk/alignments/ecs2dbpedia#"
)

// corefClass builds a class alignment whose instance URIs are translated
// into the target URI space with a sameas functional dependency.
func corefClass(id, c1, c2, uriSpace string) *align.EntityAlignment {
	return &align.EntityAlignment{
		ID:  id,
		LHS: rdf.Triple{S: rdf.NewVar("x1"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(c1)},
		RHS: []rdf.Triple{{S: rdf.NewVar("x2"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI(c2)}},
		FDs: []align.FD{{Var: "x2", Func: rdf.MapSameAs,
			Args: []rdf.Term{rdf.NewVar("x1"), rdf.NewLiteral(uriSpace)}}},
	}
}

// corefProp builds a property alignment whose subject URI is translated
// into the target URI space (objects are literals or handled elsewhere).
func corefProp(id, p1, p2, uriSpace string) *align.EntityAlignment {
	return &align.EntityAlignment{
		ID:  id,
		LHS: rdf.Triple{S: rdf.NewVar("s1"), P: rdf.NewIRI(p1), O: rdf.NewVar("o")},
		RHS: []rdf.Triple{{S: rdf.NewVar("s2"), P: rdf.NewIRI(p2), O: rdf.NewVar("o")}},
		FDs: []align.FD{{Var: "s2", Func: rdf.MapSameAs,
			Args: []rdf.Term{rdf.NewVar("s1"), rdf.NewLiteral(uriSpace)}}},
	}
}

// creatorInfoAlignment is the paper's §3.2.2 running example: the complex
// akt:has-author → CreatorInfo-chain rewrite with two sameas FDs.
func creatorInfoAlignment() *align.EntityAlignment {
	pat := rdf.NewLiteral(KistiURIPattern)
	return &align.EntityAlignment{
		ID:  akt2kistiNS + "creator_info",
		LHS: rdf.Triple{S: rdf.NewVar("p1"), P: rdf.NewIRI(rdf.AKTHasAuthor), O: rdf.NewVar("a1")},
		RHS: []rdf.Triple{
			{S: rdf.NewVar("p2"), P: rdf.NewIRI(rdf.KISTIHasCreatorInfo), O: rdf.NewVar("c")},
			{S: rdf.NewVar("c"), P: rdf.NewIRI(rdf.KISTIHasCreator), O: rdf.NewVar("a2")},
		},
		FDs: []align.FD{
			{Var: "a2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("a1"), pat}},
			{Var: "p2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("p1"), pat}},
		},
	}
}

// AKT2KISTI builds the 24-entity-alignment ontology alignment between the
// AKT ontology (source) and the KISTI ontology/data set (target), per
// §3.2.1's example coordinates.
func AKT2KISTI() *align.OntologyAlignment {
	id := func(s string) string { return akt2kistiNS + s }
	ks := KistiURIPattern
	eas := []*align.EntityAlignment{
		// 1: the complex authorship chain (level 2).
		creatorInfoAlignment(),
		// 2..9: class alignments into the KISTI type system.
		corefClass(id("person"), rdf.AKTPerson, rdf.KISTIPerson, ks),
		corefClass(id("article"), rdf.AKTArticleRef, rdf.KISTIArticle, ks),
		corefClass(id("paper"), rdf.AKTPaperRef, rdf.KISTIArticle, ks),
		corefClass(id("book"), rdf.AKTNS+"Book-Reference", rdf.KISTIArticle, ks),
		corefClass(id("thesis"), rdf.AKTNS+"Thesis-Reference", rdf.KISTIArticle, ks),
		corefClass(id("proceedings"), rdf.AKTNS+"Proceedings-Paper-Reference", rdf.KISTIArticle, ks),
		corefClass(id("journal"), rdf.AKTNS+"Journal-Paper-Reference", rdf.KISTIArticle, ks),
		corefClass(id("organization"), rdf.AKTOrganization, rdf.KISTINS+"Institution", ks),
		// 10..19: datatype/object property alignments with subject coref.
		corefProp(id("title"), rdf.AKTHasTitle, rdf.KISTITitle, ks),
		corefProp(id("date"), rdf.AKTHasDate, rdf.KISTIYear, ks),
		corefProp(id("name"), rdf.AKTFullName, rdf.KISTIName, ks),
		corefProp(id("web"), rdf.AKTHasWebAddr, rdf.KISTINS+"url", ks),
		corefProp(id("affiliation"), rdf.AKTHasAffil, rdf.KISTINS+"affiliation", ks),
		corefProp(id("volume"), rdf.AKTNS+"has-volume", rdf.KISTINS+"volume", ks),
		corefProp(id("pages"), rdf.AKTNS+"has-page-numbers", rdf.KISTINS+"pages", ks),
		corefProp(id("doi"), rdf.AKTNS+"has-doi", rdf.KISTINS+"doi", ks),
		corefProp(id("abstract"), rdf.AKTNS+"has-abstract", rdf.KISTINS+"abstract", ks),
		corefProp(id("issn"), rdf.AKTNS+"has-issn", rdf.KISTINS+"issn", ks),
		// 20..24: vocabulary-level alignments without URI translation
		// (level 0), for properties whose values stay literal-for-literal.
		align.PropertyAlignment(id("cites"), rdf.AKTNS+"cites-publication-reference", rdf.KISTINS+"cites"),
		align.PropertyAlignment(id("topic"), rdf.AKTNS+"addresses-generic-area-of-interest", rdf.KISTINS+"topic"),
		align.PropertyAlignment(id("editor"), rdf.AKTNS+"has-editor", rdf.KISTINS+"editor"),
		align.PropertyAlignment(id("publisher"), rdf.AKTNS+"has-publisher", rdf.KISTINS+"publisher"),
		align.PropertyAlignment(id("language"), rdf.AKTNS+"has-language", rdf.KISTINS+"language"),
	}
	return &align.OntologyAlignment{
		URI:              "http://ecs.soton.ac.uk/alignments/akt2kisti",
		SourceOntologies: []string{rdf.AKTNS},
		TargetOntologies: []string{rdf.KISTINS},
		TargetDatasets:   []string{KistiVoidURI},
		Alignments:       eas,
	}
}

// ECS2DBpedia builds the 42-entity-alignment ontology alignment between
// the ECS schema and DBpedia. It is data-set-independent (no TD), so its
// alignments are reusable for any data set adopting the DBpedia ontology,
// per §3.2.1's reuse discussion.
func ECS2DBpedia() *align.OntologyAlignment {
	id := func(s string) string { return ecs2dbpNS + s }
	ecs := func(s string) string { return rdf.ECSNS + s }
	dbo := func(s string) string { return rdf.DBONS + s }
	foaf := func(s string) string { return rdf.FOAFNS + s }
	ds := DBPURIPattern

	var eas []*align.EntityAlignment
	// 12 class alignments.
	classes := [][2]string{
		{"Person", "Person"}, {"Student", "Student"}, {"Professor", "Professor"},
		{"Lecturer", "Lecturer"}, {"Publication", "Work"}, {"Article", "Article"},
		{"Book", "Book"}, {"Thesis", "Thesis"}, {"Project", "Project"},
		{"ResearchGroup", "Organisation"}, {"School", "University"}, {"Seminar", "Event"},
	}
	for _, c := range classes {
		eas = append(eas, corefClass(id("class_"+c[0]), ecs(c[0]), dbo(c[1]), ds))
	}
	// 18 property alignments with subject coref.
	props := [][2]string{
		{"name", "name"}, {"givenName", "givenName"}, {"familyName", "surname"},
		{"email", "email"}, {"homepage", "homepage"}, {"phone", "phone"},
		{"title", "title"}, {"abstract", "abstract"}, {"year", "year"},
		{"supervisor", "doctoralAdvisor"}, {"memberOf", "affiliation"},
		{"worksOn", "project"}, {"funds", "fundedBy"}, {"address", "address"},
		{"room", "location"}, {"fax", "fax"}, {"photo", "depiction"}, {"bio", "comment"},
	}
	for _, p := range props {
		eas = append(eas, corefProp(id("prop_"+p[0]), ecs(p[0]), dbo(p[1]), ds))
	}
	// 6 FOAF-flavoured level-0 alignments (vocabulary only).
	foafProps := [][2]string{
		{"knows", "knows"}, {"interest", "topic_interest"}, {"nick", "nick"},
		{"weblog", "weblog"}, {"publications", "publications"}, {"account", "account"},
	}
	for _, p := range foafProps {
		eas = append(eas, align.PropertyAlignment(id("foaf_"+p[0]), ecs(p[0]), foaf(p[1])))
	}
	// 4 level-1 alignments: one ECS class maps to an intersection or a
	// value partition on the DBpedia side (§3.2.2's level-1 examples).
	x := rdf.NewVar("x")
	typ := rdf.NewIRI(rdf.RDFType)
	eas = append(eas, &align.EntityAlignment{
		ID:  id("phd_student"),
		LHS: rdf.Triple{S: x, P: typ, O: rdf.NewIRI(ecs("PhDStudent"))},
		RHS: []rdf.Triple{
			{S: x, P: typ, O: rdf.NewIRI(dbo("Student"))},
			{S: x, P: rdf.NewIRI(dbo("educationLevel")), O: rdf.NewLiteral("PhD")},
		},
	})
	eas = append(eas, &align.EntityAlignment{
		ID:  id("emeritus"),
		LHS: rdf.Triple{S: x, P: typ, O: rdf.NewIRI(ecs("EmeritusProfessor"))},
		RHS: []rdf.Triple{
			{S: x, P: typ, O: rdf.NewIRI(dbo("Professor"))},
			{S: x, P: rdf.NewIRI(dbo("status")), O: rdf.NewLiteral("Emeritus")},
		},
	})
	eas = append(eas, &align.EntityAlignment{
		ID:  id("journal_article"),
		LHS: rdf.Triple{S: x, P: typ, O: rdf.NewIRI(ecs("JournalArticle"))},
		RHS: []rdf.Triple{
			{S: x, P: typ, O: rdf.NewIRI(dbo("Article"))},
			{S: x, P: rdf.NewIRI(dbo("publicationType")), O: rdf.NewLiteral("journal")},
		},
	})
	eas = append(eas, &align.EntityAlignment{
		ID:  id("conference_paper"),
		LHS: rdf.Triple{S: x, P: typ, O: rdf.NewIRI(ecs("ConferencePaper"))},
		RHS: []rdf.Triple{
			{S: x, P: typ, O: rdf.NewIRI(dbo("Article"))},
			{S: x, P: rdf.NewIRI(dbo("publicationType")), O: rdf.NewLiteral("conference")},
		},
	})
	// 2 structural (level 2) alignments with an intermediate node, in the
	// creator_info style.
	eas = append(eas, &align.EntityAlignment{
		ID:  id("author_chain"),
		LHS: rdf.Triple{S: rdf.NewVar("p1"), P: rdf.NewIRI(ecs("hasAuthor")), O: rdf.NewVar("a1")},
		RHS: []rdf.Triple{
			{S: rdf.NewVar("p2"), P: rdf.NewIRI(dbo("author")), O: rdf.NewVar("a2")},
		},
		FDs: []align.FD{
			{Var: "p2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("p1"), rdf.NewLiteral(ds)}},
			{Var: "a2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("a1"), rdf.NewLiteral(ds)}},
		},
	})
	eas = append(eas, &align.EntityAlignment{
		ID:  id("affiliation_chain"),
		LHS: rdf.Triple{S: rdf.NewVar("x1"), P: rdf.NewIRI(ecs("inGroup")), O: rdf.NewVar("g1")},
		RHS: []rdf.Triple{
			{S: rdf.NewVar("x2"), P: rdf.NewIRI(dbo("memberOf")), O: rdf.NewVar("m")},
			{S: rdf.NewVar("m"), P: rdf.NewIRI(dbo("organisation")), O: rdf.NewVar("g2")},
		},
		FDs: []align.FD{
			{Var: "x2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("x1"), rdf.NewLiteral(ds)}},
			{Var: "g2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("g1"), rdf.NewLiteral(ds)}},
		},
	})

	return &align.OntologyAlignment{
		URI:              "http://ecs.soton.ac.uk/alignments/ecs2dbpedia",
		SourceOntologies: []string{rdf.ECSNS},
		TargetOntologies: []string{rdf.DBONS, rdf.FOAFNS},
		Alignments:       eas,
	}
}

// SyntheticAlignments builds n property alignments over generated
// vocabularies, for the rewriting-scaling experiment (E10).
func SyntheticAlignments(n int) []*align.EntityAlignment {
	out := make([]*align.EntityAlignment, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, align.PropertyAlignment(
			fmt.Sprintf("http://ecs.soton.ac.uk/alignments/synth#p%d", i),
			fmt.Sprintf("http://source.example/ontology#p%d", i),
			fmt.Sprintf("http://target.example/ontology#q%d", i),
		))
	}
	return out
}

// SyntheticBGPQuery builds a SELECT over k patterns using the synthetic
// vocabulary; pattern i uses predicate p(i mod preds).
func SyntheticBGPQuery(k, preds int) string {
	body := ""
	for i := 0; i < k; i++ {
		body += fmt.Sprintf("  ?s%d <http://source.example/ontology#p%d> ?o%d .\n", i, i%preds, i)
	}
	return "SELECT * WHERE {\n" + body + "}"
}
