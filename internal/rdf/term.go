// Package rdf provides the core RDF data model used throughout the
// repository: terms (IRIs, literals, blank nodes and — because this code
// base manipulates SPARQL patterns as well as ground data — variables),
// triples, prefix maps, and the vocabularies referenced by the paper
// (RDF/RDFS/OWL/XSD, voiD, the AKT and KISTI ontologies, and the `map:`
// alignment vocabulary of Correndo et al., EDBT 2010).
//
// Terms are small comparable value types so they can be used directly as
// Go map keys; the triple store in internal/store relies on this.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the four kinds of term that can occur in a triple
// pattern. Ground RDF data only contains IRIs, literals and blank nodes;
// variables appear in SPARQL patterns and in entity alignments (where the
// paper encodes them as blank nodes and we canonicalise them to variables).
type TermKind uint8

const (
	// KindAny is the zero kind. A zero Term acts as a wildcard in store
	// match operations and is otherwise invalid inside data triples.
	KindAny TermKind = iota
	// KindIRI identifies an IRI reference term.
	KindIRI
	// KindLiteral identifies an RDF literal (plain, typed or language tagged).
	KindLiteral
	// KindBlank identifies a blank node with a local label.
	KindBlank
	// KindVar identifies a SPARQL/alignment variable.
	KindVar
)

// String returns a human readable kind name.
func (k TermKind) String() string {
	switch k {
	case KindAny:
		return "any"
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	case KindVar:
		return "var"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term or SPARQL variable. It is an immutable value type:
// two terms are equal (==) exactly when they denote the same RDF term.
//
// Fields are interpreted by Kind:
//
//	KindIRI     Value = IRI string
//	KindLiteral Value = lexical form, Datatype = datatype IRI ("" = xsd:string plain),
//	            Lang = language tag ("" = none)
//	KindBlank   Value = blank node label (without the "_:" prefix)
//	KindVar     Value = variable name (without the "?"/"$" sigil)
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// Any is the wildcard term used in store match calls.
var Any = Term{}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: strings.ToLower(lang)}
}

// NewBlank returns a blank node term with the given label.
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewVar returns a variable term with the given name (no sigil).
func NewVar(name string) Term { return Term{Kind: KindVar, Value: name} }

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDecimal returns an xsd:decimal literal.
func NewDecimal(v float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(v, 'f', -1, 64), Datatype: XSDDecimal}
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return Term{Kind: KindLiteral, Value: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsGround reports whether the term is a ground RDF term (IRI or literal).
// Blank nodes are existentials and variables are unbound, so neither is
// ground in the sense used by the paper's functional dependencies.
func (t Term) IsGround() bool { return t.Kind == KindIRI || t.Kind == KindLiteral }

// IsZero reports whether the term is the wildcard zero value.
func (t Term) IsZero() bool { return t.Kind == KindAny }

// Equal reports whether two terms are identical RDF terms.
func (t Term) Equal(o Term) bool { return t == o }

// IsNumericLiteral reports whether the term is a literal with one of the
// XSD numeric datatypes understood by the SPARQL expression evaluator.
func (t Term) IsNumericLiteral() bool {
	if t.Kind != KindLiteral {
		return false
	}
	switch t.Datatype {
	case XSDInteger, XSDDecimal, XSDDouble, XSDFloat, XSDInt, XSDLong, XSDShort,
		XSDByte, XSDNonNegativeInteger, XSDPositiveInteger, XSDNegativeInteger,
		XSDNonPositiveInteger, XSDUnsignedInt, XSDUnsignedLong:
		return true
	}
	return false
}

// Float returns the numeric value of a numeric literal.
func (t Term) Float() (float64, bool) {
	if !t.IsNumericLiteral() {
		return 0, false
	}
	f, err := strconv.ParseFloat(t.Value, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// Int returns the integer value of an xsd:integer-family literal.
func (t Term) Int() (int64, bool) {
	if t.Kind != KindLiteral {
		return 0, false
	}
	switch t.Datatype {
	case XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte, XSDNonNegativeInteger,
		XSDPositiveInteger, XSDNegativeInteger, XSDNonPositiveInteger:
		n, err := strconv.ParseInt(t.Value, 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	}
	return 0, false
}

// Bool returns the value of an xsd:boolean literal.
func (t Term) Bool() (bool, bool) {
	if t.Kind != KindLiteral || t.Datatype != XSDBoolean {
		return false, false
	}
	switch t.Value {
	case "true", "1":
		return true, true
	case "false", "0":
		return false, true
	}
	return false, false
}

// String renders the term in N-Triples-like concrete syntax: <iri>,
// "literal"^^<dt>, "literal"@lang, _:label, ?var. The wildcard renders as
// "*". The output is used in diagnostics, test fixtures and serialisers.
func (t Term) String() string {
	switch t.Kind {
	case KindAny:
		return "*"
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindVar:
		return "?" + t.Value
	case KindLiteral:
		q := quoteLiteral(t.Value)
		if t.Lang != "" {
			return q + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return q + "^^<" + t.Datatype + ">"
		}
		return q
	default:
		return fmt.Sprintf("!invalid-term(%d)", t.Kind)
	}
}

// quoteLiteral escapes a literal lexical form for N-Triples/Turtle output.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Compare imposes a deterministic total order over terms: by kind, then by
// value, datatype and language. It is used to produce stable serialisations
// and reproducible test output; it is not the SPARQL ORDER BY order (which
// lives in internal/eval and has value-aware numeric comparison).
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		return int(t.Kind) - int(o.Kind)
	}
	if c := strings.Compare(t.Value, o.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, o.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, o.Lang)
}
