package rdf

import "testing"

func TestPrefixExpandShrink(t *testing.T) {
	pm := StandardPrefixes()
	iri, err := pm.Expand("akt:has-author")
	if err != nil {
		t.Fatal(err)
	}
	if iri != AKTHasAuthor {
		t.Fatalf("Expand = %q, want %q", iri, AKTHasAuthor)
	}
	q, ok := pm.Shrink(AKTHasAuthor)
	if !ok || q != "akt:has-author" {
		t.Fatalf("Shrink = %q %v", q, ok)
	}
}

func TestPrefixExpandErrors(t *testing.T) {
	pm := NewPrefixMap()
	if _, err := pm.Expand("nope:x"); err == nil {
		t.Fatal("expected unbound prefix error")
	}
	if _, err := pm.Expand("noQName"); err == nil {
		t.Fatal("expected not-a-QName error")
	}
}

func TestShrinkLongestNamespaceWins(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://example.org/")
	pm.Bind("b", "http://example.org/deep/")
	q, ok := pm.Shrink("http://example.org/deep/x")
	if !ok || q != "b:x" {
		t.Fatalf("Shrink = %q %v, want b:x", q, ok)
	}
}

func TestShrinkRejectsBadLocalNames(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("ex", "http://example.org/")
	for _, iri := range []string{
		"http://example.org/",       // empty local
		"http://example.org/a/b",    // slash in local
		"http://example.org/x#y",    // hash in local
		"http://example.org/-lead",  // leading hyphen
		"http://example.org/trail.", // trailing dot
		"http://other.org/x",        // unmatched namespace
	} {
		if q, ok := pm.Shrink(iri); ok {
			t.Errorf("Shrink(%q) unexpectedly ok: %q", iri, q)
		}
	}
	if q, ok := pm.Shrink("http://example.org/per-son.x"); !ok || q != "ex:per-son.x" {
		t.Errorf("interior - and . should be accepted, got %q %v", q, ok)
	}
}

func TestResolveIRI(t *testing.T) {
	pm := NewPrefixMap()
	pm.SetBase("http://example.org/dir/doc")
	cases := map[string]string{
		"http://abs.example/x": "http://abs.example/x",
		"other":                "http://example.org/dir/other",
		"#frag":                "http://example.org/dir/doc#frag",
	}
	for in, want := range cases {
		if got := pm.ResolveIRI(in); got != want {
			t.Errorf("ResolveIRI(%q) = %q, want %q", in, got, want)
		}
	}
	empty := NewPrefixMap()
	if got := empty.ResolveIRI("rel"); got != "rel" {
		t.Errorf("no-base resolve changed input: %q", got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("a", "http://a/")
	c := pm.Clone()
	c.Bind("b", "http://b/")
	if _, ok := pm.Namespace("b"); ok {
		t.Fatal("Clone leaked binding into original")
	}
	if got := len(pm.Prefixes()); got != 1 {
		t.Fatalf("original has %d prefixes, want 1", got)
	}
	if c.Len() != 2 {
		t.Fatalf("clone has %d prefixes, want 2", c.Len())
	}
}

func TestIsAbsoluteIRI(t *testing.T) {
	for in, want := range map[string]bool{
		"http://x":  true,
		"urn:abc":   true,
		"mailto:x":  true,
		"rel/path":  false,
		"#frag":     false,
		":nocolon":  false,
		"":          false,
		"ht tp://x": false,
	} {
		if got := isAbsoluteIRI(in); got != want {
			t.Errorf("isAbsoluteIRI(%q) = %v, want %v", in, got, want)
		}
	}
}
