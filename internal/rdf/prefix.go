package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maintains prefix → namespace bindings for parsing and
// serialising Turtle and SPARQL. Lookup of the longest matching namespace
// for an IRI (used when shrinking to QNames) is linear in the number of
// bindings, which is fine at the scale of a query prologue.
type PrefixMap struct {
	toNS   map[string]string // prefix -> namespace IRI
	byLen  []string          // prefixes ordered for deterministic output
	base   string
	frozen bool
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{toNS: make(map[string]string)}
}

// Clone returns an independent copy of the map.
func (pm *PrefixMap) Clone() *PrefixMap {
	c := NewPrefixMap()
	c.base = pm.base
	for p, ns := range pm.toNS {
		c.Bind(p, ns)
	}
	return c
}

// Bind associates prefix with namespace, replacing any previous binding.
func (pm *PrefixMap) Bind(prefix, ns string) {
	if _, exists := pm.toNS[prefix]; !exists {
		pm.byLen = append(pm.byLen, prefix)
	}
	pm.toNS[prefix] = ns
}

// SetBase sets the base IRI used to resolve relative IRI references.
func (pm *PrefixMap) SetBase(base string) { pm.base = base }

// Base returns the base IRI ("" when unset).
func (pm *PrefixMap) Base() string { return pm.base }

// Namespace returns the namespace bound to prefix.
func (pm *PrefixMap) Namespace(prefix string) (string, bool) {
	ns, ok := pm.toNS[prefix]
	return ns, ok
}

// Expand resolves a QName "prefix:local" to a full IRI. It returns an error
// for unbound prefixes.
func (pm *PrefixMap) Expand(qname string) (string, error) {
	i := strings.Index(qname, ":")
	if i < 0 {
		return "", fmt.Errorf("rdf: %q is not a QName", qname)
	}
	ns, ok := pm.toNS[qname[:i]]
	if !ok {
		return "", fmt.Errorf("rdf: unbound prefix %q", qname[:i])
	}
	return ns + qname[i+1:], nil
}

// ResolveIRI resolves a (possibly relative) IRI reference against the base.
// Absolute IRIs (containing a scheme) pass through unchanged.
func (pm *PrefixMap) ResolveIRI(ref string) string {
	if isAbsoluteIRI(ref) || pm.base == "" {
		return ref
	}
	if strings.HasPrefix(ref, "#") {
		return strings.TrimSuffix(pm.base, "#") + ref
	}
	base := pm.base
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		return base[:i+1] + ref
	}
	return base + ref
}

func isAbsoluteIRI(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ':' {
			return i > 0
		}
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(i > 0 && (c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'))) {
			return false
		}
	}
	return false
}

// Shrink returns "prefix:local" for an IRI if some bound namespace is a
// prefix of it and the remainder is a valid local name, else ok=false.
// When several namespaces match, the longest wins.
func (pm *PrefixMap) Shrink(iri string) (string, bool) {
	bestPrefix, bestNS := "", ""
	for p, ns := range pm.toNS {
		if ns == "" || !strings.HasPrefix(iri, ns) {
			continue
		}
		if len(ns) > len(bestNS) {
			bestNS, bestPrefix = ns, p
		}
	}
	if bestNS == "" {
		return "", false
	}
	local := iri[len(bestNS):]
	if !validLocalName(local) {
		return "", false
	}
	return bestPrefix + ":" + local, true
}

// validLocalName accepts the conservative subset of PN_LOCAL that both our
// Turtle and SPARQL serialisers can emit without escaping.
func validLocalName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			// digits allowed anywhere in our conservative subset
		case r == '-' || r == '.':
			if i == 0 || i == len(s)-1 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Prefixes returns the bound prefixes in sorted order.
func (pm *PrefixMap) Prefixes() []string {
	out := make([]string, 0, len(pm.toNS))
	for p := range pm.toNS {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of bindings.
func (pm *PrefixMap) Len() int { return len(pm.toNS) }
