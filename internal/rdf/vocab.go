package rdf

// Well-known vocabulary namespaces and the individual IRIs used across the
// code base. The akt:, kisti: and map: namespaces reproduce the ones in the
// paper (AKT reference ontology, the KISTI research-reference ontology, and
// the Southampton `om.owl` alignment vocabulary of §3.2.2).
const (
	RDFNS     = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNS    = "http://www.w3.org/2000/01/rdf-schema#"
	OWLNS     = "http://www.w3.org/2002/07/owl#"
	XSDNS     = "http://www.w3.org/2001/XMLSchema#"
	FOAFNS    = "http://xmlns.com/foaf/0.1/"
	DCTermsNS = "http://purl.org/dc/terms/"
	VoidNS    = "http://rdfs.org/ns/void#"

	// AKTNS is the AKT reference ontology namespace used by the RKB
	// explorer data sets in the paper's running example.
	AKTNS = "http://www.aktors.org/ontology/portal#"
	// KISTINS is the KISTI research-reference ontology namespace.
	KISTINS = "http://www.kisti.re.kr/isrl/ResearchRefOntology#"
	// MapNS is the alignment vocabulary (om.owl) from §3.2.2 of the paper.
	MapNS = "http://ecs.soton.ac.uk/om.owl#"
	// DBONS is a DBpedia-ontology-like namespace for the ECS↔DBpedia KB.
	DBONS = "http://dbpedia.org/ontology/"
	// ECSNS is the Southampton ECS schema namespace.
	ECSNS = "http://rdf.ecs.soton.ac.uk/ontology/ecs#"
)

// RDF vocabulary terms.
const (
	RDFType      = RDFNS + "type"
	RDFStatement = RDFNS + "Statement"
	RDFSubject   = RDFNS + "subject"
	RDFPredicate = RDFNS + "predicate"
	RDFObject    = RDFNS + "object"
	RDFFirst     = RDFNS + "first"
	RDFRest      = RDFNS + "rest"
	RDFNil       = RDFNS + "nil"
)

// RDFS vocabulary terms.
const (
	RDFSLabel      = RDFSNS + "label"
	RDFSComment    = RDFSNS + "comment"
	RDFSSubClassOf = RDFSNS + "subClassOf"
	RDFSSubPropOf  = RDFSNS + "subPropertyOf"
	RDFSDomain     = RDFSNS + "domain"
	RDFSRange      = RDFSNS + "range"
)

// OWL vocabulary terms.
const (
	OWLSameAs             = OWLNS + "sameAs"
	OWLClass              = OWLNS + "Class"
	OWLObjectProperty     = OWLNS + "ObjectProperty"
	OWLDatatypeProperty   = OWLNS + "DatatypeProperty"
	OWLEquivalentClass    = OWLNS + "equivalentClass"
	OWLEquivalentProperty = OWLNS + "equivalentProperty"
)

// XSD datatype IRIs.
const (
	XSDString             = XSDNS + "string"
	XSDBoolean            = XSDNS + "boolean"
	XSDInteger            = XSDNS + "integer"
	XSDDecimal            = XSDNS + "decimal"
	XSDDouble             = XSDNS + "double"
	XSDFloat              = XSDNS + "float"
	XSDInt                = XSDNS + "int"
	XSDLong               = XSDNS + "long"
	XSDShort              = XSDNS + "short"
	XSDByte               = XSDNS + "byte"
	XSDDate               = XSDNS + "date"
	XSDDateTime           = XSDNS + "dateTime"
	XSDGYear              = XSDNS + "gYear"
	XSDNonNegativeInteger = XSDNS + "nonNegativeInteger"
	XSDPositiveInteger    = XSDNS + "positiveInteger"
	XSDNegativeInteger    = XSDNS + "negativeInteger"
	XSDNonPositiveInteger = XSDNS + "nonPositiveInteger"
	XSDUnsignedInt        = XSDNS + "unsignedInt"
	XSDUnsignedLong       = XSDNS + "unsignedLong"
)

// voiD vocabulary terms (data set descriptions, Figure 5's voiD KB),
// including the statistics terms the cardinality estimator consumes.
const (
	VoidDataset           = VoidNS + "Dataset"
	VoidSPARQLEndpoint    = VoidNS + "sparqlEndpoint"
	VoidURISpace          = VoidNS + "uriSpace"
	VoidVocabulary        = VoidNS + "vocabulary"
	VoidTriples           = VoidNS + "triples"
	VoidEntities          = VoidNS + "entities"
	VoidPropertyPartition = VoidNS + "propertyPartition"
	VoidClassPartition    = VoidNS + "classPartition"
	VoidProperty          = VoidNS + "property"
	VoidClass             = VoidNS + "class"
)

// Alignment (om.owl / map:) vocabulary terms per §3.2.2 of the paper, plus
// the ontology-alignment-level terms implied by §3.2.1.
const (
	MapEntityAlignment   = MapNS + "EntityAlignment"
	MapOntologyAlignment = MapNS + "OntologyAlignment"
	MapLHS               = MapNS + "lhs"
	MapRHS               = MapNS + "rhs"
	MapHasFD             = MapNS + "hasFunctionalDependency"
	MapSameAs            = MapNS + "sameas"
	MapSourceOntology    = MapNS + "sourceOntology"
	MapTargetOntology    = MapNS + "targetOntology"
	MapTargetDataset     = MapNS + "targetDataset"
	MapHasAlignment      = MapNS + "hasAlignment"
)

// AKT ontology terms used by the running example and workloads.
const (
	AKTHasAuthor    = AKTNS + "has-author"
	AKTHasTitle     = AKTNS + "has-title"
	AKTHasDate      = AKTNS + "has-date"
	AKTArticleRef   = AKTNS + "Article-Reference"
	AKTPaperRef     = AKTNS + "Paper-Reference"
	AKTPerson       = AKTNS + "Person"
	AKTFullName     = AKTNS + "full-name"
	AKTHasProject   = AKTNS + "has-project"
	AKTProject      = AKTNS + "Project"
	AKTHasWebAddr   = AKTNS + "has-web-address"
	AKTHasAffil     = AKTNS + "has-affiliation"
	AKTOrganization = AKTNS + "Organization"
)

// KISTI ontology terms used by the running example and workloads.
const (
	KISTICreatorInfo    = KISTINS + "CreatorInfo"
	KISTIHasCreatorInfo = KISTINS + "hasCreatorInfo"
	KISTIHasCreator     = KISTINS + "hasCreator"
	KISTIArticle        = KISTINS + "Article"
	KISTIPerson         = KISTINS + "Person"
	KISTITitle          = KISTINS + "title"
	KISTIYear           = KISTINS + "year"
	KISTIName           = KISTINS + "name"
)

// StandardPrefixes returns a prefix map preloaded with the namespaces used
// throughout the repository. Callers may extend the returned map freely.
func StandardPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	pm.Bind("rdf", RDFNS)
	pm.Bind("rdfs", RDFSNS)
	pm.Bind("owl", OWLNS)
	pm.Bind("xsd", XSDNS)
	pm.Bind("foaf", FOAFNS)
	pm.Bind("dcterms", DCTermsNS)
	pm.Bind("void", VoidNS)
	pm.Bind("akt", AKTNS)
	pm.Bind("kisti", KISTINS)
	pm.Bind("map", MapNS)
	pm.Bind("dbo", DBONS)
	pm.Bind("ecs", ECSNS)
	return pm
}
