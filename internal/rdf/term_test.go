package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndPredicates(t *testing.T) {
	iri := NewIRI("http://example.org/a")
	if !iri.IsIRI() || iri.IsLiteral() || iri.IsBlank() || iri.IsVar() {
		t.Fatalf("IRI kind predicates wrong: %+v", iri)
	}
	if !iri.IsGround() {
		t.Fatal("IRI must be ground")
	}
	lit := NewLiteral("hello")
	if !lit.IsLiteral() || !lit.IsGround() {
		t.Fatalf("literal predicates wrong: %+v", lit)
	}
	b := NewBlank("b0")
	if !b.IsBlank() || b.IsGround() {
		t.Fatalf("blank predicates wrong: %+v", b)
	}
	v := NewVar("x")
	if !v.IsVar() || v.IsGround() {
		t.Fatalf("var predicates wrong: %+v", v)
	}
	if !Any.IsZero() {
		t.Fatal("Any must be zero")
	}
}

func TestTermEqualityAsMapKey(t *testing.T) {
	m := map[Term]int{}
	m[NewIRI("http://a")] = 1
	m[NewLiteral("a")] = 2
	m[NewTypedLiteral("a", XSDInteger)] = 3
	m[NewLangLiteral("a", "en")] = 4
	if len(m) != 4 {
		t.Fatalf("distinct terms collided in map: %v", m)
	}
	if m[NewIRI("http://a")] != 1 {
		t.Fatal("lookup by equal value failed")
	}
}

func TestLangTagNormalised(t *testing.T) {
	a := NewLangLiteral("chat", "EN")
	b := NewLangLiteral("chat", "en")
	if a != b {
		t.Fatalf("language tags should be case-normalised: %v vs %v", a, b)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/x"), "<http://example.org/x>"},
		{NewLiteral("plain"), `"plain"`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{NewLangLiteral("chat", "fr"), `"chat"@fr`},
		{NewBlank("p1"), "_:p1"},
		{NewVar("paper"), "?paper"},
		{Any, "*"},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{NewTypedLiteral("x", XSDString), `"x"`}, // xsd:string elided
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestNumericAccessors(t *testing.T) {
	if v, ok := NewInteger(42).Int(); !ok || v != 42 {
		t.Fatalf("Int() = %v %v", v, ok)
	}
	if v, ok := NewInteger(42).Float(); !ok || v != 42 {
		t.Fatalf("Float() = %v %v", v, ok)
	}
	if v, ok := NewDecimal(2.5).Float(); !ok || v != 2.5 {
		t.Fatalf("decimal Float() = %v %v", v, ok)
	}
	if _, ok := NewLiteral("42").Int(); ok {
		t.Fatal("plain literal must not be numeric")
	}
	if v, ok := NewBoolean(true).Bool(); !ok || !v {
		t.Fatalf("Bool() = %v %v", v, ok)
	}
	if _, ok := NewLiteral("true").Bool(); ok {
		t.Fatal("plain literal must not be boolean")
	}
	if !NewDouble(1e10).IsNumericLiteral() {
		t.Fatal("double must be numeric")
	}
}

func TestTermCompareTotalOrder(t *testing.T) {
	terms := []Term{
		NewIRI("http://a"), NewIRI("http://b"),
		NewLiteral("a"), NewTypedLiteral("a", XSDInteger),
		NewBlank("x"), NewVar("x"),
	}
	for i, a := range terms {
		if a.Compare(a) != 0 {
			t.Errorf("Compare(self) != 0 for %v", a)
		}
		for j, b := range terms {
			ab, ba := a.Compare(b), b.Compare(a)
			if (ab < 0) != (ba > 0) && !(ab == 0 && ba == 0) {
				t.Errorf("antisymmetry violated for %d,%d (%v,%v)", i, j, a, b)
			}
		}
	}
}

func TestTripleVarsAndGround(t *testing.T) {
	tr := NewTriple(NewVar("p"), NewIRI(AKTHasAuthor), NewVar("p"))
	vars := tr.Vars()
	if len(vars) != 1 || vars[0] != "p" {
		t.Fatalf("Vars() = %v, want [p]", vars)
	}
	if tr.IsGround() {
		t.Fatal("pattern with vars must not be ground")
	}
	g := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("o"))
	if !g.IsGround() {
		t.Fatal("ground triple misreported")
	}
}

func TestGraphDedupSort(t *testing.T) {
	a := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("1"))
	b := NewTriple(NewIRI("http://s"), NewIRI("http://p"), NewLiteral("2"))
	g := Graph{b, a, b, a, a}
	d := g.Dedup()
	if len(d) != 2 {
		t.Fatalf("Dedup len = %d, want 2", len(d))
	}
	d.Sort()
	if d[0] != a || d[1] != b {
		t.Fatalf("Sort order wrong: %v", d)
	}
	if !strings.Contains(g.String(), " .\n") {
		t.Fatal("Graph.String must emit statement terminators")
	}
}

// Property: quoteLiteral always round-trips through a simple unescape.
func TestQuoteLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		q := quoteLiteral(s)
		if len(q) < 2 || q[0] != '"' || q[len(q)-1] != '"' {
			return false
		}
		// unescape
		body := q[1 : len(q)-1]
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					b.WriteByte('\n')
				case 'r':
					b.WriteByte('\r')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(body[i])
				}
				continue
			}
			b.WriteByte(body[i])
		}
		return b.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total order consistent with equality.
func TestCompareConsistentWithEquality(t *testing.T) {
	f := func(av, bv string, ak, bk uint8) bool {
		a := Term{Kind: TermKind(ak%4) + 1, Value: av}
		b := Term{Kind: TermKind(bk%4) + 1, Value: bv}
		if a == b {
			return a.Compare(b) == 0
		}
		return a.Compare(b) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTermKindString(t *testing.T) {
	for k, want := range map[TermKind]string{
		KindAny: "any", KindIRI: "iri", KindLiteral: "literal",
		KindBlank: "blank", KindVar: "var", TermKind(99): "TermKind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("TermKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
