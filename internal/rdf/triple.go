package rdf

import (
	"sort"
	"strings"
)

// Triple is an RDF triple or triple pattern. In ground data S is an IRI or
// blank node, P an IRI, and O any ground term; patterns additionally allow
// variables (and the zero wildcard term in store match calls).
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three components.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples-like syntax without the final dot.
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// IsGround reports whether all three positions are ground terms.
func (t Triple) IsGround() bool {
	return t.S.IsGround() && t.P.IsGround() && t.O.IsGround()
}

// Vars returns the distinct variable names appearing in the triple, in
// subject, predicate, object position order.
func (t Triple) Vars() []string {
	var vs []string
	seen := map[string]bool{}
	for _, x := range []Term{t.S, t.P, t.O} {
		if x.IsVar() && !seen[x.Value] {
			seen[x.Value] = true
			vs = append(vs, x.Value)
		}
	}
	return vs
}

// Terms returns the three terms in S, P, O order.
func (t Triple) Terms() [3]Term { return [3]Term{t.S, t.P, t.O} }

// WithTerms returns a copy of the triple with the three positions replaced.
func (t Triple) WithTerms(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Compare orders triples deterministically (S, then P, then O).
func (t Triple) Compare(o Triple) int {
	if c := t.S.Compare(o.S); c != 0 {
		return c
	}
	if c := t.P.Compare(o.P); c != 0 {
		return c
	}
	return t.O.Compare(o.O)
}

// Graph is a simple ordered collection of triples used as an exchange type
// between parsers, stores and serialisers. It is not indexed; use
// internal/store for querying.
type Graph []Triple

// Add appends a triple.
func (g *Graph) Add(t Triple) { *g = append(*g, t) }

// AddTriple appends a triple built from terms.
func (g *Graph) AddTriple(s, p, o Term) { *g = append(*g, Triple{s, p, o}) }

// Len returns the number of triples.
func (g Graph) Len() int { return len(g) }

// Sort orders the graph deterministically in place and returns it.
func (g Graph) Sort() Graph {
	sort.Slice(g, func(i, j int) bool { return g[i].Compare(g[j]) < 0 })
	return g
}

// Dedup returns a copy of the graph with exact duplicate triples removed,
// preserving first-occurrence order.
func (g Graph) Dedup() Graph {
	seen := make(map[Triple]struct{}, len(g))
	out := make(Graph, 0, len(g))
	for _, t := range g {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// String renders the graph one triple per line with trailing dots.
func (g Graph) String() string {
	var b strings.Builder
	for _, t := range g {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	return b.String()
}
