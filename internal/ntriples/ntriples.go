// Package ntriples reads and writes the line-oriented N-Triples format,
// used for bulk loading generated data sets and for canonical dumps in
// tests and experiments.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sparqlrw/internal/lex"
	"sparqlrw/internal/rdf"
)

// Parse reads an N-Triples document. Each line holds one triple terminated
// by '.'; comments (#) and blank lines are skipped.
func Parse(r io.Reader) (rdf.Graph, error) {
	var g rdf.Graph
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
		g = append(g, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (rdf.Graph, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(line string) (rdf.Triple, error) {
	// Tokenise the whole line first; N-Triples lines are short, and a
	// token slice gives us the one-token lookahead plain literals need.
	var toks []lex.Token
	lx := lex.New(line)
	for {
		tok := lx.Next()
		if tok.Kind == lex.Illegal {
			return rdf.Triple{}, fmt.Errorf("%s", tok.Val)
		}
		toks = append(toks, tok)
		if tok.Kind == lex.EOF {
			break
		}
	}
	i := 0
	readTerm := func() (rdf.Term, error) {
		tok := toks[i]
		switch tok.Kind {
		case lex.IRIRef:
			i++
			return rdf.NewIRI(tok.Val), nil
		case lex.BlankNode:
			i++
			return rdf.NewBlank(tok.Val), nil
		case lex.String:
			i++
			switch toks[i].Kind {
			case lex.LangTag:
				t := rdf.NewLangLiteral(tok.Val, toks[i].Val)
				i++
				return t, nil
			case lex.HatHat:
				i++
				if toks[i].Kind != lex.IRIRef {
					return rdf.Term{}, fmt.Errorf("expected datatype IRI, found %s", toks[i])
				}
				t := rdf.NewTypedLiteral(tok.Val, toks[i].Val)
				i++
				return t, nil
			}
			return rdf.NewLiteral(tok.Val), nil
		default:
			return rdf.Term{}, fmt.Errorf("unexpected token %s", tok)
		}
	}
	s, err := readTerm()
	if err != nil {
		return rdf.Triple{}, err
	}
	if s.IsLiteral() {
		return rdf.Triple{}, fmt.Errorf("literal subject")
	}
	p, err := readTerm()
	if err != nil {
		return rdf.Triple{}, err
	}
	if !p.IsIRI() {
		return rdf.Triple{}, fmt.Errorf("predicate must be an IRI")
	}
	o, err := readTerm()
	if err != nil {
		return rdf.Triple{}, err
	}
	if toks[i].Kind != lex.Dot {
		return rdf.Triple{}, fmt.Errorf("expected '.', found %s", toks[i])
	}
	i++
	if toks[i].Kind != lex.EOF {
		return rdf.Triple{}, fmt.Errorf("trailing tokens after '.'")
	}
	return rdf.Triple{S: s, P: p, O: o}, nil
}

// Write serialises the graph in N-Triples, one triple per line, in the
// graph's order.
func Write(w io.Writer, g rdf.Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g {
		if _, err := bw.WriteString(t.String() + " .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Format returns the N-Triples serialisation as a string.
func Format(g rdf.Graph) string {
	var b strings.Builder
	for _, t := range g {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	return b.String()
}

// FormatTriple returns one triple's N-Triples line (with the trailing
// dot, without the newline), for streaming writers that emit triples as
// they arrive instead of materialising a graph.
func FormatTriple(t rdf.Triple) string {
	return t.String() + " ."
}
