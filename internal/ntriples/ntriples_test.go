package ntriples

import (
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

func TestParseBasic(t *testing.T) {
	g, err := ParseString(`
# a comment
<http://ex/s> <http://ex/p> <http://ex/o> .
<http://ex/s> <http://ex/p> "plain" .
<http://ex/s> <http://ex/p> "tagged"@en .
<http://ex/s> <http://ex/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://ex/p> _:b2 .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 5 {
		t.Fatalf("got %d triples", len(g))
	}
	if g[1].O != rdf.NewLiteral("plain") {
		t.Errorf("plain literal: %v", g[1].O)
	}
	if g[2].O != rdf.NewLangLiteral("tagged", "en") {
		t.Errorf("lang literal: %v", g[2].O)
	}
	if g[3].O != rdf.NewTypedLiteral("5", rdf.XSDInteger) {
		t.Errorf("typed literal: %v", g[3].O)
	}
	if !g[4].S.IsBlank() || !g[4].O.IsBlank() {
		t.Errorf("blank nodes: %v", g[4])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://s> <http://p> .`,
		`"lit" <http://p> <http://o> .`,
		`<http://s> "lit" <http://o> .`,
		`<http://s> <http://p> <http://o>`,
		`<http://s> <http://p> <http://o> . extra`,
		`<http://s> <http://p> "x"^^"notiri" .`,
		`<http://s> <http://p> "unterminated .`,
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g := rdf.Graph{
		rdf.NewTriple(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/p"), rdf.NewLiteral("a\"b\nc")),
		rdf.NewTriple(rdf.NewBlank("x"), rdf.NewIRI("http://ex/p"), rdf.NewTypedLiteral("3.5", rdf.XSDDecimal)),
		rdf.NewTriple(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/q"), rdf.NewLangLiteral("hi", "en")),
	}
	out := Format(g)
	g2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if len(g2) != len(g) {
		t.Fatalf("size %d vs %d", len(g2), len(g))
	}
	for i := range g {
		if g[i] != g2[i] {
			t.Errorf("triple %d: %v vs %v", i, g[i], g2[i])
		}
	}
}

func TestWriteToWriter(t *testing.T) {
	g := rdf.Graph{rdf.NewTriple(rdf.NewIRI("http://ex/s"), rdf.NewIRI("http://ex/p"), rdf.NewIRI("http://ex/o"))}
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	want := "<http://ex/s> <http://ex/p> <http://ex/o> .\n"
	if sb.String() != want {
		t.Fatalf("Write = %q, want %q", sb.String(), want)
	}
}
