// Package reason implements the integration baseline the paper argues
// against (§2, §4): instead of rewriting queries on the fly, materialise a
// source-vocabulary view of a target data set by forward-chaining the
// entity alignments as Horn rules — the paper notes an entity alignment
// "can be interpreted as a definite Horn clause ... the LHS formula is the
// head, the RHS is the body" — plus owl:sameAs URI smushing and optional
// RDFS subclass closure. The cost and footprint of this materialisation,
// against the microseconds of a rewrite, is experiment E7.
package reason

import (
	"fmt"
	"regexp"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/coref"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
)

// Options configure the materialiser.
type Options struct {
	// SourceURISpace is the regex of the source data set's URI space;
	// inverse sameas resolution maps target URIs back into it so that the
	// unrewritten source query can find them. Empty disables URI
	// translation (derived triples keep target URIs).
	SourceURISpace string
	// MaxIterations caps the fixpoint loop (alignment chains are shallow;
	// the cap only guards against pathological rule sets).
	MaxIterations int
	// RDFSClosure additionally materialises rdfs:subClassOf inference
	// over rdf:type triples (an ablation).
	RDFSClosure bool
}

// Result reports what one materialisation did.
type Result struct {
	// Derived is the number of new triples added to the output store.
	Derived int
	// Iterations is the number of fixpoint rounds executed.
	Iterations int
	// Duration is the wall-clock materialisation time.
	Duration time.Duration
	// Rules is the number of entity alignments applied.
	Rules int
}

// Materialiser owns the rule set and co-reference source.
type Materialiser struct {
	Alignments []*align.EntityAlignment
	Coref      *coref.Store
	Opts       Options
}

// New returns a materialiser with default options.
func New(alignments []*align.EntityAlignment, corefStore *coref.Store, opts Options) *Materialiser {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 8
	}
	return &Materialiser{Alignments: alignments, Coref: corefStore, Opts: opts}
}

// Materialise derives source-vocabulary triples from the target data in
// `data` and adds them to `out` (which may be the same store, or a copy of
// the source store being augmented). It returns statistics.
//
// For every entity alignment, the RHS (body) is evaluated as a basic graph
// pattern over the data; each solution instantiates the LHS (head). LHS
// variables not bound by the body are resolved through *inverse*
// functional dependencies: an FD a2 = sameas(a1, targetSpace) binds, at
// data level, a1 = sameas(a2, sourceSpace) — co-reference is symmetric, so
// the equivalence class lookup runs in the opposite direction.
func (m *Materialiser) Materialise(data *store.Store, out *store.Store) (*Result, error) {
	start := time.Now()
	res := &Result{Rules: len(m.Alignments)}
	var sourceRe *regexp.Regexp
	if m.Opts.SourceURISpace != "" {
		re, err := regexp.Compile(m.Opts.SourceURISpace)
		if err != nil {
			return nil, fmt.Errorf("reason: bad source URI space: %w", err)
		}
		sourceRe = re
	}
	engine := eval.New(data)
	for iter := 0; iter < m.Opts.MaxIterations; iter++ {
		res.Iterations = iter + 1
		added := 0
		for _, ea := range m.Alignments {
			sols, err := engine.EvalBGP(ea.RHS)
			if err != nil {
				return nil, fmt.Errorf("reason: evaluating body of %s: %w", ea.ID, err)
			}
			for _, sol := range sols {
				head, ok := m.instantiateHead(ea, sol, sourceRe)
				if !ok {
					continue
				}
				if out.Add(head) {
					added++
					// Feed derivations back for chained rules when data
					// and out are the same store; otherwise chains stop,
					// which matches a single-pass ETL.
				}
			}
		}
		res.Derived += added
		if added == 0 {
			break
		}
		if data != out {
			break // nothing new can fire: rules read `data` only
		}
	}
	if m.Opts.RDFSClosure {
		res.Derived += subClassClosure(out)
	}
	res.Duration = time.Since(start)
	return res, nil
}

// instantiateHead builds the LHS triple for one body solution.
func (m *Materialiser) instantiateHead(ea *align.EntityAlignment, sol eval.Solution, sourceRe *regexp.Regexp) (rdf.Triple, bool) {
	// Which LHS variables does an FD map into RHS variables? fd.Var is the
	// RHS-side variable; its first variable argument is the LHS-side one.
	inverse := map[string]string{} // LHS var -> RHS var
	for _, fd := range ea.FDs {
		for _, a := range fd.Args {
			if a.IsVar() || a.IsBlank() {
				inverse[a.Value] = fd.Var
				break
			}
		}
	}
	resolve := func(t rdf.Term) (rdf.Term, bool) {
		if !t.IsVar() && !t.IsBlank() {
			return t, true
		}
		// Shared variable: directly bound by the body match.
		if v, ok := sol[t.Value]; ok {
			return v, true
		}
		// FD-linked variable: translate the bound RHS value back into the
		// source URI space.
		if rhsVar, ok := inverse[t.Value]; ok {
			if v, ok := sol[rhsVar]; ok {
				if !v.IsIRI() || m.Coref == nil || sourceRe == nil {
					return v, true
				}
				if back, found := m.Coref.FirstMatching(v.Value, sourceRe); found {
					return rdf.NewIRI(back), true
				}
				return v, true // no source equivalent: keep target URI
			}
		}
		return rdf.Term{}, false
	}
	s, ok := resolve(ea.LHS.S)
	if !ok || s.Kind == rdf.KindLiteral {
		return rdf.Triple{}, false
	}
	p, ok := resolve(ea.LHS.P)
	if !ok || p.Kind != rdf.KindIRI {
		return rdf.Triple{}, false
	}
	o, ok := resolve(ea.LHS.O)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

// MaterialiseSameAs adds, for every triple whose subject or object has
// co-reference equivalents in the given URI space, the smushed variant.
// This is the "reasoning step over huge amounts of data" the paper warns
// about: output size grows with the equivalence classes.
func MaterialiseSameAs(st *store.Store, corefStore *coref.Store, uriSpace string) (int, error) {
	re, err := regexp.Compile(uriSpace)
	if err != nil {
		return 0, fmt.Errorf("reason: bad URI space: %w", err)
	}
	added := 0
	for _, t := range st.MatchAll(rdf.Triple{}) {
		variants := []rdf.Triple{t}
		if t.S.IsIRI() {
			if alt, ok := corefStore.FirstMatching(t.S.Value, re); ok && alt != t.S.Value {
				variants = append(variants, rdf.Triple{S: rdf.NewIRI(alt), P: t.P, O: t.O})
			}
		}
		if t.O.IsIRI() {
			if alt, ok := corefStore.FirstMatching(t.O.Value, re); ok && alt != t.O.Value {
				n := len(variants)
				for i := 0; i < n; i++ {
					v := variants[i]
					variants = append(variants, rdf.Triple{S: v.S, P: v.P, O: rdf.NewIRI(alt)})
				}
			}
		}
		for _, v := range variants[1:] {
			if st.Add(v) {
				added++
			}
		}
	}
	return added, nil
}

// subClassClosure materialises rdf:type triples up rdfs:subClassOf chains.
func subClassClosure(st *store.Store) int {
	// Collect the subclass graph.
	sub := map[rdf.Term][]rdf.Term{}
	for _, t := range st.MatchAll(rdf.Triple{P: rdf.NewIRI(rdf.RDFSSubClassOf)}) {
		sub[t.S] = append(sub[t.S], t.O)
	}
	added := 0
	typ := rdf.NewIRI(rdf.RDFType)
	// Iterate to fixpoint (subclass chains are short).
	for {
		n := 0
		for _, t := range st.MatchAll(rdf.Triple{P: typ}) {
			for _, super := range sub[t.O] {
				if st.Add(rdf.Triple{S: t.S, P: typ, O: super}) {
					n++
				}
			}
		}
		added += n
		if n == 0 {
			return added
		}
	}
}
