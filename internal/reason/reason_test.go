package reason

import (
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/store"
	"sparqlrw/internal/workload"
)

func TestMaterialiseKISTIIntoAKTView(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 30, 60
	u := workload.Generate(cfg)
	oa := workload.AKT2KISTI()

	m := New(oa.Alignments, u.Coref, Options{SourceURISpace: workload.SotonURIPattern})
	out := store.New()
	res, err := m.Materialise(u.KISTI, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Derived == 0 {
		t.Fatal("nothing derived")
	}
	if res.Derived != out.Size() {
		t.Fatalf("derived %d but store has %d", res.Derived, out.Size())
	}

	// The derived view answers the ORIGINAL (unrewritten) AKT query with
	// exactly KISTI's knowledge: same results the rewriting approach gets
	// by rewriting the query instead.
	e := eval.New(out)
	resq, err := e.Select(sparql.MustParse(workload.Figure1Query(0)))
	if err != nil {
		t.Fatal(err)
	}
	want := u.CoAuthorsIn(0, "kisti")
	if len(resq.Solutions) != len(want) {
		t.Fatalf("materialised view found %d co-authors, ground truth %d", len(resq.Solutions), len(want))
	}
	// Results carry Southampton URIs (inverse sameas applied).
	for _, s := range resq.Solutions {
		v := s["a"].Value
		if len(v) < len(workload.SotonIDSpace) || v[:len(workload.SotonIDSpace)] != workload.SotonIDSpace {
			t.Fatalf("result not translated to source URI space: %s", v)
		}
	}
}

func TestMaterialiseKeepsTargetURIWithoutCoref(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 10, 20
	u := workload.Generate(cfg)
	oa := workload.AKT2KISTI()
	// No source URI space: derived triples keep KISTI URIs.
	m := New(oa.Alignments, u.Coref, Options{})
	out := store.New()
	res, err := m.Materialise(u.KISTI, out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Derived == 0 {
		t.Fatal("nothing derived")
	}
	n := 0
	for _, tr := range out.MatchAll(rdf.Triple{P: rdf.NewIRI(rdf.AKTHasAuthor)}) {
		if tr.O.IsIRI() && len(tr.O.Value) > len(workload.KistiIDSpace) &&
			tr.O.Value[:len(workload.KistiIDSpace)] == workload.KistiIDSpace {
			n++
		}
	}
	if n == 0 {
		t.Fatal("expected KISTI URIs in untranslated view")
	}
}

func TestFixpointChaining(t *testing.T) {
	// Rule chain: data in vocab C derives B (rule body=c), then A (rule
	// body=b) — requires two fixpoint rounds when the output feeds back
	// into the same store.
	st := store.New()
	st.Add(rdf.NewTriple(rdf.NewIRI("http://x/1"), rdf.NewIRI("http://v/c"), rdf.NewLiteral("v")))
	// EA semantics: head=LHS, body=RHS, so LHS "a" with RHS "b" fires on
	// data containing predicate b.
	rules := []*align.EntityAlignment{
		align.PropertyAlignment("http://r/b2a", "http://v/a", "http://v/b"),
		align.PropertyAlignment("http://r/c2b", "http://v/b", "http://v/c"),
	}
	mat := New(rules, nil, Options{})
	res, err := mat.Materialise(st, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Derived != 2 {
		t.Fatalf("derived = %d, want 2 (chain)", res.Derived)
	}
	if res.Iterations < 2 {
		t.Fatalf("iterations = %d, expected fixpoint rounds", res.Iterations)
	}
	if !st.Has(rdf.NewTriple(rdf.NewIRI("http://x/1"), rdf.NewIRI("http://v/a"), rdf.NewLiteral("v"))) {
		t.Fatal("chained derivation missing")
	}
}

func TestSubClassClosure(t *testing.T) {
	st := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	st.Add(rdf.NewTriple(rdf.NewIRI("http://c/Student"), rdf.NewIRI(rdf.RDFSSubClassOf), rdf.NewIRI("http://c/Person")))
	st.Add(rdf.NewTriple(rdf.NewIRI("http://c/Person"), rdf.NewIRI(rdf.RDFSSubClassOf), rdf.NewIRI("http://c/Agent")))
	st.Add(rdf.NewTriple(rdf.NewIRI("http://x/alice"), typ, rdf.NewIRI("http://c/Student")))
	added := subClassClosure(st)
	if added != 2 {
		t.Fatalf("closure added %d, want 2", added)
	}
	if !st.Has(rdf.NewTriple(rdf.NewIRI("http://x/alice"), typ, rdf.NewIRI("http://c/Agent"))) {
		t.Fatal("transitive type missing")
	}
}

func TestMaterialiseSameAs(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 10, 20
	u := workload.Generate(cfg)
	st := u.KISTI.Clone()
	before := st.Size()
	added, err := MaterialiseSameAs(st, u.Coref, workload.SotonURIPattern)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("sameAs materialisation added nothing")
	}
	if st.Size() != before+added {
		t.Fatalf("size bookkeeping wrong: %d + %d != %d", before, added, st.Size())
	}
	if _, err := MaterialiseSameAs(st, u.Coref, "(bad"); err == nil {
		t.Fatal("bad pattern must error")
	}
}

func TestBadSourcePatternErrors(t *testing.T) {
	m := New(nil, nil, Options{SourceURISpace: "(unclosed"})
	if _, err := m.Materialise(store.New(), store.New()); err == nil {
		t.Fatal("bad source pattern must error")
	}
}
