package mediate

import (
	"context"
	"runtime/debug"
	"sync"
	"time"

	"sparqlrw/internal/obs"
	"sparqlrw/internal/sparql"
)

// mediatorMetrics are the mediator's own registry-backed instruments,
// one layer above the federate/plan/decompose counters that share the
// same registry.
type mediatorMetrics struct {
	queries  *obs.CounterVec // by form
	inflight *obs.Gauge
	duration *obs.HistogramVec // by form
	ttfs     *obs.Histogram
	streamed *obs.Counter
}

func newMediatorMetrics(r *obs.Registry) *mediatorMetrics {
	return &mediatorMetrics{
		queries: r.CounterVec("sparqlrw_queries_total",
			"Queries accepted for dispatch, by form.", "form"),
		inflight: r.Gauge("sparqlrw_inflight_queries",
			"Queries currently executing (accepted, result not yet closed)."),
		duration: r.HistogramVec("sparqlrw_query_seconds",
			"Query wall time from acceptance to result close, by form.", nil, "form"),
		ttfs: r.Histogram("sparqlrw_query_ttfs_seconds",
			"Time from query acceptance to its first streamed solution or triple.", nil),
		streamed: r.Counter("sparqlrw_solutions_streamed_total",
			"Solutions and triples streamed to consumers across all queries."),
	}
}

func formLabel(f sparql.Form) string {
	switch f {
	case sparql.Select:
		return "select"
	case sparql.Ask:
		return "ask"
	case sparql.Construct:
		return "construct"
	case sparql.Describe:
		return "describe"
	}
	return "other"
}

// queryObs tracks one query from acceptance to result close: the
// in-flight gauge, the per-form latency histogram, time-to-first-solution
// and — when this query started its own trace — finishing the trace,
// recording it in the ring and emitting the slow-query log line. finish
// is idempotent, so the explicit error paths and Result.Close can both
// call it.
type queryObs struct {
	m     *Mediator
	trace *obs.Trace
	owned bool // this query started the trace: finish and record it
	form  string
	start time.Time

	// Flight-recorder payload, attached as the query moves through the
	// pipeline: the query text, the resolved plan/decomposition, and the
	// error that rejected it (mid-stream failures surface on the trace).
	query   string
	explain any
	err     error

	finishOnce sync.Once
	firstOnce  sync.Once
}

// beginQuery opens the observation for one accepted query, starting a
// trace when ctx does not already carry one (an HTTP request that wants
// the trace in its response passes a prepared context; library callers
// get one for free).
func (m *Mediator) beginQuery(ctx context.Context, form sparql.Form) (context.Context, *queryObs) {
	label := formLabel(form)
	m.metrics.queries.With(label).Inc()
	m.metrics.inflight.Add(1)
	qo := &queryObs{m: m, form: label, start: time.Now()}
	if t := obs.TraceFrom(ctx); t != nil {
		qo.trace = t
	} else {
		ctx, qo.trace = obs.NewTrace(ctx, "query")
		qo.owned = true
	}
	qo.trace.Root().SetAttr("form", label)
	return ctx, qo
}

// setQuery records the query text exactly once, on the trace root.
// Operator and fragment spans never repeat it, so a trace's ring and
// export footprint carries one copy of the query regardless of how many
// operators the plan profiled.
func (qo *queryObs) setQuery(q string) {
	if qo == nil {
		return
	}
	qo.query = q
	qo.trace.Root().SetAttr("query", q)
}

// emit counts one streamed solution or triple; the first one fixes the
// query's time-to-first-solution. Nil-safe so internal streams without
// an observation need no conditionals.
func (qo *queryObs) emit() {
	if qo == nil {
		return
	}
	qo.m.metrics.streamed.Inc()
	qo.firstOnce.Do(func() {
		ttfs := time.Since(qo.start)
		qo.m.metrics.ttfs.Observe(ttfs.Seconds())
		qo.trace.Root().SetAttr("ttfsMs", float64(ttfs.Microseconds())/1000)
	})
}

// fail records the error that rejected the query and closes the
// observation.
func (qo *queryObs) fail(err error) {
	if qo == nil {
		return
	}
	qo.err = err
	qo.trace.Root().SetAttr("error", err.Error())
	qo.finish()
}

func (qo *queryObs) finish() {
	if qo == nil {
		return
	}
	qo.finishOnce.Do(func() {
		m := qo.m
		m.metrics.inflight.Add(-1)
		dur := time.Since(qo.start)
		m.metrics.duration.With(qo.form).Observe(dur.Seconds())
		if !qo.owned {
			return
		}
		qo.trace.Finish()
		m.Obs.Ring.Add(qo.trace)
		m.Obs.Exporter.Enqueue(qo.trace)
		slow := m.Obs.SlowQuery >= 0 && dur >= m.Obs.SlowQuery
		if slow {
			m.Obs.Log.Warn("slow query",
				"traceId", qo.trace.ID(),
				"form", qo.form,
				"durationMs", float64(dur.Microseconds())/1000)
		}
		if m.Obs.Recorder != nil && (slow || qo.err != nil) {
			view := qo.trace.View()
			rec := obs.AuditRecord{
				Time:       qo.start,
				TraceID:    qo.trace.ID(),
				Form:       qo.form,
				Query:      qo.query,
				DurationMS: float64(dur.Microseconds()) / 1000,
				Slow:       slow,
				Explain:    qo.explain,
				Trace:      &view,
			}
			if qo.err != nil {
				rec.Error = qo.err.Error()
			}
			if err := m.Obs.Recorder.Record(rec); err != nil {
				m.Obs.Log.Error("flight recorder write failed", "err", err)
			}
		}
	})
}

// BuildInfo identifies the running binary for /api/stats.
type BuildInfo struct {
	GoVersion string `json:"goVersion"`
	// Revision is the VCS commit the binary was built from (empty when
	// built outside a checkout).
	Revision string `json:"revision,omitempty"`
	// Modified is true when the checkout had local modifications.
	Modified bool `json:"modified,omitempty"`
}

// buildInfo reads the binary's embedded build metadata once.
var buildInfo = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
})
