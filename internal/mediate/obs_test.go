package mediate

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

// scrapeMetrics GETs /metrics off the handler and parses the Prometheus
// text exposition into families keyed by name.
func scrapeMetrics(t *testing.T, base string) map[string]obs.PromFamily {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParsePrometheusText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	out := make(map[string]obs.PromFamily, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

// sampleValue sums a family's samples matching the given sample name and
// label subset; found reports whether any sample matched.
func sampleValue(fam obs.PromFamily, name string, labels map[string]string) (float64, bool) {
	total, found := 0.0, false
	for _, s := range fam.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += s.Value
			found = true
		}
	}
	return total, found
}

// TestMetricsEndpointScrape is the tentpole's acceptance test for the
// metrics surface: after one planner-selected federated query through
// /sparql, the /metrics exposition parses as Prometheus text and carries
// the core series from every layer — mediator, planner, federation
// executor, plan cache and the HTTP mux itself.
func TestMetricsEndpointScrape(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {workload.Figure1Query(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sparql = %d", resp.StatusCode)
	}

	fams := scrapeMetrics(t, srv.URL)
	assertCounter := func(family, sample string, labels map[string]string, min float64) {
		t.Helper()
		fam, ok := fams[family]
		if !ok {
			t.Fatalf("family %s missing from /metrics", family)
		}
		v, found := sampleValue(fam, sample, labels)
		if !found {
			t.Fatalf("%s: no sample %s%v in %+v", family, sample, labels, fam.Samples)
		}
		if v < min {
			t.Fatalf("%s%v = %v, want >= %v", sample, labels, v, min)
		}
	}

	assertCounter("sparqlrw_queries_total", "sparqlrw_queries_total", map[string]string{"form": "select"}, 1)
	assertCounter("sparqlrw_query_seconds", "sparqlrw_query_seconds_count", nil, 1)
	assertCounter("sparqlrw_query_ttfs_seconds", "sparqlrw_query_ttfs_seconds_count", nil, 1)
	assertCounter("sparqlrw_solutions_streamed_total", "sparqlrw_solutions_streamed_total", nil, 1)
	assertCounter("sparqlrw_plan_plans_total", "sparqlrw_plan_plans_total", nil, 1)
	assertCounter("sparqlrw_plan_cache_misses_total", "sparqlrw_plan_cache_misses_total", nil, 1)
	assertCounter("sparqlrw_federate_attempts_total", "sparqlrw_federate_attempts_total", nil, 2)
	assertCounter("sparqlrw_federate_request_seconds", "sparqlrw_federate_request_seconds_count", nil, 2)
	assertCounter("sparqlrw_federate_ttfs_seconds", "sparqlrw_federate_ttfs_seconds_count", nil, 1)
	assertCounter("sparqlrw_http_requests_total", "sparqlrw_http_requests_total", map[string]string{"route": "/sparql"}, 1)

	if v, _ := sampleValue(fams["sparqlrw_inflight_queries"], "sparqlrw_inflight_queries", nil); v != 0 {
		t.Fatalf("inflight after close = %v, want 0", v)
	}

	// The endpoint label carries real endpoint URLs.
	for _, smp := range fams["sparqlrw_federate_attempts_total"].Samples {
		if !strings.HasPrefix(smp.Labels["endpoint"], "http://") {
			t.Fatalf("attempt sample lacks an endpoint label: %+v", smp)
		}
	}
}

// TestExplainTraceHTTP exercises the explain=trace protocol extension:
// the SRJ document gains a trailing "trace" member whose span tree shows
// the plan and per-endpoint sub-query stages, the response names the
// trace in X-Trace-Id, and /api/trace serves it back by ID.
func TestExplainTraceHTTP(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{
		"query":   {workload.Figure1Query(2)},
		"explain": {"trace"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sparql = %d: %s", resp.StatusCode, body)
	}

	var doc struct {
		Results struct {
			Bindings []json.RawMessage `json:"bindings"`
		} `json:"results"`
		Trace *obs.TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("explain=trace document does not parse: %v\n%s", err, body)
	}
	if doc.Trace == nil {
		t.Fatalf("no trace member in document: %s", body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != doc.Trace.ID {
		t.Fatalf("X-Trace-Id = %q, trace id = %q", got, doc.Trace.ID)
	}
	root := doc.Trace.Root
	if root.Name != "query" || root.Attrs["form"] != "select" {
		t.Fatalf("root span = %+v", root)
	}
	stages := map[string]*obs.SpanJSON{}
	for i := range root.Children {
		stages[root.Children[i].Name] = &root.Children[i]
	}
	if stages["plan"] == nil {
		t.Fatalf("no plan span under root: %+v", root.Children)
	}
	fed := stages["federate"]
	if fed == nil {
		t.Fatalf("no federate span under root: %+v", root.Children)
	}
	var attempts int
	for _, sub := range fed.Children {
		if sub.Name != "subquery" {
			continue
		}
		if sub.Attrs["endpoint"] == nil {
			t.Fatalf("subquery span lacks endpoint attr: %+v", sub)
		}
		for _, a := range sub.Children {
			if a.Name == "attempt" {
				attempts++
			}
		}
	}
	if attempts == 0 {
		t.Fatalf("no attempt spans in federate subtree: %+v", fed)
	}

	// The owned trace was recorded: /api/trace/{id} serves it, the list
	// includes it, and a bogus ID is a 404.
	tr, err := http.Get(srv.URL + "/api/trace/" + doc.Trace.ID)
	if err != nil {
		t.Fatal(err)
	}
	var byID obs.TraceJSON
	err = json.NewDecoder(tr.Body).Decode(&byID)
	tr.Body.Close()
	if err != nil || tr.StatusCode != http.StatusOK || byID.ID != doc.Trace.ID {
		t.Fatalf("GET /api/trace/{id} = %d, trace %+v, err %v", tr.StatusCode, byID, err)
	}
	list, err := http.Get(srv.URL + "/api/trace?limit=5")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Total  int             `json:"total"`
		Traces []obs.TraceJSON `json:"traces"`
	}
	err = json.NewDecoder(list.Body).Decode(&page)
	list.Body.Close()
	if err != nil || len(page.Traces) == 0 || page.Total < len(page.Traces) {
		t.Fatalf("GET /api/trace: %v (%d traces, total %d)", err, len(page.Traces), page.Total)
	}
	missing, err := http.Get(srv.URL + "/api/trace/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/trace/<bogus> = %d, want 404", missing.StatusCode)
	}
}

// TestExplainTraceNDJSON pins the trailer shape of the line-oriented
// serialisation: bindings first, one final {"trace": ...} line.
func TestExplainTraceNDJSON(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/sparql",
		strings.NewReader(url.Values{
			"query":   {workload.Figure1Query(2)},
			"explain": {"trace"},
		}.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	last := lines[len(lines)-1]
	var trailer struct {
		Trace *obs.TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || trailer.Trace == nil {
		t.Fatalf("last NDJSON line is not a trace trailer: %q (err %v)", last, err)
	}
	if trailer.Trace.Root.Name != "query" {
		t.Fatalf("trailer root = %+v", trailer.Trace.Root)
	}
}

// TestResultTraceOwnership pins the library-level contract: a query on a
// bare context starts (and on Close records) its own trace, while a query
// on a context already carrying a trace annotates that one and leaves
// recording to its starter.
func TestResultTraceOwnership(t *testing.T) {
	s := newStack(t)

	res, err := s.mediator.Query(context.Background(), QueryRequest{
		Query:   workload.Figure1Query(1),
		Targets: []string{workload.SotonVoidURI, workload.KistiVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace()
	if tr == nil {
		t.Fatal("owned query has no trace")
	}
	if _, err := res.Bindings().Collect(); err != nil {
		t.Fatal(err)
	}
	res.Close()
	if s.mediator.Obs.Ring.Get(tr.ID()) == nil {
		t.Fatalf("owned trace %s not recorded in ring", tr.ID())
	}

	ctx, ext := obs.NewTrace(context.Background(), "caller")
	res2, err := s.mediator.Query(ctx, QueryRequest{
		Query:   workload.Figure1Query(1),
		Targets: []string{workload.SotonVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace() != ext {
		t.Fatal("query on a traced context should annotate the caller's trace")
	}
	if _, err := res2.Bindings().Collect(); err != nil {
		t.Fatal(err)
	}
	res2.Close()
	if s.mediator.Obs.Ring.Get(ext.ID()) != nil {
		t.Fatal("caller-owned trace must not be recorded by the mediator")
	}
	if len(ext.View().Root.Children) == 0 {
		t.Fatal("caller's trace gained no spans from the query")
	}
}

// TestStatsRegistryConsistency checks that the Stats snapshot and the
// Prometheus exposition are views over the same instruments, and that the
// snapshot carries build info and uptime.
func TestStatsRegistryConsistency(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	const n = 3
	for i := 0; i < n; i++ {
		if _, err := federatedSelect(s.mediator, workload.Figure1Query(i), rdf.AKTNS,
			[]string{workload.SotonVoidURI, workload.KistiVoidURI}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.mediator.Stats()
	if st.Queries.Select != n {
		t.Fatalf("Queries.Select = %d, want %d", st.Queries.Select, n)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d, want 0", st.InFlight)
	}
	if st.Build.GoVersion == "" {
		t.Fatal("Build.GoVersion empty")
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("UptimeSeconds = %v", st.UptimeSeconds)
	}

	fams := scrapeMetrics(t, srv.URL)
	v, found := sampleValue(fams["sparqlrw_queries_total"], "sparqlrw_queries_total", map[string]string{"form": "select"})
	if !found || uint64(v) != st.Queries.Select {
		t.Fatalf("exposition queries_total{form=select} = %v, Stats = %d", v, st.Queries.Select)
	}
	var expAttempts uint64
	for _, smp := range fams["sparqlrw_federate_attempts_total"].Samples {
		expAttempts += uint64(smp.Value)
	}
	var statAttempts uint64
	for _, es := range st.Federation.Endpoints {
		statAttempts += es.Requests
	}
	if expAttempts != statAttempts {
		t.Fatalf("exposition attempts = %d, Stats attempts = %d", expAttempts, statAttempts)
	}

	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/api/stats Content-Type = %q", ct)
	}
	var over struct {
		Build         BuildInfo `json:"build"`
		UptimeSeconds float64   `json:"uptimeSeconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&over); err != nil {
		t.Fatal(err)
	}
	if over.Build.GoVersion == "" || over.UptimeSeconds <= 0 {
		t.Fatalf("/api/stats build/uptime = %+v", over)
	}
}

// TestObservabilityConcurrentQueries hammers the full pipeline from
// parallel queries while scraping /metrics and Stats concurrently — the
// mediator-level companion of the obs package's registry race test. Run
// with -race.
func TestObservabilityConcurrentQueries(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	const workers, perWorker = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, err := federatedSelect(s.mediator, workload.Figure1Query(w*perWorker+i), rdf.AKTNS,
					[]string{workload.SotonVoidURI, workload.KistiVoidURI})
				if err != nil {
					errs <- err
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.mediator.Obs.Registry.WritePrometheus(io.Discard)
				_ = s.mediator.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.mediator.Stats().Queries.Select; got != workers*perWorker {
		t.Fatalf("Queries.Select = %d, want %d", got, workers*perWorker)
	}
}

// TestConfigureKeepsCounters pins the rebuild semantics: reconfiguring
// the stack keeps the observer and its registry, so counters accumulate,
// while WithObservability swaps in a fresh observer.
func TestConfigureKeepsCounters(t *testing.T) {
	s := newStack(t)
	if _, err := federatedSelect(s.mediator, workload.Figure1Query(1), rdf.AKTNS,
		[]string{workload.SotonVoidURI}); err != nil {
		t.Fatal(err)
	}
	before := s.mediator.Stats().Queries.Select
	obsBefore := s.mediator.Obs

	s.mediator.Configure(WithRewriteFilters(false))
	if s.mediator.Obs != obsBefore {
		t.Fatal("Configure without WithObservability replaced the observer")
	}
	if got := s.mediator.Stats().Queries.Select; got != before {
		t.Fatalf("query counter reset by Configure: %d -> %d", before, got)
	}

	s.mediator.Configure(WithObservability(obs.Options{TraceRingSize: 4}))
	if s.mediator.Obs == obsBefore {
		t.Fatal("WithObservability did not replace the observer")
	}
	if got := s.mediator.Stats().Queries.Select; got != 0 {
		t.Fatalf("fresh registry should start at zero, got %d", got)
	}
}
