package mediate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// servingStack is the serving-tier test deployment: the usual generated
// two-repository universe, but with every endpoint round trip counted
// and the serving tier enabled.
type servingStack struct {
	u          *workload.Universe
	mediator   *Mediator
	dsKB       *voidkb.KB
	roundTrips atomic.Int64
	sotonURL   string
	kistiURL   string
}

func newServingStack(t testing.TB, opts serve.Options) *servingStack {
	t.Helper()
	s := &servingStack{}
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	s.u = workload.Generate(cfg)

	count := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.roundTrips.Add(1)
			h.ServeHTTP(w, r)
		})
	}
	sotonSrv := httptest.NewServer(count(endpoint.NewServer("southampton", s.u.Southampton)))
	t.Cleanup(sotonSrv.Close)
	kistiSrv := httptest.NewServer(count(endpoint.NewServer("kisti", s.u.KISTI)))
	t.Cleanup(kistiSrv.Close)
	s.sotonURL, s.kistiURL = sotonSrv.URL, kistiSrv.URL

	s.dsKB = voidkb.NewKB()
	if err := s.dsKB.Add(s.sotonDataset()); err != nil {
		t.Fatal(err)
	}
	if err := s.dsKB.Add(&voidkb.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kistiSrv.URL,
		URISpace:       workload.KistiURIPattern,
		Vocabularies:   []string{rdf.KISTINS},
	}); err != nil {
		t.Fatal(err)
	}
	alignKB := align.NewKB()
	if err := alignKB.Add(workload.AKT2KISTI()); err != nil {
		t.Fatal(err)
	}
	s.mediator = New(s.dsKB, alignKB, s.u.Coref,
		WithRewriteFilters(true), WithServing(opts))
	return s
}

func (s *servingStack) sotonDataset() *voidkb.Dataset {
	return &voidkb.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: s.sotonURL,
		URISpace:       workload.SotonURIPattern,
		Vocabularies:   []string{rdf.AKTNS},
	}
}

func (s *servingStack) query(t *testing.T, req QueryRequest) *FederatedResult {
	t.Helper()
	res, err := s.mediator.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := res.Bindings().Collect()
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

// TestResultCacheHitZeroRoundTrips pins the cache's core promise: a
// repeated SELECT serves entirely from memory, with zero endpoint round
// trips, and yields the same answer.
func TestResultCacheHitZeroRoundTrips(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	req := QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI, workload.KistiVoidURI},
	}
	first := s.query(t, req)
	cold := s.roundTrips.Load()
	if cold == 0 {
		t.Fatal("cold query made no endpoint round trips")
	}

	second := s.query(t, req)
	if got := s.roundTrips.Load(); got != cold {
		t.Fatalf("cache hit made %d endpoint round trips", got-cold)
	}
	if len(second.Solutions) != len(first.Solutions) {
		t.Fatalf("cached answer has %d solutions, want %d", len(second.Solutions), len(first.Solutions))
	}
	m := s.mediator.Serve.Cache.Metrics()
	if m.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", m.Hits)
	}
}

// TestResultCacheSameAsAliasKey pins the owl:sameAs canonicalised key:
// the same query spelled with an entity's KISTI alias shares the cache
// entry its Southampton spelling filled.
func TestResultCacheSameAsAliasKey(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	canon := newCorefCanon(s.mediator.Coref)
	soton, kisti := workload.SotonPerson(0), workload.KistiPerson(0)
	if canon.term(soton) != canon.term(kisti) {
		t.Skip("person 0 has no cross-dataset sameAs link in this universe")
	}
	mk := func(person rdf.Term) QueryRequest {
		return QueryRequest{
			Query: fmt.Sprintf(`PREFIX akt:<%s>
SELECT DISTINCT ?a WHERE { ?paper akt:has-author <%s> . ?paper akt:has-author ?a . }`,
				rdf.AKTNS, person.Value),
			SourceOnt: rdf.AKTNS,
			Targets:   []string{workload.SotonVoidURI, workload.KistiVoidURI},
		}
	}
	s.query(t, mk(soton))
	cold := s.roundTrips.Load()
	s.query(t, mk(kisti))
	if got := s.roundTrips.Load(); got != cold {
		t.Fatalf("alias spelling missed the cache (%d extra round trips)", got-cold)
	}
}

// TestResultCacheInvalidatedByKBUpdate pins the Subscribe wiring: a voiD
// description change drops every entry that touched the data set, so the
// next query goes back to the endpoints.
func TestResultCacheInvalidatedByKBUpdate(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	req := QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI, workload.KistiVoidURI},
	}
	s.query(t, req)
	if s.mediator.Serve.Cache.Len() != 1 {
		t.Fatalf("cache entries = %d, want 1", s.mediator.Serve.Cache.Len())
	}

	// Republish the Southampton voiD description: the subscription hook
	// must invalidate the entry (its answer touched that data set).
	if err := s.dsKB.Add(s.sotonDataset()); err != nil {
		t.Fatal(err)
	}
	if s.mediator.Serve.Cache.Len() != 0 {
		t.Fatal("voiD update left the dependent entry cached")
	}

	cold := s.roundTrips.Load()
	s.query(t, req)
	if got := s.roundTrips.Load(); got == cold {
		t.Fatal("query after invalidation did not return to the endpoints")
	}
	if m := s.mediator.Serve.Cache.Metrics(); m.Invalidations == 0 {
		t.Fatalf("invalidations = %d, want > 0", m.Invalidations)
	}
}

// TestResultCacheStaleInFlightFillNotCached pins the version-epoch
// guard: a KB change that lands while a query is executing (after the
// cache epoch was snapshotted, before the stream finished) must prevent
// that answer — computed against pre-invalidation state — from landing
// in the cache.
func TestResultCacheStaleInFlightFillNotCached(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	req := QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI, workload.KistiVoidURI},
	}
	res, err := s.mediator.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The stream is live but unconsumed; the KB changes under it.
	if err := s.dsKB.Add(s.sotonDataset()); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Bindings().Collect(); err != nil {
		t.Fatal(err)
	}
	if n := s.mediator.Serve.Cache.Len(); n != 0 {
		t.Fatalf("stale in-flight fill was cached (%d entries)", n)
	}

	// An alignment change flushes in the same way.
	s.query(t, req)
	if s.mediator.Serve.Cache.Len() != 1 {
		t.Fatal("fresh fill should have cached")
	}
	if err := s.mediator.Alignments.Add(workload.ECS2DBpedia()); err != nil {
		t.Fatal(err)
	}
	if s.mediator.Serve.Cache.Len() != 0 {
		t.Fatal("alignment update did not flush the cache")
	}
}

// TestResultCacheLimitCutNotCached: a stream the client abandons at its
// LIMIT is incomplete and must not fill the cache.
func TestResultCacheLimitCutNotCached(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	req := QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI, workload.KistiVoidURI},
		Limit:   1,
	}
	fr := s.query(t, req)
	if len(fr.Solutions) > 1 {
		t.Fatalf("limit ignored: %d solutions", len(fr.Solutions))
	}
	// The full (unlimited) answer had more rows than the limit let
	// through, so the fill never saw upstream EOF.
	if n := s.mediator.Serve.Cache.Len(); n != 0 {
		t.Fatalf("limit-cut stream was cached (%d entries)", n)
	}
}

// --- per-tenant policy enforcement ---

func TestTenantDatasetAllowlist(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	tenant := &serve.Tenant{ID: "soton-only", Policy: &serve.Policy{
		Datasets: []string{workload.SotonVoidURI},
	}}

	// An explicit out-of-list target is refused outright.
	_, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{workload.KistiVoidURI},
		Tenant:  tenant,
	})
	if !errors.Is(err, serve.ErrDenied) {
		t.Fatalf("out-of-list target: err = %v, want ErrDenied", err)
	}

	// The planner's candidate set is pruned: only the allowed data set
	// is consulted.
	fr := s.query(t, QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Tenant: tenant,
	})
	for _, da := range fr.PerDataset {
		if da.Dataset != workload.SotonVoidURI {
			t.Fatalf("restricted plan consulted %s", da.Dataset)
		}
	}
}

// TestTenantURISpaceRestriction proves a graph-restricted tenant cannot
// read triples outside its subject URI space: the injected filter
// excludes every row of the out-of-space repository, and ground
// out-of-space subjects are refused before any endpoint is contacted.
func TestTenantURISpaceRestriction(t *testing.T) {
	s := newServingStack(t, serve.Options{})
	tenant := &serve.Tenant{ID: "kisti-space", Policy: &serve.Policy{
		URISpaces: []string{workload.KistiIDSpace},
	}}
	req := func(tn *serve.Tenant) QueryRequest {
		return QueryRequest{
			Query: fmt.Sprintf(`PREFIX akt:<%s>
SELECT ?paper ?a WHERE { ?paper akt:has-author ?a . }`, rdf.AKTNS),
			SourceOnt: rdf.AKTNS,
			Targets:   []string{workload.SotonVoidURI, workload.KistiVoidURI},
			Tenant:    tn,
		}
	}

	open := s.query(t, req(nil))
	restricted := s.query(t, req(tenant))

	// The Southampton repository holds only Southampton-space subjects;
	// the restricted tenant's rewritten query must match none of them.
	perDS := func(fr *FederatedResult, uri string) int {
		for _, da := range fr.PerDataset {
			if da.Dataset == uri {
				return da.Solutions
			}
		}
		return -1
	}
	if n := perDS(open, workload.SotonVoidURI); n == 0 {
		t.Fatal("unrestricted query found nothing in Southampton (test universe broken)")
	}
	if n := perDS(restricted, workload.SotonVoidURI); n != 0 {
		t.Fatalf("restricted tenant read %d Southampton-space rows", n)
	}
	if n := perDS(restricted, workload.KistiVoidURI); n == 0 {
		t.Fatal("restricted tenant should still read its own space")
	}

	// A ground out-of-space subject never reaches an endpoint.
	_, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: fmt.Sprintf(`PREFIX akt:<%s>
SELECT ?a WHERE { <%s> akt:has-author ?a . }`, rdf.AKTNS, workload.SotonPaper(0).Value),
		SourceOnt: rdf.AKTNS,
		Targets:   []string{workload.SotonVoidURI},
		Tenant:    tenant,
	})
	if !errors.Is(err, serve.ErrDenied) {
		t.Fatalf("ground out-of-space subject: err = %v, want ErrDenied", err)
	}
}

// --- the HTTP admission surface ---

// TestProtocolAdmission pins the /sparql admission behaviour: a tenant
// over its rate quota gets a deterministic 429 carrying Retry-After,
// the standard JSON error document and X-Trace-Id; a policy denial maps
// to 403.
func TestProtocolAdmission(t *testing.T) {
	cfg, err := serve.ParseTenants([]byte(fmt.Sprintf(`{"tenants": [
		{"id": "quota", "keys": ["quota-key"], "ratePerSec": 0.001, "burst": 1},
		{"id": "restricted", "keys": ["restricted-key"],
		 "policy": {"uriSpaces": [%q]}}
	]}`, workload.KistiIDSpace)))
	if err != nil {
		t.Fatal(err)
	}
	s := newServingStack(t, serve.Options{Tenants: cfg})
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	do := func(key, query string) *http.Response {
		t.Helper()
		body := url.Values{"query": {query}, "target": {workload.SotonVoidURI}}
		hreq, _ := http.NewRequest("POST", srv.URL+"/sparql",
			strings.NewReader(body.Encode()))
		hreq.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		hreq.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	errorDoc := func(resp *http.Response) string {
		t.Helper()
		defer resp.Body.Close()
		var doc struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("error response is not the JSON error document: %v", err)
		}
		if doc.Error == "" {
			t.Fatal("error document has empty error member")
		}
		return doc.Error
	}

	q := workload.Figure1Query(0)

	// First request spends the only token.
	resp := do("quota-key", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Second is deterministically rate limited.
	resp = do("quota-key", q)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("429 without X-Trace-Id")
	}
	errorDoc(resp)

	// The quota is per tenant: another tenant still gets through.
	resp = do("restricted-key", fmt.Sprintf(`PREFIX akt:<%s>
SELECT ?a WHERE { <%s> akt:has-author ?a . }`, rdf.AKTNS, workload.SotonPaper(0).Value))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("policy denial: %d, want 403", resp.StatusCode)
	}
	if msg := errorDoc(resp); !strings.Contains(msg, "denied") {
		t.Fatalf("403 error document: %q", msg)
	}
}

// TestProtocolConcurrencyShed pins the 503 path: with the only
// concurrency slot held and no queue, the next request is shed.
func TestProtocolConcurrencyShed(t *testing.T) {
	cfg, err := serve.ParseTenants([]byte(`{"anonymous": {"maxConcurrent": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	s := newServingStack(t, serve.Options{Tenants: cfg})
	anon := s.mediator.Serve.Tenants.Anonymous()
	release, rej := s.mediator.Serve.Admission.Admit(context.Background(), anon)
	if rej != nil {
		t.Fatal(rej)
	}
	defer release()

	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {workload.Figure1Query(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}
