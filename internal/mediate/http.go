package mediate

import (
	"encoding/json"
	"html/template"
	"io"
	"net/http"
	"strings"

	"sparqlrw/internal/decompose"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/srjson"
)

// REST API (the paper's Figure 5 "REST API" tier) plus a minimal HTML page
// standing in for the GWT UI of Figure 4: a source-query text area, a
// target data set selector, and the translated query below.

type rewriteRequest struct {
	Query  string `json:"query"`
	Source string `json:"source,omitempty"` // source ontology namespace
	Target string `json:"target"`           // target data set URI
}

type rewriteResponse struct {
	Query          string   `json:"query"`
	Target         string   `json:"target"`
	AlignmentsUsed int      `json:"alignmentsUsed"`
	Warnings       []string `json:"warnings,omitempty"`
	FreshVars      []string `json:"freshVars,omitempty"`
}

type queryRequest struct {
	Query   string   `json:"query"`
	Source  string   `json:"source,omitempty"`
	Targets []string `json:"targets"`
	// Limit caps streamed rows; reaching it cancels upstream work.
	Limit int `json:"limit,omitempty"`
}

// queryResponse documents the shape /api/query streams; the handler
// writes the keys incrementally (rows flow before the summary keys) but
// the complete body always decodes into this struct.
type queryResponse struct {
	Vars       []string            `json:"vars"`
	Rows       []map[string]string `json:"rows"`
	Duplicates int                 `json:"duplicates"`
	Partial    bool                `json:"partial,omitempty"`
	PerDataset []perDatasetJSON    `json:"perDataset"`
	// Plan reports the planner's decisions when the caller passed no
	// explicit targets and the planner selected them.
	Plan *plan.Plan `json:"plan,omitempty"`
	// Decomposition reports the exclusive-group decomposition when the
	// query ran on the multi-source path.
	Decomposition *decompose.Decomposition `json:"decomposition,omitempty"`
	// Error carries a fan-out failure that occurred after streaming
	// started (the status line was already sent by then).
	Error string `json:"error,omitempty"`
}

type perDatasetJSON struct {
	Dataset   string  `json:"dataset"`
	Shard     int     `json:"shard,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	Solutions int     `json:"solutions"`
	Attempts  int     `json:"attempts,omitempty"`
	LatencyMS float64 `json:"latencyMs,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// statsResponse extends the executor's stats with the planner's and the
// decompose layer's counters.
type statsResponse struct {
	federate.Stats
	Planner   *plan.Stats     `json:"planner,omitempty"`
	Decompose *DecomposeStats `json:"decompose,omitempty"`
}

// Handler serves the mediator's REST API and UI.
func Handler(m *Mediator) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/api/datasets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.DatasetInfos())
	})

	mux.HandleFunc("/api/rewrite", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req rewriteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		rr, err := m.Rewrite(req.Query, source, req.Target)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rewriteResponse{
			Query:          rr.Query,
			Target:         rr.Target,
			AlignmentsUsed: rr.AlignmentsUsed,
			Warnings:       rr.Report.Warnings,
			FreshVars:      rr.Report.FreshVars,
		})
	})

	// /api/query streams: the response JSON keeps the queryResponse shape
	// (an object with vars/plan/rows/duplicates/partial/perDataset keys),
	// but rows are written and flushed as endpoints deliver solutions —
	// the first row is on the wire before the slowest endpoint answers —
	// and the summary keys follow the rows. Closing the connection
	// cancels every in-flight endpoint sub-query via the request context.
	mux.HandleFunc("/api/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		qs, err := m.Query(r.Context(), QueryRequest{
			Query: req.Query, SourceOnt: req.Source,
			Targets: req.Targets, Limit: req.Limit,
		})
		if err != nil {
			// The request itself was bad: parse error, non-SELECT, no
			// relevant data set. Upstream failures past this point arrive
			// mid-stream and are reported in the trailing "error" key.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		defer qs.Close()
		if strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
			serveNDJSON(w, qs)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		flusher, _ := w.(http.Flusher)
		writeJSON := func(v any) bool {
			data, err := json.Marshal(v)
			if err != nil {
				return false
			}
			_, werr := w.Write(data)
			return werr == nil
		}
		_, _ = io.WriteString(w, `{"vars":`)
		writeJSON(qs.Vars())
		if pl := qs.Plan(); pl != nil {
			_, _ = io.WriteString(w, `,"plan":`)
			writeJSON(pl)
		}
		if dcm := qs.Decomposition(); dcm != nil {
			_, _ = io.WriteString(w, `,"decomposition":`)
			writeJSON(dcm)
		}
		_, _ = io.WriteString(w, `,"rows":[`)
		var streamErr error
		n := 0
		for sol, err := range qs.Solutions() {
			if err != nil {
				streamErr = err
				break
			}
			row := make(map[string]string, len(sol))
			for k, v := range sol {
				row[k] = v.String()
			}
			if n > 0 {
				_, _ = io.WriteString(w, ",")
			}
			if !writeJSON(row) {
				return // client gone; qs.Close cancels upstream
			}
			n++
			if flusher != nil && (n == 1 || n%endpoint.FlushEvery == 0) {
				flusher.Flush()
			}
		}
		_, _ = io.WriteString(w, "]")
		fr, sumErr := qs.Summary()
		if streamErr == nil {
			streamErr = sumErr
		}
		_, _ = io.WriteString(w, `,"duplicates":`)
		writeJSON(fr.Duplicates)
		if fr.Partial {
			_, _ = io.WriteString(w, `,"partial":true`)
		}
		perDataset := make([]perDatasetJSON, 0, len(fr.PerDataset))
		for _, da := range fr.PerDataset {
			pj := perDatasetJSON{Dataset: da.Dataset, Solutions: da.Solutions,
				Shard: da.Shard, Shards: da.Shards,
				Attempts:  da.Attempts,
				LatencyMS: float64(da.Latency.Microseconds()) / 1000}
			if da.Err != nil {
				pj.Error = da.Err.Error()
			}
			perDataset = append(perDataset, pj)
		}
		_, _ = io.WriteString(w, `,"perDataset":`)
		writeJSON(perDataset)
		if streamErr != nil {
			_, _ = io.WriteString(w, `,"error":`)
			writeJSON(streamErr.Error())
		}
		_, _ = io.WriteString(w, "}")
	})

	// /api/plan explains a federated query without running it: the
	// planner's per-data-set decisions, plus the exclusive-group
	// decomposition (fragments, estimated cardinalities, join order)
	// when the query only runs by splitting its BGP.
	mux.HandleFunc("/api/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		ex, err := m.ExplainQuery(req.Query, source)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(ex)
	})

	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		resp := statsResponse{Stats: m.FederationStats()}
		if m.Planner != nil {
			ps := m.PlannerStats()
			resp.Planner = &ps
		}
		if m.Decomposer != nil {
			ds := m.DecomposerStats()
			resp.Decompose = &ds
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = uiTemplate.Execute(w, m.DatasetInfos())
	})

	return mux
}

// serveNDJSON streams a query's solutions as NDJSON: one W3C-style
// binding object per line (variables as keys, terms as
// {type,value,...} objects), flushed incrementally for browser and CLI
// consumers — `curl -H 'Accept: application/x-ndjson' ... | jq` works
// line by line. The stream carries solutions only; a failure mid-stream
// terminates it with a final {"error": "..."} line (distinguishable from
// a binding, whose values are objects). Consumers wanting the
// per-dataset summary use the default JSON shape instead.
func serveNDJSON(w http.ResponseWriter, qs *QueryStream) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	writeLine := func(data []byte) bool {
		if _, err := w.Write(data); err != nil {
			return false
		}
		_, err := io.WriteString(w, "\n")
		return err == nil
	}
	n := 0
	var streamErr error
	for sol, err := range qs.Solutions() {
		if err != nil {
			streamErr = err
			break
		}
		line, err := srjson.Binding(qs.Vars(), sol)
		if err != nil {
			streamErr = err
			break
		}
		if !writeLine(line) {
			return // client gone; the deferred Close cancels upstream
		}
		n++
		if flusher != nil && (n == 1 || n%endpoint.FlushEvery == 0) {
			flusher.Flush()
		}
	}
	if streamErr == nil {
		// A fan-out failure can also surface only in the summary.
		_, streamErr = qs.Summary()
	}
	if streamErr != nil {
		if line, err := json.Marshal(map[string]string{"error": streamErr.Error()}); err == nil {
			writeLine(line)
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// uiTemplate is the Figure-4 stand-in: source query on top, data set
// selector, translated query below.
var uiTemplate = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html>
<head><title>SPARQL Query Rewriter</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 textarea { width: 100%; font-family: monospace; }
 select, button { margin: 0.5em 0; }
</style></head>
<body>
<h1>SPARQL Query Rewriter</h1>
<p>Write a source query, pick the target data set, and translate
   (Correndo et al., EDBT 2010).</p>
<textarea id="src" rows="10">PREFIX akt:&lt;http://www.aktors.org/ontology/portal#&gt;
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author &lt;http://southampton.rkbexplorer.com/id/person-00001&gt; .
  ?paper akt:has-author ?a .
}</textarea><br>
<select id="target">
{{range .}}<option value="{{.URI}}">{{.Title}} ({{.URI}})</option>
{{end}}</select>
<button onclick="rewrite()">Translate</button>
<button onclick="runQuery()">Translate &amp; Run</button>
<h2>Translated query / results</h2>
<textarea id="dst" rows="14" readonly></textarea>
<script>
async function rewrite() {
  const res = await fetch('/api/rewrite', {method: 'POST',
    body: JSON.stringify({query: document.getElementById('src').value,
                          target: document.getElementById('target').value})});
  const text = await res.text();
  try {
    const data = JSON.parse(text);
    document.getElementById('dst').value = data.query +
      (data.warnings ? '\n# warnings:\n# ' + data.warnings.join('\n# ') : '');
  } catch (e) { document.getElementById('dst').value = text; }
}
async function runQuery() {
  const res = await fetch('/api/query', {method: 'POST',
    body: JSON.stringify({query: document.getElementById('src').value,
                          targets: [document.getElementById('target').value]})});
  document.getElementById('dst').value = await res.text();
}
</script>
</body></html>`))
