package mediate

import (
	"encoding/json"
	"html/template"
	"net/http"

	"sparqlrw/internal/federate"
	"sparqlrw/internal/plan"
)

// REST API (the paper's Figure 5 "REST API" tier) plus a minimal HTML page
// standing in for the GWT UI of Figure 4: a source-query text area, a
// target data set selector, and the translated query below.

type rewriteRequest struct {
	Query  string `json:"query"`
	Source string `json:"source,omitempty"` // source ontology namespace
	Target string `json:"target"`           // target data set URI
}

type rewriteResponse struct {
	Query          string   `json:"query"`
	Target         string   `json:"target"`
	AlignmentsUsed int      `json:"alignmentsUsed"`
	Warnings       []string `json:"warnings,omitempty"`
	FreshVars      []string `json:"freshVars,omitempty"`
}

type queryRequest struct {
	Query   string   `json:"query"`
	Source  string   `json:"source,omitempty"`
	Targets []string `json:"targets"`
}

type queryResponse struct {
	Vars       []string            `json:"vars"`
	Rows       []map[string]string `json:"rows"`
	Duplicates int                 `json:"duplicates"`
	Partial    bool                `json:"partial,omitempty"`
	PerDataset []perDatasetJSON    `json:"perDataset"`
	// Plan reports the planner's decisions when the caller passed no
	// explicit targets and the planner selected them.
	Plan *plan.Plan `json:"plan,omitempty"`
}

type perDatasetJSON struct {
	Dataset   string  `json:"dataset"`
	Shard     int     `json:"shard,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	Solutions int     `json:"solutions"`
	Attempts  int     `json:"attempts,omitempty"`
	LatencyMS float64 `json:"latencyMs,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// statsResponse extends the executor's stats with the planner's counters.
type statsResponse struct {
	federate.Stats
	Planner *plan.Stats `json:"planner,omitempty"`
}

// Handler serves the mediator's REST API and UI.
func Handler(m *Mediator) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/api/datasets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.DatasetInfos())
	})

	mux.HandleFunc("/api/rewrite", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req rewriteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		rr, err := m.Rewrite(req.Query, source, req.Target)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rewriteResponse{
			Query:          rr.Query,
			Target:         rr.Target,
			AlignmentsUsed: rr.AlignmentsUsed,
			Warnings:       rr.Report.Warnings,
			FreshVars:      rr.Report.FreshVars,
		})
	})

	mux.HandleFunc("/api/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		var fr *FederatedResult
		var pl *plan.Plan
		var err error
		if len(req.Targets) == 0 {
			// Planner-selected targets: surface the plan in the response.
			fr, pl, err = m.FederatedSelectPlanned(r.Context(), req.Query, source)
		} else {
			fr, err = m.FederatedSelectContext(r.Context(), req.Query, source, req.Targets)
		}
		if err != nil {
			// A nil result means the request itself was bad (parse
			// error, non-SELECT, nothing relevant); otherwise the fan-out
			// failed upstream (fail-fast policy), which is the
			// repositories' fault.
			status := http.StatusBadGateway
			if fr == nil {
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		resp := queryResponse{Vars: fr.Vars, Duplicates: fr.Duplicates,
			Partial: fr.Partial, Rows: []map[string]string{}, Plan: pl}
		for _, sol := range fr.Solutions {
			row := map[string]string{}
			for k, v := range sol {
				row[k] = v.String()
			}
			resp.Rows = append(resp.Rows, row)
		}
		for _, da := range fr.PerDataset {
			pj := perDatasetJSON{Dataset: da.Dataset, Solutions: da.Solutions,
				Shard: da.Shard, Shards: da.Shards,
				Attempts:  da.Attempts,
				LatencyMS: float64(da.Latency.Microseconds()) / 1000}
			if da.Err != nil {
				pj.Error = da.Err.Error()
			}
			resp.PerDataset = append(resp.PerDataset, pj)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("/api/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req queryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		pl, err := m.PlanQuery(req.Query, source)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(pl)
	})

	mux.HandleFunc("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		resp := statsResponse{Stats: m.FederationStats()}
		if m.Planner != nil {
			ps := m.PlannerStats()
			resp.Planner = &ps
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = uiTemplate.Execute(w, m.DatasetInfos())
	})

	return mux
}

// uiTemplate is the Figure-4 stand-in: source query on top, data set
// selector, translated query below.
var uiTemplate = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html>
<head><title>SPARQL Query Rewriter</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 textarea { width: 100%; font-family: monospace; }
 select, button { margin: 0.5em 0; }
</style></head>
<body>
<h1>SPARQL Query Rewriter</h1>
<p>Write a source query, pick the target data set, and translate
   (Correndo et al., EDBT 2010).</p>
<textarea id="src" rows="10">PREFIX akt:&lt;http://www.aktors.org/ontology/portal#&gt;
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author &lt;http://southampton.rkbexplorer.com/id/person-00001&gt; .
  ?paper akt:has-author ?a .
}</textarea><br>
<select id="target">
{{range .}}<option value="{{.URI}}">{{.Title}} ({{.URI}})</option>
{{end}}</select>
<button onclick="rewrite()">Translate</button>
<button onclick="runQuery()">Translate &amp; Run</button>
<h2>Translated query / results</h2>
<textarea id="dst" rows="14" readonly></textarea>
<script>
async function rewrite() {
  const res = await fetch('/api/rewrite', {method: 'POST',
    body: JSON.stringify({query: document.getElementById('src').value,
                          target: document.getElementById('target').value})});
  const text = await res.text();
  try {
    const data = JSON.parse(text);
    document.getElementById('dst').value = data.query +
      (data.warnings ? '\n# warnings:\n# ' + data.warnings.join('\n# ') : '');
  } catch (e) { document.getElementById('dst').value = text; }
}
async function runQuery() {
  const res = await fetch('/api/query', {method: 'POST',
    body: JSON.stringify({query: document.getElementById('src').value,
                          targets: [document.getElementById('target').value]})});
  document.getElementById('dst').value = await res.text();
}
</script>
</body></html>`))
