package mediate

import (
	"encoding/json"
	"errors"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"strings"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/ntriples"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/turtle"
)

// REST API (the paper's Figure 5 "REST API" tier) plus a minimal HTML page
// standing in for the GWT UI of Figure 4. Query execution is served by a
// W3C SPARQL 1.1 Protocol endpoint at /sparql; the /api/* routes carry the
// mediator-specific operations the protocol does not model (rewrite
// preview, plan explain, stats, data set listing).

type rewriteRequest struct {
	Query  string `json:"query"`
	Source string `json:"source,omitempty"` // source ontology namespace
	Target string `json:"target"`           // target data set URI
}

type rewriteResponse struct {
	Query          string   `json:"query"`
	Target         string   `json:"target"`
	AlignmentsUsed int      `json:"alignmentsUsed"`
	Warnings       []string `json:"warnings,omitempty"`
	FreshVars      []string `json:"freshVars,omitempty"`
}

type planRequest struct {
	Query  string `json:"query"`
	Source string `json:"source,omitempty"`
}

type perDatasetJSON struct {
	Dataset   string  `json:"dataset"`
	Shard     int     `json:"shard,omitempty"`
	Shards    int     `json:"shards,omitempty"`
	Solutions int     `json:"solutions"`
	Attempts  int     `json:"attempts,omitempty"`
	LatencyMS float64 `json:"latencyMs,omitempty"`
	TTFSMS    float64 `json:"ttfsMs,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func perDatasetView(fr *FederatedResult) []perDatasetJSON {
	out := make([]perDatasetJSON, 0, len(fr.PerDataset))
	for _, da := range fr.PerDataset {
		pj := perDatasetJSON{Dataset: da.Dataset, Solutions: da.Solutions,
			Shard: da.Shard, Shards: da.Shards,
			Attempts:  da.Attempts,
			LatencyMS: float64(da.Latency.Microseconds()) / 1000,
			TTFSMS:    float64(da.TTFS.Microseconds()) / 1000}
		if da.Err != nil {
			pj.Error = da.Err.Error()
		}
		out = append(out, pj)
	}
	return out
}

// tracePage / auditPage are the paginated list envelopes of /api/trace
// and /api/audit: the page plus the total so clients can iterate with
// ?offset without guessing when to stop.
type tracePage struct {
	Total  int             `json:"total"`
	Offset int             `json:"offset"`
	Traces []obs.TraceJSON `json:"traces"`
}

type auditPage struct {
	Total   int               `json:"total"`
	Offset  int               `json:"offset"`
	Records []json.RawMessage `json:"records"`
}

// Media types the /sparql endpoint can produce.
const (
	ctSRJ      = "application/sparql-results+json"
	ctJSON     = "application/json"
	ctNDJSON   = "application/x-ndjson"
	ctSSE      = "text/event-stream"
	ctNTriples = "application/n-triples"
	ctTurtle   = "text/turtle"
)

// bindingsOffered / graphOffered are the content-negotiation menus per
// result category (first entry is the default for absent/wildcard
// Accept). application/json is a friendliness alias for the SRJ document.
var (
	bindingsOffered = []string{ctSRJ, ctJSON, ctNDJSON, ctSSE}
	graphOffered    = []string{ctNTriples, ctTurtle}
)

// negotiate picks the best offered media type for an Accept header: each
// offered type takes the q-value of its most specific matching range
// (exact beats type/* beats */*, per RFC 9110 §12.5.1 — so an explicit
// `foo/bar;q=0` excludes foo/bar even under a `*/*` wildcard), the
// highest q wins, and ties go to the earlier offered entry. ok is false
// when nothing offered is acceptable (a 406).
func negotiate(accept string, offered []string) (string, bool) {
	if strings.TrimSpace(accept) == "" {
		return offered[0], true
	}
	type mediaRange struct {
		typ string
		q   float64
	}
	var ranges []mediaRange
	for _, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		typ := strings.ToLower(strings.TrimSpace(fields[0]))
		if typ == "" {
			continue
		}
		q := 1.0
		for _, p := range fields[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(p), "q="); ok {
				if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
					q = f
				}
			}
		}
		ranges = append(ranges, mediaRange{typ: typ, q: q})
	}
	specificity := func(r, off, major string) int {
		switch r {
		case off:
			return 2
		case major:
			return 1
		case "*/*":
			return 0
		}
		return -1
	}
	best, bestQ := "", 0.0
	for _, off := range offered {
		major := off[:strings.Index(off, "/")+1] + "*"
		bestSpec, q := -1, 0.0
		for _, r := range ranges {
			if spec := specificity(r.typ, off, major); spec > bestSpec {
				bestSpec, q = spec, r.q
			} else if spec == bestSpec && spec >= 0 && r.q > q {
				q = r.q
			}
		}
		if bestSpec >= 0 && q > bestQ {
			best, bestQ = off, q
		}
	}
	return best, bestQ > 0
}

// protocolError writes the endpoint's JSON error document.
func protocolError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Handler serves the mediator's SPARQL protocol endpoint, REST API, UI,
// Prometheus-format metrics (/metrics) and trace inspection (/api/trace).
// The per-route request counter binds to the mediator's observer at
// construction; reconfiguring with WithObservability means recreating the
// handler to rebind.
func Handler(m *Mediator) http.Handler {
	mux := http.NewServeMux()
	requests := m.Obs.Registry.CounterVec("sparqlrw_http_requests_total",
		"HTTP requests served, by route.", "route")
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			requests.With(route).Inc()
			h(w, r)
		})
	}

	handle("/sparql", func(w http.ResponseWriter, r *http.Request) {
		serveProtocol(m, w, r)
	})

	// /metrics serves the shared registry — every layer's counters,
	// gauges and histograms — in Prometheus text exposition format.
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.Obs.Registry.WritePrometheus(w)
	})

	// /api/trace lists the trace ring's recent span trees, newest first,
	// as {"total", "offset", "traces"} (?limit=N caps the page, ?offset=N
	// skips past the newest N); /api/trace/{id} fetches one by ID, 404
	// once evicted.
	handle("/api/trace", func(w http.ResponseWriter, r *http.Request) {
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
		traces, total := m.Obs.Ring.Page(offset, limit)
		views := make([]obs.TraceJSON, 0, len(traces))
		for _, t := range traces {
			views = append(views, t.View())
		}
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(tracePage{Total: total, Offset: offset, Traces: views})
	})
	handle("/api/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/api/trace/")
		t := m.Obs.Ring.Get(id)
		if t == nil {
			protocolError(w, http.StatusNotFound, "no such trace (evicted or never recorded): "+id)
			return
		}
		w.Header().Set("Content-Type", ctJSON)
		_, _ = w.Write(t.JSON())
	})

	// /api/analyze/{traceId} renders a retained trace's EXPLAIN ANALYZE
	// operator tree — estimated vs actual cardinalities, q-error, row
	// counts — as human-readable text (?format=json for the document the
	// explain=analyze trailer ships).
	handle("/api/analyze/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/api/analyze/")
		t := m.Obs.Ring.Get(id)
		if t == nil {
			protocolError(w, http.StatusNotFound, "no such trace (evicted or never recorded): "+id)
			return
		}
		a := buildAnalyze(t.View())
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", ctJSON)
			_ = json.NewEncoder(w).Encode(a)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, a.Text())
	})

	handle("/api/datasets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(m.DatasetInfos())
	})

	// /api/views lists the materialized-view tier's state: hit/miss/refresh
	// counters plus every view's covered shape, source data sets, embedded
	// endpoint, freshness state and synthetic voiD statistics. 404 when the
	// tier is disabled.
	handle("/api/views", func(w http.ResponseWriter, r *http.Request) {
		if m.Views == nil {
			protocolError(w, http.StatusNotFound, "materialized views disabled (start with -views)")
			return
		}
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(m.Views.Stats())
	})

	// POST /api/alignments loads ontology alignments (Turtle, the §3.1
	// alignment vocabulary) into the running mediator's alignment KB. The
	// KB's subscribers fire synchronously before the response: rewrite
	// plans flush, cached results flush, and every materialized view is
	// marked stale — so no later query can be answered from pre-update
	// state.
	handle("/api/alignments", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, endpoint.DefaultMaxRequestBody)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			protocolError(w, http.StatusBadRequest, "cannot read body: "+err.Error())
			return
		}
		oas, _, err := align.ParseTurtle(string(body))
		if err != nil {
			protocolError(w, http.StatusBadRequest, "cannot parse alignments: "+err.Error())
			return
		}
		if len(oas) == 0 {
			protocolError(w, http.StatusBadRequest, "no ontology alignments in body")
			return
		}
		added := 0
		for _, oa := range oas {
			if err := m.Alignments.Add(oa); err != nil {
				protocolError(w, http.StatusBadRequest, err.Error())
				return
			}
			added++
		}
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(map[string]int{"added": added})
	})

	handle("/api/rewrite", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req rewriteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		rr, err := m.Rewrite(req.Query, source, req.Target)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(rewriteResponse{
			Query:          rr.Query,
			Target:         rr.Target,
			AlignmentsUsed: rr.AlignmentsUsed,
			Warnings:       rr.Report.Warnings,
			FreshVars:      rr.Report.FreshVars,
		})
	})

	// /api/plan explains a federated query without running it: the
	// planner's per-data-set decisions, plus the exclusive-group
	// decomposition (fragments, estimated cardinalities, join order)
	// when the query only runs by splitting its BGP.
	handle("/api/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req planRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		source := req.Source
		if source == "" {
			var err error
			if source, err = m.GuessSourceOntology(req.Query); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		ex, err := m.ExplainQuery(req.Query, source)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(ex)
	})

	handle("/api/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(m.Stats())
	})

	// /api/health scores every known endpoint: EWMA-smoothed latency
	// quantiles, error rate, breaker state and a composite score in [0,1].
	handle("/api/health", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(m.Obs.Health.Snapshot())
	})

	// /api/audit lists the flight recorder's captured slow/failed queries,
	// newest first, as {"total", "offset", "records"} (?limit=N caps the
	// page, ?offset=N skips past the newest N, ?trace=<id> fetches one by
	// trace id). 404 when the recorder is disabled (no -audit-dir).
	handle("/api/audit", func(w http.ResponseWriter, r *http.Request) {
		if m.Obs.Recorder == nil {
			protocolError(w, http.StatusNotFound, "flight recorder disabled (start with -audit-dir)")
			return
		}
		if id := r.URL.Query().Get("trace"); id != "" {
			rec, ok := m.Obs.Recorder.Find(id)
			if !ok {
				protocolError(w, http.StatusNotFound, "no audited query with trace id "+id)
				return
			}
			w.Header().Set("Content-Type", ctJSON)
			_, _ = w.Write(append(rec, '\n'))
			return
		}
		limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
		offset, _ := strconv.Atoi(r.URL.Query().Get("offset"))
		recs, total := m.Obs.Recorder.Page(offset, limit)
		if recs == nil {
			recs = []json.RawMessage{}
		}
		w.Header().Set("Content-Type", ctJSON)
		_ = json.NewEncoder(w).Encode(auditPage{Total: total, Offset: offset, Records: recs})
	})

	handle("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = uiTemplate.Execute(w, m.DatasetInfos())
	})

	return mux
}

// serveProtocol implements the W3C SPARQL 1.1 Protocol query operation:
//
//	GET  /sparql?query=...
//	POST /sparql  application/x-www-form-urlencoded   query=...
//	POST /sparql  application/sparql-query            <body is the query>
//
// Content negotiation on Accept selects the response serialisation:
// SELECT/ASK results serve SPARQL-results-JSON (default), NDJSON (one
// binding object per line) or Server-Sent Events (one binding per event,
// terminal summary/error event); CONSTRUCT/DESCRIBE graphs serve
// N-Triples (default) or Turtle, both streamed triple by triple. An
// unservable Accept yields 406 and a malformed query 400, each with a
// JSON error document. Closing the connection mid-stream cancels every
// in-flight upstream sub-query.
//
// Three protocol extensions carry the mediator-specific inputs: repeated
// `target` parameters name explicit data sets (default: the voiD-driven
// planner selects them), `source` names the source ontology (default:
// guessed from the query's vocabulary) and `explain=trace` appends the
// query's span tree to the response — a trailing "trace" member in the
// SRJ document, a final {"trace":...} line in NDJSON, a terminal `trace`
// event over SSE, a `# trace: {...}` comment in graph serialisations.
// `explain=analyze` ships, in the same trailer slots under the member
// name "analyze", the executed query's operator tree annotated with
// estimated vs actual cardinalities and per-operator q-error (also
// rendered human-readably at GET /api/analyze/{traceId} while the trace
// ring retains the query).
// Every response — error responses included — carries the query's trace
// ID in X-Trace-Id, resolvable at /api/trace/{id} while the trace ring
// retains it. Requests bearing a W3C `traceparent` header join the
// caller's trace: the same trace id flows through every outbound
// sub-query (and to the OTLP exporter, when configured), with the
// caller's span as the query span's remote parent; `tracestate` is
// propagated unmodified.
func serveProtocol(m *Mediator, w http.ResponseWriter, r *http.Request) {
	// Inbound W3C Trace Context: adopt the caller's traceparent — the
	// query's trace continues the caller's trace id, with the caller's
	// span as remote parent — or mint a fresh trace id. The id surfaces
	// as X-Trace-Id before any error path, so 400 and 406 responses are
	// correlatable too.
	tc, fromCaller := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !fromCaller {
		tc = obs.TraceContext{TraceID: obs.NewTraceID(), Sampled: true}
	}
	tc.State = r.Header.Get("tracestate")
	ctx := obs.WithRemoteParent(r.Context(), tc)
	w.Header().Set("X-Trace-Id", tc.TraceID)

	// Serving-tier admission: identify the tenant from its credential
	// headers and run the rate/concurrency checks before any parsing or
	// planning work. Rejections reuse the endpoint's JSON error document
	// (the same shape as 400/406) plus a Retry-After hint, with
	// X-Trace-Id already set above so shed requests stay correlatable.
	var tenant *serve.Tenant
	if m.Serve != nil {
		tenant = m.Serve.Tenants.Identify(r)
		release, rej := m.Serve.Admission.Admit(ctx, tenant)
		if rej != nil {
			w.Header().Set("Retry-After", rej.RetryAfterSeconds())
			protocolError(w, rej.Status, rej.Error())
			return
		}
		defer release()
	}

	var queryText, source string
	var targets []string
	limit := 0
	explain := ""
	readOpts := func(get func(string) string, all func(string) []string) {
		source = get("source")
		targets = all("target")
		if n, err := strconv.Atoi(get("limit")); err == nil && n > 0 {
			limit = n
		}
		if mode := get("explain"); mode == explainModeTrace || mode == explainModeAnalyze {
			explain = mode
		}
	}
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		queryText = q.Get("query")
		readOpts(q.Get, func(k string) []string { return q[k] })
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, endpoint.DefaultMaxRequestBody)
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				protocolError(w, http.StatusBadRequest, "cannot read body: "+err.Error())
				return
			}
			queryText = string(body)
			q := r.URL.Query()
			readOpts(q.Get, func(k string) []string { return q[k] })
		} else {
			if err := r.ParseForm(); err != nil {
				protocolError(w, http.StatusBadRequest, "cannot parse form: "+err.Error())
				return
			}
			queryText = r.Form.Get("query")
			readOpts(r.Form.Get, func(k string) []string { return r.Form[k] })
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		protocolError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if strings.TrimSpace(queryText) == "" {
		protocolError(w, http.StatusBadRequest, "missing query parameter")
		return
	}
	q, err := sparql.Parse(queryText)
	if err != nil {
		protocolError(w, http.StatusBadRequest, err.Error())
		return
	}
	offered := bindingsOffered
	if q.Form == sparql.Construct || q.Form == sparql.Describe {
		offered = graphOffered
	}
	ctype, ok := negotiate(r.Header.Get("Accept"), offered)
	if !ok {
		protocolError(w, http.StatusNotAcceptable,
			"no acceptable representation for "+q.Form.String()+" results; offered: "+strings.Join(offered, ", "))
		return
	}

	res, err := m.queryParsed(ctx, QueryRequest{
		Query: queryText, SourceOnt: source, Targets: targets, Limit: limit,
		Tenant: tenant,
	}, q)
	if err != nil {
		// The request itself was bad: unsupported form, no relevant data
		// set, fail-fast abort before any result. Upstream failures past
		// this point arrive mid-stream. Tenant-policy refusals map to 403.
		status := http.StatusBadRequest
		if errors.Is(err, serve.ErrDenied) {
			status = http.StatusForbidden
		}
		protocolError(w, status, err.Error())
		return
	}
	defer res.Close()

	if t := res.Trace(); t != nil {
		m.Obs.Log.Debug("query accepted",
			"traceId", t.ID(),
			"form", res.Form().String(),
			"accept", ctype,
			"targets", len(targets))
	}

	switch res.Form() {
	case sparql.Select:
		serveBindings(w, res, ctype, explain)
	case sparql.Ask:
		serveBoolean(w, res, ctype, explain)
	default:
		serveGraph(w, res, ctype, explain)
	}
}

// explainTrace finishes the query's trace (idempotent — execution is done
// once the stream drains; serialisation time is not part of the query)
// and returns its serialised span tree for the explain=trace trailer.
func explainTrace(res *Result) json.RawMessage {
	t := res.Trace()
	if t == nil {
		return nil
	}
	t.Finish()
	return t.JSON()
}

// The /sparql explain protocol-extension modes.
const (
	explainModeTrace   = "trace"   // full span tree
	explainModeAnalyze = "analyze" // operator tree with est/actual cardinalities
)

// explainPayload resolves an explain mode into its trailer member name
// and payload ("" when the mode is off or the query ran untraced).
func explainPayload(res *Result, mode string) (string, json.RawMessage) {
	switch mode {
	case explainModeTrace:
		if tr := explainTrace(res); tr != nil {
			return "trace", tr
		}
	case explainModeAnalyze:
		if a := explainAnalyze(res); a != nil {
			return "analyze", a
		}
	}
	return "", nil
}

// flushEvery adapts an http.Flusher into the "flush the first item
// immediately, then batch" policy shared with the endpoints.
func flushEvery(w http.ResponseWriter) func() {
	flusher, _ := w.(http.Flusher)
	n := 0
	return func() {
		n++
		if flusher != nil && (n == 1 || n%endpoint.FlushEvery == 0) {
			flusher.Flush()
		}
	}
}

// serveBindings streams a SELECT result in the negotiated serialisation.
func serveBindings(w http.ResponseWriter, res *Result, ctype string, explain string) {
	qs := res.Bindings()
	switch ctype {
	case ctNDJSON:
		serveNDJSON(w, res, explain)
	case ctSSE:
		serveSSE(w, res, explain)
	default: // SRJ (and its application/json alias)
		w.Header().Set("Content-Type", ctype)
		// A mid-stream failure can no longer change the status line;
		// aborting leaves truncated JSON, which streaming clients report.
		if explain == "" {
			_ = srjson.EncodeSelectStream(w, qs.Vars(), qs.Solutions(), flushEvery(w))
			return
		}
		enc, err := srjson.NewStreamEncoder(w, qs.Vars())
		if err != nil {
			return
		}
		flush := flushEvery(w)
		for sol, serr := range qs.Solutions() {
			if serr != nil {
				return // truncated JSON signals the failure, as above
			}
			if enc.Encode(sol) != nil {
				return
			}
			flush()
		}
		member, payload := explainPayload(res, explain)
		_ = enc.CloseWith(member, payload)
	}
}

// serveBoolean writes an ASK result.
func serveBoolean(w http.ResponseWriter, res *Result, ctype string, explain string) {
	switch ctype {
	case ctNDJSON:
		w.Header().Set("Content-Type", ctNDJSON)
		line, _ := json.Marshal(map[string]bool{"boolean": res.Bool()})
		_, _ = w.Write(append(line, '\n'))
		if member, payload := explainPayload(res, explain); member != "" {
			trailer := append([]byte(`{"`+member+`":`), payload...)
			_, _ = w.Write(append(trailer, '}', '\n'))
		}
	case ctSSE:
		sse := newSSEWriter(w)
		_ = sse.event("boolean", map[string]bool{"boolean": res.Bool()})
		fr, err := res.Summary()
		writeSSESummary(sse, fr, err)
		if member, payload := explainPayload(res, explain); member != "" {
			_ = sse.event(member, payload)
		}
	default:
		data, err := srjson.EncodeAsk(res.Bool())
		if err != nil {
			protocolError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if member, payload := explainPayload(res, explain); member != "" {
			// Splice the trailer in before the document's closing brace:
			// an unknown top-level member W3C consumers skip.
			data = append(data[:len(data)-1], `,"`+member+`":`...)
			data = append(append(data, payload...), '}')
		}
		w.Header().Set("Content-Type", ctype)
		_, _ = w.Write(data)
	}
}

// serveGraph streams a CONSTRUCT/DESCRIBE triple stream as N-Triples or
// Turtle, one triple per line, flushed incrementally. A failure
// mid-stream terminates the document with a comment line (legal in both
// syntaxes), since the status line is long gone.
func serveGraph(w http.ResponseWriter, res *Result, ctype string, explain string) {
	gs := res.Graph()
	w.Header().Set("Content-Type", ctype)
	flush := flushEvery(w)
	var write func(t rdf.Triple) error
	if ctype == ctTurtle {
		sw := turtle.NewStreamWriter(w, gs.Prefixes())
		write = sw.WriteTriple
	} else {
		write = func(t rdf.Triple) error {
			_, err := io.WriteString(w, ntriples.FormatTriple(t)+"\n")
			return err
		}
	}
	var streamErr error
	for t, err := range gs.Triples() {
		if err != nil {
			streamErr = err
			break
		}
		if werr := write(t); werr != nil {
			return // client gone; the deferred Close cancels upstream
		}
		flush()
	}
	if streamErr == nil {
		_, streamErr = gs.Summary()
	}
	if streamErr != nil {
		_, _ = io.WriteString(w, "# error: "+strings.ReplaceAll(streamErr.Error(), "\n", " ")+"\n")
	}
	if member, payload := explainPayload(res, explain); member != "" {
		// json.Marshal output never contains raw newlines, so the
		// trailer stays one comment line (legal in both syntaxes).
		_, _ = io.WriteString(w, "# "+member+": "+string(payload)+"\n")
	}
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
}

// serveNDJSON streams a query's solutions as NDJSON: one W3C-style
// binding object per line (variables as keys, terms as
// {type,value,...} objects), flushed incrementally for browser and CLI
// consumers — `curl -N -H 'Accept: application/x-ndjson' ... | jq` works
// line by line. The stream carries solutions only; a failure mid-stream
// terminates it with a final {"error": "..."} line (distinguishable from
// a binding, whose values are objects). Consumers wanting the
// per-dataset summary use the SSE serialisation instead.
func serveNDJSON(w http.ResponseWriter, res *Result, explain string) {
	qs := res.Bindings()
	w.Header().Set("Content-Type", ctNDJSON)
	flush := flushEvery(w)
	writeLine := func(data []byte) bool {
		if _, err := w.Write(data); err != nil {
			return false
		}
		_, err := io.WriteString(w, "\n")
		return err == nil
	}
	var streamErr error
	for sol, err := range qs.Solutions() {
		if err != nil {
			streamErr = err
			break
		}
		line, err := srjson.Binding(qs.Vars(), sol)
		if err != nil {
			streamErr = err
			break
		}
		if !writeLine(line) {
			return // client gone; the deferred Close cancels upstream
		}
		flush()
	}
	if streamErr == nil {
		// A fan-out failure can also surface only in the summary.
		_, streamErr = qs.Summary()
	}
	if streamErr != nil {
		if line, err := json.Marshal(map[string]string{"error": streamErr.Error()}); err == nil {
			writeLine(line)
		}
	}
	if member, payload := explainPayload(res, explain); member != "" {
		// Distinguishable from a binding line: its one value is the
		// trailer object, not a {type,value} term.
		writeLine(append(append([]byte(`{"`+member+`":`), payload...), '}'))
	}
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
}

// sseWriter emits Server-Sent Events, flushing each event so consumers
// see bindings the moment endpoints deliver them.
type sseWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
}

func newSSEWriter(w http.ResponseWriter) *sseWriter {
	w.Header().Set("Content-Type", ctSSE)
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	return &sseWriter{w: w, flusher: flusher}
}

func (s *sseWriter) event(name string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(s.w, "event: "+name+"\ndata: "+string(data)+"\n\n"); err != nil {
		return err
	}
	if s.flusher != nil {
		s.flusher.Flush()
	}
	return nil
}

// sseSummary is the terminal summary event's payload.
type sseSummary struct {
	Solutions  int              `json:"solutions"`
	Duplicates int              `json:"duplicates"`
	Partial    bool             `json:"partial,omitempty"`
	PerDataset []perDatasetJSON `json:"perDataset"`
}

func writeSSESummary(sse *sseWriter, fr *FederatedResult, err error) {
	if err != nil {
		_ = sse.event("error", map[string]string{"error": err.Error()})
		return
	}
	sum := sseSummary{Duplicates: fr.Duplicates, Partial: fr.Partial,
		PerDataset: perDatasetView(fr)}
	for _, da := range fr.PerDataset {
		sum.Solutions += da.Solutions
	}
	_ = sse.event("summary", sum)
}

// serveSSE streams a SELECT over Server-Sent Events: one `binding` event
// per solution (the W3C binding-object shape NDJSON uses), then a
// terminal `summary` event with the per-dataset outcomes — or an `error`
// event when the fan-out aborted. Closing the EventSource cancels the
// upstream sub-queries.
func serveSSE(w http.ResponseWriter, res *Result, explain string) {
	qs := res.Bindings()
	sse := newSSEWriter(w)
	var streamErr error
	for sol, err := range qs.Solutions() {
		if err != nil {
			streamErr = err
			break
		}
		line, err := srjson.Binding(qs.Vars(), sol)
		if err != nil {
			streamErr = err
			break
		}
		if err := sse.event("binding", json.RawMessage(line)); err != nil {
			return // client gone; the deferred Close cancels upstream
		}
	}
	fr, sumErr := qs.Summary()
	if streamErr == nil {
		streamErr = sumErr
	}
	if streamErr != nil {
		_ = sse.event("error", map[string]string{"error": streamErr.Error()})
	} else {
		writeSSESummary(sse, fr, nil)
	}
	if member, payload := explainPayload(res, explain); member != "" {
		_ = sse.event(member, payload)
	}
}

// uiTemplate is the Figure-4 stand-in: source query on top, data set
// selector, translated query below.
var uiTemplate = template.Must(template.New("ui").Parse(`<!DOCTYPE html>
<html>
<head><title>SPARQL Query Rewriter</title>
<style>
 body { font-family: sans-serif; margin: 2em; max-width: 60em; }
 textarea { width: 100%; font-family: monospace; }
 select, button { margin: 0.5em 0; }
</style></head>
<body>
<h1>SPARQL Query Rewriter</h1>
<p>Write a source query, pick the target data set, and translate
   (Correndo et al., EDBT 2010).</p>
<textarea id="src" rows="10">PREFIX akt:&lt;http://www.aktors.org/ontology/portal#&gt;
SELECT DISTINCT ?a WHERE {
  ?paper akt:has-author &lt;http://southampton.rkbexplorer.com/id/person-00001&gt; .
  ?paper akt:has-author ?a .
}</textarea><br>
<select id="target">
{{range .}}<option value="{{.URI}}">{{.Title}} ({{.URI}})</option>
{{end}}</select>
<button onclick="rewrite()">Translate</button>
<button onclick="runQuery()">Translate &amp; Run</button>
<h2>Translated query / results</h2>
<textarea id="dst" rows="14" readonly></textarea>
<script>
async function rewrite() {
  const res = await fetch('/api/rewrite', {method: 'POST',
    body: JSON.stringify({query: document.getElementById('src').value,
                          target: document.getElementById('target').value})});
  const text = await res.text();
  try {
    const data = JSON.parse(text);
    document.getElementById('dst').value = data.query +
      (data.warnings ? '\n# warnings:\n# ' + data.warnings.join('\n# ') : '');
  } catch (e) { document.getElementById('dst').value = text; }
}
async function runQuery() {
  const params = new URLSearchParams();
  params.set('query', document.getElementById('src').value);
  params.append('target', document.getElementById('target').value);
  const res = await fetch('/sparql', {method: 'POST',
    headers: {'Content-Type': 'application/x-www-form-urlencoded'},
    body: params.toString()});
  document.getElementById('dst').value = await res.text();
}
</script>
</body></html>`))
