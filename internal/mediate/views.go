package mediate

import (
	"context"
	"fmt"
	"io"

	"sparqlrw/internal/decompose"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/view"
)

// This file is the mediator side of the materialized-view tier: the
// Runner the view manager materializes through, the answer hook that
// serves a covered SELECT from a view's embedded store, and the observe
// hook that feeds the shape miner from the decomposed-query stream.

// ctxNoViews marks a context whose queries must bypass the view tier —
// set on view materialization queries so a view is never built from
// another view (no recursion, no self-mining).
type ctxNoViews struct{}

func withoutViews(ctx context.Context) context.Context {
	return context.WithValue(ctx, ctxNoViews{}, true)
}

func viewsDisabled(ctx context.Context) bool {
	on, _ := ctx.Value(ctxNoViews{}).(bool)
	return on
}

// viewRunner adapts the mediator's federated pipeline to view.Runner.
type viewRunner struct{ m *Mediator }

// Materialize runs the view's covering query through the full federated
// pipeline (planning, decomposition, bound joins, sameAs merge) and
// drains it. Complete is true only when every contributing data set
// answered successfully — the storable rule the result cache uses.
func (r viewRunner) Materialize(ctx context.Context, queryText, sourceOnt string) (*view.MaterializeResult, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("mediate: parsing view query: %w", err)
	}
	req := QueryRequest{Query: queryText, SourceOnt: sourceOnt}
	qs, err := r.m.selectStream(withoutViews(ctx), req, q)
	if err != nil {
		return nil, err
	}
	defer qs.Close()
	res := &view.MaterializeResult{Vars: qs.Vars()}
	for {
		sol, err := qs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		res.Solutions = append(res.Solutions, sol)
	}
	sum, err := qs.Summary()
	if err != nil {
		return nil, err
	}
	res.Complete = storable(sum)
	return res, nil
}

// Canonicalise maps the patterns' ground IRIs to their owl:sameAs
// representatives — the refresh loop re-keys views with it when the
// sameAs closure may have moved.
func (r viewRunner) Canonicalise(patterns []rdf.Triple) []rdf.Triple {
	canon := newCorefCanon(r.m.Coref)
	out := make([]rdf.Triple, len(patterns))
	for i, t := range patterns {
		out[i] = canon.triple(t)
	}
	return out
}

// viewAnswer serves the query from a covering materialized view, when
// one is ready. It returns ok=false — and the caller proceeds to the
// federated path — on a miss, a stale view, or a local-stream failure.
func (m *Mediator) viewAnswer(ctx context.Context, req QueryRequest, q *sparql.Query) (*QueryStream, bool) {
	canon := newCorefCanon(m.Coref)
	v, ok := m.Views.Answer(q, canon.term)
	if !ok {
		return nil, false
	}
	// The view store holds canonical representatives, so the query's
	// ground IRIs — in its patterns and in its FILTER constants — must be
	// canonicalised the same way before local evaluation.
	cq := q.Clone()
	canonicaliseGroup(cq.Where, canon)
	for _, el := range cq.Where.Elements {
		if f, isFilter := el.(*sparql.Filter); isFilter {
			f.Expr = sparql.MapExprTerms(f.Expr, canon.term)
		}
	}
	_, span := obs.StartSpan(ctx, "view")
	span.SetAttr("view", v.ID())
	span.SetAttr("endpoint", v.Endpoint())
	st, err := m.Client.SelectStreamContext(ctx, v.Endpoint(), sparql.Format(cq))
	if err != nil {
		// The query falls back to federation, so for the metrics the
		// paper's experiment reads this is a miss, not a hit.
		m.Views.CountMiss()
		span.SetAttr("error", err.Error())
		span.End()
		return nil, false
	}
	m.Views.CountHit(v)
	span.End()
	return &QueryStream{
		limit: req.Limit,
		src:   &viewSource{st: st, view: v},
	}, true
}

// observeViews feeds one decomposed multi-source query to the shape
// miner. It runs on the same path that just executed the query, so the
// decomposition's data sets and calibrated cardinality estimates are in
// hand for free; the largest fragment estimate bounds the join size the
// miner screens against MaxTriples.
func (m *Mediator) observeViews(q *sparql.Query, sourceOnt string, dcm *decompose.Decomposition) {
	var est int64
	for _, f := range dcm.Fragments {
		if f.EstCard > est {
			est = f.EstCard
		}
	}
	canon := newCorefCanon(m.Coref)
	m.Views.Observe(q, sourceOnt, dcm.Datasets(), est, canon.term)
}

// viewSource adapts a view endpoint's solution stream to the
// solutionSource shape. Its Summary lists the view pseudo-dataset first
// and the view's source data sets after it — all with zero Attempts
// (nothing was dispatched over the federation), but present so the
// result cache's invalidate-by-dataset still covers entries filled from
// a view.
type viewSource struct {
	st   *endpoint.SelectStream
	view *view.View
	n    int
}

func (s *viewSource) Vars() []string { return s.st.Vars() }

func (s *viewSource) Next() (eval.Solution, error) {
	sol, err := s.st.Next()
	if err == nil {
		s.n++
	}
	return sol, err
}

func (s *viewSource) Close() error { return s.st.Close() }

func (s *viewSource) Summary() (*federate.Result, error) {
	per := []federate.DatasetAnswer{{Dataset: "view:" + s.view.ID(), Solutions: s.n}}
	for _, ds := range s.view.Datasets() {
		per = append(per, federate.DatasetAnswer{Dataset: ds})
	}
	return &federate.Result{Vars: s.st.Vars(), PerDataset: per}, nil
}
