package mediate

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/decompose"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/store"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// recordingServer wraps a SPARQL endpoint, recording every query text it
// receives so tests can assert what each repository was actually asked.
func recordingServer(t *testing.T, name string, st *store.Store) (*httptest.Server, func() []string) {
	t.Helper()
	var mu sync.Mutex
	var queries []string
	h := endpoint.NewServer(name, st)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// ParseForm caches the form on the request, so the inner handler
		// still sees the query.
		if err := r.ParseForm(); err == nil {
			mu.Lock()
			queries = append(queries, r.PostForm.Get("query"))
			mu.Unlock()
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), queries...)
	}
}

// crossVocabStack wires the acceptance fixture: four endpoints where the
// AKT data (Southampton) and the citation metrics live in different
// vocabularies with no alignment between them — no single repository can
// answer a query spanning both, so Mediator.Query must decompose.
type crossVocabStack struct {
	u        *workload.Universe
	mediator *Mediator
	queries  map[string]func() []string
}

func newCrossVocabStack(t *testing.T) *crossVocabStack {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 30, 90
	u := workload.Generate(cfg)

	s := &crossVocabStack{u: u, queries: map[string]func() []string{}}
	soton, sotonQ := recordingServer(t, "southampton", u.Southampton)
	s.queries[workload.SotonVoidURI] = sotonQ
	metrics, metricsQ := recordingServer(t, "metrics", workload.MetricsStore(u))
	s.queries[workload.MetricsVoidURI] = metricsQ
	dbp, dbpQ := recordingServer(t, "dbpedia", store.New())
	s.queries[workload.DBPVoidURI] = dbpQ
	ecs, ecsQ := recordingServer(t, "ecs", store.New())
	s.queries[workload.ECSVoidURI] = ecsQ

	dsKB := voidkb.NewKB()
	for _, d := range []*voidkb.Dataset{
		{URI: workload.SotonVoidURI, Title: "Southampton RKB", SPARQLEndpoint: soton.URL,
			URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS},
			Triples:            1000,
			PropertyPartitions: map[string]int64{rdf.AKTHasAuthor: 400}},
		{URI: workload.MetricsVoidURI, Title: "Citation metrics", SPARQLEndpoint: metrics.URL,
			URISpace: workload.SotonURIPattern, Vocabularies: []string{workload.MetricsNS},
			Triples:            180,
			PropertyPartitions: map[string]int64{workload.MetricsCitationCount: 90}},
		{URI: workload.DBPVoidURI, Title: "DBpedia", SPARQLEndpoint: dbp.URL,
			URISpace: workload.DBPURIPattern, Vocabularies: []string{rdf.DBONS}},
		{URI: workload.ECSVoidURI, Title: "ECS", SPARQLEndpoint: ecs.URL,
			URISpace: workload.ECSURIPattern, Vocabularies: []string{rdf.ECSNS}},
	} {
		if err := dsKB.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	// Only the (irrelevant) ECS→DBpedia alignment is registered: nothing
	// reaches the metrics vocabulary, so decomposition is the only path.
	alignKB := align.NewKB()
	if err := alignKB.Add(workload.ECS2DBpedia()); err != nil {
		t.Fatal(err)
	}
	m := New(dsKB, alignKB, nil)
	t.Cleanup(m.Close)
	s.mediator = m
	return s
}

// groundTruth joins both data sets locally.
func (s *crossVocabStack) groundTruth(t *testing.T, query string) []eval.Solution {
	t.Helper()
	merged := s.u.Southampton.Clone()
	merged.AddGraph(workload.MetricsStore(s.u).Triples())
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.New(merged).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	eval.SortSolutions(res.Solutions)
	return res.Solutions
}

// TestQueryDecomposesAcrossVocabularies is the tentpole's acceptance
// test: a BGP whose patterns are answerable only by different
// repositories returns the correct joined result through Mediator.Query,
// without any endpoint ever receiving the full pattern.
func TestQueryDecomposesAcrossVocabularies(t *testing.T) {
	s := newCrossVocabStack(t)
	query := workload.CrossVocabularyQuery(2)

	res, err := s.mediator.Query(context.Background(), QueryRequest{Query: query, SourceOnt: rdf.AKTNS})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	qs := res.Bindings()
	if qs.Plan() == nil {
		t.Fatal("decomposed query carries no plan")
	}
	dcm := qs.Decomposition()
	if dcm == nil || !dcm.MultiSource || len(dcm.Fragments) != 2 {
		t.Fatalf("decomposition = %+v", dcm)
	}
	var got []eval.Solution
	for sol, err := range qs.Solutions() {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, sol)
	}
	eval.SortSolutions(got)
	want := s.groundTruth(t, query)
	if len(want) == 0 {
		t.Fatal("fixture ground truth is empty; pick another person index")
	}
	if len(got) != len(want) {
		t.Fatalf("decomposed join = %d solutions, local join = %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("solution %d: got %v, want %v", i, got[i], want[i])
		}
	}
	sum, err := qs.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Partial {
		t.Fatalf("clean decomposed run marked partial: %+v", sum.PerDataset)
	}

	// No endpoint saw the full pattern: Southampton never received the
	// metrics predicate, metrics never received an AKT predicate, and the
	// irrelevant endpoints received nothing.
	for _, q := range s.queries[workload.SotonVoidURI]() {
		if strings.Contains(q, workload.MetricsCitationCount) {
			t.Fatalf("southampton received the metrics pattern:\n%s", q)
		}
	}
	mQs := s.queries[workload.MetricsVoidURI]()
	if len(mQs) == 0 {
		t.Fatal("metrics endpoint never queried")
	}
	for _, q := range mQs {
		if strings.Contains(q, rdf.AKTHasAuthor) {
			t.Fatalf("metrics received the AKT pattern:\n%s", q)
		}
		if !strings.Contains(q, "VALUES") {
			t.Fatalf("metrics sub-query not bound:\n%s", q)
		}
	}
	if n := len(s.queries[workload.DBPVoidURI]()); n != 0 {
		t.Fatalf("pruned endpoint received %d queries", n)
	}

	// The buffered Collect convenience takes the same path.
	fr, err := federatedSelect(s.mediator, query, rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Solutions) != len(want) {
		t.Fatalf("collected = %d solutions, want %d", len(fr.Solutions), len(want))
	}

	st := s.mediator.Stats().Decompose
	if st == nil || st.Decompositions == 0 || st.Engine.Runs == 0 || st.Engine.BoundJoinStages == 0 {
		t.Fatalf("decompose stats not recorded: %+v", st)
	}
}

// TestAPIQueryDecomposedExplain: /api/plan surfaces the decomposition
// (groups, cardinalities, join order), /sparql executes it, and
// /api/stats carries the decompose counters.
func TestAPIQueryDecomposedExplain(t *testing.T) {
	s := newCrossVocabStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	query := workload.CrossVocabularyQuery(3)

	// /api/plan explains without executing.
	body, _ := json.Marshal(planRequest{Query: query, Source: rdf.AKTNS})
	resp, err := http.Post(srv.URL+"/api/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		Decisions     []json.RawMessage        `json:"decisions"`
		SubRequests   []json.RawMessage        `json:"subRequests"`
		Decomposition *decompose.Decomposition `json:"decomposition"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ex.Decisions) != 4 || len(ex.SubRequests) != 0 {
		t.Fatalf("plan = %+v", ex)
	}
	if ex.Decomposition == nil || len(ex.Decomposition.Fragments) != 2 {
		t.Fatalf("decomposition missing from /api/plan: %+v", ex.Decomposition)
	}
	for _, f := range ex.Decomposition.Fragments {
		if f.EstCard <= 0 || len(f.Patterns) == 0 || len(f.Targets) == 0 {
			t.Fatalf("fragment not explained: %+v", f)
		}
	}
	if jv := ex.Decomposition.Fragments[1].JoinVars; len(jv) != 1 || jv[0] != "paper" {
		t.Fatalf("join order not explained: %+v", ex.Decomposition.Fragments[1])
	}

	// /sparql executes the decomposed query end to end.
	form := url.Values{"query": {query}, "source": {rdf.AKTNS}}
	resp, err = http.PostForm(srv.URL+"/sparql", form)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sres, _, err := srjson.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Solutions) == 0 {
		t.Fatal("no rows over the decomposed HTTP path")
	}

	// /api/stats exposes the decompose counters.
	sresp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Decompose == nil || st.Decompose.Decompositions == 0 || st.Decompose.Engine.Runs == 0 {
		t.Fatalf("decompose stats = %+v", st.Decompose)
	}
}

// TestAPIQueryNDJSON: Accept: application/x-ndjson streams one binding
// object per line, on both the single-source and the decomposed path.
func TestAPIQueryNDJSON(t *testing.T) {
	s := newCrossVocabStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	for name, query := range map[string]string{
		"single-source": workload.Figure1Query(2),
		"decomposed":    workload.CrossVocabularyQuery(2),
	} {
		form := url.Values{"query": {query}, "source": {rdf.AKTNS}}
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/sparql",
			strings.NewReader(form.Encode()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Accept", "application/x-ndjson")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("%s: Content-Type = %q", name, ct)
		}
		rows := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var binding map[string]struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			}
			if err := json.Unmarshal(line, &binding); err != nil {
				t.Fatalf("%s: line %d not a binding object: %v\n%s", name, rows, err, line)
			}
			for v, term := range binding {
				if term.Type == "" || term.Value == "" {
					t.Fatalf("%s: malformed term for ?%s: %s", name, v, line)
				}
			}
			rows++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if rows == 0 {
			t.Fatalf("%s: no NDJSON rows", name)
		}
	}
}

// TestQueryDecomposeDisabled: with the decomposer off, a multi-source
// query falls back to the old no-relevant-data-set error.
func TestQueryDecomposeDisabled(t *testing.T) {
	s := newCrossVocabStack(t)
	s.mediator.Decomposer = nil
	_, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.CrossVocabularyQuery(1), SourceOnt: rdf.AKTNS,
	})
	if err == nil || !strings.Contains(err.Error(), "relevant") {
		t.Fatalf("err = %v, want no-relevant-data-set error", err)
	}
}
