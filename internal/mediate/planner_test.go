package mediate

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/store"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// countingServer wraps a SPARQL endpoint and counts requests, so tests
// can assert which endpoints the planner actually dispatched to.
func countingServer(t *testing.T, name string, st *store.Store) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	h := endpoint.NewServer(name, st)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// plannedStack builds a mediator over four endpoints of which only two
// (Southampton, KISTI) are voiD-relevant to the Figure-1 workload: the
// DBpedia and ECS stand-ins speak unreachable vocabularies.
func plannedStack(t *testing.T) (*testStack, map[string]*atomic.Int64) {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)

	hits := map[string]*atomic.Int64{}
	soton, sotonHits := countingServer(t, "southampton", u.Southampton)
	hits[workload.SotonVoidURI] = sotonHits
	kisti, kistiHits := countingServer(t, "kisti", u.KISTI)
	hits[workload.KistiVoidURI] = kistiHits
	dbp, dbpHits := countingServer(t, "dbpedia", store.New())
	hits[workload.DBPVoidURI] = dbpHits
	ecs, ecsHits := countingServer(t, "ecs", store.New())
	hits[workload.ECSVoidURI] = ecsHits

	dsKB := voidkb.NewKB()
	for _, d := range []*voidkb.Dataset{
		{URI: workload.SotonVoidURI, Title: "Southampton RKB", SPARQLEndpoint: soton.URL,
			URISpace: workload.SotonURIPattern, Vocabularies: []string{rdf.AKTNS}},
		{URI: workload.KistiVoidURI, Title: "KISTI", SPARQLEndpoint: kisti.URL,
			URISpace: workload.KistiURIPattern, Vocabularies: []string{rdf.KISTINS}},
		{URI: workload.DBPVoidURI, Title: "DBpedia", SPARQLEndpoint: dbp.URL,
			URISpace: workload.DBPURIPattern, Vocabularies: []string{rdf.DBONS}},
		{URI: workload.ECSVoidURI, Title: "ECS", SPARQLEndpoint: ecs.URL,
			URISpace: workload.ECSURIPattern, Vocabularies: []string{rdf.ECSNS}},
	} {
		if err := dsKB.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	alignKB := align.NewKB()
	if err := alignKB.Add(workload.AKT2KISTI()); err != nil {
		t.Fatal(err)
	}
	if err := alignKB.Add(workload.ECS2DBpedia()); err != nil {
		t.Fatal(err)
	}
	m := New(dsKB, alignKB, u.Coref, WithRewriteFilters(true))
	return &testStack{u: u, mediator: m}, hits
}

// TestPlannedFederationDispatchesOnlyRelevant pins the acceptance
// criterion: with four endpoints of which two are voiD-relevant, a
// federated query with no explicit targets reaches exactly those two.
func TestPlannedFederationDispatchesOnlyRelevant(t *testing.T) {
	s, hits := plannedStack(t)
	fr, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.PerDataset) != 2 {
		t.Fatalf("per-dataset answers = %+v, want soton+kisti only", fr.PerDataset)
	}
	seen := map[string]bool{}
	for _, da := range fr.PerDataset {
		if da.Err != nil {
			t.Fatalf("dataset %s failed: %v", da.Dataset, da.Err)
		}
		seen[da.Dataset] = true
	}
	if !seen[workload.SotonVoidURI] || !seen[workload.KistiVoidURI] {
		t.Fatalf("wrong datasets dispatched: %+v", fr.PerDataset)
	}
	if hits[workload.DBPVoidURI].Load() != 0 || hits[workload.ECSVoidURI].Load() != 0 {
		t.Fatal("pruned endpoints received requests")
	}
	if hits[workload.SotonVoidURI].Load() == 0 || hits[workload.KistiVoidURI].Load() == 0 {
		t.Fatal("relevant endpoints not dispatched")
	}
	if len(fr.Solutions) == 0 {
		t.Fatal("planned federation returned no answers")
	}
}

// TestPlannedMatchesExplicitTargets: auto-selection returns the same
// merged result as naming the two relevant repositories by hand.
func TestPlannedMatchesExplicitTargets(t *testing.T) {
	s, _ := plannedStack(t)
	q := workload.Figure1Query(1)
	planned, err := federatedSelect(s.mediator, q, rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := federatedSelect(s.mediator, q, rdf.AKTNS,
		[]string{workload.SotonVoidURI, workload.KistiVoidURI})
	if err != nil {
		t.Fatal(err)
	}
	if len(planned.Solutions) != len(explicit.Solutions) {
		t.Fatalf("planned = %d solutions, explicit = %d",
			len(planned.Solutions), len(explicit.Solutions))
	}
}

func TestPlannedNoRelevantDatasets(t *testing.T) {
	s, _ := plannedStack(t)
	// A FOAF query reaches no registered data set.
	_, err := federatedSelect(s.mediator,
		`SELECT ?n WHERE { ?x <http://xmlns.com/foaf/0.1/name> ?n }`,
		rdf.FOAFNS, nil)
	if err == nil || !strings.Contains(err.Error(), "relevant") {
		t.Fatalf("err = %v, want no-relevant-data-set error", err)
	}
}

// TestValuesShardedFederation: a VALUES-seeded query shards per the
// configured batch size and the shard answers recombine to the full set.
func TestValuesShardedFederation(t *testing.T) {
	s, _ := plannedStack(t)
	s.mediator.Configure(WithPlanner(plan.Options{ValuesBatch: 2}))

	var sb strings.Builder
	sb.WriteString("PREFIX akt:<" + rdf.AKTNS + ">\nSELECT ?a WHERE {\n  VALUES ?paper {")
	for i := 0; i < 6; i++ {
		sb.WriteString(" <" + workload.SotonPaper(i).Value + ">")
	}
	sb.WriteString(" }\n  ?paper akt:has-author ?a .\n}")
	q := sb.String()

	sharded, err := federatedSelect(s.mediator, q, rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3 shards × 2 relevant datasets.
	if len(sharded.PerDataset) != 6 {
		t.Fatalf("sub-requests = %d, want 6: %+v", len(sharded.PerDataset), sharded.PerDataset)
	}
	for _, da := range sharded.PerDataset {
		if da.Err != nil {
			t.Fatalf("shard %d/%d of %s failed: %v", da.Shard, da.Shards, da.Dataset, da.Err)
		}
		if da.Shards != 3 {
			t.Fatalf("shard count = %d, want 3", da.Shards)
		}
	}
	s.mediator.Configure(WithPlanner(plan.Options{ValuesBatch: -1}))
	unsharded, err := federatedSelect(s.mediator, q, rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.Solutions) != len(unsharded.Solutions) {
		t.Fatalf("sharded = %d solutions, unsharded = %d",
			len(sharded.Solutions), len(unsharded.Solutions))
	}
}

// TestPlanCacheInvalidationHooks pins the KB-change hooks: adding an
// alignment flushes the rewrite-plan cache; re-registering a data set
// drops only its plans.
func TestPlanCacheInvalidationHooks(t *testing.T) {
	s := newStack(t)
	q := workload.Figure1Query(0)
	targets := []string{workload.SotonVoidURI, workload.KistiVoidURI}
	run := func() {
		t.Helper()
		if _, err := federatedSelect(s.mediator, q, rdf.AKTNS, targets); err != nil {
			t.Fatal(err)
		}
	}
	run()
	run()
	st := s.mediator.Stats().Federation
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("warm-up cache hits/misses = %d/%d", st.CacheHits, st.CacheMisses)
	}

	// Alignment KB change → full flush → next run re-rewrites.
	if err := s.mediator.Alignments.Add(workload.ECS2DBpedia()); err != nil {
		t.Fatal(err)
	}
	if n := s.mediator.Stats().Federation.CacheEntries; n != 0 {
		t.Fatalf("cache entries after alignment change = %d, want 0", n)
	}
	run()
	if st := s.mediator.Stats().Federation; st.CacheMisses != 2 {
		t.Fatalf("cache misses after alignment flush = %d, want 2", st.CacheMisses)
	}

	// voiD entry change → that data set's plan drops.
	kisti, _ := s.mediator.Datasets.Get(workload.KistiVoidURI)
	if err := s.mediator.Datasets.Add(&voidkb.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI v2",
		SPARQLEndpoint: kisti.SPARQLEndpoint,
		URISpace:       kisti.URISpace,
		Vocabularies:   kisti.Vocabularies,
	}); err != nil {
		t.Fatal(err)
	}
	if n := s.mediator.Stats().Federation.CacheEntries; n != 0 {
		t.Fatalf("cache entries after voiD change = %d, want 0", n)
	}
	run()
	if st := s.mediator.Stats().Federation; st.CacheMisses != 3 {
		t.Fatalf("cache misses after voiD invalidation = %d, want 3", st.CacheMisses)
	}
}

func TestHTTPSparqlWithoutTargets(t *testing.T) {
	s, hits := plannedStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	// The protocol endpoint with no target parameters goes through the
	// planner; GET is the canonical protocol shape.
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(workload.Figure1Query(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	res, _, err := srjson.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no planned rows over /sparql")
	}
	if hits[workload.DBPVoidURI].Load() != 0 {
		t.Fatal("pruned endpoint was queried")
	}
	if hits[workload.SotonVoidURI].Load() == 0 || hits[workload.KistiVoidURI].Load() == 0 {
		t.Fatal("relevant endpoints not dispatched")
	}
}

func TestHTTPAPIPlanExplain(t *testing.T) {
	s, _ := plannedStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	body, _ := json.Marshal(planRequest{Query: workload.Figure1Query(0)})
	resp, err := http.Post(srv.URL+"/api/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var pl plan.Plan
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		t.Fatal(err)
	}
	if len(pl.Decisions) != 4 || len(pl.Subs) != 2 {
		t.Fatalf("plan = %+v", pl)
	}
	relevant := 0
	for _, dec := range pl.Decisions {
		if dec.Relevant {
			relevant++
		}
		if len(dec.Reasons) == 0 {
			t.Fatalf("decision without reasons: %+v", dec)
		}
	}
	if relevant != 2 {
		t.Fatalf("relevant = %d, want 2", relevant)
	}
	// GET is rejected.
	getResp, _ := http.Get(srv.URL + "/api/plan")
	if getResp.StatusCode != 405 {
		t.Fatalf("GET status = %d", getResp.StatusCode)
	}
	getResp.Body.Close()
}

func TestHTTPAPIStatsIncludesPlanner(t *testing.T) {
	s, _ := plannedStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	if _, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Planner == nil || st.Planner.Plans != 1 || st.Planner.DatasetsPruned != 2 {
		t.Fatalf("planner stats = %+v", st.Planner)
	}
	if len(st.Federation.Endpoints) != 2 {
		t.Fatalf("endpoint stats = %+v", st.Federation.Endpoints)
	}
}
