package mediate

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"sparqlrw/internal/obs"
)

// EXPLAIN ANALYZE: the executed query's operator tree annotated with
// estimated vs actual cardinalities and per-operator q-error. The
// pipeline stages record typed operator attributes on their trace spans
// (obs.OperatorStats); this file projects a finished trace's span tree
// onto just those operator spans — the shape `explain=analyze` ships in
// the response trailer and GET /api/analyze/{traceId} renders for
// humans.

// AnalyzeNode is one operator in the EXPLAIN ANALYZE tree. Pointer
// fields distinguish "not recorded" (omitted) from a real zero (an
// operator that produced nothing).
type AnalyzeNode struct {
	// Op is the operator kind: "source-selection", "decompose",
	// "fragment", "bound-join", "hash-join", "filter", "distinct-limit",
	// or "subquery" for one endpoint dispatch.
	Op string `json:"op"`
	// Stage is the operator's position in the decomposition pipeline.
	Stage *int64 `json:"stage,omitempty"`
	// StartMS/DurationMS locate the operator on the query's timeline.
	StartMS    float64 `json:"startMs"`
	DurationMS float64 `json:"durationMs"`
	// RowsIn/RowsOut count solutions entering/leaving the operator.
	RowsIn  *int64 `json:"rowsIn,omitempty"`
	RowsOut *int64 `json:"rowsOut,omitempty"`
	// Solutions counts endpoint solutions fetched; Bytes counts response
	// bytes transferred.
	Solutions *int64 `json:"solutions,omitempty"`
	Bytes     *int64 `json:"bytes,omitempty"`
	// EstimatedRows vs ActualRows is the planner's estimate against the
	// observed cardinality; QError is max(est/actual, actual/est).
	EstimatedRows *int64   `json:"estimatedRows,omitempty"`
	ActualRows    *int64   `json:"actualRows,omitempty"`
	QError        *float64 `json:"qError,omitempty"`
	// FirstRowMS is the latency to the operator's first output row.
	FirstRowMS *float64 `json:"firstRowMs,omitempty"`
	// Children are operators nested under this one (a bound join's
	// VALUES-shard dispatches, for example).
	Children []*AnalyzeNode `json:"children,omitempty"`
}

// Analyze is the EXPLAIN ANALYZE document for one executed query.
type Analyze struct {
	TraceID string `json:"traceId"`
	// Query is the executed query text — stored once on the trace root,
	// never per operator span.
	Query      string         `json:"query,omitempty"`
	DurationMS float64        `json:"durationMs"`
	Operators  []*AnalyzeNode `json:"operators"`
}

// buildAnalyze projects a trace view onto its operator tree: spans
// carrying an "op" attribute become nodes; spans without one are
// transparent (their operator descendants attach to the nearest
// operator ancestor, or to the root list).
func buildAnalyze(v obs.TraceJSON) *Analyze {
	a := &Analyze{TraceID: v.ID, DurationMS: v.DurationMS}
	if q, ok := v.Root.Attrs["query"].(string); ok {
		a.Query = q
	}
	a.Operators = collectOperators(v.Root)
	sortNodes(a.Operators)
	return a
}

func collectOperators(s obs.SpanJSON) []*AnalyzeNode {
	if op, ok := s.Attrs["op"].(string); ok && op != "" {
		n := &AnalyzeNode{
			Op:            op,
			Stage:         attrInt(s.Attrs, "stage"),
			StartMS:       s.StartMS,
			DurationMS:    s.DurationMS,
			RowsIn:        attrInt(s.Attrs, "rowsIn"),
			RowsOut:       attrInt(s.Attrs, "rowsOut"),
			Solutions:     attrInt(s.Attrs, "solutions"),
			Bytes:         attrInt(s.Attrs, "bytes"),
			EstimatedRows: attrInt(s.Attrs, "estRows"),
			ActualRows:    attrInt(s.Attrs, "actualRows"),
			QError:        attrFloat(s.Attrs, "qError"),
			FirstRowMS:    attrFloat(s.Attrs, "firstRowMs"),
		}
		for _, c := range s.Children {
			n.Children = append(n.Children, collectOperators(c)...)
		}
		sortNodes(n.Children)
		return []*AnalyzeNode{n}
	}
	var out []*AnalyzeNode
	for _, c := range s.Children {
		out = append(out, collectOperators(c)...)
	}
	return out
}

// sortNodes orders sibling operators by start time: spans are appended
// in creation order, but the lazily-evaluated pipeline opens the final
// stage's span before the fragments it consumes start producing.
func sortNodes(ns []*AnalyzeNode) {
	sort.SliceStable(ns, func(i, j int) bool {
		si, sj := int64(-1), int64(-1)
		if ns[i].Stage != nil {
			si = *ns[i].Stage
		}
		if ns[j].Stage != nil {
			sj = *ns[j].Stage
		}
		if si != sj {
			return si < sj
		}
		return ns[i].StartMS < ns[j].StartMS
	})
}

// attrInt reads one numeric attr as int64, handling every numeric type
// the spans record in-process (int, int64) and the float64 a JSON
// round-trip produces.
func attrInt(attrs map[string]any, key string) *int64 {
	switch v := attrs[key].(type) {
	case int64:
		return &v
	case int:
		n := int64(v)
		return &n
	case float64:
		n := int64(v)
		return &n
	}
	return nil
}

func attrFloat(attrs map[string]any, key string) *float64 {
	switch v := attrs[key].(type) {
	case float64:
		return &v
	case int64:
		f := float64(v)
		return &f
	case int:
		f := float64(v)
		return &f
	}
	return nil
}

// explainAnalyze finishes the query's trace (execution is done once the
// stream drains; serialisation time is not part of the query) and
// returns the marshalled EXPLAIN ANALYZE document for the
// explain=analyze trailer.
func explainAnalyze(res *Result) json.RawMessage {
	t := res.Trace()
	if t == nil {
		return nil
	}
	t.Finish()
	data, err := json.Marshal(buildAnalyze(t.View()))
	if err != nil {
		data, _ = json.Marshal(map[string]string{"error": err.Error()})
	}
	return data
}

// Text renders the analyze document as an indented operator table:
//
//	op                 stage      est   actual   q-err  rows-out     time
//	fragment               0     1234       56    22.0        56    4.5ms
func (a *Analyze) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE  trace=%s  total=%.3fms\n", a.TraceID, a.DurationMS)
	if a.Query != "" {
		for _, line := range strings.Split(strings.TrimSpace(a.Query), "\n") {
			b.WriteString("  | " + line + "\n")
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-32s %5s %10s %10s %8s %10s %12s\n",
		"operator", "stage", "est", "actual", "q-err", "rows-out", "time")
	var walk func(ns []*AnalyzeNode, depth int)
	walk = func(ns []*AnalyzeNode, depth int) {
		for _, n := range ns {
			name := strings.Repeat("  ", depth) + n.Op
			fmt.Fprintf(&b, "%-32s %5s %10s %10s %8s %10s %11.3fms\n",
				name, fmtInt(n.Stage), fmtInt(n.EstimatedRows), fmtInt(n.ActualRows),
				fmtQ(n.QError), fmtInt(n.RowsOut), n.DurationMS)
			walk(n.Children, depth+1)
		}
	}
	walk(a.Operators, 0)
	return b.String()
}

func fmtInt(v *int64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%d", *v)
}

func fmtQ(v *float64) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.1f", *v)
}
