package mediate

import (
	"sparqlrw/internal/decompose"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/view"
)

// Config is the mediator's consolidated configuration: one struct holding
// the per-layer option blocks that used to be scattered across three
// per-subsystem configure methods. Build one with functional options
// (WithFederation, WithPlanner, ...) via New or Configure; read the
// active configuration back with Mediator.Config.
type Config struct {
	// Federation tunes the executor: worker-pool bound, per-endpoint
	// deadlines/retries, circuit breakers, rewrite-plan cache, policy.
	Federation federate.Options
	// Planner tunes voiD-driven source selection, VALUES sharding and
	// adaptive ordering (ignored when DisablePlanner).
	Planner plan.Options
	// Decompose tunes per-BGP decomposition and the streaming join engine
	// (ignored when DisableDecomposer or DisablePlanner).
	Decompose decompose.Options
	// DisablePlanner turns target auto-selection off: queries must name
	// explicit targets. It implies DisableDecomposer (the decomposer runs
	// the planner's per-pattern source selection).
	DisablePlanner bool
	// DisableDecomposer turns the multi-source path off: queries no single
	// data set covers fail instead of decomposing.
	DisableDecomposer bool
	// RewriteFilters enables the §4 FILTER extension for all rewrites.
	RewriteFilters bool
	// Observability tunes the mediator's metrics registry, trace ring,
	// structured logger and slow-query threshold (zero value: private
	// registry, slog default logger, 1s threshold, 128-trace ring).
	Observability obs.Options
	// Serving enables the production serving tier — multi-tenant
	// admission, the federated result cache and policy-by-rewriting —
	// in front of Query and /sparql. Nil disables the tier entirely
	// (every request runs as before PR 8).
	Serving *serve.Options
	// Views enables the materialized-view tier: frequent decomposed join
	// shapes are materialized (sameAs-canonicalised) into an embedded
	// dictionary-encoded store and later matching queries are answered
	// from it with zero endpoint round trips. Nil disables the tier.
	Views *view.Options
}

// Option mutates a Config; the functional-option input of New and
// Configure.
type Option func(*Config)

// WithFederation replaces the federation executor options.
func WithFederation(opts federate.Options) Option {
	return func(c *Config) { c.Federation = opts }
}

// WithPlanner replaces the planner options and (re-)enables planning.
func WithPlanner(opts plan.Options) Option {
	return func(c *Config) { c.Planner = opts; c.DisablePlanner = false }
}

// WithoutPlanner disables target auto-selection (and with it the
// decomposed multi-source path).
func WithoutPlanner() Option {
	return func(c *Config) { c.DisablePlanner = true }
}

// WithDecomposer replaces the decompose options and (re-)enables the
// multi-source path.
func WithDecomposer(opts decompose.Options) Option {
	return func(c *Config) { c.Decompose = opts; c.DisableDecomposer = false }
}

// WithoutDecomposer disables the multi-source path.
func WithoutDecomposer() Option {
	return func(c *Config) { c.DisableDecomposer = true }
}

// WithRewriteFilters toggles the §4 FILTER-rewriting extension.
func WithRewriteFilters(on bool) Option {
	return func(c *Config) { c.RewriteFilters = on }
}

// WithObservability replaces the observability options (metrics registry,
// logger, slow-query threshold, trace-ring size). Changing them rebuilds
// the observer — and with a new registry, resets the counters.
func WithObservability(opts obs.Options) Option {
	return func(c *Config) { c.Observability = opts }
}

// WithServing enables the serving tier (admission, result cache,
// tenant policy) with the given options.
func WithServing(opts serve.Options) Option {
	return func(c *Config) { c.Serving = &opts }
}

// WithoutServing disables the serving tier.
func WithoutServing() Option {
	return func(c *Config) { c.Serving = nil }
}

// WithViews enables the materialized-view tier (shape mining, embedded
// dictionary-encoded view stores, TTL + invalidation refresh) with the
// given options.
func WithViews(opts view.Options) Option {
	return func(c *Config) { c.Views = &opts }
}

// WithoutViews disables the materialized-view tier.
func WithoutViews() Option {
	return func(c *Config) { c.Views = nil }
}

// Config returns a snapshot of the mediator's active configuration.
func (m *Mediator) Config() Config { return m.cfg }

// Configure applies the options on top of the mediator's current
// configuration and rebuilds the execution stack: the federation executor
// (resetting breakers, counters and the rewrite-plan cache), the planner
// and the decomposer with its join engine. Configuring after changing
// rewrite-relevant state (e.g. RewriteFilters) guarantees no cached plan
// produced under the old settings is served.
func (m *Mediator) Configure(opts ...Option) {
	for _, opt := range opts {
		opt(&m.cfg)
	}
	m.rebuild()
}

// rebuild reconstructs the executor / planner / decomposer stack from the
// current Config, in dependency order: the planner reads the executor's
// endpoint health, and the join engine dispatches through the executor.
// The observer — and with it the metrics registry — survives rebuilds
// (unless WithObservability changed its options), so every layer's
// counters accumulate across reconfiguration; function-backed families
// (plan cache, breaker states) re-bind to the fresh subsystems.
func (m *Mediator) rebuild() {
	if m.Obs == nil || m.obsOpts != m.cfg.Observability {
		old := m.Obs
		m.Obs = obs.NewObserver(m.cfg.Observability)
		m.obsOpts = m.cfg.Observability
		m.metrics = newMediatorMetrics(m.Obs.Registry)
		// Flush the replaced observer's exporter and release its recorder;
		// otherwise every reconfiguration leaks a batching goroutine.
		old.Close()
	}
	m.RewriteFilters = m.cfg.RewriteFilters
	rewrite := func(queryText, sourceOnt, dataset string) (string, error) {
		rr, err := m.Rewrite(queryText, sourceOnt, dataset)
		if err != nil {
			return "", err
		}
		return rr.Query, nil
	}
	fedOpts := m.cfg.Federation
	fedOpts.Registry = m.Obs.Registry
	fedOpts.Health = m.Obs.Health
	m.Exec = federate.NewExecutor(m.Client, rewrite, m.Coref, fedOpts)
	// The health model reads breaker states off the live executor, and
	// lists every configured endpoint even before traffic reaches it.
	m.Obs.Health.BindBreakers(m.Exec.BreakerStates)
	if m.Datasets != nil {
		for _, ds := range m.Datasets.All() {
			if ds.SPARQLEndpoint != "" {
				m.Obs.Health.Ensure(ds.SPARQLEndpoint)
			}
		}
	}
	if m.cfg.Serving == nil {
		m.Serve = nil
	} else {
		// The registry's get-or-create constructors make re-registration
		// on rebuild safe: the function-backed cache families re-bind to
		// the fresh tier, the admission counter vecs accumulate.
		m.Serve = serve.NewTier(*m.cfg.Serving, m.Obs.Registry)
	}
	if m.cfg.DisablePlanner {
		m.Planner = nil
	} else {
		plOpts := m.cfg.Planner
		plOpts.Registry = m.Obs.Registry
		m.Planner = plan.New(m.Datasets, m.Alignments, m.endpointHealth, plOpts)
	}
	if m.cfg.DisableDecomposer || m.Planner == nil {
		m.Decomposer, m.JoinEngine = nil, nil
	} else {
		decOpts := m.cfg.Decompose
		decOpts.Registry = m.Obs.Registry
		decOpts.Cards = m.Obs.Cards
		m.Decomposer = decompose.New(m.Planner, decOpts)
		m.JoinEngine = decompose.NewEngine(m.Exec, m.Funcs.Resolver(), m.Coref, decOpts)
	}
	if m.cfg.Views == nil {
		if m.Views != nil {
			m.Views.Close()
			m.Views = nil
		}
	} else {
		// Inject the shared registry and card store, then rebuild only
		// when the effective options actually changed — the view manager
		// owns background goroutines and local:// endpoint registrations,
		// so gratuitous rebuilds would churn both. A new observer changes
		// the injected pointers, which forces the rebuild it requires.
		vOpts := *m.cfg.Views
		vOpts.Registry = m.Obs.Registry
		vOpts.Cards = m.Obs.Cards
		if m.Views == nil || vOpts != m.viewOpts {
			if m.Views != nil {
				m.Views.Close()
			}
			m.Views = view.NewManager(viewRunner{m}, m.Funcs.Resolver(), vOpts)
			m.viewOpts = vOpts
		}
	}
}
