// Package mediate implements the paper's deployed system (§3.4, Figures 4
// and 5): a three-tier mediator exposing query rewriting and federated
// execution over a voiD data set KB, an alignment KB and a co-reference
// service, with remote execution over the SPARQL protocol and a minimal
// web UI standing in for the paper's GWT front end.
package mediate

import (
	"context"
	"fmt"
	"strings"

	"sparqlrw/internal/align"
	"sparqlrw/internal/core"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/voidkb"
)

// Mediator wires the knowledge bases and services together.
type Mediator struct {
	Datasets   *voidkb.KB
	Alignments *align.KB
	Funcs      *funcs.Registry
	Coref      funcs.CorefSource
	Client     *endpoint.Client
	// Exec owns federated execution: concurrent fan-out, retries,
	// circuit breaking and the rewrite-plan cache. Reconfigure it with
	// ConfigureFederation.
	Exec *federate.Executor
	// RewriteFilters turns on the §4 FILTER extension for all rewrites.
	// Flip it before issuing federated queries, or call
	// ConfigureFederation afterwards so the rewrite-plan cache does not
	// serve plans produced under the old setting.
	RewriteFilters bool
}

// New builds a mediator. corefSrc may be a local coref.Store or a
// coref.Client pointing at a remote service.
func New(datasets *voidkb.KB, alignments *align.KB, corefSrc funcs.CorefSource) *Mediator {
	m := &Mediator{
		Datasets:   datasets,
		Alignments: alignments,
		Funcs:      funcs.StandardRegistry(corefSrc),
		Coref:      corefSrc,
		Client:     endpoint.NewClient(),
	}
	m.ConfigureFederation(federate.Options{})
	return m
}

// ConfigureFederation rebuilds the federation executor with the given
// options (zero-value fields take the federate defaults). It resets the
// executor's breakers, counters and plan cache.
func (m *Mediator) ConfigureFederation(opts federate.Options) {
	rewrite := func(queryText, sourceOnt, dataset string) (string, error) {
		rr, err := m.Rewrite(queryText, sourceOnt, dataset)
		if err != nil {
			return "", err
		}
		return rr.Query, nil
	}
	m.Exec = federate.NewExecutor(m.Client, rewrite, m.Coref, opts)
}

// FederationStats snapshots the executor's per-endpoint and cache
// counters for the /api/stats endpoint.
func (m *Mediator) FederationStats() federate.Stats {
	return m.Exec.Stats()
}

// RewriteResult is the outcome of a single rewrite.
type RewriteResult struct {
	// Query is the rewritten query text.
	Query string
	// Target is the data set the query was rewritten for.
	Target string
	// AlignmentsUsed is how many entity alignments were selected.
	AlignmentsUsed int
	// Report carries the rewriter diagnostics.
	Report *core.Report
}

// Rewrite translates a query written against sourceOnt for the given
// target data set, per the paper's inputs: "the query, the source ontology
// used to formulate the query ... and the target ontology (or data set)".
func (m *Mediator) Rewrite(queryText, sourceOnt, targetDataset string) (*RewriteResult, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("mediate: parsing query: %w", err)
	}
	ds, ok := m.Datasets.Get(targetDataset)
	if !ok {
		return nil, fmt.Errorf("mediate: unknown target data set %s", targetDataset)
	}
	eas := m.Alignments.Select(align.Selector{
		SourceOntology: sourceOnt,
		TargetDataset:  targetDataset,
		TargetOntology: firstOrEmpty(ds.Vocabularies),
	})
	rw := core.New(eas, m.Funcs)
	rw.Opts.RewriteFilters = m.RewriteFilters
	rw.Opts.TargetURISpace = ds.URISpace
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		return nil, fmt.Errorf("mediate: rewriting for %s: %w", targetDataset, err)
	}
	return &RewriteResult{
		Query:          sparql.Format(out),
		Target:         targetDataset,
		AlignmentsUsed: len(eas),
		Report:         report,
	}, nil
}

func firstOrEmpty(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}

// DatasetAnswer is one data set's contribution to a federated query.
type DatasetAnswer = federate.DatasetAnswer

// FederatedResult merges the answers of all targeted data sets.
type FederatedResult = federate.Result

// FederatedSelect runs FederatedSelectContext without a deadline.
func (m *Mediator) FederatedSelect(queryText, sourceOnt string, targets []string) (*FederatedResult, error) {
	return m.FederatedSelectContext(context.Background(), queryText, sourceOnt, targets)
}

// FederatedSelectContext answers the paper's recall scenario: "it is
// important to query all the available repositories in order to increase
// the recall". The query (written against sourceOnt) runs on every named
// data set — rewritten when the data set's vocabulary differs — and
// results are merged with owl:sameAs canonicalisation so redundant URIs
// collapse. Execution is delegated to the federation executor: concurrent
// fan-out with per-endpoint deadlines, retries and circuit breaking, plus
// a rewrite-plan cache (see internal/federate).
func (m *Mediator) FederatedSelectContext(ctx context.Context, queryText, sourceOnt string, targets []string) (*FederatedResult, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("mediate: parsing query: %w", err)
	}
	if q.Form != sparql.Select {
		return nil, fmt.Errorf("mediate: federated execution supports SELECT only")
	}
	req := federate.Request{Query: queryText, SourceOnt: sourceOnt, Vars: q.SelectVars}
	unknown := make(map[int]DatasetAnswer) // input position -> answer
	var knownPos []int
	for i, target := range targets {
		ds, ok := m.Datasets.Get(target)
		if !ok {
			unknown[i] = DatasetAnswer{Dataset: target,
				Err: fmt.Errorf("mediate: unknown data set %s", target)}
			continue
		}
		knownPos = append(knownPos, i)
		req.Targets = append(req.Targets, federate.Target{
			Dataset:      target,
			Endpoint:     ds.SPARQLEndpoint,
			NeedsRewrite: !ds.UsesVocabulary(sourceOnt),
		})
	}
	res, err := m.Exec.Select(ctx, req)
	if res != nil && len(unknown) > 0 {
		// Re-interleave the unknown-dataset answers so PerDataset stays
		// in input-target order.
		merged := make([]DatasetAnswer, len(targets))
		for j, pos := range knownPos {
			merged[pos] = res.PerDataset[j]
		}
		for pos, da := range unknown {
			merged[pos] = da
		}
		res.PerDataset = merged
		for _, da := range res.PerDataset {
			if da.Err == nil {
				res.Partial = true
				break
			}
		}
	}
	return res, err
}

// DatasetInfo summarises one data set for the REST API.
type DatasetInfo struct {
	URI          string   `json:"uri"`
	Title        string   `json:"title"`
	Endpoint     string   `json:"endpoint"`
	URISpace     string   `json:"uriSpace"`
	Vocabularies []string `json:"vocabularies"`
}

// DatasetInfos lists the registered data sets.
func (m *Mediator) DatasetInfos() []DatasetInfo {
	var out []DatasetInfo
	for _, d := range m.Datasets.All() {
		out = append(out, DatasetInfo{
			URI: d.URI, Title: d.Title, Endpoint: d.SPARQLEndpoint,
			URISpace: d.URISpace, Vocabularies: d.Vocabularies,
		})
	}
	return out
}

// GuessSourceOntology inspects a query's vocabulary and returns the first
// registered data set vocabulary it uses; a convenience for the UI where
// the paper's users only pick the target data set.
func (m *Mediator) GuessSourceOntology(queryText string) (string, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return "", err
	}
	counts := map[string]int{}
	for _, b := range q.BGPs() {
		for _, t := range b.Patterns {
			for _, x := range []rdf.Term{t.P, t.O} {
				if !x.IsIRI() {
					continue
				}
				for _, d := range m.Datasets.All() {
					for _, ns := range d.Vocabularies {
						if strings.HasPrefix(x.Value, ns) {
							counts[ns]++
						}
					}
				}
			}
		}
	}
	best, bestN := "", 0
	for ns, n := range counts {
		if n > bestN || (n == bestN && ns < best) {
			best, bestN = ns, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("mediate: query uses no registered vocabulary")
	}
	return best, nil
}
