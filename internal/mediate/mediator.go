// Package mediate implements the paper's deployed system (§3.4, Figures 4
// and 5): a three-tier mediator exposing query rewriting and federated
// execution over a voiD data set KB, an alignment KB and a co-reference
// service, with remote execution over the SPARQL protocol and a minimal
// web UI standing in for the paper's GWT front end.
package mediate

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/core"
	"sparqlrw/internal/decompose"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/voidkb"
)

// Mediator wires the knowledge bases and services together.
type Mediator struct {
	Datasets   *voidkb.KB
	Alignments *align.KB
	Funcs      *funcs.Registry
	Coref      funcs.CorefSource
	Client     *endpoint.Client
	// Exec owns federated execution: concurrent fan-out, retries,
	// circuit breaking and the rewrite-plan cache. Reconfigure it with
	// ConfigureFederation.
	Exec *federate.Executor
	// Planner performs voiD-driven source selection, VALUES sharding and
	// adaptive ordering for federated queries with no explicit targets.
	// Reconfigure it with ConfigurePlanner; set nil to disable planning.
	Planner *plan.Planner
	// Decomposer splits a query's BGP into per-endpoint exclusive groups
	// when no single data set covers it, and JoinEngine executes the
	// fragments as cardinality-ordered streaming bound joins. Reconfigure
	// with ConfigureDecomposer; set Decomposer nil to disable the
	// multi-source path.
	Decomposer *decompose.Decomposer
	JoinEngine *decompose.Engine
	// RewriteFilters turns on the §4 FILTER extension for all rewrites.
	// Flip it before issuing federated queries, or call
	// ConfigureFederation afterwards so the rewrite-plan cache does not
	// serve plans produced under the old setting.
	RewriteFilters bool

	// unsubscribe detaches the KB cache-invalidation hooks (see Close).
	unsubscribe []func()
}

// New builds a mediator. corefSrc may be a local coref.Store or a
// coref.Client pointing at a remote service.
func New(datasets *voidkb.KB, alignments *align.KB, corefSrc funcs.CorefSource) *Mediator {
	m := &Mediator{
		Datasets:   datasets,
		Alignments: alignments,
		Funcs:      funcs.StandardRegistry(corefSrc),
		Coref:      corefSrc,
		Client:     endpoint.NewClient(),
	}
	m.ConfigureFederation(federate.Options{})
	m.ConfigurePlanner(plan.Options{})
	m.ConfigureDecomposer(decompose.Options{})
	// Rewrite-plan cache invalidation hooks: a changed voiD entry drops
	// that data set's cached plans, a changed alignment KB flushes them
	// all — no wholesale ConfigureFederation rebuild needed.
	m.unsubscribe = []func(){
		datasets.Subscribe(func(uri string) { m.Exec.InvalidateDataset(uri) }),
		alignments.Subscribe(func() { m.Exec.FlushPlans() }),
	}
	return m
}

// Close detaches the mediator's KB subscriptions. Call it when the
// mediator is discarded but the knowledge bases live on (e.g. a config
// reload rebuilding the mediator over shared KBs); otherwise the KBs
// keep the mediator — executor, caches and all — reachable forever.
func (m *Mediator) Close() {
	for _, cancel := range m.unsubscribe {
		cancel()
	}
	m.unsubscribe = nil
}

// ConfigurePlanner rebuilds the federation planner with the given options
// (zero-value fields take the plan defaults), feeding it the executor's
// live per-endpoint health for adaptive ordering. The decomposer follows
// the new planner (it runs the planner's per-pattern source selection).
func (m *Mediator) ConfigurePlanner(opts plan.Options) {
	m.Planner = plan.New(m.Datasets, m.Alignments, m.endpointHealth, opts)
	if m.Decomposer != nil {
		m.Decomposer = decompose.New(m.Planner, m.Decomposer.Options())
	}
}

// ConfigureDecomposer rebuilds the per-BGP decomposer and its streaming
// join engine with the given options (zero-value fields take the
// decompose defaults).
func (m *Mediator) ConfigureDecomposer(opts decompose.Options) {
	m.Decomposer = decompose.New(m.Planner, opts)
	m.JoinEngine = decompose.NewEngine(m.Exec, m.Funcs.Resolver(), m.Coref, opts)
}

// DecomposeStats bundles the decomposer's and join engine's counters for
// /api/stats.
type DecomposeStats struct {
	decompose.Stats
	Engine decompose.EngineStats `json:"engine"`
}

// DecomposerStats snapshots the decompose-layer counters (zero value
// when the multi-source path is disabled).
func (m *Mediator) DecomposerStats() DecomposeStats {
	var st DecomposeStats
	if m.Decomposer != nil {
		st.Stats = m.Decomposer.Stats()
	}
	if m.JoinEngine != nil {
		st.Engine = m.JoinEngine.Stats()
	}
	return st
}

// endpointHealth adapts the executor's stats into the planner's view.
func (m *Mediator) endpointHealth() map[string]plan.EndpointHealth {
	st := m.Exec.Stats()
	out := make(map[string]plan.EndpointHealth, len(st.Endpoints))
	for _, es := range st.Endpoints {
		out[es.Endpoint] = plan.EndpointHealth{
			AvgLatency: time.Duration(es.AvgLatencyMS * float64(time.Millisecond)),
			Available:  es.Breaker != federate.BreakerOpen.String(),
		}
	}
	return out
}

// PlanQuery explains how a federated query would run: the per-data-set
// relevance decisions and the ordered, sharded sub-requests.
func (m *Mediator) PlanQuery(queryText, sourceOnt string) (*plan.Plan, error) {
	if m.Planner == nil {
		return nil, fmt.Errorf("mediate: planning is disabled")
	}
	return m.Planner.Plan(queryText, sourceOnt)
}

// QueryExplanation is /api/plan's response shape: the whole-query plan
// plus — when no single data set covers the query — the per-BGP
// decomposition the multi-source path would execute.
type QueryExplanation struct {
	*plan.Plan
	Decomposition *decompose.Decomposition `json:"decomposition,omitempty"`
}

// ExplainQuery explains how a federated query would run: the planner's
// per-data-set decisions, and the exclusive-group decomposition (groups,
// estimated cardinalities, join order) when the query only runs by
// splitting its BGP across repositories.
func (m *Mediator) ExplainQuery(queryText, sourceOnt string) (*QueryExplanation, error) {
	pl, err := m.PlanQuery(queryText, sourceOnt)
	if err != nil {
		return nil, err
	}
	ex := &QueryExplanation{Plan: pl}
	if len(pl.Subs) == 0 && m.Decomposer != nil {
		if dcm, derr := m.Decomposer.Decompose(queryText, sourceOnt); derr == nil {
			ex.Decomposition = dcm
		}
	}
	return ex, nil
}

// PlannerStats snapshots the planner's counters (zero value when
// planning is disabled).
func (m *Mediator) PlannerStats() plan.Stats {
	if m.Planner == nil {
		return plan.Stats{}
	}
	return m.Planner.Stats()
}

// ConfigureFederation rebuilds the federation executor with the given
// options (zero-value fields take the federate defaults). It resets the
// executor's breakers, counters and plan cache; the join engine follows
// the new executor.
func (m *Mediator) ConfigureFederation(opts federate.Options) {
	rewrite := func(queryText, sourceOnt, dataset string) (string, error) {
		rr, err := m.Rewrite(queryText, sourceOnt, dataset)
		if err != nil {
			return "", err
		}
		return rr.Query, nil
	}
	m.Exec = federate.NewExecutor(m.Client, rewrite, m.Coref, opts)
	if m.JoinEngine != nil {
		m.JoinEngine.SetDispatcher(m.Exec)
	}
}

// FederationStats snapshots the executor's per-endpoint and cache
// counters for the /api/stats endpoint.
func (m *Mediator) FederationStats() federate.Stats {
	return m.Exec.Stats()
}

// RewriteResult is the outcome of a single rewrite.
type RewriteResult struct {
	// Query is the rewritten query text.
	Query string
	// Target is the data set the query was rewritten for.
	Target string
	// AlignmentsUsed is how many entity alignments were selected.
	AlignmentsUsed int
	// Report carries the rewriter diagnostics.
	Report *core.Report
}

// Rewrite translates a query written against sourceOnt for the given
// target data set, per the paper's inputs: "the query, the source ontology
// used to formulate the query ... and the target ontology (or data set)".
func (m *Mediator) Rewrite(queryText, sourceOnt, targetDataset string) (*RewriteResult, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("mediate: parsing query: %w", err)
	}
	ds, ok := m.Datasets.Get(targetDataset)
	if !ok {
		return nil, fmt.Errorf("mediate: unknown target data set %s", targetDataset)
	}
	eas := m.Alignments.Select(align.Selector{
		SourceOntology: sourceOnt,
		TargetDataset:  targetDataset,
		TargetOntology: firstOrEmpty(ds.Vocabularies),
	})
	rw := core.New(eas, m.Funcs)
	rw.Opts.RewriteFilters = m.RewriteFilters
	rw.Opts.TargetURISpace = ds.URISpace
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		return nil, fmt.Errorf("mediate: rewriting for %s: %w", targetDataset, err)
	}
	return &RewriteResult{
		Query:          sparql.Format(out),
		Target:         targetDataset,
		AlignmentsUsed: len(eas),
		Report:         report,
	}, nil
}

func firstOrEmpty(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}

// DatasetAnswer is one data set's contribution to a federated query.
type DatasetAnswer = federate.DatasetAnswer

// FederatedResult merges the answers of all targeted data sets.
type FederatedResult = federate.Result

// FederatedSelect runs FederatedSelectContext without a deadline.
//
// Deprecated: use Query, which streams solutions instead of buffering
// the whole merged result and takes its options as a struct.
func (m *Mediator) FederatedSelect(queryText, sourceOnt string, targets []string) (*FederatedResult, error) {
	return m.FederatedSelectContext(context.Background(), queryText, sourceOnt, targets)
}

// FederatedSelectContext answers the paper's recall scenario: "it is
// important to query all the available repositories in order to increase
// the recall". The query (written against sourceOnt) runs on every named
// data set — rewritten when the data set's vocabulary differs — and
// results are merged with owl:sameAs canonicalisation so redundant URIs
// collapse. When targets is empty the planner selects them.
//
// Deprecated: use Query. This wrapper drains Query's stream into a
// materialised FederatedResult, giving up the first-solution latency the
// streaming path exists for.
func (m *Mediator) FederatedSelectContext(ctx context.Context, queryText, sourceOnt string, targets []string) (*FederatedResult, error) {
	if len(targets) == 0 {
		res, _, err := m.FederatedSelectPlanned(ctx, queryText, sourceOnt)
		return res, err
	}
	qs, err := m.Query(ctx, QueryRequest{Query: queryText, SourceOnt: sourceOnt, Targets: targets})
	if err != nil {
		return nil, err
	}
	return qs.drain()
}

// FederatedSelectPlanned plans and executes a federated query with
// auto-selected targets, returning the plan alongside the merged result
// so callers can surface the decisions taken.
//
// Deprecated: use Query with empty Targets; the plan is available on the
// stream (QueryStream.Plan). This wrapper drains the stream.
func (m *Mediator) FederatedSelectPlanned(ctx context.Context, queryText, sourceOnt string) (*FederatedResult, *plan.Plan, error) {
	qs, pl, err := m.queryStream(ctx, QueryRequest{Query: queryText, SourceOnt: sourceOnt})
	if err != nil {
		return nil, pl, err
	}
	res, err := qs.drain()
	return res, pl, err
}

// DatasetInfo summarises one data set for the REST API.
type DatasetInfo struct {
	URI          string   `json:"uri"`
	Title        string   `json:"title"`
	Endpoint     string   `json:"endpoint"`
	URISpace     string   `json:"uriSpace"`
	Vocabularies []string `json:"vocabularies"`
}

// DatasetInfos lists the registered data sets.
func (m *Mediator) DatasetInfos() []DatasetInfo {
	var out []DatasetInfo
	for _, d := range m.Datasets.All() {
		out = append(out, DatasetInfo{
			URI: d.URI, Title: d.Title, Endpoint: d.SPARQLEndpoint,
			URISpace: d.URISpace, Vocabularies: d.Vocabularies,
		})
	}
	return out
}

// GuessSourceOntology inspects a query's vocabulary and returns the first
// registered data set vocabulary it uses; a convenience for the UI where
// the paper's users only pick the target data set.
func (m *Mediator) GuessSourceOntology(queryText string) (string, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return "", err
	}
	counts := map[string]int{}
	for _, b := range q.BGPs() {
		for _, t := range b.Patterns {
			for _, x := range []rdf.Term{t.P, t.O} {
				if !x.IsIRI() {
					continue
				}
				for _, d := range m.Datasets.All() {
					for _, ns := range d.Vocabularies {
						if strings.HasPrefix(x.Value, ns) {
							counts[ns]++
						}
					}
				}
			}
		}
	}
	best, bestN := "", 0
	for ns, n := range counts {
		if n > bestN || (n == bestN && ns < best) {
			best, bestN = ns, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("mediate: query uses no registered vocabulary")
	}
	return best, nil
}
