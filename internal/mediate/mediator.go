// Package mediate implements the paper's deployed system (§3.4, Figures 4
// and 5): a three-tier mediator exposing query rewriting and federated
// execution over a voiD data set KB, an alignment KB and a co-reference
// service, with remote execution over the SPARQL protocol and a minimal
// web UI standing in for the paper's GWT front end.
package mediate

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/core"
	"sparqlrw/internal/decompose"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/funcs"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/view"
	"sparqlrw/internal/voidkb"
)

// Mediator wires the knowledge bases and services together.
type Mediator struct {
	Datasets   *voidkb.KB
	Alignments *align.KB
	Funcs      *funcs.Registry
	Coref      funcs.CorefSource
	Client     *endpoint.Client
	// Exec owns federated execution: concurrent fan-out, retries,
	// circuit breaking and the rewrite-plan cache. Rebuilt by Configure.
	Exec *federate.Executor
	// Planner performs voiD-driven source selection, VALUES sharding and
	// adaptive ordering for federated queries with no explicit targets.
	// Rebuilt by Configure; nil when planning is disabled (WithoutPlanner).
	Planner *plan.Planner
	// Decomposer splits a query's BGP into per-endpoint exclusive groups
	// when no single data set covers it, and JoinEngine executes the
	// fragments as cardinality-ordered streaming bound joins. Rebuilt by
	// Configure; nil when the multi-source path is disabled
	// (WithoutDecomposer).
	Decomposer *decompose.Decomposer
	JoinEngine *decompose.Engine
	// RewriteFilters mirrors Config.RewriteFilters (the §4 FILTER
	// extension); set it via Configure(WithRewriteFilters(...)) so the
	// rewrite-plan cache cannot serve plans produced under the old
	// setting.
	RewriteFilters bool
	// Serve is the production serving tier: multi-tenant admission, the
	// federated result cache and policy-by-rewriting. Rebuilt by
	// Configure; nil when the tier is disabled (no WithServing).
	Serve *serve.Tier
	// Obs bundles the mediator's observability surfaces: the metrics
	// registry every layer registers into (rendered at /metrics, read back
	// by Stats), the finished-trace ring behind /api/trace, the structured
	// logger and the slow-query threshold. Rebuilt by Configure only when
	// WithObservability changes the options; the registry otherwise
	// survives rebuilds so counters accumulate across reconfiguration.
	Obs *obs.Observer
	// Views is the materialized-view tier: it mines frequent decomposed
	// join shapes, materializes them into embedded dictionary-encoded
	// stores and answers covered queries locally. Rebuilt by Configure;
	// nil when the tier is disabled (no WithViews).
	Views *view.Manager

	cfg Config
	// obsOpts remembers the options Obs was built from, so rebuild only
	// replaces the observer when they change.
	obsOpts obs.Options
	// viewOpts remembers the effective options Views was built from
	// (registry and card store injected), for the same reason.
	viewOpts view.Options
	metrics  *mediatorMetrics
	start    time.Time
	// stopProbes ends the background health prober, when one is running
	// (see StartHealthProbes).
	stopProbes func()

	// unsubscribe detaches the KB cache-invalidation hooks (see Close).
	unsubscribe []func()
}

// New builds a mediator over the knowledge bases, configured by the given
// options (zero options select the defaults: federation, planning and
// decomposition all enabled with their package defaults). corefSrc may be
// a local coref.Store or a coref.Client pointing at a remote service.
func New(datasets *voidkb.KB, alignments *align.KB, corefSrc funcs.CorefSource, opts ...Option) *Mediator {
	m := &Mediator{
		Datasets:   datasets,
		Alignments: alignments,
		Funcs:      funcs.StandardRegistry(corefSrc),
		Coref:      corefSrc,
		Client:     endpoint.NewClient(),
		start:      time.Now(),
	}
	m.Configure(opts...)
	// Cache invalidation hooks: a changed voiD entry drops that data
	// set's cached rewrite plans and cached federated results, a changed
	// alignment KB flushes both caches entirely — no wholesale executor
	// rebuild needed. Both caches version their epochs, so fills that
	// were in flight across an invalidation are silently discarded.
	m.unsubscribe = []func(){
		datasets.Subscribe(func(uri string) {
			m.Exec.InvalidateDataset(uri)
			if m.Serve != nil {
				m.Serve.InvalidateDataset(uri)
			}
			// Observed cardinalities predict the old data; drop them so
			// stale corrections cannot outlive a voiD update.
			m.Obs.Cards.Invalidate(uri)
			// Synchronously mark views over this data set stale — by the
			// time the KB update returns, no query can be answered from
			// a view built against the old description.
			m.Views.InvalidateDataset(uri)
			if ds, ok := m.Datasets.Get(uri); ok && ds.SPARQLEndpoint != "" {
				m.Obs.Health.Ensure(ds.SPARQLEndpoint)
			}
		}),
		alignments.Subscribe(func() {
			m.Exec.FlushPlans()
			if m.Serve != nil {
				m.Serve.Flush()
			}
			m.Obs.Cards.Flush()
			// An alignment change can move any rewriting, so every view's
			// materialized answer is suspect: all stale, refresh queued.
			m.Views.InvalidateAll()
		}),
	}
	return m
}

// Close detaches the mediator's KB subscriptions, stops the background
// health probes and closes the observer (flushing any pending OTLP spans
// and the flight recorder). Call it when the mediator is discarded but
// the knowledge bases live on (e.g. a config reload rebuilding the
// mediator over shared KBs); otherwise the KBs keep the mediator —
// executor, caches and all — reachable forever.
func (m *Mediator) Close() {
	for _, cancel := range m.unsubscribe {
		cancel()
	}
	m.unsubscribe = nil
	if m.stopProbes != nil {
		m.stopProbes()
		m.stopProbes = nil
	}
	m.Views.Close()
	m.Obs.Close()
}

// StartHealthProbes begins background liveness probing: every interval,
// an `ASK { ?s ?p ?o }` is issued to each registered data set endpoint
// and its outcome recorded in the health model, so /api/health scores
// stay current for endpoints receiving no query traffic. The returned
// stop function (also invoked by Close) ends probing; starting again
// replaces the previous prober.
func (m *Mediator) StartHealthProbes(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	if m.stopProbes != nil {
		m.stopProbes()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			m.probeEndpoints(ctx)
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}()
	m.stopProbes = func() {
		cancel()
		<-done
	}
	return m.stopProbes
}

// healthProbeTimeout bounds one liveness ASK.
const healthProbeTimeout = 5 * time.Second

// probeEndpoints issues one liveness ASK to every distinct registered
// endpoint, recording latency and outcome as probe samples.
func (m *Mediator) probeEndpoints(ctx context.Context) {
	seen := map[string]bool{}
	for _, ds := range m.Datasets.All() {
		url := ds.SPARQLEndpoint
		if url == "" || seen[url] {
			continue
		}
		seen[url] = true
		pctx, cancel := context.WithTimeout(ctx, healthProbeTimeout)
		start := time.Now()
		_, err := m.Client.AskContext(pctx, url, "ASK { ?s ?p ?o }")
		cancel()
		if ctx.Err() != nil {
			return
		}
		m.Obs.Health.RecordProbe(url, time.Since(start), err)
	}
}

// DecomposeStats bundles the decomposer's and join engine's counters.
type DecomposeStats struct {
	decompose.Stats
	Engine decompose.EngineStats `json:"engine"`
}

// FormStats counts executed queries by form.
type FormStats struct {
	Select    uint64 `json:"select"`
	Ask       uint64 `json:"ask"`
	Construct uint64 `json:"construct"`
	Describe  uint64 `json:"describe"`
}

// Stats is the mediator's one observability snapshot, replacing the old
// per-subsystem getters: the executor's per-endpoint and cache counters,
// the planner's pruning/sharding counters (nil when planning is
// disabled), the decompose-layer counters (nil when the multi-source path
// is disabled), and per-form query counts.
type Stats struct {
	Federation federate.Stats  `json:"federation"`
	Planner    *plan.Stats     `json:"planner,omitempty"`
	Decompose  *DecomposeStats `json:"decompose,omitempty"`
	Queries    FormStats       `json:"queries"`
	// InFlight is how many accepted queries have not closed their result.
	InFlight int `json:"inFlight"`
	// SolutionsStreamed counts solutions and triples delivered to
	// consumers across all queries.
	SolutionsStreamed uint64 `json:"solutionsStreamed"`
	// Health scores every known endpoint from smoothed latency quantiles,
	// error rate and breaker state (the same snapshot GET /api/health
	// serves); hedged dispatch reads it to pick replicas.
	Health []obs.EndpointHealth `json:"health,omitempty"`
	// Serving reports the serving tier's per-tenant admission state and
	// result-cache counters (nil when the tier is disabled).
	Serving *serve.Stats `json:"serving,omitempty"`
	// Views reports the materialized-view tier's hit/miss/refresh
	// counters and per-view descriptors (nil when the tier is disabled).
	Views *view.Stats `json:"views,omitempty"`
	// Build identifies the running binary; UptimeSeconds is time since the
	// mediator was constructed.
	Build         BuildInfo `json:"build"`
	UptimeSeconds float64   `json:"uptimeSeconds"`
}

// Stats returns a snapshot of every layer's counters. It is a read-back
// view over the mediator's shared metrics registry — the same
// instruments GET /metrics renders — so the JSON snapshot and the
// Prometheus exposition cannot drift.
func (m *Mediator) Stats() Stats {
	st := Stats{Federation: m.Exec.Stats()}
	if m.Planner != nil {
		ps := m.Planner.Stats()
		st.Planner = &ps
	}
	if m.Decomposer != nil {
		ds := DecomposeStats{Stats: m.Decomposer.Stats()}
		if m.JoinEngine != nil {
			ds.Engine = m.JoinEngine.Stats()
		}
		st.Decompose = &ds
	}
	m.metrics.queries.Each(func(lvs []string, v float64) {
		switch lvs[0] {
		case "select":
			st.Queries.Select = uint64(v)
		case "ask":
			st.Queries.Ask = uint64(v)
		case "construct":
			st.Queries.Construct = uint64(v)
		case "describe":
			st.Queries.Describe = uint64(v)
		}
	})
	st.InFlight = int(m.metrics.inflight.Value())
	st.SolutionsStreamed = uint64(m.metrics.streamed.Value())
	st.Health = m.Obs.Health.Snapshot()
	if m.Serve != nil {
		ss := m.Serve.Stats()
		st.Serving = &ss
	}
	if m.Views != nil {
		vs := m.Views.Stats()
		st.Views = &vs
	}
	st.Build = buildInfo()
	st.UptimeSeconds = time.Since(m.start).Seconds()
	return st
}

// endpointHealth adapts the executor's stats into the planner's view.
func (m *Mediator) endpointHealth() map[string]plan.EndpointHealth {
	st := m.Exec.Stats()
	out := make(map[string]plan.EndpointHealth, len(st.Endpoints))
	for _, es := range st.Endpoints {
		out[es.Endpoint] = plan.EndpointHealth{
			AvgLatency: time.Duration(es.AvgLatencyMS * float64(time.Millisecond)),
			Available:  es.Breaker != federate.BreakerOpen.String(),
		}
	}
	return out
}

// PlanQuery explains how a federated query would run: the per-data-set
// relevance decisions and the ordered, sharded sub-requests.
func (m *Mediator) PlanQuery(queryText, sourceOnt string) (*plan.Plan, error) {
	if m.Planner == nil {
		return nil, fmt.Errorf("mediate: planning is disabled")
	}
	return m.Planner.Plan(queryText, sourceOnt)
}

// QueryExplanation is /api/plan's response shape: the whole-query plan
// plus — when no single data set covers the query — the per-BGP
// decomposition the multi-source path would execute.
type QueryExplanation struct {
	*plan.Plan
	Decomposition *decompose.Decomposition `json:"decomposition,omitempty"`
}

// ExplainQuery explains how a federated query would run: the planner's
// per-data-set decisions, and the exclusive-group decomposition (groups,
// estimated cardinalities, join order) when the query only runs by
// splitting its BGP across repositories.
func (m *Mediator) ExplainQuery(queryText, sourceOnt string) (*QueryExplanation, error) {
	pl, err := m.PlanQuery(queryText, sourceOnt)
	if err != nil {
		return nil, err
	}
	ex := &QueryExplanation{Plan: pl}
	if len(pl.Subs) == 0 && m.Decomposer != nil {
		if dcm, derr := m.Decomposer.Decompose(queryText, sourceOnt); derr == nil {
			ex.Decomposition = dcm
		}
	}
	return ex, nil
}

// RewriteResult is the outcome of a single rewrite.
type RewriteResult struct {
	// Query is the rewritten query text.
	Query string
	// Target is the data set the query was rewritten for.
	Target string
	// AlignmentsUsed is how many entity alignments were selected.
	AlignmentsUsed int
	// Report carries the rewriter diagnostics.
	Report *core.Report
}

// Rewrite translates a query written against sourceOnt for the given
// target data set, per the paper's inputs: "the query, the source ontology
// used to formulate the query ... and the target ontology (or data set)".
func (m *Mediator) Rewrite(queryText, sourceOnt, targetDataset string) (*RewriteResult, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, fmt.Errorf("mediate: parsing query: %w", err)
	}
	ds, ok := m.Datasets.Get(targetDataset)
	if !ok {
		return nil, fmt.Errorf("mediate: unknown target data set %s", targetDataset)
	}
	eas := m.Alignments.Select(align.Selector{
		SourceOntology: sourceOnt,
		TargetDataset:  targetDataset,
		TargetOntology: firstOrEmpty(ds.Vocabularies),
	})
	rw := core.New(eas, m.Funcs)
	rw.Opts.RewriteFilters = m.RewriteFilters
	rw.Opts.TargetURISpace = ds.URISpace
	out, report, err := rw.RewriteQuery(q)
	if err != nil {
		return nil, fmt.Errorf("mediate: rewriting for %s: %w", targetDataset, err)
	}
	return &RewriteResult{
		Query:          sparql.Format(out),
		Target:         targetDataset,
		AlignmentsUsed: len(eas),
		Report:         report,
	}, nil
}

func firstOrEmpty(xs []string) string {
	if len(xs) == 0 {
		return ""
	}
	return xs[0]
}

// DatasetAnswer is one data set's contribution to a federated query.
type DatasetAnswer = federate.DatasetAnswer

// FederatedResult merges the answers of all targeted data sets.
type FederatedResult = federate.Result

// DatasetInfo summarises one data set for the REST API.
type DatasetInfo struct {
	URI          string   `json:"uri"`
	Title        string   `json:"title"`
	Endpoint     string   `json:"endpoint"`
	URISpace     string   `json:"uriSpace"`
	Vocabularies []string `json:"vocabularies"`
}

// DatasetInfos lists the registered data sets.
func (m *Mediator) DatasetInfos() []DatasetInfo {
	var out []DatasetInfo
	for _, d := range m.Datasets.All() {
		out = append(out, DatasetInfo{
			URI: d.URI, Title: d.Title, Endpoint: d.SPARQLEndpoint,
			URISpace: d.URISpace, Vocabularies: d.Vocabularies,
		})
	}
	return out
}

// GuessSourceOntology inspects a query's vocabulary and returns the first
// registered data set vocabulary it uses; a convenience for the UI where
// the paper's users only pick the target data set. CONSTRUCT/DESCRIBE
// template triples count too: an integration CONSTRUCT may mention the
// source vocabulary only in its template.
func (m *Mediator) GuessSourceOntology(queryText string) (string, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return "", err
	}
	return m.guessSourceOntology(q)
}

func (m *Mediator) guessSourceOntology(q *sparql.Query) (string, error) {
	counts := map[string]int{}
	note := func(terms ...rdf.Term) {
		for _, x := range terms {
			if !x.IsIRI() {
				continue
			}
			for _, d := range m.Datasets.All() {
				for _, ns := range d.Vocabularies {
					if strings.HasPrefix(x.Value, ns) {
						counts[ns]++
					}
				}
			}
		}
	}
	for _, b := range q.BGPs() {
		for _, t := range b.Patterns {
			note(t.P, t.O)
		}
	}
	for _, t := range q.Template {
		note(t.P, t.O)
	}
	best, bestN := "", 0
	for ns, n := range counts {
		if n > bestN || (n == bestN && ns < best) {
			best, bestN = ns, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("mediate: query uses no registered vocabulary")
	}
	return best, nil
}
