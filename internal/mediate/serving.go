package mediate

// The mediator side of the serving tier (internal/serve): plan pruning
// under a tenant's dataset allowlist, and the federated result cache's
// lookup/fill plumbing around the streaming query path.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/sparql"
)

// restrictPlan prunes a federation plan to the tenant's dataset
// allowlist. A plan the allowlist empties entirely is refused with
// ErrDenied rather than silently answering from nothing.
func restrictPlan(pl *plan.Plan, p *serve.Policy) (*plan.Plan, error) {
	if len(p.AllowedDatasets()) == 0 || len(pl.Subs) == 0 {
		return pl, nil
	}
	var subs []plan.SubRequest
	for _, s := range pl.Subs {
		if p.AllowsDataset(s.Dataset) {
			subs = append(subs, s)
		}
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("mediate: no permitted data set is relevant to the query: %w", serve.ErrDenied)
	}
	if len(subs) == len(pl.Subs) {
		return pl, nil
	}
	out := *pl
	out.Subs = subs
	return &out, nil
}

// cacheFill is one request's result-cache participation: its
// canonicalised key and the invalidation epoch snapshotted before
// execution, so an answer computed against pre-invalidation KB state is
// never cached (the version check in ResultCache.Put).
type cacheFill struct {
	cache   *serve.ResultCache
	key     string
	version uint64
}

// cacheFill returns the request's cache handle, or nil when the request
// is not cacheable: the tier or cache is disabled, or the form is not
// SELECT/ASK (CONSTRUCT and DESCRIBE stream graphs whose instantiation
// is cheap relative to their transfer, and DESCRIBE's two-phase fan-out
// resolves resources dynamically).
func (m *Mediator) cacheFill(req QueryRequest, q *sparql.Query) *cacheFill {
	if m.Serve == nil || m.Serve.Cache == nil {
		return nil
	}
	if q.Form != sparql.Select && q.Form != sparql.Ask {
		return nil
	}
	return &cacheFill{
		cache:   m.Serve.Cache,
		key:     m.resultCacheKey(req, q),
		version: m.Serve.Cache.Version(),
	}
}

// lookup serves the request from the cache if it can, returning the
// replayed Result (with zero endpoint round trips) or nil on a miss.
func (f *cacheFill) lookup(req QueryRequest, q *sparql.Query, qo *queryObs) *Result {
	if f == nil {
		return nil
	}
	e, ok := f.cache.Get(f.key)
	if !ok {
		return nil
	}
	qo.trace.Root().SetAttr("resultCache", "hit")
	var res *Result
	if e.IsAsk {
		res = &Result{form: sparql.Ask, ask: e.Ask, askSum: copySummary(e)}
	} else {
		qs := &QueryStream{src: newCachedSource(e), limit: req.Limit, qo: qo}
		res = &Result{form: sparql.Select, sel: qs}
	}
	res.qo = qo
	return res
}

// attach arms the fill on a freshly started Result: SELECT streams are
// wrapped so a fully consumed, fully successful run is stored on
// completion; an ASK (already materialised) is stored immediately.
func (f *cacheFill) attach(res *Result) {
	if f == nil {
		return
	}
	switch {
	case res.sel != nil:
		res.sel.src = &fillSource{fill: f, src: res.sel.src}
	case res.form == sparql.Ask:
		if storable(res.askSum) {
			f.cache.Put(&serve.Entry{
				Key:      f.key,
				IsAsk:    true,
				Ask:      res.ask,
				Summary:  trimSummary(res.askSum),
				Datasets: datasetsOf(res.askSum),
			}, f.version)
		}
	}
}

// resultCacheKey fingerprints the request for the result cache. Ground
// IRIs in the query are canonicalised to their owl:sameAs
// representative first — the same rule the federation merge and the
// graph streams use — so alias spellings of one entity share an entry.
// The source ontology, explicit targets, limit and the tenant's dataset
// allowlist all discriminate; the tenant's algebra restrictions need no
// extra component because queryParsed rewrote the text before keying.
func (m *Mediator) resultCacheKey(req QueryRequest, q *sparql.Query) string {
	canon := newCorefCanon(m.Coref)
	cq := q.Clone()
	canonicaliseGroup(cq.Where, canon)
	parts := []string{sparql.Format(cq), req.SourceOnt, strconv.Itoa(req.Limit)}
	if len(req.Targets) > 0 {
		ts := append([]string(nil), req.Targets...)
		sort.Strings(ts)
		parts = append(parts, "targets:")
		parts = append(parts, ts...)
	}
	if allow := req.Tenant.GetPolicy().AllowedDatasets(); len(allow) > 0 {
		ds := append([]string(nil), allow...)
		sort.Strings(ds)
		parts = append(parts, "allow:")
		parts = append(parts, ds...)
	}
	return strings.Join(parts, "\x00")
}

// canonicaliseGroup maps every ground term in the group's basic graph
// patterns and VALUES blocks through the sameAs canonicaliser, in
// place (callers pass a clone).
func canonicaliseGroup(g *sparql.GroupGraphPattern, canon *corefCanon) {
	if g == nil {
		return
	}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *sparql.BGP:
			for i := range e.Patterns {
				e.Patterns[i] = canon.triple(e.Patterns[i])
			}
		case *sparql.InlineData:
			for _, row := range e.Rows {
				for i, t := range row {
					row[i] = canon.term(t)
				}
			}
		case *sparql.SubGroup:
			canonicaliseGroup(e.Group, canon)
		case *sparql.Optional:
			canonicaliseGroup(e.Group, canon)
		case *sparql.Union:
			for _, alt := range e.Alternatives {
				canonicaliseGroup(alt, canon)
			}
		}
	}
}

// storable reports whether a fan-out summary describes a complete,
// fully successful answer — the only kind worth caching (a partial
// answer cached once would keep masking the datasets that failed).
func storable(sum *federate.Result) bool {
	if sum == nil || sum.Partial {
		return false
	}
	for _, da := range sum.PerDataset {
		if da.Err != nil {
			return false
		}
	}
	return true
}

// trimSummary copies a summary for storage, dropping the (already
// streamed) solutions.
func trimSummary(sum *federate.Result) *federate.Result {
	out := *sum
	out.Solutions = nil
	out.PerDataset = append([]federate.DatasetAnswer(nil), sum.PerDataset...)
	return &out
}

// copySummary returns a fresh summary for one cache hit, so consumers
// mutating the result cannot corrupt the shared entry.
func copySummary(e *serve.Entry) *federate.Result {
	if e.Summary == nil {
		return &federate.Result{Vars: e.Vars}
	}
	return trimSummary(e.Summary)
}

// datasetsOf lists the distinct data sets a summary's answer touched —
// the invalidation index of its cache entry.
func datasetsOf(sum *federate.Result) []string {
	var out []string
	seen := map[string]bool{}
	for _, da := range sum.PerDataset {
		if !seen[da.Dataset] {
			seen[da.Dataset] = true
			out = append(out, da.Dataset)
		}
	}
	return out
}

// fillSource wraps a SELECT's solution source, recording streamed rows
// and storing the entry once the stream is consumed to its natural end
// with every dataset successful. Limit-cut streams (QueryStream stops
// calling Next before the upstream EOF) and oversized results never
// store; neither does a run whose invalidation epoch moved (Put's
// version check).
type fillSource struct {
	fill *cacheFill
	src  solutionSource

	rows     []eval.Solution
	overflow bool
	done     bool
	stored   bool
}

func (f *fillSource) Vars() []string { return f.src.Vars() }

func (f *fillSource) Next() (eval.Solution, error) {
	sol, err := f.src.Next()
	if err == io.EOF {
		f.done = true
	}
	if err != nil {
		return nil, err
	}
	if !f.overflow {
		if len(f.rows) >= f.fill.cache.MaxRows() {
			f.overflow, f.rows = true, nil
		} else {
			f.rows = append(f.rows, sol.Clone())
		}
	}
	return sol, nil
}

func (f *fillSource) Summary() (*federate.Result, error) {
	sum, err := f.src.Summary()
	f.maybeStore(sum, err)
	return sum, err
}

func (f *fillSource) Close() error {
	if f.done && !f.stored {
		if sum, err := f.src.Summary(); err == nil {
			f.maybeStore(sum, nil)
		}
	}
	return f.src.Close()
}

func (f *fillSource) maybeStore(sum *federate.Result, err error) {
	if f.stored || !f.done || f.overflow || err != nil || !storable(sum) {
		return
	}
	f.stored = true
	f.fill.cache.Put(&serve.Entry{
		Key:       f.fill.key,
		Vars:      append([]string(nil), f.src.Vars()...),
		Solutions: f.rows,
		Summary:   trimSummary(sum),
		Datasets:  datasetsOf(sum),
	}, f.fill.version)
}

// cachedSource replays a cache entry as a solutionSource: cloned rows,
// a fresh trimmed summary, no upstream to close.
type cachedSource struct {
	e *serve.Entry
	i int
}

func newCachedSource(e *serve.Entry) *cachedSource { return &cachedSource{e: e} }

func (c *cachedSource) Vars() []string { return c.e.Vars }

func (c *cachedSource) Next() (eval.Solution, error) {
	if c.i >= len(c.e.Solutions) {
		return nil, io.EOF
	}
	sol := c.e.Solutions[c.i].Clone()
	c.i++
	return sol, nil
}

func (c *cachedSource) Close() error { return nil }

func (c *cachedSource) Summary() (*federate.Result, error) {
	return copySummary(c.e), nil
}
