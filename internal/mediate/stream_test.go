package mediate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// streamStack wires a mediator to four endpoints over one universe: three
// fast Southampton replicas and one whose responses are gated by the
// test.
type streamStack struct {
	mediator *Mediator
	targets  []string
	// slowGate holds the fourth endpoint's response until closed.
	slowGate chan struct{}
	// slowResponded flips once the gated endpoint finished its response.
	slowResponded atomic.Bool
	// slowStarted counts requests that reached the gated endpoint.
	slowStarted atomic.Int64
	// slowCancelled flips when a gated request's context is cancelled
	// (client disconnect reaching the endpoint sub-query).
	slowCancelled chan struct{}
}

func newStreamStack(t testing.TB) *streamStack {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)
	s := &streamStack{
		slowGate:      make(chan struct{}),
		slowCancelled: make(chan struct{}),
	}

	fast := endpoint.NewServer("southampton", u.Southampton)
	var fastSrvs []*httptest.Server
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(fast)
		t.Cleanup(srv.Close)
		fastSrvs = append(fastSrvs, srv)
	}
	var cancelOnce atomic.Bool
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body before blocking: a Go HTTP server only notices a
		// client disconnect (and cancels r.Context()) once the request
		// body has been consumed.
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.slowStarted.Add(1)
		select {
		case <-s.slowGate:
		case <-r.Context().Done():
			if cancelOnce.CompareAndSwap(false, true) {
				close(s.slowCancelled)
			}
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		fast.ServeHTTP(w, r)
		s.slowResponded.Store(true)
	}))
	t.Cleanup(slowSrv.Close)

	dsKB := voidkb.NewKB()
	urls := append(append([]*httptest.Server(nil), fastSrvs...), slowSrv)
	for i, srv := range urls {
		uri := fmt.Sprintf("http://replica%d.example/void", i)
		if err := dsKB.Add(&voidkb.Dataset{
			URI: uri, Title: fmt.Sprintf("Replica %d", i),
			SPARQLEndpoint: srv.URL,
			URISpace:       workload.SotonURIPattern,
			Vocabularies:   []string{rdf.AKTNS},
		}); err != nil {
			t.Fatal(err)
		}
		s.targets = append(s.targets, uri)
	}
	alignKB := align.NewKB()
	if err := alignKB.Add(workload.AKT2KISTI()); err != nil {
		t.Fatal(err)
	}
	// A generous attempt deadline so only the test's gate (or a client
	// disconnect) can end the slow endpoint's request.
	m := New(dsKB, alignKB, u.Coref,
		WithRewriteFilters(true),
		WithFederation(federate.Options{EndpointTimeout: time.Minute, MaxRetries: -1}))
	t.Cleanup(m.Close)
	s.mediator = m
	return s
}

// postSparql posts a protocol query with explicit targets and the given
// Accept header.
func postSparql(t *testing.T, base, query, accept string, targets []string) *http.Response {
	t.Helper()
	form := url.Values{"query": {query}, "source": {rdf.AKTNS}, "target": targets}
	req, err := http.NewRequest(http.MethodPost, base+"/sparql", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSparqlStreamsFirstRowBeforeSlowEndpoint is the streaming path's
// end-to-end acceptance: a federated SELECT over four endpoints, one of
// which is stalled, must deliver its first binding over /sparql while the
// stalled endpoint still has not responded.
func TestSparqlStreamsFirstRowBeforeSlowEndpoint(t *testing.T) {
	s := newStreamStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	resp := postSparql(t, srv.URL, workload.Figure1Query(0), "", s.targets)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	type firstRow struct {
		row eval.Solution
		// slowDone records whether the gated endpoint had responded at
		// the moment the first binding was decoded.
		slowDone bool
	}
	dec, err := srjson.NewStreamDecoder(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan firstRow, 1)
	go func() {
		sol, err := dec.Next()
		if err != nil {
			t.Errorf("first binding: %v", err)
		}
		got <- firstRow{row: sol, slowDone: s.slowResponded.Load()}
	}()
	var fr firstRow
	select {
	case fr = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no first binding while the slow endpoint is stalled")
	}
	if fr.slowDone {
		t.Fatal("slow endpoint responded before the first binding: response was buffered, not streamed")
	}
	if len(fr.row) == 0 {
		t.Fatalf("first binding = %v", fr.row)
	}

	// Release the gate; the rest of the document must complete cleanly.
	close(s.slowGate)
	rows := 1
	for {
		_, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("remaining bindings: %v", err)
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("no bindings")
	}
	if !s.slowResponded.Load() {
		t.Fatal("slow endpoint never completed after the gate opened")
	}
}

// TestSparqlClientDisconnectCancelsSubQueries: dropping the /sparql
// connection mid-stream must propagate cancellation down to the endpoint
// sub-queries (the gated endpoint sees its request context die).
func TestSparqlClientDisconnectCancelsSubQueries(t *testing.T) {
	s := newStreamStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	form := url.Values{"query": {workload.Figure1Query(0)},
		"source": {rdf.AKTNS}, "target": s.targets}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/sparql", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the first streamed binding so the fan-out is demonstrably live
	// (the slow sub-query is in flight), then drop the connection.
	dec, err := srjson.NewStreamDecoder(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	for s.slowStarted.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	select {
	case <-s.slowCancelled:
		// The disconnect travelled: mediator handler ctx -> executor ->
		// endpoint client -> slow endpoint's request context.
	case <-time.After(10 * time.Second):
		t.Fatal("client disconnect did not cancel the in-flight endpoint sub-query")
	}
}

// TestMediatorQueryStreamAPI exercises Query directly: plan surfacing,
// limits cancelling upstream, and Summary bookkeeping.
func TestMediatorQueryStreamAPI(t *testing.T) {
	s := newStack(t)
	// Planner-selected targets surface the plan on the result.
	res, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := res.Bindings()
	if res.Plan() == nil || qs.Plan() == nil {
		t.Fatal("planner-selected query carries no plan")
	}
	n := 0
	for sol, err := range qs.Solutions() {
		if err != nil {
			t.Fatal(err)
		}
		if len(sol) == 0 {
			t.Fatal("empty solution")
		}
		n++
	}
	sum, err := qs.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no solutions streamed")
	}
	if sum.Solutions != nil {
		t.Fatal("streaming summary must not buffer solutions")
	}
	res.Close()

	// The buffered Collect convenience must agree with the streamed count.
	fr, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Solutions) != n {
		t.Fatalf("collected=%d streamed=%d", len(fr.Solutions), n)
	}

	// Limit: the stream ends after one solution and reports io.EOF, and
	// the summary does not misreport the deliberate cancellation of the
	// leftover work as upstream failure.
	res2, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS, Limit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Close()
	qs2 := res2.Bindings()
	if _, err := qs2.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := qs2.Next(); err != io.EOF {
		t.Fatalf("post-limit Next = %v", err)
	}
	sum2, err := qs2.Summary()
	if err != nil {
		t.Fatalf("limit summary error: %v", err)
	}
	if sum2.Partial {
		t.Fatalf("limit marked the result partial: %+v", sum2.PerDataset)
	}
	for _, da := range sum2.PerDataset {
		if da.Err != nil && !errors.Is(da.Err, federate.ErrStreamClosed) {
			t.Fatalf("limit reported an upstream failure: %v", da.Err)
		}
	}

	// Unknown targets keep their input positions in the summary.
	res3, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{"http://nope.example/void", workload.SotonVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum3, err := res3.Bindings().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum3.PerDataset) != 2 || sum3.PerDataset[0].Err == nil || sum3.PerDataset[1].Err != nil {
		t.Fatalf("perDataset = %+v", sum3.PerDataset)
	}
	if !sum3.Partial {
		t.Fatal("unknown target must mark the result partial")
	}
}
