package mediate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// streamStack wires a mediator to four endpoints over one universe: three
// fast Southampton replicas and one whose responses are gated by the
// test.
type streamStack struct {
	mediator *Mediator
	targets  []string
	// slowGate holds the fourth endpoint's response until closed.
	slowGate chan struct{}
	// slowResponded flips once the gated endpoint finished its response.
	slowResponded atomic.Bool
	// slowStarted counts requests that reached the gated endpoint.
	slowStarted atomic.Int64
	// slowCancelled flips when a gated request's context is cancelled
	// (client disconnect reaching the endpoint sub-query).
	slowCancelled chan struct{}
}

func newStreamStack(t testing.TB) *streamStack {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)
	s := &streamStack{
		slowGate:      make(chan struct{}),
		slowCancelled: make(chan struct{}),
	}

	fast := endpoint.NewServer("southampton", u.Southampton)
	var fastSrvs []*httptest.Server
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(fast)
		t.Cleanup(srv.Close)
		fastSrvs = append(fastSrvs, srv)
	}
	var cancelOnce atomic.Bool
	slowSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body before blocking: a Go HTTP server only notices a
		// client disconnect (and cancels r.Context()) once the request
		// body has been consumed.
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.slowStarted.Add(1)
		select {
		case <-s.slowGate:
		case <-r.Context().Done():
			if cancelOnce.CompareAndSwap(false, true) {
				close(s.slowCancelled)
			}
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		fast.ServeHTTP(w, r)
		s.slowResponded.Store(true)
	}))
	t.Cleanup(slowSrv.Close)

	dsKB := voidkb.NewKB()
	urls := append(append([]*httptest.Server(nil), fastSrvs...), slowSrv)
	for i, srv := range urls {
		uri := fmt.Sprintf("http://replica%d.example/void", i)
		if err := dsKB.Add(&voidkb.Dataset{
			URI: uri, Title: fmt.Sprintf("Replica %d", i),
			SPARQLEndpoint: srv.URL,
			URISpace:       workload.SotonURIPattern,
			Vocabularies:   []string{rdf.AKTNS},
		}); err != nil {
			t.Fatal(err)
		}
		s.targets = append(s.targets, uri)
	}
	alignKB := align.NewKB()
	if err := alignKB.Add(workload.AKT2KISTI()); err != nil {
		t.Fatal(err)
	}
	m := New(dsKB, alignKB, u.Coref)
	t.Cleanup(m.Close)
	m.RewriteFilters = true
	// A generous attempt deadline so only the test's gate (or a client
	// disconnect) can end the slow endpoint's request.
	m.ConfigureFederation(federate.Options{EndpointTimeout: time.Minute, MaxRetries: -1})
	s.mediator = m
	return s
}

// readToFirstRow advances a streaming /api/query response to its first
// row, returning the decoder positioned inside the rows array.
func readToFirstRow(t *testing.T, dec *json.Decoder) map[string]string {
	t.Helper()
	expectDelim := func(want json.Delim) {
		t.Helper()
		tok, err := dec.Token()
		if err != nil {
			t.Fatalf("token: %v", err)
		}
		if d, ok := tok.(json.Delim); !ok || d != want {
			t.Fatalf("expected %q, got %v", want, tok)
		}
	}
	expectDelim('{')
	for {
		tok, err := dec.Token()
		if err != nil {
			t.Fatalf("token: %v", err)
		}
		key, ok := tok.(string)
		if !ok {
			t.Fatalf("expected key, got %v", tok)
		}
		if key != "rows" {
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				t.Fatalf("skipping %s: %v", key, err)
			}
			continue
		}
		expectDelim('[')
		if !dec.More() {
			t.Fatal("rows array empty at first read")
		}
		var row map[string]string
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("first row: %v", err)
		}
		return row
	}
}

// TestAPIQueryStreamsFirstRowBeforeSlowEndpoint is the tentpole's
// end-to-end acceptance: a federated SELECT over four endpoints, one of
// which is stalled, must deliver its first solution over HTTP while the
// stalled endpoint still has not responded.
func TestAPIQueryStreamsFirstRowBeforeSlowEndpoint(t *testing.T) {
	s := newStreamStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	body, _ := json.Marshal(queryRequest{
		Query:   workload.Figure1Query(0),
		Source:  rdf.AKTNS,
		Targets: s.targets,
	})
	resp, err := http.Post(srv.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	type firstRow struct {
		row map[string]string
		// slowDone records whether the gated endpoint had responded at
		// the moment the first row was decoded.
		slowDone bool
	}
	dec := json.NewDecoder(resp.Body)
	got := make(chan firstRow, 1)
	go func() {
		row := readToFirstRow(t, dec)
		got <- firstRow{row: row, slowDone: s.slowResponded.Load()}
	}()
	var fr firstRow
	select {
	case fr = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no first row while the slow endpoint is stalled")
	}
	if fr.slowDone {
		t.Fatal("slow endpoint responded before the first row: response was buffered, not streamed")
	}
	if len(fr.row) == 0 {
		t.Fatalf("first row = %v", fr.row)
	}

	// Release the gate; the rest of the document must complete cleanly
	// with all four data sets answering.
	close(s.slowGate)
	var rest []json.RawMessage
	for dec.More() {
		var row json.RawMessage
		if err := dec.Decode(&row); err != nil {
			t.Fatalf("remaining rows: %v", err)
		}
		rest = append(rest, row)
	}
	// Consume "]" then the summary keys.
	if tok, err := dec.Token(); err != nil {
		t.Fatalf("rows end: %v %v", tok, err)
	}
	summary := map[string]json.RawMessage{}
	for {
		tok, err := dec.Token()
		if err != nil {
			t.Fatalf("summary: %v", err)
		}
		if d, ok := tok.(json.Delim); ok && d == '}' {
			break
		}
		key := tok.(string)
		var val json.RawMessage
		if err := dec.Decode(&val); err != nil {
			t.Fatalf("summary %s: %v", key, err)
		}
		summary[key] = val
	}
	if _, ok := summary["error"]; ok {
		t.Fatalf("stream error: %s", summary["error"])
	}
	var per []perDatasetJSON
	if err := json.Unmarshal(summary["perDataset"], &per); err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("perDataset = %+v", per)
	}
	for _, pd := range per {
		if pd.Error != "" {
			t.Fatalf("dataset %s failed: %s", pd.Dataset, pd.Error)
		}
	}
	if !s.slowResponded.Load() {
		t.Fatal("slow endpoint never completed after the gate opened")
	}
}

// TestAPIQueryClientDisconnectCancelsSubQueries: dropping the /api/query
// connection mid-stream must propagate cancellation down to the endpoint
// sub-queries (the gated endpoint sees its request context die).
func TestAPIQueryClientDisconnectCancelsSubQueries(t *testing.T) {
	s := newStreamStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	body, _ := json.Marshal(queryRequest{
		Query:   workload.Figure1Query(0),
		Source:  rdf.AKTNS,
		Targets: s.targets,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/api/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the first streamed row so the fan-out is demonstrably live
	// (the slow sub-query is in flight), then drop the connection.
	dec := json.NewDecoder(resp.Body)
	_ = readToFirstRow(t, dec)
	for s.slowStarted.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	select {
	case <-s.slowCancelled:
		// The disconnect travelled: mediator handler ctx -> executor ->
		// endpoint client -> slow endpoint's request context.
	case <-time.After(10 * time.Second):
		t.Fatal("client disconnect did not cancel the in-flight endpoint sub-query")
	}
}

// TestMediatorQueryStreamAPI exercises Query directly: plan surfacing,
// limits cancelling upstream, and Summary bookkeeping.
func TestMediatorQueryStreamAPI(t *testing.T) {
	s := newStack(t)
	// Planner-selected targets surface the plan on the stream.
	qs, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Plan() == nil {
		t.Fatal("planner-selected query carries no plan")
	}
	n := 0
	for sol, err := range qs.Solutions() {
		if err != nil {
			t.Fatal(err)
		}
		if len(sol) == 0 {
			t.Fatal("empty solution")
		}
		n++
	}
	res, err := qs.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no solutions streamed")
	}
	if res.Solutions != nil {
		t.Fatal("streaming summary must not buffer solutions")
	}
	qs.Close()

	// The deprecated wrapper must agree with the streamed count.
	fr, err := s.mediator.FederatedSelect(workload.Figure1Query(0), rdf.AKTNS, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Solutions) != n {
		t.Fatalf("wrapper=%d streamed=%d", len(fr.Solutions), n)
	}

	// Limit: the stream ends after one solution and reports io.EOF, and
	// the summary does not misreport the deliberate cancellation of the
	// leftover work as upstream failure.
	qs2, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS, Limit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer qs2.Close()
	if _, err := qs2.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := qs2.Next(); err != io.EOF {
		t.Fatalf("post-limit Next = %v", err)
	}
	res2, err := qs2.Summary()
	if err != nil {
		t.Fatalf("limit summary error: %v", err)
	}
	if res2.Partial {
		t.Fatalf("limit marked the result partial: %+v", res2.PerDataset)
	}
	for _, da := range res2.PerDataset {
		if da.Err != nil && !errors.Is(da.Err, federate.ErrStreamClosed) {
			t.Fatalf("limit reported an upstream failure: %v", da.Err)
		}
	}

	// Unknown targets keep their input positions in the summary.
	qs3, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{"http://nope.example/void", workload.SotonVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := qs3.drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.PerDataset) != 2 || res3.PerDataset[0].Err == nil || res3.PerDataset[1].Err != nil {
		t.Fatalf("perDataset = %+v", res3.PerDataset)
	}
	if !res3.Partial {
		t.Fatal("unknown target must mark the result partial")
	}
}
