package mediate

import (
	"fmt"
	"html/template"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"sparqlrw/internal/obs"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/view"
)

// DebugHandler bundles the mediator's operator-facing debug surface for
// the -debug-addr listener: the net/http/pprof profiles plus a
// dependency-free HTML dashboard at /debug/dashboard rendering the
// recent traces as waterfalls and the endpoint health table. It is
// served on a separate listener so production traffic on the main
// address never reaches the profilers.
func DebugHandler(m *Mediator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/dashboard", func(w http.ResponseWriter, r *http.Request) {
		serveDashboard(m, w, r)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/debug/dashboard", http.StatusFound)
	})
	return mux
}

// dashboardTraces bounds how many recent traces the dashboard renders.
const dashboardTraces = 20

// spanRow is one flattened waterfall row: a span positioned on its
// trace's time axis as CSS percentages.
type spanRow struct {
	Name       string
	SpanID     string
	Depth      int
	Indent     int // Depth * indent step, in px
	OffsetPct  float64
	WidthPct   float64
	DurationMS float64
	Detail     string // compact attr summary
	Failed     bool
}

// traceView is one waterfall: the trace header plus its flattened rows
// and, when the query recorded operator profiles, its EXPLAIN ANALYZE
// table.
type traceView struct {
	ID         string
	Start      string
	DurationMS float64
	Form       string
	Failed     bool
	Rows       []spanRow
	Analyze    []analyzeRow
}

// analyzeRow is one flattened operator-profile row for the dashboard's
// EXPLAIN ANALYZE panel.
type analyzeRow struct {
	Op      string
	Indent  int // px
	Stage   string
	Est     string
	Actual  string
	QErr    string
	RowsOut string
	TimeMS  float64
}

// analyzeRows flattens an operator tree into indented table rows.
func analyzeRows(ns []*AnalyzeNode, depth int) []analyzeRow {
	var out []analyzeRow
	for _, n := range ns {
		out = append(out, analyzeRow{
			Op:      n.Op,
			Indent:  depth * 14,
			Stage:   fmtInt(n.Stage),
			Est:     fmtInt(n.EstimatedRows),
			Actual:  fmtInt(n.ActualRows),
			QErr:    fmtQ(n.QError),
			RowsOut: fmtInt(n.RowsOut),
			TimeMS:  n.DurationMS,
		})
		out = append(out, analyzeRows(n.Children, depth+1)...)
	}
	return out
}

// healthRow adapts one endpoint's health snapshot for the template.
type healthRow struct {
	obs.EndpointHealth
	ScorePct float64
	ScoreHue int // 0 (red) .. 120 (green)
}

// servingView is the dashboard's serving-tier panel: per-tenant
// admission counters, the result cache and the hedging counters.
type servingView struct {
	Tenants     []serve.TenantStats
	Cache       *serve.CacheStats
	CacheHitPct float64
	Hedges      uint64
	HedgeWins   uint64
}

type dashboardData struct {
	Health  []healthRow
	Serving *servingView
	Views   *view.Stats
	Traces  []traceView
	Audited int
}

func serveDashboard(m *Mediator, w http.ResponseWriter, r *http.Request) {
	data := dashboardData{}
	if m.Serve != nil {
		ss := m.Serve.Stats()
		fs := m.Exec.Stats()
		sv := &servingView{
			Tenants:   ss.Tenants,
			Cache:     ss.Cache,
			Hedges:    fs.Hedges,
			HedgeWins: fs.HedgeWins,
		}
		if ss.Cache != nil {
			sv.CacheHitPct = ss.Cache.HitRate * 100
		}
		data.Serving = sv
	}
	if m.Views != nil {
		vs := m.Views.Stats()
		data.Views = &vs
	}
	for _, h := range m.Obs.Health.Snapshot() {
		data.Health = append(data.Health, healthRow{
			EndpointHealth: h,
			ScorePct:       h.Score * 100,
			ScoreHue:       int(h.Score * 120),
		})
	}
	if m.Obs.Recorder != nil {
		data.Audited = len(m.Obs.Recorder.List(0))
	}
	for _, t := range m.Obs.Ring.Recent(dashboardTraces) {
		data.Traces = append(data.Traces, waterfall(t.View()))
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashboardTemplate.Execute(w, data)
}

// waterfall flattens a trace's span tree into positioned rows.
func waterfall(v obs.TraceJSON) traceView {
	tv := traceView{
		ID:         v.ID,
		Start:      v.Start.Format("15:04:05.000"),
		DurationMS: v.DurationMS,
	}
	if f, ok := v.Root.Attrs["form"].(string); ok {
		tv.Form = f
	}
	if _, ok := v.Root.Attrs["error"]; ok {
		tv.Failed = true
	}
	total := v.DurationMS
	if total <= 0 {
		total = 1
	}
	var walk func(s obs.SpanJSON, depth int)
	walk = func(s obs.SpanJSON, depth int) {
		row := spanRow{
			Name:       s.Name,
			SpanID:     s.SpanID,
			Depth:      depth,
			Indent:     depth * 14,
			OffsetPct:  clampPct(s.StartMS / total * 100),
			WidthPct:   clampPct(s.DurationMS / total * 100),
			DurationMS: s.DurationMS,
			Detail:     attrSummary(s.Attrs),
		}
		if row.WidthPct < 0.5 {
			row.WidthPct = 0.5
		}
		if _, ok := s.Attrs["error"]; ok {
			row.Failed = true
		}
		tv.Rows = append(tv.Rows, row)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(v.Root, 0)
	tv.Analyze = analyzeRows(buildAnalyze(v).Operators, 0)
	return tv
}

func clampPct(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

// attrSummary renders span attributes as a compact, deterministic
// "k=v k=v" string for the row's detail column.
func attrSummary(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	s := strings.Join(parts, " ")
	if len(s) > 160 {
		s = s[:157] + "..."
	}
	return s
}

var dashboardTemplate = template.Must(template.New("dashboard").Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>sparqlrw dashboard</title>
<meta http-equiv="refresh" content="5">
<style>
  body { font: 13px/1.45 system-ui, sans-serif; margin: 1.5rem; color: #1a1a2e; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #e0e0e8; }
  th { font-weight: 600; color: #555; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .scorebar { display: inline-block; width: 90px; height: 9px; background: #eee; border-radius: 4px; vertical-align: middle; margin-right: .4rem; }
  .scorebar i { display: block; height: 100%; border-radius: 4px; }
  .trace { margin: .9rem 0; border: 1px solid #e0e0e8; border-radius: 6px; padding: .5rem .8rem; }
  .trace h3 { margin: 0 0 .4rem; font-size: .85rem; font-weight: 600; }
  .trace h3 code { color: #666; font-weight: 400; }
  .row { display: flex; align-items: center; height: 19px; font-size: .78rem; }
  .row .label { flex: 0 0 220px; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .row .lane { flex: 1; position: relative; height: 11px; background: #f4f4f8; border-radius: 3px; }
  .row .bar { position: absolute; top: 0; height: 100%; background: #5b8def; border-radius: 3px; min-width: 2px; }
  .row .bar.failed { background: #d9534f; }
  .row .dur { flex: 0 0 80px; text-align: right; font-variant-numeric: tabular-nums; color: #555; }
  .detail { color: #888; font-size: .72rem; margin-left: 220px; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
  .failedtag { color: #d9534f; font-weight: 600; }
  table.analyze { margin-top: .5rem; font-size: .76rem; width: auto; min-width: 60%; }
  table.analyze th, table.analyze td { padding: .12rem .55rem; }
  .muted { color: #888; }
</style>
</head>
<body>
<h1>sparqlrw mediator dashboard</h1>
<p class="muted">auto-refreshes every 5s &middot; traces: newest first &middot; audited queries on disk: {{.Audited}}</p>

<h2>Endpoint health</h2>
{{if .Health}}
<table>
<tr><th>endpoint</th><th>score</th><th class="num">p50 ms</th><th class="num">p95 ms</th><th class="num">error rate</th><th>breaker</th><th class="num">attempts</th><th class="num">probes</th><th>last error</th></tr>
{{range .Health}}
<tr>
  <td><code>{{.Endpoint}}</code></td>
  <td><span class="scorebar"><i style="width:{{printf "%.0f" .ScorePct}}%;background:hsl({{.ScoreHue}},65%,48%)"></i></span>{{printf "%.3f" .Score}}</td>
  <td class="num">{{printf "%.1f" .P50MS}}</td>
  <td class="num">{{printf "%.1f" .P95MS}}</td>
  <td class="num">{{printf "%.3f" .ErrorRate}}</td>
  <td>{{.Breaker}}</td>
  <td class="num">{{.Attempts}}</td>
  <td class="num">{{.Probes}}</td>
  <td class="muted">{{.LastError}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="muted">no endpoints known yet</p>{{end}}

{{with .Serving}}
<h2>Serving tier</h2>
<table>
<tr><th>tenant</th><th class="num">in flight</th><th class="num">waiting</th><th class="num">admitted</th><th class="num">rejected</th><th class="num">rate/s</th><th class="num">max conc</th><th>policy</th></tr>
{{range .Tenants}}
<tr>
  <td><code>{{.Tenant}}</code></td>
  <td class="num">{{.InFlight}}</td>
  <td class="num">{{.Waiting}}</td>
  <td class="num">{{.Admitted}}</td>
  <td class="num">{{.Rejected}}</td>
  <td class="num">{{if .RatePerSec}}{{printf "%.1f" .RatePerSec}}{{else}}&infin;{{end}}</td>
  <td class="num">{{if .MaxConcurrent}}{{.MaxConcurrent}}{{else}}&infin;{{end}}</td>
  <td>{{if .Restricted}}restricted{{else}}<span class="muted">full access</span>{{end}}</td>
</tr>
{{end}}
</table>
<p class="muted">
{{if .Cache}}result cache: {{.Cache.Entries}} entries &middot; {{.Cache.Hits}} hits / {{.Cache.Misses}} misses ({{printf "%.1f" $.Serving.CacheHitPct}}% hit ratio) &middot; {{.Cache.Evictions}} evictions &middot; {{.Cache.Invalidations}} invalidations{{else}}result cache disabled{{end}}
 &middot; hedged dispatches: {{.Hedges}} ({{.HedgeWins}} backup wins)
</p>
{{end}}

{{with .Views}}
<h2>Materialized views</h2>
<p class="muted">{{.Hits}} hits / {{.Misses}} misses &middot; {{.Refreshes}} refreshes &middot; {{.Triples}} triples materialized &middot; {{.MinedShapes}} shapes mined</p>
{{if .Views}}
<table>
<tr><th>view</th><th>covered shape</th><th>data sets</th><th>state</th><th class="num">triples</th><th class="num">hits</th><th>refreshed</th></tr>
{{range .Views}}
<tr>
  <td><code>{{.ID}}</code></td>
  <td><code>{{range $i, $p := .Patterns}}{{if $i}} . {{end}}{{$p}}{{end}}</code></td>
  <td>{{range $i, $d := .Datasets}}{{if $i}}, {{end}}<code>{{$d}}</code>{{end}}</td>
  <td>{{if eq .State "ready"}}{{.State}}{{else}}<span class="failedtag">{{.State}}</span>{{end}}</td>
  <td class="num">{{.Triples}}</td>
  <td class="num">{{.Hits}}</td>
  <td class="muted">{{.Refreshed.Format "15:04:05"}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="muted">no views materialized yet &mdash; repeat a cross-vocabulary join</p>{{end}}
{{end}}

<h2>Recent traces</h2>
{{if .Traces}}
{{range .Traces}}
<div class="trace">
  <h3>{{if .Form}}{{.Form}} {{end}}query <code>{{.ID}}</code> &middot; {{printf "%.2f" .DurationMS}} ms &middot; {{.Start}}{{if .Failed}} &middot; <span class="failedtag">failed</span>{{end}}</h3>
  {{range .Rows}}
  <div class="row">
    <span class="label" style="padding-left:{{.Indent}}px">{{.Name}}</span>
    <span class="lane"><span class="bar{{if .Failed}} failed{{end}}" style="left:{{printf "%.2f" .OffsetPct}}%;width:{{printf "%.2f" .WidthPct}}%"></span></span>
    <span class="dur">{{printf "%.2f" .DurationMS}} ms</span>
  </div>
  {{if .Detail}}<div class="detail">{{.Detail}}</div>{{end}}
  {{end}}
  {{if .Analyze}}
  <table class="analyze">
  <tr><th>operator</th><th class="num">stage</th><th class="num">est</th><th class="num">actual</th><th class="num">q-err</th><th class="num">rows out</th><th class="num">ms</th></tr>
  {{range .Analyze}}
  <tr><td style="padding-left:{{.Indent}}px"><code>{{.Op}}</code></td><td class="num">{{.Stage}}</td><td class="num">{{.Est}}</td><td class="num">{{.Actual}}</td><td class="num">{{.QErr}}</td><td class="num">{{.RowsOut}}</td><td class="num">{{printf "%.2f" .TimeMS}}</td></tr>
  {{end}}
  </table>
  {{end}}
</div>
{{end}}
{{else}}<p class="muted">no finished traces yet &mdash; run a query against /sparql</p>{{end}}
</body>
</html>
`))
