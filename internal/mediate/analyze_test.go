package mediate

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/workload"
)

// opsByKind flattens an analyze tree into a map from operator kind to
// its nodes.
func opsByKind(ns []*AnalyzeNode) map[string][]*AnalyzeNode {
	out := map[string][]*AnalyzeNode{}
	var walk func(ns []*AnalyzeNode)
	walk = func(ns []*AnalyzeNode) {
		for _, n := range ns {
			out[n.Op] = append(out[n.Op], n)
			walk(n.Children)
		}
	}
	walk(ns)
	return out
}

// TestExplainAnalyzeSRJ is the tentpole's protocol acceptance test: a
// cross-vocabulary federated SELECT with explain=analyze returns the
// results plus an "analyze" member whose operator tree carries estimated
// vs actual cardinalities and a q-error on every fragment operator, and
// the same calibration lands in sparqlrw_estimate_qerror on /metrics.
func TestExplainAnalyzeSRJ(t *testing.T) {
	s := newCrossVocabStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{
		"query":   {workload.CrossVocabularyQuery(2)},
		"source":  {rdf.AKTNS},
		"explain": {"analyze"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sparql = %d: %s", resp.StatusCode, body)
	}

	var doc struct {
		Results struct {
			Bindings []json.RawMessage `json:"bindings"`
		} `json:"results"`
		Analyze *Analyze `json:"analyze"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("response does not parse: %v\n%s", err, body)
	}
	if len(doc.Results.Bindings) == 0 {
		t.Fatal("explain=analyze returned no bindings")
	}
	a := doc.Analyze
	if a == nil || a.TraceID == "" || a.TraceID != resp.Header.Get("X-Trace-Id") {
		t.Fatalf("analyze member missing or unnamed: %+v", a)
	}
	if !strings.Contains(a.Query, "SELECT") {
		t.Fatalf("analyze lacks the query text: %+v", a)
	}

	ops := opsByKind(a.Operators)
	for _, kind := range []string{"source-selection", "decompose", "fragment", "distinct-limit"} {
		if len(ops[kind]) == 0 {
			t.Fatalf("no %q operator in analyze tree: %s", kind, body)
		}
	}
	if len(ops["bound-join"])+len(ops["hash-join"]) == 0 {
		t.Fatalf("no join operator in analyze tree: %s", body)
	}
	// Every fragment and join operator carries est/actual/q-error.
	profiled := append(append(append([]*AnalyzeNode{}, ops["fragment"]...),
		ops["bound-join"]...), ops["hash-join"]...)
	for _, n := range profiled {
		if n.EstimatedRows == nil || n.ActualRows == nil || n.QError == nil {
			t.Fatalf("%s operator lacks cardinalities: est=%v actual=%v qerr=%v",
				n.Op, n.EstimatedRows, n.ActualRows, n.QError)
		}
		if *n.QError < 1 {
			t.Fatalf("%s q-error %v < 1", n.Op, *n.QError)
		}
		if n.RowsOut == nil {
			t.Fatalf("%s operator lacks rowsOut", n.Op)
		}
	}
	// Endpoint dispatches nest under their operators.
	if len(ops["subquery"]) == 0 {
		t.Fatalf("no subquery dispatch nodes in analyze tree: %s", body)
	}

	// The fragment observations reached the calibration histogram.
	fams := scrapeMetrics(t, srv.URL)
	fam, ok := fams["sparqlrw_estimate_qerror"]
	if !ok {
		t.Fatal("sparqlrw_estimate_qerror missing from /metrics")
	}
	if v, found := sampleValue(fam, "sparqlrw_estimate_qerror_count", nil); !found || v < 1 {
		t.Fatalf("sparqlrw_estimate_qerror_count = %v (found %v), want >= 1", v, found)
	}
	if v, found := sampleValue(fam, "sparqlrw_estimate_qerror_count",
		map[string]string{"dataset": workload.SotonVoidURI}); !found || v < 1 {
		t.Fatalf("no per-dataset calibration sample for %s: %v", workload.SotonVoidURI, v)
	}
}

// TestExplainAnalyzeNDJSON pins the line-oriented trailer: bindings
// first, one final {"analyze": ...} line.
func TestExplainAnalyzeNDJSON(t *testing.T) {
	s := newCrossVocabStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/sparql",
		strings.NewReader(url.Values{
			"query":   {workload.CrossVocabularyQuery(1)},
			"source":  {rdf.AKTNS},
			"explain": {"analyze"},
		}.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	last := lines[len(lines)-1]
	var trailer struct {
		Analyze *Analyze `json:"analyze"`
	}
	if err := json.Unmarshal(last, &trailer); err != nil || trailer.Analyze == nil {
		t.Fatalf("final NDJSON line is not an analyze trailer: %v\n%s", err, last)
	}
	if len(trailer.Analyze.Operators) == 0 {
		t.Fatalf("analyze trailer has no operators: %s", last)
	}
}

// TestAnalyzeEndpoint drives GET /api/analyze/{id}: the default render
// is the human-readable operator table, ?format=json returns the
// document, and unknown ids are JSON 404s.
func TestAnalyzeEndpoint(t *testing.T) {
	s := newCrossVocabStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{
		"query":  {workload.CrossVocabularyQuery(2)},
		"source": {rdf.AKTNS},
	})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("no X-Trace-Id on the query response")
	}

	tr, err := http.Get(srv.URL + "/api/analyze/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/analyze/{id} = %d: %s", tr.StatusCode, text)
	}
	if ct := tr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
	for _, want := range []string{"EXPLAIN ANALYZE", traceID, "fragment", "q-err"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("analyze text lacks %q:\n%s", want, text)
		}
	}

	jr, err := http.Get(srv.URL + "/api/analyze/" + traceID + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var a Analyze
	err = json.NewDecoder(jr.Body).Decode(&a)
	jr.Body.Close()
	if err != nil || jr.StatusCode != http.StatusOK || a.TraceID != traceID {
		t.Fatalf("GET /api/analyze?format=json = %d, %+v, err %v", jr.StatusCode, a, err)
	}
	if len(opsByKind(a.Operators)["fragment"]) == 0 {
		t.Fatalf("JSON analyze has no fragment operators: %+v", a.Operators)
	}

	missing, err := http.Get(srv.URL + "/api/analyze/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/analyze/<bogus> = %d, want 404", missing.StatusCode)
	}
}

// TestQueryTextStoredOncePerTrace is the ring-memory regression test:
// the query string lives exactly once in a finished trace — on the root
// span — no matter how many operator and dispatch spans the execution
// recorded.
func TestQueryTextStoredOncePerTrace(t *testing.T) {
	s := newCrossVocabStack(t)

	// A distinctive marker embedded as a comment survives into the trace's
	// recorded query text without matching anything else in the span tree.
	const marker = "ring-dedupe-marker-7f3a"
	query := "# " + marker + "\n" + workload.CrossVocabularyQuery(2)

	res, err := s.mediator.Query(context.Background(), QueryRequest{Query: query, SourceOnt: rdf.AKTNS})
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range res.Bindings().Solutions() {
		if err != nil {
			t.Fatal(err)
		}
	}
	res.Close()

	traces := s.mediator.Obs.Ring.Recent(1)
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(traces))
	}
	data, err := json.Marshal(traces[0].View())
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(data, []byte(marker)); got != 1 {
		t.Fatalf("query text appears %d times in the serialized trace, want exactly 1 (root only):\n%s", got, data)
	}
	// And it is on the root, where /api/analyze picks it up.
	if a := buildAnalyze(traces[0].View()); !strings.Contains(a.Query, marker) {
		t.Fatalf("analyze document lost the root query text: %+v", a)
	}
}
