package mediate

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// headerCapture records the trace-propagation headers of every request
// reaching a stub endpoint.
type headerCapture struct {
	mu      sync.Mutex
	parents []string
	states  []string
}

func (hc *headerCapture) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hc.mu.Lock()
		if tp := r.Header.Get("traceparent"); tp != "" {
			hc.parents = append(hc.parents, tp)
			hc.states = append(hc.states, r.Header.Get("tracestate"))
		}
		hc.mu.Unlock()
		next.ServeHTTP(w, r)
	})
}

func (hc *headerCapture) captured() ([]string, []string) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return append([]string(nil), hc.parents...), append([]string(nil), hc.states...)
}

// tracingStack is newStack with header-capturing stub endpoints and an
// in-test OTLP collector, the fixture for the end-to-end trace
// continuity test.
type tracingStack struct {
	u         *workload.Universe
	mediator  *Mediator
	capture   *headerCapture
	endpoints []string // stub endpoint base URLs

	collectorMu sync.Mutex
	collected   [][]byte
}

func newTracingStack(t testing.TB, extra ...Option) *tracingStack {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)
	ts := &tracingStack{u: u, capture: &headerCapture{}}

	sotonSrv := httptest.NewServer(ts.capture.wrap(endpoint.NewServer("southampton", u.Southampton)))
	t.Cleanup(sotonSrv.Close)
	kistiSrv := httptest.NewServer(ts.capture.wrap(endpoint.NewServer("kisti", u.KISTI)))
	t.Cleanup(kistiSrv.Close)
	ts.endpoints = []string{sotonSrv.URL, kistiSrv.URL}

	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		ts.collectorMu.Lock()
		ts.collected = append(ts.collected, body)
		ts.collectorMu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(collector.Close)

	dsKB := voidkb.NewKB()
	if err := dsKB.Add(&voidkb.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: sotonSrv.URL,
		URISpace:       workload.SotonURIPattern,
		Vocabularies:   []string{rdf.AKTNS},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dsKB.Add(&voidkb.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kistiSrv.URL,
		URISpace:       workload.KistiURIPattern,
		Vocabularies:   []string{rdf.KISTINS},
	}); err != nil {
		t.Fatal(err)
	}
	alignKB := align.NewKB()
	if err := alignKB.Add(workload.AKT2KISTI()); err != nil {
		t.Fatal(err)
	}

	opts := append([]Option{
		WithRewriteFilters(true),
		WithObservability(obs.Options{
			OTLPEndpoint: collector.URL,
			TraceSample:  1,
		}),
	}, extra...)
	ts.mediator = New(dsKB, alignKB, u.Coref, opts...)
	t.Cleanup(ts.mediator.Close)
	return ts
}

func (ts *tracingStack) exports() [][]byte {
	ts.collectorMu.Lock()
	defer ts.collectorMu.Unlock()
	return append([][]byte(nil), ts.collected...)
}

// TestEndToEndTraceContinuity is the tentpole's acceptance test: an
// inbound traceparent's trace id reappears (with a fresh span id) on the
// sub-queries hitting the stub endpoints, the response names the same
// trace in X-Trace-Id, the finished trace exports to the OTLP collector
// as a valid span payload under that trace id, and /api/health reports a
// score for every configured endpoint.
func TestEndToEndTraceContinuity(t *testing.T) {
	ts := newTracingStack(t)
	srv := httptest.NewServer(Handler(ts.mediator))
	defer srv.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const callerSpan = "00f067aa0ba902b7"
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/sparql",
		strings.NewReader(url.Values{"query": {workload.Figure1Query(2)}}.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("traceparent", "00-"+traceID+"-"+callerSpan+"-01")
	req.Header.Set("tracestate", "vendor=rollup")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sparql = %d", resp.StatusCode)
	}

	// The response correlates to the caller's trace.
	if got := resp.Header.Get("X-Trace-Id"); got != traceID {
		t.Fatalf("X-Trace-Id = %q, want the inbound trace id %q", got, traceID)
	}

	// Every sub-query attempt carried a child traceparent: same trace id,
	// a fresh span id, the sampled flag, and the tracestate passed through.
	parents, states := ts.capture.captured()
	if len(parents) == 0 {
		t.Fatal("no traceparent reached the stub endpoints")
	}
	for i, tp := range parents {
		tc, ok := obs.ParseTraceparent(tp)
		if !ok {
			t.Fatalf("endpoint received malformed traceparent %q", tp)
		}
		if tc.TraceID != traceID {
			t.Fatalf("endpoint traceparent trace id = %s, want %s", tc.TraceID, traceID)
		}
		if tc.SpanID == callerSpan {
			t.Fatalf("endpoint traceparent reused the caller's span id %s", callerSpan)
		}
		if !tc.Sampled {
			t.Fatalf("endpoint traceparent %q lost the sampled flag", tp)
		}
		if states[i] != "vendor=rollup" {
			t.Fatalf("tracestate = %q, want pass-through", states[i])
		}
	}

	// Closing the mediator flushes the exporter; the collector must hold a
	// valid OTLP payload whose spans carry our trace id and chain to the
	// caller's span.
	ts.mediator.Close()
	var spans []map[string]any
	for _, payload := range ts.exports() {
		var req struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []map[string]any `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.Unmarshal(payload, &req); err != nil {
			t.Fatalf("OTLP payload is not valid JSON: %v", err)
		}
		for _, rs := range req.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				spans = append(spans, ss.Spans...)
			}
		}
	}
	if len(spans) == 0 {
		t.Fatal("no spans reached the OTLP collector")
	}
	rootSeen := false
	for _, s := range spans {
		if s["traceId"] != traceID {
			t.Fatalf("exported span trace id = %v, want %s", s["traceId"], traceID)
		}
		if s["name"] == "query" {
			rootSeen = true
			if s["parentSpanId"] != callerSpan {
				t.Fatalf("root span parent = %v, want the caller's span %s", s["parentSpanId"], callerSpan)
			}
		}
	}
	if !rootSeen {
		t.Fatal("exported payload misses the root query span")
	}

	// /api/health scores every configured endpoint.
	hresp, err := http.Get(srv.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health []obs.EndpointHealth
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	byURL := map[string]obs.EndpointHealth{}
	for _, h := range health {
		byURL[h.Endpoint] = h
	}
	for _, ep := range ts.endpoints {
		h, ok := byURL[ep]
		if !ok {
			t.Fatalf("/api/health misses configured endpoint %s (got %v)", ep, health)
		}
		if h.Score <= 0 || h.Score > 1 {
			t.Fatalf("endpoint %s score = %v, want in (0,1]", ep, h.Score)
		}
		if h.Attempts == 0 {
			t.Fatalf("endpoint %s records no attempts after a federated query", ep)
		}
	}
}

// TestTraceIDMintedWithoutTraceparent pins the no-header path: the
// mediator mints a fresh 32-hex trace id and still propagates it to the
// endpoints.
func TestTraceIDMintedWithoutTraceparent(t *testing.T) {
	ts := newTracingStack(t)
	srv := httptest.NewServer(Handler(ts.mediator))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {workload.Figure1Query(2)}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if len(id) != 32 {
		t.Fatalf("minted X-Trace-Id = %q, want 32 hex chars", id)
	}
	parents, _ := ts.capture.captured()
	if len(parents) == 0 {
		t.Fatal("no traceparent reached the stub endpoints")
	}
	for _, tp := range parents {
		tc, ok := obs.ParseTraceparent(tp)
		if !ok || tc.TraceID != id {
			t.Fatalf("endpoint traceparent %q does not carry minted trace id %s", tp, id)
		}
	}
}

// TestXTraceIdOnErrorResponses is the satellite regression: protocol
// error responses (400 malformed query, 406 unacceptable Accept) carry
// X-Trace-Id too, so failed calls are correlatable.
func TestXTraceIdOnErrorResponses(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	for _, tc := range []struct {
		name   string
		query  string
		accept string
		status int
	}{
		{"malformed query 400", "SELECT WHERE {", "", http.StatusBadRequest},
		{"unacceptable accept 406", workload.Figure1Query(0), "application/pdf;q=1", http.StatusNotAcceptable},
		{"missing query 400", "", "", http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			form := url.Values{}
			if tc.query != "" {
				form.Set("query", tc.query)
			}
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/sparql", strings.NewReader(form.Encode()))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
			req.Header.Set("traceparent", "00-"+traceID+"-b7ad6b7169203331-01")
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if got := resp.Header.Get("X-Trace-Id"); got != traceID {
				t.Fatalf("error response X-Trace-Id = %q, want %q", got, traceID)
			}
		})
	}
}

// TestAuditEndpointRecordsSlowQueries drives the flight recorder through
// the HTTP surface: with a sub-nanosecond slow threshold every query
// audits, /api/audit lists it newest-first and resolves it by trace id.
func TestAuditEndpointRecordsSlowQueries(t *testing.T) {
	dir := t.TempDir()
	ts := newTracingStack(t, WithObservability(obs.Options{
		SlowQuery: time.Nanosecond,
		AuditDir:  dir,
	}))
	srv := httptest.NewServer(Handler(ts.mediator))
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {workload.Figure1Query(2)}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")

	aresp, err := http.Get(srv.URL + "/api/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/audit = %d", aresp.StatusCode)
	}
	var page struct {
		Total   int               `json:"total"`
		Records []obs.AuditRecord `json:"records"`
	}
	if err := json.NewDecoder(aresp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	if len(page.Records) == 0 || page.Total == 0 {
		t.Fatalf("no audited queries listed (total %d)", page.Total)
	}
	rec := page.Records[0]
	if rec.TraceID != traceID {
		t.Fatalf("audited trace id = %s, want %s", rec.TraceID, traceID)
	}
	if !rec.Slow || rec.Query == "" || rec.Trace == nil {
		t.Fatalf("audit record incomplete: %+v", rec)
	}

	// Lookup by trace id.
	oneResp, err := http.Get(srv.URL + "/api/audit?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer oneResp.Body.Close()
	if oneResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/audit?trace= = %d", oneResp.StatusCode)
	}
	var one obs.AuditRecord
	if err := json.NewDecoder(oneResp.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.TraceID != traceID {
		t.Fatalf("lookup returned trace %s, want %s", one.TraceID, traceID)
	}
}

// TestAuditEndpointDisabled pins the no-recorder path: /api/audit is a
// JSON 404 when the mediator runs without -audit-dir.
func TestAuditEndpointDisabled(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/audit = %d, want 404", resp.StatusCode)
	}
}

// TestStatsIncludesHealth pins Mediator.Stats carrying the health
// snapshot the hedging work will consume.
func TestStatsIncludesHealth(t *testing.T) {
	ts := newTracingStack(t)
	if _, err := federatedSelect(ts.mediator, workload.Figure1Query(1), rdf.AKTNS, nil); err != nil {
		t.Fatal(err)
	}
	st := ts.mediator.Stats()
	if len(st.Health) < len(ts.endpoints) {
		t.Fatalf("Stats().Health has %d entries, want >= %d", len(st.Health), len(ts.endpoints))
	}
}

// TestDashboardRenders drives the /debug/dashboard page: after a query
// it must render the health table and at least one trace waterfall.
func TestDashboardRenders(t *testing.T) {
	ts := newTracingStack(t)
	if _, err := federatedSelect(ts.mediator, workload.Figure1Query(1), rdf.AKTNS, nil); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(DebugHandler(ts.mediator))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/dashboard = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{"Endpoint health", "Recent traces", ts.endpoints[0], `class="row"`} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard misses %q;\npage: %.2000s", want, page)
		}
	}

	// pprof still serves on the same listener.
	presp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", presp.StatusCode)
	}
}

// TestHealthProbes drives StartHealthProbes against the stub endpoints:
// probe samples must land in the health snapshot.
func TestHealthProbes(t *testing.T) {
	ts := newTracingStack(t)
	stop := ts.mediator.StartHealthProbes(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		probed := 0
		for _, h := range ts.mediator.Obs.Health.Snapshot() {
			if h.Probes > 0 {
				probed++
			}
		}
		if probed >= len(ts.endpoints) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoints never accumulated probe samples")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
}
