package mediate

import (
	"context"
	"fmt"
	"io"
	"iter"
	"strconv"

	"sparqlrw/internal/decompose"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/serve"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/voidkb"
)

// QueryRequest describes one federated query for Mediator.Query: the
// query text (any form — SELECT, ASK, CONSTRUCT or DESCRIBE) plus the
// execution options.
type QueryRequest struct {
	// Query is the query text, written against SourceOnt.
	Query string
	// SourceOnt is the source ontology namespace the query is written
	// in. Empty means "guess it from the query's vocabulary"
	// (GuessSourceOntology), the behaviour the web UI relies on.
	SourceOnt string
	// Targets names the data sets to query. Empty means the voiD-driven
	// planner selects, shards and orders them (the plan is surfaced on
	// the result).
	Targets []string
	// Limit caps the result stream: merged solutions for SELECT, triples
	// for CONSTRUCT/DESCRIBE. Reaching it cancels the remaining upstream
	// work. 0 means no limit; ASK ignores it.
	Limit int
	// Tenant is the serving-tier tenant executing the query (nil: the
	// anonymous tenant, unrestricted unless configured otherwise). Its
	// policy is injected into the query algebra before planning, and its
	// dataset allowlist prunes target selection.
	Tenant *serve.Tenant
}

// Result is the form-polymorphic outcome of Mediator.Query: a tagged
// union discriminated by Form. Exactly one payload accessor is non-zero —
// Bindings for SELECT (a lazy solution stream), Bool for ASK, Graph for
// CONSTRUCT and DESCRIBE (a lazy triple stream). Always Close a Result;
// closing tears down whichever stream is live.
type Result struct {
	form   sparql.Form
	sel    *QueryStream
	ask    bool
	askSum *FederatedResult
	graph  *GraphStream
	pl     *plan.Plan
	dec    *decompose.Decomposition
	qo     *queryObs
}

// Form reports which query form executed, and with it which payload
// accessor carries the result.
func (r *Result) Form() sparql.Form { return r.form }

// Bindings returns the lazy solution stream of a SELECT result (nil for
// every other form).
func (r *Result) Bindings() *QueryStream { return r.sel }

// Bool returns the ASK outcome (false for every other form).
func (r *Result) Bool() bool { return r.ask }

// Graph returns the lazy triple stream of a CONSTRUCT or DESCRIBE result
// (nil for every other form).
func (r *Result) Graph() *GraphStream { return r.graph }

// Plan reports the planner's decisions when targets were auto-selected
// (nil for explicit-target queries, and for DESCRIBE without a WHERE
// clause, which needs no planning).
func (r *Result) Plan() *plan.Plan { return r.pl }

// Decomposition reports the per-BGP decomposition when the query ran on
// the multi-source path (nil otherwise).
func (r *Result) Decomposition() *decompose.Decomposition { return r.dec }

// Trace returns the query's span tree: every pipeline stage's timings and
// annotations (rewrite cache hits, per-endpoint attempts, retries,
// time-to-first-solution). The trace is finished — and recorded in the
// mediator's trace ring — when the Result is closed, unless the query's
// context already carried a trace, in which case its starter owns it.
func (r *Result) Trace() *obs.Trace {
	if r.qo == nil {
		return nil
	}
	return r.qo.trace
}

// Summary reports the fan-out's outcome (consuming whatever remains of
// the live stream first): per-dataset answers, duplicate count, partial
// flag. For ASK it is available immediately.
func (r *Result) Summary() (*FederatedResult, error) {
	switch {
	case r.sel != nil:
		return r.sel.Summary()
	case r.graph != nil:
		return r.graph.Summary()
	default:
		return r.askSum, nil
	}
}

// Close cancels the remaining upstream work of whichever stream is live
// and closes the query's observation (in-flight gauge, latency histogram,
// trace finish + ring record). Safe to call at any point and more than
// once.
func (r *Result) Close() error {
	defer r.qo.finish()
	switch {
	case r.sel != nil:
		return r.sel.Close()
	case r.graph != nil:
		return r.graph.Close()
	}
	return nil
}

// Query is the mediator's one federated entry point, polymorphic over the
// query form:
//
//   - SELECT streams merged, owl:sameAs-deduplicated solutions
//     (Result.Bindings) as endpoints deliver them;
//   - ASK executes as a LIMIT-1 SELECT over the same federation pipeline
//     and returns the boolean (Result.Bool);
//   - CONSTRUCT executes its WHERE clause as a rewritten, federated
//     SELECT projected onto the template variables — planner source
//     selection, VALUES sharding and cross-vocabulary decomposition all
//     apply unchanged — and instantiates the template per solution into a
//     lazy, sameAs-deduplicated triple stream (Result.Graph);
//   - DESCRIBE resolves its resources (ground IRIs, plus WHERE-bound
//     variables through the same federated pipeline), then fans a
//     VALUES-seeded description fetch out to the data sets whose URI
//     spaces cover the resources or their owl:sameAs aliases, streaming
//     the union of their outgoing triples under canonical subjects.
//
// The request's source ontology is guessed from the query's vocabulary
// (WHERE patterns and template triples) when unset; explicit Targets
// bypass the planner. Cancelling ctx (or closing the result) aborts every
// in-flight sub-query.
func (m *Mediator) Query(ctx context.Context, req QueryRequest) (*Result, error) {
	q, err := sparql.Parse(req.Query)
	if err != nil {
		return nil, fmt.Errorf("mediate: parsing query: %w", err)
	}
	return m.queryParsed(ctx, req, q)
}

// queryParsed is Query over an already-parsed query, the entry the HTTP
// handler uses to avoid re-parsing (it parses once for content
// negotiation). q must be req.Query's parse. The per-form counter counts
// queries accepted for dispatch, including ones that subsequently fail
// planning or execution.
func (m *Mediator) queryParsed(ctx context.Context, req QueryRequest, q *sparql.Query) (*Result, error) {
	ctx, qo := m.beginQuery(ctx, q.Form)
	qo.setQuery(req.Query)

	// Serving tier, part 1 — policy-by-rewriting: the tenant's graph
	// restrictions are injected into the algebra before anything looks at
	// the query, so planning, caching and execution all see the
	// restricted form.
	if q2, changed, perr := serve.Restrict(q, req.Tenant.GetPolicy()); perr != nil {
		qo.fail(perr)
		return nil, perr
	} else if changed {
		q = q2
		req.Query = sparql.Format(q)
		qo.setQuery(req.Query)
	}

	// Serving tier, part 2 — the federated result cache: SELECT and ASK
	// answers replay from memory under the sameAs-canonicalised key,
	// with zero endpoint round trips.
	fill := m.cacheFill(req, q)
	if res := fill.lookup(req, q, qo); res != nil {
		return res, nil
	}

	res, err := m.formResult(ctx, req, q)
	if err != nil {
		qo.fail(err)
		return nil, err
	}
	fill.attach(res)
	res.qo = qo
	if res.pl != nil || res.dec != nil {
		qo.explain = QueryExplanation{Plan: res.pl, Decomposition: res.dec}
	}
	if res.sel != nil {
		res.sel.qo = qo
	}
	if res.graph != nil {
		res.graph.qo = qo
	}
	return res, nil
}

// formResult dispatches the parsed query to its form's execution path.
func (m *Mediator) formResult(ctx context.Context, req QueryRequest, q *sparql.Query) (*Result, error) {
	switch q.Form {
	case sparql.Select:
		qs, err := m.selectStream(ctx, req, q)
		if err != nil {
			return nil, err
		}
		return &Result{form: q.Form, sel: qs, pl: qs.pl, dec: qs.dec}, nil
	case sparql.Ask:
		return m.askResult(ctx, req, q)
	case sparql.Construct:
		return m.constructResult(ctx, req, q)
	case sparql.Describe:
		return m.describeResult(ctx, req, q)
	default:
		return nil, fmt.Errorf("mediate: unsupported query form %s", q.Form)
	}
}

// solutionSource is the streaming backend of a QueryStream: the
// federated fan-out stream on the single-source path, the decomposed
// bound-join run on the multi-source path. Both deliver merged solutions
// incrementally and report per-dataset outcomes afterwards.
type solutionSource interface {
	Vars() []string
	Next() (eval.Solution, error)
	Close() error
	Summary() (*federate.Result, error)
}

// QueryStream is an in-flight federated SELECT: merged, deduplicated
// solutions arrive as endpoints deliver them. Consume Solutions (or
// Next), then call Summary for the per-dataset outcomes; always Close.
type QueryStream struct {
	src   solutionSource
	pl    *plan.Plan
	dec   *decompose.Decomposition
	limit int
	n     int
	qo    *queryObs // nil for internal phase streams (ASK, DESCRIBE phase 1)

	// Explicit-target bookkeeping: unknown data sets never dispatch, but
	// their error answers re-interleave into Summary's PerDataset in
	// input order.
	unknown  map[int]DatasetAnswer
	knownPos []int
	nTargets int
}

// selectStream starts the federated SELECT pipeline for req. q is req's
// parsed query (possibly a derived SELECT standing in for an ASK /
// CONSTRUCT / DESCRIBE form); req.Query must be its exact text, since the
// planner, the rewriter and the endpoints all consume the text.
func (m *Mediator) selectStream(ctx context.Context, req QueryRequest, q *sparql.Query) (*QueryStream, error) {
	if q.Form != sparql.Select {
		return nil, fmt.Errorf("mediate: selectStream called on %s query", q.Form)
	}
	if req.SourceOnt == "" {
		src, err := m.guessSourceOntology(q)
		if err != nil {
			return nil, err
		}
		req.SourceOnt = src
	}
	// The materialized-view tier answers a covered BGP from its embedded
	// store with zero endpoint round trips. Only the default path takes
	// it: explicit targets pin execution, dataset-allowlisted tenants
	// must not read cross-dataset joins, and materialization queries
	// themselves (withoutViews) would recurse.
	if m.Views != nil && len(req.Targets) == 0 && !viewsDisabled(ctx) &&
		len(req.Tenant.GetPolicy().AllowedDatasets()) == 0 {
		if vqs, ok := m.viewAnswer(ctx, req, q); ok {
			return vqs, nil
		}
	}
	qs := &QueryStream{limit: req.Limit}
	var freq federate.Request
	if len(req.Targets) == 0 {
		if m.Planner == nil {
			return nil, fmt.Errorf("mediate: no targets given and planning is disabled")
		}
		_, planSpan := obs.StartSpan(ctx, "plan")
		planSpan.SetAttr("sourceOnt", req.SourceOnt)
		pl, err := m.Planner.Plan(req.Query, req.SourceOnt)
		if err != nil {
			planSpan.SetAttr("error", err.Error())
			planSpan.End()
			return nil, err
		}
		planStats := obs.Operator("source-selection")
		planStats.RowsIn = int64(len(pl.Decisions))
		planStats.RowsOut = int64(len(pl.Subs))
		planSpan.SetOperator(planStats)
		planSpan.SetAttr("considered", len(pl.Decisions))
		planSpan.SetAttr("subQueries", len(pl.Subs))
		planSpan.End()
		pl, err = restrictPlan(pl, req.Tenant.GetPolicy())
		if err != nil {
			return nil, err
		}
		if len(pl.Subs) == 0 {
			// No single data set covers the whole query: try splitting
			// the BGP into per-endpoint exclusive groups joined at the
			// mediator (the multi-source path). A dataset-restricted
			// tenant never takes it: the decomposer's per-pattern source
			// selection spans the whole KB, and a cross-dataset join is
			// exactly what a dataset allowlist forbids.
			if p := req.Tenant.GetPolicy(); len(p.AllowedDatasets()) > 0 {
				return nil, fmt.Errorf("mediate: query needs data sets outside the tenant's allowlist: %w", serve.ErrDenied)
			}
			if m.Decomposer != nil {
				_, decSpan := obs.StartSpan(ctx, "decompose")
				dcm, derr := m.Decomposer.Decompose(req.Query, req.SourceOnt)
				if derr == nil {
					decStats := obs.Operator("decompose")
					decStats.RowsOut = int64(len(dcm.Fragments))
					decSpan.SetOperator(decStats)
					decSpan.SetAttr("fragments", len(dcm.Fragments))
					decSpan.End()
					qs.pl = pl
					qs.dec = dcm
					qs.src = m.JoinEngine.Run(ctx, dcm)
					// Multi-source queries are exactly the expensive
					// cross-vocabulary joins worth materializing: mine
					// the shape (unless this IS a materialization run).
					if m.Views != nil && !viewsDisabled(ctx) {
						m.observeViews(q, req.SourceOnt, dcm)
					}
					return qs, nil
				}
				decSpan.SetAttr("error", derr.Error())
				decSpan.End()
				return nil, fmt.Errorf(
					"mediate: no registered data set is relevant to the whole query and it does not decompose (%v); see /api/plan", derr)
			}
			return nil, fmt.Errorf("mediate: no registered data set is relevant to the query (see /api/plan)")
		}
		qs.pl = pl
		freq = federate.PlanRequest(pl)
	} else {
		freq = federate.Request{Query: req.Query, SourceOnt: req.SourceOnt, Vars: q.SelectVars}
		qs.unknown = make(map[int]DatasetAnswer)
		qs.nTargets = len(req.Targets)
		for i, target := range req.Targets {
			if !req.Tenant.GetPolicy().AllowsDataset(target) {
				return nil, fmt.Errorf("mediate: data set %s: %w", target, serve.ErrDenied)
			}
			ds, ok := m.Datasets.Get(target)
			if !ok {
				qs.unknown[i] = DatasetAnswer{Dataset: target,
					Err: fmt.Errorf("mediate: unknown data set %s", target)}
				continue
			}
			qs.knownPos = append(qs.knownPos, i)
			freq.Targets = append(freq.Targets, federate.Target{
				Dataset:      target,
				Endpoint:     ds.SPARQLEndpoint,
				Replicas:     ds.Replicas,
				NeedsRewrite: !ds.UsesVocabulary(req.SourceOnt),
			})
		}
	}
	qs.src = m.Exec.SelectStream(ctx, freq)
	return qs, nil
}

// Vars returns the query's projection variable names.
func (qs *QueryStream) Vars() []string { return qs.src.Vars() }

// Plan reports the planner's decisions when targets were auto-selected
// (nil for explicit-target queries).
func (qs *QueryStream) Plan() *plan.Plan { return qs.pl }

// Decomposition reports the per-BGP decomposition when the query ran on
// the multi-source path (nil otherwise).
func (qs *QueryStream) Decomposition() *decompose.Decomposition { return qs.dec }

// Next returns the next merged solution, io.EOF at the end of the
// stream (or once Limit is reached, which cancels upstream work), or the
// fail-fast error that aborted the fan-out.
func (qs *QueryStream) Next() (eval.Solution, error) {
	if qs.limit > 0 && qs.n >= qs.limit {
		qs.Close()
		return nil, io.EOF
	}
	sol, err := qs.src.Next()
	if err == nil {
		qs.n++
		qs.qo.emit()
	}
	return sol, err
}

// Solutions adapts the stream into a lazy solution sequence terminated
// by the fan-out's fail-fast error, if any. Breaking out of the loop
// stops the upstream work.
func (qs *QueryStream) Solutions() eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		for {
			sol, err := qs.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(sol, nil) {
				qs.Close()
				return
			}
		}
	}
}

// Summary reports the fan-out's outcome (consuming whatever remains of
// the stream first): per-dataset answers in input-target order, the
// duplicate count and the partial flag. Solutions is nil — they already
// flowed through the stream; Collect re-attaches them.
func (qs *QueryStream) Summary() (*FederatedResult, error) {
	res, err := qs.src.Summary()
	if len(qs.unknown) > 0 {
		// Re-interleave the unknown-dataset answers so PerDataset stays
		// in input-target order.
		merged := make([]DatasetAnswer, qs.nTargets)
		for j, pos := range qs.knownPos {
			merged[pos] = res.PerDataset[j]
		}
		for pos, da := range qs.unknown {
			merged[pos] = da
		}
		res.PerDataset = merged
		for _, da := range res.PerDataset {
			if da.Err == nil {
				res.Partial = true
				break
			}
		}
	}
	return res, err
}

// Close cancels the remaining upstream work, releases the stream and
// closes the query's observation (see Result.Close) — so consumers that
// hold only the stream (Collect, the Solutions loop) still settle the
// in-flight gauge and latency histogram. It is safe to call at any point
// and more than once.
func (qs *QueryStream) Close() error {
	defer qs.qo.finish()
	return qs.src.Close()
}

// Collect materialises the stream into the buffered FederatedResult
// shape, sorted deterministically — the convenience for callers that
// don't need first-solution latency.
func (qs *QueryStream) Collect() (*FederatedResult, error) {
	defer qs.Close()
	var sols []eval.Solution
	for sol, err := range qs.Solutions() {
		if err != nil {
			break // the fail-fast abort; Summary re-reports it
		}
		sols = append(sols, sol)
	}
	res, err := qs.Summary()
	res.Solutions = sols
	eval.SortSolutions(res.Solutions)
	return res, err
}

// askResult executes an ASK as a LIMIT-1 federated SELECT over the same
// WHERE clause: the boolean is "did any endpoint produce a solution", and
// the per-dataset summary is available immediately on the Result.
func (m *Mediator) askResult(ctx context.Context, req QueryRequest, q *sparql.Query) (*Result, error) {
	sel := q.Clone()
	sel.Form = sparql.Select
	sel.SelectStar = true
	sel.OrderBy = nil
	sel.Limit = 1
	sel.Offset = -1
	text := sparql.Format(sel)
	qs, err := m.selectStream(ctx, QueryRequest{
		Query: text, SourceOnt: req.SourceOnt, Targets: req.Targets, Limit: 1,
		Tenant: req.Tenant,
	}, sel)
	if err != nil {
		return nil, err
	}
	defer qs.Close()
	ask := false
	if _, nerr := qs.Next(); nerr == nil {
		ask = true
	} else if nerr != io.EOF {
		return nil, nerr
	}
	sum, serr := qs.Summary()
	if serr != nil && !ask {
		return nil, serr
	}
	return &Result{form: sparql.Ask, ask: ask, askSum: sum, pl: qs.pl, dec: qs.dec}, nil
}

// constructResult executes a CONSTRUCT as a federated SELECT projected
// onto the template's variables; the returned GraphStream instantiates
// the template once per merged solution.
func (m *Mediator) constructResult(ctx context.Context, req QueryRequest, q *sparql.Query) (*Result, error) {
	var tmplVars []string
	seen := map[string]bool{}
	for _, t := range q.Template {
		for _, v := range t.Vars() {
			if !seen[v] {
				seen[v] = true
				tmplVars = append(tmplVars, v)
			}
		}
	}
	hasBlank := false
	for _, t := range q.Template {
		for _, x := range t.Terms() {
			if x.IsBlank() {
				hasBlank = true
			}
		}
	}
	sel := q.Clone()
	sel.Form = sparql.Select
	sel.Template = nil
	if len(tmplVars) > 0 {
		sel.SelectVars = tmplVars
	} else {
		sel.SelectStar = true
	}
	if sel.Limit < 0 && sel.Offset < 0 && !hasBlank {
		// Without solution slicing, projecting DISTINCT template bindings
		// is graph-equivalent and minimises transfer. With LIMIT/OFFSET it
		// would change which solutions are counted, and with template
		// blank nodes each solution must instantiate its own fresh bnode,
		// so duplicate bindings still produce distinct triples.
		sel.Distinct = true
	}
	text := sparql.Format(sel)
	qs, err := m.selectStream(ctx, QueryRequest{
		Query: text, SourceOnt: req.SourceOnt, Targets: req.Targets,
		Tenant: req.Tenant,
	}, sel)
	if err != nil {
		return nil, err
	}
	gs := newGraphStream(qs, q.Template, m.Coref, req.Limit, q.Prefixes)
	return &Result{form: sparql.Construct, graph: gs, pl: qs.pl, dec: qs.dec}, nil
}

// maxDescribeAliases caps how many owl:sameAs aliases of one DESCRIBE
// resource are fetched (hub entities can carry hundreds).
const maxDescribeAliases = 8

// describeResult executes a DESCRIBE: WHERE-bound resource variables
// resolve through the federated SELECT pipeline (phase 1), then one
// VALUES-seeded fan-out fetches every resource's outgoing triples from
// the data sets whose URI spaces cover the resource or its owl:sameAs
// aliases (phase 2). Subjects stream out canonicalised to their sameAs
// representative, so the same entity described by two repositories merges
// into one description.
func (m *Mediator) describeResult(ctx context.Context, req QueryRequest, q *sparql.Query) (*Result, error) {
	resources, describeVars := q.DescribeResources()
	seenRes := map[string]bool{}
	for _, r := range resources {
		seenRes[r.Value] = true
	}
	addResource := func(t rdf.Term) {
		if t.IsIRI() && !seenRes[t.Value] {
			seenRes[t.Value] = true
			resources = append(resources, t)
		}
	}

	res := &Result{form: sparql.Describe}
	var pre *FederatedResult
	if len(describeVars) > 0 && q.Where != nil {
		sel := q.Clone()
		sel.Form = sparql.Select
		sel.DescribeTerms = nil
		sel.SelectVars = describeVars
		if sel.Limit < 0 && sel.Offset < 0 {
			// DISTINCT is resource-set-preserving only without solution
			// slicing: under LIMIT/OFFSET the modifiers count solutions,
			// not distinct resources.
			sel.Distinct = true
		}
		text := sparql.Format(sel)
		qs, err := m.selectStream(ctx, QueryRequest{
			Query: text, SourceOnt: req.SourceOnt, Targets: req.Targets,
			Tenant: req.Tenant,
		}, sel)
		if err != nil {
			return nil, err
		}
		res.pl, res.dec = qs.pl, qs.dec
		for sol, serr := range qs.Solutions() {
			if serr != nil {
				qs.Close()
				return nil, serr
			}
			for _, v := range describeVars {
				if t, ok := sol[v]; ok {
					addResource(t)
				}
			}
		}
		sum, serr := qs.Summary()
		qs.Close()
		if serr != nil {
			return nil, serr
		}
		pre = sum
	}

	freq, ok := m.describeRequest(resources, req.Tenant.GetPolicy())
	if !ok {
		res.graph = emptyGraphStream(pre)
		return res, nil
	}
	qs := &QueryStream{src: m.Exec.SelectStream(ctx, freq)}
	gs := newGraphStream(qs, []rdf.Triple{{
		S: rdf.NewVar("s"), P: rdf.NewVar("p"), O: rdf.NewVar("o"),
	}}, m.Coref, req.Limit, q.Prefixes)
	gs.pre = pre
	res.graph = gs
	return res, nil
}

// describeValuesBatch bounds the VALUES rows per description sub-query;
// larger resource sets shard through the planner's VALUES machinery into
// independent sub-queries, exactly like the decomposer's bound joins, so
// one huge DESCRIBE cannot exceed an endpoint's request-body cap.
const describeValuesBatch = 50

// describeRequest builds the phase-2 fan-out: per data set, sub-queries
// fetching `?s ?p ?o` seeded by VALUES shards of the resources (and
// their owl:sameAs aliases) that lie in the data set's URI space. A
// resource in no registered URI space is asked of every data set. The
// tenant policy prunes denied data sets and re-injects its restriction
// filters into the description query, so phase 2 cannot surface triples
// (sameAs aliases outside the tenant's URI spaces, denied predicates)
// that the restricted phase-1 query could not. ok is false when there
// is nothing to dispatch.
func (m *Mediator) describeRequest(resources []rdf.Term, pol *serve.Policy) (federate.Request, bool) {
	var datasets []*voidkb.Dataset
	for _, ds := range m.Datasets.All() {
		if pol.AllowsDataset(ds.URI) {
			datasets = append(datasets, ds)
		}
	}
	if len(resources) == 0 || len(datasets) == 0 {
		return federate.Request{}, false
	}
	aliases := func(uri string) []string {
		out := []string{uri}
		if m.Coref != nil {
			for _, eq := range m.Coref.Equivalents(uri) {
				if len(out) >= maxDescribeAliases {
					break
				}
				if eq != uri {
					out = append(out, eq)
				}
			}
		}
		return out
	}
	perDS := map[string][][]rdf.Term{}
	seenDS := map[string]map[string]bool{} // dataset URI -> alias set (mutual sameAs dedup)
	add := func(dsURI, alias string) {
		seen := seenDS[dsURI]
		if seen == nil {
			seen = map[string]bool{}
			seenDS[dsURI] = seen
		}
		if seen[alias] {
			return
		}
		seen[alias] = true
		perDS[dsURI] = append(perDS[dsURI], []rdf.Term{rdf.NewIRI(alias)})
	}
	for _, r := range resources {
		as := aliases(r.Value)
		matched := false
		for _, ds := range datasets {
			for _, a := range as {
				if ds.Matches(a) {
					add(ds.URI, a)
					matched = true
				}
			}
		}
		if !matched {
			for _, ds := range datasets {
				for _, a := range as {
					add(ds.URI, a)
				}
			}
		}
	}
	freq := federate.Request{Vars: []string{"s", "p", "o"}}
	for _, ds := range datasets {
		rows, ok := perDS[ds.URI]
		if !ok {
			continue
		}
		q := sparql.NewQuery(sparql.Select)
		q.SelectVars = []string{"s", "p", "o"}
		q.Where = &sparql.GroupGraphPattern{Elements: []sparql.GroupElement{
			&sparql.InlineData{Vars: []string{"s"}, Rows: rows},
			&sparql.BGP{Patterns: []rdf.Triple{{
				S: rdf.NewVar("s"), P: rdf.NewVar("p"), O: rdf.NewVar("o"),
			}}},
		}}
		if rq, _, rerr := serve.Restrict(q, pol); rerr != nil {
			continue
		} else {
			q = rq
		}
		texts, _ := plan.ShardQuery(q, describeValuesBatch, (len(rows)+describeValuesBatch-1)/describeValuesBatch)
		if len(texts) == 0 {
			texts = []string{sparql.Format(q)}
		}
		if freq.Query == "" {
			freq.Query = texts[0]
		}
		for i, text := range texts {
			freq.Targets = append(freq.Targets, federate.Target{
				Dataset:  ds.URI,
				Endpoint: ds.SPARQLEndpoint,
				Replicas: ds.Replicas,
				Query:    text,
				Shard:    i + 1,
				Shards:   len(texts),
			})
		}
	}
	return freq, len(freq.Targets) > 0
}

// GraphStream is an in-flight CONSTRUCT or DESCRIBE result: a lazy,
// deduplicated triple stream instantiated from the underlying federated
// solution stream. Consume Triples (or Next), then Summary; always Close.
type GraphStream struct {
	src      *QueryStream // nil = empty stream
	template []rdf.Triple
	canon    *corefCanon
	prefixes *rdf.PrefixMap

	pending []rdf.Triple
	seen    map[rdf.Triple]bool
	n       int // solutions consumed, numbering template blank nodes
	emitted int
	limit   int
	qo      *queryObs

	// pre carries a DESCRIBE's phase-1 (resource resolution) summary,
	// prepended to the fan-out summary.
	pre *FederatedResult
}

func newGraphStream(src *QueryStream, template []rdf.Triple, coref funcsCoref, limit int, prefixes *rdf.PrefixMap) *GraphStream {
	return &GraphStream{
		src:      src,
		template: template,
		canon:    newCorefCanon(coref),
		seen:     map[rdf.Triple]bool{},
		limit:    limit,
		prefixes: prefixes,
	}
}

func emptyGraphStream(pre *FederatedResult) *GraphStream {
	return &GraphStream{seen: map[rdf.Triple]bool{}, pre: pre}
}

// Prefixes returns the source query's prefix map, for serialisers that
// want to QName-shrink the streamed triples (the Turtle writer).
func (g *GraphStream) Prefixes() *rdf.PrefixMap { return g.prefixes }

// Next returns the next distinct triple, io.EOF at the end of the stream
// (or once the triple limit is reached, which cancels upstream work), or
// the fail-fast error that aborted the fan-out. Triples are deduplicated
// after owl:sameAs canonicalisation, so the same fact surfacing from two
// repositories under equivalent URIs is emitted once.
func (g *GraphStream) Next() (rdf.Triple, error) {
	for {
		if g.limit > 0 && g.emitted >= g.limit {
			g.Close()
			return rdf.Triple{}, io.EOF
		}
		if len(g.pending) > 0 {
			t := g.pending[0]
			g.pending = g.pending[1:]
			if g.seen[t] {
				continue
			}
			g.seen[t] = true
			g.emitted++
			g.qo.emit()
			return t, nil
		}
		if g.src == nil {
			return rdf.Triple{}, io.EOF
		}
		sol, err := g.src.Next()
		if err != nil {
			return rdf.Triple{}, err // io.EOF included
		}
		suffix := "_c" + strconv.Itoa(g.n)
		g.n++
		for _, tpl := range g.template {
			if t, ok := eval.InstantiateTemplate(tpl, sol, suffix); ok {
				g.pending = append(g.pending, g.canon.triple(t))
			}
		}
	}
}

// Triples adapts the stream into a lazy triple sequence terminated by the
// fan-out's fail-fast error, if any. Breaking out of the loop stops the
// upstream work.
func (g *GraphStream) Triples() iter.Seq2[rdf.Triple, error] {
	return func(yield func(rdf.Triple, error) bool) {
		for {
			t, err := g.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(rdf.Triple{}, err)
				return
			}
			if !yield(t, nil) {
				g.Close()
				return
			}
		}
	}
}

// Collect materialises the stream into a graph, returning the first
// stream error.
func (g *GraphStream) Collect() (rdf.Graph, error) {
	defer g.Close()
	var out rdf.Graph
	for t, err := range g.Triples() {
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Summary reports the fan-out's outcome (consuming whatever remains of
// the stream first): per-dataset answers — for DESCRIBE, the phase-1
// resource resolution answers followed by the description fetches — the
// duplicate count and the partial flag. Safe to call more than once.
func (g *GraphStream) Summary() (*FederatedResult, error) {
	var res *FederatedResult
	var err error
	if g.src != nil {
		res, err = g.src.Summary()
	} else {
		res = &FederatedResult{}
	}
	if g.pre == nil {
		return res, err
	}
	// Combine into a fresh result: the fan-out owns res and returns the
	// same pointer on every Summary call, so mutating it in place would
	// duplicate the phase-1 answers on repeat calls.
	combined := &FederatedResult{
		Vars:       res.Vars,
		PerDataset: append(append([]DatasetAnswer(nil), g.pre.PerDataset...), res.PerDataset...),
		Duplicates: res.Duplicates + g.pre.Duplicates,
		Partial:    res.Partial || g.pre.Partial,
	}
	return combined, err
}

// Close cancels the remaining upstream work, releases the stream and
// closes the query's observation (see Result.Close). It is safe to call
// at any point and more than once.
func (g *GraphStream) Close() error {
	defer g.qo.finish()
	if g.src != nil {
		return g.src.Close()
	}
	return nil
}

// funcsCoref is the coref capability GraphStream needs (avoids importing
// funcs here just for the interface).
type funcsCoref interface {
	Equivalents(uri string) []string
}

// corefCanon canonicalises IRIs to the deterministic (lexicographically
// smallest) member of their owl:sameAs class, memoised per stream — the
// same representative rule as the federation merge, applied here to
// template constants and instantiated triples so graph-level
// deduplication also collapses sameAs-equivalent facts.
type corefCanon struct {
	coref funcsCoref
	reps  map[string]string
}

func newCorefCanon(coref funcsCoref) *corefCanon {
	return &corefCanon{coref: coref, reps: map[string]string{}}
}

func (c *corefCanon) term(t rdf.Term) rdf.Term {
	if c.coref == nil || !t.IsIRI() {
		return t
	}
	rep, ok := c.reps[t.Value]
	if !ok {
		rep = t.Value
		for _, eq := range c.coref.Equivalents(t.Value) {
			if eq < rep {
				rep = eq
			}
		}
		c.reps[t.Value] = rep
	}
	if rep == t.Value {
		return t
	}
	return rdf.NewIRI(rep)
}

func (c *corefCanon) triple(t rdf.Triple) rdf.Triple {
	return rdf.Triple{S: c.term(t.S), P: c.term(t.P), O: c.term(t.O)}
}
