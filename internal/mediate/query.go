package mediate

import (
	"context"
	"fmt"
	"io"

	"sparqlrw/internal/decompose"
	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/plan"
	"sparqlrw/internal/sparql"
)

// QueryRequest describes one federated SELECT for Mediator.Query: the
// query text plus the options the positional FederatedSelect* signatures
// used to scatter across three functions.
type QueryRequest struct {
	// Query is the SELECT text, written against SourceOnt.
	Query string
	// SourceOnt is the source ontology namespace the query is written
	// in. Empty means "guess it from the query's vocabulary"
	// (GuessSourceOntology), the behaviour the web UI relies on.
	SourceOnt string
	// Targets names the data sets to query. Empty means the voiD-driven
	// planner selects, shards and orders them (the plan is surfaced on
	// the stream).
	Targets []string
	// Limit caps how many merged solutions the stream yields; reaching
	// it cancels the remaining upstream work. 0 means no limit.
	Limit int
}

// solutionSource is the streaming backend of a QueryStream: the
// federated fan-out stream on the single-source path, the decomposed
// bound-join run on the multi-source path. Both deliver merged solutions
// incrementally and report per-dataset outcomes afterwards.
type solutionSource interface {
	Vars() []string
	Next() (eval.Solution, error)
	Close() error
	Summary() (*federate.Result, error)
}

// QueryStream is an in-flight federated query: merged, deduplicated
// solutions arrive as endpoints deliver them. Consume Solutions (or
// Next), then call Summary for the per-dataset outcomes; always Close.
type QueryStream struct {
	src   solutionSource
	pl    *plan.Plan
	dec   *decompose.Decomposition
	limit int
	n     int

	// Explicit-target bookkeeping: unknown data sets never dispatch, but
	// their error answers re-interleave into Summary's PerDataset in
	// input order, exactly as FederatedSelectContext always reported.
	unknown  map[int]DatasetAnswer
	knownPos []int
	nTargets int
}

// Query is the mediator's one federated entry point: it resolves the
// source ontology (guessing when unset), validates the query, picks
// targets (explicit or planner-selected) and starts the streaming
// fan-out. It subsumes the FederatedSelect / FederatedSelectContext /
// FederatedSelectPlanned trio, which survive as thin wrappers that drain
// the stream.
//
// The returned stream delivers the first merged solution as soon as the
// first endpoint produces one; cancelling ctx (or closing the stream)
// aborts every in-flight sub-query.
func (m *Mediator) Query(ctx context.Context, req QueryRequest) (*QueryStream, error) {
	qs, _, err := m.queryStream(ctx, req)
	return qs, err
}

// queryStream is Query plus the plan, which is reported even when the
// planner found nothing relevant (the error case FederatedSelectPlanned
// surfaces alongside its explain output).
func (m *Mediator) queryStream(ctx context.Context, req QueryRequest) (*QueryStream, *plan.Plan, error) {
	if req.SourceOnt == "" {
		src, err := m.GuessSourceOntology(req.Query)
		if err != nil {
			return nil, nil, err
		}
		req.SourceOnt = src
	}
	q, err := sparql.Parse(req.Query)
	if err != nil {
		return nil, nil, fmt.Errorf("mediate: parsing query: %w", err)
	}
	if q.Form != sparql.Select {
		return nil, nil, fmt.Errorf("mediate: federated execution supports SELECT only")
	}
	qs := &QueryStream{limit: req.Limit}
	var freq federate.Request
	if len(req.Targets) == 0 {
		if m.Planner == nil {
			return nil, nil, fmt.Errorf("mediate: no targets given and planning is disabled")
		}
		pl, err := m.Planner.Plan(req.Query, req.SourceOnt)
		if err != nil {
			return nil, nil, err
		}
		if len(pl.Subs) == 0 {
			// No single data set covers the whole query: try splitting
			// the BGP into per-endpoint exclusive groups joined at the
			// mediator (the multi-source path).
			if m.Decomposer != nil {
				dcm, derr := m.Decomposer.Decompose(req.Query, req.SourceOnt)
				if derr == nil {
					qs.pl = pl
					qs.dec = dcm
					qs.src = m.JoinEngine.Run(ctx, dcm)
					return qs, pl, nil
				}
				return nil, pl, fmt.Errorf(
					"mediate: no registered data set is relevant to the whole query and it does not decompose (%v); see /api/plan", derr)
			}
			return nil, pl, fmt.Errorf("mediate: no registered data set is relevant to the query (see /api/plan)")
		}
		qs.pl = pl
		freq = federate.PlanRequest(pl)
	} else {
		freq = federate.Request{Query: req.Query, SourceOnt: req.SourceOnt, Vars: q.SelectVars}
		qs.unknown = make(map[int]DatasetAnswer)
		qs.nTargets = len(req.Targets)
		for i, target := range req.Targets {
			ds, ok := m.Datasets.Get(target)
			if !ok {
				qs.unknown[i] = DatasetAnswer{Dataset: target,
					Err: fmt.Errorf("mediate: unknown data set %s", target)}
				continue
			}
			qs.knownPos = append(qs.knownPos, i)
			freq.Targets = append(freq.Targets, federate.Target{
				Dataset:      target,
				Endpoint:     ds.SPARQLEndpoint,
				NeedsRewrite: !ds.UsesVocabulary(req.SourceOnt),
			})
		}
	}
	qs.src = m.Exec.SelectStream(ctx, freq)
	return qs, qs.pl, nil
}

// Vars returns the query's projection variable names.
func (qs *QueryStream) Vars() []string { return qs.src.Vars() }

// Plan reports the planner's decisions when targets were auto-selected
// (nil for explicit-target queries).
func (qs *QueryStream) Plan() *plan.Plan { return qs.pl }

// Decomposition reports the per-BGP decomposition when the query ran on
// the multi-source path (nil otherwise).
func (qs *QueryStream) Decomposition() *decompose.Decomposition { return qs.dec }

// Next returns the next merged solution, io.EOF at the end of the
// stream (or once Limit is reached, which cancels upstream work), or the
// fail-fast error that aborted the fan-out.
func (qs *QueryStream) Next() (eval.Solution, error) {
	if qs.limit > 0 && qs.n >= qs.limit {
		qs.Close()
		return nil, io.EOF
	}
	sol, err := qs.src.Next()
	if err == nil {
		qs.n++
	}
	return sol, err
}

// Solutions adapts the stream into a lazy solution sequence terminated
// by the fan-out's fail-fast error, if any. Breaking out of the loop
// stops the upstream work.
func (qs *QueryStream) Solutions() eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		for {
			sol, err := qs.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(sol, nil) {
				qs.Close()
				return
			}
		}
	}
}

// Summary reports the fan-out's outcome (consuming whatever remains of
// the stream first): per-dataset answers in input-target order, the
// duplicate count and the partial flag. Solutions is nil — they already
// flowed through the stream; the deprecated drain wrappers re-attach
// them.
func (qs *QueryStream) Summary() (*FederatedResult, error) {
	res, err := qs.src.Summary()
	if len(qs.unknown) > 0 {
		// Re-interleave the unknown-dataset answers so PerDataset stays
		// in input-target order.
		merged := make([]DatasetAnswer, qs.nTargets)
		for j, pos := range qs.knownPos {
			merged[pos] = res.PerDataset[j]
		}
		for pos, da := range qs.unknown {
			merged[pos] = da
		}
		res.PerDataset = merged
		for _, da := range res.PerDataset {
			if da.Err == nil {
				res.Partial = true
				break
			}
		}
	}
	return res, err
}

// Close cancels the remaining upstream work and releases the stream. It
// is safe to call at any point and more than once.
func (qs *QueryStream) Close() error { return qs.src.Close() }

// drain materialises the stream into the buffered FederatedResult shape
// the deprecated FederatedSelect* wrappers return.
func (qs *QueryStream) drain() (*FederatedResult, error) {
	defer qs.Close()
	var sols []eval.Solution
	for sol, err := range qs.Solutions() {
		if err != nil {
			break // the fail-fast abort; Summary re-reports it
		}
		sols = append(sols, sol)
	}
	res, err := qs.Summary()
	res.Solutions = sols
	eval.SortSolutions(res.Solutions)
	return res, err
}
