package mediate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"sparqlrw/internal/align"
	"sparqlrw/internal/endpoint"
	"sparqlrw/internal/federate"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/voidkb"
	"sparqlrw/internal/workload"
)

// testStack spins up SPARQL endpoints over a generated universe and wires
// a mediator to them, mirroring the paper's deployment (Figure 5).
type testStack struct {
	u        *workload.Universe
	mediator *Mediator
}

func newStack(t testing.TB) *testStack {
	t.Helper()
	cfg := workload.DefaultConfig()
	cfg.Persons, cfg.Papers = 40, 120
	u := workload.Generate(cfg)

	sotonSrv := httptest.NewServer(endpoint.NewServer("southampton", u.Southampton))
	t.Cleanup(sotonSrv.Close)
	kistiSrv := httptest.NewServer(endpoint.NewServer("kisti", u.KISTI))
	t.Cleanup(kistiSrv.Close)

	dsKB := voidkb.NewKB()
	if err := dsKB.Add(&voidkb.Dataset{
		URI: workload.SotonVoidURI, Title: "Southampton RKB",
		SPARQLEndpoint: sotonSrv.URL,
		URISpace:       workload.SotonURIPattern,
		Vocabularies:   []string{rdf.AKTNS},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dsKB.Add(&voidkb.Dataset{
		URI: workload.KistiVoidURI, Title: "KISTI",
		SPARQLEndpoint: kistiSrv.URL,
		URISpace:       workload.KistiURIPattern,
		Vocabularies:   []string{rdf.KISTINS},
	}); err != nil {
		t.Fatal(err)
	}

	alignKB := align.NewKB()
	if err := alignKB.Add(workload.AKT2KISTI()); err != nil {
		t.Fatal(err)
	}

	// Without the §4 FILTER extension the Figure-1 query's self-exclusion
	// FILTER keeps its Southampton URI and silently stops excluding the
	// person on KISTI (the paper's Figure-6 limitation; pinned by
	// TestPaperModeFilterLimitation below).
	m := New(dsKB, alignKB, u.Coref, WithRewriteFilters(true))
	return &testStack{u: u, mediator: m}
}

// federatedSelect drains one federated SELECT into the buffered result
// shape most assertions consume.
func federatedSelect(m *Mediator, query, sourceOnt string, targets []string) (*FederatedResult, error) {
	res, err := m.Query(context.Background(), QueryRequest{
		Query: query, SourceOnt: sourceOnt, Targets: targets,
	})
	if err != nil {
		return nil, err
	}
	return res.Bindings().Collect()
}

// TestPaperModeFilterLimitation pins the §4 limitation end to end: with
// FILTER rewriting off, the co-author query run against KISTI stops
// excluding the person themselves, inflating the federated answer by one.
func TestPaperModeFilterLimitation(t *testing.T) {
	s := newStack(t)
	s.mediator.Configure(WithRewriteFilters(false))
	person := -1
	for i := 0; i < s.u.Cfg.Persons; i++ {
		if len(s.u.CoAuthorsIn(i, "kisti")) > 0 {
			person = i
			break
		}
	}
	if person < 0 {
		t.Skip("no person present in KISTI")
	}
	fr, err := federatedSelect(s.mediator, workload.Figure1Query(person), rdf.AKTNS,
		[]string{workload.SotonVoidURI, workload.KistiVoidURI})
	if err != nil {
		t.Fatal(err)
	}
	truth := s.u.CoAuthors(person)
	if len(fr.Solutions) != len(truth)+1 {
		t.Fatalf("paper mode should include the person themselves once: got %d, truth %d",
			len(fr.Solutions), len(truth))
	}
}

func TestRewriteForKISTI(t *testing.T) {
	s := newStack(t)
	rr, err := s.mediator.Rewrite(workload.Figure1Query(0), rdf.AKTNS, workload.KistiVoidURI)
	if err != nil {
		t.Fatal(err)
	}
	if rr.AlignmentsUsed != 24 {
		t.Fatalf("alignments used = %d, want 24", rr.AlignmentsUsed)
	}
	if !strings.Contains(rr.Query, "kisti:hasCreatorInfo") {
		t.Fatalf("rewritten query:\n%s", rr.Query)
	}
	if strings.Contains(rr.Query, "akt:has-author") {
		t.Fatalf("source vocabulary left behind:\n%s", rr.Query)
	}
}

func TestRewriteUnknownTarget(t *testing.T) {
	s := newStack(t)
	if _, err := s.mediator.Rewrite(workload.Figure1Query(0), rdf.AKTNS, "http://nope/void"); err == nil {
		t.Fatal("unknown target must error")
	}
	if _, err := s.mediator.Rewrite("NOT SPARQL", rdf.AKTNS, workload.KistiVoidURI); err == nil {
		t.Fatal("bad query must error")
	}
}

// TestE6_FederatedRecall reproduces the recall claim: querying all
// repositories returns strictly more co-authors than the source alone
// (given KISTI-only papers exist), and exactly the ground-truth union.
func TestE6_FederatedRecall(t *testing.T) {
	s := newStack(t)
	// Pick a person that has KISTI-only co-authors.
	person := -1
	for i := 0; i < s.u.Cfg.Persons; i++ {
		sOnly := s.u.CoAuthorsIn(i, "southampton")
		all := s.u.CoAuthors(i)
		if len(all) > len(sOnly) {
			person = i
			break
		}
	}
	if person < 0 {
		t.Skip("universe has no person with KISTI-only co-authors")
	}
	q := workload.Figure1Query(person)

	sourceOnly, err := federatedSelect(s.mediator, q, rdf.AKTNS, []string{workload.SotonVoidURI})
	if err != nil {
		t.Fatal(err)
	}
	federated, err := federatedSelect(s.mediator, q, rdf.AKTNS,
		[]string{workload.SotonVoidURI, workload.KistiVoidURI})
	if err != nil {
		t.Fatal(err)
	}
	truth := s.u.CoAuthors(person)
	if len(sourceOnly.Solutions) >= len(federated.Solutions) {
		t.Fatalf("federation did not increase recall: %d vs %d",
			len(sourceOnly.Solutions), len(federated.Solutions))
	}
	if len(federated.Solutions) != len(truth) {
		t.Fatalf("federated recall = %d, ground truth %d", len(federated.Solutions), len(truth))
	}
	// Overlapping papers produce redundant answers that the co-reference
	// merge collapses.
	if federated.Duplicates == 0 {
		t.Fatal("expected duplicate answers across redundant repositories")
	}
	for _, da := range federated.PerDataset {
		if da.Err != nil {
			t.Fatalf("data set %s failed: %v", da.Dataset, da.Err)
		}
	}
}

// TestQueryFormDispatch pins the tagged union: each form fills exactly
// its own payload.
func TestQueryFormDispatch(t *testing.T) {
	s := newStack(t)
	ctx := context.Background()

	sel, err := s.mediator.Query(ctx, QueryRequest{
		Query: workload.Figure1Query(0), SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	if sel.Form() != sparql.Select || sel.Bindings() == nil || sel.Graph() != nil {
		t.Fatalf("SELECT result mis-tagged: form=%s", sel.Form())
	}

	ask, err := s.mediator.Query(ctx, QueryRequest{
		Query: `ASK { ?s ?p ?o }`, SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ask.Close()
	if ask.Form() != sparql.Ask || ask.Bindings() != nil || ask.Graph() != nil {
		t.Fatalf("ASK result mis-tagged: form=%s", ask.Form())
	}
	if !ask.Bool() {
		t.Fatal("ASK over a non-empty repository must be true")
	}
	if sum, err := ask.Summary(); err != nil || len(sum.PerDataset) != 1 {
		t.Fatalf("ASK summary = %+v, %v", sum, err)
	}

	askFalse, err := s.mediator.Query(ctx, QueryRequest{
		Query:     `ASK { ?s <http://www.aktors.org/ontology/portal#no-such-predicate> ?o }`,
		SourceOnt: rdf.AKTNS, Targets: []string{workload.SotonVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer askFalse.Close()
	if askFalse.Bool() {
		t.Fatal("ASK for an absent predicate must be false")
	}

	st := s.mediator.Stats()
	if st.Queries.Select != 1 || st.Queries.Ask != 2 {
		t.Fatalf("per-form counters = %+v", st.Queries)
	}
}

// TestQueryConstructFederated: a CONSTRUCT whose WHERE spans two
// repositories (Southampton + KISTI, translated) streams the template
// instantiation over the merged federated solutions.
func TestQueryConstructFederated(t *testing.T) {
	s := newStack(t)
	person := workload.SotonPerson(0).Value
	query := `PREFIX akt:<` + rdf.AKTNS + `>
PREFIX foaf:<http://xmlns.com/foaf/0.1/>
CONSTRUCT { <` + person + `> foaf:knows ?a }
WHERE {
  ?paper akt:has-author <` + person + `> .
  ?paper akt:has-author ?a .
}`
	res, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: query, SourceOnt: rdf.AKTNS,
		Targets: []string{workload.SotonVoidURI, workload.KistiVoidURI},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Form() != sparql.Construct || res.Graph() == nil {
		t.Fatalf("CONSTRUCT result mis-tagged: form=%s", res.Form())
	}
	g, err := res.Graph().Collect()
	if err != nil {
		t.Fatal(err)
	}
	truth := s.u.CoAuthors(0)
	// The person authors their own papers, so ?a includes the person:
	// co-authors + self.
	if len(g) != len(truth)+1 {
		t.Fatalf("constructed %d triples, want %d co-authors + self", len(g), len(truth)+1)
	}
	// Both the template constant and the bindings are canonicalised to the
	// lexicographically-smallest owl:sameAs alias (the merge's
	// representative rule), so sameAs-equivalent facts from the two
	// repositories collapse.
	rep := person
	for _, eq := range s.u.Coref.Equivalents(person) {
		if eq < rep {
			rep = eq
		}
	}
	for _, tr := range g {
		if tr.S.Value != rep || tr.P.Value != "http://xmlns.com/foaf/0.1/knows" {
			t.Fatalf("unexpected triple %s (want subject <%s>)", tr, rep)
		}
	}
	sum, err := res.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PerDataset) != 2 {
		t.Fatalf("summary = %+v", sum.PerDataset)
	}
	// Redundant repositories produce sameAs-equivalent facts; the triple
	// merge must have deduplicated rather than double-counted.
	seen := map[string]bool{}
	for _, tr := range g {
		if seen[tr.String()] {
			t.Fatalf("duplicate triple %s", tr)
		}
		seen[tr.String()] = true
	}
}

// TestQueryDescribeFederated: DESCRIBE with a ground IRI fetches the
// resource's outgoing triples from the repositories whose URI space (or
// sameAs alias space) covers it.
func TestQueryDescribeFederated(t *testing.T) {
	s := newStack(t)
	person := workload.SotonPerson(0).Value
	res, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: `DESCRIBE <` + person + `>`,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Form() != sparql.Describe || res.Graph() == nil {
		t.Fatalf("DESCRIBE result mis-tagged: form=%s", res.Form())
	}
	g, err := res.Graph().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(g) == 0 {
		t.Fatal("DESCRIBE returned no triples")
	}
	// Every triple describes the requested resource (canonicalised: the
	// merge maps sameAs aliases onto one representative).
	for _, tr := range g {
		if !tr.S.IsIRI() {
			t.Fatalf("non-IRI subject %s", tr)
		}
	}

	// DESCRIBE ?var WHERE resolves the variable through the federated
	// pipeline first.
	res2, err := s.mediator.Query(context.Background(), QueryRequest{
		Query: `PREFIX akt:<` + rdf.AKTNS + `>
DESCRIBE ?paper WHERE { ?paper akt:has-author <` + person + `> }`,
		SourceOnt: rdf.AKTNS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Close()
	g2, err := res2.Graph().Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(g2) == 0 {
		t.Fatal("DESCRIBE ?paper returned no triples")
	}
	sum, err := res2.Summary()
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1 (resource resolution) answers precede the description
	// fetches in the combined summary.
	if len(sum.PerDataset) < 2 {
		t.Fatalf("combined summary too small: %+v", sum.PerDataset)
	}
}

func TestFederatedUnknownDatasetReported(t *testing.T) {
	s := newStack(t)
	fr, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS,
		[]string{workload.SotonVoidURI, "http://nope/void"})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for _, da := range fr.PerDataset {
		if da.Dataset == "http://nope/void" && da.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("unknown data set not reported")
	}
	if len(fr.Solutions) == 0 {
		t.Fatal("good data set should still answer")
	}
	// PerDataset stays in input-target order even when an unknown data
	// set precedes a known one.
	fr2, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS,
		[]string{"http://nope/void", workload.SotonVoidURI})
	if err != nil {
		t.Fatal(err)
	}
	if fr2.PerDataset[0].Dataset != "http://nope/void" || fr2.PerDataset[1].Dataset != workload.SotonVoidURI {
		t.Fatalf("PerDataset order = %+v", fr2.PerDataset)
	}
	if fr2.PerDataset[0].Err == nil || fr2.PerDataset[1].Err != nil {
		t.Fatalf("PerDataset errors misplaced: %+v", fr2.PerDataset)
	}
}

// TestFederatedSurvivesEndpointFailure injects a failing endpoint: the
// mediator must report the failure for that data set and still merge the
// answers of the healthy ones.
func TestFederatedSurvivesEndpointFailure(t *testing.T) {
	s := newStack(t)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "simulated outage", http.StatusInternalServerError)
	}))
	defer broken.Close()
	if err := s.mediator.Datasets.Add(&voidkb.Dataset{
		URI: "http://broken.example/void", Title: "Broken",
		SPARQLEndpoint: broken.URL,
		URISpace:       `http://broken\.example/\S*`,
		Vocabularies:   []string{rdf.AKTNS}, // same vocab: query sent as-is
	}); err != nil {
		t.Fatal(err)
	}
	fr, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS,
		[]string{workload.SotonVoidURI, "http://broken.example/void"})
	if err != nil {
		t.Fatal(err)
	}
	var brokenReported, sotonOK bool
	for _, da := range fr.PerDataset {
		switch da.Dataset {
		case "http://broken.example/void":
			brokenReported = da.Err != nil
		case workload.SotonVoidURI:
			sotonOK = da.Err == nil
		}
	}
	if !brokenReported || !sotonOK {
		t.Fatalf("per-dataset reporting wrong: %+v", fr.PerDataset)
	}
	if len(fr.Solutions) == 0 {
		t.Fatal("healthy endpoint's answers lost")
	}
}

// TestFederatedHangingEndpointTimesOut pins the executor wiring end to
// end: a hung endpoint hits its per-attempt deadline and the healthy
// ones still answer, instead of the whole fan-out stalling.
func TestFederatedHangingEndpointTimesOut(t *testing.T) {
	s := newStack(t)
	unblock := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-unblock:
		case <-r.Context().Done():
		}
	}))
	defer hang.Close()
	defer close(unblock) // release the handler before hang.Close waits on it
	if err := s.mediator.Datasets.Add(&voidkb.Dataset{
		URI: "http://hang.example/void", Title: "Hanging",
		SPARQLEndpoint: hang.URL,
		URISpace:       `http://hang\.example/\S*`,
		Vocabularies:   []string{rdf.AKTNS},
	}); err != nil {
		t.Fatal(err)
	}
	s.mediator.Configure(WithFederation(federate.Options{
		EndpointTimeout: 100 * time.Millisecond,
		MaxRetries:      -1,
	}))
	start := time.Now()
	fr, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS,
		[]string{workload.SotonVoidURI, "http://hang.example/void"})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fan-out blocked on the hung endpoint for %s", elapsed)
	}
	var hungErr error
	var sotonOK bool
	for _, da := range fr.PerDataset {
		switch da.Dataset {
		case "http://hang.example/void":
			hungErr = da.Err
		case workload.SotonVoidURI:
			sotonOK = da.Err == nil && da.Solutions > 0
		}
	}
	if hungErr == nil || !errors.Is(hungErr, context.DeadlineExceeded) {
		t.Fatalf("hung endpoint error = %v, want deadline exceeded", hungErr)
	}
	if !sotonOK || len(fr.Solutions) == 0 {
		t.Fatalf("healthy endpoint's answers lost: %+v", fr.PerDataset)
	}
	if !fr.Partial {
		t.Fatal("result must be marked partial")
	}
}

// TestFederatedPlanCacheReuse pins that repeated federated queries hit
// the rewrite-plan cache instead of re-rewriting.
func TestFederatedPlanCacheReuse(t *testing.T) {
	s := newStack(t)
	q := workload.Figure1Query(0)
	targets := []string{workload.SotonVoidURI, workload.KistiVoidURI}
	for i := 0; i < 3; i++ {
		if _, err := federatedSelect(s.mediator, q, rdf.AKTNS, targets); err != nil {
			t.Fatal(err)
		}
	}
	st := s.mediator.Stats().Federation
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 2/1", st.CacheHits, st.CacheMisses)
	}
	if len(st.Endpoints) != 2 {
		t.Fatalf("endpoints tracked = %d, want 2", len(st.Endpoints))
	}
	for _, es := range st.Endpoints {
		if es.Breaker != "closed" || es.Successes != 3 {
			t.Fatalf("endpoint stats = %+v", es)
		}
	}
}

func TestGuessSourceOntology(t *testing.T) {
	s := newStack(t)
	got, err := s.mediator.GuessSourceOntology(workload.Figure1Query(0))
	if err != nil || got != rdf.AKTNS {
		t.Fatalf("guess = %q %v", got, err)
	}
	if _, err := s.mediator.GuessSourceOntology(`SELECT ?s WHERE { ?s <http://unknown/p> ?o }`); err == nil {
		t.Fatal("unknown vocabulary must error")
	}
}

// TestGuessSourceOntologyScansTemplate is the regression test for the
// CONSTRUCT/DESCRIBE fix: a query whose WHERE clause uses no registered
// vocabulary can still be attributed through its template triples.
func TestGuessSourceOntologyScansTemplate(t *testing.T) {
	s := newStack(t)
	got, err := s.mediator.GuessSourceOntology(`PREFIX akt:<` + rdf.AKTNS + `>
CONSTRUCT { ?p akt:has-author ?a }
WHERE { ?p <http://unknown.example/wrote> ?a }`)
	if err != nil || got != rdf.AKTNS {
		t.Fatalf("template guess = %q %v", got, err)
	}
	// Template votes accumulate with WHERE votes: a KISTI-dominated query
	// with one AKT template triple still guesses KISTI.
	got, err = s.mediator.GuessSourceOntology(`PREFIX akt:<` + rdf.AKTNS + `>
PREFIX kisti:<` + rdf.KISTINS + `>
CONSTRUCT { ?p akt:has-author ?a }
WHERE { ?p kisti:hasCreatorInfo ?c . ?c kisti:hasCreator ?a }`)
	if err != nil || got != rdf.KISTINS {
		t.Fatalf("majority guess = %q %v", got, err)
	}
}

func TestHTTPAPIDatasets(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("datasets = %v", infos)
	}
}

func TestHTTPAPIRewrite(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	body, _ := json.Marshal(rewriteRequest{
		Query:  workload.Figure1Query(0),
		Target: workload.KistiVoidURI,
		// Source omitted: the mediator guesses AKT from the vocabulary.
	})
	resp, err := http.Post(srv.URL+"/api/rewrite", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rr rewriteResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rr.Query, "kisti:hasCreatorInfo") {
		t.Fatalf("rewritten = %s", rr.Query)
	}
	if rr.AlignmentsUsed != 24 {
		t.Fatalf("alignments used = %d", rr.AlignmentsUsed)
	}
}

func TestHTTPSparqlFederated(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	form := url.Values{
		"query":  {workload.Figure1Query(0)},
		"target": {workload.SotonVoidURI, workload.KistiVoidURI},
	}
	resp, err := http.PostForm(srv.URL+"/sparql", form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	res, boolean, err := srjson.Decode(body)
	if err != nil || boolean != nil {
		t.Fatalf("decode: %v boolean=%v", err, boolean)
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no federated rows")
	}
}

func TestHTTPAPIStats(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	if _, err := federatedSelect(s.mediator, workload.Figure1Query(0), rdf.AKTNS,
		[]string{workload.SotonVoidURI, workload.KistiVoidURI}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Federation.Endpoints) != 2 {
		t.Fatalf("stats endpoints = %+v", st.Federation.Endpoints)
	}
	for _, es := range st.Federation.Endpoints {
		if es.Requests == 0 || es.Breaker != "closed" {
			t.Fatalf("endpoint stats = %+v", es)
		}
	}
	if st.Queries.Select == 0 {
		t.Fatalf("per-form counters missing: %+v", st.Queries)
	}
}

func TestHTTPUIServed(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if !strings.Contains(html, "SPARQL Query Rewriter") || !strings.Contains(html, "KISTI") {
		t.Fatalf("UI page wrong:\n%s", html)
	}
	// bad paths 404
	resp2, _ := http.Get(srv.URL + "/nope")
	if resp2.StatusCode != 404 {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	resp2.Body.Close()
}

func TestHTTPAPIErrors(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	// GET on POST-only endpoints
	for _, path := range []string{"/api/rewrite", "/api/plan"} {
		resp, _ := http.Get(srv.URL + path)
		if resp.StatusCode != 405 {
			t.Fatalf("%s GET status = %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	// invalid JSON
	resp, _ := http.Post(srv.URL+"/api/rewrite", "application/json", strings.NewReader("{"))
	if resp.StatusCode != 400 {
		t.Fatalf("bad json status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
