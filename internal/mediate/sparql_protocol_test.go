package mediate

// W3C SPARQL 1.1 Protocol conformance tests for the /sparql endpoint:
// table-driven over request method × query form × Accept header, plus the
// failure paths (406 on unservable Accept, 400 with a JSON error document
// on malformed queries, 405 on other methods) and mid-stream client
// disconnect cancelling upstream work for graph results.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"sparqlrw/internal/ntriples"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/turtle"
	"sparqlrw/internal/workload"
)

// doSparql issues one protocol request in the given shape.
func doSparql(t *testing.T, base, method, query, accept string) *http.Response {
	t.Helper()
	var req *http.Request
	var err error
	switch method {
	case "GET":
		req, err = http.NewRequest(http.MethodGet, base+"/sparql?query="+url.QueryEscape(query), nil)
	case "POST-form":
		form := url.Values{"query": {query}}
		req, err = http.NewRequest(http.MethodPost, base+"/sparql", strings.NewReader(form.Encode()))
		if err == nil {
			req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		}
	case "POST-direct":
		req, err = http.NewRequest(http.MethodPost, base+"/sparql", strings.NewReader(query))
		if err == nil {
			req.Header.Set("Content-Type", "application/sparql-query")
		}
	default:
		t.Fatalf("unknown method %s", method)
	}
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

func parseSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" || cur.data != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept  string
		offered []string
		want    string
		ok      bool
	}{
		{"", bindingsOffered, ctSRJ, true},
		{"*/*", bindingsOffered, ctSRJ, true},
		{"application/x-ndjson", bindingsOffered, ctNDJSON, true},
		{"text/event-stream;q=0.5, application/x-ndjson;q=0.9", bindingsOffered, ctNDJSON, true},
		{"text/csv", bindingsOffered, "", false},
		{"text/turtle", graphOffered, ctTurtle, true},
		{"text/*", graphOffered, ctTurtle, true},
		// An explicit q=0 excludes the type even under a wildcard
		// (specificity beats the wildcard's q, RFC 9110 §12.5.1).
		{"application/n-triples;q=0, */*", graphOffered, ctTurtle, true},
		{"application/n-triples;q=0, text/turtle;q=0", graphOffered, "", false},
	}
	for _, tc := range cases {
		got, ok := negotiate(tc.accept, tc.offered)
		if got != tc.want || ok != tc.ok {
			t.Errorf("negotiate(%q) = %q/%v, want %q/%v", tc.accept, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSparqlProtocolConformance(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	person := workload.SotonPerson(0).Value
	selectQ := workload.Figure1Query(0)
	askQ := `PREFIX akt:<` + rdf.AKTNS + `> ASK { ?paper akt:has-author <` + person + `> }`
	constructQ := `PREFIX akt:<` + rdf.AKTNS + `>
CONSTRUCT { ?paper <http://example.org/writtenBy> ?a }
WHERE { ?paper akt:has-author ?a }`
	describeQ := `DESCRIBE <` + person + `>`

	checkSRJSelect := func(t *testing.T, body []byte) {
		res, boolean, err := srjson.Decode(body)
		if err != nil || boolean != nil {
			t.Fatalf("SRJ decode: %v (boolean=%v)", err, boolean)
		}
		if len(res.Solutions) == 0 {
			t.Fatal("no bindings")
		}
	}
	checkSRJBool := func(t *testing.T, body []byte) {
		_, boolean, err := srjson.Decode(body)
		if err != nil || boolean == nil {
			t.Fatalf("SRJ decode: %v (boolean=%v)", err, boolean)
		}
		if !*boolean {
			t.Fatal("ASK should be true")
		}
	}
	checkNDJSON := func(t *testing.T, body []byte) {
		rows := 0
		for _, line := range bytes.Split(body, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var binding map[string]json.RawMessage
			if err := json.Unmarshal(line, &binding); err != nil {
				t.Fatalf("NDJSON line: %v\n%s", err, line)
			}
			if _, isErr := binding["error"]; isErr {
				t.Fatalf("NDJSON error line: %s", line)
			}
			rows++
		}
		if rows == 0 {
			t.Fatal("no NDJSON rows")
		}
	}
	checkNDJSONBool := func(t *testing.T, body []byte) {
		var doc struct {
			Boolean *bool `json:"boolean"`
		}
		if err := json.Unmarshal(bytes.TrimSpace(body), &doc); err != nil || doc.Boolean == nil || !*doc.Boolean {
			t.Fatalf("NDJSON boolean = %s (%v)", body, err)
		}
	}
	checkSSE := func(t *testing.T, body []byte) {
		events := parseSSE(t, bytes.NewReader(body))
		bindings, summaries := 0, 0
		for _, ev := range events {
			switch ev.name {
			case "binding":
				bindings++
			case "summary":
				summaries++
				var sum sseSummary
				if err := json.Unmarshal([]byte(ev.data), &sum); err != nil {
					t.Fatalf("summary event: %v\n%s", err, ev.data)
				}
				if len(sum.PerDataset) == 0 {
					t.Fatalf("summary without per-dataset answers: %s", ev.data)
				}
			case "error":
				t.Fatalf("error event: %s", ev.data)
			}
		}
		if bindings == 0 || summaries != 1 {
			t.Fatalf("SSE events: %d bindings, %d summaries", bindings, summaries)
		}
	}
	checkNTriples := func(t *testing.T, body []byte) {
		g, err := ntriples.ParseString(string(body))
		if err != nil {
			t.Fatalf("N-Triples parse: %v\n%s", err, body)
		}
		if len(g) == 0 {
			t.Fatal("no triples")
		}
	}
	checkTurtle := func(t *testing.T, body []byte) {
		g, _, err := turtle.Parse(string(body))
		if err != nil {
			t.Fatalf("Turtle parse: %v\n%s", err, body)
		}
		if len(g) == 0 {
			t.Fatal("no triples")
		}
	}

	cases := []struct {
		name   string
		method string
		query  string
		accept string
		wantCT string
		check  func(*testing.T, []byte)
	}{
		{"GET select default", "GET", selectQ, "", ctSRJ, checkSRJSelect},
		{"POST-form select SRJ", "POST-form", selectQ, ctSRJ, ctSRJ, checkSRJSelect},
		{"POST-direct select wildcard", "POST-direct", selectQ, "*/*", ctSRJ, checkSRJSelect},
		{"GET select NDJSON", "GET", selectQ, ctNDJSON, ctNDJSON, checkNDJSON},
		{"POST-form select SSE", "POST-form", selectQ, ctSSE, ctSSE, checkSSE},
		{"GET ask default", "GET", askQ, "", ctSRJ, checkSRJBool},
		{"POST-form ask SRJ", "POST-form", askQ, ctSRJ, ctSRJ, checkSRJBool},
		{"POST-direct ask NDJSON", "POST-direct", askQ, ctNDJSON, ctNDJSON, checkNDJSONBool},
		{"GET construct default", "GET", constructQ, "", ctNTriples, checkNTriples},
		{"POST-form construct ntriples", "POST-form", constructQ, ctNTriples, ctNTriples, checkNTriples},
		{"POST-direct construct turtle", "POST-direct", constructQ, ctTurtle, ctTurtle, checkTurtle},
		{"GET describe default", "GET", describeQ, "", ctNTriples, checkNTriples},
		{"POST-form describe turtle", "POST-form", describeQ, "text/turtle;q=0.9, application/n-triples;q=0.4", ctTurtle, checkTurtle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doSparql(t, srv.URL, tc.method, tc.query, tc.accept)
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status = %d\n%s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantCT) {
				t.Fatalf("Content-Type = %q, want %q", ct, tc.wantCT)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, body)
		})
	}
}

func TestSparqlProtocolFailures(t *testing.T) {
	s := newStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()
	person := workload.SotonPerson(0).Value

	errorDoc := func(t *testing.T, resp *http.Response) string {
		t.Helper()
		if ct := resp.Header.Get("Content-Type"); ct != ctJSON {
			t.Fatalf("error document Content-Type = %q", ct)
		}
		var doc map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("error document: %v", err)
		}
		if doc["error"] == "" {
			t.Fatalf("error document without error member: %v", doc)
		}
		return doc["error"]
	}

	t.Run("406 unservable accept bindings", func(t *testing.T) {
		resp := doSparql(t, srv.URL, "GET", workload.Figure1Query(0), "text/csv")
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotAcceptable {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		errorDoc(t, resp)
	})
	t.Run("406 bindings type for graph result", func(t *testing.T) {
		resp := doSparql(t, srv.URL, "GET", `DESCRIBE <`+person+`>`, ctSRJ)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotAcceptable {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		errorDoc(t, resp)
	})
	t.Run("400 malformed query", func(t *testing.T) {
		resp := doSparql(t, srv.URL, "POST-form", "SELEKT ?x WHERE", "")
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if msg := errorDoc(t, resp); !strings.Contains(msg, "sparql") {
			t.Fatalf("parse error not surfaced: %q", msg)
		}
	})
	t.Run("400 missing query", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/sparql")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		errorDoc(t, resp)
	})
	t.Run("405 other methods", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/sparql", strings.NewReader("query=ASK{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Fatalf("Allow = %q", allow)
		}
	})
}

// TestSparqlGraphDisconnectCancelsUpstream: dropping the connection in
// the middle of a streamed CONSTRUCT response must cancel the in-flight
// endpoint sub-queries, exactly like the bindings path.
func TestSparqlGraphDisconnectCancelsUpstream(t *testing.T) {
	s := newStreamStack(t)
	srv := httptest.NewServer(Handler(s.mediator))
	defer srv.Close()

	construct := `PREFIX akt:<` + rdf.AKTNS + `>
CONSTRUCT { ?paper <http://example.org/writtenBy> ?a }
WHERE { ?paper akt:has-author ?a }`
	form := url.Values{"query": {construct}, "source": {rdf.AKTNS}, "target": s.targets}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/sparql", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ctNTriples {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Read the first streamed triple so the fan-out is demonstrably live
	// (the gated sub-query is in flight), then drop the connection.
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ntriples.ParseString(line); err != nil {
		t.Fatalf("first line is not a triple: %v\n%s", err, line)
	}
	for s.slowStarted.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()

	select {
	case <-s.slowCancelled:
		// The disconnect travelled: handler ctx -> executor -> endpoint
		// client -> gated endpoint's request context.
	case <-time.After(10 * time.Second):
		t.Fatal("client disconnect did not cancel the in-flight endpoint sub-query")
	}
}
