// Package funcs implements the data-manipulation functions of the paper's
// functional dependencies (§3.2.2/§3.3): a registry keyed by function IRI
// — "the adoption of name spaces allows the unique identification of
// functions across organizations" — the sameas co-reference function, and
// a set of further transformation functions (URI prefix swaps, unit and
// string conversions) exercising the paper's discussion of heterogeneous
// value representations.
package funcs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sparqlrw/internal/rdf"
)

// Func is one registered data-manipulation function. Functions run at
// rewrite time (the paper's "safe assumption": the site executing the
// rewritten query need not know any of them).
type Func struct {
	// IRI identifies the function globally (e.g. map:sameas).
	IRI string
	// Doc describes the function for tooling.
	Doc string
	// Call applies the function to ground arguments.
	Call func(args []rdf.Term) (rdf.Term, error)
}

// Registry maps function IRIs to implementations. It is safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]*Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: map[string]*Func{}}
}

// Register adds or replaces a function.
func (r *Registry) Register(f *Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[f.IRI] = f
}

// Lookup finds a function by IRI.
func (r *Registry) Lookup(iri string) (*Func, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[iri]
	return f, ok
}

// Call invokes the function registered under iri.
func (r *Registry) Call(iri string, args []rdf.Term) (rdf.Term, error) {
	f, ok := r.Lookup(iri)
	if !ok {
		return rdf.Term{}, fmt.Errorf("funcs: unknown function <%s>", iri)
	}
	return f.Call(args)
}

// IRIs returns the registered function IRIs, sorted.
func (r *Registry) IRIs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for iri := range r.funcs {
		out = append(out, iri)
	}
	sort.Strings(out)
	return out
}

// Resolver adapts the registry to the evaluator's FuncResolver signature.
func (r *Registry) Resolver() func(iri string) (func([]rdf.Term) (rdf.Term, error), bool) {
	return func(iri string) (func([]rdf.Term) (rdf.Term, error), bool) {
		f, ok := r.Lookup(iri)
		if !ok {
			return nil, false
		}
		return f.Call, true
	}
}

// CorefSource supplies owl:sameAs equivalence classes; both coref.Store
// and coref.Client satisfy it.
type CorefSource interface {
	Equivalents(uri string) []string
}

// regexCache avoids recompiling the URI-space patterns that appear in
// every functional dependency application.
var regexCache sync.Map // string -> *regexp.Regexp

func compileCached(pattern string) (*regexp.Regexp, error) {
	if re, ok := regexCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	regexCache.Store(pattern, re)
	return re, nil
}

// ErrNoEquivalent reports that sameas found no equivalence-class member
// matching the requested URI-space pattern. The rewriter's FD-failure
// policy decides what happens next.
type ErrNoEquivalent struct {
	URI     string
	Pattern string
}

func (e *ErrNoEquivalent) Error() string {
	return fmt.Sprintf("funcs: no equivalent of <%s> matches %q", e.URI, e.Pattern)
}

// NewSameAs builds the paper's sameas function over a co-reference source:
//
//	sameas(x, pattern) = x                      if x is unbound (a variable)
//	                   = z ∈ [x] with z ~ pattern   otherwise
//
// where [x] is the owl:sameAs equivalence class of x. An unbound first
// argument passes through unchanged — the paper's "simple default
// mechanism". A bound argument with no matching equivalent yields
// *ErrNoEquivalent.
func NewSameAs(src CorefSource) *Func {
	return &Func{
		IRI: rdf.MapSameAs,
		Doc: "sameas(x, uriSpacePattern): co-reference translation into a target URI space (§3.3)",
		Call: func(args []rdf.Term) (rdf.Term, error) {
			if len(args) != 2 {
				return rdf.Term{}, fmt.Errorf("funcs: sameas takes 2 arguments, got %d", len(args))
			}
			x, pat := args[0], args[1]
			// Unbound (variable or blank) first argument: identity.
			if x.IsVar() || x.IsBlank() {
				return x, nil
			}
			if !x.IsIRI() {
				return rdf.Term{}, fmt.Errorf("funcs: sameas over non-IRI %s", x)
			}
			if !pat.IsLiteral() {
				return rdf.Term{}, fmt.Errorf("funcs: sameas pattern must be a literal, got %s", pat)
			}
			re, err := compileCached(pat.Value)
			if err != nil {
				return rdf.Term{}, fmt.Errorf("funcs: bad sameas pattern %q: %w", pat.Value, err)
			}
			for _, cand := range src.Equivalents(x.Value) {
				if re.MatchString(cand) {
					return rdf.NewIRI(cand), nil
				}
			}
			return rdf.Term{}, &ErrNoEquivalent{URI: x.Value, Pattern: pat.Value}
		},
	}
}

// NewPrefixSwap builds prefixSwap(x, fromPrefix, toPrefix): a purely
// syntactic URI-space translation for data sets whose identifiers differ
// only by namespace (common in RKB mirrors).
func NewPrefixSwap() *Func {
	return &Func{
		IRI: rdf.MapNS + "prefixSwap",
		Doc: "prefixSwap(uri, from, to): rewrites the URI prefix syntactically",
		Call: func(args []rdf.Term) (rdf.Term, error) {
			if len(args) != 3 {
				return rdf.Term{}, fmt.Errorf("funcs: prefixSwap takes 3 arguments, got %d", len(args))
			}
			x := args[0]
			if x.IsVar() || x.IsBlank() {
				return x, nil
			}
			if !x.IsIRI() || !args[1].IsLiteral() || !args[2].IsLiteral() {
				return rdf.Term{}, fmt.Errorf("funcs: prefixSwap argument types invalid")
			}
			if !strings.HasPrefix(x.Value, args[1].Value) {
				return rdf.Term{}, fmt.Errorf("funcs: <%s> does not start with %q", x.Value, args[1].Value)
			}
			return rdf.NewIRI(args[2].Value + strings.TrimPrefix(x.Value, args[1].Value)), nil
		},
	}
}

// numeric1 wraps a float64 transformation as a unary literal function with
// an identity pass-through for unbound arguments. Results are rounded to
// six decimal places: rewritten queries match data by term identity, so
// the lexical form must be stable, not carry float noise.
func numeric1(iri, doc string, fn func(float64) float64) *Func {
	return &Func{
		IRI: iri,
		Doc: doc,
		Call: func(args []rdf.Term) (rdf.Term, error) {
			if len(args) != 1 {
				return rdf.Term{}, fmt.Errorf("funcs: <%s> takes 1 argument, got %d", iri, len(args))
			}
			x := args[0]
			if x.IsVar() || x.IsBlank() {
				return x, nil
			}
			f, ok := x.Float()
			if !ok {
				// plain literals holding numbers are accepted too
				if x.IsLiteral() {
					if v, err := strconv.ParseFloat(x.Value, 64); err == nil {
						return roundedDecimal(fn(v)), nil
					}
				}
				return rdf.Term{}, fmt.Errorf("funcs: <%s> over non-numeric %s", iri, x)
			}
			return roundedDecimal(fn(f)), nil
		},
	}
}

// roundedDecimal renders f as an xsd:decimal with at most six decimal
// places, trimming trailing zeros.
func roundedDecimal(f float64) rdf.Term {
	s := strconv.FormatFloat(f, 'f', 6, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	return rdf.NewTypedLiteral(s, rdf.XSDDecimal)
}

// string1 wraps a string transformation as a unary literal function.
func string1(iri, doc string, fn func(string) string) *Func {
	return &Func{
		IRI: iri,
		Doc: doc,
		Call: func(args []rdf.Term) (rdf.Term, error) {
			if len(args) != 1 {
				return rdf.Term{}, fmt.Errorf("funcs: <%s> takes 1 argument, got %d", iri, len(args))
			}
			x := args[0]
			if x.IsVar() || x.IsBlank() {
				return x, nil
			}
			if !x.IsLiteral() {
				return rdf.Term{}, fmt.Errorf("funcs: <%s> over non-literal %s", iri, x)
			}
			out := x
			out.Value = fn(x.Value)
			return out, nil
		},
	}
}

// NewConcat builds concat(args...): string concatenation of literal
// lexical forms, for schemas that merge address-style fields (§4's
// structural-conflict discussion).
func NewConcat() *Func {
	return &Func{
		IRI: rdf.MapNS + "concat",
		Doc: "concat(literals...): concatenates lexical forms with single spaces",
		Call: func(args []rdf.Term) (rdf.Term, error) {
			parts := make([]string, 0, len(args))
			for _, a := range args {
				if a.IsVar() || a.IsBlank() {
					return a, nil // any unbound argument defers the whole concat
				}
				if !a.IsLiteral() {
					return rdf.Term{}, fmt.Errorf("funcs: concat over non-literal %s", a)
				}
				parts = append(parts, a.Value)
			}
			return rdf.NewLiteral(strings.Join(parts, " ")), nil
		},
	}
}

// StandardRegistry returns a registry with every built-in transformation
// function registered, with sameas backed by src.
func StandardRegistry(src CorefSource) *Registry {
	r := NewRegistry()
	r.Register(NewSameAs(src))
	r.Register(NewPrefixSwap())
	r.Register(NewConcat())
	r.Register(numeric1(rdf.MapNS+"kmToMiles", "kilometres to miles", func(f float64) float64 { return f * 0.621371 }))
	r.Register(numeric1(rdf.MapNS+"milesToKm", "miles to kilometres", func(f float64) float64 { return f / 0.621371 }))
	r.Register(numeric1(rdf.MapNS+"celsiusToFahrenheit", "Celsius to Fahrenheit", func(f float64) float64 { return f*9/5 + 32 }))
	r.Register(numeric1(rdf.MapNS+"fahrenheitToCelsius", "Fahrenheit to Celsius", func(f float64) float64 { return (f - 32) * 5 / 9 }))
	r.Register(string1(rdf.MapNS+"toUpper", "upper-cases a literal", strings.ToUpper))
	r.Register(string1(rdf.MapNS+"toLower", "lower-cases a literal", strings.ToLower))
	r.Register(string1(rdf.MapNS+"trim", "trims surrounding whitespace", strings.TrimSpace))
	return r
}
