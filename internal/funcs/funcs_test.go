package funcs

import (
	"errors"
	"strings"
	"testing"

	"sparqlrw/internal/coref"
	"sparqlrw/internal/rdf"
)

func paperCoref() *coref.Store {
	s := coref.NewStore()
	s.Add("http://southampton.rkbexplorer.com/id/person-02686",
		"http://kisti.rkbexplorer.com/id/PER_00000000105047")
	s.Add("http://southampton.rkbexplorer.com/id/person-02686",
		"http://dbpedia.org/resource/Nigel_Shadbolt")
	return s
}

func TestSameAsPaperExample(t *testing.T) {
	f := NewSameAs(paperCoref())
	got, err := f.Call([]rdf.Term{
		rdf.NewIRI("http://southampton.rkbexplorer.com/id/person-02686"),
		rdf.NewLiteral(`http://kisti\.rkbexplorer\.com/id/\S*`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != rdf.NewIRI("http://kisti.rkbexplorer.com/id/PER_00000000105047") {
		t.Fatalf("sameas = %v", got)
	}
}

func TestSameAsUnboundPassthrough(t *testing.T) {
	f := NewSameAs(paperCoref())
	v := rdf.NewVar("paper")
	got, err := f.Call([]rdf.Term{v, rdf.NewLiteral(".*")})
	if err != nil || got != v {
		t.Fatalf("unbound passthrough = %v %v", got, err)
	}
	b := rdf.NewBlank("p1")
	got, err = f.Call([]rdf.Term{b, rdf.NewLiteral(".*")})
	if err != nil || got != b {
		t.Fatalf("blank passthrough = %v %v", got, err)
	}
}

func TestSameAsNoEquivalent(t *testing.T) {
	f := NewSameAs(paperCoref())
	_, err := f.Call([]rdf.Term{
		rdf.NewIRI("http://southampton.rkbexplorer.com/id/person-02686"),
		rdf.NewLiteral(`http://acm\.example/\S*`),
	})
	var noEq *ErrNoEquivalent
	if !errors.As(err, &noEq) {
		t.Fatalf("want ErrNoEquivalent, got %v", err)
	}
	if noEq.URI == "" || noEq.Pattern == "" {
		t.Fatalf("error fields empty: %+v", noEq)
	}
}

func TestSameAsErrors(t *testing.T) {
	f := NewSameAs(paperCoref())
	cases := [][]rdf.Term{
		{rdf.NewIRI("http://x")},                               // arity
		{rdf.NewLiteral("lit"), rdf.NewLiteral(".*")},          // non-IRI subject
		{rdf.NewIRI("http://x"), rdf.NewIRI("http://pat")},     // non-literal pattern
		{rdf.NewIRI("http://x"), rdf.NewLiteral("([unclosed")}, // bad regex
	}
	for i, args := range cases {
		if _, err := f.Call(args); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestPrefixSwap(t *testing.T) {
	f := NewPrefixSwap()
	got, err := f.Call([]rdf.Term{
		rdf.NewIRI("http://a.example/id/42"),
		rdf.NewLiteral("http://a.example/id/"),
		rdf.NewLiteral("http://b.example/thing/"),
	})
	if err != nil || got.Value != "http://b.example/thing/42" {
		t.Fatalf("prefixSwap = %v %v", got, err)
	}
	if _, err := f.Call([]rdf.Term{
		rdf.NewIRI("http://other/x"),
		rdf.NewLiteral("http://a.example/"),
		rdf.NewLiteral("http://b.example/"),
	}); err == nil {
		t.Fatal("non-matching prefix should error")
	}
	v := rdf.NewVar("x")
	if got, err := f.Call([]rdf.Term{v, rdf.NewLiteral("a"), rdf.NewLiteral("b")}); err != nil || got != v {
		t.Fatal("unbound passthrough failed")
	}
}

func TestNumericConversions(t *testing.T) {
	r := StandardRegistry(paperCoref())
	got, err := r.Call(rdf.MapNS+"kmToMiles", []rdf.Term{rdf.NewInteger(100)})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := got.Float()
	if f < 62.1 || f > 62.2 {
		t.Fatalf("kmToMiles(100) = %v", got)
	}
	got, err = r.Call(rdf.MapNS+"celsiusToFahrenheit", []rdf.Term{rdf.NewInteger(100)})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := got.Float(); f != 212 {
		t.Fatalf("c2f(100) = %v", got)
	}
	// plain literal holding a number is accepted
	got, err = r.Call(rdf.MapNS+"kmToMiles", []rdf.Term{rdf.NewLiteral("10")})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := got.Float(); f < 6.2 || f > 6.3 {
		t.Fatalf("kmToMiles(\"10\") = %v", got)
	}
	if _, err := r.Call(rdf.MapNS+"kmToMiles", []rdf.Term{rdf.NewLiteral("NaNsense")}); err == nil {
		t.Fatal("non-numeric literal should error")
	}
}

func TestStringFunctions(t *testing.T) {
	r := StandardRegistry(paperCoref())
	got, _ := r.Call(rdf.MapNS+"toUpper", []rdf.Term{rdf.NewLiteral("abc")})
	if got.Value != "ABC" {
		t.Fatalf("toUpper = %v", got)
	}
	got, _ = r.Call(rdf.MapNS+"trim", []rdf.Term{rdf.NewLiteral("  x ")})
	if got.Value != "x" {
		t.Fatalf("trim = %v", got)
	}
	// language tags survive string transforms
	got, _ = r.Call(rdf.MapNS+"toLower", []rdf.Term{rdf.NewLangLiteral("HI", "en")})
	if got != rdf.NewLangLiteral("hi", "en") {
		t.Fatalf("toLower lang = %v", got)
	}
}

func TestConcat(t *testing.T) {
	r := StandardRegistry(paperCoref())
	got, err := r.Call(rdf.MapNS+"concat", []rdf.Term{
		rdf.NewLiteral("1600"), rdf.NewLiteral("Pennsylvania"), rdf.NewLiteral("Ave"),
	})
	if err != nil || got.Value != "1600 Pennsylvania Ave" {
		t.Fatalf("concat = %v %v", got, err)
	}
	// unbound argument defers
	v := rdf.NewVar("street")
	got, err = r.Call(rdf.MapNS+"concat", []rdf.Term{rdf.NewLiteral("x"), v})
	if err != nil || got != v {
		t.Fatalf("concat defer = %v %v", got, err)
	}
}

func TestRegistryLookupAndIRIs(t *testing.T) {
	r := StandardRegistry(paperCoref())
	if _, ok := r.Lookup(rdf.MapSameAs); !ok {
		t.Fatal("sameas not registered")
	}
	if _, err := r.Call("http://nope/fn", nil); err == nil {
		t.Fatal("unknown function must error")
	}
	iris := r.IRIs()
	if len(iris) < 8 {
		t.Fatalf("registry too small: %v", iris)
	}
	for i := 1; i < len(iris); i++ {
		if iris[i-1] >= iris[i] {
			t.Fatal("IRIs not sorted")
		}
	}
}

func TestResolverAdapter(t *testing.T) {
	r := StandardRegistry(paperCoref())
	res := r.Resolver()
	fn, ok := res(rdf.MapNS + "toUpper")
	if !ok {
		t.Fatal("resolver miss")
	}
	got, err := fn([]rdf.Term{rdf.NewLiteral("x")})
	if err != nil || got.Value != "X" {
		t.Fatalf("resolved call = %v %v", got, err)
	}
	if _, ok := res("http://nope"); ok {
		t.Fatal("resolver false positive")
	}
}

func TestDocsPresent(t *testing.T) {
	r := StandardRegistry(paperCoref())
	for _, iri := range r.IRIs() {
		f, _ := r.Lookup(iri)
		if strings.TrimSpace(f.Doc) == "" {
			t.Errorf("function %s lacks documentation", iri)
		}
	}
}
