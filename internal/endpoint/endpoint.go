// Package endpoint implements the SPARQL protocol over HTTP: a server
// exposing a triple store as a query endpoint (standing in for the remote
// SPARQL/HTTP data sets of the paper's Figure 5) and a client used by the
// mediator to execute rewritten queries remotely.
package endpoint

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/ntriples"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/srjson"
	"sparqlrw/internal/store"
)

// Server serves SPARQL queries over one store.
type Server struct {
	Engine *eval.Engine
	// Name labels the endpoint in diagnostics.
	Name string
}

// NewServer wraps a store as a SPARQL protocol server.
func NewServer(name string, st *store.Store) *Server {
	return &Server{Engine: eval.New(st), Name: name}
}

// ServeHTTP handles the SPARQL protocol:
//
//	GET  /sparql?query=...            (query in URL)
//	POST /sparql  application/x-www-form-urlencoded  query=...
//	POST /sparql  application/sparql-query            <body is the query>
//
// SELECT and ASK return application/sparql-results+json; CONSTRUCT
// returns N-Triples.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var queryText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		switch {
		case strings.HasPrefix(ct, "application/sparql-query"):
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, "cannot read body", http.StatusBadRequest)
				return
			}
			queryText = string(body)
		default:
			if err := r.ParseForm(); err != nil {
				http.Error(w, "cannot parse form", http.StatusBadRequest)
				return
			}
			queryText = r.PostForm.Get("query")
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(queryText) == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(queryText)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse error: %v", err), http.StatusBadRequest)
		return
	}
	switch q.Form {
	case sparql.Select:
		res, err := s.Engine.Select(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		eval.SortSolutions(res.Solutions)
		data, err := srjson.EncodeSelect(res)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		_, _ = w.Write(data)
	case sparql.Ask:
		b, err := s.Engine.Ask(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data, err := srjson.EncodeAsk(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		_, _ = w.Write(data)
	case sparql.Construct:
		g, err := s.Engine.Construct(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples")
		_, _ = w.Write([]byte(ntriples.Format(g.Sort())))
	default:
		http.Error(w, "unsupported query form", http.StatusBadRequest)
	}
}

// Client executes SPARQL queries against remote endpoints via HTTP, the
// "SPARQL/HTTP" arrows of Figure 5.
type Client struct {
	HTTP *http.Client
}

// sharedTransport is the one transport every endpoint.Client shares: the
// mediator fans a query out to many repositories concurrently and on
// every request, so connections must be pooled and kept alive rather
// than re-dialled per call (and per-endpoint limits must not be the Go
// defaults of 2 idle connections per host). Only the transport is shared
// — each Client owns its http.Client, so mutating one client's fields
// cannot affect another's.
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        128,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
	ForceAttemptHTTP2:   true,
}

// defaultTimeout bounds requests whose context carries no deadline (the
// non-context Select/Ask/Construct paths). It is applied per request in
// post rather than as http.Client.Timeout, which would silently cap
// caller-supplied context deadlines.
const defaultTimeout = 30 * time.Second

// NewClient returns a client backed by the shared pooled transport.
// Callers needing different behaviour may replace HTTP, or pass
// per-request deadlines via the *Context methods.
func NewClient() *Client {
	return &Client{HTTP: &http.Client{Transport: sharedTransport}}
}

// Select runs a SELECT query at the endpoint URL.
func (c *Client) Select(endpointURL, queryText string) (*eval.Result, error) {
	return c.SelectContext(context.Background(), endpointURL, queryText)
}

// SelectContext runs a SELECT query, honouring ctx's cancellation and
// deadline.
func (c *Client) SelectContext(ctx context.Context, endpointURL, queryText string) (*eval.Result, error) {
	body, err := c.post(ctx, endpointURL, queryText)
	if err != nil {
		return nil, err
	}
	res, _, err := srjson.Decode(body)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("endpoint: expected SELECT results from %s", endpointURL)
	}
	return res, nil
}

// Ask runs an ASK query at the endpoint URL.
func (c *Client) Ask(endpointURL, queryText string) (bool, error) {
	return c.AskContext(context.Background(), endpointURL, queryText)
}

// AskContext runs an ASK query, honouring ctx's cancellation and deadline.
func (c *Client) AskContext(ctx context.Context, endpointURL, queryText string) (bool, error) {
	body, err := c.post(ctx, endpointURL, queryText)
	if err != nil {
		return false, err
	}
	_, b, err := srjson.Decode(body)
	if err != nil {
		return false, err
	}
	if b == nil {
		return false, fmt.Errorf("endpoint: expected boolean result from %s", endpointURL)
	}
	return *b, nil
}

// Construct runs a CONSTRUCT query and parses the returned N-Triples.
func (c *Client) Construct(endpointURL, queryText string) (rdf.Graph, error) {
	return c.ConstructContext(context.Background(), endpointURL, queryText)
}

// ConstructContext runs a CONSTRUCT query, honouring ctx's cancellation
// and deadline.
func (c *Client) ConstructContext(ctx context.Context, endpointURL, queryText string) (rdf.Graph, error) {
	body, err := c.post(ctx, endpointURL, queryText)
	if err != nil {
		return nil, err
	}
	return ntriples.ParseString(string(body))
}

func (c *Client) post(ctx context.Context, endpointURL, queryText string) ([]byte, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, defaultTimeout)
		defer cancel()
	}
	form := url.Values{"query": {queryText}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpointURL,
		strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("endpoint: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("endpoint: %s returned %d: %s", endpointURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}
