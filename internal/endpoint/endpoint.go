// Package endpoint implements the SPARQL protocol over HTTP: a server
// exposing a triple store as a query endpoint (standing in for the remote
// SPARQL/HTTP data sets of the paper's Figure 5) and a client used by the
// mediator to execute rewritten queries remotely.
//
// Both sides are streaming-first: the server evaluates SELECT queries
// lazily and writes each solution as it is produced (chunked, flushed),
// and the client's SelectStream decodes response bodies incrementally, so
// neither side ever holds a whole result set (or a whole response body)
// in memory.
package endpoint

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/ntriples"
	"sparqlrw/internal/obs"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
	"sparqlrw/internal/srjson"
)

// DefaultMaxRequestBody caps POST query bodies read by the server.
const DefaultMaxRequestBody = 1 << 20 // 1 MB

// DefaultMaxResponseBody caps the buffered (non-streaming) client paths:
// ASK and CONSTRUCT responses, and error bodies. The streaming SELECT
// path decodes incrementally and needs no whole-body cap.
const DefaultMaxResponseBody = 64 << 20 // 64 MB

// FlushEvery is how often streaming handlers flush mid-stream after the
// first solution: the first row reaches the client immediately, later
// rows are batched to keep syscall overhead off the hot path. Shared by
// this server and the mediator's /sparql handler.
const FlushEvery = 64

// Server serves SPARQL queries over one store.
type Server struct {
	Engine *eval.Engine
	// Name labels the endpoint in diagnostics.
	Name string
	// MaxRequestBody caps how many bytes of a POST body are read
	// (0 = DefaultMaxRequestBody; negative = unlimited).
	MaxRequestBody int64
}

// NewServer wraps a triple source (a nested-map Store or a
// dictionary-encoded DictStore) as a SPARQL protocol server.
func NewServer(name string, st eval.TripleSource) *Server {
	return &Server{Engine: eval.New(st), Name: name}
}

func (s *Server) maxRequestBody() int64 {
	if s.MaxRequestBody == 0 {
		return DefaultMaxRequestBody
	}
	return s.MaxRequestBody
}

// ServeHTTP handles the SPARQL protocol:
//
//	GET  /sparql?query=...            (query in URL)
//	POST /sparql  application/x-www-form-urlencoded  query=...
//	POST /sparql  application/sparql-query            <body is the query>
//
// SELECT and ASK return application/sparql-results+json; CONSTRUCT and
// DESCRIBE return N-Triples. SELECT responses are streamed: solutions are written
// (and flushed) as the evaluator yields them, so the first binding is on
// the wire before evaluation finishes, and a cancelled request (client
// disconnect) stops evaluation at the next yield.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var queryText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		if limit := s.maxRequestBody(); limit > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		ct := r.Header.Get("Content-Type")
		switch {
		case strings.HasPrefix(ct, "application/sparql-query"):
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, "cannot read body", http.StatusBadRequest)
				return
			}
			queryText = string(body)
		default:
			if err := r.ParseForm(); err != nil {
				http.Error(w, "cannot parse form", http.StatusBadRequest)
				return
			}
			queryText = r.PostForm.Get("query")
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(queryText) == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(queryText)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse error: %v", err), http.StatusBadRequest)
		return
	}
	switch q.Form {
	case sparql.Select:
		sr, err := s.Engine.SelectSeq(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		flusher, _ := w.(http.Flusher)
		n := 0
		flush := func() {
			n++
			if flusher != nil && (n == 1 || n%FlushEvery == 0) {
				flusher.Flush()
			}
		}
		ctx := r.Context()
		seq := func(yield func(eval.Solution, error) bool) {
			for sol, err := range sr.Seq {
				if ctx.Err() != nil {
					return // client gone: stop evaluating
				}
				if !yield(sol, err) {
					return
				}
			}
		}
		// A mid-stream evaluation or write error can no longer change the
		// status line; aborting leaves truncated JSON, which the client's
		// incremental decoder reports as an error.
		_ = srjson.EncodeSelectStream(w, sr.Vars, seq, flush)
	case sparql.Ask:
		b, err := s.Engine.Ask(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		data, err := srjson.EncodeAsk(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		_, _ = w.Write(data)
	case sparql.Construct, sparql.Describe:
		var g rdf.Graph
		if q.Form == sparql.Construct {
			g, err = s.Engine.Construct(q)
		} else {
			g, err = s.Engine.Describe(q)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/n-triples")
		_, _ = w.Write([]byte(ntriples.Format(g.Sort())))
	default:
		http.Error(w, "unsupported query form", http.StatusBadRequest)
	}
}

// Client executes SPARQL queries against remote endpoints via HTTP, the
// "SPARQL/HTTP" arrows of Figure 5.
type Client struct {
	HTTP *http.Client
	// MaxResponseBody caps the buffered response paths — ASK, CONSTRUCT
	// and error bodies (0 = DefaultMaxResponseBody; negative =
	// unlimited). Streaming SELECT responses decode incrementally and are
	// not subject to it.
	MaxResponseBody int64
}

// sharedTransport is the one transport every endpoint.Client shares: the
// mediator fans a query out to many repositories concurrently and on
// every request, so connections must be pooled and kept alive rather
// than re-dialled per call (and per-endpoint limits must not be the Go
// defaults of 2 idle connections per host). Only the transport is shared
// — each Client owns its http.Client, so mutating one client's fields
// cannot affect another's.
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        128,
	MaxIdleConnsPerHost: 32,
	IdleConnTimeout:     90 * time.Second,
	ForceAttemptHTTP2:   true,
}

// defaultTimeout bounds requests whose context carries no deadline (the
// non-context Select/Ask/Construct paths). It is applied per request
// rather than as http.Client.Timeout, which would silently cap
// caller-supplied context deadlines. For streams it bounds the whole
// response body read.
const defaultTimeout = 30 * time.Second

// NewClient returns a client backed by the shared pooled transport,
// wrapped so that local:// URLs are dispatched in-process (see
// RegisterLocal) while everything else goes over the network.
func NewClient() *Client {
	return &Client{HTTP: &http.Client{Transport: &localTransport{next: sharedTransport}}}
}

func (c *Client) maxResponseBody() int64 {
	if c.MaxResponseBody == 0 {
		return DefaultMaxResponseBody
	}
	return c.MaxResponseBody
}

// Select runs a SELECT query at the endpoint URL.
func (c *Client) Select(endpointURL, queryText string) (*eval.Result, error) {
	return c.SelectContext(context.Background(), endpointURL, queryText)
}

// SelectContext runs a SELECT query, honouring ctx's cancellation and
// deadline. It drains the streaming path into a materialised Result;
// callers that can consume solutions incrementally should prefer
// SelectStreamContext.
func (c *Client) SelectContext(ctx context.Context, endpointURL, queryText string) (*eval.Result, error) {
	st, err := c.SelectStreamContext(ctx, endpointURL, queryText)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var sols []eval.Solution
	for {
		sol, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		sols = append(sols, sol)
	}
	return &eval.Result{Vars: st.Vars(), Solutions: sols}, nil
}

// SelectStream is an in-flight SELECT response: solutions decode from the
// wire on demand. Close releases the connection (and any internal
// deadline) and must always be called; it is safe to call twice.
type SelectStream struct {
	endpoint string
	dec      *srjson.StreamDecoder
	body     io.ReadCloser
	counted  *countingReader
	cancel   context.CancelFunc
	closed   bool
}

// countingReader counts the bytes read through it, so the federation
// layer can annotate each sub-query with its transfer size.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// SelectStreamContext opens a streaming SELECT against the endpoint URL.
// The returned stream decodes the response body incrementally: Next
// yields each solution as it arrives, io.EOF ends a well-formed stream,
// and ctx's cancellation tears the transfer down mid-body.
func (c *Client) SelectStreamContext(ctx context.Context, endpointURL, queryText string) (*SelectStream, error) {
	var cancel context.CancelFunc
	if _, ok := ctx.Deadline(); !ok {
		ctx, cancel = context.WithTimeout(ctx, defaultTimeout)
	}
	resp, err := c.do(ctx, endpointURL, queryText)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	counted := &countingReader{r: resp.Body}
	dec, err := srjson.NewStreamDecoder(counted)
	if err != nil {
		resp.Body.Close()
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	return &SelectStream{endpoint: endpointURL, dec: dec, body: resp.Body, counted: counted, cancel: cancel}, nil
}

// Vars returns the projection variables from the response head (final
// once Next has returned io.EOF, see srjson.StreamDecoder.Vars).
func (s *SelectStream) Vars() []string { return s.dec.Vars() }

// Bytes returns how many response-body bytes have been read so far.
func (s *SelectStream) Bytes() int64 { return s.counted.n.Load() }

// Next returns the next solution, io.EOF at the clean end of the stream,
// or the decode/transport error that terminated it.
func (s *SelectStream) Next() (eval.Solution, error) {
	sol, err := s.dec.Next()
	if err == io.EOF && !s.dec.SawResults() {
		return nil, fmt.Errorf("endpoint: expected SELECT results from %s", s.endpoint)
	}
	return sol, err
}

// All adapts the stream into a lazy solution sequence terminated by the
// first error (io.EOF is a clean end). The stream is closed when the
// sequence finishes or its consumer stops early.
func (s *SelectStream) All() eval.SolutionSeq {
	return func(yield func(eval.Solution, error) bool) {
		defer s.Close()
		for {
			sol, err := s.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(nil, err)
				return
			}
			if !yield(sol, nil) {
				return
			}
		}
	}
}

// Close releases the underlying connection. Closing before the stream is
// drained discards the remainder of the body.
func (s *SelectStream) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	// Drained streams leave the connection reusable; abandoned ones are
	// torn down by the cancel.
	err := s.body.Close()
	if s.cancel != nil {
		s.cancel()
	}
	return err
}

// SelectSolutionStream opens a streaming SELECT behind the neutral
// eval.SolutionStream interface; the federation executor type-asserts
// this capability on its client to merge endpoint streams without
// buffering them.
func (c *Client) SelectSolutionStream(ctx context.Context, endpointURL, queryText string) (eval.SolutionStream, error) {
	return c.SelectStreamContext(ctx, endpointURL, queryText)
}

// Ask runs an ASK query at the endpoint URL.
func (c *Client) Ask(endpointURL, queryText string) (bool, error) {
	return c.AskContext(context.Background(), endpointURL, queryText)
}

// AskContext runs an ASK query, honouring ctx's cancellation and deadline.
func (c *Client) AskContext(ctx context.Context, endpointURL, queryText string) (bool, error) {
	body, err := c.post(ctx, endpointURL, queryText)
	if err != nil {
		return false, err
	}
	_, b, err := srjson.Decode(body)
	if err != nil {
		return false, err
	}
	if b == nil {
		return false, fmt.Errorf("endpoint: expected boolean result from %s", endpointURL)
	}
	return *b, nil
}

// Construct runs a CONSTRUCT query and parses the returned N-Triples.
func (c *Client) Construct(endpointURL, queryText string) (rdf.Graph, error) {
	return c.ConstructContext(context.Background(), endpointURL, queryText)
}

// ConstructContext runs a CONSTRUCT query, honouring ctx's cancellation
// and deadline.
func (c *Client) ConstructContext(ctx context.Context, endpointURL, queryText string) (rdf.Graph, error) {
	body, err := c.post(ctx, endpointURL, queryText)
	if err != nil {
		return nil, err
	}
	return ntriples.ParseString(string(body))
}

// Describe runs a DESCRIBE query and parses the returned N-Triples.
func (c *Client) Describe(endpointURL, queryText string) (rdf.Graph, error) {
	return c.DescribeContext(context.Background(), endpointURL, queryText)
}

// DescribeContext runs a DESCRIBE query, honouring ctx's cancellation and
// deadline.
func (c *Client) DescribeContext(ctx context.Context, endpointURL, queryText string) (rdf.Graph, error) {
	body, err := c.post(ctx, endpointURL, queryText)
	if err != nil {
		return nil, err
	}
	return ntriples.ParseString(string(body))
}

// do issues the protocol POST and returns the (status-checked) response
// with its body still unread, for streaming consumption.
func (c *Client) do(ctx context.Context, endpointURL, queryText string) (*http.Response, error) {
	form := url.Values{"query": {queryText}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpointURL,
		strings.NewReader(form.Encode()))
	if err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	// Propagate W3C Trace Context: when the caller's context carries a
	// span (the executor's per-attempt span), the endpoint receives a
	// child traceparent and can stitch its own trace under ours.
	if tp := obs.TraceparentFrom(ctx); tp != "" {
		req.Header.Set("traceparent", tp)
		if ts := obs.TracestateFrom(ctx); ts != "" {
			req.Header.Set("tracestate", ts)
		}
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("endpoint: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(limitReader(resp.Body, c.maxResponseBody()))
		resp.Body.Close()
		return nil, fmt.Errorf("endpoint: %s returned %d: %s", endpointURL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// post issues the protocol POST and buffers the whole response body, for
// the non-streaming ASK/CONSTRUCT paths.
func (c *Client) post(ctx context.Context, endpointURL, queryText string) ([]byte, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, defaultTimeout)
		defer cancel()
	}
	resp, err := c.do(ctx, endpointURL, queryText)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(limitReader(resp.Body, c.maxResponseBody()))
	if err != nil {
		return nil, fmt.Errorf("endpoint: reading response: %w", err)
	}
	return body, nil
}

func limitReader(r io.Reader, limit int64) io.Reader {
	if limit < 0 {
		return r
	}
	return io.LimitReader(r, limit)
}
