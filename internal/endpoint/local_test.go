package endpoint

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
)

func localDemoStore() *store.DictStore {
	st := store.NewDictStore()
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }
	st.Add(rdf.Triple{S: ex("p1"), P: ex("author"), O: ex("alice")})
	st.Add(rdf.Triple{S: ex("p1"), P: ex("author"), O: ex("bob")})
	st.Add(rdf.Triple{S: ex("p2"), P: ex("author"), O: ex("alice")})
	return st
}

func TestLocalEndpointSelect(t *testing.T) {
	RegisterLocal("local-select", NewServer("local-select", localDemoStore()))
	defer UnregisterLocal("local-select")
	c := NewClient()
	res, err := c.Select(LocalURL("local-select"), `
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { ex:p1 ex:author ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %v", res.Solutions)
	}
}

func TestLocalEndpointStreamsIncrementally(t *testing.T) {
	RegisterLocal("local-stream", NewServer("local-stream", localDemoStore()))
	defer UnregisterLocal("local-stream")
	c := NewClient()
	st, err := c.SelectStreamContext(context.Background(), LocalURL("local-stream"), `
PREFIX ex: <http://example.org/>
SELECT ?p ?a WHERE { ?p ex:author ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	n := 0
	for {
		_, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("streamed %d solutions, want 3", n)
	}
}

func TestLocalEndpointAskAndErrors(t *testing.T) {
	RegisterLocal("local-ask", NewServer("local-ask", localDemoStore()))
	defer UnregisterLocal("local-ask")
	c := NewClient()
	yes, err := c.Ask(LocalURL("local-ask"), `PREFIX ex: <http://example.org/> ASK { ex:p1 ex:author ex:bob }`)
	if err != nil || !yes {
		t.Fatalf("ask = %v, %v", yes, err)
	}
	// A malformed query must surface the handler's 400 as a client error.
	if _, err := c.Select(LocalURL("local-ask"), "SELECT WHERE {"); err == nil {
		t.Fatal("malformed query over local:// did not error")
	}
	// An unregistered name fails the round trip cleanly.
	if _, err := c.Select(LocalURL("never-registered"), "SELECT * WHERE { ?s ?p ?o }"); err == nil {
		t.Fatal("unregistered local endpoint did not error")
	}
}

func TestLocalEndpointReplacement(t *testing.T) {
	// Re-registering a name must route new requests to the new handler —
	// the view refresh path swaps stores this way.
	st1 := localDemoStore()
	RegisterLocal("local-swap", NewServer("local-swap", st1))
	defer UnregisterLocal("local-swap")
	c := NewClient()
	q := `PREFIX ex: <http://example.org/> SELECT ?a WHERE { ex:p1 ex:author ?a }`
	res, err := c.Select(LocalURL("local-swap"), q)
	if err != nil || len(res.Solutions) != 2 {
		t.Fatalf("before swap: %v, %v", res, err)
	}
	st2 := store.NewDictStore()
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }
	st2.Add(rdf.Triple{S: ex("p1"), P: ex("author"), O: ex("carol")})
	RegisterLocal("local-swap", NewServer("local-swap", st2))
	res, err = c.Select(LocalURL("local-swap"), q)
	if err != nil || len(res.Solutions) != 1 {
		t.Fatalf("after swap: %v, %v", res, err)
	}
}

// TestLocalEndpointHandlerPanicDoesNotHang guards the transport against
// a panicking handler: net/http recovers handler panics, and so must the
// in-process pipe transport, or RoundTrip blocks on w.ready forever.
func TestLocalEndpointHandlerPanicDoesNotHang(t *testing.T) {
	RegisterLocal("local-panic", http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	defer UnregisterLocal("local-panic")
	done := make(chan error, 1)
	go func() {
		c := NewClient()
		_, err := c.Select(LocalURL("local-panic"), "SELECT * WHERE { ?s ?p ?o }")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("panicking handler produced a successful response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RoundTrip hung on a panicking handler")
	}
}

func TestIsLocalURL(t *testing.T) {
	if !IsLocalURL(LocalURL("x")) {
		t.Fatal("LocalURL not recognised as local")
	}
	if IsLocalURL("http://example.org/sparql") {
		t.Fatal("http URL recognised as local")
	}
}
