package endpoint

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
)

// TestSelectStreamIncremental drives the client against a handler that
// writes one binding, flushes, then holds the connection: the first
// solution must be decodable while the response is still in flight.
func TestSelectStreamIncremental(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		fmt.Fprint(w, `{"head":{"vars":["a"]},"results":{"bindings":[`)
		fmt.Fprint(w, `{"a":{"type":"uri","value":"http://x/first"}}`)
		w.(http.Flusher).Flush()
		<-release
		fmt.Fprint(w, `,{"a":{"type":"uri","value":"http://x/second"}}]}}`)
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient()
	st, err := c.SelectStreamContext(context.Background(), srv.URL, "SELECT ?a WHERE { ?s ?p ?a }")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	firstCh := make(chan error, 1)
	go func() {
		sol, err := st.Next()
		if err == nil && sol["a"].Value != "http://x/first" {
			err = fmt.Errorf("first solution = %v", sol)
		}
		firstCh <- err
	}()
	select {
	case err := <-firstCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first solution not decoded while response in flight")
	}
}

// TestSelectStreamEarlyClose closes a stream after the first solution;
// the remaining (large) body must not be read.
func TestSelectStreamEarlyClose(t *testing.T) {
	st := store.New()
	for i := 0; i < 500; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i)),
			P: rdf.NewIRI("http://example.org/p"),
			O: rdf.NewLiteral("v"),
		})
	}
	srv := httptest.NewServer(NewServer("big", st))
	defer srv.Close()
	c := NewClient()
	stream, err := c.SelectStreamContext(context.Background(), srv.URL,
		`PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:p "v" }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing twice is fine; Next after close errors rather than hanging.
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSelectStreamContextCancelMidBody cancels the context between rows
// and expects the in-flight Next to fail promptly.
func TestSelectStreamContextCancelMidBody(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		fmt.Fprint(w, `{"head":{"vars":["a"]},"results":{"bindings":[`)
		fmt.Fprint(w, `{"a":{"type":"uri","value":"http://x/1"}}`)
		w.(http.Flusher).Flush()
		<-release // never released with a row; the client must cancel out
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	c := NewClient()
	st, err := c.SelectStreamContext(ctx, srv.URL, "SELECT ?a WHERE { ?s ?p ?a }")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := st.Next()
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		if err == nil || err == io.EOF {
			t.Fatalf("cancelled mid-body Next = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stream did not unblock")
	}
}

// TestServerRequestBodyLimit checks the configurable POST cap.
func TestServerRequestBodyLimit(t *testing.T) {
	s := NewServer("demo", store.New())
	s.MaxRequestBody = 64
	srv := httptest.NewServer(s)
	defer srv.Close()
	long := "SELECT ?s WHERE { ?s ?p ?o } # " + strings.Repeat("x", 1024)
	resp, err := http.Post(srv.URL, "application/sparql-query", strings.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("oversized body accepted (status %d)", resp.StatusCode)
	}
	// The form-encoded path is capped too.
	form := url.Values{"query": {long}}
	resp, err = http.Post(srv.URL, "application/x-www-form-urlencoded", strings.NewReader(form.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("oversized form accepted (status %d)", resp.StatusCode)
	}
	// Small queries still pass under the small cap.
	resp, err = http.Post(srv.URL, "application/sparql-query",
		strings.NewReader("ASK { ?s ?p ?o }"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body status = %d", resp.StatusCode)
	}
}

// TestClientResponseBodyUncappedStreaming: a SELECT response larger than
// MaxResponseBody still streams through, because the streaming path needs
// no whole-body cap.
func TestClientResponseBodyUncappedStreaming(t *testing.T) {
	st := store.New()
	for i := 0; i < 200; i++ {
		st.Add(rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://example.org/s%04d", i)),
			P: rdf.NewIRI("http://example.org/p"),
			O: rdf.NewLiteral(strings.Repeat("v", 50)),
		})
	}
	srv := httptest.NewServer(NewServer("big", st))
	defer srv.Close()
	c := NewClient()
	c.MaxResponseBody = 512 // far smaller than the ~20 KB response
	res, err := c.Select(srv.URL, `PREFIX ex: <http://example.org/> SELECT ?s ?o WHERE { ?s ex:p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 200 {
		t.Fatalf("solutions = %d", len(res.Solutions))
	}
}
