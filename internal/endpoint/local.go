package endpoint

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
)

// The local:// scheme serves a SPARQL endpoint in-process: requests to
// local://<name>/sparql are dispatched straight to a registered
// http.Handler over an io.Pipe instead of a TCP connection. The embedded
// dictionary-encoded store registers itself here, and the planner /
// decomposer / federation layers address it through the exact same
// client code path as a remote endpoint — same streaming decoder, same
// counting reader, no HTTP hop.

// localRegistry maps endpoint names (the host part of a local:// URL) to
// in-process handlers.
var (
	localMu       sync.RWMutex
	localRegistry = map[string]http.Handler{}
)

// RegisterLocal installs (or replaces) the in-process handler for
// local://<name>/... URLs issued through clients built by NewClient.
func RegisterLocal(name string, h http.Handler) {
	localMu.Lock()
	defer localMu.Unlock()
	localRegistry[name] = h
}

// UnregisterLocal removes a previously registered in-process handler.
func UnregisterLocal(name string) {
	localMu.Lock()
	defer localMu.Unlock()
	delete(localRegistry, name)
}

// LocalURL returns the endpoint URL addressing the named in-process
// handler, in the shape the rest of the system stores in voiD
// sparqlEndpoint descriptions.
func LocalURL(name string) string { return "local://" + name + "/sparql" }

// IsLocalURL reports whether the endpoint URL uses the in-process
// scheme.
func IsLocalURL(endpointURL string) bool {
	u, err := url.Parse(endpointURL)
	return err == nil && u.Scheme == "local"
}

func lookupLocal(name string) (http.Handler, bool) {
	localMu.RLock()
	defer localMu.RUnlock()
	h, ok := localRegistry[name]
	return h, ok
}

// localTransport routes local:// requests to registered handlers and
// delegates everything else to the wrapped network transport.
type localTransport struct {
	next http.RoundTripper
}

func (t *localTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Scheme != "local" {
		return t.next.RoundTrip(req)
	}
	h, ok := lookupLocal(req.URL.Host)
	if !ok {
		return nil, fmt.Errorf("endpoint: no local endpoint %q registered", req.URL.Host)
	}
	// The handler runs concurrently and streams its response body through
	// a pipe, so the caller's incremental decoder sees solutions as they
	// are produced — the same first-byte behaviour as a flushed chunked
	// HTTP response.
	pr, pw := io.Pipe()
	w := &localResponseWriter{header: make(http.Header), pw: pw, ready: make(chan struct{})}
	inner := req.Clone(req.Context())
	inner.URL = &url.URL{Scheme: "http", Host: req.URL.Host, Path: req.URL.Path, RawQuery: req.URL.RawQuery}
	inner.RequestURI = ""
	go func() {
		// net/http recovers handler panics; this in-process transport must
		// too, or RoundTrip blocks on <-w.ready forever and body readers
		// hang on a never-closed pipe.
		defer func() {
			if r := recover(); r != nil {
				w.fail(http.StatusInternalServerError)
				pw.CloseWithError(fmt.Errorf("endpoint: local handler %q panicked: %v", req.URL.Host, r))
				return
			}
			w.finish()
			pw.Close()
		}()
		h.ServeHTTP(w, inner)
	}()
	<-w.ready
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", w.status, http.StatusText(w.status)),
		StatusCode:    w.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        w.header,
		Body:          pr,
		ContentLength: -1,
		Request:       req,
	}, nil
}

// localResponseWriter adapts the pipe's write end to http.ResponseWriter.
// The response (status + headers) is released to the waiting RoundTrip on
// WriteHeader, first Write, or handler return — whichever comes first.
type localResponseWriter struct {
	header http.Header
	pw     *io.PipeWriter
	status int
	once   sync.Once
	ready  chan struct{}
}

func (w *localResponseWriter) Header() http.Header { return w.header }

func (w *localResponseWriter) WriteHeader(code int) {
	w.once.Do(func() {
		w.status = code
		close(w.ready)
	})
}

func (w *localResponseWriter) Write(p []byte) (int, error) {
	w.WriteHeader(http.StatusOK)
	return w.pw.Write(p)
}

// Flush is a no-op — pipe writes are visible to the reader immediately —
// but its presence lets streaming handlers take their flushing path.
func (w *localResponseWriter) Flush() {}

func (w *localResponseWriter) finish() { w.WriteHeader(http.StatusOK) }

// fail releases a still-waiting RoundTrip with the given status; if the
// handler already committed a status before panicking, that one stands
// and the error surfaces through the pipe instead.
func (w *localResponseWriter) fail(code int) { w.WriteHeader(code) }
