package endpoint

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

func demoServer(t testing.TB) *httptest.Server {
	t.Helper()
	g, _, err := turtle.Parse(`
@prefix ex: <http://example.org/> .
ex:p1 ex:author ex:alice , ex:bob .
ex:p2 ex:author ex:alice .
ex:alice ex:name "Alice" .
ex:bob ex:name "Bob" .
`)
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	st.AddGraph(g)
	srv := httptest.NewServer(NewServer("demo", st))
	t.Cleanup(srv.Close)
	return srv
}

func TestSelectOverHTTPPostForm(t *testing.T) {
	srv := demoServer(t)
	c := NewClient()
	res, err := c.Select(srv.URL, `
PREFIX ex: <http://example.org/>
SELECT ?a WHERE { ex:p1 ex:author ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %v", res.Solutions)
	}
}

func TestSelectOverHTTPGet(t *testing.T) {
	srv := demoServer(t)
	q := url.QueryEscape(`PREFIX ex: <http://example.org/> SELECT ?a WHERE { ex:p2 ex:author ?a }`)
	resp, err := http.Get(srv.URL + "?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestSelectOverHTTPRawBody(t *testing.T) {
	srv := demoServer(t)
	body := `PREFIX ex: <http://example.org/> SELECT ?a WHERE { ex:p1 ex:author ?a }`
	resp, err := http.Post(srv.URL, "application/sparql-query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAskOverHTTP(t *testing.T) {
	srv := demoServer(t)
	c := NewClient()
	yes, err := c.Ask(srv.URL, `PREFIX ex: <http://example.org/> ASK { ex:p1 ex:author ex:bob }`)
	if err != nil || !yes {
		t.Fatalf("ask = %v %v", yes, err)
	}
	no, err := c.Ask(srv.URL, `PREFIX ex: <http://example.org/> ASK { ex:p2 ex:author ex:bob }`)
	if err != nil || no {
		t.Fatalf("ask = %v %v", no, err)
	}
}

func TestConstructOverHTTP(t *testing.T) {
	srv := demoServer(t)
	c := NewClient()
	g, err := c.Construct(srv.URL, `
PREFIX ex: <http://example.org/>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
CONSTRUCT { ?p foaf:name ?n } WHERE { ?p ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatalf("constructed = %v", g)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := demoServer(t)
	// missing query
	resp, _ := http.Get(srv.URL)
	if resp.StatusCode != 400 {
		t.Fatalf("missing query status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// bad query
	resp, _ = http.Get(srv.URL + "?query=" + url.QueryEscape("SELECT WHERE"))
	if resp.StatusCode != 400 {
		t.Fatalf("bad query status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// bad method
	req, _ := http.NewRequest(http.MethodDelete, srv.URL, nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != 405 {
		t.Fatalf("bad method status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestClientErrorPaths(t *testing.T) {
	c := NewClient()
	if _, err := c.Select("http://127.0.0.1:1", "SELECT ?x WHERE { ?x ?p ?o }"); err == nil {
		t.Fatal("unreachable endpoint must error")
	}
	srv := demoServer(t)
	if _, err := c.Select(srv.URL, "NOT SPARQL"); err == nil {
		t.Fatal("server-side parse error must propagate")
	}
	// Ask on a SELECT response type mismatch
	if _, err := c.Ask(srv.URL, `PREFIX ex: <http://example.org/> SELECT ?a WHERE { ex:p1 ex:author ?a }`); err == nil {
		t.Fatal("type mismatch must error")
	}
	if _, err := c.Select(srv.URL, `PREFIX ex: <http://example.org/> ASK { ex:p1 ex:author ex:bob }`); err == nil {
		t.Fatal("type mismatch must error")
	}
}

func BenchmarkEndToEndSelect(b *testing.B) {
	srv := demoServer(b)
	c := NewClient()
	q := `PREFIX ex: <http://example.org/> SELECT ?a WHERE { ex:p1 ex:author ?a }`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Select(srv.URL, q); err != nil {
			b.Fatal(err)
		}
	}
}
