package turtle

import (
	"sort"
	"strings"

	"sparqlrw/internal/rdf"
)

// Format serialises a graph as Turtle. Triples are grouped by subject with
// predicate (';') and object (',') lists; IRIs are shrunk to QNames using
// the supplied prefix map (pass nil for full IRIs everywhere). Output is
// deterministic: subjects, predicates and objects are sorted.
func Format(g rdf.Graph, prefixes *rdf.PrefixMap) string {
	var b strings.Builder
	if prefixes != nil {
		usedNS := usedNamespaces(g, prefixes)
		for _, p := range prefixes.Prefixes() {
			ns, _ := prefixes.Namespace(p)
			if usedNS[ns] {
				b.WriteString("@prefix ")
				b.WriteString(p)
				b.WriteString(": <")
				b.WriteString(ns)
				b.WriteString("> .\n")
			}
		}
		if b.Len() > 0 {
			b.WriteString("\n")
		}
	}

	// Group by subject, preserving a deterministic order.
	bySubject := map[rdf.Term]map[rdf.Term][]rdf.Term{}
	var subjects []rdf.Term
	for _, t := range g {
		po, ok := bySubject[t.S]
		if !ok {
			po = map[rdf.Term][]rdf.Term{}
			bySubject[t.S] = po
			subjects = append(subjects, t.S)
		}
		po[t.P] = append(po[t.P], t.O)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i].Compare(subjects[j]) < 0 })

	for _, s := range subjects {
		b.WriteString(formatTerm(s, prefixes))
		po := bySubject[s]
		var preds []rdf.Term
		for p := range po {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i].Compare(preds[j]) < 0 })
		for pi, p := range preds {
			if pi == 0 {
				b.WriteString(" ")
			} else {
				b.WriteString(" ;\n\t")
			}
			b.WriteString(formatVerb(p, prefixes))
			objs := po[p]
			sort.Slice(objs, func(i, j int) bool { return objs[i].Compare(objs[j]) < 0 })
			for oi, o := range objs {
				if oi == 0 {
					b.WriteString(" ")
				} else {
					b.WriteString(" , ")
				}
				b.WriteString(formatTerm(o, prefixes))
			}
		}
		b.WriteString(" .\n")
	}
	return b.String()
}

func usedNamespaces(g rdf.Graph, prefixes *rdf.PrefixMap) map[string]bool {
	used := map[string]bool{}
	note := func(t rdf.Term) {
		switch t.Kind {
		case rdf.KindIRI:
			if q, ok := prefixes.Shrink(t.Value); ok {
				ns, _ := prefixes.Namespace(q[:strings.Index(q, ":")])
				used[ns] = true
			}
		case rdf.KindLiteral:
			if t.Datatype != "" && t.Datatype != rdf.XSDString {
				if q, ok := prefixes.Shrink(t.Datatype); ok {
					ns, _ := prefixes.Namespace(q[:strings.Index(q, ":")])
					used[ns] = true
				}
			}
		}
	}
	for _, t := range g {
		note(t.S)
		note(t.P)
		note(t.O)
	}
	return used
}

func formatVerb(p rdf.Term, prefixes *rdf.PrefixMap) string {
	if p.Kind == rdf.KindIRI && p.Value == rdf.RDFType {
		return "a"
	}
	return formatTerm(p, prefixes)
}

func formatTerm(t rdf.Term, prefixes *rdf.PrefixMap) string {
	if prefixes == nil {
		return t.String()
	}
	switch t.Kind {
	case rdf.KindIRI:
		if q, ok := prefixes.Shrink(t.Value); ok {
			return q
		}
		return t.String()
	case rdf.KindLiteral:
		if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
			if q, ok := prefixes.Shrink(t.Datatype); ok {
				base := rdf.NewLiteral(t.Value).String()
				return base + "^^" + q
			}
		}
		return t.String()
	default:
		return t.String()
	}
}
