// Package turtle implements a parser and serialiser for the Turtle RDF
// syntax (the W3C Team Submission subset the paper uses for its alignment
// listings, §3.2.2): prefix and base directives, predicate-object and
// object lists, the `a` keyword, blank node property lists, collections,
// and plain/typed/language-tagged literals.
package turtle

import (
	"fmt"
	"strconv"

	"sparqlrw/internal/lex"
	"sparqlrw/internal/rdf"
)

// Parser parses one Turtle document.
type Parser struct {
	lx       *lex.Lexer
	tok      lex.Token
	peeked   *lex.Token
	prefixes *rdf.PrefixMap
	graph    rdf.Graph
	anonSeq  int
	used     map[string]bool // blank labels seen in the document
}

// Parse parses a Turtle document and returns its triples together with the
// prefix map accumulated from @prefix/@base directives.
func Parse(src string) (rdf.Graph, *rdf.PrefixMap, error) {
	p := &Parser{
		lx:       lex.New(src),
		prefixes: rdf.NewPrefixMap(),
		used:     map[string]bool{},
	}
	p.next()
	for p.tok.Kind != lex.EOF {
		if err := p.statement(); err != nil {
			return nil, nil, err
		}
	}
	return p.graph, p.prefixes, nil
}

// MustParse parses src and panics on error; for tests and fixtures.
func MustParse(src string) rdf.Graph {
	g, _, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

func (p *Parser) next() {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return
	}
	p.tok = p.lx.Next()
}

func (p *Parser) peek() lex.Token {
	if p.peeked == nil {
		t := p.lx.Next()
		p.peeked = &t
	}
	return *p.peeked
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: %d:%d: %s", p.tok.Line, p.tok.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) expect(k lex.Kind) error {
	if p.tok.Kind != k {
		return p.errf("expected %s, found %s", k, p.tok)
	}
	p.next()
	return nil
}

func (p *Parser) statement() error {
	switch {
	case p.tok.Kind == lex.AtKeyword && p.tok.Val == "prefix":
		p.next()
		if p.tok.Kind != lex.PNameNS {
			return p.errf("expected prefix name after @prefix, found %s", p.tok)
		}
		name := p.tok.Val
		p.next()
		if p.tok.Kind != lex.IRIRef {
			return p.errf("expected IRI after @prefix %s:, found %s", name, p.tok)
		}
		p.prefixes.Bind(name, p.prefixes.ResolveIRI(p.tok.Val))
		p.next()
		return p.expect(lex.Dot)
	case p.tok.Kind == lex.AtKeyword && p.tok.Val == "base":
		p.next()
		if p.tok.Kind != lex.IRIRef {
			return p.errf("expected IRI after @base, found %s", p.tok)
		}
		p.prefixes.SetBase(p.tok.Val)
		p.next()
		return p.expect(lex.Dot)
	case p.tok.Kind == lex.Ident && (equalsFold(p.tok.Val, "PREFIX")):
		// SPARQL-style directive (Turtle 1.1), no trailing dot.
		p.next()
		if p.tok.Kind != lex.PNameNS {
			return p.errf("expected prefix name after PREFIX, found %s", p.tok)
		}
		name := p.tok.Val
		p.next()
		if p.tok.Kind != lex.IRIRef {
			return p.errf("expected IRI after PREFIX %s:, found %s", name, p.tok)
		}
		p.prefixes.Bind(name, p.prefixes.ResolveIRI(p.tok.Val))
		p.next()
		return nil
	case p.tok.Kind == lex.Ident && equalsFold(p.tok.Val, "BASE"):
		p.next()
		if p.tok.Kind != lex.IRIRef {
			return p.errf("expected IRI after BASE, found %s", p.tok)
		}
		p.prefixes.SetBase(p.tok.Val)
		p.next()
		return nil
	}
	return p.triples()
}

func (p *Parser) triples() error {
	var subj rdf.Term
	var err error
	if p.tok.Kind == lex.LBracket {
		// Blank node property list as subject.
		subj, err = p.blankNodePropertyList()
		if err != nil {
			return err
		}
		// Predicate-object list is optional after a bnode property list.
		if p.tok.Kind == lex.Dot {
			p.next()
			return nil
		}
	} else {
		subj, err = p.subject()
		if err != nil {
			return err
		}
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	return p.expect(lex.Dot)
}

func (p *Parser) subject() (rdf.Term, error) {
	switch p.tok.Kind {
	case lex.IRIRef:
		t := rdf.NewIRI(p.prefixes.ResolveIRI(p.tok.Val))
		p.next()
		return t, nil
	case lex.PNameLN, lex.PNameNS:
		return p.pname()
	case lex.BlankNode:
		t := p.blankLabel(p.tok.Val)
		p.next()
		return t, nil
	case lex.LParen:
		return p.collection()
	}
	return rdf.Term{}, p.errf("expected subject, found %s", p.tok)
}

func (p *Parser) pname() (rdf.Term, error) {
	var q string
	if p.tok.Kind == lex.PNameLN {
		q = p.tok.Val
	} else {
		q = p.tok.Val + ":"
	}
	iri, err := p.prefixes.Expand(q)
	if err != nil {
		return rdf.Term{}, p.errf("%v", err)
	}
	p.next()
	return rdf.NewIRI(iri), nil
}

func (p *Parser) blankLabel(label string) rdf.Term {
	p.used[label] = true
	return rdf.NewBlank(label)
}

func (p *Parser) freshBlank() rdf.Term {
	for {
		p.anonSeq++
		label := "anon" + strconv.Itoa(p.anonSeq)
		if !p.used[label] {
			p.used[label] = true
			return rdf.NewBlank(label)
		}
	}
}

func (p *Parser) predicateObjectList(subj rdf.Term) error {
	for {
		verb, err := p.verb()
		if err != nil {
			return err
		}
		if err := p.objectList(subj, verb); err != nil {
			return err
		}
		if p.tok.Kind != lex.Semicolon {
			return nil
		}
		// Consume any run of semicolons; a trailing ';' before '.' or ']'
		// is legal Turtle.
		for p.tok.Kind == lex.Semicolon {
			p.next()
		}
		if p.tok.Kind == lex.Dot || p.tok.Kind == lex.RBracket {
			return nil
		}
	}
}

func (p *Parser) verb() (rdf.Term, error) {
	if p.tok.Kind == lex.Ident && p.tok.Val == "a" {
		p.next()
		return rdf.NewIRI(rdf.RDFType), nil
	}
	switch p.tok.Kind {
	case lex.IRIRef:
		t := rdf.NewIRI(p.prefixes.ResolveIRI(p.tok.Val))
		p.next()
		return t, nil
	case lex.PNameLN, lex.PNameNS:
		return p.pname()
	}
	return rdf.Term{}, p.errf("expected predicate, found %s", p.tok)
}

func (p *Parser) objectList(subj, verb rdf.Term) error {
	for {
		obj, err := p.object()
		if err != nil {
			return err
		}
		p.graph.AddTriple(subj, verb, obj)
		if p.tok.Kind != lex.Comma {
			return nil
		}
		p.next()
	}
}

func (p *Parser) object() (rdf.Term, error) {
	switch p.tok.Kind {
	case lex.IRIRef:
		t := rdf.NewIRI(p.prefixes.ResolveIRI(p.tok.Val))
		p.next()
		return t, nil
	case lex.PNameLN, lex.PNameNS:
		return p.pname()
	case lex.BlankNode:
		t := p.blankLabel(p.tok.Val)
		p.next()
		return t, nil
	case lex.LBracket:
		return p.blankNodePropertyList()
	case lex.LParen:
		return p.collection()
	case lex.String:
		return p.literal()
	case lex.Integer:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDInteger)
		p.next()
		return t, nil
	case lex.Decimal:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDecimal)
		p.next()
		return t, nil
	case lex.Double:
		t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDDouble)
		p.next()
		return t, nil
	case lex.Minus, lex.Plus:
		neg := p.tok.Kind == lex.Minus
		p.next()
		sign := ""
		if neg {
			sign = "-"
		}
		switch p.tok.Kind {
		case lex.Integer:
			t := rdf.NewTypedLiteral(sign+p.tok.Val, rdf.XSDInteger)
			p.next()
			return t, nil
		case lex.Decimal:
			t := rdf.NewTypedLiteral(sign+p.tok.Val, rdf.XSDDecimal)
			p.next()
			return t, nil
		case lex.Double:
			t := rdf.NewTypedLiteral(sign+p.tok.Val, rdf.XSDDouble)
			p.next()
			return t, nil
		}
		return rdf.Term{}, p.errf("expected number after sign, found %s", p.tok)
	case lex.Ident:
		switch p.tok.Val {
		case "true", "false":
			t := rdf.NewTypedLiteral(p.tok.Val, rdf.XSDBoolean)
			p.next()
			return t, nil
		}
	}
	return rdf.Term{}, p.errf("expected object, found %s", p.tok)
}

func (p *Parser) literal() (rdf.Term, error) {
	lexval := p.tok.Val
	p.next()
	switch p.tok.Kind {
	case lex.LangTag:
		t := rdf.NewLangLiteral(lexval, p.tok.Val)
		p.next()
		return t, nil
	case lex.HatHat:
		p.next()
		var dt string
		switch p.tok.Kind {
		case lex.IRIRef:
			dt = p.prefixes.ResolveIRI(p.tok.Val)
			p.next()
		case lex.PNameLN:
			t, err := p.pname()
			if err != nil {
				return rdf.Term{}, err
			}
			dt = t.Value
		default:
			return rdf.Term{}, p.errf("expected datatype IRI after ^^, found %s", p.tok)
		}
		return rdf.NewTypedLiteral(lexval, dt), nil
	}
	return rdf.NewLiteral(lexval), nil
}

// blankNodePropertyList parses "[ predicateObjectList ]" and returns the
// fresh blank node standing for it.
func (p *Parser) blankNodePropertyList() (rdf.Term, error) {
	if err := p.expect(lex.LBracket); err != nil {
		return rdf.Term{}, err
	}
	node := p.freshBlank()
	if p.tok.Kind == lex.RBracket { // empty []
		p.next()
		return node, nil
	}
	if err := p.predicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	if err := p.expect(lex.RBracket); err != nil {
		return rdf.Term{}, err
	}
	return node, nil
}

// collection parses "( object* )" into an rdf:first/rdf:rest list and
// returns its head (rdf:nil for the empty collection).
func (p *Parser) collection() (rdf.Term, error) {
	if err := p.expect(lex.LParen); err != nil {
		return rdf.Term{}, err
	}
	if p.tok.Kind == lex.RParen {
		p.next()
		return rdf.NewIRI(rdf.RDFNil), nil
	}
	head := p.freshBlank()
	cur := head
	first := true
	for p.tok.Kind != lex.RParen {
		if p.tok.Kind == lex.EOF {
			return rdf.Term{}, p.errf("unterminated collection")
		}
		if !first {
			next := p.freshBlank()
			p.graph.AddTriple(cur, rdf.NewIRI(rdf.RDFRest), next)
			cur = next
		}
		first = false
		obj, err := p.object()
		if err != nil {
			return rdf.Term{}, err
		}
		p.graph.AddTriple(cur, rdf.NewIRI(rdf.RDFFirst), obj)
	}
	p.graph.AddTriple(cur, rdf.NewIRI(rdf.RDFRest), rdf.NewIRI(rdf.RDFNil))
	p.next() // ')'
	return head, nil
}

func equalsFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'a' && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if cb >= 'a' && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
