package turtle

import (
	"io"

	"sparqlrw/internal/rdf"
)

// StreamWriter serialises triples as Turtle one at a time, for HTTP
// handlers that stream CONSTRUCT/DESCRIBE results as they arrive instead
// of materialising the graph. The prefix directives are written up front
// and every triple is emitted on its own line (no subject grouping —
// grouping would require buffering), QName-shrunk through the prefix map.
// The output is valid Turtle; Format remains the pretty, grouped form for
// materialised graphs.
type StreamWriter struct {
	w        io.Writer
	prefixes *rdf.PrefixMap
	wroteAny bool
}

// NewStreamWriter returns a writer over w. prefixes may be nil (full IRIs
// everywhere); the @prefix directives are written lazily before the first
// triple, so an empty stream produces an empty document.
func NewStreamWriter(w io.Writer, prefixes *rdf.PrefixMap) *StreamWriter {
	return &StreamWriter{w: w, prefixes: prefixes}
}

// WriteTriple writes one triple line, emitting the prefix header first
// when this is the stream's first triple.
func (sw *StreamWriter) WriteTriple(t rdf.Triple) error {
	if !sw.wroteAny {
		sw.wroteAny = true
		if sw.prefixes != nil {
			for _, p := range sw.prefixes.Prefixes() {
				ns, _ := sw.prefixes.Namespace(p)
				if _, err := io.WriteString(sw.w, "@prefix "+p+": <"+ns+"> .\n"); err != nil {
					return err
				}
			}
		}
	}
	line := formatTerm(t.S, sw.prefixes) + " " + formatVerb(t.P, sw.prefixes) + " " + formatTerm(t.O, sw.prefixes) + " .\n"
	_, err := io.WriteString(sw.w, line)
	return err
}
