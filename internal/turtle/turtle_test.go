package turtle

import (
	"fmt"
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

func TestParseBasicTriples(t *testing.T) {
	g, pm, err := Parse(`
@prefix ex: <http://example.org/> .
ex:alice ex:knows ex:bob .
ex:alice ex:name "Alice" .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatalf("got %d triples: %v", len(g), g)
	}
	if ns, _ := pm.Namespace("ex"); ns != "http://example.org/" {
		t.Fatalf("prefix map: %q", ns)
	}
	want := rdf.NewTriple(rdf.NewIRI("http://example.org/alice"),
		rdf.NewIRI("http://example.org/knows"), rdf.NewIRI("http://example.org/bob"))
	if g[0] != want {
		t.Fatalf("triple = %v, want %v", g[0], want)
	}
}

func TestParsePredicateAndObjectLists(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
ex:s ex:p1 ex:a , ex:b ;
     ex:p2 ex:c ;
     a ex:Thing .
`)
	if len(g) != 4 {
		t.Fatalf("got %d triples: %v", len(g), g)
	}
	// 'a' expands to rdf:type
	found := false
	for _, tr := range g {
		if tr.P.Value == rdf.RDFType && tr.O.Value == "http://example.org/Thing" {
			found = true
		}
	}
	if !found {
		t.Fatal("rdf:type triple missing")
	}
}

func TestParseLiterals(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:plain "hello" ;
     ex:lang "bonjour"@fr ;
     ex:typed "5"^^xsd:integer ;
     ex:int 42 ;
     ex:dec 3.14 ;
     ex:dbl 1e6 ;
     ex:neg -7 ;
     ex:bool true .
`)
	byPred := map[string]rdf.Term{}
	for _, tr := range g {
		byPred[tr.P.Value] = tr.O
	}
	ex := "http://example.org/"
	if byPred[ex+"plain"] != rdf.NewLiteral("hello") {
		t.Errorf("plain = %v", byPred[ex+"plain"])
	}
	if byPred[ex+"lang"] != rdf.NewLangLiteral("bonjour", "fr") {
		t.Errorf("lang = %v", byPred[ex+"lang"])
	}
	if byPred[ex+"typed"] != rdf.NewTypedLiteral("5", rdf.XSDInteger) {
		t.Errorf("typed = %v", byPred[ex+"typed"])
	}
	if byPred[ex+"int"] != rdf.NewTypedLiteral("42", rdf.XSDInteger) {
		t.Errorf("int = %v", byPred[ex+"int"])
	}
	if byPred[ex+"dec"] != rdf.NewTypedLiteral("3.14", rdf.XSDDecimal) {
		t.Errorf("dec = %v", byPred[ex+"dec"])
	}
	if byPred[ex+"dbl"] != rdf.NewTypedLiteral("1e6", rdf.XSDDouble) {
		t.Errorf("dbl = %v", byPred[ex+"dbl"])
	}
	if byPred[ex+"neg"] != rdf.NewTypedLiteral("-7", rdf.XSDInteger) {
		t.Errorf("neg = %v", byPred[ex+"neg"])
	}
	if byPred[ex+"bool"] != rdf.NewTypedLiteral("true", rdf.XSDBoolean) {
		t.Errorf("bool = %v", byPred[ex+"bool"])
	}
}

func TestParseBlankNodes(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
_:x ex:p _:y .
ex:s ex:q [ ex:inner "v" ] .
`)
	if len(g) != 3 {
		t.Fatalf("got %d triples: %v", len(g), g)
	}
	if !g[0].S.IsBlank() || !g[0].O.IsBlank() {
		t.Fatal("labelled blank nodes lost")
	}
	// bnode property list: generated label must not collide with _:x/_:y
	var genLabel string
	for _, tr := range g {
		if tr.P.Value == "http://example.org/inner" {
			genLabel = tr.S.Value
		}
	}
	if genLabel == "" || genLabel == "x" || genLabel == "y" {
		t.Fatalf("generated label %q invalid", genLabel)
	}
}

func TestParseNestedBlankNodePropertyLists(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
ex:s ex:p [ ex:q [ ex:r "deep" ] ; ex:flat "x" ] .
`)
	if len(g) != 4 {
		t.Fatalf("got %d triples: %v", len(g), g)
	}
}

func TestParseBlankNodePropertyListAsSubject(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
[ ex:p "v" ] ex:q ex:o .
[ ex:standalone "only" ] .
`)
	if len(g) != 3 {
		t.Fatalf("got %d triples: %v", len(g), g)
	}
}

func TestParseCollections(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
ex:s ex:list ( ex:a "b" 3 ) .
ex:s ex:empty () .
`)
	// list: 3 first + 3 rest + 1 link + 1 empty = triples:
	// s list head; head first a; head rest n1; n1 first "b"; n1 rest n2;
	// n2 first 3; n2 rest nil; s empty nil  => 8
	if len(g) != 8 {
		t.Fatalf("got %d triples:\n%v", len(g), g)
	}
	firsts := 0
	for _, tr := range g {
		if tr.P.Value == rdf.RDFFirst {
			firsts++
		}
		if tr.P.Value == "http://example.org/empty" && tr.O.Value != rdf.RDFNil {
			t.Fatalf("empty collection must be rdf:nil, got %v", tr.O)
		}
	}
	if firsts != 3 {
		t.Fatalf("rdf:first count = %d, want 3", firsts)
	}
}

func TestParseSPARQLStyleDirectives(t *testing.T) {
	g, pm, err := Parse(`
PREFIX ex: <http://example.org/>
BASE <http://base.org/dir/doc>
ex:s ex:p <rel> .
`)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Base() != "http://base.org/dir/doc" {
		t.Fatalf("base = %q", pm.Base())
	}
	if g[0].O.Value != "http://base.org/dir/rel" {
		t.Fatalf("relative IRI resolved to %q", g[0].O.Value)
	}
}

func TestParsePaperAlignmentListing(t *testing.T) {
	// The §3.2.2 Turtle listing shape: reified statements with bnode
	// property lists and a collection of function arguments.
	src := `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix map: <http://ecs.soton.ac.uk/om.owl#> .
@prefix akt2kisti: <http://ecs.soton.ac.uk/alignments/akt2kisti#> .
@prefix akt: <http://www.aktors.org/ontology/portal#> .
@prefix kisti: <http://www.kisti.re.kr/isrl/ResearchRefOntology#> .
akt2kisti:creator_info
  a map:EntityAlignment ;
  map:lhs [
    rdf:type rdf:Statement ;
    rdf:subject _:p1 ;
    rdf:predicate akt:has-author ;
    rdf:object _:a1
  ] ;
  map:rhs [
    rdf:type rdf:Statement ;
    rdf:subject _:p2 ;
    rdf:predicate kisti:hasCreatorInfo ;
    rdf:object _:c
  ] ;
  map:rhs [
    rdf:type rdf:Statement ;
    rdf:subject _:c ;
    rdf:predicate kisti:hasCreator ;
    rdf:object _:a2
  ] ;
  map:hasFunctionalDependency [
    rdf:type rdf:Statement ;
    rdf:subject _:a2 ;
    rdf:predicate map:sameas ;
    rdf:object ( _:a1 "http://kisti.rkbexplorer.com/id/\\S*" )
  ] .
`
	g, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := 0
	for _, tr := range g {
		if tr.P.Value == rdf.RDFType && tr.O.Value == rdf.RDFStatement {
			stmts++
		}
	}
	if stmts != 4 {
		t.Fatalf("reified statements = %d, want 4", stmts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`@prefix ex <http://x/> .`,       // missing colon form
		`@prefix ex: "notiri" .`,         // not an IRI
		`ex:s ex:p ex:o .`,               // unbound prefix
		`<http://s> <http://p> .`,        // missing object
		`<http://s> <http://p> "x"`,      // missing dot
		`<http://s> "lit" <http://o> .`,  // literal predicate
		`( <http://x> `,                  // unterminated collection
		`<http://s> <http://p> "x"^^5 .`, // bad datatype
	}
	for _, src := range bad {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestTrailingSemicolon(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
ex:s ex:p ex:o ; .
`)
	if len(g) != 1 {
		t.Fatalf("got %d triples", len(g))
	}
}

func TestFormatRoundTrip(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:p1 ex:a , ex:b ;
     ex:p2 "lit" , "5"^^xsd:integer , "fr"@fr ;
     a ex:Thing .
_:b1 ex:p3 ex:s .
`
	g1, pm, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(g1, pm)
	g2, _, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	// Graphs must be isomorphic; ours only differ possibly in blank labels,
	// and Format preserves labels, so plain set equality works.
	a := append(rdf.Graph{}, g1...).Dedup().Sort()
	b := append(rdf.Graph{}, g2...).Dedup().Sort()
	if len(a) != len(b) {
		t.Fatalf("round trip changed size: %d vs %d\n%s", len(a), len(b), out)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed triple %d: %v vs %v\n%s", i, a[i], b[i], out)
		}
	}
	if !strings.Contains(out, "@prefix ex:") {
		t.Fatal("prefix header missing")
	}
	if strings.Contains(out, "@prefix rdf:") {
		// rdf: was never used; unused prefixes must be omitted
		t.Fatal("unused prefix emitted")
	}
}

func TestFormatUsesAKeyword(t *testing.T) {
	g := rdf.Graph{rdf.NewTriple(
		rdf.NewIRI("http://example.org/x"),
		rdf.NewIRI(rdf.RDFType),
		rdf.NewIRI("http://example.org/C"))}
	out := Format(g, nil)
	if !strings.Contains(out, " a <http://example.org/C>") {
		t.Fatalf("expected 'a' keyword, got %s", out)
	}
}

func TestFormatDeterministic(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://example.org/> .
ex:b ex:p ex:o . ex:a ex:p ex:o2 , ex:o1 .
`)
	pm := rdf.NewPrefixMap()
	pm.Bind("ex", "http://example.org/")
	first := Format(g, pm)
	for i := 0; i < 5; i++ {
		if got := Format(g, pm); got != first {
			t.Fatal("Format output is not deterministic")
		}
	}
}

// Property-style test: generated graphs of IRIs and literals round-trip.
func TestRandomGraphRoundTrip(t *testing.T) {
	for seed := 0; seed < 20; seed++ {
		var g rdf.Graph
		for i := 0; i < 30; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", (seed*31+i)%11))
			p := rdf.NewIRI(fmt.Sprintf("http://example.org/p%d", i%5))
			var o rdf.Term
			switch i % 4 {
			case 0:
				o = rdf.NewIRI(fmt.Sprintf("http://example.org/o%d", i))
			case 1:
				o = rdf.NewLiteral(fmt.Sprintf("value \"%d\"\nline", i))
			case 2:
				o = rdf.NewTypedLiteral(fmt.Sprint(i), rdf.XSDInteger)
			case 3:
				o = rdf.NewLangLiteral("text", "en")
			}
			g.AddTriple(s, p, o)
		}
		g = g.Dedup()
		out := Format(g, rdf.StandardPrefixes())
		g2, _, err := Parse(out)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, out)
		}
		a, b := g.Sort(), g2.Dedup().Sort()
		if len(a) != len(b) {
			t.Fatalf("seed %d: size %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: triple %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://example.org/> .\n")
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&sb, "ex:s%d ex:p%d \"literal %d\" .\n", i%100, i%10, i)
	}
	src := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
