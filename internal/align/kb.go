package align

import (
	"sync"
)

// KB is the Alignment KB of the paper's architecture (Figure 5): a
// queryable collection of ontology alignments. "Querying the alignment
// server we can retrieve all the relevant ontology alignments for
// integrating two given data sets. The union of the entity alignments
// belonging to the relevant ontology alignments can then be used in order
// to rewrite queries between the data sets." (§3.2.1)
type KB struct {
	mu        sync.RWMutex
	oas       []*OntologyAlignment
	listeners map[int]func()
	nextSub   int
}

// NewKB returns an empty knowledge base.
func NewKB() *KB { return &KB{} }

// Subscribe registers fn to be called whenever an alignment is added. The
// federation layer uses this to flush cached rewrite plans, which embed
// the alignment set they were produced under. The returned cancel
// function removes the subscription; callers that outlive the KB must
// call it or they stay reachable through it.
func (kb *KB) Subscribe(fn func()) (cancel func()) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if kb.listeners == nil {
		kb.listeners = map[int]func(){}
	}
	id := kb.nextSub
	kb.nextSub++
	kb.listeners[id] = fn
	return func() {
		kb.mu.Lock()
		defer kb.mu.Unlock()
		delete(kb.listeners, id)
	}
}

// Add validates and stores an ontology alignment, notifying subscribers.
func (kb *KB) Add(oa *OntologyAlignment) error {
	if err := oa.Validate(); err != nil {
		return err
	}
	kb.mu.Lock()
	kb.oas = append(kb.oas, oa)
	listeners := make([]func(), 0, len(kb.listeners))
	for _, fn := range kb.listeners {
		listeners = append(listeners, fn)
	}
	kb.mu.Unlock()
	// Callbacks run outside the lock so they may read the KB.
	for _, fn := range listeners {
		fn()
	}
	return nil
}

// All returns every stored ontology alignment.
func (kb *KB) All() []*OntologyAlignment {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return append([]*OntologyAlignment(nil), kb.oas...)
}

// Len returns the number of ontology alignments.
func (kb *KB) Len() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.oas)
}

// EntityAlignmentCount returns the total number of entity alignments, the
// statistic the paper reports for its deployed KBs (42 + 24, §3.4).
func (kb *KB) EntityAlignmentCount() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	n := 0
	for _, oa := range kb.oas {
		n += len(oa.Alignments)
	}
	return n
}

// Selector describes an integration request: the ontologies the query is
// written in, and the target coordinates. Empty fields act as wildcards.
type Selector struct {
	// SourceOntology is a namespace the query's vocabulary belongs to.
	SourceOntology string
	// TargetDataset is the voiD URI of the data set to rewrite for.
	TargetDataset string
	// TargetOntology is the namespace of the target vocabulary.
	TargetOntology string
}

// Select returns the union of entity alignments from every relevant
// ontology alignment. An OA is relevant when:
//
//   - its SO contains the requested source ontology (or no source is
//     requested), and
//   - its TD contains the requested target data set, or — when the OA
//     declares no TD, i.e. it is data-set-independent — its TO contains
//     the requested target ontology.
//
// Data-set-specific alignments (non-empty TD) are never reused for other
// data sets, per §3.2.1.
func (kb *KB) Select(sel Selector) []*EntityAlignment {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var out []*EntityAlignment
	for _, oa := range kb.oas {
		if sel.SourceOntology != "" && !contains(oa.SourceOntologies, sel.SourceOntology) {
			continue
		}
		relevant := false
		if len(oa.TargetDatasets) > 0 {
			relevant = sel.TargetDataset != "" && contains(oa.TargetDatasets, sel.TargetDataset)
		} else {
			relevant = sel.TargetOntology != "" && contains(oa.TargetOntologies, sel.TargetOntology)
		}
		// A wildcard selector ({} / only source set) matches everything,
		// mirroring "retrieve all the relevant ontology alignments".
		if sel.TargetDataset == "" && sel.TargetOntology == "" {
			relevant = true
		}
		if relevant {
			out = append(out, oa.Alignments...)
		}
	}
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
