// Package align implements the paper's alignment formalism (§3.2): entity
// alignments EA = ⟨LHS, RHS, FD⟩ over RDF triple patterns, ontology
// alignments OA = ⟨SO, TO, TD, EA⟩ carrying their context of validity, the
// Prolog-style triple matcher of §3.3.1, the reified-RDF concrete syntax
// of §3.2.2, and an alignment knowledge base with (source, target)
// selection.
package align

import (
	"fmt"
	"strings"

	"sparqlrw/internal/rdf"
)

// FD is a functional dependency `Var = Func(Args...)`: an equivalence
// constraint over variables that the rewriter instantiates at rewrite time
// (Algorithm 2). Args may be ground terms or variables from the LHS; Var
// names a variable of the RHS.
type FD struct {
	// Var is the dependent variable (RHS side), without sigil.
	Var string
	// Func is the IRI of the data-manipulation function.
	Func string
	// Args are ground terms or LHS variables.
	Args []rdf.Term
}

// String renders the dependency like the paper: ?a2 = sameas(?a1, "...").
func (f FD) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("?%s = <%s>(%s)", f.Var, f.Func, strings.Join(parts, ", "))
}

// EntityAlignment codifies how to rewrite one triple pattern for a new
// ontology (§3.2.2). Alignments are directional: LHS (the head) matches a
// source-ontology pattern, RHS (the body) is the target-ontology pattern
// it becomes. The paper encodes alignment variables as blank nodes; this
// model canonicalises them as rdf.KindVar terms.
type EntityAlignment struct {
	// ID is the alignment's URI (may be empty for ad-hoc alignments).
	ID string
	// LHS is a single triple pattern with no function symbols.
	LHS rdf.Triple
	// RHS is the conjunctive body: one or more triple patterns.
	RHS []rdf.Triple
	// FDs are the functional dependencies binding RHS variables.
	FDs []FD
}

// Validate checks the structural constraints of §3.2.2: a non-empty RHS,
// no wildcard terms, every FD variable present in the RHS, and every FD
// variable argument present in the LHS.
func (ea *EntityAlignment) Validate() error {
	if len(ea.RHS) == 0 {
		return fmt.Errorf("align: %s: empty RHS", ea.name())
	}
	check := func(t rdf.Triple, side string) error {
		for _, x := range []rdf.Term{t.S, t.P, t.O} {
			if x.IsZero() {
				return fmt.Errorf("align: %s: wildcard term in %s", ea.name(), side)
			}
		}
		return nil
	}
	if err := check(ea.LHS, "LHS"); err != nil {
		return err
	}
	lhsVars := map[string]bool{}
	for _, v := range ea.LHS.Vars() {
		lhsVars[v] = true
	}
	rhsVars := map[string]bool{}
	for _, t := range ea.RHS {
		if err := check(t, "RHS"); err != nil {
			return err
		}
		for _, v := range t.Vars() {
			rhsVars[v] = true
		}
	}
	for _, fd := range ea.FDs {
		if fd.Var == "" || fd.Func == "" {
			return fmt.Errorf("align: %s: incomplete functional dependency %v", ea.name(), fd)
		}
		if !rhsVars[fd.Var] {
			return fmt.Errorf("align: %s: FD variable ?%s does not occur in RHS", ea.name(), fd.Var)
		}
		for _, a := range fd.Args {
			if a.IsVar() && !lhsVars[a.Value] {
				return fmt.Errorf("align: %s: FD argument ?%s does not occur in LHS", ea.name(), a.Value)
			}
		}
	}
	return nil
}

func (ea *EntityAlignment) name() string {
	if ea.ID != "" {
		return ea.ID
	}
	return "(anonymous alignment)"
}

// String renders the alignment in the paper's three-part notation.
func (ea *EntityAlignment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EA %s\n  LHS: %s\n", ea.name(), ea.LHS)
	for _, t := range ea.RHS {
		fmt.Fprintf(&b, "  RHS: %s\n", t)
	}
	for _, fd := range ea.FDs {
		fmt.Fprintf(&b, "  FD:  %s\n", fd)
	}
	return b.String()
}

// Vars returns the distinct variables of LHS then RHS, in order.
func (ea *EntityAlignment) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(t rdf.Triple) {
		for _, v := range t.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(ea.LHS)
	for _, t := range ea.RHS {
		add(t)
	}
	return out
}

// Level classifies the alignment per the paper's complexity account
// (§3.2.2, elaborating on Euzenat's levels):
//
//	0 — one entity to one entity (single RHS triple, no FDs, pure
//	    class/property correspondence)
//	1 — one entity to a set of entities (multiple RHS triples or a
//	    value-partition object, still no data manipulation)
//	2 — alignments requiring functional dependencies (data manipulation /
//	    co-reference), the paper's directional ∀∃ formulas
func (ea *EntityAlignment) Level() int {
	if len(ea.FDs) > 0 {
		return 2
	}
	if len(ea.RHS) > 1 {
		return 1
	}
	// A single RHS triple introducing a constant object where the LHS had
	// a variable is a value partition (level 1); plain renamings are 0.
	l, r := ea.LHS, ea.RHS[0]
	if l.O.IsVar() && r.O.IsGround() {
		return 1
	}
	return 0
}

// ClassAlignment builds the paper's level-0 class correspondence:
// ∀x (Triple(x, rdf:type, c1) → Triple(x, rdf:type, c2)).
func ClassAlignment(id, c1, c2 string) *EntityAlignment {
	x := rdf.NewVar("x")
	typ := rdf.NewIRI(rdf.RDFType)
	return &EntityAlignment{
		ID:  id,
		LHS: rdf.Triple{S: x, P: typ, O: rdf.NewIRI(c1)},
		RHS: []rdf.Triple{{S: x, P: typ, O: rdf.NewIRI(c2)}},
	}
}

// PropertyAlignment builds the paper's level-0 property correspondence:
// ∀x∀y (Triple(x, p1, y) → Triple(x, p2, y)).
func PropertyAlignment(id, p1, p2 string) *EntityAlignment {
	x, y := rdf.NewVar("x"), rdf.NewVar("y")
	return &EntityAlignment{
		ID:  id,
		LHS: rdf.Triple{S: x, P: rdf.NewIRI(p1), O: y},
		RHS: []rdf.Triple{{S: x, P: rdf.NewIRI(p2), O: y}},
	}
}

// OntologyAlignment is the paper's OA = ⟨SO, TO, TD, EA⟩ (§3.2.1): entity
// alignments plus the coordinates describing where they are valid. With TD
// set the alignments are local to those target data sets; with only TO set
// they are reusable across any data set adopting those ontologies.
type OntologyAlignment struct {
	// URI identifies the ontology alignment.
	URI string
	// SourceOntologies (SO) are the namespaces queries are written in.
	SourceOntologies []string
	// TargetOntologies (TO) are the namespaces the RHS patterns use.
	TargetOntologies []string
	// TargetDatasets (TD) are voiD data set URIs the alignment targets.
	TargetDatasets []string
	// Alignments is the EA set.
	Alignments []*EntityAlignment
}

// Validate checks the OA's coordinates and every contained EA.
func (oa *OntologyAlignment) Validate() error {
	if len(oa.SourceOntologies) == 0 {
		return fmt.Errorf("align: OA %s: no source ontologies", oa.URI)
	}
	if len(oa.TargetOntologies) == 0 && len(oa.TargetDatasets) == 0 {
		return fmt.Errorf("align: OA %s: neither target ontology nor target data set", oa.URI)
	}
	for _, ea := range oa.Alignments {
		if err := ea.Validate(); err != nil {
			return fmt.Errorf("align: OA %s: %w", oa.URI, err)
		}
	}
	return nil
}
