package align

import (
	"reflect"
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

func paperOA() *OntologyAlignment {
	return &OntologyAlignment{
		URI:              "http://ecs.soton.ac.uk/alignments/akt2kisti",
		SourceOntologies: []string{rdf.AKTNS},
		TargetOntologies: []string{rdf.KISTINS},
		TargetDatasets:   []string{"http://kisti.rkbexplorer.com/id/void"},
		Alignments: []*EntityAlignment{
			paperEA(),
			ClassAlignment("http://ecs.soton.ac.uk/alignments/akt2kisti#person",
				rdf.AKTPerson, rdf.KISTIPerson),
			PropertyAlignment("http://ecs.soton.ac.uk/alignments/akt2kisti#title",
				rdf.AKTHasTitle, rdf.KISTITitle),
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	oa := paperOA()
	var g rdf.Graph
	EncodeOntologyAlignment(&g, oa)
	oas, free, err := DecodeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 0 {
		t.Fatalf("free alignments = %d", len(free))
	}
	if len(oas) != 1 {
		t.Fatalf("oas = %d", len(oas))
	}
	got := oas[0]
	if got.URI != oa.URI ||
		!reflect.DeepEqual(got.SourceOntologies, oa.SourceOntologies) ||
		!reflect.DeepEqual(got.TargetOntologies, oa.TargetOntologies) ||
		!reflect.DeepEqual(got.TargetDatasets, oa.TargetDatasets) {
		t.Fatalf("OA header mismatch: %+v", got)
	}
	if len(got.Alignments) != 3 {
		t.Fatalf("alignments = %d", len(got.Alignments))
	}
	// decode order is by ID; find the paper EA
	var dec *EntityAlignment
	for _, ea := range got.Alignments {
		if strings.HasSuffix(ea.ID, "creator_info") {
			dec = ea
		}
	}
	if dec == nil {
		t.Fatal("creator_info alignment lost")
	}
	want := paperEA()
	if dec.LHS != want.LHS {
		t.Fatalf("LHS = %v, want %v", dec.LHS, want.LHS)
	}
	if !reflect.DeepEqual(dec.RHS, want.RHS) {
		t.Fatalf("RHS = %v, want %v", dec.RHS, want.RHS)
	}
	if !reflect.DeepEqual(dec.FDs, want.FDs) {
		t.Fatalf("FDs = %v, want %v", dec.FDs, want.FDs)
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	oa := paperOA()
	ttl := FormatTurtle([]*OntologyAlignment{oa})
	// spot-check the paper's concrete syntax elements
	for _, want := range []string{"map:EntityAlignment", "map:lhs", "map:rhs",
		"map:hasFunctionalDependency", "rdf:subject", "rdf:predicate", "rdf:object"} {
		if !strings.Contains(ttl, want) {
			t.Fatalf("turtle missing %q:\n%s", want, ttl)
		}
	}
	oas, _, err := ParseTurtle(ttl)
	if err != nil {
		t.Fatalf("%v\n%s", err, ttl)
	}
	if len(oas) != 1 || len(oas[0].Alignments) != 3 {
		t.Fatalf("round trip lost alignments: %+v", oas)
	}
	// FDs must survive with their regex argument intact
	for _, ea := range oas[0].Alignments {
		if strings.HasSuffix(ea.ID, "creator_info") {
			if len(ea.FDs) != 2 {
				t.Fatalf("FDs = %v", ea.FDs)
			}
			if ea.FDs[0].Args[1].Value != `http://kisti\.rkbexplorer\.com/id/\S*` {
				t.Fatalf("regex arg = %q", ea.FDs[0].Args[1].Value)
			}
		}
	}
}

func TestParsePaperVerbatimListing(t *testing.T) {
	// The Turtle from §3.2.2 of the paper (prefixes completed, since the
	// paper elides them with "...").
	src := `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix map: <http://ecs.soton.ac.uk/om.owl#> .
@prefix akt2kisti: <http://ecs.soton.ac.uk/alignments/akt2kisti#> .
@prefix akt: <http://www.aktors.org/ontology/portal#> .
@prefix kisti: <http://www.kisti.re.kr/isrl/ResearchRefOntology#> .
akt2kisti:creator_info
  a map:EntityAlignment ;
  map:lhs [
    rdf:type rdf:Statement ;
    rdf:subject _:p1 ;
    rdf:predicate akt:has-author ;
    rdf:object _:a1
  ] ;
  map:rhs [
    rdf:type rdf:Statement ;
    map:index 0 ;
    rdf:subject _:p2 ;
    rdf:predicate kisti:hasCreatorInfo ;
    rdf:object _:c
  ] ;
  map:rhs [
    rdf:type rdf:Statement ;
    map:index 1 ;
    rdf:subject _:c ;
    rdf:predicate kisti:hasCreator ;
    rdf:object _:a2
  ] ;
  map:hasFunctionalDependency [
    rdf:type rdf:Statement ;
    rdf:subject _:a2 ;
    rdf:predicate map:sameas ;
    rdf:object ( _:a1 "http://kisti\\.rkbexplorer\\.com/id/\\S*" )
  ] ;
  map:hasFunctionalDependency [
    rdf:type rdf:Statement ;
    rdf:subject _:p2 ;
    rdf:predicate map:sameas ;
    rdf:object ( _:p1 "http://kisti\\.rkbexplorer\\.com/id/\\S*" )
  ] .
`
	_, free, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 1 {
		t.Fatalf("free EAs = %d", len(free))
	}
	ea := free[0]
	if ea.LHS.P.Value != rdf.AKTHasAuthor {
		t.Fatalf("LHS = %v", ea.LHS)
	}
	if len(ea.RHS) != 2 || ea.RHS[0].P.Value != rdf.KISTIHasCreatorInfo || ea.RHS[1].P.Value != rdf.KISTIHasCreator {
		t.Fatalf("RHS = %v", ea.RHS)
	}
	if len(ea.FDs) != 2 {
		t.Fatalf("FDs = %v", ea.FDs)
	}
	// _:c links the two RHS triples
	if ea.RHS[0].O != rdf.NewVar("c") || ea.RHS[1].S != rdf.NewVar("c") {
		t.Fatalf("chain variable broken: %v", ea.RHS)
	}
}

func TestMultiOADocumentRoundTrip(t *testing.T) {
	// Regression: two ontology alignments in one document must not share
	// blank-node labels for their reified statements.
	oa1 := paperOA()
	oa2 := &OntologyAlignment{
		URI:              "http://ecs.soton.ac.uk/alignments/other",
		SourceOntologies: []string{rdf.ECSNS},
		TargetOntologies: []string{rdf.DBONS},
		Alignments: []*EntityAlignment{
			ClassAlignment("http://ecs.soton.ac.uk/alignments/other#person", rdf.ECSNS+"Person", rdf.DBONS+"Person"),
			PropertyAlignment("http://ecs.soton.ac.uk/alignments/other#name", rdf.ECSNS+"name", rdf.DBONS+"name"),
		},
	}
	ttl := FormatTurtle([]*OntologyAlignment{oa1, oa2})
	oas, free, err := ParseTurtle(ttl)
	if err != nil {
		t.Fatalf("%v\n%s", err, ttl)
	}
	if len(free) != 0 || len(oas) != 2 {
		t.Fatalf("oas=%d free=%d", len(oas), len(free))
	}
	total := 0
	for _, oa := range oas {
		for _, ea := range oa.Alignments {
			if err := ea.Validate(); err != nil {
				t.Fatalf("decoded alignment invalid: %v", err)
			}
			total++
		}
	}
	if total != 5 {
		t.Fatalf("total alignments = %d", total)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		// missing lhs
		`@prefix map: <http://ecs.soton.ac.uk/om.owl#> .
		 <http://x/ea> a map:EntityAlignment .`,
		// lhs missing rdf:object
		`@prefix map: <http://ecs.soton.ac.uk/om.owl#> .
		 @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
		 <http://x/ea> a map:EntityAlignment ;
		   map:lhs [ rdf:subject _:a ; rdf:predicate <http://p> ] .`,
		// no rhs at all
		`@prefix map: <http://ecs.soton.ac.uk/om.owl#> .
		 @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
		 <http://x/ea> a map:EntityAlignment ;
		   map:lhs [ rdf:subject _:a ; rdf:predicate <http://p> ; rdf:object _:b ] .`,
		// FD dependent is not a variable
		`@prefix map: <http://ecs.soton.ac.uk/om.owl#> .
		 @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
		 <http://x/ea> a map:EntityAlignment ;
		   map:lhs [ rdf:subject _:a ; rdf:predicate <http://p> ; rdf:object _:b ] ;
		   map:rhs [ rdf:subject _:a ; rdf:predicate <http://q> ; rdf:object _:b ] ;
		   map:hasFunctionalDependency [ rdf:subject <http://notvar> ; rdf:predicate <http://fn> ; rdf:object ( _:a ) ] .`,
	}
	for i, src := range bad {
		if _, _, err := ParseTurtle(src); err == nil {
			t.Errorf("case %d should fail to decode", i)
		}
	}
}

func TestKBSelect(t *testing.T) {
	kb := NewKB()
	akt2kisti := paperOA()
	if err := kb.Add(akt2kisti); err != nil {
		t.Fatal(err)
	}
	// a data-set-independent OA (no TD): reusable via target ontology
	generic := &OntologyAlignment{
		URI:              "http://ecs.soton.ac.uk/alignments/akt2foaf",
		SourceOntologies: []string{rdf.AKTNS},
		TargetOntologies: []string{rdf.FOAFNS},
		Alignments: []*EntityAlignment{
			PropertyAlignment("http://ecs.soton.ac.uk/alignments/akt2foaf#name", rdf.AKTFullName, rdf.FOAFNS+"name"),
		},
	}
	if err := kb.Add(generic); err != nil {
		t.Fatal(err)
	}

	// Selecting by the KISTI target data set returns only the akt2kisti EAs.
	got := kb.Select(Selector{SourceOntology: rdf.AKTNS, TargetDataset: "http://kisti.rkbexplorer.com/id/void"})
	if len(got) != 3 {
		t.Fatalf("select kisti = %d", len(got))
	}
	// Selecting by FOAF target ontology returns the generic EA.
	got = kb.Select(Selector{SourceOntology: rdf.AKTNS, TargetOntology: rdf.FOAFNS})
	if len(got) != 1 {
		t.Fatalf("select foaf = %d", len(got))
	}
	// A data-set-specific OA is not reused for a different data set.
	got = kb.Select(Selector{SourceOntology: rdf.AKTNS, TargetDataset: "http://other.example/void"})
	if len(got) != 0 {
		t.Fatalf("select other = %d", len(got))
	}
	// Wrong source ontology selects nothing.
	got = kb.Select(Selector{SourceOntology: "http://nope#", TargetDataset: "http://kisti.rkbexplorer.com/id/void"})
	if len(got) != 0 {
		t.Fatalf("select wrong source = %d", len(got))
	}
	// Wildcard selector returns the union.
	got = kb.Select(Selector{})
	if len(got) != 4 {
		t.Fatalf("select all = %d", len(got))
	}
	if kb.Len() != 2 || kb.EntityAlignmentCount() != 4 {
		t.Fatalf("kb stats: %d %d", kb.Len(), kb.EntityAlignmentCount())
	}
	if err := kb.Add(&OntologyAlignment{URI: "bad"}); err == nil {
		t.Fatal("invalid OA must be rejected")
	}
}
