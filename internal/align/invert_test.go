package align

import (
	"testing"

	"sparqlrw/internal/rdf"
)

const sotonSpace = `http://southampton\.rkbexplorer\.com/id/\S*`

func TestInvertPropertyAlignment(t *testing.T) {
	ea := PropertyAlignment("http://a/fwd", "http://src/p", "http://tgt/q")
	if !ea.Invertible() {
		t.Fatal("plain property alignment must be invertible")
	}
	inv, err := ea.Invert("http://a/rev", sotonSpace)
	if err != nil {
		t.Fatal(err)
	}
	if inv.LHS.P.Value != "http://tgt/q" || inv.RHS[0].P.Value != "http://src/p" {
		t.Fatalf("inverse = %v", inv)
	}
	// Inverting twice restores the original predicates.
	back, err := inv.Invert("http://a/fwd2", `http://tgt\.example/\S*`)
	if err != nil {
		t.Fatal(err)
	}
	if back.LHS.P != ea.LHS.P || back.RHS[0].P != ea.RHS[0].P {
		t.Fatalf("double inverse differs: %v", back)
	}
}

func TestInvertWithSameasFDs(t *testing.T) {
	// A corefProp-style alignment: s2 = sameas(s1, kistiSpace).
	ea := &EntityAlignment{
		ID:  "http://a/title",
		LHS: rdf.Triple{S: rdf.NewVar("s1"), P: rdf.NewIRI(rdf.AKTHasTitle), O: rdf.NewVar("o")},
		RHS: []rdf.Triple{{S: rdf.NewVar("s2"), P: rdf.NewIRI(rdf.KISTITitle), O: rdf.NewVar("o")}},
		FDs: []FD{{Var: "s2", Func: rdf.MapSameAs,
			Args: []rdf.Term{rdf.NewVar("s1"), rdf.NewLiteral(`http://kisti\.rkbexplorer\.com/id/\S*`)}}},
	}
	inv, err := ea.Invert("http://a/title_rev", sotonSpace)
	if err != nil {
		t.Fatal(err)
	}
	// new: s1 = sameas(s2, sotonSpace)
	if len(inv.FDs) != 1 || inv.FDs[0].Var != "s1" {
		t.Fatalf("inverse FDs = %v", inv.FDs)
	}
	if inv.FDs[0].Args[0] != rdf.NewVar("s2") || inv.FDs[0].Args[1].Value != sotonSpace {
		t.Fatalf("inverse FD args = %v", inv.FDs[0].Args)
	}
	if err := inv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNotInvertible(t *testing.T) {
	// Multi-triple RHS (the creator_info chain) cannot become a simple
	// LHS, per the formalism's single-triple constraint.
	chain := &EntityAlignment{
		ID:  "http://a/chain",
		LHS: rdf.Triple{S: rdf.NewVar("p1"), P: rdf.NewIRI(rdf.AKTHasAuthor), O: rdf.NewVar("a1")},
		RHS: []rdf.Triple{
			{S: rdf.NewVar("p2"), P: rdf.NewIRI(rdf.KISTIHasCreatorInfo), O: rdf.NewVar("c")},
			{S: rdf.NewVar("c"), P: rdf.NewIRI(rdf.KISTIHasCreator), O: rdf.NewVar("a2")},
		},
	}
	if chain.Invertible() {
		t.Fatal("chain alignment must not be invertible")
	}
	if _, err := chain.Invert("x", sotonSpace); err == nil {
		t.Fatal("Invert must refuse")
	}
	// Non-sameas FD blocks inversion.
	conv := &EntityAlignment{
		ID:  "http://a/conv",
		LHS: rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI("http://m/km"), O: rdf.NewVar("d")},
		RHS: []rdf.Triple{{S: rdf.NewVar("s"), P: rdf.NewIRI("http://i/mi"), O: rdf.NewVar("d2")}},
		FDs: []FD{{Var: "d2", Func: rdf.MapNS + "kmToMiles", Args: []rdf.Term{rdf.NewVar("d")}}},
	}
	if conv.Invertible() {
		t.Fatal("unit conversion must not be mechanically invertible")
	}
}

func TestInvertAll(t *testing.T) {
	eas := []*EntityAlignment{
		PropertyAlignment("http://a/1", "http://src/p", "http://tgt/p"),
		ClassAlignment("http://a/2", "http://src/C", "http://tgt/C"),
		{ // not invertible
			ID:  "http://a/3",
			LHS: rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI("http://src/q"), O: rdf.NewVar("y")},
			RHS: []rdf.Triple{
				{S: rdf.NewVar("x"), P: rdf.NewIRI("http://tgt/q1"), O: rdf.NewVar("m")},
				{S: rdf.NewVar("m"), P: rdf.NewIRI("http://tgt/q2"), O: rdf.NewVar("y")},
			},
		},
	}
	inv, skipped := InvertAll(eas, "_rev", sotonSpace)
	if len(inv) != 2 || len(skipped) != 1 || skipped[0] != "http://a/3" {
		t.Fatalf("inv=%d skipped=%v", len(inv), skipped)
	}
	for _, ea := range inv {
		if err := ea.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRoundTripSemantics: applying an alignment then its inverse to a
// matching query triple restores the original pattern (modulo variable
// names).
func TestInvertRoundTripOnMatch(t *testing.T) {
	ea := PropertyAlignment("http://a/fwd", "http://src/p", "http://tgt/q")
	inv, _ := ea.Invert("http://a/rev", sotonSpace)
	query := rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI("http://src/p"), O: rdf.NewLiteral("v")}
	b1, ok := ea.Match(query)
	if !ok {
		t.Fatal("forward match")
	}
	forward := ApplyBindingTriple(ea.RHS[0], b1)
	b2, ok := inv.Match(forward)
	if !ok {
		t.Fatal("inverse match")
	}
	back := ApplyBindingTriple(inv.RHS[0], b2)
	if back.P != query.P || back.O != query.O || back.S != query.S {
		t.Fatalf("round trip: %v -> %v -> %v", query, forward, back)
	}
}
