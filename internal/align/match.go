package align

import (
	"sort"
	"strings"

	"sparqlrw/internal/rdf"
)

// Binding is a substitution from alignment (LHS/RHS) variable names to the
// query terms they matched — ground terms, query variables, or query blank
// nodes (which the paper treats as existential variables).
type Binding map[string]rdf.Term

// Clone copies the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// String renders the binding deterministically, in the paper's
// [?p1/?paper, ?a1/id:person-02686] style.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = "?" + k + "/" + b[k].String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// MatchTerm implements the paper's node matcher (§3.3.1):
//
//	match(l, r) = [l/r]  if l ∈ Vars
//	            = true   if l ∉ Vars ∧ l = r
//	            = false  otherwise
//
// where l is the LHS node and r the query node. Alignment blank nodes are
// treated as variables (the paper's RDF encoding uses them as such). The
// binding accumulates substitutions; an inconsistent rebinding fails.
func MatchTerm(l, r rdf.Term, binding Binding) bool {
	if l.IsVar() || l.IsBlank() {
		name := l.Value
		if prev, ok := binding[name]; ok {
			return prev == r
		}
		binding[name] = r
		return true
	}
	return l == r
}

// MatchTriple matches an alignment LHS pattern against one query triple
// pattern, extending binding on success. Matching is positional over
// subject, predicate, object, per the paper ("match over triples just
// extends this algorithm to subject, predicate and object").
func MatchTriple(lhs, query rdf.Triple, binding Binding) bool {
	if !MatchTerm(lhs.S, query.S, binding) {
		return false
	}
	if !MatchTerm(lhs.P, query.P, binding) {
		return false
	}
	return MatchTerm(lhs.O, query.O, binding)
}

// Match is the paper's align.match(t): it tries the alignment's LHS
// against the query triple and returns the resulting binding, or ok=false.
func (ea *EntityAlignment) Match(query rdf.Triple) (Binding, bool) {
	b := Binding{}
	if MatchTriple(ea.LHS, query, b) {
		return b, true
	}
	return nil, false
}

// FirstMatch returns the first alignment in eas whose LHS matches the
// query triple, with its binding. This reproduces the paper's single-match
// semantics (Algorithm 1 line 4); AllMatches exists for the ablation mode.
func FirstMatch(eas []*EntityAlignment, query rdf.Triple) (*EntityAlignment, Binding, bool) {
	for _, ea := range eas {
		if b, ok := ea.Match(query); ok {
			return ea, b, true
		}
	}
	return nil, nil, false
}

// AllMatches returns every alignment matching the query triple with its
// binding, in order.
func AllMatches(eas []*EntityAlignment, query rdf.Triple) []MatchResult {
	var out []MatchResult
	for _, ea := range eas {
		if b, ok := ea.Match(query); ok {
			out = append(out, MatchResult{Alignment: ea, Binding: b})
		}
	}
	return out
}

// MatchResult pairs a matched alignment with its binding.
type MatchResult struct {
	Alignment *EntityAlignment
	Binding   Binding
}

// ApplyBinding instantiates a pattern term under a binding: variables and
// blanks take their bound value (or stay untouched when unbound), ground
// terms pass through — the paper's substitution application.
func ApplyBinding(t rdf.Term, binding Binding) rdf.Term {
	if t.IsVar() || t.IsBlank() {
		if v, ok := binding[t.Value]; ok {
			return v
		}
	}
	return t
}

// ApplyBindingTriple instantiates all three positions of a pattern.
func ApplyBindingTriple(t rdf.Triple, binding Binding) rdf.Triple {
	return rdf.Triple{
		S: ApplyBinding(t.S, binding),
		P: ApplyBinding(t.P, binding),
		O: ApplyBinding(t.O, binding),
	}
}
