package align

import (
	"fmt"

	"sparqlrw/internal/rdf"
)

// Alignments are directional (§3.2.2: "The alignments so defined are
// directional (i.e. not symmetric)"). Many practical alignments are
// nevertheless mechanically invertible, which halves the authoring effort
// for the bidirectional peer scenarios of §3. An alignment is invertible
// when its RHS is a single triple (the inverse LHS must be a simple
// triple, the formalism's constraint) — functional dependencies flip by
// swapping the dependent/argument variables and retargeting the sameas
// URI-space pattern.

// Invertible reports whether Invert can produce a valid inverse.
func (ea *EntityAlignment) Invertible() bool {
	if len(ea.RHS) != 1 {
		return false
	}
	for _, fd := range ea.FDs {
		if fd.Func != rdf.MapSameAs || len(fd.Args) != 2 {
			return false // only sameas FDs have a mechanical inverse
		}
		if a := fd.Args[0]; !a.IsVar() && !a.IsBlank() {
			return false
		}
	}
	return true
}

// Invert returns the reverse alignment: RHS[0] becomes the LHS, the old
// LHS becomes the single RHS triple, and each sameas FD swaps its
// variables with sourceURISpace as the new target pattern. The id
// parameter names the new alignment.
func (ea *EntityAlignment) Invert(id, sourceURISpace string) (*EntityAlignment, error) {
	if !ea.Invertible() {
		return nil, fmt.Errorf("align: %s is not invertible (multi-triple RHS or non-sameas FDs)", ea.name())
	}
	inv := &EntityAlignment{
		ID:  id,
		LHS: ea.RHS[0],
		RHS: []rdf.Triple{ea.LHS},
	}
	for _, fd := range ea.FDs {
		arg := fd.Args[0]
		inv.FDs = append(inv.FDs, FD{
			// old: rhsVar = sameas(lhsVar, targetSpace)
			// new: lhsVar = sameas(rhsVar, sourceSpace)
			Var:  arg.Value,
			Func: rdf.MapSameAs,
			Args: []rdf.Term{rdf.NewVar(fd.Var), rdf.NewLiteral(sourceURISpace)},
		})
	}
	if err := inv.Validate(); err != nil {
		return nil, fmt.Errorf("align: inverse of %s invalid: %w", ea.name(), err)
	}
	return inv, nil
}

// InvertAll inverts every invertible alignment in the set, skipping the
// rest; skipped returns their IDs.
func InvertAll(eas []*EntityAlignment, idSuffix, sourceURISpace string) (inverted []*EntityAlignment, skipped []string) {
	for _, ea := range eas {
		if !ea.Invertible() {
			skipped = append(skipped, ea.ID)
			continue
		}
		inv, err := ea.Invert(ea.ID+idSuffix, sourceURISpace)
		if err != nil {
			skipped = append(skipped, ea.ID)
			continue
		}
		inverted = append(inverted, inv)
	}
	return inverted, skipped
}
