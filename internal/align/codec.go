package align

import (
	"fmt"
	"sort"
	"strconv"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/store"
	"sparqlrw/internal/turtle"
)

// The RDF concrete syntax for alignments follows §3.2.2 of the paper:
// entity alignments are resources typed map:EntityAlignment whose lhs/rhs
// parts are reified rdf:Statement nodes and whose functional dependencies
// are reified statements with an argument collection as rdf:object.
// Alignment variables are encoded as blank nodes (the paper's convention)
// and canonicalised to variables on load. One extension: RHS statements
// carry a map:index literal so that multi-triple bodies keep a
// deterministic order across round trips (RDF multisets are unordered).

const mapIndex = rdf.MapNS + "index"

// EncodeEntityAlignment appends the reified representation of ea to g.
// The alignment must have a non-empty ID. Blank node labels are derived
// from the (globally unique) alignment ID so that documents holding many
// alignments — and many ontology alignments — never share labels. The seq
// argument additionally disambiguates alignments that lack an ID.
func EncodeEntityAlignment(g *rdf.Graph, ea *EntityAlignment, seq int) {
	id := rdf.NewIRI(ea.ID)
	typ := rdf.NewIRI(rdf.RDFType)
	g.AddTriple(id, typ, rdf.NewIRI(rdf.MapEntityAlignment))

	base := sanitizeLabel(ea.ID)
	if base == "" {
		base = fmt.Sprintf("anon%d", seq)
	}
	bn := func(role string, i int) rdf.Term {
		return rdf.NewBlank(fmt.Sprintf("%s_%s%d", base, role, i))
	}
	// Variables are serialised as blank nodes named after the variable.
	varTerm := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			return rdf.NewBlank(t.Value)
		}
		return t
	}
	reify := func(node rdf.Term, t rdf.Triple) {
		g.AddTriple(node, typ, rdf.NewIRI(rdf.RDFStatement))
		g.AddTriple(node, rdf.NewIRI(rdf.RDFSubject), varTerm(t.S))
		g.AddTriple(node, rdf.NewIRI(rdf.RDFPredicate), varTerm(t.P))
		g.AddTriple(node, rdf.NewIRI(rdf.RDFObject), varTerm(t.O))
	}

	lhs := bn("lhs", 0)
	g.AddTriple(id, rdf.NewIRI(rdf.MapLHS), lhs)
	reify(lhs, ea.LHS)

	for i, t := range ea.RHS {
		node := bn("rhs", i)
		g.AddTriple(id, rdf.NewIRI(rdf.MapRHS), node)
		reify(node, t)
		g.AddTriple(node, rdf.NewIRI(mapIndex), rdf.NewInteger(int64(i)))
	}

	for i, fd := range ea.FDs {
		node := bn("fd", i)
		g.AddTriple(id, rdf.NewIRI(rdf.MapHasFD), node)
		g.AddTriple(node, typ, rdf.NewIRI(rdf.RDFStatement))
		g.AddTriple(node, rdf.NewIRI(rdf.RDFSubject), rdf.NewBlank(fd.Var))
		g.AddTriple(node, rdf.NewIRI(rdf.RDFPredicate), rdf.NewIRI(fd.Func))
		// Arguments as an RDF collection.
		if len(fd.Args) == 0 {
			g.AddTriple(node, rdf.NewIRI(rdf.RDFObject), rdf.NewIRI(rdf.RDFNil))
			continue
		}
		head := bn("fdargs", i)
		g.AddTriple(node, rdf.NewIRI(rdf.RDFObject), head)
		cur := head
		for ai, arg := range fd.Args {
			g.AddTriple(cur, rdf.NewIRI(rdf.RDFFirst), varTerm(arg))
			if ai == len(fd.Args)-1 {
				g.AddTriple(cur, rdf.NewIRI(rdf.RDFRest), rdf.NewIRI(rdf.RDFNil))
			} else {
				next := bn(fmt.Sprintf("fdargs%d_", i), ai+1)
				g.AddTriple(cur, rdf.NewIRI(rdf.RDFRest), next)
				cur = next
			}
		}
	}
}

// EncodeOntologyAlignment appends the OA header and all of its entity
// alignments to g.
func EncodeOntologyAlignment(g *rdf.Graph, oa *OntologyAlignment) {
	id := rdf.NewIRI(oa.URI)
	typ := rdf.NewIRI(rdf.RDFType)
	g.AddTriple(id, typ, rdf.NewIRI(rdf.MapOntologyAlignment))
	for _, so := range oa.SourceOntologies {
		g.AddTriple(id, rdf.NewIRI(rdf.MapSourceOntology), rdf.NewIRI(so))
	}
	for _, to := range oa.TargetOntologies {
		g.AddTriple(id, rdf.NewIRI(rdf.MapTargetOntology), rdf.NewIRI(to))
	}
	for _, td := range oa.TargetDatasets {
		g.AddTriple(id, rdf.NewIRI(rdf.MapTargetDataset), rdf.NewIRI(td))
	}
	for i, ea := range oa.Alignments {
		g.AddTriple(id, rdf.NewIRI(rdf.MapHasAlignment), rdf.NewIRI(ea.ID))
		EncodeEntityAlignment(g, ea, i)
	}
}

// FormatTurtle serialises ontology alignments as a Turtle document using
// the standard prefix set.
func FormatTurtle(oas []*OntologyAlignment) string {
	var g rdf.Graph
	for _, oa := range oas {
		EncodeOntologyAlignment(&g, oa)
	}
	return turtle.Format(g, rdf.StandardPrefixes())
}

// sanitizeLabel turns an alignment URI into a valid blank node label.
func sanitizeLabel(id string) string {
	var b []byte
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// decoder wraps a store with reified-statement readers.
type decoder struct {
	st *store.Store
}

// blankToVar canonicalises alignment variables: blank nodes become
// variables of the same name, everything else passes through.
func blankToVar(t rdf.Term) rdf.Term {
	if t.IsBlank() {
		return rdf.NewVar(t.Value)
	}
	return t
}

func (d *decoder) object(s rdf.Term, p string) (rdf.Term, bool) {
	return d.st.FirstObject(s, rdf.NewIRI(p))
}

func (d *decoder) objects(s rdf.Term, p string) []rdf.Term {
	objs := d.st.Objects(s, rdf.NewIRI(p))
	sort.Slice(objs, func(i, j int) bool { return objs[i].Compare(objs[j]) < 0 })
	return objs
}

// statement reads a reified rdf:Statement node as a triple pattern.
func (d *decoder) statement(node rdf.Term) (rdf.Triple, error) {
	s, ok := d.object(node, rdf.RDFSubject)
	if !ok {
		return rdf.Triple{}, fmt.Errorf("align: statement %s lacks rdf:subject", node)
	}
	p, ok := d.object(node, rdf.RDFPredicate)
	if !ok {
		return rdf.Triple{}, fmt.Errorf("align: statement %s lacks rdf:predicate", node)
	}
	o, ok := d.object(node, rdf.RDFObject)
	if !ok {
		return rdf.Triple{}, fmt.Errorf("align: statement %s lacks rdf:object", node)
	}
	return rdf.Triple{S: blankToVar(s), P: blankToVar(p), O: blankToVar(o)}, nil
}

// list reads an RDF collection into a term slice.
func (d *decoder) list(head rdf.Term) ([]rdf.Term, error) {
	var out []rdf.Term
	for i := 0; ; i++ {
		if i > 10_000 {
			return nil, fmt.Errorf("align: argument list too long or cyclic")
		}
		if head.IsIRI() && head.Value == rdf.RDFNil {
			return out, nil
		}
		first, ok := d.object(head, rdf.RDFFirst)
		if !ok {
			return nil, fmt.Errorf("align: malformed collection at %s", head)
		}
		out = append(out, blankToVar(first))
		rest, ok := d.object(head, rdf.RDFRest)
		if !ok {
			return nil, fmt.Errorf("align: collection node %s lacks rdf:rest", head)
		}
		head = rest
	}
}

// decodeEA reads one entity alignment resource.
func (d *decoder) decodeEA(id rdf.Term) (*EntityAlignment, error) {
	ea := &EntityAlignment{ID: id.Value}
	lhsNode, ok := d.object(id, rdf.MapLHS)
	if !ok {
		return nil, fmt.Errorf("align: %s lacks map:lhs", id)
	}
	lhs, err := d.statement(lhsNode)
	if err != nil {
		return nil, err
	}
	ea.LHS = lhs

	rhsNodes := d.objects(id, rdf.MapRHS)
	if len(rhsNodes) == 0 {
		return nil, fmt.Errorf("align: %s lacks map:rhs", id)
	}
	type indexed struct {
		idx int
		t   rdf.Triple
	}
	var rhs []indexed
	for _, node := range rhsNodes {
		t, err := d.statement(node)
		if err != nil {
			return nil, err
		}
		idx := -1
		if it, ok := d.object(node, mapIndex); ok {
			if n, err := strconv.Atoi(it.Value); err == nil {
				idx = n
			}
		}
		rhs = append(rhs, indexed{idx: idx, t: t})
	}
	sort.SliceStable(rhs, func(i, j int) bool {
		if rhs[i].idx != rhs[j].idx {
			return rhs[i].idx < rhs[j].idx
		}
		return rhs[i].t.Compare(rhs[j].t) < 0
	})
	for _, r := range rhs {
		ea.RHS = append(ea.RHS, r.t)
	}

	for _, node := range d.objects(id, rdf.MapHasFD) {
		v, ok := d.object(node, rdf.RDFSubject)
		if !ok {
			return nil, fmt.Errorf("align: FD node %s lacks rdf:subject", node)
		}
		fn, ok := d.object(node, rdf.RDFPredicate)
		if !ok || !fn.IsIRI() {
			return nil, fmt.Errorf("align: FD node %s lacks a function IRI", node)
		}
		argsHead, ok := d.object(node, rdf.RDFObject)
		if !ok {
			return nil, fmt.Errorf("align: FD node %s lacks arguments", node)
		}
		args, err := d.list(argsHead)
		if err != nil {
			return nil, err
		}
		vt := blankToVar(v)
		if !vt.IsVar() {
			return nil, fmt.Errorf("align: FD dependent %s is not a variable", v)
		}
		ea.FDs = append(ea.FDs, FD{Var: vt.Value, Func: fn.Value, Args: args})
	}
	sort.SliceStable(ea.FDs, func(i, j int) bool { return ea.FDs[i].Var < ea.FDs[j].Var })
	return ea, ea.Validate()
}

// DecodeGraph extracts every ontology alignment (and any free-standing
// entity alignments not attached to an OA) from an RDF graph.
func DecodeGraph(g rdf.Graph) ([]*OntologyAlignment, []*EntityAlignment, error) {
	st := store.New()
	st.AddGraph(g)
	d := &decoder{st: st}

	typ := rdf.NewIRI(rdf.RDFType)
	var oas []*OntologyAlignment
	attached := map[string]bool{}
	oaIDs := st.Subjects(typ, rdf.NewIRI(rdf.MapOntologyAlignment))
	sort.Slice(oaIDs, func(i, j int) bool { return oaIDs[i].Compare(oaIDs[j]) < 0 })
	for _, id := range oaIDs {
		oa := &OntologyAlignment{URI: id.Value}
		for _, t := range d.objects(id, rdf.MapSourceOntology) {
			oa.SourceOntologies = append(oa.SourceOntologies, t.Value)
		}
		for _, t := range d.objects(id, rdf.MapTargetOntology) {
			oa.TargetOntologies = append(oa.TargetOntologies, t.Value)
		}
		for _, t := range d.objects(id, rdf.MapTargetDataset) {
			oa.TargetDatasets = append(oa.TargetDatasets, t.Value)
		}
		for _, eaID := range d.objects(id, rdf.MapHasAlignment) {
			ea, err := d.decodeEA(eaID)
			if err != nil {
				return nil, nil, err
			}
			attached[ea.ID] = true
			oa.Alignments = append(oa.Alignments, ea)
		}
		if err := oa.Validate(); err != nil {
			return nil, nil, err
		}
		oas = append(oas, oa)
	}

	var free []*EntityAlignment
	eaIDs := st.Subjects(typ, rdf.NewIRI(rdf.MapEntityAlignment))
	sort.Slice(eaIDs, func(i, j int) bool { return eaIDs[i].Compare(eaIDs[j]) < 0 })
	for _, id := range eaIDs {
		if attached[id.Value] {
			continue
		}
		ea, err := d.decodeEA(id)
		if err != nil {
			return nil, nil, err
		}
		free = append(free, ea)
	}
	return oas, free, nil
}

// ParseTurtle parses a Turtle document containing alignment definitions.
func ParseTurtle(src string) ([]*OntologyAlignment, []*EntityAlignment, error) {
	g, _, err := turtle.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return DecodeGraph(g)
}
