package align

import (
	"strings"
	"testing"

	"sparqlrw/internal/rdf"
)

// paperEA builds the §3.2.2 running example: akt:has-author rewritten into
// the KISTI CreatorInfo chain with two sameas functional dependencies.
func paperEA() *EntityAlignment {
	kistiPattern := rdf.NewLiteral(`http://kisti\.rkbexplorer\.com/id/\S*`)
	return &EntityAlignment{
		ID:  "http://ecs.soton.ac.uk/alignments/akt2kisti#creator_info",
		LHS: rdf.Triple{S: rdf.NewVar("p1"), P: rdf.NewIRI(rdf.AKTHasAuthor), O: rdf.NewVar("a1")},
		RHS: []rdf.Triple{
			{S: rdf.NewVar("p2"), P: rdf.NewIRI(rdf.KISTIHasCreatorInfo), O: rdf.NewVar("c")},
			{S: rdf.NewVar("c"), P: rdf.NewIRI(rdf.KISTIHasCreator), O: rdf.NewVar("a2")},
		},
		FDs: []FD{
			{Var: "a2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("a1"), kistiPattern}},
			{Var: "p2", Func: rdf.MapSameAs, Args: []rdf.Term{rdf.NewVar("p1"), kistiPattern}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := paperEA().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := paperEA()
	bad.RHS = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("empty RHS must fail")
	}
	bad = paperEA()
	bad.FDs[0].Var = "nonexistent"
	if err := bad.Validate(); err == nil {
		t.Fatal("FD var outside RHS must fail")
	}
	bad = paperEA()
	bad.FDs[0].Args[0] = rdf.NewVar("notinlhs")
	if err := bad.Validate(); err == nil {
		t.Fatal("FD arg outside LHS must fail")
	}
	bad = paperEA()
	bad.LHS.S = rdf.Any
	if err := bad.Validate(); err == nil {
		t.Fatal("wildcard term must fail")
	}
}

func TestLevels(t *testing.T) {
	if got := ClassAlignment("x", "http://a/C1", "http://b/C2").Level(); got != 0 {
		t.Fatalf("class alignment level = %d", got)
	}
	if got := PropertyAlignment("x", "http://a/p", "http://b/q").Level(); got != 0 {
		t.Fatalf("property alignment level = %d", got)
	}
	// Level 1: Burgundy -> Wine ∧ BurgundyRegionProduct (§3.2.2)
	x := rdf.NewVar("x")
	typ := rdf.NewIRI(rdf.RDFType)
	level1 := &EntityAlignment{
		ID:  "w",
		LHS: rdf.Triple{S: x, P: typ, O: rdf.NewIRI("http://w1/Burgundy")},
		RHS: []rdf.Triple{
			{S: x, P: typ, O: rdf.NewIRI("http://w2/Wine")},
			{S: x, P: typ, O: rdf.NewIRI("http://goods/BurgundyRegionProduct")},
		},
	}
	if got := level1.Level(); got != 1 {
		t.Fatalf("intersection alignment level = %d", got)
	}
	// Level 1 value partition: WhiteWine -> Wine with has_color "White"
	vp := &EntityAlignment{
		ID:  "vp",
		LHS: rdf.Triple{S: x, P: rdf.NewIRI("http://o1/prop"), O: rdf.NewVar("v")},
		RHS: []rdf.Triple{{S: x, P: rdf.NewIRI("http://o2/prop"), O: rdf.NewLiteral("White")}},
	}
	if got := vp.Level(); got != 1 {
		t.Fatalf("value partition level = %d", got)
	}
	if got := paperEA().Level(); got != 2 {
		t.Fatalf("FD alignment level = %d", got)
	}
}

func TestMatchTermSemantics(t *testing.T) {
	// l ∈ Vars -> bind
	b := Binding{}
	if !MatchTerm(rdf.NewVar("x"), rdf.NewIRI("http://v"), b) {
		t.Fatal("var must match")
	}
	if b["x"] != rdf.NewIRI("http://v") {
		t.Fatalf("binding = %v", b)
	}
	// rebinding consistently succeeds, inconsistently fails
	if !MatchTerm(rdf.NewVar("x"), rdf.NewIRI("http://v"), b) {
		t.Fatal("consistent rebind must succeed")
	}
	if MatchTerm(rdf.NewVar("x"), rdf.NewIRI("http://other"), b) {
		t.Fatal("inconsistent rebind must fail")
	}
	// ground equal / unequal
	if !MatchTerm(rdf.NewIRI("http://g"), rdf.NewIRI("http://g"), Binding{}) {
		t.Fatal("ground equal must match")
	}
	if MatchTerm(rdf.NewIRI("http://g"), rdf.NewIRI("http://h"), Binding{}) {
		t.Fatal("ground unequal must fail")
	}
	// LHS var matches a query VARIABLE too (the paper's worked example
	// binds ?p1 to ?paper)
	b2 := Binding{}
	if !MatchTerm(rdf.NewVar("p1"), rdf.NewVar("paper"), b2) {
		t.Fatal("var-to-var must match")
	}
	if b2["p1"] != rdf.NewVar("paper") {
		t.Fatalf("var-to-var binding = %v", b2)
	}
	// blank nodes in alignments behave as variables
	b3 := Binding{}
	if !MatchTerm(rdf.NewBlank("p1"), rdf.NewIRI("http://v"), b3) {
		t.Fatal("blank-as-var must match")
	}
}

func TestMatchPaperWorkedExample(t *testing.T) {
	// §3.3.2: Triple(?paper, akt:has-author, id:person-02686) against the
	// alignment LHS yields [?p1/?paper, ?a1/id:person-02686].
	ea := paperEA()
	person := rdf.NewIRI("http://southampton.rkbexplorer.com/id/person-02686")
	query := rdf.Triple{S: rdf.NewVar("paper"), P: rdf.NewIRI(rdf.AKTHasAuthor), O: person}
	b, ok := ea.Match(query)
	if !ok {
		t.Fatal("paper example must match")
	}
	if b["p1"] != rdf.NewVar("paper") || b["a1"] != person {
		t.Fatalf("binding = %v", b)
	}
	// Non-matching predicate
	other := rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI(rdf.AKTHasTitle), O: rdf.NewVar("t")}
	if _, ok := ea.Match(other); ok {
		t.Fatal("different predicate must not match")
	}
}

func TestMatchSharedVariableAcrossPositions(t *testing.T) {
	// LHS ?x p ?x requires both positions to be equal.
	ea := &EntityAlignment{
		ID:  "self",
		LHS: rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI("http://p"), O: rdf.NewVar("x")},
		RHS: []rdf.Triple{{S: rdf.NewVar("x"), P: rdf.NewIRI("http://q"), O: rdf.NewVar("x")}},
	}
	same := rdf.Triple{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://a")}
	if _, ok := ea.Match(same); !ok {
		t.Fatal("equal positions must match")
	}
	diff := rdf.Triple{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://b")}
	if _, ok := ea.Match(diff); ok {
		t.Fatal("unequal positions must not match")
	}
}

func TestFirstMatchAndAllMatches(t *testing.T) {
	eas := []*EntityAlignment{
		PropertyAlignment("a1", "http://src/p", "http://t1/p"),
		PropertyAlignment("a2", "http://src/p", "http://t2/p"),
		PropertyAlignment("a3", "http://src/q", "http://t1/q"),
	}
	query := rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI("http://src/p"), O: rdf.NewVar("o")}
	ea, _, ok := FirstMatch(eas, query)
	if !ok || ea.ID != "a1" {
		t.Fatalf("FirstMatch = %v %v", ea, ok)
	}
	all := AllMatches(eas, query)
	if len(all) != 2 || all[0].Alignment.ID != "a1" || all[1].Alignment.ID != "a2" {
		t.Fatalf("AllMatches = %v", all)
	}
	if _, _, ok := FirstMatch(eas, rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI("http://none"), O: rdf.NewVar("o")}); ok {
		t.Fatal("no-match case")
	}
}

func TestApplyBinding(t *testing.T) {
	b := Binding{"p1": rdf.NewVar("paper"), "a1": rdf.NewIRI("http://person")}
	tr := ApplyBindingTriple(rdf.Triple{
		S: rdf.NewVar("p1"), P: rdf.NewIRI("http://pred"), O: rdf.NewVar("a1"),
	}, b)
	if tr.S != rdf.NewVar("paper") || tr.O != rdf.NewIRI("http://person") {
		t.Fatalf("applied = %v", tr)
	}
	// unbound variable stays
	tr2 := ApplyBindingTriple(rdf.Triple{S: rdf.NewVar("free"), P: rdf.NewIRI("http://p"), O: rdf.NewLiteral("x")}, b)
	if tr2.S != rdf.NewVar("free") {
		t.Fatalf("unbound changed: %v", tr2)
	}
}

func TestBindingString(t *testing.T) {
	b := Binding{"b": rdf.NewIRI("http://x"), "a": rdf.NewVar("v")}
	s := b.String()
	if !strings.HasPrefix(s, "[?a/") || !strings.Contains(s, "?b/<http://x>") {
		t.Fatalf("binding string = %q", s)
	}
}

func TestEntityAlignmentStringAndVars(t *testing.T) {
	ea := paperEA()
	s := ea.String()
	for _, want := range []string{"LHS:", "RHS:", "FD:", "has-author", "sameas"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	vars := ea.Vars()
	if len(vars) != 5 { // p1 a1 p2 c a2
		t.Fatalf("vars = %v", vars)
	}
}

func TestOntologyAlignmentValidate(t *testing.T) {
	oa := &OntologyAlignment{
		URI:              "http://ecs.soton.ac.uk/alignments/akt2kisti",
		SourceOntologies: []string{rdf.AKTNS},
		TargetOntologies: []string{rdf.KISTINS},
		TargetDatasets:   []string{"http://kisti.rkbexplorer.com/id/void"},
		Alignments:       []*EntityAlignment{paperEA()},
	}
	if err := oa.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&OntologyAlignment{URI: "x"}).Validate(); err == nil {
		t.Fatal("OA without SO must fail")
	}
	if err := (&OntologyAlignment{URI: "x", SourceOntologies: []string{"http://a#"}}).Validate(); err == nil {
		t.Fatal("OA without any target must fail")
	}
}
