package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// --- tenant configuration and identification ---

func TestParseTenants(t *testing.T) {
	cfg, err := ParseTenants([]byte(`{
		"anonymous": {"ratePerSec": 2},
		"tenants": [
			{"id": "acme", "keys": ["k1", "k2"], "maxConcurrent": 4},
			{"id": "proxy-mapped"}
		]
	}`))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	if len(cfg.Tenants) != 2 || cfg.Anonymous == nil {
		t.Fatalf("unexpected config: %+v", cfg)
	}

	bad := []string{
		`{"tenants":[{"id":""}]}`,
		`{"tenants":[{"id":"anonymous"}]}`,
		`{"tenants":[{"id":"a"},{"id":"a"}]}`,
		`{"tenants":[{"id":"a","keys":["k"]},{"id":"b","keys":["k"]}]}`,
		`{"tenants":[{"id":"a","keys":[""]}]}`,
		`{"tenants":[{"id":"a","policy":{"uriSpaces":[" "]}}]}`,
		`{broken`,
	}
	for _, src := range bad {
		if _, err := ParseTenants([]byte(src)); err == nil {
			t.Errorf("ParseTenants(%s): want error", src)
		}
	}
}

func TestIdentify(t *testing.T) {
	cfg, err := ParseTenants([]byte(`{"tenants": [
		{"id": "keyed", "keys": ["secret"]},
		{"id": "mapped"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTenantRegistry(cfg)

	req := func(hdr, val string) *Tenant {
		r := httptest.NewRequest("GET", "/sparql", nil)
		if hdr != "" {
			r.Header.Set(hdr, val)
		}
		return reg.Identify(r)
	}

	if got := req("", "").ID; got != AnonymousID {
		t.Errorf("no credential: got %q", got)
	}
	if got := req("X-API-Key", "secret").ID; got != "keyed" {
		t.Errorf("X-API-Key: got %q", got)
	}
	if got := req("Authorization", "Bearer secret").ID; got != "keyed" {
		t.Errorf("Bearer: got %q", got)
	}
	// A bad credential grants no more than none.
	if got := req("X-API-Key", "wrong").ID; got != AnonymousID {
		t.Errorf("unknown key: got %q", got)
	}
	// Header mapping selects key-less tenants only.
	if got := req("X-Tenant-Id", "mapped").ID; got != "mapped" {
		t.Errorf("X-Tenant-Id mapped: got %q", got)
	}
	if got := req("X-Tenant-Id", "keyed").ID; got != AnonymousID {
		t.Errorf("X-Tenant-Id must not select keyed tenants: got %q", got)
	}
}

// --- admission ---

// fakeClock is a deterministic admission/cache clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmissionRateLimit(t *testing.T) {
	reg := NewTenantRegistry(&TenantsConfig{Tenants: []*Tenant{
		{ID: "limited", RatePerSec: 1, Burst: 2},
	}})
	a := NewAdmission(reg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a.now = clk.now

	tenant, _ := reg.Get("limited")
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		release, rej := a.Admit(ctx, tenant)
		if rej != nil {
			t.Fatalf("burst admit %d: %v", i, rej)
		}
		release()
	}
	_, rej := a.Admit(ctx, tenant)
	if rej == nil {
		t.Fatal("want 429 once the bucket is empty")
	}
	if rej.Status != 429 || rej.Reason != "rate" {
		t.Fatalf("rejection = %+v", rej)
	}
	if rej.RetryAfterSeconds() != "1" {
		t.Fatalf("Retry-After = %s, want 1", rej.RetryAfterSeconds())
	}

	// One second refills one token.
	clk.advance(time.Second)
	release, rej := a.Admit(ctx, tenant)
	if rej != nil {
		t.Fatalf("after refill: %v", rej)
	}
	release()
}

func TestAdmissionConcurrencyAndQueue(t *testing.T) {
	reg := NewTenantRegistry(&TenantsConfig{Tenants: []*Tenant{
		{ID: "capped", MaxConcurrent: 1, QueueDepth: 1},
	}})
	a := NewAdmission(reg)
	tenant, _ := reg.Get("capped")
	ctx := context.Background()

	release1, rej := a.Admit(ctx, tenant)
	if rej != nil {
		t.Fatal(rej)
	}

	// Second request waits in the queue; releasing the first admits it.
	admitted := make(chan func(), 1)
	go func() {
		r2, rej2 := a.Admit(ctx, tenant)
		if rej2 != nil {
			t.Error(rej2)
		}
		admitted <- r2
	}()
	// Wait for the second request to enter the queue.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := a.Snapshot(); st[1].Waiting == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request finds the queue full: shed with 503.
	_, rej3 := a.Admit(ctx, tenant)
	if rej3 == nil || rej3.Status != 503 || rej3.Reason != "overloaded" {
		t.Fatalf("queue-full rejection = %+v", rej3)
	}

	release1()
	release2 := <-admitted
	release2()

	// A caller abandoning the queue is a 503 "canceled".
	release4, rej := a.Admit(ctx, tenant)
	if rej != nil {
		t.Fatal(rej)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	_, rej5 := a.Admit(cctx, tenant)
	if rej5 == nil || rej5.Reason != "canceled" {
		t.Fatalf("canceled rejection = %+v", rej5)
	}
	release4()

	// Double release must not over-free the semaphore.
	release4()
	st := a.Snapshot()
	if st[1].InFlight != 0 {
		t.Fatalf("inflight = %d after all releases", st[1].InFlight)
	}
}

// TestAdmissionParallelStress hammers the controller from many
// goroutines across several tenants; run with -race this is the
// serving tier's concurrency safety net. Every admit is either released
// or rejected, and the final snapshot must balance.
func TestAdmissionParallelStress(t *testing.T) {
	reg := NewTenantRegistry(&TenantsConfig{
		Anonymous: &Tenant{MaxConcurrent: 8, QueueDepth: 4},
		Tenants: []*Tenant{
			{ID: "a", Keys: []string{"ka"}, RatePerSec: 1e6, MaxConcurrent: 4, QueueDepth: 2},
			{ID: "b", Keys: []string{"kb"}, MaxConcurrent: 2, QueueDepth: 8},
		},
	})
	a := NewAdmission(reg)
	tenants := []*Tenant{reg.Anonymous()}
	for _, id := range []string{"a", "b"} {
		tn, _ := reg.Get(id)
		tenants = append(tenants, tn)
	}

	var admitted, rejected atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tn := tenants[(g+i)%len(tenants)]
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				release, rej := a.Admit(ctx, tn)
				if rej != nil {
					rejected.Add(1)
				} else {
					admitted.Add(1)
					release()
				}
				cancel()
				_ = a.Snapshot() // racing reader
			}
		}(g)
	}
	wg.Wait()

	if admitted.Load() == 0 {
		t.Fatal("nothing admitted under stress")
	}
	var inflight, waiting int
	var totalAdmitted, totalRejected uint64
	for _, ts := range a.Snapshot() {
		inflight += ts.InFlight
		waiting += ts.Waiting
		totalAdmitted += ts.Admitted
		totalRejected += ts.Rejected
	}
	if inflight != 0 || waiting != 0 {
		t.Fatalf("inflight=%d waiting=%d after drain", inflight, waiting)
	}
	if totalAdmitted != admitted.Load() || totalRejected != rejected.Load() {
		t.Fatalf("snapshot admitted=%d rejected=%d, want %d/%d",
			totalAdmitted, totalRejected, admitted.Load(), rejected.Load())
	}
}

// --- result cache ---

func row(v string) eval.Solution {
	return eval.Solution{"x": rdf.NewLiteral(v)}
}

func TestResultCacheHitMissTTL(t *testing.T) {
	c := NewResultCache(4, time.Minute, 100)
	clk := &fakeClock{t: time.Unix(0, 0)}
	c.now = clk.now

	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(&Entry{Key: "k", Solutions: []eval.Solution{row("1")}}, c.Version()) {
		t.Fatal("Put refused")
	}
	e, ok := c.Get("k")
	if !ok || len(e.Solutions) != 1 {
		t.Fatalf("Get after Put: ok=%v e=%+v", ok, e)
	}

	// TTL expiry counts as a miss and an eviction.
	clk.advance(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on expired entry")
	}
	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 2 || m.Evictions != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := NewResultCache(2, time.Minute, 100)
	c.Put(&Entry{Key: "a"}, c.Version())
	c.Put(&Entry{Key: "b"}, c.Version())
	c.Get("a") // refresh a
	c.Put(&Entry{Key: "c"}, c.Version())
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
}

func TestResultCacheStaleFill(t *testing.T) {
	c := NewResultCache(4, time.Minute, 100)
	v := c.Version()
	c.InvalidateDataset("http://example.org/ds") // epoch moves while "in flight"
	if c.Put(&Entry{Key: "k"}, v) {
		t.Fatal("stale fill must not be cached")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d", c.Len())
	}
	if !c.Put(&Entry{Key: "k"}, c.Version()) {
		t.Fatal("fresh fill should store")
	}
}

func TestResultCacheInvalidateDataset(t *testing.T) {
	c := NewResultCache(8, time.Minute, 100)
	c.Put(&Entry{Key: "soton", Datasets: []string{"http://a/void"}}, c.Version())
	c.Put(&Entry{Key: "both", Datasets: []string{"http://a/void", "http://b/void"}}, c.Version())
	c.Put(&Entry{Key: "kisti", Datasets: []string{"http://b/void"}}, c.Version())

	if n := c.InvalidateDataset("http://a/void"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if _, ok := c.Get("kisti"); !ok {
		t.Fatal("unrelated entry dropped")
	}
	if _, ok := c.Get("soton"); ok {
		t.Fatal("invalidated entry still served")
	}

	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after Flush = %d", c.Len())
	}
	if m := c.Metrics(); m.Invalidations != 3 {
		t.Fatalf("invalidations = %d, want 3", m.Invalidations)
	}
}

func TestResultCacheRowCap(t *testing.T) {
	c := NewResultCache(4, time.Minute, 1)
	if c.Put(&Entry{Key: "big", Solutions: []eval.Solution{row("1"), row("2")}}, c.Version()) {
		t.Fatal("oversized entry cached")
	}
}

// --- policy ---

func mustParse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestRestrictURISpaces(t *testing.T) {
	p := &Policy{URISpaces: []string{"http://acme.example/"}}

	// Variable subjects get an anchored prefix REGEX injected.
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o }`)
	rq, changed, err := Restrict(q, p)
	if err != nil || !changed {
		t.Fatalf("Restrict: changed=%v err=%v", changed, err)
	}
	got := sparql.Format(rq)
	if !strings.Contains(got, "REGEX") || !strings.Contains(got, "^(?:http://acme") {
		t.Fatalf("restricted query missing space filter:\n%s", got)
	}
	// The original query is untouched.
	if strings.Contains(sparql.Format(q), "REGEX") {
		t.Fatal("Restrict mutated its input")
	}

	// In-space ground subjects pass; out-of-space ones are refused.
	in := mustParse(t, `SELECT ?o WHERE { <http://acme.example/x> <http://p> ?o }`)
	if _, _, err := Restrict(in, p); err != nil {
		t.Fatalf("in-space ground subject: %v", err)
	}
	out := mustParse(t, `SELECT ?o WHERE { <http://other.example/x> <http://p> ?o }`)
	if _, _, err := Restrict(out, p); !errors.Is(err, ErrDenied) {
		t.Fatalf("out-of-space ground subject: err=%v, want ErrDenied", err)
	}
}

func TestRestrictDeniedPredicates(t *testing.T) {
	p := &Policy{DeniedPredicates: []string{"http://secret"}}

	ground := mustParse(t, `SELECT ?s WHERE { ?s <http://secret> ?o }`)
	if _, _, err := Restrict(ground, p); !errors.Is(err, ErrDenied) {
		t.Fatalf("ground denied predicate: err=%v", err)
	}

	varp := mustParse(t, `SELECT ?s WHERE { ?s ?p ?o }`)
	rq, changed, err := Restrict(varp, p)
	if err != nil || !changed {
		t.Fatalf("Restrict: changed=%v err=%v", changed, err)
	}
	if got := sparql.Format(rq); !strings.Contains(got, "!=") || !strings.Contains(got, "http://secret") {
		t.Fatalf("restricted query missing predicate filter:\n%s", got)
	}
}

func TestRestrictDescribeAndUnion(t *testing.T) {
	p := &Policy{URISpaces: []string{"http://acme.example/"}}

	d := mustParse(t, `DESCRIBE <http://other.example/x>`)
	if _, _, err := Restrict(d, p); !errors.Is(err, ErrDenied) {
		t.Fatalf("DESCRIBE out-of-space: err=%v", err)
	}

	// The restriction reaches into UNION branches.
	u := mustParse(t, `SELECT ?o WHERE { { <http://other.example/x> <http://p> ?o } UNION { ?s <http://p> ?o } }`)
	if _, _, err := Restrict(u, p); !errors.Is(err, ErrDenied) {
		t.Fatalf("UNION branch with out-of-space subject: err=%v", err)
	}
}

func TestRestrictNoopPolicies(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE { ?s <http://p> ?o }`)
	for _, p := range []*Policy{nil, {}, {Datasets: []string{"http://a/void"}}} {
		rq, changed, err := Restrict(q, p)
		if err != nil || changed || rq != q {
			t.Fatalf("policy %+v: changed=%v err=%v", p, changed, err)
		}
	}
}
