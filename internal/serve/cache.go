package serve

import (
	"container/list"
	"sync"
	"time"

	"sparqlrw/internal/eval"
	"sparqlrw/internal/federate"
)

// Entry is one cached federated answer: the materialised solutions of a
// SELECT (or the boolean of an ASK) plus a trimmed per-dataset summary,
// under the owl:sameAs-canonicalised cache key.
type Entry struct {
	// Key is the canonicalised (query, source ontology, targets, limit)
	// fingerprint the mediator computed.
	Key string
	// Vars are the projection variables; Solutions the merged rows.
	Vars      []string
	Solutions []eval.Solution
	// Ask carries the ASK outcome; IsAsk discriminates (an ASK entry has
	// no Solutions).
	Ask   bool
	IsAsk bool
	// Summary is the fan-out summary at fill time, Solutions stripped.
	Summary *federate.Result
	// Datasets are the data set URIs the answer was assembled from, for
	// voiD-subscription invalidation.
	Datasets []string

	expires time.Time
}

// CacheMetrics are the cache's lifetime counters.
type CacheMetrics struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

// ResultCache is a size- and TTL-bounded LRU of federated answers.
//
// Stale-fill protection mirrors the rewrite-plan cache's in-flight
// invalidation (PR 2): callers snapshot Version before executing and
// pass it to Put; any invalidation — targeted or full — bumps the
// version, so an answer computed against pre-invalidation state is
// silently discarded instead of cached. Safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	size    int
	ttl     time.Duration
	maxRows int
	lru     *list.List // of *Entry, front = most recent
	byKey   map[string]*list.Element
	version uint64
	m       CacheMetrics

	// now is the TTL clock, injectable for deterministic tests.
	now func() time.Time
}

// NewResultCache builds a cache of at most size entries, each living at
// most ttl and holding at most maxRows solutions.
func NewResultCache(size int, ttl time.Duration, maxRows int) *ResultCache {
	return &ResultCache{
		size:    size,
		ttl:     ttl,
		maxRows: maxRows,
		lru:     list.New(),
		byKey:   map[string]*list.Element{},
		now:     time.Now,
	}
}

// MaxRows is the per-entry solution cap; fills that exceed it must not
// be cached.
func (c *ResultCache) MaxRows() int { return c.maxRows }

// Version returns the invalidation epoch. Snapshot it before computing
// an answer and hand it to Put: a Put under a stale version is a no-op.
func (c *ResultCache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Get returns the live entry under key, counting hit or miss. Expired
// entries count as misses and are dropped.
func (c *ResultCache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if ok {
		e := el.Value.(*Entry)
		if c.now().Before(e.expires) {
			c.lru.MoveToFront(el)
			c.m.Hits++
			return e, true
		}
		c.removeLocked(el)
		c.m.Evictions++
	}
	c.m.Misses++
	return nil, false
}

// Put inserts the entry unless the invalidation epoch moved past
// version while the answer was being computed (the stale in-flight
// fill) or the entry exceeds the row cap. It reports whether the entry
// was stored.
func (c *ResultCache) Put(e *Entry, version uint64) bool {
	if len(e.Solutions) > c.maxRows {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if version != c.version {
		return false
	}
	if el, ok := c.byKey[e.Key]; ok {
		c.removeLocked(el)
	}
	e.expires = c.now().Add(c.ttl)
	c.byKey[e.Key] = c.lru.PushFront(e)
	for c.lru.Len() > c.size {
		c.removeLocked(c.lru.Back())
		c.m.Evictions++
	}
	return true
}

func (c *ResultCache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	delete(c.byKey, el.Value.(*Entry).Key)
}

// InvalidateDataset drops every entry whose answer touched the data set
// and bumps the invalidation epoch, so in-flight fills that read the
// old state never land. Returns how many entries were dropped.
func (c *ResultCache) InvalidateDataset(uri string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*Entry)
		for _, ds := range e.Datasets {
			if ds == uri {
				c.removeLocked(el)
				c.m.Invalidations++
				n++
				break
			}
		}
	}
	return n
}

// Flush drops everything and bumps the invalidation epoch (alignment
// changes can alter any rewritten answer).
func (c *ResultCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	c.m.Invalidations += uint64(c.lru.Len())
	c.lru.Init()
	c.byKey = map[string]*list.Element{}
}

// Len reports how many entries are cached (expired ones included until
// touched).
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Metrics returns the lifetime counters.
func (c *ResultCache) Metrics() CacheMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}
