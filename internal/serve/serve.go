// Package serve is the mediator's production serving tier: the layer in
// front of Mediator.Query that makes one rewriting mediator safe to put
// in front of many users. It bundles three concerns the paper's
// single-query prototype never needed:
//
//	admission — a tenant registry (API-key or header mapped, with a
//	            default anonymous tenant), per-tenant token-bucket rate
//	            limits and concurrency caps with a bounded wait queue,
//	            shedding load as 429/503 before any planning work runs;
//	caching   — a federated result cache keyed by the owl:sameAs
//	            canonicalised query, serving repeated SELECT/ASK queries
//	            without a single endpoint round trip, size- and
//	            TTL-bounded, invalidated through the voiD/alignment KB
//	            subscription hooks;
//	policy    — per-tenant graph restrictions injected into the query
//	            algebra before planning, so access control rides the
//	            same rewriting pipeline as ontology integration.
//
// The tier is deliberately stateless across processes: every structure
// here is an in-memory derivative of configuration or of cacheable
// upstream answers, so horizontally scaled mediator replicas need no
// coordination.
package serve

import (
	"time"

	"sparqlrw/internal/obs"
)

// Options configure a serving tier. The zero value enables the result
// cache with its defaults and an unlimited anonymous tenant.
type Options struct {
	// Tenants is the tenant configuration (see LoadTenants). Nil means
	// "anonymous only, unlimited".
	Tenants *TenantsConfig
	// CacheSize is the result cache's entry capacity (default 512; set
	// to -1 to disable result caching entirely).
	CacheSize int
	// CacheTTL bounds an entry's lifetime (default 5 minutes).
	CacheTTL time.Duration
	// CacheMaxRows caps how many solutions one entry may hold; larger
	// results are never cached (default 10000).
	CacheMaxRows int
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 512
	}
	if o.CacheTTL <= 0 {
		o.CacheTTL = 5 * time.Minute
	}
	if o.CacheMaxRows <= 0 {
		o.CacheMaxRows = 10000
	}
	return o
}

// Tier is one process's serving tier: tenant registry, admission
// control and the federated result cache, with their instruments bound
// into the shared metrics registry.
type Tier struct {
	Tenants   *TenantRegistry
	Admission *Admission
	// Cache is nil when result caching is disabled (CacheSize < 0).
	Cache *ResultCache

	opts Options
}

// NewTier builds a serving tier and registers its metrics. reg may be
// nil (no instruments).
func NewTier(opts Options, reg *obs.Registry) *Tier {
	opts = opts.withDefaults()
	t := &Tier{
		Tenants: NewTenantRegistry(opts.Tenants),
		opts:    opts,
	}
	t.Admission = NewAdmission(t.Tenants)
	if opts.CacheSize > 0 {
		t.Cache = NewResultCache(opts.CacheSize, opts.CacheTTL, opts.CacheMaxRows)
	}
	t.register(reg)
	return t
}

// Options returns the tier's effective (defaulted) options.
func (t *Tier) Options() Options { return t.opts }

// register binds the tier's instruments into the registry. Plain
// counters and function-backed families both render from the first
// scrape on, so dashboards and the check-metrics smoke test see the
// series at zero before any traffic arrives.
func (t *Tier) register(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.Admission.metrics = newAdmissionMetrics(reg)
	reg.GaugeFuncVec("sparqlrw_serve_inflight",
		"Admitted queries currently executing, per tenant.",
		[]string{"tenant"}, func(emit func([]string, float64)) {
			for _, ts := range t.Admission.Snapshot() {
				emit([]string{ts.Tenant}, float64(ts.InFlight))
			}
		})
	if t.Cache == nil {
		return
	}
	reg.CounterFunc("sparqlrw_result_cache_hits_total",
		"Federated result cache hits.", func() float64 {
			return float64(t.Cache.Metrics().Hits)
		})
	reg.CounterFunc("sparqlrw_result_cache_misses_total",
		"Federated result cache misses.", func() float64 {
			return float64(t.Cache.Metrics().Misses)
		})
	reg.CounterFunc("sparqlrw_result_cache_evictions_total",
		"Federated result cache entries evicted (capacity or TTL).", func() float64 {
			return float64(t.Cache.Metrics().Evictions)
		})
	reg.CounterFunc("sparqlrw_result_cache_invalidations_total",
		"Federated result cache entries dropped by KB invalidation.", func() float64 {
			return float64(t.Cache.Metrics().Invalidations)
		})
	reg.GaugeFunc("sparqlrw_result_cache_entries",
		"Federated results currently cached.", func() float64 {
			return float64(t.Cache.Len())
		})
}

// CacheStats is the result cache's snapshot for Stats consumers.
type CacheStats struct {
	CacheMetrics
	Entries int `json:"entries"`
	// HitRate is hits / (hits+misses), 0 when idle.
	HitRate float64 `json:"hitRate"`
}

// Stats is the tier's observability snapshot: every tenant's admission
// state plus the result cache's counters (nil when caching is off).
type Stats struct {
	Tenants []TenantStats `json:"tenants"`
	Cache   *CacheStats   `json:"cache,omitempty"`
}

// Stats snapshots the tier.
func (t *Tier) Stats() Stats {
	st := Stats{Tenants: t.Admission.Snapshot()}
	if t.Cache != nil {
		cs := &CacheStats{CacheMetrics: t.Cache.Metrics(), Entries: t.Cache.Len()}
		if total := cs.Hits + cs.Misses; total > 0 {
			cs.HitRate = float64(cs.Hits) / float64(total)
		}
		st.Cache = cs
	}
	return st
}

// InvalidateDataset drops every cached result that touched the data
// set — the voiD KB Subscribe hook's entry point.
func (t *Tier) InvalidateDataset(uri string) {
	if t.Cache != nil {
		t.Cache.InvalidateDataset(uri)
	}
}

// Flush drops every cached result — the alignment KB Subscribe hook's
// entry point (an alignment change can alter any rewritten answer).
func (t *Tier) Flush() {
	if t.Cache != nil {
		t.Cache.Flush()
	}
}
