package serve

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"sparqlrw/internal/rdf"
	"sparqlrw/internal/sparql"
)

// ErrDenied marks a query refused by tenant policy; the protocol
// endpoint maps it to 403.
var ErrDenied = errors.New("denied by tenant policy")

// Policy restricts what a tenant may read. Access control rides the
// same rewriting pipeline as ontology integration: restrictions are
// injected into the query algebra before planning, so a restricted
// tenant's query is — by construction — one that cannot match triples
// outside its grant, no matter which endpoints it federates to.
type Policy struct {
	// Datasets allowlists the data set URIs the tenant may query (empty
	// = all). Explicit out-of-list targets are refused; the planner's
	// candidate set is pre-filtered.
	Datasets []string `json:"datasets,omitempty"`
	// URISpaces allowlists subject URI prefixes: the tenant may only
	// read triples whose subject lies in one of the spaces. Ground
	// out-of-space subjects are refused; variable subjects get a
	// per-group FILTER REGEX(STR(?s), "^(?:space…)") injected.
	URISpaces []string `json:"uriSpaces,omitempty"`
	// DeniedPredicates blocklists predicate IRIs. Ground uses are
	// refused; variable predicates get inequality filters injected.
	DeniedPredicates []string `json:"deniedPredicates,omitempty"`
}

// isZero reports a nil or empty policy (nothing to enforce).
func (p *Policy) isZero() bool {
	return p == nil || (len(p.Datasets) == 0 && len(p.URISpaces) == 0 && len(p.DeniedPredicates) == 0)
}

// rewrites reports whether the policy changes the query algebra (the
// dataset allowlist alone is enforced at planning time instead).
func (p *Policy) rewrites() bool {
	return p != nil && (len(p.URISpaces) > 0 || len(p.DeniedPredicates) > 0)
}

func (p *Policy) validate() error {
	if p == nil {
		return nil
	}
	for _, s := range p.URISpaces {
		if strings.TrimSpace(s) == "" {
			return fmt.Errorf("empty uriSpaces entry")
		}
	}
	for _, d := range p.DeniedPredicates {
		if strings.TrimSpace(d) == "" {
			return fmt.Errorf("empty deniedPredicates entry")
		}
	}
	return nil
}

// AllowedDatasets is the nil-safe dataset allowlist accessor (nil or
// empty = all data sets permitted).
func (p *Policy) AllowedDatasets() []string {
	if p == nil {
		return nil
	}
	return p.Datasets
}

// AllowsDataset reports whether the tenant may query the data set.
func (p *Policy) AllowsDataset(uri string) bool {
	if p == nil || len(p.Datasets) == 0 {
		return true
	}
	for _, d := range p.Datasets {
		if d == uri {
			return true
		}
	}
	return false
}

// inSpace reports whether an IRI lies in one of the allowed URI spaces.
func (p *Policy) inSpace(iri string) bool {
	for _, s := range p.URISpaces {
		if strings.HasPrefix(iri, s) {
			return true
		}
	}
	return false
}

// Restrict injects the policy into a parsed query, returning the
// restricted clone (q itself is never mutated) and whether anything
// changed. Queries that can only match denied data are refused with an
// error wrapping ErrDenied:
//
//   - a ground subject outside every allowed URI space,
//   - a ground denied predicate,
//   - a blank-node subject under a URI-space restriction (it could bind
//     anywhere, and no filter can name it),
//   - DESCRIBE of a ground out-of-space resource.
//
// Variable subjects are constrained per group with
// FILTER REGEX(STR(?s), "^(?:space1|space2…)") over QuoteMeta'd space
// prefixes; variable predicates with inequality filters against the
// denylist. The filters ride the ordinary rewriting pipeline — they are
// translated and shipped to the endpoints like any user filter, and the
// mediator-side evaluator enforces them again on the multi-source path.
func Restrict(q *sparql.Query, p *Policy) (*sparql.Query, bool, error) {
	if !p.rewrites() {
		return q, false, nil
	}
	denied := make(map[string]bool, len(p.DeniedPredicates))
	for _, d := range p.DeniedPredicates {
		denied[d] = true
	}
	if q.Form == sparql.Describe && len(p.URISpaces) > 0 {
		for _, t := range q.DescribeTerms {
			if t.IsIRI() && !p.inSpace(t.Value) {
				return nil, false, fmt.Errorf("serve: DESCRIBE <%s>: %w", t.Value, ErrDenied)
			}
		}
	}
	out := q.Clone()
	if err := p.restrictGroup(out.Where, denied); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// restrictGroup enforces the policy on one group graph pattern and
// recurses into nested groups, OPTIONALs and UNION branches. Injected
// filters are appended to the group whose basic graph patterns mention
// the constrained variable, so they scope exactly where the variable
// binds.
func (p *Policy) restrictGroup(g *sparql.GroupGraphPattern, denied map[string]bool) error {
	if g == nil {
		return nil
	}
	var subjVars, predVars []string
	seenSubj := map[string]bool{}
	seenPred := map[string]bool{}
	for _, el := range g.Elements {
		switch e := el.(type) {
		case *sparql.BGP:
			for _, tp := range e.Patterns {
				if tp.P.IsIRI() && denied[tp.P.Value] {
					return fmt.Errorf("serve: predicate <%s>: %w", tp.P.Value, ErrDenied)
				}
				if tp.P.IsVar() && len(denied) > 0 && !seenPred[tp.P.Value] {
					seenPred[tp.P.Value] = true
					predVars = append(predVars, tp.P.Value)
				}
				if len(p.URISpaces) > 0 {
					switch {
					case tp.S.IsIRI():
						if !p.inSpace(tp.S.Value) {
							return fmt.Errorf("serve: subject <%s>: %w", tp.S.Value, ErrDenied)
						}
					case tp.S.IsVar():
						if !seenSubj[tp.S.Value] {
							seenSubj[tp.S.Value] = true
							subjVars = append(subjVars, tp.S.Value)
						}
					default:
						return fmt.Errorf("serve: blank-node subject under URI-space restriction: %w", ErrDenied)
					}
				}
			}
		case *sparql.SubGroup:
			if err := p.restrictGroup(e.Group, denied); err != nil {
				return err
			}
		case *sparql.Optional:
			if err := p.restrictGroup(e.Group, denied); err != nil {
				return err
			}
		case *sparql.Union:
			for _, alt := range e.Alternatives {
				if err := p.restrictGroup(alt, denied); err != nil {
					return err
				}
			}
		}
	}
	for _, v := range subjVars {
		g.Elements = append(g.Elements, &sparql.Filter{Expr: p.spaceFilter(v)})
	}
	for _, v := range predVars {
		if f := deniedFilter(v, p.DeniedPredicates); f != nil {
			g.Elements = append(g.Elements, &sparql.Filter{Expr: f})
		}
	}
	return nil
}

// spaceFilter builds REGEX(STR(?v), "^(?:space1|space2…)") — an
// anchored prefix match over the QuoteMeta'd allowed spaces.
func (p *Policy) spaceFilter(v string) sparql.Expression {
	alts := make([]string, len(p.URISpaces))
	for i, s := range p.URISpaces {
		alts[i] = regexp.QuoteMeta(s)
	}
	pattern := "^(?:" + strings.Join(alts, "|") + ")"
	return &sparql.Call{Name: "REGEX", Args: []sparql.Expression{
		&sparql.Call{Name: "STR", Args: []sparql.Expression{
			&sparql.TermExpr{Term: rdf.NewVar(v)},
		}},
		&sparql.TermExpr{Term: rdf.NewLiteral(pattern)},
	}}
}

// deniedFilter builds ?v != <d1> && ?v != <d2> && … for a variable
// predicate under a denylist.
func deniedFilter(v string, deniedPreds []string) sparql.Expression {
	var expr sparql.Expression
	for _, d := range deniedPreds {
		ne := &sparql.Binary{Op: "!=",
			L: &sparql.TermExpr{Term: rdf.NewVar(v)},
			R: &sparql.TermExpr{Term: rdf.NewIRI(d)},
		}
		if expr == nil {
			expr = ne
		} else {
			expr = &sparql.Binary{Op: "&&", L: expr, R: ne}
		}
	}
	return expr
}
