package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"sparqlrw/internal/obs"
)

// Rejection is an admission refusal: the HTTP status the serving tier
// should answer with and the Retry-After hint. It implements error so
// it can flow through ordinary error paths.
type Rejection struct {
	// Status is 429 (rate limited) or 503 (concurrency queue full or
	// the caller gave up waiting).
	Status int
	// RetryAfter is the suggested backoff (rounded up to whole seconds
	// for the Retry-After header; minimum 1s).
	RetryAfter time.Duration
	// Tenant is the refused tenant's ID; Reason is "rate", "overloaded"
	// or "canceled".
	Tenant string
	Reason string
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("serve: tenant %s rejected (%s): retry after %s",
		r.Tenant, r.Reason, r.RetryAfterSeconds())
}

// RetryAfterSeconds renders the Retry-After header value: whole
// seconds, rounded up, at least 1.
func (r *Rejection) RetryAfterSeconds() string {
	secs := int(math.Ceil(r.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// admissionMetrics are the tier's admission instruments.
type admissionMetrics struct {
	admitted  *obs.CounterVec
	rejected  *obs.CounterVec
	waitQueue *obs.CounterVec
}

func newAdmissionMetrics(r *obs.Registry) *admissionMetrics {
	return &admissionMetrics{
		admitted: r.CounterVec("sparqlrw_serve_admitted_total",
			"Queries admitted past the serving tier, per tenant.", "tenant"),
		rejected: r.CounterVec("sparqlrw_serve_rejected_total",
			"Queries shed by the serving tier, per tenant and reason.", "tenant", "reason"),
		waitQueue: r.CounterVec("sparqlrw_serve_queued_total",
			"Admissions that waited in the bounded concurrency queue, per tenant.", "tenant"),
	}
}

// tenantState is one tenant's live admission state: a token bucket
// (rate) and a channel semaphore with a bounded wait queue
// (concurrency).
type tenantState struct {
	t *Tenant

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	waiting  int
	inflight int
	admitted uint64
	rejected uint64

	// sem is the concurrency semaphore (nil when unlimited). Inflight is
	// len(sem).
	sem chan struct{}
}

// Admission enforces every tenant's rate and concurrency limits.
type Admission struct {
	reg     *TenantRegistry
	metrics *admissionMetrics

	mu     sync.Mutex
	states map[string]*tenantState

	// now is the bucket clock, injectable for deterministic tests.
	now func() time.Time
}

// NewAdmission builds the admission controller over a tenant registry.
func NewAdmission(reg *TenantRegistry) *Admission {
	return &Admission{reg: reg, states: map[string]*tenantState{}, now: time.Now}
}

func (a *Admission) state(t *Tenant) *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.states[t.ID]
	if !ok {
		s = &tenantState{t: t, tokens: t.burst(), last: a.now()}
		if t.MaxConcurrent > 0 {
			s.sem = make(chan struct{}, t.MaxConcurrent)
		}
		a.states[t.ID] = s
	}
	return s
}

// takeToken refills the tenant's bucket and takes one token, or reports
// how long until the next token is due.
func (a *Admission) takeToken(s *tenantState) (ok bool, wait time.Duration) {
	t := s.t
	if t.RatePerSec <= 0 {
		return true, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := a.now()
	elapsed := now.Sub(s.last).Seconds()
	if elapsed > 0 {
		s.tokens = math.Min(t.burst(), s.tokens+elapsed*t.RatePerSec)
		s.last = now
	}
	if s.tokens >= 1 {
		s.tokens--
		return true, 0
	}
	return false, time.Duration((1 - s.tokens) / t.RatePerSec * float64(time.Second))
}

// Admit runs tenant's admission checks: the token bucket first (a 429
// with the time to the next token on refusal), then the concurrency
// cap (waiting in the bounded queue for a slot; a full queue sheds the
// request with 503). On success the returned release function MUST be
// called exactly once when the query finishes. rej is nil on success.
func (a *Admission) Admit(ctx context.Context, tenant *Tenant) (release func(), rej *Rejection) {
	if tenant == nil {
		tenant = a.reg.Anonymous()
	}
	s := a.state(tenant)
	reject := func(status int, retryAfter time.Duration, reason string) *Rejection {
		s.mu.Lock()
		s.rejected++
		s.mu.Unlock()
		if a.metrics != nil {
			a.metrics.rejected.With(tenant.ID, reason).Inc()
		}
		return &Rejection{Status: status, RetryAfter: retryAfter, Tenant: tenant.ID, Reason: reason}
	}
	if ok, wait := a.takeToken(s); !ok {
		return nil, reject(http.StatusTooManyRequests, wait, "rate")
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: join the bounded wait queue, or shed.
			s.mu.Lock()
			if s.waiting >= s.t.QueueDepth {
				s.mu.Unlock()
				return nil, reject(http.StatusServiceUnavailable, time.Second, "overloaded")
			}
			s.waiting++
			s.mu.Unlock()
			if a.metrics != nil {
				a.metrics.waitQueue.With(tenant.ID).Inc()
			}
			admitted := false
			select {
			case s.sem <- struct{}{}:
				admitted = true
			case <-ctx.Done():
			}
			s.mu.Lock()
			s.waiting--
			s.mu.Unlock()
			if !admitted {
				return nil, reject(http.StatusServiceUnavailable, time.Second, "canceled")
			}
		}
	}
	s.mu.Lock()
	s.admitted++
	s.inflight++
	s.mu.Unlock()
	if a.metrics != nil {
		a.metrics.admitted.With(tenant.ID).Inc()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.inflight--
			s.mu.Unlock()
			if s.sem != nil {
				<-s.sem
			}
		})
	}, nil
}

// TenantStats is one tenant's admission snapshot.
type TenantStats struct {
	Tenant        string  `json:"tenant"`
	InFlight      int     `json:"inFlight"`
	Waiting       int     `json:"waiting"`
	Admitted      uint64  `json:"admitted"`
	Rejected      uint64  `json:"rejected"`
	RatePerSec    float64 `json:"ratePerSec,omitempty"`
	MaxConcurrent int     `json:"maxConcurrent,omitempty"`
	Restricted    bool    `json:"restricted,omitempty"`
}

// Snapshot reports every configured tenant's admission state, sorted
// with the anonymous tenant first then by ID, including tenants that
// have not sent a request yet.
func (a *Admission) Snapshot() []TenantStats {
	out := make([]TenantStats, 0, len(a.reg.All()))
	for _, t := range a.reg.All() {
		s := a.state(t)
		s.mu.Lock()
		ts := TenantStats{
			Tenant:        t.ID,
			InFlight:      s.inflight,
			Waiting:       s.waiting,
			Admitted:      s.admitted,
			Rejected:      s.rejected,
			RatePerSec:    t.RatePerSec,
			MaxConcurrent: t.MaxConcurrent,
			Restricted:    !t.Policy.isZero(),
		}
		s.mu.Unlock()
		out = append(out, ts)
	}
	sort.SliceStable(out[1:], func(i, j int) bool { return out[i+1].Tenant < out[j+1].Tenant })
	return out
}
