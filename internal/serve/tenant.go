package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// Tenant is one configured consumer of the mediator. Limits left at
// zero are unlimited; a tenant with no Policy sees everything.
type Tenant struct {
	// ID names the tenant in metrics, logs and the dashboard.
	ID string `json:"id"`
	// Keys are the API keys that identify the tenant (X-API-Key header
	// or Authorization: Bearer). A tenant with no keys is header-mapped:
	// requests carrying its ID in X-Tenant-Id select it.
	Keys []string `json:"keys,omitempty"`
	// RatePerSec is the token-bucket refill rate (0 = unlimited).
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the bucket depth (default: ceil(RatePerSec), minimum 1).
	Burst int `json:"burst,omitempty"`
	// MaxConcurrent caps in-flight queries (0 = unlimited).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// QueueDepth bounds how many requests may wait for a concurrency
	// slot; beyond it the tier sheds load with 503 (default 0: no queue).
	QueueDepth int `json:"queueDepth,omitempty"`
	// Policy restricts what the tenant may read (nil = unrestricted).
	Policy *Policy `json:"policy,omitempty"`
}

// burst returns the effective bucket depth.
func (t *Tenant) burst() float64 {
	if t.Burst > 0 {
		return float64(t.Burst)
	}
	if t.RatePerSec >= 1 {
		return float64(int(t.RatePerSec + 0.999999))
	}
	return 1
}

// GetPolicy is a nil-safe Policy accessor.
func (t *Tenant) GetPolicy() *Policy {
	if t == nil {
		return nil
	}
	return t.Policy
}

// Name is a nil-safe ID accessor; a nil tenant reads as "anonymous".
func (t *Tenant) Name() string {
	if t == nil {
		return AnonymousID
	}
	return t.ID
}

// AnonymousID names the default tenant unauthenticated requests map to.
const AnonymousID = "anonymous"

// TenantsConfig is the -tenants file shape: named tenants plus an
// optional override for the anonymous default.
type TenantsConfig struct {
	// Anonymous overrides the default tenant's limits and policy. Its ID
	// and Keys are forced: the anonymous tenant is whoever presents no
	// credential.
	Anonymous *Tenant `json:"anonymous,omitempty"`
	// Tenants are the named tenants.
	Tenants []*Tenant `json:"tenants,omitempty"`
}

// LoadTenants reads and validates a tenant configuration file (JSON,
// see TenantsConfig).
func LoadTenants(path string) (*TenantsConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading tenants config: %w", err)
	}
	return ParseTenants(data)
}

// ParseTenants parses a TenantsConfig document and validates it.
func ParseTenants(data []byte) (*TenantsConfig, error) {
	var cfg TenantsConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("serve: parsing tenants config: %w", err)
	}
	seenID := map[string]bool{}
	seenKey := map[string]bool{}
	for _, t := range cfg.Tenants {
		if t.ID == "" {
			return nil, fmt.Errorf("serve: tenants config: tenant with empty id")
		}
		if t.ID == AnonymousID {
			return nil, fmt.Errorf("serve: tenants config: use the top-level %q member, not a named tenant", AnonymousID)
		}
		if seenID[t.ID] {
			return nil, fmt.Errorf("serve: tenants config: duplicate tenant id %q", t.ID)
		}
		seenID[t.ID] = true
		for _, k := range t.Keys {
			if k == "" {
				return nil, fmt.Errorf("serve: tenants config: tenant %q has an empty key", t.ID)
			}
			if seenKey[k] {
				return nil, fmt.Errorf("serve: tenants config: key %q maps to two tenants", k)
			}
			seenKey[k] = true
		}
		if err := t.Policy.validate(); err != nil {
			return nil, fmt.Errorf("serve: tenants config: tenant %q: %w", t.ID, err)
		}
	}
	if cfg.Anonymous != nil {
		if err := cfg.Anonymous.Policy.validate(); err != nil {
			return nil, fmt.Errorf("serve: tenants config: anonymous: %w", err)
		}
	}
	return &cfg, nil
}

// TenantRegistry resolves requests to tenants.
type TenantRegistry struct {
	anonymous *Tenant
	byKey     map[string]*Tenant
	byID      map[string]*Tenant
	ordered   []*Tenant // anonymous first, then config order
}

// NewTenantRegistry builds a registry from cfg (nil: anonymous only,
// unlimited). The config is assumed validated (ParseTenants).
func NewTenantRegistry(cfg *TenantsConfig) *TenantRegistry {
	r := &TenantRegistry{byKey: map[string]*Tenant{}, byID: map[string]*Tenant{}}
	anon := &Tenant{ID: AnonymousID}
	if cfg != nil && cfg.Anonymous != nil {
		a := *cfg.Anonymous
		a.ID = AnonymousID
		a.Keys = nil
		anon = &a
	}
	r.anonymous = anon
	r.byID[anon.ID] = anon
	r.ordered = append(r.ordered, anon)
	if cfg != nil {
		for _, t := range cfg.Tenants {
			r.byID[t.ID] = t
			r.ordered = append(r.ordered, t)
			for _, k := range t.Keys {
				r.byKey[k] = t
			}
		}
	}
	return r
}

// Anonymous returns the default tenant.
func (r *TenantRegistry) Anonymous() *Tenant { return r.anonymous }

// All lists every tenant, the anonymous default first.
func (r *TenantRegistry) All() []*Tenant { return r.ordered }

// Get resolves a tenant by ID.
func (r *TenantRegistry) Get(id string) (*Tenant, bool) {
	t, ok := r.byID[id]
	return t, ok
}

// Identify maps a request to its tenant: an API key presented via
// X-API-Key or Authorization: Bearer wins; a key-less tenant may be
// selected by X-Tenant-Id (header-mapped deployments where a fronting
// proxy authenticates); everything else is the anonymous tenant. An
// unknown key or tenant ID also falls back to anonymous — presenting a
// bad credential never grants more than presenting none.
func (r *TenantRegistry) Identify(req *http.Request) *Tenant {
	key := req.Header.Get("X-API-Key")
	if key == "" {
		if auth := req.Header.Get("Authorization"); auth != "" {
			if v, ok := strings.CutPrefix(auth, "Bearer "); ok {
				key = strings.TrimSpace(v)
			}
		}
	}
	if key != "" {
		if t, ok := r.byKey[key]; ok {
			return t
		}
		return r.anonymous
	}
	if id := req.Header.Get("X-Tenant-Id"); id != "" {
		if t, ok := r.byID[id]; ok && len(t.Keys) == 0 {
			return t
		}
	}
	return r.anonymous
}
